package stats

import (
	"fmt"
	"math"
	"sort"
)

// Sample accumulates scalar observations and reports summary statistics.
// The zero value is ready to use.
type Accumulator struct {
	n     int
	sum   float64
	sumSq float64
	min   float64
	max   float64
}

// Add records one observation.
func (a *Accumulator) Add(x float64) {
	if a.n == 0 || x < a.min {
		a.min = x
	}
	if a.n == 0 || x > a.max {
		a.max = x
	}
	a.n++
	a.sum += x
	a.sumSq += x * x
}

// AddN records the same observation count times.
func (a *Accumulator) AddN(x float64, count int) {
	for i := 0; i < count; i++ {
		a.Add(x)
	}
}

// N returns the number of observations.
func (a *Accumulator) N() int { return a.n }

// Mean returns the arithmetic mean, or 0 with no observations.
func (a *Accumulator) Mean() float64 {
	if a.n == 0 {
		return 0
	}
	return a.sum / float64(a.n)
}

// Sum returns the running total.
func (a *Accumulator) Sum() float64 { return a.sum }

// Min returns the smallest observation, or 0 with no observations.
func (a *Accumulator) Min() float64 { return a.min }

// Max returns the largest observation, or 0 with no observations.
func (a *Accumulator) Max() float64 { return a.max }

// Variance returns the unbiased sample variance.
func (a *Accumulator) Variance() float64 {
	if a.n < 2 {
		return 0
	}
	m := a.Mean()
	v := (a.sumSq - float64(a.n)*m*m) / float64(a.n-1)
	if v < 0 { // numerical noise
		return 0
	}
	return v
}

// StdDev returns the sample standard deviation.
func (a *Accumulator) StdDev() float64 { return math.Sqrt(a.Variance()) }

// CI95 returns the half-width of the normal-approximation 95% confidence
// interval around the mean.
func (a *Accumulator) CI95() float64 {
	if a.n < 2 {
		return 0
	}
	return 1.96 * a.StdDev() / math.Sqrt(float64(a.n))
}

// String formats the accumulator as "mean ± ci (n=N)".
func (a *Accumulator) String() string {
	return fmt.Sprintf("%.4f ± %.4f (n=%d)", a.Mean(), a.CI95(), a.n)
}

// Histogram counts integer-valued observations in [0, len(bins)).
// Out-of-range observations are clamped into the end bins so totals are
// never silently dropped.
type Histogram struct {
	bins []int
	n    int
}

// NewHistogram returns a histogram with buckets 0..max inclusive.
func NewHistogram(max int) *Histogram {
	if max < 0 {
		max = 0
	}
	return &Histogram{bins: make([]int, max+1)}
}

// Add records one observation of value v.
func (h *Histogram) Add(v int) {
	if v < 0 {
		v = 0
	}
	if v >= len(h.bins) {
		v = len(h.bins) - 1
	}
	h.bins[v]++
	h.n++
}

// Count returns the number of observations equal to v (after clamping).
func (h *Histogram) Count(v int) int {
	if v < 0 || v >= len(h.bins) {
		return 0
	}
	return h.bins[v]
}

// N returns the total number of observations.
func (h *Histogram) N() int { return h.n }

// Mean returns the average of recorded values.
func (h *Histogram) Mean() float64 {
	if h.n == 0 {
		return 0
	}
	total := 0
	for v, c := range h.bins {
		total += v * c
	}
	return float64(total) / float64(h.n)
}

// Quantile returns the smallest value v whose cumulative frequency
// reaches q (0 <= q <= 1).
func (h *Histogram) Quantile(q float64) int {
	if h.n == 0 {
		return 0
	}
	target := int(math.Ceil(q * float64(h.n)))
	if target < 1 {
		target = 1
	}
	cum := 0
	for v, c := range h.bins {
		cum += c
		if cum >= target {
			return v
		}
	}
	return len(h.bins) - 1
}

// Fractions returns bin counts normalized to sum to 1.
func (h *Histogram) Fractions() []float64 {
	out := make([]float64, len(h.bins))
	if h.n == 0 {
		return out
	}
	for i, c := range h.bins {
		out[i] = float64(c) / float64(h.n)
	}
	return out
}

// Median returns the median of a slice of float64 values. The input is
// not modified. Median of an empty slice is 0.
func Median(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	cp := append([]float64(nil), xs...)
	sort.Float64s(cp)
	mid := len(cp) / 2
	if len(cp)%2 == 1 {
		return cp[mid]
	}
	return (cp[mid-1] + cp[mid]) / 2
}

// MeanOf returns the arithmetic mean of xs, or 0 when empty.
func MeanOf(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	s := 0.0
	for _, x := range xs {
		s += x
	}
	return s / float64(len(xs))
}
