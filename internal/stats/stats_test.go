package stats

import (
	"math"
	"testing"
)

func TestRNGDeterminism(t *testing.T) {
	a, b := NewRNG(42), NewRNG(42)
	for i := 0; i < 1000; i++ {
		if a.Uint64() != b.Uint64() {
			t.Fatal("same seed diverged")
		}
	}
	c := NewRNG(43)
	same := 0
	a = NewRNG(42)
	for i := 0; i < 1000; i++ {
		if a.Uint64() == c.Uint64() {
			same++
		}
	}
	if same > 2 {
		t.Errorf("different seeds collided %d/1000 times", same)
	}
}

func TestRNGStreamPinned(t *testing.T) {
	// The experiment records in EXPERIMENTS.md depend on this exact
	// stream; if this test ever fails the recorded values must be
	// regenerated.
	r := NewRNG(1)
	want := []uint64{0x910a2dec89025cc1, 0xbeeb8da1658eec67, 0xf893a2eefb32555e}
	for i, w := range want {
		if got := r.Uint64(); got != w {
			t.Fatalf("stream[%d] = %#x, want %#x", i, got, w)
		}
	}
}

func TestIntnRange(t *testing.T) {
	r := NewRNG(7)
	seen := make([]bool, 10)
	for i := 0; i < 10000; i++ {
		v := r.Intn(10)
		if v < 0 || v >= 10 {
			t.Fatalf("Intn(10) = %d", v)
		}
		seen[v] = true
	}
	for v, ok := range seen {
		if !ok {
			t.Errorf("Intn(10) never produced %d", v)
		}
	}
}

func TestIntnPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("Intn(0) should panic")
		}
	}()
	NewRNG(1).Intn(0)
}

func TestIntnUniformity(t *testing.T) {
	r := NewRNG(99)
	const n, trials = 8, 80000
	counts := make([]int, n)
	for i := 0; i < trials; i++ {
		counts[r.Intn(n)]++
	}
	want := float64(trials) / n
	for v, c := range counts {
		if math.Abs(float64(c)-want) > 5*math.Sqrt(want) {
			t.Errorf("bucket %d count %d deviates from %f", v, c, want)
		}
	}
}

func TestFloat64Range(t *testing.T) {
	r := NewRNG(3)
	sum := 0.0
	for i := 0; i < 10000; i++ {
		f := r.Float64()
		if f < 0 || f >= 1 {
			t.Fatalf("Float64 = %f", f)
		}
		sum += f
	}
	if mean := sum / 10000; math.Abs(mean-0.5) > 0.02 {
		t.Errorf("Float64 mean %f far from 0.5", mean)
	}
}

func TestPerm(t *testing.T) {
	r := NewRNG(5)
	for trial := 0; trial < 50; trial++ {
		p := r.Perm(20)
		seen := make([]bool, 20)
		for _, v := range p {
			if v < 0 || v >= 20 || seen[v] {
				t.Fatalf("bad permutation %v", p)
			}
			seen[v] = true
		}
	}
}

func TestSampleDistinct(t *testing.T) {
	r := NewRNG(11)
	for trial := 0; trial < 200; trial++ {
		s := r.Sample(128, 16)
		if len(s) != 16 {
			t.Fatalf("len = %d", len(s))
		}
		seen := map[int]bool{}
		for _, v := range s {
			if v < 0 || v >= 128 || seen[v] {
				t.Fatalf("bad sample %v", s)
			}
			seen[v] = true
		}
	}
}

func TestSampleEdges(t *testing.T) {
	r := NewRNG(1)
	if got := r.Sample(5, 0); len(got) != 0 {
		t.Errorf("Sample(5,0) = %v", got)
	}
	all := r.Sample(6, 6)
	seen := map[int]bool{}
	for _, v := range all {
		seen[v] = true
	}
	if len(seen) != 6 {
		t.Errorf("Sample(6,6) not a permutation: %v", all)
	}
	defer func() {
		if recover() == nil {
			t.Error("Sample(3,4) should panic")
		}
	}()
	r.Sample(3, 4)
}

func TestSampleUniform(t *testing.T) {
	// Each element of [0,10) should appear in a 3-sample with p = 0.3.
	r := NewRNG(21)
	const trials = 30000
	counts := make([]int, 10)
	for i := 0; i < trials; i++ {
		for _, v := range r.Sample(10, 3) {
			counts[v]++
		}
	}
	want := float64(trials) * 0.3
	for v, c := range counts {
		if math.Abs(float64(c)-want) > 6*math.Sqrt(want) {
			t.Errorf("element %d sampled %d times, want ~%f", v, c, want)
		}
	}
}

func TestSplitDecorrelates(t *testing.T) {
	parent := NewRNG(8)
	a := parent.Split(1)
	b := parent.Split(2)
	same := 0
	for i := 0; i < 1000; i++ {
		if a.Uint64() == b.Uint64() {
			same++
		}
	}
	if same > 2 {
		t.Errorf("split children collided %d times", same)
	}
}

func TestAccumulator(t *testing.T) {
	var a Accumulator
	if a.Mean() != 0 || a.N() != 0 || a.CI95() != 0 {
		t.Error("zero accumulator should report zeros")
	}
	for _, x := range []float64{2, 4, 4, 4, 5, 5, 7, 9} {
		a.Add(x)
	}
	if a.N() != 8 {
		t.Errorf("N = %d", a.N())
	}
	if got := a.Mean(); math.Abs(got-5) > 1e-12 {
		t.Errorf("Mean = %f, want 5", got)
	}
	// Sample stddev of this classic set is sqrt(32/7).
	if got := a.StdDev(); math.Abs(got-math.Sqrt(32.0/7)) > 1e-12 {
		t.Errorf("StdDev = %f", got)
	}
	if a.Min() != 2 || a.Max() != 9 {
		t.Errorf("Min/Max = %f/%f", a.Min(), a.Max())
	}
	if a.CI95() <= 0 {
		t.Error("CI95 should be positive")
	}
	if a.Sum() != 40 {
		t.Errorf("Sum = %f", a.Sum())
	}
}

func TestAccumulatorAddN(t *testing.T) {
	var a, b Accumulator
	a.AddN(3, 4)
	for i := 0; i < 4; i++ {
		b.Add(3)
	}
	if a.Mean() != b.Mean() || a.N() != b.N() || a.Variance() != b.Variance() {
		t.Error("AddN should equal repeated Add")
	}
	if a.Variance() != 0 {
		t.Error("constant observations should have zero variance")
	}
}

func TestAccumulatorString(t *testing.T) {
	var a Accumulator
	a.Add(1)
	a.Add(2)
	if s := a.String(); s == "" {
		t.Error("String should be non-empty")
	}
}

func TestHistogram(t *testing.T) {
	h := NewHistogram(5)
	for _, v := range []int{0, 1, 1, 2, 2, 2, 5, 9, -3} {
		h.Add(v)
	}
	if h.N() != 9 {
		t.Errorf("N = %d", h.N())
	}
	if h.Count(1) != 2 || h.Count(2) != 3 {
		t.Error("counts wrong")
	}
	// 9 clamps into bin 5; -3 clamps into bin 0.
	if h.Count(5) != 2 {
		t.Errorf("clamped top bin = %d, want 2", h.Count(5))
	}
	if h.Count(0) != 2 {
		t.Errorf("clamped bottom bin = %d, want 2", h.Count(0))
	}
	if h.Count(99) != 0 || h.Count(-1) != 0 {
		t.Error("out-of-range Count should be 0")
	}
	fr := h.Fractions()
	sum := 0.0
	for _, f := range fr {
		sum += f
	}
	if math.Abs(sum-1) > 1e-12 {
		t.Errorf("fractions sum to %f", sum)
	}
}

func TestHistogramQuantileMean(t *testing.T) {
	h := NewHistogram(10)
	for v := 1; v <= 10; v++ {
		h.Add(v)
	}
	if q := h.Quantile(0.5); q != 5 {
		t.Errorf("median = %d, want 5", q)
	}
	if q := h.Quantile(1.0); q != 10 {
		t.Errorf("p100 = %d, want 10", q)
	}
	if q := h.Quantile(0.0); q != 1 {
		t.Errorf("p0 = %d, want 1", q)
	}
	if m := h.Mean(); math.Abs(m-5.5) > 1e-12 {
		t.Errorf("mean = %f, want 5.5", m)
	}
	empty := NewHistogram(4)
	if empty.Quantile(0.5) != 0 || empty.Mean() != 0 {
		t.Error("empty histogram should report zeros")
	}
}

func TestMedian(t *testing.T) {
	if m := Median(nil); m != 0 {
		t.Errorf("Median(nil) = %f", m)
	}
	if m := Median([]float64{3, 1, 2}); m != 2 {
		t.Errorf("Median odd = %f", m)
	}
	if m := Median([]float64{4, 1, 3, 2}); m != 2.5 {
		t.Errorf("Median even = %f", m)
	}
	xs := []float64{5, 1, 3}
	Median(xs)
	if xs[0] != 5 {
		t.Error("Median must not mutate input")
	}
}

func TestMeanOf(t *testing.T) {
	if MeanOf(nil) != 0 {
		t.Error("MeanOf(nil) should be 0")
	}
	if m := MeanOf([]float64{1, 2, 3, 4}); m != 2.5 {
		t.Errorf("MeanOf = %f", m)
	}
}

func TestNormFloat64Moments(t *testing.T) {
	r := NewRNG(77)
	var a Accumulator
	for i := 0; i < 20000; i++ {
		a.Add(r.NormFloat64())
	}
	if math.Abs(a.Mean()) > 0.03 {
		t.Errorf("normal mean = %f", a.Mean())
	}
	if math.Abs(a.StdDev()-1) > 0.03 {
		t.Errorf("normal stddev = %f", a.StdDev())
	}
}

func TestShuffle(t *testing.T) {
	r := NewRNG(4)
	xs := []int{0, 1, 2, 3, 4, 5, 6, 7}
	r.Shuffle(len(xs), func(i, j int) { xs[i], xs[j] = xs[j], xs[i] })
	seen := map[int]bool{}
	for _, v := range xs {
		seen[v] = true
	}
	if len(seen) != 8 {
		t.Errorf("shuffle lost elements: %v", xs)
	}
}
