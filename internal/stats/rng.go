package stats

import "math"

// RNG is a splitmix64 pseudo-random generator. It is deliberately not
// math/rand: the stream must be stable across Go releases so that the
// fault sets used in every recorded experiment can be regenerated
// bit-for-bit.
type RNG struct {
	state uint64
}

// NewRNG returns a generator seeded with seed. Two generators with the
// same seed produce identical streams.
func NewRNG(seed uint64) *RNG {
	return &RNG{state: seed}
}

// Uint64 returns the next value in the stream.
func (r *RNG) Uint64() uint64 {
	r.state += 0x9e3779b97f4a7c15
	z := r.state
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	return z ^ (z >> 31)
}

// Intn returns a uniform value in [0, n). It panics if n <= 0.
func (r *RNG) Intn(n int) int {
	if n <= 0 {
		panic("stats: Intn with non-positive n")
	}
	// Multiply-shift rejection-free bound; bias is negligible for the
	// n values used here (always far below 2^32) but we still use
	// Lemire-style rejection to keep the stream exactly uniform.
	bound := uint64(n)
	for {
		v := r.Uint64()
		hi, lo := mul64(v, bound)
		if lo >= bound || lo >= (-bound)%bound {
			return int(hi)
		}
	}
}

// mul64 returns the 128-bit product of a and b as (hi, lo).
func mul64(a, b uint64) (hi, lo uint64) {
	const mask = 0xffffffff
	al, ah := a&mask, a>>32
	bl, bh := b&mask, b>>32
	t := al*bh + (al*bl)>>32
	w1 := t & mask
	w2 := t >> 32
	w1 += ah * bl
	hi = ah*bh + w2 + (w1 >> 32)
	lo = a * b
	return hi, lo
}

// Float64 returns a uniform value in [0, 1).
func (r *RNG) Float64() float64 {
	return float64(r.Uint64()>>11) / (1 << 53)
}

// Perm returns a pseudo-random permutation of [0, n) as a slice.
func (r *RNG) Perm(n int) []int {
	p := make([]int, n)
	for i := range p {
		p[i] = i
	}
	for i := n - 1; i > 0; i-- {
		j := r.Intn(i + 1)
		p[i], p[j] = p[j], p[i]
	}
	return p
}

// Sample returns k distinct values drawn uniformly from [0, n) in
// selection order. It panics if k > n or k < 0.
func (r *RNG) Sample(n, k int) []int {
	if k < 0 || k > n {
		panic("stats: Sample with k out of range")
	}
	// Partial Fisher-Yates over an index map keeps this O(k) memory-
	// light for the huge n (2^dim) node spaces we sample from.
	swapped := make(map[int]int, k)
	out := make([]int, k)
	for i := 0; i < k; i++ {
		j := i + r.Intn(n-i)
		vi, ok := swapped[i]
		if !ok {
			vi = i
		}
		vj, ok := swapped[j]
		if !ok {
			vj = j
		}
		out[i] = vj
		swapped[j] = vi
		swapped[i] = vj
	}
	return out
}

// Shuffle pseudo-randomly permutes the first n elements using swap.
func (r *RNG) Shuffle(n int, swap func(i, j int)) {
	for i := n - 1; i > 0; i-- {
		j := r.Intn(i + 1)
		swap(i, j)
	}
}

// Split derives an independent child generator. Children with distinct
// labels produce decorrelated streams even from the same parent state.
func (r *RNG) Split(label uint64) *RNG {
	return NewRNG(r.Uint64() ^ (label * 0xd6e8feb86659fd93))
}

// NormFloat64 returns a standard normal variate via Box-Muller. Only the
// cosine branch is used so a single call consumes exactly two stream
// values, keeping replay deterministic.
func (r *RNG) NormFloat64() float64 {
	u1 := r.Float64()
	for u1 == 0 {
		u1 = r.Float64()
	}
	u2 := r.Float64()
	return math.Sqrt(-2*math.Log(u1)) * math.Cos(2*math.Pi*u2)
}
