// Package stats provides the deterministic random-number generation and
// small statistical helpers used by the experiment harness and the load
// generator. Everything in this package is dependency-free and
// reproducible: the same seed always yields the same stream, which is
// what lets EXPERIMENTS.md pin exact measured values.
//
// Key invariant: the stream is stable across platforms and Go releases
// — RNG is a hand-rolled splitmix64, deliberately not math/rand, so the
// fault sets used in every recorded experiment (and every slload
// request schedule) can be regenerated bit-for-bit. Split derives
// decorrelated child streams for per-worker determinism.
package stats
