package main

import (
	"os"
	"path/filepath"
	"regexp"
	"strings"
	"testing"
)

const sampleOld = `goos: linux
goarch: amd64
pkg: repro
cpu: Intel(R) Xeon(R)
BenchmarkUnicastByDimension/q8-8         	  100000	      1000 ns/op
BenchmarkUnicastByDimension/q8-8         	  100000	      1100 ns/op
BenchmarkUnicastByDimension/q8-8         	  100000	      1050 ns/op
BenchmarkGSByDimension/q8-8              	    5000	     20000 ns/op	  1234 B/op	  56 allocs/op
BenchmarkRepairLevels-8                  	   50000	     30000 ns/op
BenchmarkServeRoute/readers=16/churn=true-8 	  200000	      2000 ns/op
BenchmarkRetired-8                       	    1000	      9999 ns/op
PASS
`

const sampleNew = `BenchmarkUnicastByDimension/q8-4         	  100000	      1049 ns/op
BenchmarkUnicastByDimension/q8-4         	  100000	      1060 ns/op
BenchmarkUnicastByDimension/q8-4         	  100000	      1055 ns/op
BenchmarkGSByDimension/q8-4              	    5000	     26000 ns/op	  2000 B/op	  70 allocs/op
BenchmarkRepairLevels-4                  	   50000	     31000 ns/op
BenchmarkServeRoute/readers=16/churn=true-4 	  200000	      9000 ns/op
BenchmarkBrandNew-4                      	    1000	       100 ns/op
ok  	repro	1.0s
`

func TestParseStripsProcSuffixAndCollectsSamples(t *testing.T) {
	runs, err := parse(strings.NewReader(sampleOld))
	if err != nil {
		t.Fatal(err)
	}
	got := runs["BenchmarkUnicastByDimension/q8"]
	if got == nil || len(got.ns) != 3 {
		t.Fatalf("want 3 samples, got %v", got)
	}
	if m := median(got.ns); m != 1050 {
		t.Fatalf("median = %v, want 1050", m)
	}
	if len(got.allocs) != 0 {
		t.Fatalf("unexpected allocs samples without -benchmem: %v", got.allocs)
	}
	gs := runs["BenchmarkGSByDimension/q8"]
	if gs == nil || len(gs.ns) != 1 || gs.ns[0] != 20000 {
		t.Fatalf("GS ns samples = %v", gs)
	}
	if len(gs.allocs) != 1 || gs.allocs[0] != 56 {
		t.Fatalf("GS allocs samples = %v, want [56]", gs.allocs)
	}
	if _, ok := runs["BenchmarkRepairLevels-8"]; ok {
		t.Fatal("proc suffix not stripped")
	}
}

func TestMedianEven(t *testing.T) {
	if m := median([]float64{4, 1, 3, 2}); m != 2.5 {
		t.Fatalf("median = %v, want 2.5", m)
	}
}

func TestAllocsRegressedRule(t *testing.T) {
	cases := []struct {
		om, nm float64
		want   bool
	}{
		{0, 0, false},   // allocation-free stays allocation-free
		{0, 1, true},    // new allocation on a formerly clean path
		{56, 60, false}, // +7% under threshold
		{56, 70, true},  // +25% and 14 allocs worse
		{2, 2.4, false}, // +20% but under the 1-alloc absolute floor
		{4, 5, true},    // +25% and exactly one alloc worse
	}
	for _, c := range cases {
		if got := allocsRegressed(c.om, c.nm, 0.15); got != c.want {
			t.Errorf("allocsRegressed(%v, %v) = %v, want %v", c.om, c.nm, got, c.want)
		}
	}
}

func TestCompareGatesOnlyMatchedNames(t *testing.T) {
	oldRuns, _ := parse(strings.NewReader(sampleOld))
	newRuns, _ := parse(strings.NewReader(sampleNew))
	re := regexp.MustCompile(`^Benchmark(Unicast|GS|Repair)`)

	// GS regressed 30% ns/op and 25% allocs/op (gated -> one fail, not
	// two); ServeRoute regressed 350% but is not gated; Unicast moved
	// +0.5% (within threshold); Repair +3.3%.
	report, regressions := compare(oldRuns, newRuns, re, 0.15)
	if regressions != 1 {
		t.Fatalf("regressions = %d, want 1 (report:\n%s)", regressions, strings.Join(report, "\n"))
	}
	joined := strings.Join(report, "\n")
	for _, want := range []string{
		"FAIL ", "BenchmarkGSByDimension/q8",
		"56 -> 70 allocs/op",
		"new   BenchmarkBrandNew",
		"gone  BenchmarkRetired",
	} {
		if !strings.Contains(joined, want) {
			t.Fatalf("report missing %q:\n%s", want, joined)
		}
	}
	// The unguarded serve benchmark appears as plain ok despite its jump.
	if !strings.Contains(joined, "ok   BenchmarkServeRoute/readers=16/churn=true") {
		t.Fatalf("ungated benchmark not reported ok:\n%s", joined)
	}
}

func TestCompareFailsOnAllocsOnlyRegression(t *testing.T) {
	// ns/op flat, allocs/op 4 -> 8: the time gate alone would pass this.
	oldRuns, _ := parse(strings.NewReader(
		"BenchmarkRepairLevels-8 50000 30000 ns/op 4427 B/op 4 allocs/op\n"))
	newRuns, _ := parse(strings.NewReader(
		"BenchmarkRepairLevels-8 50000 30100 ns/op 9000 B/op 8 allocs/op\n"))
	re := regexp.MustCompile(`^BenchmarkRepair`)

	report, regressions := compare(oldRuns, newRuns, re, 0.15)
	if regressions != 1 {
		t.Fatalf("regressions = %d, want 1 (report:\n%s)", regressions, strings.Join(report, "\n"))
	}
	joined := strings.Join(report, "\n")
	if !strings.Contains(joined, "FAIL ") || !strings.Contains(joined, "4 -> 8 allocs/op") {
		t.Fatalf("allocs regression not reported:\n%s", joined)
	}

	// A benchmark that only reports allocs on one side is gated on time
	// alone rather than erroring out.
	newNoAllocs, _ := parse(strings.NewReader(
		"BenchmarkRepairLevels-8 50000 30100 ns/op\n"))
	report, regressions = compare(oldRuns, newNoAllocs, re, 0.15)
	if regressions != 0 {
		t.Fatalf("one-sided allocs data caused failure:\n%s", strings.Join(report, "\n"))
	}
}

func TestRunEndToEnd(t *testing.T) {
	dir := t.TempDir()
	oldPath := filepath.Join(dir, "old.txt")
	newPath := filepath.Join(dir, "new.txt")
	if err := os.WriteFile(oldPath, []byte(sampleOld), 0o644); err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(newPath, []byte(sampleNew), 0o644); err != nil {
		t.Fatal(err)
	}

	var out strings.Builder
	code, err := run([]string{"-old", oldPath, "-new", newPath}, &out)
	if code != 1 || err == nil {
		t.Fatalf("want regression exit 1, got code %d err %v\n%s", code, err, out.String())
	}
	// The default match covers the serving hot path too.
	if !strings.Contains(out.String(), "FAIL BenchmarkServeRoute/readers=16/churn=true") {
		t.Fatalf("default match did not gate the serve benchmark:\n%s", out.String())
	}

	// With a generous threshold and the serve family excluded via
	// -match, the same files pass (GS's 30% ns and 25% allocs sit
	// under 50%).
	out.Reset()
	code, err = run([]string{"-old", oldPath, "-new", newPath,
		"-threshold", "0.5", "-match", "^Benchmark(Unicast|GS|Repair)"}, &out)
	if code != 0 || err != nil {
		t.Fatalf("want pass, got code %d err %v\n%s", code, err, out.String())
	}
	if !strings.Contains(out.String(), "bench-gate: ok") {
		t.Fatalf("missing ok line:\n%s", out.String())
	}

	// Usage errors.
	if code, err := run([]string{"-old", oldPath}, &out); code != 2 || err == nil {
		t.Fatalf("missing -new: code %d err %v", code, err)
	}
	if code, err := run([]string{"-old", oldPath, "-new", newPath, "-match", "("}, &out); code != 2 || err == nil {
		t.Fatalf("bad regex: code %d err %v", code, err)
	}
	if code, err := run([]string{"-old", "nope.txt", "-new", newPath}, &out); code != 2 || err == nil {
		t.Fatalf("missing file: code %d err %v", code, err)
	}
}
