// Command benchgate compares two `go test -bench` output files — the
// merge-base run and the PR run — and fails when any benchmark matching
// a hot-path regex regressed beyond a threshold. It is the enforcement
// half of the CI bench-gate job: benchstat renders the human report,
// benchgate decides pass/fail, so the gate does not depend on parsing
// benchstat's output format.
//
// Usage:
//
//	benchgate -old base.txt -new pr.txt [-match REGEX] [-threshold 0.15]
//
// Both files may contain multiple samples per benchmark (go test
// -count=N); the comparison uses the median ns/op per name, which is
// robust to one noisy sample on shared CI runners. Benchmarks present
// in only one file are reported but never fail the gate (new or deleted
// benchmarks are not regressions). Exit status: 0 ok, 1 regression, 2
// usage or parse error.
package main
