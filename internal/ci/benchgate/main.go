// Command benchgate compares two `go test -bench` outputs (merge base
// vs PR head) and fails when a gated hot-path benchmark regresses
// beyond the threshold on either median ns/op or median allocs/op.
// Time catches slow code, allocation count catches the quieter
// regressions that eventually show up as GC pressure — the flat SoA
// core's repair path is gated on both.
package main

import (
	"bufio"
	"flag"
	"fmt"
	"io"
	"os"
	"regexp"
	"sort"
	"strconv"
	"strings"
)

func main() {
	code, err := run(os.Args[1:], os.Stdout)
	if err != nil {
		fmt.Fprintln(os.Stderr, "benchgate:", err)
		if code == 0 {
			code = 2
		}
	}
	os.Exit(code)
}

func run(args []string, out io.Writer) (int, error) {
	fs := flag.NewFlagSet("benchgate", flag.ContinueOnError)
	fs.SetOutput(io.Discard)
	oldPath := fs.String("old", "", "bench output of the merge base")
	newPath := fs.String("new", "", "bench output of the PR head")
	match := fs.String("match", `^Benchmark(Unicast|GS|Repair|Serve|Flight|Wire)`, "gate only benchmarks matching this regex")
	threshold := fs.Float64("threshold", 0.15, "fail when new median ns/op or allocs/op exceeds old by this fraction")
	if err := fs.Parse(args); err != nil {
		return 2, err
	}
	if *oldPath == "" || *newPath == "" {
		return 2, fmt.Errorf("both -old and -new are required")
	}
	re, err := regexp.Compile(*match)
	if err != nil {
		return 2, fmt.Errorf("bad -match regex: %v", err)
	}

	oldRuns, err := parseFile(*oldPath)
	if err != nil {
		return 2, err
	}
	newRuns, err := parseFile(*newPath)
	if err != nil {
		return 2, err
	}

	report, regressions := compare(oldRuns, newRuns, re, *threshold)
	for _, line := range report {
		fmt.Fprintln(out, line)
	}
	if regressions > 0 {
		return 1, fmt.Errorf("%d hot-path benchmark(s) regressed beyond %.0f%%",
			regressions, *threshold*100)
	}
	fmt.Fprintf(out, "bench-gate: ok (%d gated benchmarks)\n", countGated(newRuns, re))
	return 0, nil
}

// samples holds the per-benchmark measurements of one bench file:
// ns/op is always present; allocs/op only when the benchmark reported
// allocations (b.ReportAllocs or -benchmem).
type samples struct {
	ns     []float64
	allocs []float64
}

// parseFile extracts per-benchmark ns/op and allocs/op samples from
// `go test -bench` output. Sub-benchmark names keep their slash path;
// the trailing -GOMAXPROCS suffix is stripped so runs from differently
// sized machines still line up.
func parseFile(path string) (map[string]*samples, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	runs, err := parse(f)
	if err != nil {
		return nil, fmt.Errorf("%s: %v", path, err)
	}
	return runs, nil
}

func parse(r io.Reader) (map[string]*samples, error) {
	runs := map[string]*samples{}
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 1024*1024), 1024*1024)
	for sc.Scan() {
		fields := strings.Fields(sc.Text())
		if len(fields) < 4 || !strings.HasPrefix(fields[0], "Benchmark") {
			continue
		}
		name := trimProcSuffix(fields[0])
		// Metric values precede their unit labels.
		for i := 2; i < len(fields); i++ {
			var dst *[]float64
			switch fields[i] {
			case "ns/op":
				s := runs[name]
				if s == nil {
					s = &samples{}
					runs[name] = s
				}
				dst = &s.ns
			case "allocs/op":
				s := runs[name]
				if s == nil {
					s = &samples{}
					runs[name] = s
				}
				dst = &s.allocs
			default:
				continue
			}
			v, err := strconv.ParseFloat(fields[i-1], 64)
			if err != nil {
				return nil, fmt.Errorf("bad %s value in %q", fields[i], sc.Text())
			}
			*dst = append(*dst, v)
		}
	}
	return runs, sc.Err()
}

// trimProcSuffix drops the -N GOMAXPROCS suffix go test appends to
// benchmark names (BenchmarkFoo-8 -> BenchmarkFoo), including on
// sub-benchmarks (BenchmarkFoo/bar=1-8 -> BenchmarkFoo/bar=1).
func trimProcSuffix(name string) string {
	i := strings.LastIndexByte(name, '-')
	if i <= 0 {
		return name
	}
	if _, err := strconv.Atoi(name[i+1:]); err != nil {
		return name
	}
	return name[:i]
}

func median(v []float64) float64 {
	s := append([]float64(nil), v...)
	sort.Float64s(s)
	n := len(s)
	if n%2 == 1 {
		return s[n/2]
	}
	return (s[n/2-1] + s[n/2]) / 2
}

// allocsRegressed applies the allocs/op rule: beyond the relative
// threshold AND at least one whole allocation worse. The absolute floor
// keeps sub-allocation jitter from tripping the relative test, while a
// 0 -> N jump (new allocation on a formerly allocation-free path) always
// fails, since any N exceeds 0*(1+threshold).
func allocsRegressed(om, nm, threshold float64) bool {
	return nm > om*(1+threshold) && nm-om >= 1
}

// compare builds the report and counts gated regressions. A benchmark
// counts once even if both metrics regressed.
func compare(oldRuns, newRuns map[string]*samples, re *regexp.Regexp, threshold float64) ([]string, int) {
	names := make([]string, 0, len(newRuns))
	for name := range newRuns {
		names = append(names, name)
	}
	sort.Strings(names)

	var report []string
	regressions := 0
	for _, name := range names {
		ns := newRuns[name]
		nv := median(ns.ns)
		os, ok := oldRuns[name]
		if !ok {
			report = append(report, fmt.Sprintf("  new   %-60s %12.1f ns/op", name, nv))
			continue
		}
		om := median(os.ns)
		delta := (nv - om) / om
		gated := re.MatchString(name)
		failed := gated && delta > threshold
		line := fmt.Sprintf("%-60s %12.1f -> %10.1f ns/op (%+.1f%%)", name, om, nv, delta*100)
		if len(os.allocs) > 0 && len(ns.allocs) > 0 {
			oa, na := median(os.allocs), median(ns.allocs)
			aDelta := 0.0
			if oa > 0 {
				aDelta = (na - oa) / oa * 100
			} else if na > 0 {
				aDelta = 100
			}
			if gated && allocsRegressed(oa, na, threshold) {
				failed = true
			}
			line += fmt.Sprintf(" | %.0f -> %.0f allocs/op (%+.1f%%)", oa, na, aDelta)
		}
		status := "  ok   "
		if gated {
			status = "  gate "
			if failed {
				status = "  FAIL "
				regressions++
			}
		}
		report = append(report, status+line)
	}
	var gone []string
	for name := range oldRuns {
		if _, ok := newRuns[name]; !ok {
			gone = append(gone, name)
		}
	}
	sort.Strings(gone)
	for _, name := range gone {
		report = append(report, "  gone  "+name)
	}
	return report, regressions
}

func countGated(runs map[string]*samples, re *regexp.Regexp) int {
	n := 0
	for name := range runs {
		if re.MatchString(name) {
			n++
		}
	}
	return n
}
