package main

import (
	"bufio"
	"flag"
	"fmt"
	"io"
	"os"
	"regexp"
	"sort"
	"strconv"
	"strings"
)

func main() {
	code, err := run(os.Args[1:], os.Stdout)
	if err != nil {
		fmt.Fprintln(os.Stderr, "benchgate:", err)
		if code == 0 {
			code = 2
		}
	}
	os.Exit(code)
}

func run(args []string, out io.Writer) (int, error) {
	fs := flag.NewFlagSet("benchgate", flag.ContinueOnError)
	fs.SetOutput(io.Discard)
	oldPath := fs.String("old", "", "bench output of the merge base")
	newPath := fs.String("new", "", "bench output of the PR head")
	match := fs.String("match", `^Benchmark(Unicast|GS|Repair|Serve|Flight)`, "gate only benchmarks matching this regex")
	threshold := fs.Float64("threshold", 0.15, "fail when new median ns/op exceeds old by this fraction")
	if err := fs.Parse(args); err != nil {
		return 2, err
	}
	if *oldPath == "" || *newPath == "" {
		return 2, fmt.Errorf("both -old and -new are required")
	}
	re, err := regexp.Compile(*match)
	if err != nil {
		return 2, fmt.Errorf("bad -match regex: %v", err)
	}

	oldRuns, err := parseFile(*oldPath)
	if err != nil {
		return 2, err
	}
	newRuns, err := parseFile(*newPath)
	if err != nil {
		return 2, err
	}

	report, regressions := compare(oldRuns, newRuns, re, *threshold)
	for _, line := range report {
		fmt.Fprintln(out, line)
	}
	if regressions > 0 {
		return 1, fmt.Errorf("%d hot-path benchmark(s) regressed beyond %.0f%%",
			regressions, *threshold*100)
	}
	fmt.Fprintf(out, "bench-gate: ok (%d gated benchmarks)\n", countGated(newRuns, re))
	return 0, nil
}

// parseFile extracts per-benchmark ns/op samples from `go test -bench`
// output. Sub-benchmark names keep their slash path; the trailing
// -GOMAXPROCS suffix is stripped so runs from differently sized
// machines still line up.
func parseFile(path string) (map[string][]float64, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	runs, err := parse(f)
	if err != nil {
		return nil, fmt.Errorf("%s: %v", path, err)
	}
	return runs, nil
}

func parse(r io.Reader) (map[string][]float64, error) {
	runs := map[string][]float64{}
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 1024*1024), 1024*1024)
	for sc.Scan() {
		fields := strings.Fields(sc.Text())
		if len(fields) < 4 || !strings.HasPrefix(fields[0], "Benchmark") {
			continue
		}
		name := trimProcSuffix(fields[0])
		// ns/op is labeled; find the value preceding the label.
		for i := 2; i < len(fields); i++ {
			if fields[i] != "ns/op" {
				continue
			}
			v, err := strconv.ParseFloat(fields[i-1], 64)
			if err != nil {
				return nil, fmt.Errorf("bad ns/op value in %q", sc.Text())
			}
			runs[name] = append(runs[name], v)
			break
		}
	}
	return runs, sc.Err()
}

// trimProcSuffix drops the -N GOMAXPROCS suffix go test appends to
// benchmark names (BenchmarkFoo-8 -> BenchmarkFoo), including on
// sub-benchmarks (BenchmarkFoo/bar=1-8 -> BenchmarkFoo/bar=1).
func trimProcSuffix(name string) string {
	i := strings.LastIndexByte(name, '-')
	if i <= 0 {
		return name
	}
	if _, err := strconv.Atoi(name[i+1:]); err != nil {
		return name
	}
	return name[:i]
}

func median(v []float64) float64 {
	s := append([]float64(nil), v...)
	sort.Float64s(s)
	n := len(s)
	if n%2 == 1 {
		return s[n/2]
	}
	return (s[n/2-1] + s[n/2]) / 2
}

// compare builds the report and counts gated regressions.
func compare(oldRuns, newRuns map[string][]float64, re *regexp.Regexp, threshold float64) ([]string, int) {
	names := make([]string, 0, len(newRuns))
	for name := range newRuns {
		names = append(names, name)
	}
	sort.Strings(names)

	var report []string
	regressions := 0
	for _, name := range names {
		nv := median(newRuns[name])
		ov, ok := oldRuns[name]
		if !ok {
			report = append(report, fmt.Sprintf("  new   %-60s %12.1f ns/op", name, nv))
			continue
		}
		om := median(ov)
		delta := (nv - om) / om
		status := "  ok   "
		if re.MatchString(name) {
			if delta > threshold {
				status = "  FAIL "
				regressions++
			} else {
				status = "  gate "
			}
		}
		report = append(report, fmt.Sprintf("%s%-60s %12.1f -> %10.1f ns/op (%+.1f%%)",
			status, name, om, nv, delta*100))
	}
	var gone []string
	for name := range oldRuns {
		if _, ok := newRuns[name]; !ok {
			gone = append(gone, name)
		}
	}
	sort.Strings(gone)
	for _, name := range gone {
		report = append(report, "  gone  "+name)
	}
	return report, regressions
}

func countGated(runs map[string][]float64, re *regexp.Regexp) int {
	n := 0
	for name := range runs {
		if re.MatchString(name) {
			n++
		}
	}
	return n
}
