// Command flightcheck is the CI assertion behind `make flight-smoke`:
// it fetches a running slserve's /debug/flight endpoint, parses the
// JSON snapshot, and fails unless the recorder holds at least one
// well-formed request record (nonzero ID, known request kind). It
// proves the whole flight pipeline end to end — recorder enabled by
// default, request IDs allocated on the serving path, ring readable
// over HTTP while traffic is in flight.
//
// Usage:
//
//	flightcheck URL
//
// where URL points at the /debug/flight endpoint. Exit status: 0 when
// the snapshot holds at least one parseable trace, 1 when it is empty
// or malformed, 2 on usage or transport errors.
package main

import (
	"encoding/json"
	"fmt"
	"net/http"
	"os"

	"repro/internal/obs"
)

func main() {
	os.Exit(run(os.Args[1:], os.Stdout))
}

func run(args []string, out *os.File) int {
	if len(args) != 1 {
		fmt.Fprintln(os.Stderr, "usage: flightcheck URL")
		return 2
	}
	url := args[0]
	resp, err := http.Get(url)
	if err != nil {
		fmt.Fprintln(os.Stderr, "flightcheck:", err)
		return 2
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		fmt.Fprintf(os.Stderr, "flightcheck: GET %s: HTTP %s\n", url, resp.Status)
		return 2
	}

	var snap obs.FlightSnapshot
	if err := json.NewDecoder(resp.Body).Decode(&snap); err != nil {
		fmt.Fprintf(os.Stderr, "flightcheck: %s: bad snapshot JSON: %v\n", url, err)
		return 1
	}
	if snap.Issued == 0 || len(snap.Records) == 0 {
		fmt.Fprintf(os.Stderr, "flightcheck: %s: no flight records (issued %d, retained %d)\n",
			url, snap.Issued, len(snap.Records))
		return 1
	}
	// The decoder already rejected unknown enum spellings via
	// UnmarshalText; check the invariants a trace must satisfy.
	for i, rec := range snap.Records {
		if rec.ID == 0 {
			fmt.Fprintf(os.Stderr, "flightcheck: record %d has ID 0\n", i)
			return 1
		}
		if rec.Hops < rec.Hamming && rec.Outcome != obs.OutcomeFailure && rec.Outcome != obs.OutcomeNone {
			fmt.Fprintf(os.Stderr, "flightcheck: record %d delivered in %d hops over distance %d\n",
				i, rec.Hops, rec.Hamming)
			return 1
		}
	}
	fmt.Fprintf(out, "flightcheck: %d records retained (%d issued), newest id %d — ok\n",
		len(snap.Records), snap.Issued, snap.Records[0].ID)
	return 0
}
