package oracle_test

import (
	"fmt"
	"testing"

	"repro/internal/core"
	"repro/internal/expt"
	"repro/internal/faults"
	"repro/internal/oracle"
	"repro/internal/stats"
	"repro/internal/topo"
)

// TestGoldenDistances pins the oracle's BFS against hand-checked
// distance tables for the paper's figure scenarios. The tables encode
// the scenarios' load-bearing facts: Fig. 1's detours around the fault
// cluster, Fig. 3's cut-off node 1110 (distance -1 from everywhere, 0
// from itself), and Fig. 4's length-3 detour from 1000 to 1001 forced
// by the faulty link between them.
func TestGoldenDistances(t *testing.T) {
	c := topo.MustCube(4)
	cases := []struct {
		name string
		set  *faults.Set
		src  string
		want []int
	}{
		{"Fig1", expt.Fig1Set(), "0000", []int{0, 1, 1, -1, -1, 2, -1, 3, 1, -1, 2, 3, 2, 3, 3, 4}},
		{"Fig1", expt.Fig1Set(), "1111", []int{4, 3, 3, -1, -1, 2, -1, 1, 3, -1, 2, 1, 2, 1, 1, 0}},
		{"Fig1", expt.Fig1Set(), "0111", []int{3, 2, 4, -1, -1, 1, -1, 0, 4, -1, 3, 2, 3, 2, 2, 1}},
		{"Fig3", expt.Fig3Set(), "0000", []int{0, 1, 1, 2, 1, 2, -1, 3, 1, 2, -1, 3, -1, 3, -1, -1}},
		{"Fig3", expt.Fig3Set(), "1110", []int{-1, -1, -1, -1, -1, -1, -1, -1, -1, -1, -1, -1, -1, -1, 0, -1}},
		{"Fig3", expt.Fig3Set(), "0111", []int{3, 2, 2, 1, 2, 1, -1, 0, 4, 3, -1, 2, -1, 2, -1, -1}},
		{"Fig4", expt.Fig4Set(), "1000", []int{-1, 4, 2, 3, -1, 5, 3, 4, 0, 3, 1, 2, -1, 4, -1, 3}},
		{"Fig4", expt.Fig4Set(), "0001", []int{-1, 0, 2, 1, -1, 1, 3, 2, 4, 1, 3, 2, -1, 2, -1, 3}},
		{"Fig4", expt.Fig4Set(), "1111", []int{-1, 3, 3, 2, -1, 2, 2, 1, 3, 2, 2, 1, -1, 1, -1, 0}},
	}
	for _, tc := range cases {
		t.Run(fmt.Sprintf("%s/src=%s", tc.name, tc.src), func(t *testing.T) {
			got := oracle.Distances(tc.set, c.MustParse(tc.src))
			for a, want := range tc.want {
				if got[a] != want {
					t.Errorf("dist(%s, %s) = %d, want %d",
						tc.src, c.Format(topo.NodeID(a)), got[a], want)
				}
			}
		})
	}
}

// fuzzedSets builds a deterministic spread of fault sets over binary and
// mixed topologies, with node faults, link faults, and both.
func fuzzedSets(tb testing.TB) []*faults.Set {
	tb.Helper()
	rng := stats.NewRNG(17)
	var sets []*faults.Set
	shapes := []topo.Topology{
		topo.MustCube(4),
		topo.MustCube(6),
		topo.MustMixed(2, 3, 2),
		topo.MustMixed(3, 3, 3),
	}
	for _, tp := range shapes {
		for _, load := range []int{1, tp.Dim(), 2 * tp.Dim()} {
			s := faults.NewSet(tp)
			if err := faults.InjectUniform(s, rng, load); err != nil {
				tb.Fatal(err)
			}
			sets = append(sets, s)
		}
		for _, ev := range faults.ChurnSchedule(tp, 5, 3*tp.Dim(), faults.ChurnOptions{Links: true}) {
			s := faults.NewSet(tp)
			if err := s.Apply(ev); err != nil {
				tb.Fatal(err)
			}
			sets = append(sets, s)
		}
	}
	return sets
}

// TestOracleAgreesWithConnectivity is the metamorphic check required by
// the issue: two independently written BFS implementations (the oracle's
// level-synchronous sweep and internal/faults' FIFO sweep) must agree on
// every distance and every reachability verdict.
func TestOracleAgreesWithConnectivity(t *testing.T) {
	for si, set := range fuzzedSets(t) {
		tp := set.Topology()
		for a := 0; a < tp.Nodes(); a++ {
			src := topo.NodeID(a)
			got := oracle.Distances(set, src)
			want := faults.Distances(set, src)
			for b := range got {
				if got[b] != want[b] {
					t.Fatalf("set %d: dist(%d,%d) oracle %d, connectivity %d",
						si, a, b, got[b], want[b])
				}
			}
			for b := 0; b < tp.Nodes(); b++ {
				dst := topo.NodeID(b)
				if r, s := oracle.Reachable(set, src, dst), faults.SameComponent(set, src, dst); r != s {
					t.Fatalf("set %d: reachable(%d,%d) oracle %v, components %v", si, a, b, r, s)
				}
			}
		}
	}
}

// TestCheckLevelsRealizesClaims runs the Theorem-2 realization check on
// the figure scenarios and the fuzzed spread: every level the fixpoint
// assigns must be backed by actual fault-free optimal paths.
func TestCheckLevelsRealizesClaims(t *testing.T) {
	sets := append(fuzzedSets(t), expt.Fig1Set(), expt.Fig3Set(), expt.Fig4Set())
	for si, set := range sets {
		as := core.Compute(set, core.Options{})
		if err := oracle.CheckLevels(as); err != nil {
			t.Fatalf("set %d (%s): %v", si, set, err)
		}
	}
}

// TestCheckLevelsCatchesStaleClaim is the oracle's own negative
// control, built from the exact failure mode that motivates the churn
// suite: a level table left stale after new faults admits routes that no
// longer exist. Compute on a healthy cube (everyone n-safe), then cut a
// corner of the cube off; the stale all-n table now claims optimal reach
// into the severed region and CheckLevels must object. Without this, a
// vacuous CheckLevels would silently pass every chaos run.
func TestCheckLevelsCatchesStaleClaim(t *testing.T) {
	c := topo.MustCube(4)
	set := faults.NewSet(c)
	as := core.Compute(set, core.Options{})
	for _, s := range []string{"0001", "0010", "0100", "1000"} {
		if err := set.FailNode(c.MustParse(s)); err != nil {
			t.Fatal(err)
		}
	}
	if err := oracle.CheckLevels(as); err == nil {
		t.Fatal("CheckLevels accepted a stale assignment claiming reach into a severed region")
	}
}

// TestCheckPath pins the path judge on the Fig. 1 cube.
func TestCheckPath(t *testing.T) {
	set := expt.Fig1Set()
	c := topo.MustCube(4)
	p := func(ss ...string) []topo.NodeID {
		out := make([]topo.NodeID, len(ss))
		for i, s := range ss {
			out[i] = c.MustParse(s)
		}
		return out
	}
	if err := oracle.CheckPath(set, p("0000", "0001", "0101", "0111")); err != nil {
		t.Fatalf("legal path rejected: %v", err)
	}
	if err := oracle.CheckPath(set, nil); err == nil {
		t.Fatal("empty path accepted")
	}
	if err := oracle.CheckPath(set, p("0000", "0100")); err == nil {
		t.Fatal("path through faulty node accepted")
	}
	if err := oracle.CheckPath(set, p("0000", "0011")); err == nil {
		t.Fatal("non-adjacent hop accepted")
	}
	lset := expt.Fig4Set()
	if err := oracle.CheckPath(lset, p("1000", "1001")); err == nil {
		t.Fatal("path across faulty link accepted")
	}
}
