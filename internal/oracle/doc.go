// Package oracle is the independent ground truth the chaos and churn
// suites judge the safety-level machinery against. It deliberately
// re-derives everything from first principles — level-synchronous BFS
// over the surviving graph, pure path inspection — sharing no code with
// internal/core's fixpoint or internal/faults' connectivity helpers, so
// that a bug in the machinery under test cannot also hide in the judge.
//
// Key invariant: independence. The oracle may be asymptotically slower
// than the machinery it checks (it prefers obviously-correct over
// fast), and a metamorphic test asserts the oracle and internal/faults
// agree on reachability, so the two codebases cross-validate without
// either being trusted alone. The guarantees it certifies are the
// paper's: Theorem 2 optimal-path existence and Section 3's routing
// outcomes.
package oracle
