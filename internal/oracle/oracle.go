package oracle

import (
	"fmt"

	"repro/internal/core"
	"repro/internal/faults"
	"repro/internal/topo"
)

// Distances returns the exact shortest fault-free path length from src
// to every node: -1 means unreachable (or faulty, or src itself is
// faulty). A fault-free path uses only nonfaulty nodes and nonfaulty
// links. The BFS is level-synchronous: it expands one whole frontier at
// a time, a deliberately different traversal structure from the
// FIFO-queue BFS in internal/faults/connectivity.
func Distances(set *faults.Set, src topo.NodeID) []int {
	t := set.Topology()
	dist := make([]int, t.Nodes())
	for i := range dist {
		dist[i] = -1
	}
	if set.NodeFaulty(src) {
		return dist
	}
	dist[src] = 0
	frontier := []topo.NodeID{src}
	var next []topo.NodeID
	var sibs []topo.NodeID
	for d := 1; len(frontier) > 0; d++ {
		next = next[:0]
		for _, a := range frontier {
			for i := 0; i < t.Dim(); i++ {
				sibs = t.Siblings(a, i, sibs[:0])
				for _, b := range sibs {
					if dist[b] >= 0 || set.NodeFaulty(b) || set.LinkFaulty(a, b) {
						continue
					}
					dist[b] = d
					next = append(next, b)
				}
			}
		}
		frontier, next = next, frontier
	}
	return dist
}

// Reachable reports whether a fault-free path connects a and b.
func Reachable(set *faults.Set, a, b topo.NodeID) bool {
	if set.NodeFaulty(a) || set.NodeFaulty(b) {
		return false
	}
	return Distances(set, a)[b] >= 0
}

// CheckPath verifies that path is a legal route under the current fault
// state: non-empty, hop-by-hop adjacent, never visiting a faulty node,
// and never traversing a faulty link. It returns nil for a legal path
// and a descriptive error naming the first violation otherwise.
func CheckPath(set *faults.Set, path []topo.NodeID) error {
	t := set.Topology()
	if len(path) == 0 {
		return fmt.Errorf("oracle: empty path")
	}
	for i, a := range path {
		if !t.Contains(a) {
			return fmt.Errorf("oracle: hop %d node %d outside topology", i, a)
		}
		if set.NodeFaulty(a) {
			return fmt.Errorf("oracle: hop %d visits faulty node %s", i, t.Format(a))
		}
		if i == 0 {
			continue
		}
		prev := path[i-1]
		if !t.Adjacent(prev, a) {
			return fmt.Errorf("oracle: hop %d: %s and %s not adjacent",
				i, t.Format(prev), t.Format(a))
		}
		if set.LinkFaulty(prev, a) {
			return fmt.Errorf("oracle: hop %d traverses faulty link (%s,%s)",
				i, t.Format(prev), t.Format(a))
		}
	}
	return nil
}

// CheckLevels asserts that every Theorem-2 guarantee claimed by the
// assignment is realized by an actual fault-free path: for every
// nonfaulty node a with own safety level k, every nonfaulty destination
// d within lattice distance k of a is reachable by a path of exactly
// that length. (A path of length Distance(a,d) necessarily fixes one
// differing coordinate per hop, so BFS distance == lattice distance is
// precisely the "optimal path exists" predicate.)
//
// One documented caveat: an N2 node's own level is computed by treating
// the far ends of its faulty links as faulty (Section 4.1), so the
// level makes no claim about the distance-1 destination sitting across
// a faulty link — that pair is skipped.
func CheckLevels(as *core.Assignment) error {
	return CheckLevelsFrom(as, nil)
}

// CheckLevelsFrom is CheckLevels restricted to the given source nodes
// (nil means every node) — the handle the large-cube chaos runs use to
// sample the quadratic check without weakening it per source.
func CheckLevelsFrom(as *core.Assignment, sources []topo.NodeID) error {
	set := as.Faults()
	t := as.Topology()
	if sources == nil {
		sources = make([]topo.NodeID, t.Nodes())
		for a := range sources {
			sources[a] = topo.NodeID(a)
		}
	}
	for _, a := range sources {
		if set.NodeFaulty(a) {
			continue
		}
		k := as.OwnLevel(a)
		if k == 0 {
			continue
		}
		dist := Distances(set, a)
		for b := 0; b < t.Nodes(); b++ {
			d := topo.NodeID(b)
			if set.NodeFaulty(d) {
				continue
			}
			h := t.Distance(a, d)
			if h == 0 || h > k {
				continue
			}
			if h == 1 && set.LinkFaulty(a, d) {
				continue // the Section 4.1 own-level caveat
			}
			if dist[d] != h {
				return fmt.Errorf(
					"oracle: node %s claims level %d but %s at distance %d has shortest fault-free path %d",
					t.Format(a), k, t.Format(d), h, dist[d])
			}
		}
	}
	return nil
}
