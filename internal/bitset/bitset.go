// Package bitset provides the word-addressed bit sets the flat
// structure-of-arrays core is built on: dense node-indexed membership
// sets (faulty, N2, clamp, dirty, affected) stored as []uint64 words
// instead of map[int]bool. A set over Q20's 1,048,576 nodes costs 128
// KiB of contiguous memory, clones with one copy, and iterates in
// ascending index order by construction — the property the
// deterministic sweep and repair schedules depend on.
package bitset

import "math/bits"

// Set is a fixed-capacity bit set addressed by dense non-negative
// indices. The zero value is an empty set of capacity 0; construct with
// New. Methods never grow the set: indexing past the capacity given to
// New is a programming error and panics like any slice overrun.
type Set []uint64

// New returns an empty set with capacity for indices [0, n).
func New(n int) Set { return make(Set, (n+63)>>6) }

// Test reports whether index i is a member.
func (s Set) Test(i int) bool { return s[i>>6]&(1<<(uint(i)&63)) != 0 }

// Add inserts index i.
func (s Set) Add(i int) { s[i>>6] |= 1 << (uint(i) & 63) }

// Remove deletes index i.
func (s Set) Remove(i int) { s[i>>6] &^= 1 << (uint(i) & 63) }

// Flip toggles index i's membership.
func (s Set) Flip(i int) { s[i>>6] ^= 1 << (uint(i) & 63) }

// Reset empties the set in place, keeping its capacity.
func (s Set) Reset() {
	for i := range s {
		s[i] = 0
	}
}

// Any reports whether the set has at least one member.
func (s Set) Any() bool {
	for _, w := range s {
		if w != 0 {
			return true
		}
	}
	return false
}

// Count returns the number of members.
func (s Set) Count() int {
	n := 0
	for _, w := range s {
		n += bits.OnesCount64(w)
	}
	return n
}

// Clone returns an independent copy (one memcpy).
func (s Set) Clone() Set { return append(Set(nil), s...) }

// CopyFrom overwrites s with src; both must come from the same New(n).
func (s Set) CopyFrom(src Set) { copy(s, src) }

// AppendIndices appends the members in ascending order to dst and
// returns the extended slice. Indices are emitted as int32 — the dense
// node-index type of the flat core (topologies are capped well below
// 2^31 nodes).
func (s Set) AppendIndices(dst []int32) []int32 {
	for wi, w := range s {
		base := int32(wi << 6)
		for w != 0 {
			dst = append(dst, base+int32(bits.TrailingZeros64(w)))
			w &= w - 1
		}
	}
	return dst
}

// ForEach calls fn for every member in ascending order.
func (s Set) ForEach(fn func(i int)) {
	for wi, w := range s {
		base := wi << 6
		for w != 0 {
			fn(base + bits.TrailingZeros64(w))
			w &= w - 1
		}
	}
}

// DrainInto appends the members in ascending order to dst, clears the
// set, and returns the extended slice — the frontier hand-off primitive
// of the repair loop: the dirty marks accumulated during one round
// become the next round's work list in one pass, leaving the mark set
// empty for reuse.
func (s Set) DrainInto(dst []int32) []int32 {
	for wi, w := range s {
		if w == 0 {
			continue
		}
		s[wi] = 0
		base := int32(wi << 6)
		for w != 0 {
			dst = append(dst, base+int32(bits.TrailingZeros64(w)))
			w &= w - 1
		}
	}
	return dst
}
