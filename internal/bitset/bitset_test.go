package bitset

import (
	"math/rand"
	"sort"
	"testing"
)

func TestBasicOps(t *testing.T) {
	s := New(200)
	if s.Any() || s.Count() != 0 {
		t.Fatal("new set not empty")
	}
	for _, i := range []int{0, 1, 63, 64, 127, 128, 199} {
		s.Add(i)
		if !s.Test(i) {
			t.Fatalf("Test(%d) false after Add", i)
		}
	}
	if got := s.Count(); got != 7 {
		t.Fatalf("Count = %d, want 7", got)
	}
	s.Remove(64)
	if s.Test(64) {
		t.Fatal("Test(64) true after Remove")
	}
	s.Flip(64)
	if !s.Test(64) {
		t.Fatal("Test(64) false after Flip")
	}
	s.Flip(64)
	if s.Test(64) {
		t.Fatal("Test(64) true after double Flip")
	}
	s.Reset()
	if s.Any() {
		t.Fatal("set not empty after Reset")
	}
}

// TestAgainstMap drives the set and a map[int]bool with the same random
// mutation stream and requires identical membership, count, and
// ascending iteration order — the exact contract the repair frontier
// relies on after replacing its maps.
func TestAgainstMap(t *testing.T) {
	const n = 1000
	s := New(n)
	ref := map[int]bool{}
	rng := rand.New(rand.NewSource(7))
	for step := 0; step < 5000; step++ {
		i := rng.Intn(n)
		switch rng.Intn(3) {
		case 0:
			s.Add(i)
			ref[i] = true
		case 1:
			s.Remove(i)
			delete(ref, i)
		case 2:
			s.Flip(i)
			if ref[i] {
				delete(ref, i)
			} else {
				ref[i] = true
			}
		}
	}
	if s.Count() != len(ref) {
		t.Fatalf("Count = %d, map has %d", s.Count(), len(ref))
	}
	want := make([]int32, 0, len(ref))
	for i := range ref {
		want = append(want, int32(i))
	}
	sort.Slice(want, func(a, b int) bool { return want[a] < want[b] })
	got := s.AppendIndices(nil)
	if len(got) != len(want) {
		t.Fatalf("AppendIndices len %d, want %d", len(got), len(want))
	}
	for i := range got {
		if got[i] != want[i] {
			t.Fatalf("index %d: got %d, want %d", i, got[i], want[i])
		}
	}
	var walked []int32
	s.ForEach(func(i int) { walked = append(walked, int32(i)) })
	for i := range walked {
		if walked[i] != want[i] {
			t.Fatalf("ForEach order diverges at %d", i)
		}
	}
	cl := s.Clone()
	drained := s.DrainInto(nil)
	for i := range drained {
		if drained[i] != want[i] {
			t.Fatalf("DrainInto order diverges at %d", i)
		}
	}
	if s.Any() {
		t.Fatal("set not empty after DrainInto")
	}
	if cl.Count() != len(ref) {
		t.Fatal("Clone shares storage with drained set")
	}
	s.CopyFrom(cl)
	if s.Count() != len(ref) {
		t.Fatal("CopyFrom did not restore membership")
	}
}

func TestWordBoundaries(t *testing.T) {
	s := New(128)
	s.Add(63)
	s.Add(64)
	got := s.AppendIndices(nil)
	if len(got) != 2 || got[0] != 63 || got[1] != 64 {
		t.Fatalf("boundary indices = %v", got)
	}
}
