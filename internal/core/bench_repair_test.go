package core

import (
	"testing"

	"repro/internal/topo"
)

// BenchmarkRepairLevels measures single-event incremental repair on the
// BENCH_2 workload (Q12, 24 faults): fail or recover one node, replay
// the journal delta through RepairLevels. This is the hot write path of
// the serving engine, and the Repair leg of the CI bench gate.
func BenchmarkRepairLevels(b *testing.B) {
	set := benchSet(b)
	as := Compute(set, Options{})
	gen := set.Generation()
	victim := topo.NodeID(1000)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		var err error
		if i%2 == 0 {
			err = set.FailNode(victim)
		} else {
			err = set.RecoverNode(victim)
		}
		if err != nil {
			b.Fatal(err)
		}
		delta, ok := set.Since(gen)
		if !ok {
			b.Fatal("journal gap")
		}
		rep, ok := RepairLevels(as, set, delta, Options{})
		if !ok {
			b.Fatal("repair refused")
		}
		as, gen = rep, set.Generation()
	}
}
