package core

import (
	"fmt"

	"repro/internal/topo"
)

// Session is an in-flight unicast that advances one hop per Step call,
// so a caller can interleave fault events with message progress — the
// demand-driven maintenance scenario of Section 2.2: "in case of
// occurrence of a new faulty node that affects a unicast, this unicast
// might either be aborted or be re-routed from the current node after
// all the safety levels are stabilized."
//
// The session consults the router's fault oracle at every hop, so a
// node that died after admission is seen immediately; the safety levels
// themselves may be stale until the caller recomputes them and calls
// Reroute. A Step that finds every usable preferred neighbor gone
// returns ErrBlocked instead of guessing.
type Session struct {
	rt   *Router
	dest topo.NodeID
	cur  topo.NodeID
	path topo.Path
	// pendingSpare marks that the C3 spare hop is still owed from the
	// most recent admission.
	pendingSpare bool
	done         bool
	// reroutes counts how many times the session was re-admitted.
	reroutes int
	// lastCond is the most recent admission condition (initial Start or
	// latest successful Reroute), reported with the terminal event.
	lastCond Condition
}

// ErrBlocked reports that the next hop could not be chosen because
// every usable preferred neighbor is gone — the signal to recompute
// safety levels and Reroute (or abort).
var ErrBlocked = fmt.Errorf("core: route blocked; recompute levels and reroute")

// Start admits a unicast from s to d and returns the in-flight session.
// A Failure admission returns the condition result and a nil session.
func (rt *Router) Start(s, d topo.NodeID) (*Session, Condition, Outcome) {
	h := rt.as.t.Distance(s, d)
	cond, out := rt.Feasibility(s, d)
	if out == Failure || rt.as.set.NodeFaulty(s) {
		if rt.as.set.NodeFaulty(s) {
			cond, out = CondNone, Failure
		}
		if rt.obs != nil {
			rt.obs.Admit(int(s), h, rt.as.OwnLevel(s), cond.String(), Failure.String())
			rt.obs.Done(int(s), cond.String(), Failure.String(), 0, h, 0, "")
		}
		return nil, cond, out
	}
	if rt.obs != nil {
		rt.obs.Admit(int(s), h, rt.as.OwnLevel(s), cond.String(), out.String())
	}
	sess := &Session{
		rt:           rt,
		dest:         d,
		cur:          s,
		path:         topo.Path{s},
		pendingSpare: cond == CondC3,
		done:         s == d,
		lastCond:     cond,
	}
	if sess.done && rt.obs != nil {
		rt.obs.Done(int(s), cond.String(), out.String(), 0, 0, 0, "")
	}
	return sess, cond, out
}

// Done reports whether the message has arrived.
func (s *Session) Done() bool { return s.done }

// At returns the node currently holding the message.
func (s *Session) At() topo.NodeID { return s.cur }

// Path returns the walk traveled so far (including reroute segments).
func (s *Session) Path() topo.Path { return append(topo.Path(nil), s.path...) }

// Hops returns the hops traveled so far.
func (s *Session) Hops() int { return s.path.Len() }

// Reroutes returns how many times the session was re-admitted after a
// blockage.
func (s *Session) Reroutes() int { return s.reroutes }

// Step advances the message one hop. It returns true when the message
// has arrived. ErrBlocked means no usable preferred neighbor remains
// under the current fault oracle — recompute levels and call Reroute.
func (s *Session) Step() (bool, error) {
	if s.done {
		return true, nil
	}
	if s.pendingSpare {
		h := s.rt.as.t.Distance(s.cur, s.dest)
		dim, next, ok := s.rt.pickSpare(s.cur, s.dest, h)
		s.pendingSpare = false
		if !ok {
			s.rt.obs.Blocked(int(s.cur))
			return false, ErrBlocked
		}
		return s.move(dim, next, true)
	}
	dim, next, ok := s.rt.pickPreferred(s.cur, s.dest)
	if !ok {
		s.rt.obs.Blocked(int(s.cur))
		return false, ErrBlocked
	}
	return s.move(dim, next, false)
}

// move executes the hop along dim to next.
func (s *Session) move(dim int, next topo.NodeID, spare bool) (bool, error) {
	if s.rt.as.set.NodeFaulty(next) && s.rt.as.t.Distance(s.cur, s.dest) != 1 {
		// The chosen intermediate died between decision and hop; treat
		// as a blockage rather than walking into a dead node.
		s.rt.obs.Blocked(int(s.cur))
		return false, ErrBlocked
	}
	if s.rt.obs != nil {
		s.rt.obs.Hop(int(s.cur), int(next), dim, s.rt.as.Level(next), spare)
	}
	s.cur = next
	s.path = append(s.path, next)
	if s.cur == s.dest {
		s.done = true
		if s.rt.obs != nil {
			hops := s.path.Len()
			h := s.rt.as.t.Distance(s.path[0], s.dest)
			out := Optimal
			if hops != h {
				out = Suboptimal
			}
			s.rt.obs.Done(int(s.cur), s.lastCond.String(), out.String(), hops, h, s.reroutes, "")
		}
	}
	return s.done, nil
}

// Reroute re-admits the unicast from the current node against a fresh
// assignment (compute it after the fault oracle changed). On success
// the session continues from here — possibly with a new C3 detour; on
// Failure the message is stuck at the current node (the paper's "might
// be aborted" branch) and the session stays blocked.
func (s *Session) Reroute(as *Assignment) (Condition, Outcome) {
	if s.done {
		return CondC1, Optimal
	}
	rt := NewRouter(as, s.rt.tie).Observe(s.rt.obs)
	cond, out := rt.Feasibility(s.cur, s.dest)
	h := as.t.Distance(s.cur, s.dest)
	if out == Failure {
		// The paper's abort branch: the message is stuck here.
		s.rt.obs.Reroute(int(s.cur), h, cond.String(), out.String(), true)
		return cond, out
	}
	s.rt.obs.Reroute(int(s.cur), h, cond.String(), out.String(), false)
	s.rt = rt
	s.pendingSpare = cond == CondC3
	s.reroutes++
	s.lastCond = cond
	return cond, out
}

// Run drives the session to completion or blockage, returning the
// arrival state (convenience for tests and callers without mid-flight
// events).
func (s *Session) Run() (bool, error) {
	for !s.done {
		if _, err := s.Step(); err != nil {
			return false, err
		}
	}
	return true, nil
}
