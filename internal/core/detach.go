package core

// Detach returns a deep copy of the assignment bound to an independent,
// journal-free clone of its fault set (faults.Set.CloneState).
//
// An Assignment from Compute or RepairLevels shares its fault set with
// the caller: routing through it consults the live set for node/link
// status, so a later mutation — FailNode, RecoverNode, FailLink — races
// with concurrent readers (the set's node bitset and link slice are
// unsynchronized; RecoverNode is even a multi-delta composite). Detach
// severs that tie. The copy routes against the fault state frozen at
// the moment of the call and never changes again, which makes it safe
// to publish behind an atomic pointer and read without locks.
//
// With the flat SoA layout the copy is a handful of memcpys — the
// []uint8 level tables, the fault bitset and sorted link slice, the
// stability arrays — so copy-on-publish cost is linear in bytes, not
// in entries of a rebuilt map (~1 MiB per table at Q20).
//
// The detached copy cannot seed RepairLevels (repair requires set
// identity with the live oracle); keep the original as the repair seed
// and publish only detached copies — the internal/serve applier does
// exactly this on every snapshot swap.
func (as *Assignment) Detach() *Assignment {
	cp := &Assignment{
		t:            as.t,
		set:          as.set.CloneState(),
		public:       append([]uint8(nil), as.public...),
		rounds:       as.rounds,
		deltas:       append([]int(nil), as.deltas...),
		stableAt:     append([]int32(nil), as.stableAt...),
		stableSparse: append([]stableEntry(nil), as.stableSparse...),
		evals:        as.evals,
		repaired:     as.repaired,
		dirty:        as.dirty,
	}
	// public and own alias each other whenever there are no N2 nodes;
	// preserve the aliasing so the copy costs one slice, not two.
	if len(as.own) > 0 && &as.own[0] == &as.public[0] {
		cp.own = cp.public
	} else {
		cp.own = append([]uint8(nil), as.own...)
	}
	return cp
}
