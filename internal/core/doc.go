// Package core implements the paper's primary contribution: the safety
// level of hypercube nodes (Definition 1), the GLOBAL_STATUS (GS)
// iterative algorithm that computes it in at most n-1 rounds, the
// EXTENDED_GLOBAL_STATUS (EGS) variant for cubes with faulty links
// (Section 4.1), and the optimal/suboptimal unicasting algorithm built on
// safety levels (Section 3), including its disconnected-cube feasibility
// check (Section 3.3).
//
// Everything is generic over topo.Topology: on a binary cube the
// per-dimension neighbor is a single XOR away, while on a generalized
// hypercube (Section 4.2, Definition 4) each dimension first reduces to
// the minimum level among its m_i - 1 siblings. Since Definition 4
// collapses to Definition 1 when every radix is 2, one sweep serves both.
//
// Key invariant (Theorem 1): the GS iteration is monotonically
// non-increasing from the all-n start and its fixpoint is unique, so
// Compute, the parallel sweep, and the incremental RepairLevels used by
// the serving layer must all land on the same assignment for the same
// fault set — the property every differential suite in this repository
// leans on.
package core
