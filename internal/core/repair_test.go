package core

import (
	"fmt"
	"testing"

	"repro/internal/faults"
	"repro/internal/topo"
)

// assertSameFixpoint requires rep to be bit-identical to the cold
// assignment in both level views, and internally consistent.
func assertSameFixpoint(t *testing.T, name string, rep, cold *Assignment) {
	t.Helper()
	tp := cold.Topology()
	for a := 0; a < tp.Nodes(); a++ {
		id := topo.NodeID(a)
		if rep.Level(id) != cold.Level(id) {
			t.Fatalf("%s: node %s public %d, cold %d",
				name, tp.Format(id), rep.Level(id), cold.Level(id))
		}
		if rep.OwnLevel(id) != cold.OwnLevel(id) {
			t.Fatalf("%s: node %s own %d, cold %d",
				name, tp.Format(id), rep.OwnLevel(id), cold.OwnLevel(id))
		}
	}
	if err := rep.Verify(); err != nil {
		t.Fatalf("%s: repaired assignment inconsistent: %v", name, err)
	}
}

// replayRepair drives one churn schedule step by step, repairing after
// every event and comparing against a cold recomputation. It returns
// the accumulated (repairEvals, coldEvals) for work-ratio assertions.
func replayRepair(t *testing.T, tp topo.Topology, events []faults.ChurnEvent, opts Options) (int, int) {
	t.Helper()
	set := faults.NewSet(tp)
	as := Compute(set, opts)
	gen := set.Generation()
	repairEvals, coldEvals := 0, 0
	for i, ev := range events {
		if err := set.Apply(ev); err != nil {
			t.Fatalf("step %d %v: %v", i, ev, err)
		}
		delta, ok := set.Since(gen)
		if !ok {
			t.Fatalf("step %d: journal gap after one event", i)
		}
		rep, ok := RepairLevels(as, set, delta, opts)
		if !ok {
			t.Fatalf("step %d %v: repair refused", i, ev)
		}
		if !rep.Repaired() {
			t.Fatalf("step %d: repaired assignment not marked", i)
		}
		cold := Compute(set, opts)
		assertSameFixpoint(t, fmt.Sprintf("step %d (%v)", i, ev), rep, cold)
		repairEvals += rep.Evals()
		coldEvals += cold.Evals()
		as, gen = rep, set.Generation()
	}
	return repairEvals, coldEvals
}

// TestRepairMatchesColdUnderChurn is the differential heart of the
// incremental-repair contract: across binary and mixed-radix shapes,
// node-only and node+link schedules, the repaired assignment equals the
// cold fixpoint bit-for-bit after every single churn event.
func TestRepairMatchesColdUnderChurn(t *testing.T) {
	shapes := []topo.Topology{
		topo.MustCube(4),
		topo.MustCube(6),
		topo.MustMixed(2, 3, 2),
		topo.MustMixed(3, 3, 3),
	}
	for si, tp := range shapes {
		for _, links := range []bool{false, true} {
			name := fmt.Sprintf("shape%d/links=%v", si, links)
			t.Run(name, func(t *testing.T) {
				events := faults.ChurnSchedule(tp, uint64(1000+si), 60, faults.ChurnOptions{Links: links})
				if len(events) == 0 {
					t.Fatal("empty schedule")
				}
				replayRepair(t, tp, events, Options{})
			})
		}
	}
}

// TestRepairSavesWorkOnLargeCube checks the economics on a cube big
// enough for locality to matter: on Q10 a single-fault delta must
// repair with far fewer NODE_STATUS evaluations than the cold sweep.
// The full 200-step acceptance run lives in internal/chaos.
func TestRepairSavesWorkOnLargeCube(t *testing.T) {
	tp := topo.MustCube(10)
	events := faults.ChurnSchedule(tp, 7, 40, faults.ChurnOptions{})
	repairEvals, coldEvals := replayRepair(t, tp, events, Options{})
	if repairEvals*3 > coldEvals {
		t.Fatalf("repair evals %d not 3x below cold evals %d", repairEvals, coldEvals)
	}
}

// TestChurnRepairParallelMatchesSequential is the -race determinism
// contract for repair: on identical schedules the Workers>1 repair must
// produce byte-identical level tables and identical repair statistics.
func TestChurnRepairParallelMatchesSequential(t *testing.T) {
	shapes := []topo.Topology{topo.MustCube(6), topo.MustMixed(3, 3, 3)}
	for si, tp := range shapes {
		events := faults.ChurnSchedule(tp, uint64(99+si), 50, faults.ChurnOptions{Links: true})
		// Drive sequential and parallel repairs in lockstep over the
		// same mutating set.
		set := faults.NewSet(tp)
		seq := Compute(set, Options{})
		pars := map[int]*Assignment{2: seq, 8: seq, -1: seq}
		gen := set.Generation()
		for i, ev := range events {
			if err := set.Apply(ev); err != nil {
				t.Fatalf("shape %d step %d: %v", si, i, ev)
			}
			delta, ok := set.Since(gen)
			if !ok {
				t.Fatalf("shape %d step %d: journal gap", si, i)
			}
			nseq, ok := RepairLevels(seq, set, delta, Options{})
			if !ok {
				t.Fatalf("shape %d step %d: sequential repair refused", si, i)
			}
			for w, prev := range pars {
				npar, ok := RepairLevels(prev, set, delta, Options{Workers: w})
				if !ok {
					t.Fatalf("shape %d step %d workers=%d: repair refused", si, i, w)
				}
				name := fmt.Sprintf("shape %d step %d workers=%d", si, i, w)
				assertSameFixpoint(t, name, npar, nseq)
				if npar.Rounds() != nseq.Rounds() || npar.DirtyNodes() != nseq.DirtyNodes() || npar.Evals() != nseq.Evals() {
					t.Fatalf("%s: stats (rounds %d dirty %d evals %d) != sequential (%d %d %d)",
						name, npar.Rounds(), npar.DirtyNodes(), npar.Evals(),
						nseq.Rounds(), nseq.DirtyNodes(), nseq.Evals())
				}
				pars[w] = npar
			}
			seq, gen = nseq, set.Generation()
		}
	}
}

// TestRepairRefusals pins the conditions under which RepairLevels must
// decline and send the caller to a cold recomputation.
func TestRepairRefusals(t *testing.T) {
	tp := topo.MustCube(4)
	set := faults.NewSet(tp)
	as := Compute(set, Options{})
	gen := set.Generation()
	set.FailNode(3)
	delta, _ := set.Since(gen)

	if _, ok := RepairLevels(nil, set, delta, Options{}); ok {
		t.Fatal("repair accepted nil prev")
	}
	if _, ok := RepairLevels(as, set, delta, Options{MaxRounds: 1}); ok {
		t.Fatal("repair accepted truncated-convergence options")
	}
	other := faults.NewSet(tp)
	otherAs := Compute(other, Options{})
	if _, ok := RepairLevels(otherAs, set, delta, Options{}); ok {
		t.Fatal("repair accepted assignment from a different set")
	}
	bogus := []faults.Delta{{Gen: 1, Kind: faults.DeltaFailNode, A: 999, B: 999}}
	if _, ok := RepairLevels(as, set, bogus, Options{}); ok {
		t.Fatal("repair accepted out-of-topology delta")
	}
}

// TestRepairEmptyFaultSet checks the fast path: recovering the last
// fault repairs to the pristine all-n fixpoint with zero rounds, the
// exact shape a cold run on a fault-free cube reports (several facade
// tests pin Rounds()==0 for fault-free cubes).
func TestRepairEmptyFaultSet(t *testing.T) {
	tp := topo.MustMixed(2, 3, 2)
	set := faults.NewSet(tp)
	as := Compute(set, Options{})
	gen := set.Generation()
	set.FailNode(5)
	set.RecoverNode(5)
	delta, ok := set.Since(gen)
	if !ok {
		t.Fatal("journal gap")
	}
	rep, ok := RepairLevels(as, set, delta, Options{})
	if !ok {
		t.Fatal("repair refused")
	}
	if rep.Rounds() != 0 {
		t.Fatalf("fault-free repair rounds = %d, want 0", rep.Rounds())
	}
	for a := 0; a < tp.Nodes(); a++ {
		if rep.Level(topo.NodeID(a)) != tp.Dim() {
			t.Fatalf("node %d level %d, want %d", a, rep.Level(topo.NodeID(a)), tp.Dim())
		}
	}
}

// TestRepairAcrossFuzzedSets repairs from arbitrary (not churn-built)
// fault sets: starting from each fuzzed set's fixpoint, apply a handful
// of further mutations and require repair ≡ cold.
func TestRepairAcrossFuzzedSets(t *testing.T) {
	for si, set := range fuzzedSets(t) {
		as := Compute(set, Options{})
		gen := set.Generation()
		events := faults.ChurnSchedule(set.Topology(), uint64(si), 8, faults.ChurnOptions{Links: set.HasLinkFaults()})
		for i, ev := range events {
			// The schedule was generated against an empty shadow set, so
			// some events may be no-ops or infeasible here; skip those.
			if set.Apply(ev) != nil {
				continue
			}
			delta, ok := set.Since(gen)
			if !ok {
				t.Fatalf("set %d: journal gap", si)
			}
			rep, ok := RepairLevels(as, set, delta, Options{})
			if !ok {
				t.Fatalf("set %d step %d: repair refused", si, i)
			}
			assertSameFixpoint(t, fmt.Sprintf("set %d step %d (%v)", si, i, ev), rep, Compute(set, Options{}))
			as, gen = rep, set.Generation()
		}
	}
}

// FuzzRepairLevels feeds arbitrary churn schedules through the
// repair-vs-cold differential: any divergence between the incremental
// fixpoint and the from-scratch fixpoint is a crash.
func FuzzRepairLevels(f *testing.F) {
	f.Add(uint64(1), uint16(20), uint8(0), false)
	f.Add(uint64(42), uint16(40), uint8(1), true)
	f.Add(uint64(7), uint16(30), uint8(2), true)
	f.Add(uint64(1234567), uint16(60), uint8(3), false)
	f.Fuzz(func(t *testing.T, seed uint64, steps uint16, shape uint8, links bool) {
		var tp topo.Topology
		switch shape % 4 {
		case 0:
			tp = topo.MustCube(4)
		case 1:
			tp = topo.MustCube(5)
		case 2:
			tp = topo.MustMixed(2, 3, 2)
		default:
			tp = topo.MustMixed(3, 3, 3)
		}
		n := int(steps%200) + 1
		events := faults.ChurnSchedule(tp, seed, n, faults.ChurnOptions{Links: links})
		set := faults.NewSet(tp)
		as := Compute(set, Options{})
		gen := set.Generation()
		for i, ev := range events {
			if err := set.Apply(ev); err != nil {
				t.Fatalf("step %d %v: %v", i, ev, err)
			}
			delta, ok := set.Since(gen)
			if !ok {
				t.Fatalf("step %d: journal gap", i)
			}
			rep, ok := RepairLevels(as, set, delta, Options{})
			if !ok {
				t.Fatalf("step %d %v: repair refused", i, ev)
			}
			cold := Compute(set, Options{})
			for a := 0; a < tp.Nodes(); a++ {
				id := topo.NodeID(a)
				if rep.Level(id) != cold.Level(id) || rep.OwnLevel(id) != cold.OwnLevel(id) {
					t.Fatalf("step %d (%v): node %s repaired %d/%d cold %d/%d",
						i, ev, tp.Format(id), rep.Level(id), rep.OwnLevel(id),
						cold.Level(id), cold.OwnLevel(id))
				}
			}
			as, gen = rep, set.Generation()
		}
	})
}
