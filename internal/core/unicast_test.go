package core

import (
	"testing"

	"repro/internal/faults"
	"repro/internal/stats"
	"repro/internal/topo"
)

func router(t testing.TB, s *faults.Set) *Router {
	t.Helper()
	return NewRouter(Compute(s, Options{}), nil)
}

func TestOutcomeAndConditionStrings(t *testing.T) {
	if Optimal.String() != "optimal" || Suboptimal.String() != "suboptimal" || Failure.String() != "failure" {
		t.Error("outcome strings wrong")
	}
	if Outcome(9).String() == "" {
		t.Error("unknown outcome should still render")
	}
	if CondC1.String() != "C1" || CondC2.String() != "C2" || CondC3.String() != "C3" || CondNone.String() != "none" {
		t.Error("condition strings wrong")
	}
}

// Section 3.2, first worked example: s = 1110, d = 0001 in the Fig. 1
// cube. S(1110) = 4 = H, C1 holds; the paper's trace (with the paper's
// own tie-break choice "say 1111 along dimension 0", which LowestDim
// reproduces) is 1110 -> 1111 -> 1101 -> 0101 -> 0001.
func TestPaperExampleOptimalC1(t *testing.T) {
	c, s := fig1(t)
	rt := router(t, s)
	src, dst := c.MustParse("1110"), c.MustParse("0001")

	cond, out := rt.Feasibility(src, dst)
	if cond != CondC1 || out != Optimal {
		t.Fatalf("feasibility = %v/%v, want C1/optimal", cond, out)
	}
	r := rt.Unicast(src, dst)
	if r.Outcome != Optimal || r.Err != nil {
		t.Fatalf("outcome = %v, err = %v", r.Outcome, r.Err)
	}
	want := "1110 -> 1111 -> 1101 -> 0101 -> 0001"
	if got := r.Path.FormatWith(c); got != want {
		t.Errorf("path = %s, want %s", got, want)
	}
	if r.Len() != 4 || r.Len() != r.Hamming {
		t.Errorf("length %d, want Hamming %d", r.Len(), r.Hamming)
	}
	// Navigation vector bookkeeping: first hop resets bit 0.
	if r.Hops[0].Nav != topo.NavVector(c.MustParse("1110")) {
		t.Errorf("nav after hop 1 = %04b, want 1110", r.Hops[0].Nav)
	}
	if !r.Hops[len(r.Hops)-1].Nav.Zero() {
		t.Error("final nav should be zero")
	}
}

// Section 3.2, second worked example: s = 0001, d = 1100. S(0001) = 1 <
// H = 3 but preferred neighbors 0000 and 0101 have level 2 = H-1, so C2
// admits an optimal unicast; the paper's path is 0001 -> 0000 -> 1000 ->
// 1100.
func TestPaperExampleOptimalC2(t *testing.T) {
	c, s := fig1(t)
	rt := router(t, s)
	src, dst := c.MustParse("0001"), c.MustParse("1100")

	cond, out := rt.Feasibility(src, dst)
	if cond != CondC2 || out != Optimal {
		t.Fatalf("feasibility = %v/%v, want C2/optimal", cond, out)
	}
	r := rt.Unicast(src, dst)
	if r.Outcome != Optimal || r.Err != nil {
		t.Fatalf("outcome = %v, err = %v", r.Outcome, r.Err)
	}
	want := "0001 -> 0000 -> 1000 -> 1100"
	if got := r.Path.FormatWith(c); got != want {
		t.Errorf("path = %s, want %s", got, want)
	}
}

// Section 3.3, Fig. 3 examples in the disconnected cube.
func TestFig3DisconnectedRouting(t *testing.T) {
	c, s := fig3(t)
	rt := router(t, s)

	// s1 = 0101 -> d1 = 0000: H = 2 = S(0101), C1, optimal.
	r1 := rt.Unicast(c.MustParse("0101"), c.MustParse("0000"))
	if r1.Outcome != Optimal || r1.Condition != CondC1 {
		t.Errorf("0101->0000: %v/%v", r1.Outcome, r1.Condition)
	}
	if r1.Len() != 2 {
		t.Errorf("0101->0000 length %d", r1.Len())
	}

	// s2 = 0111 -> d2 = 1011: S(0111) = 1 < H = 2, but preferred
	// neighbor 0011 has level 2 > H-1: C2, optimal.
	r2 := rt.Unicast(c.MustParse("0111"), c.MustParse("1011"))
	if r2.Outcome != Optimal || r2.Condition != CondC2 {
		t.Errorf("0111->1011: %v/%v", r2.Outcome, r2.Condition)
	}
	if r2.Len() != 2 {
		t.Errorf("0111->1011 length %d", r2.Len())
	}
	// The admitted route must go through 0011 (the other preferred
	// neighbor 1111 is faulty).
	if r2.Path[1] != c.MustParse("0011") {
		t.Errorf("0111->1011 via %s, want 0011", c.Format(r2.Path[1]))
	}

	// Destination 1110 is in the other part: C1 fails (S(0111)=1 < 2),
	// C2 fails (preferred 0110 and 1111 are faulty), C3 fails (spare
	// 0101 and 0011 have level 2 < H+1 = 3): abort at the source.
	r3 := rt.Unicast(c.MustParse("0111"), c.MustParse("1110"))
	if r3.Outcome != Failure || r3.Condition != CondNone {
		t.Errorf("0111->1110: %v/%v, want failure/none", r3.Outcome, r3.Condition)
	}
	if r3.Err != nil {
		t.Errorf("source-side abort should carry no transport error, got %v", r3.Err)
	}
	if len(r3.Path) != 0 {
		t.Error("failed unicast should have no path")
	}

	// Any unicast *initiated at* the island 1110 fails too: S(1110)=1,
	// every neighbor faulty.
	r4 := rt.Unicast(c.MustParse("1110"), c.MustParse("0000"))
	if r4.Outcome != Failure {
		t.Errorf("1110->0000: %v, want failure", r4.Outcome)
	}
}

func TestUnicastToSelf(t *testing.T) {
	c, s := fig1(t)
	rt := router(t, s)
	r := rt.Unicast(c.MustParse("0101"), c.MustParse("0101"))
	if r.Outcome != Optimal || r.Len() != 0 || len(r.Path) != 1 {
		t.Errorf("self unicast: %v len %d", r.Outcome, r.Len())
	}
}

func TestUnicastFromFaultySource(t *testing.T) {
	c, s := fig1(t)
	rt := router(t, s)
	r := rt.Unicast(c.MustParse("0011"), c.MustParse("0000"))
	if r.Outcome != Failure || r.Err == nil {
		t.Error("faulty source should fail with error")
	}
}

func TestUnicastOutsideCube(t *testing.T) {
	_, s := fig1(t)
	rt := router(t, s)
	r := rt.Unicast(500, 0)
	if r.Outcome != Failure || r.Err == nil {
		t.Error("out-of-cube source should fail with error")
	}
}

func TestUnicastToFaultyNeighborDelivers(t *testing.T) {
	// Theorem 2 base case: a node reaches all its neighbors, faulty or
	// not. A distance-1 unicast to a faulty destination is delivered.
	c, s := fig1(t)
	rt := router(t, s)
	r := rt.Unicast(c.MustParse("0001"), c.MustParse("0011"))
	if r.Outcome != Optimal || r.Err != nil {
		t.Errorf("unicast to faulty neighbor: %v err=%v", r.Outcome, r.Err)
	}
	if r.Len() != 1 {
		t.Errorf("length = %d", r.Len())
	}
}

func TestSuboptimalRouting(t *testing.T) {
	// Build a scenario where only C3 holds: source with low level whose
	// preferred neighbors are all weak but a spare neighbor is strong.
	// In Q4 fail 3 nodes around the source's preferred side.
	c := topo.MustCube(4)
	s := faults.NewSet(c)
	// Source 0000, dest 0011 (H=2). Kill 0001 and 0010 (both preferred
	// neighbors): optimal impossible, C1 fails (S(0000) drops), C2
	// fails. Spare neighbors 0100 and 1000 keep high levels.
	if err := s.FailNodes(c.MustParseAll("0001", "0010")...); err != nil {
		t.Fatal(err)
	}
	rt := router(t, s)
	src, dst := c.MustParse("0000"), c.MustParse("0011")
	if lv := rt.Assignment().Level(src); lv >= 2 {
		t.Fatalf("S(0000) = %d, scenario broken", lv)
	}
	cond, out := rt.Feasibility(src, dst)
	if cond != CondC3 || out != Suboptimal {
		t.Fatalf("feasibility = %v/%v, want C3/suboptimal", cond, out)
	}
	r := rt.Unicast(src, dst)
	if r.Outcome != Suboptimal || r.Err != nil {
		t.Fatalf("outcome %v err %v", r.Outcome, r.Err)
	}
	if r.Len() != r.Hamming+2 {
		t.Errorf("suboptimal length %d, want H+2 = %d", r.Len(), r.Hamming+2)
	}
	if !r.Hops[0].Spare {
		t.Error("first hop should be the spare detour")
	}
	for _, h := range r.Hops[1:] {
		if h.Spare {
			t.Error("only the first hop may be spare")
		}
	}
	if !r.Path.Valid(c) || !r.Path.Simple() {
		t.Error("suboptimal path must be a simple valid path")
	}
	// No intermediate node is faulty.
	for _, a := range r.Path[1 : len(r.Path)-1] {
		if s.NodeFaulty(a) {
			t.Errorf("intermediate %s is faulty", c.Format(a))
		}
	}
}

func TestTieBreakPolicies(t *testing.T) {
	c, s := fig1(t)
	as := Compute(s, Options{})
	low := NewRouter(as, LowestDim)
	high := NewRouter(as, HighestDim)
	src, dst := c.MustParse("1110"), c.MustParse("0001")
	rl := low.Unicast(src, dst)
	rh := high.Unicast(src, dst)
	if rl.Outcome != Optimal || rh.Outcome != Optimal {
		t.Fatal("both policies should route optimally")
	}
	if rl.Len() != rh.Len() {
		t.Errorf("both optimal paths must have length H: %d vs %d", rl.Len(), rh.Len())
	}
	// The first hop choices differ: three preferred neighbors tie at
	// level 4 (dims 0, 1, 2).
	if rl.Path[1] == rh.Path[1] {
		t.Error("tie-break policies should pick different first hops here")
	}
	if rl.Path[1] != c.MustParse("1111") {
		t.Errorf("LowestDim first hop = %s, want 1111", c.Format(rl.Path[1]))
	}
	if rh.Path[1] != c.MustParse("1010") {
		t.Errorf("HighestDim first hop = %s, want 1010", c.Format(rh.Path[1]))
	}
}

func TestGuaranteeBelowNFaults(t *testing.T) {
	// Theorem 3 + Property 2: with fewer than n faults every unicast
	// between nonfaulty nodes is admitted (optimal or suboptimal) and
	// the delivered path length is H or H+2.
	rng := stats.NewRNG(31337)
	for n := 3; n <= 8; n++ {
		c := topo.MustCube(n)
		for trial := 0; trial < 25; trial++ {
			s := faults.NewSet(c)
			faults.InjectUniform(s, rng, rng.Intn(n))
			rt := router(t, s)
			for pair := 0; pair < 40; pair++ {
				src := topo.NodeID(rng.Intn(c.Nodes()))
				dst := topo.NodeID(rng.Intn(c.Nodes()))
				if s.NodeFaulty(src) || s.NodeFaulty(dst) {
					continue
				}
				r := rt.Unicast(src, dst)
				if r.Outcome == Failure {
					t.Fatalf("n=%d faults=%d: unicast %s -> %s failed (%v)",
						n, s.NodeFaults(), c.Format(src), c.Format(dst), r.Err)
				}
				checkDelivered(t, c, s, r)
			}
		}
	}
}

// checkDelivered validates the transport invariants of a delivered route.
func checkDelivered(t *testing.T, c *topo.Cube, s *faults.Set, r *Route) {
	t.Helper()
	if r.Err != nil {
		t.Fatalf("route error: %v", r.Err)
	}
	if !r.Path.Valid(c) {
		t.Fatalf("invalid path %v", r.Path)
	}
	if !r.Path.Simple() {
		t.Fatalf("non-simple path %s", r.Path.FormatWith(c))
	}
	if r.Path[0] != r.Source || r.Path[len(r.Path)-1] != r.Dest {
		t.Fatalf("path endpoints wrong")
	}
	switch r.Outcome {
	case Optimal:
		if r.Len() != r.Hamming {
			t.Fatalf("optimal route has length %d != H %d", r.Len(), r.Hamming)
		}
	case Suboptimal:
		if r.Len() != r.Hamming+2 {
			t.Fatalf("suboptimal route has length %d != H+2 %d", r.Len(), r.Hamming+2)
		}
	}
	if len(r.Path) > 2 {
		for _, a := range r.Path[1 : len(r.Path)-1] {
			if s.NodeFaulty(a) {
				t.Fatalf("path crosses faulty node %s", c.Format(a))
			}
		}
	}
}

func TestHeavyFaultsEitherRouteOrDetectablyFail(t *testing.T) {
	// Beyond n-1 faults the algorithm may fail, but it must fail at the
	// source (no transport error) and every admitted route must deliver
	// with the promised length.
	rng := stats.NewRNG(777)
	c := topo.MustCube(6)
	for trial := 0; trial < 60; trial++ {
		s := faults.NewSet(c)
		faults.InjectUniform(s, rng, 6+rng.Intn(20))
		rt := router(t, s)
		for pair := 0; pair < 40; pair++ {
			src := topo.NodeID(rng.Intn(c.Nodes()))
			dst := topo.NodeID(rng.Intn(c.Nodes()))
			if s.NodeFaulty(src) || s.NodeFaulty(dst) {
				continue
			}
			r := rt.Unicast(src, dst)
			if r.Outcome == Failure {
				if r.Err != nil {
					t.Fatalf("trial %d: admitted route hit transport failure: %v (faults %s)",
						trial, r.Err, s)
				}
				continue
			}
			checkDelivered(t, c, s, r)
		}
	}
}

func TestOptimalAdmissionImpliesOptimalPathExists(t *testing.T) {
	// Soundness of C1/C2 against the ground-truth oracle: when the
	// router promises an optimal unicast, an optimal path must exist.
	rng := stats.NewRNG(13)
	c := topo.MustCube(6)
	for trial := 0; trial < 50; trial++ {
		s := faults.NewSet(c)
		faults.InjectUniform(s, rng, rng.Intn(12))
		rt := router(t, s)
		for pair := 0; pair < 60; pair++ {
			src := topo.NodeID(rng.Intn(c.Nodes()))
			dst := topo.NodeID(rng.Intn(c.Nodes()))
			if s.NodeFaulty(src) || s.NodeFaulty(dst) {
				continue
			}
			if _, out := rt.Feasibility(src, dst); out == Optimal {
				if !faults.HasOptimalPath(s, src, dst) {
					t.Fatalf("trial %d: optimal admitted %s->%s but no optimal path (faults %s)",
						trial, c.Format(src), c.Format(dst), s)
				}
			}
		}
	}
}

func TestFeasibilityZeroDistance(t *testing.T) {
	_, s := fig1(t)
	rt := router(t, s)
	cond, out := rt.Feasibility(5, 5)
	if cond != CondC1 || out != Optimal {
		t.Errorf("self feasibility = %v/%v", cond, out)
	}
}

func TestRouterOnTruncatedAssignmentFailsSafely(t *testing.T) {
	// Routing on a deliberately inconsistent assignment (GS truncated
	// to 1 round) may make bad promises; the router must not panic or
	// loop — it reports a transport error via Route.Err.
	c := topo.MustCube(5)
	s := faults.NewSet(c)
	rng := stats.NewRNG(99)
	faults.InjectUniform(s, rng, 8)
	as := Compute(s, Options{MaxRounds: 1})
	rt := NewRouter(as, nil)
	for src := 0; src < c.Nodes(); src++ {
		for dst := 0; dst < c.Nodes(); dst += 3 {
			if s.NodeFaulty(topo.NodeID(src)) {
				continue
			}
			r := rt.Unicast(topo.NodeID(src), topo.NodeID(dst))
			// Whatever happens must terminate with a classified result.
			if r.Outcome != Optimal && r.Outcome != Suboptimal && r.Outcome != Failure {
				t.Fatal("unclassified outcome")
			}
		}
	}
}
