package core

import (
	"fmt"
	"testing"

	"repro/internal/faults"
	"repro/internal/stats"
	"repro/internal/topo"
)

// fuzzedSets builds a deterministic spread of fault sets across binary
// and generalized topologies: node faults alone, link faults alone, and
// both (EGS), at light and heavy loads.
func fuzzedSets(tb testing.TB) []*faults.Set {
	tb.Helper()
	var sets []*faults.Set
	shapes := []topo.Topology{
		topo.MustCube(4),
		topo.MustCube(6),
		topo.MustCube(8),
		topo.MustMixed(2, 3, 2),
		topo.MustMixed(3, 3, 3),
		topo.MustMixed(4, 3, 2, 2),
	}
	rng := stats.NewRNG(42)
	for _, t := range shapes {
		for _, load := range []int{1, t.Dim(), 2 * t.Dim()} {
			s := faults.NewSet(t)
			if err := faults.InjectUniform(s, rng, load); err != nil {
				tb.Fatal(err)
			}
			sets = append(sets, s)

			if _, ok := t.(*topo.Cube); ok {
				sl := faults.NewSet(t)
				if err := faults.InjectUniformLinks(sl, rng, load); err != nil {
					tb.Fatal(err)
				}
				sets = append(sets, sl)

				both := faults.NewSet(t)
				if err := faults.InjectUniform(both, rng, load/2+1); err != nil {
					tb.Fatal(err)
				}
				if err := faults.InjectUniformLinks(both, rng, load/2+1); err != nil {
					tb.Fatal(err)
				}
				sets = append(sets, both)
			}
		}
	}
	return sets
}

// TestParallelMatchesSequential is the determinism contract of the
// worker-pool GS sweep: for every fuzzed fault set and worker count the
// parallel computation must be bit-identical to the sequential one —
// levels, own levels, rounds, per-round deltas and per-node
// stabilization rounds. Run under -race this also proves the sweep's
// chunk partitioning never writes a cell twice.
func TestParallelMatchesSequential(t *testing.T) {
	for si, set := range fuzzedSets(t) {
		seq := Compute(set, Options{})
		for _, workers := range []int{2, 3, 8, -1} {
			name := fmt.Sprintf("set%02d/workers=%d", si, workers)
			par := Compute(set, Options{Workers: workers})
			if par.Rounds() != seq.Rounds() {
				t.Errorf("%s: rounds %d != %d", name, par.Rounds(), seq.Rounds())
			}
			sd, pd := seq.Deltas(), par.Deltas()
			if len(sd) != len(pd) {
				t.Errorf("%s: deltas %v != %v", name, pd, sd)
			} else {
				for r := range sd {
					if sd[r] != pd[r] {
						t.Errorf("%s: round %d delta %d != %d", name, r+1, pd[r], sd[r])
					}
				}
			}
			for a := 0; a < set.Topology().Nodes(); a++ {
				id := topo.NodeID(a)
				if par.Level(id) != seq.Level(id) || par.OwnLevel(id) != seq.OwnLevel(id) {
					t.Fatalf("%s: node %d level %d/%d != %d/%d", name, a,
						par.Level(id), par.OwnLevel(id), seq.Level(id), seq.OwnLevel(id))
				}
				if par.StableRound(id) != seq.StableRound(id) {
					t.Fatalf("%s: node %d stable round %d != %d", name, a,
						par.StableRound(id), seq.StableRound(id))
				}
			}
			if err := par.Verify(); err != nil {
				t.Errorf("%s: %v", name, err)
			}
		}
	}
}

// benchSet builds the benchmark workload: a 12-cube with 2n faults.
func benchSet(tb testing.TB) *faults.Set {
	c := topo.MustCube(12)
	s := faults.NewSet(c)
	if err := faults.InjectUniform(s, stats.NewRNG(7), 24); err != nil {
		tb.Fatal(err)
	}
	return s
}

// BenchmarkComputeSequential is the baseline the parallel sweep is
// measured against (BENCH_2.json).
func BenchmarkComputeSequential(b *testing.B) {
	s := benchSet(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		Compute(s, Options{})
	}
}

// BenchmarkComputeParallel measures the worker-pool sweep at GOMAXPROCS
// workers on the same workload.
func BenchmarkComputeParallel(b *testing.B) {
	s := benchSet(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		Compute(s, Options{Workers: -1})
	}
}
