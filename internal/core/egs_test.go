package core

import (
	"testing"

	"repro/internal/faults"
	"repro/internal/stats"
	"repro/internal/topo"
)

// fig4 builds the Section 4.1 scenario: a four-cube with four faulty
// nodes and one faulty link. The paper's figure does not list the node
// faults in the text; this fault set reproduces every stated fact of
// Fig. 4 exactly: S(1000) = 1 and S(1001) = 2 in their own views, both
// exposed as 0 to all other nodes, S(1111) = 4, no Hamming path from
// 1101 to 1000, and the suboptimal route 1101 -> 1111 -> 1011 -> 1010 ->
// 1000 of length H+2 = 4.
func fig4(t testing.TB) (*topo.Cube, *faults.Set) {
	t.Helper()
	c := topo.MustCube(4)
	s := faults.NewSet(c)
	if err := s.FailNodes(c.MustParseAll("0000", "0100", "1100", "1110")...); err != nil {
		t.Fatal(err)
	}
	if err := s.FailLink(c.MustParse("1000"), c.MustParse("1001")); err != nil {
		t.Fatal(err)
	}
	return c, s
}

func TestFig4EGSLevels(t *testing.T) {
	c, s := fig4(t)
	as := Compute(s, Options{})
	// Section 4.1: "Node 1000 is 1-safe and node 1001 is 2-safe.
	// However, both are treated as faulty by all the other nodes."
	if got := as.OwnLevel(c.MustParse("1000")); got != 1 {
		t.Errorf("own S(1000) = %d, want 1", got)
	}
	if got := as.OwnLevel(c.MustParse("1001")); got != 2 {
		t.Errorf("own S(1001) = %d, want 2", got)
	}
	if got := as.Level(c.MustParse("1000")); got != 0 {
		t.Errorf("public S(1000) = %d, want 0", got)
	}
	if got := as.Level(c.MustParse("1001")); got != 0 {
		t.Errorf("public S(1001) = %d, want 0", got)
	}
	// "the spare neighbor 1111 has a safety level of 4".
	if got := as.Level(c.MustParse("1111")); got != 4 {
		t.Errorf("S(1111) = %d, want 4", got)
	}
	if err := as.Verify(); err != nil {
		t.Errorf("Verify: %v", err)
	}
	// Full fixpoint of this instance (derived by hand, cross-checked by
	// Verify): pins the remaining values so regressions are loud.
	want := map[string]int{
		"0001": 1, "0010": 2, "0011": 4, "0101": 2,
		"0110": 1, "0111": 4, "1010": 1, "1011": 4,
		"1101": 1, "1111": 4,
	}
	for addr, lv := range want {
		if got := as.Level(c.MustParse(addr)); got != lv {
			t.Errorf("S(%s) = %d, want %d", addr, got, lv)
		}
	}
}

func TestFig4SuboptimalRoute(t *testing.T) {
	c, s := fig4(t)
	rt := router(t, s)
	src, dst := c.MustParse("1101"), c.MustParse("1000")

	// "Because both preferred neighbors of node 1101 are faulty, there
	// is no Hamming distance path between 1101 and 1000."
	if faults.HasOptimalPath(s, src, dst) {
		t.Fatal("no optimal path should exist")
	}
	cond, out := rt.Feasibility(src, dst)
	if cond != CondC3 || out != Suboptimal {
		t.Fatalf("feasibility = %v/%v, want C3/suboptimal", cond, out)
	}
	r := rt.Unicast(src, dst)
	if r.Outcome != Suboptimal || r.Err != nil {
		t.Fatalf("outcome %v err %v", r.Outcome, r.Err)
	}
	want := "1101 -> 1111 -> 1011 -> 1010 -> 1000"
	if got := r.Path.FormatWith(c); got != want {
		t.Errorf("path = %s, want %s", got, want)
	}
	if r.Len() != r.Hamming+2 {
		t.Errorf("length %d, want H+2 = %d", r.Len(), r.Hamming+2)
	}
}

func TestEGSWithNoLinkFaultsEqualsGS(t *testing.T) {
	// EGS must degenerate to GS when the link-fault set is empty. We
	// force the EGS code path by comparing Compute on a set with link
	// faults removed against the same node faults.
	rng := stats.NewRNG(42)
	c := topo.MustCube(5)
	for trial := 0; trial < 40; trial++ {
		s := faults.NewSet(c)
		faults.InjectUniform(s, rng, rng.Intn(8))
		gs := computeGS(s, Options{})
		egs := computeEGS(s, Options{}) // N2 is empty: must agree
		for a := 0; a < c.Nodes(); a++ {
			id := topo.NodeID(a)
			if gs.Level(id) != egs.Level(id) || gs.OwnLevel(id) != egs.OwnLevel(id) {
				t.Fatalf("trial %d: EGS != GS at %s (faults %s)", trial, c.Format(id), s)
			}
		}
	}
}

func TestEGSTreatsLinkEndpointsAsFaultyForOthers(t *testing.T) {
	// A single faulty link in an otherwise healthy cube: both endpoints
	// join N2 and are publicly 0; every other node's level reflects two
	// "faulty" nodes in the cube.
	c := topo.MustCube(4)
	s := faults.NewSet(c)
	s.FailLink(c.MustParse("0000"), c.MustParse("0001"))
	as := Compute(s, Options{})
	if as.Level(c.MustParse("0000")) != 0 || as.Level(c.MustParse("0001")) != 0 {
		t.Error("N2 endpoints must expose level 0")
	}
	// Each endpoint's own view: only the far end of its faulty link is
	// faulty; everything else is healthy. One zero neighbor in a
	// 4-cube: sorted (0, x, y, z) with x,y,z the healthy neighbors.
	ownA := as.OwnLevel(c.MustParse("0000"))
	ownB := as.OwnLevel(c.MustParse("0001"))
	if ownA < 1 || ownB < 1 {
		t.Errorf("own levels too low: %d, %d", ownA, ownB)
	}
	if err := as.Verify(); err != nil {
		t.Error(err)
	}
	// Nodes adjacent to both endpoints see two zeros: level 1. E.g.
	// nothing is adjacent to both 0000 and 0001 except... in a cube no
	// node is adjacent to both endpoints of an edge, so each other node
	// sees at most one zero and keeps a level >= 2.
	for a := 0; a < c.Nodes(); a++ {
		id := topo.NodeID(a)
		if id == c.MustParse("0000") || id == c.MustParse("0001") {
			continue
		}
		if as.Level(id) < 2 {
			t.Errorf("S(%s) = %d with a single faulty link", c.Format(id), as.Level(id))
		}
	}
}

func TestEGSRoutingNeverCrossesFaultyLink(t *testing.T) {
	rng := stats.NewRNG(2718)
	c := topo.MustCube(5)
	for trial := 0; trial < 50; trial++ {
		s := faults.NewSet(c)
		faults.InjectUniform(s, rng, rng.Intn(4))
		faults.InjectUniformLinks(s, rng, 1+rng.Intn(4))
		rt := router(t, s)
		for pair := 0; pair < 40; pair++ {
			src := topo.NodeID(rng.Intn(c.Nodes()))
			dst := topo.NodeID(rng.Intn(c.Nodes()))
			if s.NodeFaulty(src) {
				continue
			}
			r := rt.Unicast(src, dst)
			if r.Outcome == Failure {
				continue
			}
			if r.Err != nil {
				t.Fatalf("trial %d: transport error on admitted route %s -> %s: %v (faults %s)",
					trial, c.Format(src), c.Format(dst), r.Err, s)
			}
			for i := 1; i < len(r.Path); i++ {
				if s.LinkFaulty(r.Path[i-1], r.Path[i]) {
					t.Fatalf("trial %d: route crosses faulty link (%s,%s)",
						trial, c.Format(r.Path[i-1]), c.Format(r.Path[i]))
				}
			}
			// Intermediate nodes must be nonfaulty.
			if len(r.Path) > 2 {
				for _, a := range r.Path[1 : len(r.Path)-1] {
					if s.NodeFaulty(a) {
						t.Fatalf("trial %d: route crosses faulty node %s", trial, c.Format(a))
					}
				}
			}
		}
	}
}

func TestN2SourceUsesOwnLevel(t *testing.T) {
	// Section 4.1: "The proposed routing algorithm can also be used at
	// nonfaulty nodes with adjacent faulty link(s)" using their own
	// safety level. A node whose only defect is one faulty link can
	// still originate unicasts.
	c := topo.MustCube(4)
	s := faults.NewSet(c)
	s.FailLink(c.MustParse("0000"), c.MustParse("0001"))
	rt := router(t, s)
	src := c.MustParse("0000")
	if rt.Assignment().Level(src) != 0 {
		t.Fatal("scenario: source should be publicly 0")
	}
	own := rt.Assignment().OwnLevel(src)
	if own < 1 {
		t.Fatalf("own level = %d", own)
	}
	// Any destination within own distance must be admitted optimally
	// (except across the dead link; 0001 at distance 1 is reached via
	// C1 only if a Hamming path exists — the direct link is dead, so
	// routing to 0001 must NOT be admitted as optimal at distance 1).
	for dst := 0; dst < c.Nodes(); dst++ {
		did := topo.NodeID(dst)
		h := topo.Hamming(src, did)
		if h == 0 || h > own {
			continue
		}
		cond, out := rt.Feasibility(src, did)
		if did == c.MustParse("0001") {
			// Dead-link destination: optimal impossible, suboptimal
			// (via a spare) is the best admissible answer.
			if out == Optimal && cond == CondC2 {
				t.Error("C2 must not admit the dead-link destination via its own far end")
			}
			continue
		}
		if out != Optimal {
			t.Errorf("dst %s at H=%d: %v/%v, want optimal", c.Format(did), h, cond, out)
		}
		r := rt.Unicast(src, did)
		if r.Outcome != Optimal || r.Err != nil {
			t.Errorf("dst %s: %v err %v", c.Format(did), r.Outcome, r.Err)
		}
	}
}

func TestDeadLinkDestinationReachedSuboptimally(t *testing.T) {
	// 0000 -> 0001 with the direct link dead: C1 with own level >= 1
	// would promise a Hamming path that does not exist, so the router
	// must take the C3 detour (H+2 = 3 hops) or the C1/C2 check must
	// not rely on the dead link. The implementation treats the far end
	// of a dead link as level 0 and the own-level rule of Section 4.1
	// excludes "the end node(s) of adjacent faulty link(s)", so the
	// result must be a 3-hop delivery.
	c := topo.MustCube(4)
	s := faults.NewSet(c)
	s.FailLink(c.MustParse("0000"), c.MustParse("0001"))
	rt := router(t, s)
	r := rt.Unicast(c.MustParse("0000"), c.MustParse("0001"))
	if r.Outcome == Failure {
		t.Fatalf("dead-link destination should still be reachable: %v", r.Err)
	}
	if r.Err != nil {
		t.Fatal(r.Err)
	}
	if r.Len() != 3 {
		t.Errorf("length = %d, want 3 (H+2)", r.Len())
	}
	for i := 1; i < len(r.Path); i++ {
		if s.LinkFaulty(r.Path[i-1], r.Path[i]) {
			t.Error("route crosses the dead link")
		}
	}
}
