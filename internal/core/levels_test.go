package core

import (
	"sort"
	"testing"
	"testing/quick"

	"repro/internal/faults"
	"repro/internal/stats"
	"repro/internal/topo"
)

// fig1 builds the faulty four-cube of Fig. 1: faults 0011, 0100, 0110, 1001.
func fig1(t testing.TB) (*topo.Cube, *faults.Set) {
	t.Helper()
	c := topo.MustCube(4)
	s := faults.NewSet(c)
	if err := s.FailNodes(c.MustParseAll("0011", "0100", "0110", "1001")...); err != nil {
		t.Fatal(err)
	}
	return c, s
}

// fig3 builds the disconnected four-cube of Fig. 3: faults 0110, 1010,
// 1100, 1111 (node 1110 is cut off).
func fig3(t testing.TB) (*topo.Cube, *faults.Set) {
	t.Helper()
	c := topo.MustCube(4)
	s := faults.NewSet(c)
	if err := s.FailNodes(c.MustParseAll("0110", "1010", "1100", "1111")...); err != nil {
		t.Fatal(err)
	}
	return c, s
}

func TestLevelFromSorted(t *testing.T) {
	cases := []struct {
		seq  []int
		want int
	}{
		{[]int{0, 1, 2, 3}, 4}, // exactly the threshold sequence
		{[]int{4, 4, 4, 4}, 4}, // all neighbors safe
		{[]int{0, 0, 2, 4}, 1}, // two zeros: 1-safe
		{[]int{0, 1, 1, 4}, 2}, // S2 = 1 < 2: 2-safe
		{[]int{0, 1, 2, 2}, 3}, // S3 = 2 < 3: 3-safe
		{[]int{0, 0, 0, 0}, 1}, // isolated node: still 1-safe
		{[]int{1, 1, 4, 4}, 4}, // Fig. 1 node 1010
		{[]int{0, 2, 4, 4}, 4}, // Fig. 1 node 1000
		{[]int{}, 0},           // degenerate: no neighbors
		{[]int{0}, 1},          // Q1 healthy node next to a fault
		{[]int{1}, 1},          // Q1: S0 >= 0 always, so level is 1
	}
	for _, tc := range cases {
		if got := LevelFromSorted(tc.seq); got != tc.want {
			t.Errorf("LevelFromSorted(%v) = %d, want %d", tc.seq, got, tc.want)
		}
	}
}

func TestLevelFromNeighborsUnsorted(t *testing.T) {
	if got := LevelFromNeighbors([]int{4, 0, 2, 0}, nil); got != 1 {
		t.Errorf("got %d, want 1", got)
	}
	// With scratch buffer, input must not be mutated.
	in := []int{4, 0, 2, 0}
	scratch := make([]int, 4)
	LevelFromNeighbors(in, scratch)
	if in[0] != 4 || in[1] != 0 || in[2] != 2 || in[3] != 0 {
		t.Error("input mutated")
	}
}

func TestLevelFromSortedMatchesPaperPredicate(t *testing.T) {
	// Property: our min-k formula equals the paper's literal condition:
	// S(a) = n if seq >= (0..n-1); else the k with prefix dominance and
	// S_k = k-1.
	paper := func(seq []int) int {
		n := len(seq)
		ge := func(k int) bool {
			for i := 0; i < k; i++ {
				if seq[i] < i {
					return false
				}
			}
			return true
		}
		if ge(n) {
			return n
		}
		for k := 0; k < n; k++ {
			if ge(k) && seq[k] == k-1 {
				return k
			}
		}
		return -1 // unreachable for sorted sequences
	}
	f := func(raw [6]uint8) bool {
		seq := make([]int, 6)
		for i, v := range raw {
			seq[i] = int(v % 7)
		}
		sort.Ints(seq)
		return LevelFromSorted(seq) == paper(seq)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 2000}); err != nil {
		t.Error(err)
	}
}

func TestFig1Levels(t *testing.T) {
	c, s := fig1(t)
	as := Compute(s, Options{})
	want := map[string]int{
		"0000": 2, "0001": 1, "0010": 1, "0011": 0,
		"0100": 0, "0101": 2, "0110": 0, "0111": 1,
		"1000": 4, "1001": 0, "1010": 4, "1011": 1,
		"1100": 4, "1101": 4, "1110": 4, "1111": 4,
	}
	for addr, lv := range want {
		if got := as.Level(c.MustParse(addr)); got != lv {
			t.Errorf("S(%s) = %d, want %d", addr, got, lv)
		}
	}
	if err := as.Verify(); err != nil {
		t.Errorf("Verify: %v", err)
	}
	// "The safety level of each node remains stable after two rounds."
	if as.Rounds() != 2 {
		t.Errorf("Rounds = %d, paper says 2", as.Rounds())
	}
}

func TestFig1OwnEqualsPublicWithoutLinkFaults(t *testing.T) {
	c, s := fig1(t)
	as := Compute(s, Options{})
	for a := 0; a < c.Nodes(); a++ {
		if as.Level(topo.NodeID(a)) != as.OwnLevel(topo.NodeID(a)) {
			t.Errorf("node %s: public %d != own %d", c.Format(topo.NodeID(a)),
				as.Level(topo.NodeID(a)), as.OwnLevel(topo.NodeID(a)))
		}
	}
}

func TestFig3Levels(t *testing.T) {
	c, s := fig3(t)
	as := Compute(s, Options{})
	// Values stated or implied in Section 3.3: S(0101) = 2, S(0111) = 1,
	// S(0011) = 2, spare neighbors 0101 and 0011 of 0111 both 2, and the
	// isolated node 1110 is 1-safe (all four neighbors faulty).
	checks := map[string]int{
		"0101": 2, "0111": 1, "0011": 2, "1110": 1,
		"0110": 0, "1010": 0, "1100": 0, "1111": 0,
	}
	for addr, lv := range checks {
		if got := as.Level(c.MustParse(addr)); got != lv {
			t.Errorf("S(%s) = %d, want %d", addr, got, lv)
		}
	}
	if err := as.Verify(); err != nil {
		t.Errorf("Verify: %v", err)
	}
	// In a disconnected cube no node may be n-safe: by Theorem 2 an
	// n-safe node would have an optimal path to every node of the cube,
	// including the unreachable island 1110.
	for a := 0; a < c.Nodes(); a++ {
		if as.Level(topo.NodeID(a)) == c.Dim() {
			t.Errorf("Fig. 3: S(%s) = %d but the cube is disconnected",
				c.Format(topo.NodeID(a)), as.Level(topo.NodeID(a)))
		}
	}
}

func TestFaultFreeCubeAllSafeZeroRounds(t *testing.T) {
	for n := 1; n <= 8; n++ {
		c := topo.MustCube(n)
		s := faults.NewSet(c)
		as := Compute(s, Options{})
		if as.Rounds() != 0 {
			t.Errorf("n=%d: fault-free GS took %d rounds, want 0", n, as.Rounds())
		}
		for a := 0; a < c.Nodes(); a++ {
			if as.Level(topo.NodeID(a)) != n {
				t.Errorf("n=%d: fault-free node %d has level %d", n, a, as.Level(topo.NodeID(a)))
			}
		}
	}
}

func TestAllFaultyCube(t *testing.T) {
	c := topo.MustCube(3)
	s := faults.NewSet(c)
	for a := 0; a < c.Nodes(); a++ {
		s.FailNode(topo.NodeID(a))
	}
	as := Compute(s, Options{})
	for a := 0; a < c.Nodes(); a++ {
		if as.Level(topo.NodeID(a)) != 0 {
			t.Errorf("faulty node %d has level %d", a, as.Level(topo.NodeID(a)))
		}
	}
	if err := as.Verify(); err != nil {
		t.Errorf("Verify: %v", err)
	}
}

func TestRoundsWithinCorollaryBound(t *testing.T) {
	// Corollary to Property 1: n-1 rounds always suffice. Verify the
	// synchronous iteration indeed stabilizes within n-1 rounds for
	// random fault sets, including heavy ones.
	rng := stats.NewRNG(5150)
	for n := 2; n <= 8; n++ {
		c := topo.MustCube(n)
		for trial := 0; trial < 40; trial++ {
			s := faults.NewSet(c)
			faults.InjectUniform(s, rng, rng.Intn(c.Nodes()/2))
			as := Compute(s, Options{})
			if as.Rounds() > n-1 && n > 1 {
				t.Errorf("n=%d trial %d: GS took %d rounds > n-1 = %d (faults %s)",
					n, trial, as.Rounds(), n-1, s)
			}
			if err := as.Verify(); err != nil {
				t.Errorf("n=%d trial %d: %v", n, trial, err)
			}
		}
	}
}

func TestProperty1StableByRoundK(t *testing.T) {
	// Property 1: a k-safe node (k != n) reaches its stable status by
	// round k.
	rng := stats.NewRNG(404)
	for trial := 0; trial < 120; trial++ {
		c := topo.MustCube(6)
		s := faults.NewSet(c)
		faults.InjectUniform(s, rng, rng.Intn(16))
		as := Compute(s, Options{})
		for a := 0; a < c.Nodes(); a++ {
			id := topo.NodeID(a)
			k := as.Level(id)
			if k == c.Dim() {
				continue
			}
			if as.StableRound(id) > k {
				t.Fatalf("trial %d: %d-safe node %s stabilized at round %d (faults %s)",
					trial, k, c.Format(id), as.StableRound(id), s)
			}
		}
	}
}

func TestProperty2SafeNeighbor(t *testing.T) {
	// Property 2: fewer than n faults => every nonfaulty unsafe node has
	// a safe neighbor.
	rng := stats.NewRNG(808)
	for n := 3; n <= 8; n++ {
		c := topo.MustCube(n)
		for trial := 0; trial < 60; trial++ {
			s := faults.NewSet(c)
			faults.InjectUniform(s, rng, rng.Intn(n)) // 0..n-1 faults
			as := Compute(s, Options{})
			if err := as.CheckProperty2(); err != nil {
				t.Errorf("n=%d trial %d: %v", n, trial, err)
			}
		}
	}
}

func TestUniquenessFromBelow(t *testing.T) {
	// Theorem 1: the consistent assignment is unique. The synchronous
	// GS converges from above (all nonfaulty start at n); iterating from
	// below (all nonfaulty start at 0) must reach the same fixpoint.
	rng := stats.NewRNG(606)
	for trial := 0; trial < 80; trial++ {
		c := topo.MustCube(5)
		s := faults.NewSet(c)
		faults.InjectUniform(s, rng, rng.Intn(12))
		as := Compute(s, Options{})
		below := computeFromBelow(c, s)
		for a := 0; a < c.Nodes(); a++ {
			if below[a] != as.Level(topo.NodeID(a)) {
				t.Fatalf("trial %d: node %s from-below %d != from-above %d (faults %s)",
					trial, c.Format(topo.NodeID(a)), below[a], as.Level(topo.NodeID(a)), s)
			}
		}
	}
}

// computeFromBelow iterates Definition 1 starting from the all-zero
// initialization until a fixpoint, mirroring the constructive proof of
// Theorem 1 (round k assigns the k-safe nodes from the bottom up).
func computeFromBelow(c *topo.Cube, s *faults.Set) []int {
	n := c.Dim()
	cur := make([]int, c.Nodes())
	next := make([]int, c.Nodes())
	neigh := make([]int, n)
	for iter := 0; iter < c.Nodes()+n; iter++ {
		changed := false
		for a := 0; a < c.Nodes(); a++ {
			if s.NodeFaulty(topo.NodeID(a)) {
				next[a] = 0
				continue
			}
			for i := 0; i < n; i++ {
				neigh[i] = cur[c.Neighbor(topo.NodeID(a), i)]
			}
			next[a] = LevelFromNeighbors(neigh, nil)
			if next[a] != cur[a] {
				changed = true
			}
		}
		copy(cur, next)
		if !changed {
			break
		}
	}
	return cur
}

func TestMonotonicityUnderAddedFaults(t *testing.T) {
	// Adding a fault can only lower levels, never raise them.
	rng := stats.NewRNG(909)
	for trial := 0; trial < 60; trial++ {
		c := topo.MustCube(5)
		s := faults.NewSet(c)
		faults.InjectUniform(s, rng, rng.Intn(8))
		before := Compute(s, Options{})
		// Fail one more healthy node.
		var extra topo.NodeID
		for {
			extra = topo.NodeID(rng.Intn(c.Nodes()))
			if !s.NodeFaulty(extra) {
				break
			}
		}
		s2 := s.Clone()
		s2.FailNode(extra)
		after := Compute(s2, Options{})
		for a := 0; a < c.Nodes(); a++ {
			if after.Level(topo.NodeID(a)) > before.Level(topo.NodeID(a)) {
				t.Fatalf("trial %d: failing %s raised S(%s) from %d to %d",
					trial, c.Format(extra), c.Format(topo.NodeID(a)),
					before.Level(topo.NodeID(a)), after.Level(topo.NodeID(a)))
			}
		}
	}
}

func TestTheorem2OptimalPathExistence(t *testing.T) {
	// Theorem 2: k-safe => Hamming-distance path exists to every node
	// within distance k. Checked exhaustively on random 5-cubes against
	// the lattice-DP oracle. Destinations may be faulty only at
	// distance 1 (the proof's base case reaches faulty neighbors too),
	// so we restrict to nonfaulty destinations beyond distance 1.
	rng := stats.NewRNG(1234)
	for trial := 0; trial < 40; trial++ {
		c := topo.MustCube(5)
		s := faults.NewSet(c)
		faults.InjectUniform(s, rng, rng.Intn(10))
		as := Compute(s, Options{})
		for src := 0; src < c.Nodes(); src++ {
			sid := topo.NodeID(src)
			if s.NodeFaulty(sid) {
				continue
			}
			k := as.Level(sid)
			for dst := 0; dst < c.Nodes(); dst++ {
				did := topo.NodeID(dst)
				h := topo.Hamming(sid, did)
				if h == 0 || h > k || s.NodeFaulty(did) {
					continue
				}
				if !faults.HasOptimalPath(s, sid, did) {
					t.Fatalf("trial %d: S(%s) = %d but no optimal path to %s (H=%d, faults %s)",
						trial, c.Format(sid), k, c.Format(did), h, s)
				}
			}
		}
	}
}

func TestSafeSet(t *testing.T) {
	c, s := fig1(t)
	as := Compute(s, Options{})
	safe := as.SafeSet()
	want := c.MustParseAll("1000", "1010", "1100", "1101", "1110", "1111")
	if len(safe) != len(want) {
		t.Fatalf("SafeSet = %v, want %v", safe, want)
	}
	for i := range want {
		if safe[i] != want[i] {
			t.Errorf("SafeSet[%d] = %s, want %s", i, c.Format(safe[i]), c.Format(want[i]))
		}
	}
	unsafe := as.UnsafeNonfaulty()
	if len(unsafe) != 16-4-len(want) {
		t.Errorf("UnsafeNonfaulty has %d nodes", len(unsafe))
	}
}

func TestLevelsCopy(t *testing.T) {
	_, s := fig1(t)
	as := Compute(s, Options{})
	lv := as.Levels()
	lv[0] = 99
	if as.Level(0) == 99 {
		t.Error("Levels() must return a copy")
	}
}

func TestMaxRoundsTruncation(t *testing.T) {
	// Capping GS below the convergence round leaves an inconsistent
	// (over-optimistic) assignment; Verify must detect it.
	c, s := fig1(t)
	full := Compute(s, Options{})
	if full.Rounds() < 2 {
		t.Skip("scenario converged too fast to truncate")
	}
	truncated := Compute(s, Options{MaxRounds: 1})
	if err := truncated.Verify(); err == nil {
		t.Error("1-round truncated assignment should fail Verify")
	}
	// Truncated levels are an overestimate of the fixpoint.
	for a := 0; a < c.Nodes(); a++ {
		if truncated.Level(topo.NodeID(a)) < full.Level(topo.NodeID(a)) {
			t.Errorf("truncated level below fixpoint at %s", c.Format(topo.NodeID(a)))
		}
	}
}

func TestComputeDim1(t *testing.T) {
	c := topo.MustCube(1)
	s := faults.NewSet(c)
	s.FailNode(1)
	as := Compute(s, Options{})
	if as.Level(0) != 1 {
		// Node 0's only neighbor is faulty: sorted seq (0) has S0 = 0
		// >= 0, so node 0 is 1-safe (it can reach its one neighbor).
		t.Errorf("Q1 healthy node level = %d, want 1", as.Level(0))
	}
	if err := as.Verify(); err != nil {
		t.Error(err)
	}
}

func TestVerifyCatchesCorruption(t *testing.T) {
	_, s := fig1(t)
	as := Compute(s, Options{})
	as.public[5] = 3 // corrupt
	if err := as.Verify(); err == nil {
		t.Error("Verify should catch a corrupted level")
	}
	as2 := Compute(s, Options{})
	as2.public[3] = 1 // faulty node with nonzero level
	if err := as2.Verify(); err == nil {
		t.Error("Verify should catch nonzero faulty level")
	}
}
