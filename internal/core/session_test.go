package core

import (
	"testing"

	"repro/internal/faults"
	"repro/internal/stats"
	"repro/internal/topo"
)

func TestSessionMatchesUnicast(t *testing.T) {
	// Without mid-flight events, stepping a session reproduces the
	// one-shot router exactly.
	rng := stats.NewRNG(313)
	c := topo.MustCube(6)
	for trial := 0; trial < 20; trial++ {
		s := faults.NewSet(c)
		faults.InjectUniform(s, rng, rng.Intn(6))
		rt := NewRouter(Compute(s, Options{}), nil)
		for pair := 0; pair < 30; pair++ {
			src := topo.NodeID(rng.Intn(c.Nodes()))
			dst := topo.NodeID(rng.Intn(c.Nodes()))
			if s.NodeFaulty(src) || s.NodeFaulty(dst) {
				continue
			}
			want := rt.Unicast(src, dst)
			sess, cond, out := rt.Start(src, dst)
			if out != want.Outcome || cond != want.Condition {
				t.Fatalf("admission mismatch: %v/%v vs %v/%v", cond, out, want.Condition, want.Outcome)
			}
			if out == Failure {
				continue
			}
			arrived, err := sess.Run()
			if err != nil || !arrived {
				t.Fatalf("session stalled: %v", err)
			}
			got := sess.Path()
			if len(got) != len(want.Path) {
				t.Fatalf("path length %d vs %d", len(got), len(want.Path))
			}
			for i := range got {
				if got[i] != want.Path[i] {
					t.Fatalf("paths diverge at %d", i)
				}
			}
		}
	}
}

func TestSessionStartRejects(t *testing.T) {
	c := topo.MustCube(4)
	s := faults.NewSet(c)
	s.FailNode(3)
	rt := NewRouter(Compute(s, Options{}), nil)
	if sess, _, out := rt.Start(3, 0); sess != nil || out != Failure {
		t.Error("faulty source must not start a session")
	}
	// Fig. 3 cross-partition start.
	c2 := topo.MustCube(4)
	s2 := faults.NewSet(c2)
	s2.FailNodes(c2.MustParseAll("0110", "1010", "1100", "1111")...)
	rt2 := NewRouter(Compute(s2, Options{}), nil)
	sess, cond, out := rt2.Start(c2.MustParse("0111"), c2.MustParse("1110"))
	if sess != nil || cond != CondNone || out != Failure {
		t.Error("cross-partition start must fail cleanly")
	}
}

func TestSessionSelfDelivery(t *testing.T) {
	c := topo.MustCube(4)
	rt := NewRouter(Compute(faults.NewSet(c), Options{}), nil)
	sess, _, out := rt.Start(5, 5)
	if out != Optimal || !sess.Done() || sess.Hops() != 0 {
		t.Error("self session should be done immediately")
	}
	if arrived, err := sess.Step(); !arrived || err != nil {
		t.Error("stepping a done session is a no-op success")
	}
}

func TestSessionMidFlightFailureAndReroute(t *testing.T) {
	// The paper's demand-driven scenario: nodes on the chosen path die
	// mid-flight; the message blocks, levels are recomputed, and the
	// unicast is re-admitted from the current node. Start fault-free in
	// Q5 so the reroute has room to detour.
	c := topo.MustCube(5)
	s := faults.NewSet(c)
	rt := NewRouter(Compute(s, Options{}), nil)
	src, dst := c.MustParse("00000"), c.MustParse("00111")

	sess, _, out := rt.Start(src, dst)
	if out != Optimal {
		t.Fatal("admission should be optimal")
	}
	// One hop: 00000 -> 00001 (all levels tie; LowestDim picks dim 0).
	if arrived, err := sess.Step(); arrived || err != nil {
		t.Fatalf("first hop: %v %v", arrived, err)
	}
	if sess.At() != c.MustParse("00001") {
		t.Fatalf("at %s", c.Format(sess.At()))
	}
	// Both remaining preferred neighbors die: the session must block
	// rather than walk into a dead node.
	for _, addr := range []string{"00011", "00101"} {
		if err := s.FailNode(c.MustParse(addr)); err != nil {
			t.Fatal(err)
		}
	}
	if _, err := sess.Step(); err != ErrBlocked {
		t.Fatalf("expected ErrBlocked, got %v", err)
	}
	// Recompute levels (state-change-driven GS) and re-admit from
	// 00001: C1/C2 are dead (both preferred neighbors faulty) but a
	// spare neighbor with level >= H+1 = 3 admits a C3 detour.
	fresh := Compute(s, Options{})
	cond2, out2 := sess.Reroute(fresh)
	if out2 != Suboptimal || cond2 != CondC3 {
		t.Fatalf("reroute = %v/%v, want C3/suboptimal (S at 00001's spares: %d %d %d)",
			cond2, out2,
			fresh.Level(c.MustParse("00000")),
			fresh.Level(c.MustParse("01001")),
			fresh.Level(c.MustParse("10001")))
	}
	arrived, err := sess.Run()
	if err != nil || !arrived {
		t.Fatalf("rerouted session stalled: %v", err)
	}
	if sess.Reroutes() != 1 {
		t.Errorf("reroutes = %d", sess.Reroutes())
	}
	p := sess.Path()
	if p[len(p)-1] != dst {
		t.Fatal("did not arrive at destination")
	}
	if !p.Valid(c) {
		t.Fatal("invalid walk")
	}
	for _, a := range p[1 : len(p)-1] {
		if s.NodeFaulty(a) {
			t.Fatalf("walk crosses dead node %s", c.Format(a))
		}
	}
}

func TestSessionRerouteCanAbort(t *testing.T) {
	// If the failures cut the message off, Reroute reports Failure and
	// the session stays at the current node — the paper's abort branch.
	c := topo.MustCube(4)
	s := faults.NewSet(c)
	rt := NewRouter(Compute(s, Options{}), nil)
	sess, _, _ := rt.Start(c.MustParse("0000"), c.MustParse("1111"))
	if _, err := sess.Step(); err != nil {
		t.Fatal(err)
	}
	at := sess.At()
	// Wall off the current node completely.
	if err := faults.InjectIsolating(s, at); err != nil {
		t.Fatal(err)
	}
	if _, err := sess.Step(); err != ErrBlocked {
		t.Fatalf("expected ErrBlocked, got %v", err)
	}
	_, out := sess.Reroute(Compute(s, Options{}))
	if out != Failure {
		t.Fatalf("reroute from an isolated node should fail, got %v", out)
	}
	if sess.Done() {
		t.Error("session must not be done")
	}
}

func TestSessionRandomizedKillAndReroute(t *testing.T) {
	// Randomized end-to-end: start sessions, kill a random non-endpoint
	// node mid-flight, recompute, reroute; the session must either
	// deliver on a fault-free walk or block/abort cleanly — never panic
	// or walk through a dead node.
	rng := stats.NewRNG(626)
	c := topo.MustCube(6)
	delivered, aborted := 0, 0
	for trial := 0; trial < 120; trial++ {
		s := faults.NewSet(c)
		faults.InjectUniform(s, rng, rng.Intn(5))
		rt := NewRouter(Compute(s, Options{}), nil)
		src := topo.NodeID(rng.Intn(c.Nodes()))
		dst := topo.NodeID(rng.Intn(c.Nodes()))
		if s.NodeFaulty(src) || s.NodeFaulty(dst) || src == dst {
			continue
		}
		sess, _, out := rt.Start(src, dst)
		if out == Failure {
			continue
		}
		steps := 0
		for !sess.Done() {
			// Kill a random healthy node once, mid-flight.
			if steps == 1 {
				for k := 0; k < 3; k++ {
					v := topo.NodeID(rng.Intn(c.Nodes()))
					if !s.NodeFaulty(v) && v != sess.At() && v != dst && v != src {
						s.FailNode(v)
						break
					}
				}
			}
			_, err := sess.Step()
			if err == ErrBlocked {
				if _, out := sess.Reroute(Compute(s, Options{})); out == Failure {
					aborted++
					break
				}
				continue
			}
			if err != nil {
				t.Fatalf("unexpected error: %v", err)
			}
			steps++
			if steps > 40 {
				t.Fatal("session not terminating")
			}
		}
		if sess.Done() {
			delivered++
			p := sess.Path()
			if !p.Valid(c) {
				t.Fatal("invalid walk")
			}
			for i, a := range p {
				if i != 0 && i != len(p)-1 && s.NodeFaulty(a) {
					// A node that died after the message passed through
					// it is fine; walking into one is not. Hop order is
					// enough here because Step checks at move time.
					_ = a
				}
			}
		}
	}
	if delivered == 0 {
		t.Error("no session delivered")
	}
}

func TestDisjointPathsImplyRoutability(t *testing.T) {
	// The structural fact behind Theorem 2: H(s, d) node-disjoint
	// optimal paths exist, so with fewer than H(s, d) faults at least
	// one optimal path survives — the oracle must agree for every pair
	// whose distance exceeds the fault count.
	rng := stats.NewRNG(747)
	c := topo.MustCube(6)
	for trial := 0; trial < 40; trial++ {
		s := faults.NewSet(c)
		nf := rng.Intn(4)
		faults.InjectUniform(s, rng, nf)
		for src := 0; src < c.Nodes(); src += 7 {
			for dst := 0; dst < c.Nodes(); dst += 5 {
				sid, did := topo.NodeID(src), topo.NodeID(dst)
				if s.NodeFaulty(sid) || s.NodeFaulty(did) {
					continue
				}
				h := topo.Hamming(sid, did)
				if h <= nf || h == 0 {
					continue
				}
				// More disjoint paths than faults: one must survive.
				if !faults.HasOptimalPath(s, sid, did) {
					t.Fatalf("H=%d > faults=%d but no optimal path %s -> %s (faults %s)",
						h, nf, c.Format(sid), c.Format(did), s)
				}
				// And the explicit construction confirms: at least one
				// rotation path avoids every fault.
				survived := false
				for _, p := range c.DisjointOptimalPaths(sid, did) {
					ok := true
					for _, a := range p[1 : len(p)-1] {
						if s.NodeFaulty(a) {
							ok = false
							break
						}
					}
					if ok {
						survived = true
						break
					}
				}
				if !survived {
					// The rotation family is only one family of
					// disjoint paths; a fault set of size < H cannot
					// hit all H of them (pigeonhole), so this must
					// never trigger.
					t.Fatalf("all rotation paths hit by %d < %d faults", nf, h)
				}
			}
		}
	}
}
