package core

import (
	"runtime"
	"sort"
	"sync"

	"repro/internal/faults"
	"repro/internal/topo"
)

// Incremental GS repair. A fault delta perturbs the safety-level
// fixpoint only inside a bounded neighborhood (Theorem 1's monotone
// structure), so re-running GLOBAL_STATUS over all 2^n nodes after every
// FailNode/RecoverNode is wasted work. RepairLevels seeds the iteration
// from the previous fixpoint and sweeps only a dirty frontier.
//
// Correctness rests on two monotone phases. Write C(S) for the set of
// nodes clamped to public level 0 under fault set S: the faulty nodes
// plus the paper's N2 (nonfaulty nodes with an adjacent faulty link,
// Section 4.1). Every node outside C(S) satisfies the pure Definition
// 1/4 equation on its neighbors' public levels — faulty links never
// appear in an unclamped node's evaluation, because any node touching
// one is itself clamped. The public fixpoint is therefore the unique
// consistent assignment of the "clamp C, evaluate the rest" operator
// F_S (Theorem 1's uniqueness argument applies to any clamp set).
//
// Let old be the previous fixpoint for S_old, and S_new the mutated
// set. Put D = C(S_new) \ C(S_old) (newly clamped) and U = C(S_old) \
// C(S_new) (released). The repair runs:
//
//	Phase 1 (descent): clamp C(S_new) ∪ U = C(S_old) ∪ D and seed every
//	unclamped node with its old level, newly clamped nodes with 0. The
//	seed T satisfies F(T) <= T: each unclamped node's equation held at
//	the old fixpoint and its inputs only moved down (D nodes dropped to
//	0, U nodes were already 0). Synchronous iteration therefore
//	descends pointwise and, by uniqueness, lands exactly on the
//	fixpoint for the union clamp set.
//
//	Phase 2 (ascent): release U. The phase-1 result T' satisfies F(T')
//	>= T' under the C(S_new) clamp — released nodes sit at 0 and can
//	only rise; everyone else's equation still holds because released
//	nodes contributed 0 either way. Iteration ascends pointwise to the
//	unique fixpoint for S_new.
//
// Both phases recompute a node only when one of its inputs changed in
// the previous round (the dirty frontier); a skipped node's equation
// held after the last round it was evaluated and none of its inputs
// moved since, so frontier sweeping is bit-identical to full
// synchronous rounds. Each phase moves every node monotonically through
// at most n+1 values, so termination is unconditional. The result is
// therefore bit-for-bit the assignment a cold Compute would produce —
// the property the differential, fuzz and chaos suites enforce at every
// churn step.

// RepairLevels patches the previous stable assignment prev to the
// current state of set, given the journal deltas (faults.Set.Since)
// that separate them. It returns (assignment, true) on success; the
// assignment is bit-identical — public and own tables both — to what a
// cold Compute(set, opts) would produce, but typically evaluates far
// fewer nodes (Assignment.Evals).
//
// It returns (nil, false), and the caller must recompute cold, when the
// inputs do not support repair: prev is nil or from another
// topology/set, opts requests truncated convergence (MaxRounds > 0
// means prev may not be a fixpoint and the caller wants truncation
// semantics repair cannot honor), or the delta journal contains an
// entry the topology cannot explain.
func RepairLevels(prev *Assignment, set *faults.Set, delta []faults.Delta, opts Options) (*Assignment, bool) {
	if prev == nil || prev.set != set || prev.t != set.Topology() {
		return nil, false
	}
	if opts.MaxRounds > 0 {
		return nil, false
	}
	t := set.Topology()
	nodes := t.Nodes()

	// Fast path: a fault-free cube has the known fixpoint "everyone is
	// n-safe" with zero rounds, exactly what a cold run reports.
	if set.NodeFaults() == 0 && set.LinkFaults() == 0 {
		cur := make([]int, nodes)
		for a := range cur {
			cur[a] = t.Dim()
		}
		return &Assignment{
			t: t, set: set,
			public: cur, own: cur,
			stableAt: make([]int, nodes),
			repaired: true,
		}, true
	}

	st := newRepairState(prev, set, delta)
	if st == nil {
		return nil, false
	}
	as := &Assignment{
		t: t, set: set,
		stableAt: make([]int, nodes),
		repaired: true,
	}

	// Phase 1: descend under the union clamp set.
	if !st.run(as, opts, true) {
		return nil, false
	}
	// Phase 2: release U and ascend.
	st.release()
	if !st.run(as, opts, false) {
		return nil, false
	}
	as.public = st.cur

	// Own levels: identical to the EGS final round — every N2 node runs
	// NODE_STATUS once against the settled public levels, with the far
	// ends of its faulty links counted as faulty.
	as.own = as.public
	if len(st.n2) > 0 {
		own := append([]int(nil), as.public...)
		n := t.Dim()
		neigh := make([]int, n)
		scratch := make([]int, n)
		var sibs []topo.NodeID
		members := make([]int, 0, len(st.n2))
		for a := range st.n2 {
			members = append(members, a)
		}
		sort.Ints(members)
		for _, a := range members {
			id := topo.NodeID(a)
			for i := 0; i < n; i++ {
				neigh[i], sibs = reduceObserved(t, set, as.public, id, i, sibs)
			}
			own[a] = LevelFromNeighbors(neigh, scratch)
			as.evals++
		}
		as.own = own
	}
	return as, true
}

// repairUpdate is one deferred level change of a frontier round; changes
// are collected during the round and applied after its barrier, keeping
// the synchronous-round semantics of the cold sweep.
type repairUpdate struct {
	node  int
	level int
}

// repairState carries the frontier iteration of one repair.
type repairState struct {
	t   topo.Topology
	set *faults.Set
	cur []int
	// n2 is the new N2 set (nonfaulty endpoints of faulty links); n2 ∪
	// faulty is the phase-2 clamp set.
	n2 map[int]bool
	// released holds U: nodes clamped under the old set but not the new
	// one. They stay frozen through phase 1 and seed phase 2's frontier.
	released []int
	inU      map[int]bool
	// seedDirty is the next phase's initial frontier, ascending.
	seedDirty []int
}

// newRepairState classifies the delta into seed values and the two
// frontier sets. It returns nil when the delta journal is malformed
// (unknown kind or nodes outside the topology — impossible through the
// Set mutators, but the journal crosses a package boundary).
func newRepairState(prev *Assignment, set *faults.Set, delta []faults.Delta) *repairState {
	t := set.Topology()
	st := &repairState{
		t:   t,
		set: set,
		cur: append([]int(nil), prev.public...),
		n2:  make(map[int]bool),
		inU: make(map[int]bool),
	}
	// New N2 membership from the current faulty-link list.
	for _, l := range set.FaultyLinks() {
		if !set.NodeFaulty(l.A) {
			st.n2[int(l.A)] = true
		}
		if !set.NodeFaulty(l.B) {
			st.n2[int(l.B)] = true
		}
	}

	// Toggle parities per touched node and link reconstruct the old
	// status of exactly the affected elements without cloning the whole
	// set: every journal entry flips its element's state, so
	// old = current XOR (odd number of touches).
	nodeTog := make(map[int]bool)
	linkTog := make(map[faults.Link]bool)
	affected := make(map[int]bool)
	for _, d := range delta {
		switch d.Kind {
		case faults.DeltaFailNode, faults.DeltaRecoverNode:
			if !t.Contains(d.A) {
				return nil
			}
			nodeTog[int(d.A)] = !nodeTog[int(d.A)]
			affected[int(d.A)] = true
		case faults.DeltaFailLink, faults.DeltaRecoverLink:
			if !t.Contains(d.A) || !t.Contains(d.B) {
				return nil
			}
			l := faults.Link{A: d.A, B: d.B}.Normalize()
			linkTog[l] = !linkTog[l]
			affected[int(d.A)] = true
			affected[int(d.B)] = true
		default:
			return nil
		}
	}
	oldLinkFaulty := func(a, b topo.NodeID) bool {
		l := faults.Link{A: a, B: b}.Normalize()
		was := set.LinkFaulty(a, b)
		if linkTog[l] {
			was = !was
		}
		return was
	}
	oldClamped := func(a int) bool {
		id := topo.NodeID(a)
		wasFaulty := set.NodeFaulty(id)
		if nodeTog[a] {
			wasFaulty = !wasFaulty
		}
		if wasFaulty {
			return true
		}
		var sibs []topo.NodeID
		for i := 0; i < t.Dim(); i++ {
			sibs = t.Siblings(id, i, sibs[:0])
			for _, b := range sibs {
				if oldLinkFaulty(id, b) {
					return true
				}
			}
		}
		return false
	}

	// Classify affected nodes into D (newly clamped) and U (released),
	// seed D with 0 and collect the phase-1 frontier. Ascending node
	// order throughout, for determinism.
	ids := make([]int, 0, len(affected))
	for a := range affected {
		ids = append(ids, a)
	}
	sort.Ints(ids)
	dirtyMark := make(map[int]bool)
	var sibs []topo.NodeID
	for _, a := range ids {
		newC := set.NodeFaulty(topo.NodeID(a)) || st.n2[a]
		oldC := oldClamped(a)
		switch {
		case newC && !oldC: // D: newly clamped
			if st.cur[a] != 0 {
				st.cur[a] = 0
				// The drop is visible to every neighbor.
				for i := 0; i < t.Dim(); i++ {
					sibs = t.Siblings(topo.NodeID(a), i, sibs[:0])
					for _, b := range sibs {
						dirtyMark[int(b)] = true
					}
				}
			}
		case oldC && !newC: // U: released (rises in phase 2)
			st.inU[a] = true
			st.released = append(st.released, a)
		}
	}
	st.seedDirty = make([]int, 0, len(dirtyMark))
	for a := range dirtyMark {
		st.seedDirty = append(st.seedDirty, a)
	}
	sort.Ints(st.seedDirty)
	return st
}

// clamped reports whether node a is frozen at 0 in the given phase.
func (st *repairState) clamped(a int, phase1 bool) bool {
	if st.set.NodeFaulty(topo.NodeID(a)) || st.n2[a] {
		return true
	}
	return phase1 && st.inU[a]
}

// release ends phase 1: the released nodes become phase 2's frontier
// (their own equations are the only ones the phase-1 fixpoint may
// violate). released was filled in ascending order.
func (st *repairState) release() {
	st.seedDirty = append([]int(nil), st.released...)
}

// repairRoundCap bounds repair rounds defensively. Every counted round
// changes at least one node and each node moves monotonically through
// at most Dim+1 values per phase, so Nodes*(Dim+1)+2 cannot be reached;
// hitting it means the monotonicity invariant was violated and the
// caller must recompute cold.
func repairRoundCap(t topo.Topology) int { return t.Nodes()*(t.Dim()+1) + 2 }

// run executes one monotone frontier phase, folding round/delta/eval
// accounting into as. It returns false only if the defensive round cap
// is exceeded.
func (st *repairState) run(as *Assignment, opts Options, phase1 bool) bool {
	t := st.t
	nodes := t.Nodes()
	workers := opts.Workers
	if workers < 0 {
		workers = runtime.GOMAXPROCS(0)
	}

	// The next round's frontier is collected as marks on a dense bitmap
	// and emitted in ascending node order, so sequential and parallel
	// runs walk identical work lists.
	mark := make([]bool, nodes)
	dirty := make([]int, 0, len(st.seedDirty))
	for _, a := range st.seedDirty {
		if !st.clamped(a, phase1) && !mark[a] {
			mark[a] = true
			dirty = append(dirty, a)
		}
	}

	var updates []repairUpdate
	roundCap := repairRoundCap(t)
	var sibs []topo.NodeID
	sw := newSweeper(t, st.set, nil)
	for round := 0; len(dirty) > 0; round++ {
		if round >= roundCap {
			return false
		}
		// Evaluate the frontier against the previous round's table.
		updates = updates[:0]
		if workers > 1 && len(dirty) >= 2*workers {
			updates = st.evalParallel(sw, dirty, workers, updates)
		} else {
			for _, a := range dirty {
				if v := sw.eval(st.cur, topo.NodeID(a)); v != st.cur[a] {
					updates = append(updates, repairUpdate{a, v})
				}
			}
		}
		as.dirty += len(dirty)

		// Apply after the barrier; the changed nodes' neighborhoods form
		// the next frontier.
		for _, a := range dirty {
			mark[a] = false
		}
		dirty = dirty[:0]
		if len(updates) == 0 {
			break
		}
		as.rounds++
		as.deltas = append(as.deltas, len(updates))
		for _, u := range updates {
			st.cur[u.node] = u.level
			as.stableAt[u.node] = as.rounds
			for i := 0; i < t.Dim(); i++ {
				sibs = t.Siblings(topo.NodeID(u.node), i, sibs[:0])
				for _, b := range sibs {
					if !st.clamped(int(b), phase1) && !mark[b] {
						mark[b] = true
						dirty = append(dirty, int(b))
					}
				}
			}
		}
		sort.Ints(dirty)
	}
	as.evals += sw.evals
	st.seedDirty = nil
	return true
}

// evalParallel fans one round's frontier across a worker pool. Workers
// only read the shared level table (writes wait for the round barrier)
// and collect changes for contiguous frontier chunks; chunks are
// concatenated in order, making the update list identical to the
// sequential one.
func (st *repairState) evalParallel(sw *sweeper, dirty []int, workers int, out []repairUpdate) []repairUpdate {
	if workers > len(dirty) {
		workers = len(dirty)
	}
	chunk := (len(dirty) + workers - 1) / workers
	parts := make([][]repairUpdate, workers)
	evals := make([]int, workers)
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		lo := w * chunk
		hi := lo + chunk
		if hi > len(dirty) {
			hi = len(dirty)
		}
		if lo >= hi {
			continue
		}
		wg.Add(1)
		go func(w, lo, hi int) {
			defer wg.Done()
			wsw := newSweeper(st.t, st.set, nil)
			for _, a := range dirty[lo:hi] {
				if v := wsw.eval(st.cur, topo.NodeID(a)); v != st.cur[a] {
					parts[w] = append(parts[w], repairUpdate{a, v})
				}
			}
			evals[w] = wsw.evals
		}(w, lo, hi)
	}
	wg.Wait()
	for w := 0; w < workers; w++ {
		out = append(out, parts[w]...)
		sw.evals += evals[w]
	}
	return out
}
