package core

import (
	"runtime"
	"sort"
	"sync"

	"repro/internal/bitset"
	"repro/internal/faults"
	"repro/internal/topo"
)

// Incremental GS repair. A fault delta perturbs the safety-level
// fixpoint only inside a bounded neighborhood (Theorem 1's monotone
// structure), so re-running GLOBAL_STATUS over all 2^n nodes after every
// FailNode/RecoverNode is wasted work. RepairLevels seeds the iteration
// from the previous fixpoint and sweeps only a dirty frontier.
//
// Correctness rests on two monotone phases. Write C(S) for the set of
// nodes clamped to public level 0 under fault set S: the faulty nodes
// plus the paper's N2 (nonfaulty nodes with an adjacent faulty link,
// Section 4.1). Every node outside C(S) satisfies the pure Definition
// 1/4 equation on its neighbors' public levels — faulty links never
// appear in an unclamped node's evaluation, because any node touching
// one is itself clamped. The public fixpoint is therefore the unique
// consistent assignment of the "clamp C, evaluate the rest" operator
// F_S (Theorem 1's uniqueness argument applies to any clamp set).
//
// Let old be the previous fixpoint for S_old, and S_new the mutated
// set. Put D = C(S_new) \ C(S_old) (newly clamped) and U = C(S_old) \
// C(S_new) (released). The repair runs:
//
//	Phase 1 (descent): clamp C(S_new) ∪ U = C(S_old) ∪ D and seed every
//	unclamped node with its old level, newly clamped nodes with 0. The
//	seed T satisfies F(T) <= T: each unclamped node's equation held at
//	the old fixpoint and its inputs only moved down (D nodes dropped to
//	0, U nodes were already 0). Synchronous iteration therefore
//	descends pointwise and, by uniqueness, lands exactly on the
//	fixpoint for the union clamp set.
//
//	Phase 2 (ascent): release U. The phase-1 result T' satisfies F(T')
//	>= T' under the C(S_new) clamp — released nodes sit at 0 and can
//	only rise; everyone else's equation still holds because released
//	nodes contributed 0 either way. Iteration ascends pointwise to the
//	unique fixpoint for S_new.
//
// Both phases recompute a node only when one of its inputs changed in
// the previous round (the dirty frontier); a skipped node's equation
// held after the last round it was evaluated and none of its inputs
// moved since, so frontier sweeping is bit-identical to full
// synchronous rounds. Each phase moves every node monotonically through
// at most n+1 values, so termination is unconditional. The result is
// therefore bit-for-bit the assignment a cold Compute would produce —
// the property the differential, fuzz and chaos suites enforce at every
// churn step.
//
// The working state lives in a pooled repairScratch: word-addressed
// bitsets for the N2/released/affected/toggle/dirty-mark sets and
// preallocated frontier and update buffers, reused across repairs of
// the same topology size. A steady churn stream therefore allocates
// only what each repair's Assignment must retain (its level tables and
// sparse stability entries), not per-round sets.

// RepairLevels patches the previous stable assignment prev to the
// current state of set, given the journal deltas (faults.Set.Since)
// that separate them. It returns (assignment, true) on success; the
// assignment is bit-identical — public and own tables both — to what a
// cold Compute(set, opts) would produce, but typically evaluates far
// fewer nodes (Assignment.Evals).
//
// It returns (nil, false), and the caller must recompute cold, when the
// inputs do not support repair: prev is nil or from another
// topology/set, opts requests truncated convergence (MaxRounds > 0
// means prev may not be a fixpoint and the caller wants truncation
// semantics repair cannot honor), or the delta journal contains an
// entry the topology cannot explain.
func RepairLevels(prev *Assignment, set *faults.Set, delta []faults.Delta, opts Options) (*Assignment, bool) {
	if prev == nil || prev.set != set || prev.t != set.Topology() {
		return nil, false
	}
	if opts.MaxRounds > 0 {
		return nil, false
	}
	t := set.Topology()
	nodes := t.Nodes()

	// Fast path: a fault-free cube has the known fixpoint "everyone is
	// n-safe" with zero rounds, exactly what a cold run reports.
	if set.NodeFaults() == 0 && set.LinkFaults() == 0 {
		cur := make([]uint8, nodes)
		n := uint8(t.Dim())
		for a := range cur {
			cur[a] = n
		}
		return &Assignment{
			t: t, set: set,
			public: cur, own: cur,
			repaired: true,
		}, true
	}

	sc := getRepairScratch(t)
	defer putRepairScratch(sc)
	st := newRepairState(prev, set, delta, sc)
	if st == nil {
		return nil, false
	}
	as := &Assignment{
		t: t, set: set,
		repaired: true,
	}

	// Phase 1: descend under the union clamp set.
	if !st.run(as, opts, true) {
		return nil, false
	}
	// Phase 2: release U and ascend.
	st.release()
	if !st.run(as, opts, false) {
		return nil, false
	}
	as.public = st.cur
	as.stableSparse = finalizeStable(as.stableSparse)

	// Own levels: identical to the EGS final round — every N2 node runs
	// NODE_STATUS once against the settled public levels, with the far
	// ends of its faulty links counted as faulty.
	as.own = as.public
	if sc.n2.Any() {
		own := append([]uint8(nil), as.public...)
		n := t.Dim()
		if cap(sc.neigh) < n+1 {
			sc.neigh = make([]int, n+1)
			sc.lvlCnt = make([]int, n+1)
		}
		neigh, scratch := sc.neigh[:n], sc.lvlCnt[:n+1]
		sc.n2.ForEach(func(a int) {
			id := topo.NodeID(a)
			for i := 0; i < n; i++ {
				neigh[i], sc.sibs = reduceObserved(t, set, as.public, id, i, sc.sibs)
			}
			own[a] = uint8(LevelFromNeighbors(neigh, scratch))
			as.evals++
		})
		as.own = own
	}
	return as, true
}

// repairUpdate is one deferred level change of a frontier round; changes
// are collected during the round and applied after its barrier, keeping
// the synchronous-round semantics of the cold sweep.
type repairUpdate struct {
	node  int32
	level uint8
}

// repairScratch holds every reusable buffer of one repair: the
// membership bitsets, the frontier/update slices, and the sweepers.
// Instances recycle through repairPool so steady-state churn repairs
// allocate nothing here; buffers are sized for one topology and
// reallocated only when a repair arrives for a different node count.
type repairScratch struct {
	nodes int
	// n2 is the new N2 set (nonfaulty endpoints of faulty links); n2 ∪
	// faulty is the phase-2 clamp set.
	n2 bitset.Set
	// inU marks U: nodes clamped under the old set but not the new one.
	inU bitset.Set
	// affected marks nodes named by the delta journal; nodeTog holds the
	// per-node toggle parity of the journal entries.
	affected bitset.Set
	nodeTog  bitset.Set
	// mark accumulates each round's next frontier; DrainInto empties it
	// into dirty in ascending node order.
	mark      bitset.Set
	dirty     []int32
	released  []int32
	seedDirty []int32
	updates   []repairUpdate
	linkAll   []faults.Link
	sibs      []topo.NodeID
	neigh     []int
	lvlCnt    []int
	sw        *sweeper
	// Per-worker state for evalParallel.
	sws   []*sweeper
	parts [][]repairUpdate
	wEval []int
}

var repairPool = sync.Pool{New: func() interface{} { return &repairScratch{} }}

func getRepairScratch(t topo.Topology) *repairScratch {
	sc := repairPool.Get().(*repairScratch)
	nodes := t.Nodes()
	if sc.nodes != nodes {
		sc.nodes = nodes
		sc.n2 = bitset.New(nodes)
		sc.inU = bitset.New(nodes)
		sc.affected = bitset.New(nodes)
		sc.nodeTog = bitset.New(nodes)
		sc.mark = bitset.New(nodes)
		sc.sw = nil
		sc.sws = nil
	}
	return sc
}

func putRepairScratch(sc *repairScratch) {
	sc.n2.Reset()
	sc.inU.Reset()
	sc.affected.Reset()
	sc.nodeTog.Reset()
	sc.mark.Reset()
	repairPool.Put(sc)
}

// sweeperFor returns the scratch's sequential sweeper rebound to the
// current topology/set (pool entries outlive any one fault set).
func (sc *repairScratch) sweeperFor(t topo.Topology, set *faults.Set) *sweeper {
	if sc.sw == nil || sc.sw.t != t {
		sc.sw = newSweeper(t, set, nil)
	} else {
		sc.sw.set = set
		sc.sw.evals = 0
	}
	return sc.sw
}

// finalizeStable sorts the appended (node, round) stability entries by
// node and keeps each node's last-written round — the first round after
// which the node's level never changed again.
func finalizeStable(entries []stableEntry) []stableEntry {
	if len(entries) == 0 {
		return nil
	}
	sort.Slice(entries, func(i, j int) bool {
		if entries[i].node != entries[j].node {
			return entries[i].node < entries[j].node
		}
		return entries[i].round < entries[j].round
	})
	w := 0
	for i := range entries {
		if i+1 < len(entries) && entries[i+1].node == entries[i].node {
			continue
		}
		entries[w] = entries[i]
		w++
	}
	return entries[:w]
}

// repairState carries the frontier iteration of one repair.
type repairState struct {
	t   topo.Topology
	set *faults.Set
	cur []uint8
	sc  *repairScratch
	// seedDirty is the next phase's initial frontier, ascending.
	seedDirty []int32
}

// newRepairState classifies the delta into seed values and the two
// frontier sets. It returns nil when the delta journal is malformed
// (unknown kind or nodes outside the topology — impossible through the
// Set mutators, but the journal crosses a package boundary).
func newRepairState(prev *Assignment, set *faults.Set, delta []faults.Delta, sc *repairScratch) *repairState {
	t := set.Topology()
	st := &repairState{
		t:   t,
		set: set,
		cur: make([]uint8, t.Nodes()),
		sc:  sc,
	}
	copy(st.cur, prev.public)
	// New N2 membership from the current faulty-link list.
	for _, l := range set.FaultyLinks() {
		if !set.NodeFaulty(l.A) {
			sc.n2.Add(int(l.A))
		}
		if !set.NodeFaulty(l.B) {
			sc.n2.Add(int(l.B))
		}
	}

	// Toggle parities per touched node and link reconstruct the old
	// status of exactly the affected elements without cloning the whole
	// set: every journal entry flips its element's state, so
	// old = current XOR (odd number of touches).
	linkAll := sc.linkAll[:0]
	for _, d := range delta {
		switch d.Kind {
		case faults.DeltaFailNode, faults.DeltaRecoverNode:
			if !t.Contains(d.A) {
				return nil
			}
			sc.nodeTog.Flip(int(d.A))
			sc.affected.Add(int(d.A))
		case faults.DeltaFailLink, faults.DeltaRecoverLink:
			if !t.Contains(d.A) || !t.Contains(d.B) {
				return nil
			}
			linkAll = append(linkAll, faults.Link{A: d.A, B: d.B}.Normalize())
			sc.affected.Add(int(d.A))
			sc.affected.Add(int(d.B))
		default:
			return nil
		}
	}
	// Reduce the touched-link list to the odd-parity (state-flipping)
	// links, sorted for binary search.
	sort.Slice(linkAll, func(i, j int) bool {
		if linkAll[i].A != linkAll[j].A {
			return linkAll[i].A < linkAll[j].A
		}
		return linkAll[i].B < linkAll[j].B
	})
	w := 0
	for i := 0; i < len(linkAll); {
		j := i
		for j < len(linkAll) && linkAll[j] == linkAll[i] {
			j++
		}
		if (j-i)%2 == 1 {
			linkAll[w] = linkAll[i]
			w++
		}
		i = j
	}
	sc.linkAll = linkAll
	linkOdd := linkAll[:w]
	oldLinkFaulty := func(a, b topo.NodeID) bool {
		l := faults.Link{A: a, B: b}.Normalize()
		was := set.LinkFaulty(a, b)
		i := sort.Search(len(linkOdd), func(i int) bool {
			e := linkOdd[i]
			return e.A > l.A || (e.A == l.A && e.B >= l.B)
		})
		if i < len(linkOdd) && linkOdd[i] == l {
			was = !was
		}
		return was
	}
	oldClamped := func(a int) bool {
		id := topo.NodeID(a)
		wasFaulty := set.NodeFaulty(id)
		if sc.nodeTog.Test(a) {
			wasFaulty = !wasFaulty
		}
		if wasFaulty {
			return true
		}
		for i := 0; i < t.Dim(); i++ {
			sc.sibs = t.Siblings(id, i, sc.sibs[:0])
			for _, b := range sc.sibs {
				if oldLinkFaulty(id, b) {
					return true
				}
			}
		}
		return false
	}

	// Classify affected nodes into D (newly clamped) and U (released),
	// seed D with 0 and collect the phase-1 frontier. The bitsets
	// iterate and drain in ascending node order, for determinism.
	sc.released = sc.released[:0]
	sc.affected.ForEach(func(a int) {
		newC := set.NodeFaulty(topo.NodeID(a)) || sc.n2.Test(a)
		oldC := oldClamped(a)
		switch {
		case newC && !oldC: // D: newly clamped
			if st.cur[a] != 0 {
				st.cur[a] = 0
				// The drop is visible to every neighbor.
				for i := 0; i < t.Dim(); i++ {
					sc.sibs = t.Siblings(topo.NodeID(a), i, sc.sibs[:0])
					for _, b := range sc.sibs {
						sc.mark.Add(int(b))
					}
				}
			}
		case oldC && !newC: // U: released (rises in phase 2)
			sc.inU.Add(a)
			sc.released = append(sc.released, int32(a))
		}
	})
	sc.seedDirty = sc.mark.DrainInto(sc.seedDirty[:0])
	st.seedDirty = sc.seedDirty
	return st
}

// clamped reports whether node a is frozen at 0 in the given phase.
func (st *repairState) clamped(a int, phase1 bool) bool {
	if st.set.NodeFaulty(topo.NodeID(a)) || st.sc.n2.Test(a) {
		return true
	}
	return phase1 && st.sc.inU.Test(a)
}

// release ends phase 1: the released nodes become phase 2's frontier
// (their own equations are the only ones the phase-1 fixpoint may
// violate). released was filled in ascending order.
func (st *repairState) release() {
	st.seedDirty = st.sc.released
}

// repairRoundCap bounds repair rounds defensively. Every counted round
// changes at least one node and each node moves monotonically through
// at most Dim+1 values per phase, so Nodes*(Dim+1)+2 cannot be reached;
// hitting it means the monotonicity invariant was violated and the
// caller must recompute cold.
func repairRoundCap(t topo.Topology) int { return t.Nodes()*(t.Dim()+1) + 2 }

// run executes one monotone frontier phase, folding round/delta/eval
// accounting into as. It returns false only if the defensive round cap
// is exceeded.
func (st *repairState) run(as *Assignment, opts Options, phase1 bool) bool {
	t := st.t
	sc := st.sc
	workers := opts.Workers
	if workers < 0 {
		workers = runtime.GOMAXPROCS(0)
	}

	// The next round's frontier is collected as marks on a dense bitset
	// and drained in ascending node order, so sequential and parallel
	// runs walk identical work lists.
	mark := sc.mark
	for _, a := range st.seedDirty {
		if !st.clamped(int(a), phase1) {
			mark.Add(int(a))
		}
	}
	dirty := mark.DrainInto(sc.dirty[:0])

	updates := sc.updates[:0]
	roundCap := repairRoundCap(t)
	sw := sc.sweeperFor(t, st.set)
	for round := 0; len(dirty) > 0; round++ {
		if round >= roundCap {
			sc.dirty = dirty
			return false
		}
		// Evaluate the frontier against the previous round's table.
		updates = updates[:0]
		if workers > 1 && len(dirty) >= 2*workers {
			updates = st.evalParallel(sw, dirty, workers, updates)
		} else {
			for _, a := range dirty {
				if v := uint8(sw.eval(st.cur, topo.NodeID(a))); v != st.cur[a] {
					updates = append(updates, repairUpdate{a, v})
				}
			}
		}
		as.dirty += len(dirty)

		// Apply after the barrier; the changed nodes' neighborhoods form
		// the next frontier.
		if len(updates) == 0 {
			dirty = dirty[:0]
			break
		}
		as.rounds++
		as.deltas = append(as.deltas, len(updates))
		for _, u := range updates {
			st.cur[u.node] = u.level
			as.stableSparse = append(as.stableSparse, stableEntry{node: u.node, round: int32(as.rounds)})
			for i := 0; i < t.Dim(); i++ {
				sc.sibs = t.Siblings(topo.NodeID(u.node), i, sc.sibs[:0])
				for _, b := range sc.sibs {
					if !st.clamped(int(b), phase1) {
						mark.Add(int(b))
					}
				}
			}
		}
		dirty = mark.DrainInto(dirty[:0])
	}
	as.evals += sw.evals
	sw.evals = 0
	sc.dirty = dirty
	sc.updates = updates
	st.seedDirty = nil
	return true
}

// evalParallel fans one round's frontier across a worker pool. Workers
// only read the shared level table (writes wait for the round barrier)
// and collect changes for contiguous frontier chunks; chunks are
// concatenated in order, making the update list identical to the
// sequential one. Worker sweepers and chunk buffers live in the scratch
// and are reused round over round.
func (st *repairState) evalParallel(sw *sweeper, dirty []int32, workers int, out []repairUpdate) []repairUpdate {
	if workers > len(dirty) {
		workers = len(dirty)
	}
	sc := st.sc
	for len(sc.sws) < workers {
		sc.sws = append(sc.sws, newSweeper(st.t, st.set, nil))
	}
	for len(sc.parts) < workers {
		sc.parts = append(sc.parts, nil)
	}
	for len(sc.wEval) < workers {
		sc.wEval = append(sc.wEval, 0)
	}
	chunk := (len(dirty) + workers - 1) / workers
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		lo := w * chunk
		hi := lo + chunk
		if hi > len(dirty) {
			hi = len(dirty)
		}
		sc.parts[w] = sc.parts[w][:0]
		sc.wEval[w] = 0
		if lo >= hi {
			continue
		}
		wsw := sc.sws[w]
		if wsw.t != st.t {
			wsw = newSweeper(st.t, st.set, nil)
			sc.sws[w] = wsw
		}
		wsw.set = st.set
		wsw.evals = 0
		wg.Add(1)
		go func(w, lo, hi int, wsw *sweeper) {
			defer wg.Done()
			for _, a := range dirty[lo:hi] {
				if v := uint8(wsw.eval(st.cur, topo.NodeID(a))); v != st.cur[a] {
					sc.parts[w] = append(sc.parts[w], repairUpdate{a, v})
				}
			}
			sc.wEval[w] = wsw.evals
		}(w, lo, hi, wsw)
	}
	wg.Wait()
	for w := 0; w < workers; w++ {
		out = append(out, sc.parts[w]...)
		sw.evals += sc.wEval[w]
	}
	return out
}
