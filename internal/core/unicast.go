package core

import (
	"fmt"

	"repro/internal/obs"
	"repro/internal/topo"
)

// Outcome classifies a unicast attempt, mirroring the three exits of
// Algorithm UNICASTING_AT_SOURCE_NODE.
type Outcome int

const (
	// Optimal: the source met C1 or C2 and the message traveled a
	// Hamming-distance path.
	Optimal Outcome = iota
	// Suboptimal: only C3 held; the message took a spare first hop and
	// traveled H(s,d)+2 hops.
	Suboptimal
	// Failure: none of C1, C2, C3 held; the unicast was aborted at the
	// source. The paper: "the cause of failure can be either too many
	// faulty nodes in the neighborhood or a network partition."
	Failure
)

// String renders the outcome for tables and traces.
func (o Outcome) String() string {
	switch o {
	case Optimal:
		return "optimal"
	case Suboptimal:
		return "suboptimal"
	case Failure:
		return "failure"
	default:
		return fmt.Sprintf("Outcome(%d)", int(o))
	}
}

// Condition identifies which source-side safety test admitted a unicast.
type Condition int

const (
	// CondNone: no condition held; unicast aborted.
	CondNone Condition = iota
	// CondC1: S(s) >= H(s, d).
	CondC1
	// CondC2: some preferred neighbor has level >= H(s, d) - 1.
	CondC2
	// CondC3: some spare neighbor has level >= H(s, d) + 1.
	CondC3
)

// String renders the condition name used in the paper.
func (c Condition) String() string {
	switch c {
	case CondC1:
		return "C1"
	case CondC2:
		return "C2"
	case CondC3:
		return "C3"
	default:
		return "none"
	}
}

// TieBreak selects among equally-safest candidate neighbors. The paper
// leaves the choice open ("say 1111 along dimension 0"); the policy is
// pluggable so the ablation experiments can quantify that freedom.
type TieBreak func(dims []int) int

// LowestDim picks the smallest candidate dimension. It is the default
// and makes every route deterministic.
func LowestDim(dims []int) int { return dims[0] }

// HighestDim picks the largest candidate dimension.
func HighestDim(dims []int) int { return dims[len(dims)-1] }

// Hop records one forwarding decision of the unicast algorithm.
type Hop struct {
	From topo.NodeID
	To   topo.NodeID
	// Dim is the dimension crossed.
	Dim int
	// Nav is the navigation vector sent along with the message
	// (already updated for this hop).
	Nav topo.NavVector
	// Spare marks the single detour hop of a suboptimal unicast.
	Spare bool
}

// Route is the result of one unicast attempt.
type Route struct {
	Source    topo.NodeID
	Dest      topo.NodeID
	Hamming   int
	Outcome   Outcome
	Condition Condition
	Path      topo.Path
	Hops      []Hop
	// Err carries a transport-level anomaly: the algorithm was admitted
	// at the source but a forwarding step found no usable preferred
	// neighbor. With a consistent assignment this cannot happen when a
	// condition held (Theorem 3); it is surfaced rather than panicking
	// so that deliberately inconsistent ablations (truncated GS rounds)
	// can observe the consequence.
	Err error
}

// Len returns the number of hops traveled, or 0 for a failed unicast.
func (r *Route) Len() int { return r.Path.Len() }

// Router executes safety-level unicasts over one computed assignment.
type Router struct {
	as  *Assignment
	tie TieBreak
	// maxHops guards against forwarding loops if the caller routes on a
	// deliberately inconsistent assignment.
	maxHops int
	// obs, when non-nil, receives admission/hop/outcome events. The
	// nil case costs one branch per decision point.
	obs *obs.RouteObserver
}

// NewRouter returns a Router over assignment as using tie-break policy
// tie (nil means LowestDim).
func NewRouter(as *Assignment, tie TieBreak) *Router {
	if tie == nil {
		tie = LowestDim
	}
	return &Router{as: as, tie: tie, maxHops: as.cube.Dim() + 3}
}

// Assignment returns the safety-level assignment the router consults.
func (rt *Router) Assignment() *Assignment { return rt.as }

// Observe attaches a route observer (nil detaches) and returns the
// router for chaining. A traced observer must not be shared between
// concurrent unicasts; counter-only observers may be.
func (rt *Router) Observe(o *obs.RouteObserver) *Router {
	rt.obs = o
	return rt
}

// Feasibility evaluates the source-side admission test for a unicast
// from s to d and returns the first condition that holds, in the
// algorithm's order C1, C2, C3, together with the outcome class it
// implies. It does not move any message.
func (rt *Router) Feasibility(s, d topo.NodeID) (Condition, Outcome) {
	as, c := rt.as, rt.as.cube
	nav := topo.Nav(s, d)
	h := nav.Count()
	if h == 0 {
		return CondC1, Optimal
	}
	// Section 4.1 exclusion: the far end of an adjacent faulty link is
	// not covered by the source's own level (every length-1 "optimal
	// path" to it is the dead link itself), so a distance-1 unicast to
	// it can only be admitted suboptimally via C3.
	deadLinkDest := h == 1 && as.set.LinkFaulty(s, d)
	if !deadLinkDest {
		if as.OwnLevel(s) >= h {
			return CondC1, Optimal
		}
		for i := 0; i < c.Dim(); i++ {
			if nav.Bit(i) && rt.neighborLevel(s, i) >= h-1 {
				return CondC2, Optimal
			}
		}
	}
	for i := 0; i < c.Dim(); i++ {
		if !nav.Bit(i) && rt.neighborLevel(s, i) >= h+1 {
			return CondC3, Suboptimal
		}
	}
	return CondNone, Failure
}

// neighborLevel is the safety level of s's neighbor along dim as s
// observes it: the public level, with one addition from Section 4.1 — a
// node never forwards across one of its own faulty links, so the far end
// of a faulty link is observed as level 0 regardless of its public value.
func (rt *Router) neighborLevel(s topo.NodeID, dim int) int {
	b := rt.as.cube.Neighbor(s, dim)
	if rt.as.set.LinkFaulty(s, b) {
		return 0
	}
	return rt.as.Level(b)
}

// Unicast routes a message from s to d and returns the full trace.
// s must be nonfaulty. d may be any node: the paper delivers the final
// hop even to a faulty or N2 destination (Theorem 2 proof, j = 1 case,
// and footnote to Section 4.1).
func (rt *Router) Unicast(s, d topo.NodeID) *Route {
	as, c := rt.as, rt.as.cube
	r := &Route{Source: s, Dest: d, Hamming: topo.Hamming(s, d)}
	if !c.Contains(s) || !c.Contains(d) {
		r.Outcome = Failure
		r.Err = fmt.Errorf("core: node outside cube")
		if rt.obs != nil {
			rt.obs.Admit(int(s), r.Hamming, 0, CondNone.String(), Failure.String())
		}
		return rt.finishObs(r, int(s))
	}
	if as.set.NodeFaulty(s) {
		r.Outcome = Failure
		r.Err = fmt.Errorf("core: source %s is faulty", c.Format(s))
		if rt.obs != nil {
			rt.obs.Admit(int(s), r.Hamming, 0, CondNone.String(), Failure.String())
		}
		return rt.finishObs(r, int(s))
	}
	cond, outcome := rt.Feasibility(s, d)
	r.Condition = cond
	r.Outcome = outcome
	if rt.obs != nil {
		rt.obs.Admit(int(s), r.Hamming, as.OwnLevel(s), cond.String(), outcome.String())
	}
	if outcome == Failure {
		return rt.finishObs(r, int(s))
	}
	r.Path = topo.Path{s}
	if s == d {
		return rt.finishObs(r, int(s))
	}

	nav := topo.Nav(s, d)
	cur := s
	if cond == CondC3 {
		// Suboptimal first hop: the spare neighbor with the highest
		// safety level among those meeting the C3 threshold.
		dim := rt.pickSpare(cur, nav)
		if rt.obs != nil {
			rt.obs.Hop(int(cur), int(c.Neighbor(cur, dim)), dim, rt.neighborLevel(cur, dim), true)
		}
		nav = nav.Flip(dim) // setting the bit: the detour must be undone
		cur = c.Neighbor(cur, dim)
		r.Hops = append(r.Hops, Hop{From: s, To: cur, Dim: dim, Nav: nav, Spare: true})
		r.Path = append(r.Path, cur)
	}
	for hops := 0; !nav.Zero(); hops++ {
		if hops > rt.maxHops {
			r.Err = fmt.Errorf("core: forwarding exceeded %d hops (inconsistent levels?)", rt.maxHops)
			r.Outcome = Failure
			return rt.finishObs(r, int(cur))
		}
		dim, ok := rt.pickPreferred(cur, nav)
		if !ok {
			r.Err = fmt.Errorf("core: node %s has no usable preferred neighbor (nav %0*b)",
				c.Format(cur), c.Dim(), nav)
			r.Outcome = Failure
			return rt.finishObs(r, int(cur))
		}
		nav = nav.Flip(dim)
		next := c.Neighbor(cur, dim)
		if rt.obs != nil {
			rt.obs.Hop(int(cur), int(next), dim, rt.as.Level(next), false)
		}
		r.Hops = append(r.Hops, Hop{From: cur, To: next, Dim: dim, Nav: nav})
		r.Path = append(r.Path, next)
		cur = next
	}
	return rt.finishObs(r, int(cur))
}

// finishObs emits the terminal observation for a completed Unicast and
// returns the route unchanged. It is a no-op without an observer.
func (rt *Router) finishObs(r *Route, at int) *Route {
	if rt.obs == nil {
		return r
	}
	note := ""
	if r.Err != nil {
		note = r.Err.Error()
	}
	rt.obs.Done(at, r.Condition.String(), r.Outcome.String(), r.Path.Len(), r.Hamming, 0, note)
	return r
}

// pickPreferred chooses the preferred dimension whose neighbor has the
// highest safety level, breaking ties with the router policy. When the
// navigation vector has a single remaining bit the neighbor is the
// destination itself and is chosen unconditionally (final delivery);
// otherwise intermediate candidates must be traversable: nonfaulty and
// not across a faulty link.
func (rt *Router) pickPreferred(cur topo.NodeID, nav topo.NavVector) (int, bool) {
	c := rt.as.cube
	if nav.Count() == 1 {
		for i := 0; i < c.Dim(); i++ {
			if nav.Bit(i) {
				// Final hop: delivered even to a faulty destination,
				// but not across a faulty link.
				if rt.as.set.LinkFaulty(cur, c.Neighbor(cur, i)) {
					return 0, false
				}
				return i, true
			}
		}
	}
	best := -1
	var cand []int
	for i := 0; i < c.Dim(); i++ {
		if !nav.Bit(i) {
			continue
		}
		b := c.Neighbor(cur, i)
		if rt.as.set.NodeFaulty(b) || rt.as.set.LinkFaulty(cur, b) {
			continue
		}
		lv := rt.as.Level(b)
		switch {
		case lv > best:
			best = lv
			cand = cand[:0]
			cand = append(cand, i)
		case lv == best:
			cand = append(cand, i)
		}
	}
	if best < 0 {
		return 0, false
	}
	return rt.tie(cand), true
}

// pickSpare chooses the spare dimension whose neighbor has the highest
// safety level among those satisfying C3 (level >= H+1).
func (rt *Router) pickSpare(cur topo.NodeID, nav topo.NavVector) int {
	c := rt.as.cube
	h := nav.Count()
	best := -1
	var cand []int
	for i := 0; i < c.Dim(); i++ {
		if nav.Bit(i) {
			continue
		}
		lv := rt.neighborLevel(cur, i)
		if lv < h+1 {
			continue
		}
		switch {
		case lv > best:
			best = lv
			cand = cand[:0]
			cand = append(cand, i)
		case lv == best:
			cand = append(cand, i)
		}
	}
	return rt.tie(cand)
}
