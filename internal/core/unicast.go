package core

import (
	"fmt"

	"repro/internal/obs"
	"repro/internal/topo"
)

// Outcome classifies a unicast attempt, mirroring the three exits of
// Algorithm UNICASTING_AT_SOURCE_NODE.
type Outcome int

const (
	// Optimal: the source met C1 or C2 and the message traveled a
	// Hamming-distance path.
	Optimal Outcome = iota
	// Suboptimal: only C3 held; the message took a spare first hop and
	// traveled H(s,d)+2 hops.
	Suboptimal
	// Failure: none of C1, C2, C3 held; the unicast was aborted at the
	// source. The paper: "the cause of failure can be either too many
	// faulty nodes in the neighborhood or a network partition."
	Failure
)

// String renders the outcome for tables and traces.
func (o Outcome) String() string {
	switch o {
	case Optimal:
		return "optimal"
	case Suboptimal:
		return "suboptimal"
	case Failure:
		return "failure"
	default:
		return fmt.Sprintf("Outcome(%d)", int(o))
	}
}

// Condition identifies which source-side safety test admitted a unicast.
type Condition int

const (
	// CondNone: no condition held; unicast aborted.
	CondNone Condition = iota
	// CondC1: S(s) >= H(s, d).
	CondC1
	// CondC2: some preferred neighbor has level >= H(s, d) - 1.
	CondC2
	// CondC3: some spare neighbor has level >= H(s, d) + 1.
	CondC3
)

// String renders the condition name used in the paper.
func (c Condition) String() string {
	switch c {
	case CondC1:
		return "C1"
	case CondC2:
		return "C2"
	case CondC3:
		return "C3"
	default:
		return "none"
	}
}

// TieBreak selects among equally-safest candidate neighbors. The paper
// leaves the choice open ("say 1111 along dimension 0"); the policy is
// pluggable so the ablation experiments can quantify that freedom.
// Candidates are dimensions in ascending order; in a generalized cube
// each dimension is represented by its lowest-coordinate safest sibling.
type TieBreak func(dims []int) int

// LowestDim picks the smallest candidate dimension. It is the default
// and makes every route deterministic.
func LowestDim(dims []int) int { return dims[0] }

// HighestDim picks the largest candidate dimension.
func HighestDim(dims []int) int { return dims[len(dims)-1] }

// Hop records one forwarding decision of the unicast algorithm.
type Hop struct {
	From topo.NodeID
	To   topo.NodeID
	// Dim is the dimension crossed.
	Dim int
	// Nav is the navigation vector sent along with the message
	// (already updated for this hop).
	Nav topo.NavVector
	// Spare marks the single detour hop of a suboptimal unicast.
	Spare bool
}

// Route is the result of one unicast attempt.
type Route struct {
	Source    topo.NodeID
	Dest      topo.NodeID
	Hamming   int
	Outcome   Outcome
	Condition Condition
	Path      topo.Path
	Hops      []Hop
	// Err carries a transport-level anomaly: the algorithm was admitted
	// at the source but a forwarding step found no usable preferred
	// neighbor. With a consistent assignment this cannot happen when a
	// condition held (Theorem 3); it is surfaced rather than panicking
	// so that deliberately inconsistent ablations (truncated GS rounds)
	// can observe the consequence.
	Err error
	// FlightID is the flight-recorder request ID the route was served
	// under (0 when the route was not issued through a serving engine).
	// It causally links the route to its flight record, histogram
	// exemplars, and any promoted incident.
	FlightID uint64
}

// Len returns the number of hops traveled, or 0 for a failed unicast.
func (r *Route) Len() int { return r.Path.Len() }

// Router executes safety-level unicasts over one computed assignment.
type Router struct {
	as  *Assignment
	tie TieBreak
	// maxHops guards against forwarding loops if the caller routes on a
	// deliberately inconsistent assignment.
	maxHops int
	// obs, when non-nil, receives admission/hop/outcome events. The
	// nil case costs one branch per decision point.
	obs *obs.RouteObserver
}

// NewRouter returns a Router over assignment as using tie-break policy
// tie (nil means LowestDim).
func NewRouter(as *Assignment, tie TieBreak) *Router {
	if tie == nil {
		tie = LowestDim
	}
	return &Router{as: as, tie: tie, maxHops: as.t.Dim() + 3}
}

// Assignment returns the safety-level assignment the router consults.
func (rt *Router) Assignment() *Assignment { return rt.as }

// Observe attaches a route observer (nil detaches) and returns the
// router for chaining. A traced observer must not be shared between
// concurrent unicasts; counter-only observers may be.
func (rt *Router) Observe(o *obs.RouteObserver) *Router {
	rt.obs = o
	return rt
}

// Feasibility evaluates the source-side admission test for a unicast
// from s to d and returns the first condition that holds, in the
// algorithm's order C1, C2, C3, together with the outcome class it
// implies. It does not move any message.
func (rt *Router) Feasibility(s, d topo.NodeID) (Condition, Outcome) {
	as, t := rt.as, rt.as.t
	h := t.Distance(s, d)
	if h == 0 {
		return CondC1, Optimal
	}
	// Section 4.1 exclusion: the far end of an adjacent faulty link is
	// not covered by the source's own level (every length-1 "optimal
	// path" to it is the dead link itself), so a distance-1 unicast to
	// it can only be admitted suboptimally via C3.
	deadLinkDest := h == 1 && as.set.LinkFaulty(s, d)
	if !deadLinkDest {
		if as.OwnLevel(s) >= h {
			return CondC1, Optimal
		}
		for i := 0; i < t.Dim(); i++ {
			if t.Coord(s, i) != t.Coord(d, i) && rt.observed(s, t.Toward(s, d, i)) >= h-1 {
				return CondC2, Optimal
			}
		}
	}
	var sibs []topo.NodeID
	for i := 0; i < t.Dim(); i++ {
		if t.Coord(s, i) != t.Coord(d, i) {
			continue
		}
		// Any sibling along a spare dimension qualifies as the detour.
		sibs = t.Siblings(s, i, sibs[:0])
		for _, b := range sibs {
			if rt.observed(s, b) >= h+1 {
				return CondC3, Suboptimal
			}
		}
	}
	return CondNone, Failure
}

// observed is the safety level of s's neighbor b as s observes it: the
// public level, with one addition from Section 4.1 — a node never
// forwards across one of its own faulty links, so the far end of a
// faulty link is observed as level 0 regardless of its public value.
func (rt *Router) observed(s, b topo.NodeID) int {
	if rt.as.set.LinkFaulty(s, b) {
		return 0
	}
	return rt.as.Level(b)
}

// UnicastID is Unicast stamped with a flight-recorder request ID, so
// every hop decision of the route is causally attributable to one
// serving-path request.
func (rt *Router) UnicastID(s, d topo.NodeID, id uint64) *Route {
	r := rt.Unicast(s, d)
	r.FlightID = id
	return r
}

// Unicast routes a message from s to d and returns the full trace.
// s must be nonfaulty. d may be any node: the paper delivers the final
// hop even to a faulty or N2 destination (Theorem 2 proof, j = 1 case,
// and footnote to Section 4.1).
func (rt *Router) Unicast(s, d topo.NodeID) *Route {
	as, t := rt.as, rt.as.t
	r := &Route{Source: s, Dest: d, Hamming: t.Distance(s, d)}
	if !t.Contains(s) || !t.Contains(d) {
		r.Outcome = Failure
		r.Err = fmt.Errorf("core: node outside cube")
		if rt.obs != nil {
			rt.obs.Admit(int(s), r.Hamming, 0, CondNone.String(), Failure.String())
		}
		return rt.finishObs(r, int(s))
	}
	if as.set.NodeFaulty(s) {
		r.Outcome = Failure
		r.Err = fmt.Errorf("core: source %s is faulty", t.Format(s))
		if rt.obs != nil {
			rt.obs.Admit(int(s), r.Hamming, 0, CondNone.String(), Failure.String())
		}
		return rt.finishObs(r, int(s))
	}
	cond, outcome := rt.Feasibility(s, d)
	r.Condition = cond
	r.Outcome = outcome
	if rt.obs != nil {
		rt.obs.Admit(int(s), r.Hamming, as.OwnLevel(s), cond.String(), outcome.String())
	}
	if outcome == Failure {
		return rt.finishObs(r, int(s))
	}
	r.Path = topo.Path{s}
	if s == d {
		return rt.finishObs(r, int(s))
	}

	cur := s
	if cond == CondC3 {
		// Suboptimal first hop: the spare neighbor with the highest
		// safety level among those meeting the C3 threshold.
		dim, next, ok := rt.pickSpare(cur, d, r.Hamming)
		if !ok {
			// Unreachable when Feasibility just admitted C3 on the same
			// oracle; kept as a guard for inconsistent ablations.
			r.Err = fmt.Errorf("core: node %s has no usable spare neighbor", t.Format(cur))
			r.Outcome = Failure
			return rt.finishObs(r, int(cur))
		}
		if rt.obs != nil {
			rt.obs.Hop(int(cur), int(next), dim, rt.observed(cur, next), true)
		}
		cur = next
		r.Hops = append(r.Hops, Hop{From: s, To: cur, Dim: dim, Nav: topo.NavIn(t, cur, d), Spare: true})
		r.Path = append(r.Path, cur)
	}
	for hops := 0; cur != d; hops++ {
		if hops > rt.maxHops {
			r.Err = fmt.Errorf("core: forwarding exceeded %d hops (inconsistent levels?)", rt.maxHops)
			r.Outcome = Failure
			return rt.finishObs(r, int(cur))
		}
		dim, next, ok := rt.pickPreferred(cur, d)
		if !ok {
			r.Err = fmt.Errorf("core: node %s has no usable preferred neighbor (nav %0*b)",
				t.Format(cur), t.Dim(), topo.NavIn(t, cur, d))
			r.Outcome = Failure
			return rt.finishObs(r, int(cur))
		}
		if rt.obs != nil {
			rt.obs.Hop(int(cur), int(next), dim, rt.as.Level(next), false)
		}
		r.Hops = append(r.Hops, Hop{From: cur, To: next, Dim: dim, Nav: topo.NavIn(t, next, d)})
		r.Path = append(r.Path, next)
		cur = next
	}
	return rt.finishObs(r, int(cur))
}

// finishObs emits the terminal observation for a completed Unicast and
// returns the route unchanged. It is a no-op without an observer.
func (rt *Router) finishObs(r *Route, at int) *Route {
	if rt.obs == nil {
		return r
	}
	note := ""
	if r.Err != nil {
		note = r.Err.Error()
	}
	rt.obs.Done(at, r.Condition.String(), r.Outcome.String(), r.Path.Len(), r.Hamming, 0, note)
	return r
}

// pickPreferred chooses the preferred dimension whose candidate neighbor
// (the sibling matching the destination's coordinate) has the highest
// safety level, breaking ties with the router policy. At distance 1 the
// candidate is the destination itself and is chosen unconditionally
// (final delivery); otherwise intermediate candidates must be
// traversable: nonfaulty and not across a faulty link.
func (rt *Router) pickPreferred(cur, d topo.NodeID) (int, topo.NodeID, bool) {
	t := rt.as.t
	if t.Distance(cur, d) == 1 {
		// Final hop: delivered even to a faulty destination, but not
		// across a faulty link.
		if rt.as.set.LinkFaulty(cur, d) {
			return 0, 0, false
		}
		return t.LinkDim(cur, d), d, true
	}
	best := -1
	var candDims []int
	var candNodes []topo.NodeID
	for i := 0; i < t.Dim(); i++ {
		if t.Coord(cur, i) == t.Coord(d, i) {
			continue
		}
		b := t.Toward(cur, d, i)
		if rt.as.set.NodeFaulty(b) || rt.as.set.LinkFaulty(cur, b) {
			continue
		}
		lv := rt.as.Level(b)
		if lv > best {
			best = lv
			candDims = candDims[:0]
			candNodes = candNodes[:0]
		} else if lv < best {
			continue
		}
		candDims = append(candDims, i)
		candNodes = append(candNodes, b)
	}
	if best < 0 {
		return 0, 0, false
	}
	dim := rt.tie(candDims)
	for j, i := range candDims {
		if i == dim {
			return dim, candNodes[j], true
		}
	}
	return 0, 0, false
}

// pickSpare chooses the spare dimension whose neighbor has the highest
// safety level among those satisfying C3 (observed level >= H+1). In a
// generalized cube each spare dimension is represented by its
// lowest-coordinate safest sibling; ties across dimensions go to the
// router policy. ok is false when no spare neighbor qualifies (possible
// in a Session whose oracle changed after admission).
func (rt *Router) pickSpare(cur, d topo.NodeID, h int) (int, topo.NodeID, bool) {
	t := rt.as.t
	best := -1
	var candDims []int
	var candNodes []topo.NodeID
	var sibs []topo.NodeID
	for i := 0; i < t.Dim(); i++ {
		if t.Coord(cur, i) != t.Coord(d, i) {
			continue
		}
		sibs = t.Siblings(cur, i, sibs[:0])
		for _, b := range sibs {
			lv := rt.observed(cur, b)
			if lv < h+1 {
				continue
			}
			if lv > best {
				best = lv
				candDims = candDims[:0]
				candNodes = candNodes[:0]
			} else if lv < best || (len(candDims) > 0 && candDims[len(candDims)-1] == i) {
				// Keep the lowest-coordinate representative per dimension.
				continue
			}
			candDims = append(candDims, i)
			candNodes = append(candNodes, b)
		}
	}
	if best < 0 {
		return 0, 0, false
	}
	dim := rt.tie(candDims)
	for j, i := range candDims {
		if i == dim {
			return dim, candNodes[j], true
		}
	}
	return 0, 0, false
}
