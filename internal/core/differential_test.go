package core

import (
	"bytes"
	"fmt"
	"os"
	"path/filepath"
	"testing"

	"repro/internal/faults"
	"repro/internal/stats"
	"repro/internal/topo"
)

// The differential golden tests pin the binary router's observable
// behavior to the pre-refactor (seed) implementation: every (s, d) pair
// of a set of Q4/Q5 fault scenarios is routed and the admission
// condition, outcome and full path are compared line by line against a
// snapshot generated from the seed code. Any change to levels, admission
// order, tie-breaking or forwarding shows up as a diff.
//
// Regenerate (only when a behavior change is intended and understood):
//
//	UPDATE_GOLDEN=1 go test -run TestDifferentialGolden ./internal/core

// diffScenario is one pinned cube instance.
type diffScenario struct {
	name string
	tie  TieBreak
	set  func() *faults.Set
}

func diffScenarios() []diffScenario {
	q4 := func(addrs ...string) *faults.Set {
		c := topo.MustCube(4)
		s := faults.NewSet(c)
		for _, a := range addrs {
			if err := s.FailNode(c.MustParse(a)); err != nil {
				panic(err)
			}
		}
		return s
	}
	return []diffScenario{
		{name: "q4_fig1", tie: nil, set: func() *faults.Set {
			return q4("0011", "0100", "0110", "1001")
		}},
		{name: "q4_fig1_highdim", tie: HighestDim, set: func() *faults.Set {
			return q4("0011", "0100", "0110", "1001")
		}},
		{name: "q4_fig3_disconnected", tie: nil, set: func() *faults.Set {
			return q4("0110", "1010", "1100", "1111")
		}},
		{name: "q4_fig4_linkfaults", tie: nil, set: func() *faults.Set {
			s := q4("0000", "0100", "1100", "1110")
			c := s.Cube()
			if err := s.FailLink(c.MustParse("1000"), c.MustParse("1001")); err != nil {
				panic(err)
			}
			return s
		}},
		{name: "q5_random", tie: nil, set: func() *faults.Set {
			c := topo.MustCube(5)
			s := faults.NewSet(c)
			if err := faults.InjectUniform(s, stats.NewRNG(5), 6); err != nil {
				panic(err)
			}
			return s
		}},
		{name: "q5_mixed_faults", tie: nil, set: func() *faults.Set {
			c := topo.MustCube(5)
			s := faults.NewSet(c)
			rng := stats.NewRNG(9)
			if err := faults.InjectUniform(s, rng, 4); err != nil {
				panic(err)
			}
			if err := faults.InjectUniformLinks(s, rng, 3); err != nil {
				panic(err)
			}
			return s
		}},
	}
}

// renderDiff routes every ordered (s, d) pair and renders one line per
// pair in a stable text format.
func renderDiff(set *faults.Set, tie TieBreak) []byte {
	c := set.Cube()
	as := Compute(set, Options{})
	rt := NewRouter(as, tie)
	var b bytes.Buffer
	fmt.Fprintf(&b, "# faults: %s\n", set)
	for s := 0; s < c.Nodes(); s++ {
		for d := 0; d < c.Nodes(); d++ {
			r := rt.Unicast(topo.NodeID(s), topo.NodeID(d))
			fmt.Fprintf(&b, "%s->%s h=%d cond=%s out=%s", c.Format(topo.NodeID(s)),
				c.Format(topo.NodeID(d)), r.Hamming, r.Condition, r.Outcome)
			if len(r.Path) > 0 {
				fmt.Fprintf(&b, " path=%s", r.Path.FormatWith(c))
			}
			if r.Err != nil {
				fmt.Fprintf(&b, " err=%v", r.Err)
			}
			b.WriteByte('\n')
		}
	}
	return b.Bytes()
}

func TestDifferentialGolden(t *testing.T) {
	update := os.Getenv("UPDATE_GOLDEN") != ""
	for _, sc := range diffScenarios() {
		t.Run(sc.name, func(t *testing.T) {
			got := renderDiff(sc.set(), sc.tie)
			path := filepath.Join("testdata", "diff_"+sc.name+".golden")
			if update {
				if err := os.MkdirAll("testdata", 0o755); err != nil {
					t.Fatal(err)
				}
				if err := os.WriteFile(path, got, 0o644); err != nil {
					t.Fatal(err)
				}
				return
			}
			want, err := os.ReadFile(path)
			if err != nil {
				t.Fatalf("missing golden (run UPDATE_GOLDEN=1 once): %v", err)
			}
			if !bytes.Equal(got, want) {
				gl, wl := bytes.Split(got, []byte("\n")), bytes.Split(want, []byte("\n"))
				for i := 0; i < len(gl) && i < len(wl); i++ {
					if !bytes.Equal(gl[i], wl[i]) {
						t.Fatalf("behavior diverges from seed router at line %d:\n got: %s\nwant: %s",
							i+1, gl[i], wl[i])
					}
				}
				t.Fatalf("behavior diverges from seed router: %d vs %d lines", len(gl), len(wl))
			}
		})
	}
}
