package core

import (
	"fmt"
	"runtime"
	"sort"
	"sync"

	"repro/internal/bitset"
	"repro/internal/faults"
	"repro/internal/topo"
)

// LevelFromSorted evaluates Definition 1 given the ascending-sorted
// sequence of a nonfaulty node's neighbor safety levels. It returns n if
// (S0..Sn-1) >= (0..n-1), otherwise the smallest k with S_k < k — which,
// because the sequence is sorted and the prefix dominates (0..k-1),
// necessarily has S_k = k-1 exactly as the paper states the condition.
func LevelFromSorted(sorted []int) int {
	for i, s := range sorted {
		if s < i {
			return i
		}
	}
	return len(sorted)
}

// LevelFromNeighbors evaluates Definition 1 from an unsorted neighbor
// level sequence. Because levels live in the bounded domain [0, n] (a
// level never exceeds the cube dimension), the sequence is reduced to a
// counting histogram instead of being sorted — O(n) with no comparison
// sort. scratch, if non-nil and of capacity at least len(levels)+1,
// avoids an allocation; callers in hot loops pass a reusable buffer.
func LevelFromNeighbors(levels []int, scratch []int) int {
	n := len(levels)
	if cap(scratch) < n+1 {
		scratch = make([]int, n+1)
	}
	cnt := scratch[:n+1]
	for i := range cnt {
		cnt[i] = 0
	}
	for _, v := range levels {
		if v < 0 {
			// A negative value sorts first, so index 0 already fails.
			return 0
		}
		if v > n {
			// Values beyond n behave exactly like n: every index they can
			// occupy is at most n-1 < n <= v, so the condition holds there
			// regardless of the exact value.
			v = n
		}
		cnt[v]++
	}
	return levelFromCounts(cnt)
}

// levelFromCounts evaluates Definition 1 over a level histogram:
// cnt[v] = number of neighbors at level v, len(cnt) = n+1. It walks the
// values ascending, tracking the sorted index i the next occurrence
// would occupy — the counting-sort twin of LevelFromSorted, verified
// equivalent by TestLevelFromCountsMatchesSorted.
func levelFromCounts(cnt []int) int {
	i := 0
	for v, c := range cnt {
		if c == 0 {
			continue
		}
		if v < i {
			// The first copy of v sits at sorted index i with v < i.
			return i
		}
		// The c copies of v occupy sorted indexes i..i+c-1, all >= v's
		// value... the first failing index is v+1 (value v at index v
		// still satisfies s >= i; at v+1 it does not).
		if v+1 <= i+c-1 {
			return v + 1
		}
		i += c
	}
	return i
}

// stableEntry records one repaired node's final-change round in the
// sparse stability table (sorted by node after finalize).
type stableEntry struct {
	node  int32
	round int32
}

// Assignment holds the safety level of every node of one faulty cube.
//
// Without link faults every node has a single level. With link faults
// (computed by EGS) the paper distinguishes two views: the public level a
// node exposes to its neighbors — 0 for every node with an adjacent
// faulty link (the set N2) — and the node's own level, which an N2 node
// computes for itself by treating only the far ends of its faulty links
// as faulty. Public and Own coincide for every node outside N2.
//
// Tables are flat structure-of-arrays keyed by dense node index: levels
// are bounded by the cube dimension (<= topo.MaxDim), so one byte per
// node per table suffices. At Q20 the whole public table is 1 MiB of
// contiguous memory and a snapshot publish copies it with one memcpy.
type Assignment struct {
	t      topo.Topology
	set    *faults.Set
	public []uint8
	own    []uint8
	// rounds is the number of synchronous information-exchange rounds
	// after which no level changed (the statistic plotted in Fig. 2).
	rounds int
	// deltas[r-1] is the number of nodes whose level changed in round r;
	// len(deltas) == rounds. The observability layer exports it as the
	// per-round convergence profile of a GS run.
	deltas []int
	// stableAt[a] is the first round after which node a's level never
	// changes again (0 = the initial value was already final). Used to
	// validate Property 1: a k-safe node stabilizes by round k. Cold
	// runs fill the dense table; repairs, which touch few nodes, record
	// stability sparsely in stableSparse instead and leave this nil.
	stableAt []int32
	// stableSparse holds (node, final round) pairs for the nodes a
	// repair changed, sorted by node; nodes absent stabilized at round 0.
	// Only one of stableAt/stableSparse is non-nil.
	stableSparse []stableEntry
	// evals counts NODE_STATUS evaluations performed to reach this
	// assignment — the node-update work a distributed execution would
	// pay in messages. A cold run evaluates every live node every round;
	// an incremental repair evaluates only its dirty frontier, and the
	// ratio of the two is the repair payoff quantified in BENCH_3.json.
	evals int
	// repaired marks assignments produced by RepairLevels (seeded from a
	// previous fixpoint) rather than a cold sweep. For repaired
	// assignments Rounds/Deltas/StableRound describe the repair
	// iteration, not a from-scratch GS run.
	repaired bool
	// dirty is the total number of dirty-frontier slots processed during
	// repair (0 for cold runs).
	dirty int
}

// Topology returns the topology the assignment is defined over.
func (as *Assignment) Topology() topo.Topology { return as.t }

// Cube returns the topology as a binary cube; it panics for assignments
// over a generalized hypercube. Binary-only consumers use this accessor.
func (as *Assignment) Cube() *topo.Cube {
	c, ok := as.t.(*topo.Cube)
	if !ok {
		panic("core: assignment is not over a binary cube")
	}
	return c
}

// Faults returns the fault set the assignment was computed against.
func (as *Assignment) Faults() *faults.Set { return as.set }

// Level returns the public safety level of node a: the value a's
// neighbors observe. Faulty nodes and nodes with adjacent faulty links
// report 0.
func (as *Assignment) Level(a topo.NodeID) int { return int(as.public[a]) }

// OwnLevel returns node a's own view of its safety level. It differs
// from Level(a) only for nonfaulty nodes with adjacent faulty links,
// which consider themselves regular healthy nodes (Section 4.1).
func (as *Assignment) OwnLevel(a topo.NodeID) int { return int(as.own[a]) }

// Rounds returns how many synchronous rounds GS/EGS needed before the
// levels stabilized. A fault-free cube needs 0 rounds.
func (as *Assignment) Rounds() int { return as.rounds }

// Deltas returns the per-round level-change counts: Deltas()[r-1] nodes
// changed level in round r. The slice has Rounds() entries.
func (as *Assignment) Deltas() []int { return append([]int(nil), as.deltas...) }

// StableRound returns the first round after which node a's level is
// final.
func (as *Assignment) StableRound(a topo.NodeID) int {
	if as.stableAt != nil {
		return int(as.stableAt[a])
	}
	// Repaired assignment: sparse table, absent nodes never changed.
	i := sort.Search(len(as.stableSparse), func(i int) bool {
		return as.stableSparse[i].node >= int32(a)
	})
	if i < len(as.stableSparse) && as.stableSparse[i].node == int32(a) {
		return int(as.stableSparse[i].round)
	}
	return 0
}

// Evals returns the number of NODE_STATUS evaluations performed to
// reach this assignment — the per-node update work of the run, and the
// quantity incremental repair minimizes.
func (as *Assignment) Evals() int { return as.evals }

// Repaired reports whether the assignment was produced by incremental
// repair (RepairLevels) rather than a cold GS/EGS run. Both converge to
// the same unique fixpoint; only the round/work statistics differ.
func (as *Assignment) Repaired() bool { return as.repaired }

// DirtyNodes returns the total dirty-frontier slots processed during
// repair (0 for cold runs).
func (as *Assignment) DirtyNodes() int { return as.dirty }

// TableBytes returns the bytes held by the level tables (public + own,
// counted once when they alias). At one byte per node per table this is
// the snapshot-publish copy cost the serving layer pays per swap.
func (as *Assignment) TableBytes() int {
	b := len(as.public)
	if len(as.own) > 0 && (len(as.public) == 0 || &as.own[0] != &as.public[0]) {
		b += len(as.own)
	}
	return b
}

// Safe reports whether node a is safe, i.e. has the maximum level n.
func (as *Assignment) Safe(a topo.NodeID) bool { return int(as.public[a]) == as.t.Dim() }

// SafeSet returns all safe nodes in ascending order.
func (as *Assignment) SafeSet() []topo.NodeID {
	var out []topo.NodeID
	n := uint8(as.t.Dim())
	for a := 0; a < as.t.Nodes(); a++ {
		if as.public[a] == n {
			out = append(out, topo.NodeID(a))
		}
	}
	return out
}

// Levels returns a copy of the public level table indexed by node ID.
func (as *Assignment) Levels() []int {
	out := make([]int, len(as.public))
	for a, v := range as.public {
		out[a] = int(v)
	}
	return out
}

// Options tune the GS computation. The zero value reproduces the paper's
// algorithm exactly.
type Options struct {
	// MaxRounds caps the number of iterations (the paper's D). Zero
	// means the Corollary bound n-1, which is always sufficient. A
	// smaller cap deliberately truncates convergence; the ablation
	// experiments use it to show what an under-provisioned D costs.
	MaxRounds int
	// Workers selects the parallel sweep: each synchronous round is
	// split into contiguous node chunks updated by a worker pool. Since
	// every round reads only the previous round's levels, the result is
	// bit-identical to the sequential sweep. 0 or 1 means sequential;
	// negative means GOMAXPROCS.
	Workers int
}

// Compute runs GS (or EGS when the fault set contains link faults) and
// returns the stabilized assignment. The computation is the synchronous
// version of the paper's algorithm: every node updates simultaneously
// from its neighbors' previous-round levels, starting from the
// all-nonfaulty-nodes-are-n-safe initialization.
func Compute(set *faults.Set, opts Options) *Assignment {
	if set.HasLinkFaults() {
		return computeEGS(set, opts)
	}
	return computeGS(set, opts)
}

func maxRounds(t topo.Topology, opts Options) int {
	if opts.MaxRounds > 0 {
		return opts.MaxRounds
	}
	d := t.Dim() - 1
	if d < 1 {
		d = 1
	}
	return d
}

// computeGS implements Algorithm GLOBAL_STATUS for node faults only.
func computeGS(set *faults.Set, opts Options) *Assignment {
	t := set.Topology()
	n := uint8(t.Dim())
	nodes := t.Nodes()
	cur := make([]uint8, nodes)
	for a := range cur {
		cur[a] = n
	}
	for _, f := range set.FaultyNodes() {
		cur[f] = 0
	}
	as := &Assignment{
		t:        t,
		set:      set,
		stableAt: make([]int32, nodes),
	}
	as.rounds, as.deltas, as.evals = iterate(t, set, cur, as.stableAt, maxRounds(t, opts), nil, opts.Workers)
	as.public = cur
	as.own = cur
	return as
}

// sweeper holds the per-goroutine scratch state of one NODE_STATUS
// sweep. The binary cube keeps its bit-twiddling fast path (one XOR per
// neighbor); generalized topologies reduce each dimension to the minimum
// sibling level first (Definition 4). Neighbor levels are folded into a
// counting histogram over the bounded level domain [0, dim] — no sort,
// no per-eval allocation.
type sweeper struct {
	t      topo.Topology
	bin    *topo.Cube // non-nil: binary fast path
	set    *faults.Set
	frozen bitset.Set
	cnt    []int
	sibs   []topo.NodeID
	// evals counts NODE_STATUS evaluations this sweeper performed.
	evals int
}

func newSweeper(t topo.Topology, set *faults.Set, frozen bitset.Set) *sweeper {
	sw := &sweeper{
		t:      t,
		set:    set,
		frozen: frozen,
		cnt:    make([]int, t.Dim()+1),
	}
	if c, ok := t.(*topo.Cube); ok {
		sw.bin = c
	}
	return sw
}

// eval runs one NODE_STATUS evaluation of node id against the level
// table cur: each dimension reduces to its minimum sibling level
// (Definition 4 — the identity reduction on a binary cube), the reduced
// levels accumulate into the bounded histogram, and Definition 1
// evaluates it via levelFromCounts.
func (sw *sweeper) eval(cur []uint8, id topo.NodeID) int {
	n := sw.t.Dim()
	sw.evals++
	cnt := sw.cnt
	for i := range cnt {
		cnt[i] = 0
	}
	if sw.bin != nil {
		for i := 0; i < n; i++ {
			cnt[cur[sw.bin.Neighbor(id, i)]]++
		}
	} else {
		for i := 0; i < n; i++ {
			sw.sibs = sw.t.Siblings(id, i, sw.sibs[:0])
			m := cur[sw.sibs[0]]
			for _, b := range sw.sibs[1:] {
				if cur[b] < m {
					m = cur[b]
				}
			}
			cnt[m]++
		}
	}
	return levelFromCounts(cnt)
}

// sweep updates next[lo:hi] from cur, records first-change rounds in
// stableAt, and returns the number of nodes whose level changed. It only
// reads cur and only writes indexes in [lo, hi), so disjoint ranges can
// run concurrently.
func (sw *sweeper) sweep(cur, next []uint8, stableAt []int32, lo, hi, r int) int {
	delta := 0
	for a := lo; a < hi; a++ {
		id := topo.NodeID(a)
		if sw.set.NodeFaulty(id) || (sw.frozen != nil && sw.frozen.Test(a)) {
			next[a] = cur[a]
			continue
		}
		v := uint8(sw.eval(cur, id))
		next[a] = v
		if v != cur[a] {
			delta++
			if stableAt != nil {
				stableAt[a] = int32(r)
			}
		}
	}
	return delta
}

// iterate runs synchronous NODE_STATUS rounds in place over cur until no
// level changes or the round cap is hit, and returns the number of rounds
// executed before stability together with the per-round change counts
// and the total NODE_STATUS evaluations performed. frozen, if non-nil,
// marks nodes whose level never updates (EGS freezes the N2 nodes at 0
// during the N1 phase). workers > 1 splits every round into contiguous
// chunks; each chunk writes a disjoint range of next and stableAt and
// per-worker deltas are summed after the round barrier, so the parallel
// sweep is deterministic and identical to the sequential one.
func iterate(t topo.Topology, set *faults.Set, cur []uint8, stableAt []int32, cap int, frozen bitset.Set, workers int) (int, []int, int) {
	nodes := t.Nodes()
	next := make([]uint8, nodes)
	if workers < 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	if workers > nodes {
		workers = nodes
	}
	rounds := 0
	var deltas []int
	if workers <= 1 {
		sw := newSweeper(t, set, frozen)
		for r := 1; r <= cap; r++ {
			delta := sw.sweep(cur, next, stableAt, 0, nodes, r)
			if delta == 0 {
				break
			}
			rounds = r
			deltas = append(deltas, delta)
			copy(cur, next)
		}
		return rounds, deltas, sw.evals
	}
	sws := make([]*sweeper, workers)
	for w := range sws {
		sws[w] = newSweeper(t, set, frozen)
	}
	chunk := (nodes + workers - 1) / workers
	partial := make([]int, workers)
	for r := 1; r <= cap; r++ {
		var wg sync.WaitGroup
		for w := 0; w < workers; w++ {
			lo := w * chunk
			hi := lo + chunk
			if hi > nodes {
				hi = nodes
			}
			if lo >= hi {
				partial[w] = 0
				continue
			}
			wg.Add(1)
			go func(w, lo, hi int) {
				defer wg.Done()
				partial[w] = sws[w].sweep(cur, next, stableAt, lo, hi, r)
			}(w, lo, hi)
		}
		wg.Wait()
		delta := 0
		for _, d := range partial {
			delta += d
		}
		if delta == 0 {
			break
		}
		rounds = r
		deltas = append(deltas, delta)
		copy(cur, next)
	}
	evals := 0
	for _, sw := range sws {
		evals += sw.evals
	}
	return rounds, deltas, evals
}

// reduceObserved returns the dimension-i level node id observes: the
// minimum public level among its dimension-i siblings, with the far end
// of a faulty link counted as 0 (Section 4.1). For a binary cube this is
// simply the (single) neighbor's level.
func reduceObserved(t topo.Topology, set *faults.Set, cur []uint8, id topo.NodeID, i int, sibs []topo.NodeID) (int, []topo.NodeID) {
	sibs = t.Siblings(id, i, sibs[:0])
	m := -1
	for _, b := range sibs {
		v := 0
		if !set.LinkFaulty(id, b) {
			v = int(cur[b])
		}
		if m < 0 || v < m {
			m = v
		}
	}
	return m, sibs
}

// computeEGS implements Algorithm EXTENDED_GLOBAL_STATUS (Section 4.1).
// Nodes in N2 (nonfaulty, with at least one adjacent faulty link) start
// at level 0 and stay frozen through the N1 rounds — every other node
// treats them as faulty. In the final round each N2 node runs
// NODE_STATUS once for itself, treating the far end of each of its
// faulty links as faulty but using its other neighbors' public levels.
func computeEGS(set *faults.Set, opts Options) *Assignment {
	t := set.Topology()
	n := uint8(t.Dim())
	nodes := t.Nodes()
	cur := make([]uint8, nodes)
	for a := range cur {
		cur[a] = n
	}
	for _, f := range set.FaultyNodes() {
		cur[f] = 0
	}
	// N2 membership comes straight from the faulty-link list — O(link
	// faults), not a per-node adjacency scan over the whole cube.
	frozen := bitset.New(nodes)
	for _, l := range set.FaultyLinks() {
		if !set.NodeFaulty(l.A) {
			frozen.Add(int(l.A))
			cur[l.A] = 0
		}
		if !set.NodeFaulty(l.B) {
			frozen.Add(int(l.B))
			cur[l.B] = 0
		}
	}
	as := &Assignment{
		t:        t,
		set:      set,
		stableAt: make([]int32, nodes),
	}
	as.rounds, as.deltas, as.evals = iterate(t, set, cur, as.stableAt, maxRounds(t, opts), frozen, opts.Workers)
	as.public = cur

	// Final round: each N2 node computes its own level once.
	if !frozen.Any() {
		as.own = cur
		return as
	}
	own := append([]uint8(nil), cur...)
	dim := t.Dim()
	neigh := make([]int, dim)
	scratch := make([]int, dim+1)
	var sibs []topo.NodeID
	frozen.ForEach(func(a int) {
		id := topo.NodeID(a)
		for i := 0; i < dim; i++ {
			neigh[i], sibs = reduceObserved(t, set, cur, id, i, sibs)
		}
		own[a] = uint8(LevelFromNeighbors(neigh, scratch))
		as.evals++
	})
	as.own = own
	return as
}

// Verify checks that the assignment satisfies the paper's fixpoint
// condition at every node: faulty nodes are 0-safe and every nonfaulty
// node's level equals Definition 1 (Definition 4 for generalized cubes)
// applied to its neighbors' levels. For EGS assignments the public view
// is checked over N1 and the own view over N2. It returns nil when the
// assignment is consistent; Theorem 1 guarantees the consistent
// assignment is unique.
func (as *Assignment) Verify() error {
	t := as.t
	n := t.Dim()
	neigh := make([]int, n)
	scratch := make([]int, n+1)
	var sibs []topo.NodeID
	for a := 0; a < t.Nodes(); a++ {
		id := topo.NodeID(a)
		if as.set.NodeFaulty(id) {
			if as.public[a] != 0 || as.own[a] != 0 {
				return fmt.Errorf("core: faulty node %s has nonzero level", t.Format(id))
			}
			continue
		}
		inN2 := len(as.set.AdjacentFaultyLinks(id)) > 0
		if inN2 {
			if as.public[a] != 0 {
				return fmt.Errorf("core: N2 node %s exposes nonzero public level %d", t.Format(id), as.public[a])
			}
			for i := 0; i < n; i++ {
				neigh[i], sibs = reduceObserved(t, as.set, as.public, id, i, sibs)
			}
			if want := LevelFromNeighbors(neigh, scratch); int(as.own[a]) != want {
				return fmt.Errorf("core: N2 node %s own level %d, Definition 1 gives %d", t.Format(id), as.own[a], want)
			}
			continue
		}
		for i := 0; i < n; i++ {
			sibs = t.Siblings(id, i, sibs[:0])
			m := as.public[sibs[0]]
			for _, b := range sibs[1:] {
				if as.public[b] < m {
					m = as.public[b]
				}
			}
			neigh[i] = int(m)
		}
		if want := LevelFromNeighbors(neigh, scratch); int(as.public[a]) != want {
			return fmt.Errorf("core: node %s level %d, Definition 1 gives %d", t.Format(id), as.public[a], want)
		}
	}
	return nil
}

// UnsafeNonfaulty returns the nonfaulty nodes whose level is below n.
func (as *Assignment) UnsafeNonfaulty() []topo.NodeID {
	var out []topo.NodeID
	n := uint8(as.t.Dim())
	for a := 0; a < as.t.Nodes(); a++ {
		id := topo.NodeID(a)
		if !as.set.NodeFaulty(id) && as.public[a] < n {
			out = append(out, id)
		}
	}
	return out
}

// CheckProperty2 validates Property 2: in a faulty n-cube with fewer
// than n faulty nodes (and no link faults), every nonfaulty but unsafe
// node has a safe neighbor. It returns an error naming the first
// violating node; callers should only invoke it when the precondition
// (NodeFaults < n, LinkFaults == 0) holds.
func (as *Assignment) CheckProperty2() error {
	t := as.t
	n := t.Dim()
	var sibs []topo.NodeID
	for _, a := range as.UnsafeNonfaulty() {
		hasSafe := false
		for i := 0; i < n && !hasSafe; i++ {
			sibs = t.Siblings(a, i, sibs[:0])
			for _, b := range sibs {
				if int(as.public[b]) == n {
					hasSafe = true
					break
				}
			}
		}
		if !hasSafe {
			return fmt.Errorf("core: unsafe node %s has no safe neighbor (faults=%d)",
				t.Format(a), as.set.NodeFaults())
		}
	}
	return nil
}
