package core

import (
	"fmt"
	"runtime"
	"sort"
	"sync"

	"repro/internal/faults"
	"repro/internal/topo"
)

// LevelFromSorted evaluates Definition 1 given the ascending-sorted
// sequence of a nonfaulty node's neighbor safety levels. It returns n if
// (S0..Sn-1) >= (0..n-1), otherwise the smallest k with S_k < k — which,
// because the sequence is sorted and the prefix dominates (0..k-1),
// necessarily has S_k = k-1 exactly as the paper states the condition.
func LevelFromSorted(sorted []int) int {
	for i, s := range sorted {
		if s < i {
			return i
		}
	}
	return len(sorted)
}

// LevelFromNeighbors evaluates Definition 1 from an unsorted neighbor
// level sequence. scratch, if non-nil and large enough, avoids an
// allocation; callers in hot loops pass a reusable buffer.
func LevelFromNeighbors(levels []int, scratch []int) int {
	if cap(scratch) < len(levels) {
		scratch = make([]int, len(levels))
	}
	scratch = scratch[:len(levels)]
	copy(scratch, levels)
	sort.Ints(scratch)
	return LevelFromSorted(scratch)
}

// Assignment holds the safety level of every node of one faulty cube.
//
// Without link faults every node has a single level. With link faults
// (computed by EGS) the paper distinguishes two views: the public level a
// node exposes to its neighbors — 0 for every node with an adjacent
// faulty link (the set N2) — and the node's own level, which an N2 node
// computes for itself by treating only the far ends of its faulty links
// as faulty. Public and Own coincide for every node outside N2.
type Assignment struct {
	t      topo.Topology
	set    *faults.Set
	public []int
	own    []int
	// rounds is the number of synchronous information-exchange rounds
	// after which no level changed (the statistic plotted in Fig. 2).
	rounds int
	// deltas[r-1] is the number of nodes whose level changed in round r;
	// len(deltas) == rounds. The observability layer exports it as the
	// per-round convergence profile of a GS run.
	deltas []int
	// stableAt[a] is the first round after which node a's level never
	// changes again (0 = the initial value was already final). Used to
	// validate Property 1: a k-safe node stabilizes by round k.
	stableAt []int
	// evals counts NODE_STATUS evaluations performed to reach this
	// assignment — the node-update work a distributed execution would
	// pay in messages. A cold run evaluates every live node every round;
	// an incremental repair evaluates only its dirty frontier, and the
	// ratio of the two is the repair payoff quantified in BENCH_3.json.
	evals int
	// repaired marks assignments produced by RepairLevels (seeded from a
	// previous fixpoint) rather than a cold sweep. For repaired
	// assignments Rounds/Deltas/StableRound describe the repair
	// iteration, not a from-scratch GS run.
	repaired bool
	// dirty is the total number of dirty-frontier slots processed during
	// repair (0 for cold runs).
	dirty int
}

// Topology returns the topology the assignment is defined over.
func (as *Assignment) Topology() topo.Topology { return as.t }

// Cube returns the topology as a binary cube; it panics for assignments
// over a generalized hypercube. Binary-only consumers use this accessor.
func (as *Assignment) Cube() *topo.Cube {
	c, ok := as.t.(*topo.Cube)
	if !ok {
		panic("core: assignment is not over a binary cube")
	}
	return c
}

// Faults returns the fault set the assignment was computed against.
func (as *Assignment) Faults() *faults.Set { return as.set }

// Level returns the public safety level of node a: the value a's
// neighbors observe. Faulty nodes and nodes with adjacent faulty links
// report 0.
func (as *Assignment) Level(a topo.NodeID) int { return as.public[a] }

// OwnLevel returns node a's own view of its safety level. It differs
// from Level(a) only for nonfaulty nodes with adjacent faulty links,
// which consider themselves regular healthy nodes (Section 4.1).
func (as *Assignment) OwnLevel(a topo.NodeID) int { return as.own[a] }

// Rounds returns how many synchronous rounds GS/EGS needed before the
// levels stabilized. A fault-free cube needs 0 rounds.
func (as *Assignment) Rounds() int { return as.rounds }

// Deltas returns the per-round level-change counts: Deltas()[r-1] nodes
// changed level in round r. The slice has Rounds() entries.
func (as *Assignment) Deltas() []int { return append([]int(nil), as.deltas...) }

// StableRound returns the first round after which node a's level is
// final.
func (as *Assignment) StableRound(a topo.NodeID) int { return as.stableAt[a] }

// Evals returns the number of NODE_STATUS evaluations performed to
// reach this assignment — the per-node update work of the run, and the
// quantity incremental repair minimizes.
func (as *Assignment) Evals() int { return as.evals }

// Repaired reports whether the assignment was produced by incremental
// repair (RepairLevels) rather than a cold GS/EGS run. Both converge to
// the same unique fixpoint; only the round/work statistics differ.
func (as *Assignment) Repaired() bool { return as.repaired }

// DirtyNodes returns the total dirty-frontier slots processed during
// repair (0 for cold runs).
func (as *Assignment) DirtyNodes() int { return as.dirty }

// Safe reports whether node a is safe, i.e. has the maximum level n.
func (as *Assignment) Safe(a topo.NodeID) bool { return as.public[a] == as.t.Dim() }

// SafeSet returns all safe nodes in ascending order.
func (as *Assignment) SafeSet() []topo.NodeID {
	var out []topo.NodeID
	for a := 0; a < as.t.Nodes(); a++ {
		if as.public[a] == as.t.Dim() {
			out = append(out, topo.NodeID(a))
		}
	}
	return out
}

// Levels returns a copy of the public level table indexed by node ID.
func (as *Assignment) Levels() []int {
	return append([]int(nil), as.public...)
}

// Options tune the GS computation. The zero value reproduces the paper's
// algorithm exactly.
type Options struct {
	// MaxRounds caps the number of iterations (the paper's D). Zero
	// means the Corollary bound n-1, which is always sufficient. A
	// smaller cap deliberately truncates convergence; the ablation
	// experiments use it to show what an under-provisioned D costs.
	MaxRounds int
	// Workers selects the parallel sweep: each synchronous round is
	// split into contiguous node chunks updated by a worker pool. Since
	// every round reads only the previous round's levels, the result is
	// bit-identical to the sequential sweep. 0 or 1 means sequential;
	// negative means GOMAXPROCS.
	Workers int
}

// Compute runs GS (or EGS when the fault set contains link faults) and
// returns the stabilized assignment. The computation is the synchronous
// version of the paper's algorithm: every node updates simultaneously
// from its neighbors' previous-round levels, starting from the
// all-nonfaulty-nodes-are-n-safe initialization.
func Compute(set *faults.Set, opts Options) *Assignment {
	if set.HasLinkFaults() {
		return computeEGS(set, opts)
	}
	return computeGS(set, opts)
}

func maxRounds(t topo.Topology, opts Options) int {
	if opts.MaxRounds > 0 {
		return opts.MaxRounds
	}
	d := t.Dim() - 1
	if d < 1 {
		d = 1
	}
	return d
}

// computeGS implements Algorithm GLOBAL_STATUS for node faults only.
func computeGS(set *faults.Set, opts Options) *Assignment {
	t := set.Topology()
	n := t.Dim()
	nodes := t.Nodes()
	cur := make([]int, nodes)
	for a := 0; a < nodes; a++ {
		if set.NodeFaulty(topo.NodeID(a)) {
			cur[a] = 0
		} else {
			cur[a] = n
		}
	}
	as := &Assignment{
		t:        t,
		set:      set,
		stableAt: make([]int, nodes),
	}
	as.rounds, as.deltas, as.evals = iterate(t, set, cur, as.stableAt, maxRounds(t, opts), nil, opts.Workers)
	as.public = cur
	as.own = cur
	return as
}

// sweeper holds the per-goroutine scratch state of one NODE_STATUS
// sweep. The binary cube keeps its bit-twiddling fast path (one XOR per
// neighbor); generalized topologies reduce each dimension to the minimum
// sibling level first (Definition 4).
type sweeper struct {
	t       topo.Topology
	bin     *topo.Cube // non-nil: binary fast path
	set     *faults.Set
	frozen  []bool
	reduced []int
	scratch []int
	sibs    []topo.NodeID
	// evals counts NODE_STATUS evaluations this sweeper performed.
	evals int
}

func newSweeper(t topo.Topology, set *faults.Set, frozen []bool) *sweeper {
	sw := &sweeper{
		t:       t,
		set:     set,
		frozen:  frozen,
		reduced: make([]int, t.Dim()),
		scratch: make([]int, t.Dim()),
	}
	if c, ok := t.(*topo.Cube); ok {
		sw.bin = c
	}
	return sw
}

// eval runs one NODE_STATUS evaluation of node id against the level
// table cur: each dimension reduces to its minimum sibling level
// (Definition 4 — the identity reduction on a binary cube) and
// Definition 1 evaluates the reduced sequence.
func (sw *sweeper) eval(cur []int, id topo.NodeID) int {
	n := sw.t.Dim()
	sw.evals++
	if sw.bin != nil {
		for i := 0; i < n; i++ {
			sw.reduced[i] = cur[sw.bin.Neighbor(id, i)]
		}
	} else {
		for i := 0; i < n; i++ {
			sw.sibs = sw.t.Siblings(id, i, sw.sibs[:0])
			m := cur[sw.sibs[0]]
			for _, b := range sw.sibs[1:] {
				if cur[b] < m {
					m = cur[b]
				}
			}
			sw.reduced[i] = m
		}
	}
	return LevelFromNeighbors(sw.reduced, sw.scratch)
}

// sweep updates next[lo:hi] from cur, records first-change rounds in
// stableAt, and returns the number of nodes whose level changed. It only
// reads cur and only writes indexes in [lo, hi), so disjoint ranges can
// run concurrently.
func (sw *sweeper) sweep(cur, next, stableAt []int, lo, hi, r int) int {
	delta := 0
	for a := lo; a < hi; a++ {
		id := topo.NodeID(a)
		if sw.set.NodeFaulty(id) || (sw.frozen != nil && sw.frozen[a]) {
			next[a] = cur[a]
			continue
		}
		v := sw.eval(cur, id)
		next[a] = v
		if v != cur[a] {
			delta++
			if stableAt != nil {
				stableAt[a] = r
			}
		}
	}
	return delta
}

// iterate runs synchronous NODE_STATUS rounds in place over cur until no
// level changes or the round cap is hit, and returns the number of rounds
// executed before stability together with the per-round change counts
// and the total NODE_STATUS evaluations performed. frozen, if non-nil,
// marks nodes whose level never updates (EGS freezes the N2 nodes at 0
// during the N1 phase). workers > 1 splits every round into contiguous
// chunks; each chunk writes a disjoint range of next and stableAt and
// per-worker deltas are summed after the round barrier, so the parallel
// sweep is deterministic and identical to the sequential one.
func iterate(t topo.Topology, set *faults.Set, cur []int, stableAt []int, cap int, frozen []bool, workers int) (int, []int, int) {
	nodes := t.Nodes()
	next := make([]int, nodes)
	if workers < 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	if workers > nodes {
		workers = nodes
	}
	rounds := 0
	var deltas []int
	if workers <= 1 {
		sw := newSweeper(t, set, frozen)
		for r := 1; r <= cap; r++ {
			delta := sw.sweep(cur, next, stableAt, 0, nodes, r)
			if delta == 0 {
				break
			}
			rounds = r
			deltas = append(deltas, delta)
			copy(cur, next)
		}
		return rounds, deltas, sw.evals
	}
	sws := make([]*sweeper, workers)
	for w := range sws {
		sws[w] = newSweeper(t, set, frozen)
	}
	chunk := (nodes + workers - 1) / workers
	partial := make([]int, workers)
	for r := 1; r <= cap; r++ {
		var wg sync.WaitGroup
		for w := 0; w < workers; w++ {
			lo := w * chunk
			hi := lo + chunk
			if hi > nodes {
				hi = nodes
			}
			if lo >= hi {
				partial[w] = 0
				continue
			}
			wg.Add(1)
			go func(w, lo, hi int) {
				defer wg.Done()
				partial[w] = sws[w].sweep(cur, next, stableAt, lo, hi, r)
			}(w, lo, hi)
		}
		wg.Wait()
		delta := 0
		for _, d := range partial {
			delta += d
		}
		if delta == 0 {
			break
		}
		rounds = r
		deltas = append(deltas, delta)
		copy(cur, next)
	}
	evals := 0
	for _, sw := range sws {
		evals += sw.evals
	}
	return rounds, deltas, evals
}

// reduceObserved returns the dimension-i level node id observes: the
// minimum public level among its dimension-i siblings, with the far end
// of a faulty link counted as 0 (Section 4.1). For a binary cube this is
// simply the (single) neighbor's level.
func reduceObserved(t topo.Topology, set *faults.Set, cur []int, id topo.NodeID, i int, sibs []topo.NodeID) (int, []topo.NodeID) {
	sibs = t.Siblings(id, i, sibs[:0])
	m := -1
	for _, b := range sibs {
		v := 0
		if !set.LinkFaulty(id, b) {
			v = cur[b]
		}
		if m < 0 || v < m {
			m = v
		}
	}
	return m, sibs
}

// computeEGS implements Algorithm EXTENDED_GLOBAL_STATUS (Section 4.1).
// Nodes in N2 (nonfaulty, with at least one adjacent faulty link) start
// at level 0 and stay frozen through the N1 rounds — every other node
// treats them as faulty. In the final round each N2 node runs
// NODE_STATUS once for itself, treating the far end of each of its
// faulty links as faulty but using its other neighbors' public levels.
func computeEGS(set *faults.Set, opts Options) *Assignment {
	t := set.Topology()
	n := t.Dim()
	nodes := t.Nodes()
	cur := make([]int, nodes)
	frozen := make([]bool, nodes)
	for a := 0; a < nodes; a++ {
		id := topo.NodeID(a)
		switch {
		case set.NodeFaulty(id):
			cur[a] = 0
		case len(set.AdjacentFaultyLinks(id)) > 0:
			cur[a] = 0
			frozen[a] = true
		default:
			cur[a] = n
		}
	}
	as := &Assignment{
		t:        t,
		set:      set,
		stableAt: make([]int, nodes),
	}
	as.rounds, as.deltas, as.evals = iterate(t, set, cur, as.stableAt, maxRounds(t, opts), frozen, opts.Workers)
	as.public = cur

	// Final round: each N2 node computes its own level once.
	own := append([]int(nil), cur...)
	neigh := make([]int, n)
	scratch := make([]int, n)
	var sibs []topo.NodeID
	for a := 0; a < nodes; a++ {
		id := topo.NodeID(a)
		if !frozen[a] {
			continue
		}
		for i := 0; i < n; i++ {
			neigh[i], sibs = reduceObserved(t, set, cur, id, i, sibs)
		}
		own[a] = LevelFromNeighbors(neigh, scratch)
		as.evals++
	}
	as.own = own
	return as
}

// Verify checks that the assignment satisfies the paper's fixpoint
// condition at every node: faulty nodes are 0-safe and every nonfaulty
// node's level equals Definition 1 (Definition 4 for generalized cubes)
// applied to its neighbors' levels. For EGS assignments the public view
// is checked over N1 and the own view over N2. It returns nil when the
// assignment is consistent; Theorem 1 guarantees the consistent
// assignment is unique.
func (as *Assignment) Verify() error {
	t := as.t
	n := t.Dim()
	neigh := make([]int, n)
	var sibs []topo.NodeID
	for a := 0; a < t.Nodes(); a++ {
		id := topo.NodeID(a)
		if as.set.NodeFaulty(id) {
			if as.public[a] != 0 || as.own[a] != 0 {
				return fmt.Errorf("core: faulty node %s has nonzero level", t.Format(id))
			}
			continue
		}
		inN2 := len(as.set.AdjacentFaultyLinks(id)) > 0
		if inN2 {
			if as.public[a] != 0 {
				return fmt.Errorf("core: N2 node %s exposes nonzero public level %d", t.Format(id), as.public[a])
			}
			for i := 0; i < n; i++ {
				neigh[i], sibs = reduceObserved(t, as.set, as.public, id, i, sibs)
			}
			if want := LevelFromNeighbors(neigh, nil); as.own[a] != want {
				return fmt.Errorf("core: N2 node %s own level %d, Definition 1 gives %d", t.Format(id), as.own[a], want)
			}
			continue
		}
		for i := 0; i < n; i++ {
			sibs = t.Siblings(id, i, sibs[:0])
			m := as.public[sibs[0]]
			for _, b := range sibs[1:] {
				if as.public[b] < m {
					m = as.public[b]
				}
			}
			neigh[i] = m
		}
		if want := LevelFromNeighbors(neigh, nil); as.public[a] != want {
			return fmt.Errorf("core: node %s level %d, Definition 1 gives %d", t.Format(id), as.public[a], want)
		}
	}
	return nil
}

// UnsafeNonfaulty returns the nonfaulty nodes whose level is below n.
func (as *Assignment) UnsafeNonfaulty() []topo.NodeID {
	var out []topo.NodeID
	for a := 0; a < as.t.Nodes(); a++ {
		id := topo.NodeID(a)
		if !as.set.NodeFaulty(id) && as.public[a] < as.t.Dim() {
			out = append(out, id)
		}
	}
	return out
}

// CheckProperty2 validates Property 2: in a faulty n-cube with fewer
// than n faulty nodes (and no link faults), every nonfaulty but unsafe
// node has a safe neighbor. It returns an error naming the first
// violating node; callers should only invoke it when the precondition
// (NodeFaults < n, LinkFaults == 0) holds.
func (as *Assignment) CheckProperty2() error {
	t := as.t
	n := t.Dim()
	var sibs []topo.NodeID
	for _, a := range as.UnsafeNonfaulty() {
		hasSafe := false
		for i := 0; i < n && !hasSafe; i++ {
			sibs = t.Siblings(a, i, sibs[:0])
			for _, b := range sibs {
				if as.public[b] == n {
					hasSafe = true
					break
				}
			}
		}
		if !hasSafe {
			return fmt.Errorf("core: unsafe node %s has no safe neighbor (faults=%d)",
				t.Format(a), as.set.NodeFaults())
		}
	}
	return nil
}
