package core

// Heavier exhaustive sweeps, all above the n-1 guarantee bound: the
// algorithm owes no delivery there, but every behavior it does exhibit
// must stay within contract — clean source-side aborts, exact H / H+2
// deliveries, fault-free walks, and consistent fixpoints.

import (
	"testing"

	"repro/internal/baseline"
	"repro/internal/faults"
	"repro/internal/topo"
)

func TestExhaustiveQ4FiveFaults(t *testing.T) {
	// All C(16,5) = 4368 five-fault sets in Q4 with every pair routed.
	if testing.Short() {
		t.Skip("exhaustive enumeration skipped in -short mode")
	}
	c := topo.MustCube(4)
	count := 0
	disconnected := 0
	forEachFaultSet(t, 4, 5, func(s *faults.Set) {
		count++
		as := Compute(s, Options{})
		if err := as.Verify(); err != nil {
			t.Fatalf("faults %s: %v", s, err)
		}
		labels, comps := faults.Components(s)
		if comps > 1 {
			disconnected++
			// Theorem 4 holds for every disconnected instance.
			if baseline.WuFernandez(s).SafeCount() != 0 {
				t.Fatalf("faults %s: disconnected but WF set nonempty", s)
			}
		}
		rt := NewRouter(as, nil)
		for src := 0; src < c.Nodes(); src++ {
			sid := topo.NodeID(src)
			if s.NodeFaulty(sid) {
				continue
			}
			for dst := 0; dst < c.Nodes(); dst++ {
				did := topo.NodeID(dst)
				if s.NodeFaulty(did) {
					continue
				}
				r := rt.Unicast(sid, did)
				if labels[sid] != labels[did] && r.Outcome != Failure {
					t.Fatalf("faults %s: cross-partition %s -> %s delivered",
						s, c.Format(sid), c.Format(did))
				}
				if r.Outcome == Failure {
					if r.Err != nil {
						t.Fatalf("faults %s: transport error %v", s, r.Err)
					}
					continue
				}
				h := topo.Hamming(sid, did)
				wantLen := h
				if r.Outcome == Suboptimal {
					wantLen = h + 2
				}
				if r.Len() != wantLen {
					t.Fatalf("faults %s: %s -> %s length %d, want %d",
						s, c.Format(sid), c.Format(did), r.Len(), wantLen)
				}
			}
		}
	})
	if count != 4368 {
		t.Errorf("enumerated %d fault sets, want 4368", count)
	}
	if disconnected == 0 {
		t.Error("expected disconnected instances among five-fault sets")
	}
}

func TestExhaustiveQ4TwoLinkFaults(t *testing.T) {
	// Every pair of distinct faulty links in Q4 (C(32,2) = 496
	// instances): EGS consistency, N2 classification, and route
	// contracts for all pairs.
	if testing.Short() {
		t.Skip("exhaustive enumeration skipped in -short mode")
	}
	c := topo.MustCube(4)
	type edge struct{ a, b topo.NodeID }
	var links []edge
	for a := 0; a < c.Nodes(); a++ {
		for d := 0; d < c.Dim(); d++ {
			b := c.Neighbor(topo.NodeID(a), d)
			if topo.NodeID(a) < b {
				links = append(links, edge{topo.NodeID(a), b})
			}
		}
	}
	if len(links) != 32 {
		t.Fatalf("links = %d", len(links))
	}
	count := 0
	for i := 0; i < len(links); i++ {
		for j := i + 1; j < len(links); j++ {
			count++
			s := faults.NewSet(c)
			if err := s.FailLink(links[i].a, links[i].b); err != nil {
				t.Fatal(err)
			}
			if err := s.FailLink(links[j].a, links[j].b); err != nil {
				t.Fatal(err)
			}
			as := Compute(s, Options{})
			if err := as.Verify(); err != nil {
				t.Fatalf("links %d,%d: %v", i, j, err)
			}
			// N2 membership is exactly the endpoints of the two links.
			n2 := map[topo.NodeID]bool{
				links[i].a: true, links[i].b: true,
				links[j].a: true, links[j].b: true,
			}
			for a := 0; a < c.Nodes(); a++ {
				id := topo.NodeID(a)
				if n2[id] {
					if as.Level(id) != 0 {
						t.Fatalf("N2 node %s public %d", c.Format(id), as.Level(id))
					}
					if as.OwnLevel(id) < 1 {
						t.Fatalf("N2 node %s own %d", c.Format(id), as.OwnLevel(id))
					}
				} else if as.Level(id) != as.OwnLevel(id) {
					t.Fatalf("N1 node %s views differ", c.Format(id))
				}
			}
			rt := NewRouter(as, nil)
			for src := 0; src < c.Nodes(); src += 3 {
				for dst := 0; dst < c.Nodes(); dst++ {
					r := rt.Unicast(topo.NodeID(src), topo.NodeID(dst))
					if r.Outcome == Failure {
						continue
					}
					for k := 1; k < len(r.Path); k++ {
						if s.LinkFaulty(r.Path[k-1], r.Path[k]) {
							t.Fatalf("route crosses dead link (links %d,%d)", i, j)
						}
					}
				}
			}
		}
	}
	if count != 496 {
		t.Errorf("enumerated %d link pairs, want 496", count)
	}
}

func TestExhaustiveMixedNodeAndLinkQ3(t *testing.T) {
	// Q3: every single faulty link combined with every single faulty
	// node (12 x 8 = 96 minus incident cases): EGS + routing contracts
	// over all pairs.
	c := topo.MustCube(3)
	for a := 0; a < c.Nodes(); a++ {
		for d := 0; d < c.Dim(); d++ {
			b := c.Neighbor(topo.NodeID(a), d)
			if topo.NodeID(a) > b {
				continue
			}
			for f := 0; f < c.Nodes(); f++ {
				s := faults.NewSet(c)
				if err := s.FailLink(topo.NodeID(a), b); err != nil {
					t.Fatal(err)
				}
				s.FailNode(topo.NodeID(f))
				as := Compute(s, Options{})
				if err := as.Verify(); err != nil {
					t.Fatalf("link (%d,%d) node %d: %v", a, b, f, err)
				}
				rt := NewRouter(as, nil)
				for src := 0; src < c.Nodes(); src++ {
					for dst := 0; dst < c.Nodes(); dst++ {
						sid, did := topo.NodeID(src), topo.NodeID(dst)
						r := rt.Unicast(sid, did)
						if r.Outcome == Failure {
							if r.Err != nil && !s.NodeFaulty(sid) && c.Contains(sid) {
								t.Fatalf("transport error from healthy source: %v", r.Err)
							}
							continue
						}
						for k := 1; k < len(r.Path); k++ {
							if s.LinkFaulty(r.Path[k-1], r.Path[k]) {
								t.Fatal("route crosses dead link")
							}
						}
					}
				}
			}
		}
	}
}
