package core

import (
	"sort"
	"testing"

	"repro/internal/faults"
	"repro/internal/topo"
)

// FuzzLevelFromSorted cross-checks the min-k formula against the
// paper's literal Definition 1 predicate on arbitrary sequences.
func FuzzLevelFromSorted(f *testing.F) {
	f.Add([]byte{0, 1, 2, 3})
	f.Add([]byte{0, 0, 4, 4})
	f.Add([]byte{7, 7, 7, 7, 7, 7, 7})
	f.Add([]byte{})
	f.Fuzz(func(t *testing.T, raw []byte) {
		if len(raw) > 16 {
			raw = raw[:16]
		}
		seq := make([]int, len(raw))
		for i, v := range raw {
			seq[i] = int(v % 17)
		}
		sort.Ints(seq)
		got := LevelFromSorted(seq)
		// Literal predicate.
		n := len(seq)
		ge := func(k int) bool {
			for i := 0; i < k; i++ {
				if seq[i] < i {
					return false
				}
			}
			return true
		}
		want := n
		if !ge(n) {
			want = -1
			for k := 0; k < n; k++ {
				if ge(k) && seq[k] == k-1 {
					want = k
					break
				}
			}
		}
		if got != want {
			t.Fatalf("LevelFromSorted(%v) = %d, paper predicate %d", seq, got, want)
		}
	})
}

// FuzzComputeAndRoute drives the full pipeline from an arbitrary fault
// bitmap: the fixpoint must verify, and every route must terminate with
// a classified outcome and honor the length contract.
func FuzzComputeAndRoute(f *testing.F) {
	f.Add(uint32(0b0110000001011000), uint8(14), uint8(1))
	f.Add(uint32(0), uint8(0), uint8(15))
	f.Add(uint32(0xFFFF), uint8(3), uint8(9))
	f.Fuzz(func(t *testing.T, mask uint32, srcRaw, dstRaw uint8) {
		c := topo.MustCube(4)
		s := faults.NewSet(c)
		for a := 0; a < 16; a++ {
			if mask&(1<<uint(a)) != 0 {
				s.FailNode(topo.NodeID(a))
			}
		}
		as := Compute(s, Options{})
		if err := as.Verify(); err != nil {
			t.Fatal(err)
		}
		src := topo.NodeID(srcRaw % 16)
		dst := topo.NodeID(dstRaw % 16)
		rt := NewRouter(as, nil)
		r := rt.Unicast(src, dst)
		switch r.Outcome {
		case Optimal:
			if r.Len() != r.Hamming {
				t.Fatalf("optimal length %d != H %d", r.Len(), r.Hamming)
			}
		case Suboptimal:
			if r.Len() != r.Hamming+2 {
				t.Fatalf("suboptimal length %d != H+2", r.Len())
			}
		case Failure:
			// fine
		default:
			t.Fatalf("unclassified outcome %v", r.Outcome)
		}
		if r.Outcome != Failure && len(r.Path) > 2 {
			for _, a := range r.Path[1 : len(r.Path)-1] {
				if s.NodeFaulty(a) {
					t.Fatalf("path crosses faulty node")
				}
			}
		}
	})
}
