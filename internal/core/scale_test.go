package core

import (
	"os"
	"testing"
	"time"

	"repro/internal/faults"
	"repro/internal/stats"
	"repro/internal/topo"
)

// TestScaleSmokeQ20 is the `make scale-smoke` gate: a cold GS sweep
// over the full Q20 cube (1,048,576 nodes, 64 random faults) followed
// by one incremental repair, inside a wall-clock budget. The flat SoA
// core keeps the whole working state in three contiguous byte/word
// tables (~3 MiB at Q20), which is what makes a million-node sweep a
// sub-second operation instead of a map-walking crawl.
//
// Gated behind SCALE_SMOKE=1 so the ordinary `go test ./...` tier stays
// fast; the budget is generous (CI hardware varies) — the point is
// "completes at all, in seconds not minutes".
func TestScaleSmokeQ20(t *testing.T) {
	if os.Getenv("SCALE_SMOKE") == "" {
		t.Skip("set SCALE_SMOKE=1 (or run `make scale-smoke`) for the Q20 sweep")
	}
	const budget = 90 * time.Second
	start := time.Now()

	c := topo.MustCube(20)
	set := faults.NewSet(c)
	if err := faults.InjectUniform(set, stats.NewRNG(7), 64); err != nil {
		t.Fatal(err)
	}
	// Scattered faults barely perturb Q20 (one 0-safe neighbor never
	// lowers a level); surround node 0 to force a multi-round cascade.
	for i := 0; i < c.Dim(); i++ {
		if err := set.FailNode(c.Neighbor(0, i)); err != nil {
			t.Fatal(err)
		}
	}
	as := Compute(set, Options{Workers: -1})
	cold := time.Since(start)
	t.Logf("Q20 cold GS: %v (rounds=%d evals=%d tableBytes=%d)",
		cold, as.Rounds(), as.Evals(), as.TableBytes())

	// The fixpoint must actually be the Definition 1 fixpoint.
	if err := as.Verify(); err != nil {
		t.Fatal(err)
	}

	// One churn event through the incremental path: repair at Q20 must
	// touch a bounded neighborhood, not the cube.
	gen := set.Generation()
	if err := set.FailNode(topo.NodeID(123456)); err != nil {
		t.Fatal(err)
	}
	delta, ok := set.Since(gen)
	if !ok {
		t.Fatal("journal gap after one event")
	}
	repStart := time.Now()
	rep, ok := RepairLevels(as, set, delta, Options{})
	if !ok {
		t.Fatal("repair refused")
	}
	t.Logf("Q20 single-event repair: %v (dirty=%d evals=%d)",
		time.Since(repStart), rep.DirtyNodes(), rep.Evals())
	if rep.Evals() >= as.Evals() {
		t.Errorf("repair evals %d not below cold evals %d", rep.Evals(), as.Evals())
	}

	if elapsed := time.Since(start); elapsed > budget {
		t.Fatalf("Q20 scale smoke took %v, budget %v", elapsed, budget)
	}
}
