package core

import (
	"fmt"
	"sort"
	"testing"

	"repro/internal/faults"
	"repro/internal/stats"
	"repro/internal/topo"
)

// This file pins the flat SoA core (dense []uint8 tables, bitset fault
// sets, counting-sort NODE_STATUS, pooled repair scratch) to a
// deliberately naive map-based reference implementation of GS/EGS. The
// reference shares no code with the production path: it keeps levels in
// map[NodeID]int, sorts neighbor levels with sort.Ints, and evaluates
// Definition 1 positionally. Exhaustive small-cube sweeps and randomized
// Q8/Q10 scenarios must agree bit for bit on both the public and own
// tables, cold and after incremental repairs.

// refLevel is Definition 1 evaluated positionally: sort the observed
// neighbor levels ascending and return the first index j whose level
// sits below j, or the neighbor count when none does.
func refLevel(neigh []int) int {
	s := append([]int(nil), neigh...)
	sort.Ints(s)
	for j, v := range s {
		if v < j {
			return j
		}
	}
	return len(s)
}

// refCompute runs synchronous GS/EGS rounds over map tables until the
// fixpoint and returns the public and own level maps.
func refCompute(set *faults.Set) (public, own map[topo.NodeID]int) {
	t := set.Topology()
	n := t.Dim()

	// N2: nonfaulty endpoints of faulty links, frozen at public 0.
	frozen := map[topo.NodeID]bool{}
	for _, l := range set.FaultyLinks() {
		for _, e := range []topo.NodeID{l.A, l.B} {
			if !set.NodeFaulty(e) {
				frozen[e] = true
			}
		}
	}

	cur := map[topo.NodeID]int{}
	for a := 0; a < t.Nodes(); a++ {
		id := topo.NodeID(a)
		switch {
		case set.NodeFaulty(id):
			cur[id] = 0
		case frozen[id]:
			cur[id] = 0
		default:
			cur[id] = n
		}
	}

	// Per-dimension reduction: minimum sibling level (identity on the
	// binary cube per Definition 4).
	dimMin := func(tbl map[topo.NodeID]int, id topo.NodeID, i int) int {
		m := -1
		for _, b := range t.Siblings(id, i, nil) {
			if m < 0 || tbl[b] < m {
				m = tbl[b]
			}
		}
		return m
	}

	for {
		next := map[topo.NodeID]int{}
		changed := false
		for a := 0; a < t.Nodes(); a++ {
			id := topo.NodeID(a)
			if set.NodeFaulty(id) || frozen[id] {
				next[id] = cur[id]
				continue
			}
			neigh := make([]int, n)
			for i := 0; i < n; i++ {
				neigh[i] = dimMin(cur, id, i)
			}
			next[id] = refLevel(neigh)
			if next[id] != cur[id] {
				changed = true
			}
		}
		cur = next
		if !changed {
			break
		}
	}

	public = cur
	if len(frozen) == 0 {
		return public, public
	}
	// Final round: each N2 node evaluates once for itself, treating the
	// far end of each faulty link as faulty.
	own = map[topo.NodeID]int{}
	for id, v := range public {
		own[id] = v
	}
	for id := range frozen {
		neigh := make([]int, n)
		for i := 0; i < n; i++ {
			m := -1
			for _, b := range t.Siblings(id, i, nil) {
				v := 0
				if !set.LinkFaulty(id, b) {
					v = public[b]
				}
				if m < 0 || v < m {
					m = v
				}
			}
			neigh[i] = m
		}
		own[id] = refLevel(neigh)
	}
	return public, own
}

// assertMatchesReference compares the flat assignment against the map
// reference at every node.
func assertMatchesReference(t *testing.T, name string, as *Assignment, set *faults.Set) {
	t.Helper()
	public, own := refCompute(set)
	tp := set.Topology()
	for a := 0; a < tp.Nodes(); a++ {
		id := topo.NodeID(a)
		if got, want := as.Level(id), public[id]; got != want {
			t.Fatalf("%s: public level of node %d = %d, reference %d", name, a, got, want)
		}
		if got, want := as.OwnLevel(id), own[id]; got != want {
			t.Fatalf("%s: own level of node %d = %d, reference %d", name, a, got, want)
		}
	}
}

// TestFlatMatchesReferenceExhaustiveQ3 sweeps every node-fault subset of
// size <= 2 crossed with every single link fault on Q3: 481 scenarios
// covering GS, EGS, frozen N2 corners, and faulty link endpoints.
func TestFlatMatchesReferenceExhaustiveQ3(t *testing.T) {
	tp := topo.MustCube(3)
	var nodeSets [][]topo.NodeID
	nodeSets = append(nodeSets, nil)
	for a := 0; a < tp.Nodes(); a++ {
		nodeSets = append(nodeSets, []topo.NodeID{topo.NodeID(a)})
		for b := a + 1; b < tp.Nodes(); b++ {
			nodeSets = append(nodeSets, []topo.NodeID{topo.NodeID(a), topo.NodeID(b)})
		}
	}
	linkSets := [][2]topo.NodeID{{0, 0}} // sentinel: no link fault
	for a := 0; a < tp.Nodes(); a++ {
		for i := 0; i < tp.Dim(); i++ {
			b := tp.Neighbor(topo.NodeID(a), i)
			if topo.NodeID(a) < b {
				linkSets = append(linkSets, [2]topo.NodeID{topo.NodeID(a), b})
			}
		}
	}
	for ni, nodes := range nodeSets {
		for li, link := range linkSets {
			set := faults.NewSet(tp)
			for _, a := range nodes {
				if err := set.FailNode(a); err != nil {
					t.Fatal(err)
				}
			}
			if link[0] != link[1] {
				// Skip links whose endpoints are already node-faulty: the
				// fault set rejects redundant link faults on dead nodes.
				if set.NodeFaulty(link[0]) || set.NodeFaulty(link[1]) {
					continue
				}
				if err := set.FailLink(link[0], link[1]); err != nil {
					t.Fatal(err)
				}
			}
			name := fmt.Sprintf("nodes=%d link=%d", ni, li)
			assertMatchesReference(t, name, Compute(set, Options{}), set)
		}
	}
}

// TestFlatMatchesReferenceExhaustiveQ4 sweeps every single and double
// node-fault subset of Q4, sequential and sharded.
func TestFlatMatchesReferenceExhaustiveQ4(t *testing.T) {
	tp := topo.MustCube(4)
	for a := 0; a < tp.Nodes(); a++ {
		for b := a; b < tp.Nodes(); b++ {
			set := faults.NewSet(tp)
			if err := set.FailNode(topo.NodeID(a)); err != nil {
				t.Fatal(err)
			}
			if b != a {
				if err := set.FailNode(topo.NodeID(b)); err != nil {
					t.Fatal(err)
				}
			}
			name := fmt.Sprintf("faults={%d,%d}", a, b)
			assertMatchesReference(t, name, Compute(set, Options{}), set)
			assertMatchesReference(t, name+"/sharded", Compute(set, Options{Workers: -1}), set)
		}
	}
}

// TestFlatMatchesReferenceRandomized drives randomized mixed-fault
// scenarios on Q5, Q8 and Q10 (and a mixed-radix shape) through the flat
// core, sequential and sharded, against the map reference.
func TestFlatMatchesReferenceRandomized(t *testing.T) {
	cases := []struct {
		tp           topo.Topology
		trials       int
		nodes, links int
	}{
		{topo.MustCube(5), 40, 6, 3},
		{topo.MustCube(8), 8, 20, 6},
		{topo.MustCube(10), 3, 40, 10},
		{topo.MustMixed(3, 3, 3), 10, 5, 3},
	}
	for ci, c := range cases {
		for trial := 0; trial < c.trials; trial++ {
			set := faults.NewSet(c.tp)
			rng := stats.NewRNG(uint64(1000*ci + trial))
			if err := faults.InjectUniform(set, rng, c.nodes); err != nil {
				t.Fatal(err)
			}
			if err := faults.InjectUniformLinks(set, rng, c.links); err != nil {
				t.Fatal(err)
			}
			name := fmt.Sprintf("case%d/trial%d", ci, trial)
			assertMatchesReference(t, name, Compute(set, Options{}), set)
			if trial%2 == 0 {
				assertMatchesReference(t, name+"/sharded", Compute(set, Options{Workers: -1}), set)
			}
		}
	}
}

// TestRepairMatchesReferenceUnderChurn replays a mixed node/link churn
// schedule on Q8, repairing incrementally after every event, and checks
// the repaired flat tables against a fresh map-reference fixpoint each
// time — so repair correctness is pinned to Definition 1 itself, not
// just to the flat cold path.
func TestRepairMatchesReferenceUnderChurn(t *testing.T) {
	tp := topo.MustCube(8)
	events := faults.ChurnSchedule(tp, 424242, 50, faults.ChurnOptions{Links: true})
	set := faults.NewSet(tp)
	as := Compute(set, Options{})
	gen := set.Generation()
	for i, ev := range events {
		if err := set.Apply(ev); err != nil {
			t.Fatalf("step %d: %v", i, err)
		}
		delta, ok := set.Since(gen)
		if !ok {
			t.Fatalf("step %d: journal gap", i)
		}
		rep, ok := RepairLevels(as, set, delta, Options{})
		if !ok {
			as = Compute(set, Options{})
		} else {
			as = rep
		}
		gen = set.Generation()
		assertMatchesReference(t, fmt.Sprintf("step %d (%v)", i, ev), as, set)
	}
}
