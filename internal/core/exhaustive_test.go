package core

// Exhaustive verification on small cubes: rather than sampling, these
// tests enumerate EVERY fault set of a given size and check the paper's
// theorems for EVERY source/destination pair. They are the strongest
// correctness evidence in the repository: any counterexample to
// Theorems 1-3 or Property 1-2 in Q4 (and sampled Q5) would be found.

import (
	"testing"

	"repro/internal/faults"
	"repro/internal/topo"
)

// forEachFaultSet enumerates all fault sets of exactly k nodes in an
// n-cube and calls fn with a reusable Set.
func forEachFaultSet(t *testing.T, n, k int, fn func(*faults.Set)) {
	t.Helper()
	c := topo.MustCube(n)
	nodes := c.Nodes()
	idx := make([]int, k)
	for i := range idx {
		idx[i] = i
	}
	for {
		s := faults.NewSet(c)
		for _, v := range idx {
			if err := s.FailNode(topo.NodeID(v)); err != nil {
				t.Fatal(err)
			}
		}
		fn(s)
		// Next combination.
		i := k - 1
		for i >= 0 && idx[i] == nodes-k+i {
			i--
		}
		if i < 0 {
			return
		}
		idx[i]++
		for j := i + 1; j < k; j++ {
			idx[j] = idx[j-1] + 1
		}
	}
}

func TestExhaustiveQ4UpToThreeFaults(t *testing.T) {
	// All C(16,0)+C(16,1)+C(16,2)+C(16,3) = 697 fault sets with fewer
	// than n = 4 faults: the full guarantee regime.
	c := topo.MustCube(4)
	count := 0
	for k := 0; k <= 3; k++ {
		forEachFaultSet(t, 4, k, func(s *faults.Set) {
			count++
			as := Compute(s, Options{})
			// Theorem 1: the computed assignment is the fixpoint.
			if err := as.Verify(); err != nil {
				t.Fatalf("faults %s: %v", s, err)
			}
			// Corollary: stabilization within n-1 rounds.
			if as.Rounds() > 3 {
				t.Fatalf("faults %s: %d rounds", s, as.Rounds())
			}
			// Property 2: below n faults every nonfaulty unsafe node
			// has a safe neighbor.
			if err := as.CheckProperty2(); err != nil {
				t.Fatalf("faults %s: %v", s, err)
			}
			rt := NewRouter(as, nil)
			for src := 0; src < c.Nodes(); src++ {
				sid := topo.NodeID(src)
				if s.NodeFaulty(sid) {
					continue
				}
				// Theorem 2 for this source.
				k := as.Level(sid)
				for dst := 0; dst < c.Nodes(); dst++ {
					did := topo.NodeID(dst)
					if s.NodeFaulty(did) {
						continue
					}
					h := topo.Hamming(sid, did)
					if h >= 1 && h <= k && !faults.HasOptimalPath(s, sid, did) {
						t.Fatalf("faults %s: Theorem 2 violated at %s (level %d) -> %s",
							s, c.Format(sid), k, c.Format(did))
					}
					// Theorem 3 + Property 2: never a failure.
					r := rt.Unicast(sid, did)
					if r.Outcome == Failure {
						t.Fatalf("faults %s: unicast %s -> %s failed below n faults",
							s, c.Format(sid), c.Format(did))
					}
					if r.Err != nil {
						t.Fatalf("faults %s: transport error %v", s, r.Err)
					}
					wantLen := h
					if r.Outcome == Suboptimal {
						wantLen = h + 2
					}
					if r.Len() != wantLen {
						t.Fatalf("faults %s: %s -> %s length %d, want %d",
							s, c.Format(sid), c.Format(did), r.Len(), wantLen)
					}
				}
			}
		})
	}
	if count != 697 {
		t.Errorf("enumerated %d fault sets, want 697", count)
	}
}

func TestExhaustiveQ4FourFaults(t *testing.T) {
	// All C(16,4) = 1820 four-fault sets: beyond the guarantee bound.
	// The algorithm may abort, but every abort must be a clean source
	// decision, every delivery must honor the length contract, and
	// cross-partition requests must always abort.
	if testing.Short() {
		t.Skip("exhaustive enumeration skipped in -short mode")
	}
	c := topo.MustCube(4)
	count, disconnected := 0, 0
	forEachFaultSet(t, 4, 4, func(s *faults.Set) {
		count++
		as := Compute(s, Options{})
		if err := as.Verify(); err != nil {
			t.Fatalf("faults %s: %v", s, err)
		}
		labels, comps := faults.Components(s)
		if comps > 1 {
			disconnected++
		}
		rt := NewRouter(as, nil)
		for src := 0; src < c.Nodes(); src++ {
			sid := topo.NodeID(src)
			if s.NodeFaulty(sid) {
				continue
			}
			for dst := 0; dst < c.Nodes(); dst++ {
				did := topo.NodeID(dst)
				if s.NodeFaulty(did) {
					continue
				}
				r := rt.Unicast(sid, did)
				crossPartition := labels[sid] != labels[did]
				if crossPartition && r.Outcome != Failure {
					t.Fatalf("faults %s: cross-partition %s -> %s not aborted",
						s, c.Format(sid), c.Format(did))
				}
				if r.Outcome == Failure {
					if r.Err != nil {
						t.Fatalf("faults %s: %s -> %s transport error %v (should abort at source)",
							s, c.Format(sid), c.Format(did), r.Err)
					}
					continue
				}
				h := topo.Hamming(sid, did)
				wantLen := h
				if r.Outcome == Suboptimal {
					wantLen = h + 2
				}
				if r.Len() != wantLen {
					t.Fatalf("faults %s: %s -> %s length %d, want %d",
						s, c.Format(sid), c.Format(did), r.Len(), wantLen)
				}
				for _, a := range r.Path[1:] {
					if a != did && s.NodeFaulty(a) {
						t.Fatalf("faults %s: path crosses fault", s)
					}
				}
			}
		}
	})
	if count != 1820 {
		t.Errorf("enumerated %d fault sets, want 1820", count)
	}
	if disconnected == 0 {
		t.Error("no disconnected instance among four-fault Q4 sets (expected some)")
	}
}

func TestExhaustiveQ5TwoFaults(t *testing.T) {
	// All C(32,2) = 496 two-fault sets in Q5, full pair coverage.
	if testing.Short() {
		t.Skip("exhaustive enumeration skipped in -short mode")
	}
	c := topo.MustCube(5)
	count := 0
	forEachFaultSet(t, 5, 2, func(s *faults.Set) {
		count++
		as := Compute(s, Options{})
		if err := as.Verify(); err != nil {
			t.Fatalf("faults %s: %v", s, err)
		}
		if err := as.CheckProperty2(); err != nil {
			t.Fatalf("faults %s: %v", s, err)
		}
		rt := NewRouter(as, nil)
		for src := 0; src < c.Nodes(); src += 3 {
			sid := topo.NodeID(src)
			if s.NodeFaulty(sid) {
				continue
			}
			for dst := 0; dst < c.Nodes(); dst++ {
				did := topo.NodeID(dst)
				if s.NodeFaulty(did) {
					continue
				}
				r := rt.Unicast(sid, did)
				if r.Outcome == Failure {
					t.Fatalf("faults %s: %s -> %s failed with 2 < n faults",
						s, c.Format(sid), c.Format(did))
				}
			}
		}
	})
	if count != 496 {
		t.Errorf("enumerated %d fault sets, want 496", count)
	}
}

func TestExhaustiveQ4SingleLinkFault(t *testing.T) {
	// Every single-link-fault instance of Q4 (32 links), with every
	// source/destination pair: EGS consistency and routing contracts.
	c := topo.MustCube(4)
	links := 0
	for a := 0; a < c.Nodes(); a++ {
		for d := 0; d < c.Dim(); d++ {
			b := c.Neighbor(topo.NodeID(a), d)
			if topo.NodeID(a) > b {
				continue
			}
			links++
			s := faults.NewSet(c)
			if err := s.FailLink(topo.NodeID(a), b); err != nil {
				t.Fatal(err)
			}
			as := Compute(s, Options{})
			if err := as.Verify(); err != nil {
				t.Fatalf("link (%s,%s): %v", c.Format(topo.NodeID(a)), c.Format(b), err)
			}
			// Both endpoints are publicly 0 but own levels stay high:
			// only one "faulty" node in each endpoint's own view.
			for _, end := range []topo.NodeID{topo.NodeID(a), b} {
				if as.Level(end) != 0 {
					t.Fatalf("link endpoint %s public level %d", c.Format(end), as.Level(end))
				}
				if as.OwnLevel(end) < 1 {
					t.Fatalf("link endpoint %s own level %d", c.Format(end), as.OwnLevel(end))
				}
			}
			rt := NewRouter(as, nil)
			for src := 0; src < c.Nodes(); src++ {
				for dst := 0; dst < c.Nodes(); dst++ {
					sid, did := topo.NodeID(src), topo.NodeID(dst)
					r := rt.Unicast(sid, did)
					if r.Outcome == Failure {
						if r.Err != nil {
							t.Fatalf("link (%s,%s): %s -> %s transport error %v",
								c.Format(topo.NodeID(a)), c.Format(b),
								c.Format(sid), c.Format(did), r.Err)
						}
						continue
					}
					for i := 1; i < len(r.Path); i++ {
						if s.LinkFaulty(r.Path[i-1], r.Path[i]) {
							t.Fatalf("route crosses the dead link")
						}
					}
				}
			}
		}
	}
	if links != 32 {
		t.Errorf("enumerated %d links, want 32", links)
	}
}

func TestExhaustiveUniquenessQ3(t *testing.T) {
	// Theorem 1 exhaustively on Q3: for every one of the 2^8 fault
	// subsets, the from-above and from-below iterations agree.
	c := topo.MustCube(3)
	for mask := 0; mask < 256; mask++ {
		s := faults.NewSet(c)
		for a := 0; a < 8; a++ {
			if mask&(1<<a) != 0 {
				s.FailNode(topo.NodeID(a))
			}
		}
		as := Compute(s, Options{})
		if err := as.Verify(); err != nil {
			t.Fatalf("mask %08b: %v", mask, err)
		}
		below := computeFromBelow(c, s)
		for a := 0; a < 8; a++ {
			if below[a] != as.Level(topo.NodeID(a)) {
				t.Fatalf("mask %08b: node %d from-below %d != from-above %d",
					mask, a, below[a], as.Level(topo.NodeID(a)))
			}
		}
	}
}
