package core

import (
	"reflect"
	"testing"

	"repro/internal/faults"
	"repro/internal/topo"
)

// TestDetachFreezesFaultState pins the Detach contract: the copy keeps
// routing against the fault state at detach time no matter how the live
// set mutates afterwards, and it still verifies as a fixpoint (against
// its own frozen set).
func TestDetachFreezesFaultState(t *testing.T) {
	tp := topo.MustCube(4)
	set := faults.NewSet(tp)
	for _, a := range []topo.NodeID{3, 5, 12} {
		if err := set.FailNode(a); err != nil {
			t.Fatal(err)
		}
	}
	as := Compute(set, Options{})
	det := as.Detach()

	wantLevels := as.Levels()
	wantRoute := NewRouter(det, nil).Unicast(0, 15)

	// Churn the live set hard: recover everything, fail new nodes.
	for _, a := range []topo.NodeID{3, 5, 12} {
		if err := set.RecoverNode(a); err != nil {
			t.Fatal(err)
		}
	}
	if err := set.FailNodes(0, 7, 9); err != nil {
		t.Fatal(err)
	}

	if got := det.Levels(); !reflect.DeepEqual(got, wantLevels) {
		t.Fatalf("detached levels changed under live-set churn:\n got %v\nwant %v", got, wantLevels)
	}
	if det.Faults().NodeFaulty(0) {
		t.Fatal("detached set observed a post-detach fault")
	}
	if err := det.Verify(); err != nil {
		t.Fatalf("detached assignment no longer verifies: %v", err)
	}
	got := NewRouter(det, nil).Unicast(0, 15)
	if got.Outcome != wantRoute.Outcome || !reflect.DeepEqual(got.Path, wantRoute.Path) {
		t.Fatalf("detached route changed under churn: got %v/%v want %v/%v",
			got.Outcome, got.Path, wantRoute.Outcome, wantRoute.Path)
	}
	// The source failed in the live set after detach; the detached view
	// must still admit it.
	if r := NewRouter(det, nil).Unicast(0, 1); r.Err != nil {
		t.Fatalf("detached router rejected pre-churn-healthy source: %v", r.Err)
	}
}

// TestDetachEGSOwnLevels checks the two-view copy: with link faults the
// own table differs from the public one and both survive detach; without
// link faults the copy preserves the public/own aliasing.
func TestDetachEGSOwnLevels(t *testing.T) {
	tp := topo.MustCube(4)
	set := faults.NewSet(tp)
	if err := set.FailLink(0, 1); err != nil {
		t.Fatal(err)
	}
	as := Compute(set, Options{})
	det := as.Detach()
	for a := 0; a < tp.Nodes(); a++ {
		id := topo.NodeID(a)
		if det.Level(id) != as.Level(id) || det.OwnLevel(id) != as.OwnLevel(id) {
			t.Fatalf("node %d: detached levels (%d,%d) != original (%d,%d)",
				a, det.Level(id), det.OwnLevel(id), as.Level(id), as.OwnLevel(id))
		}
	}
	if det.Level(0) == det.OwnLevel(0) && as.Level(0) != as.OwnLevel(0) {
		t.Fatal("detach collapsed the N2 public/own distinction")
	}

	// No link faults: public and own alias in the original; the detached
	// copy must preserve that (one table, not two).
	set2 := faults.NewSet(tp)
	as2 := Compute(set2, Options{})
	det2 := as2.Detach()
	if &det2.public[0] != &det2.own[0] {
		t.Fatal("detach split the aliased public/own tables")
	}
}

// TestDetachStatsCarryOver checks that the run statistics (rounds,
// deltas, evals, repair markers) survive detach, and that the detached
// set's generation matches the original's at detach time.
func TestDetachStatsCarryOver(t *testing.T) {
	tp := topo.MustCube(5)
	set := faults.NewSet(tp)
	if err := set.FailNodes(1, 2, 4); err != nil {
		t.Fatal(err)
	}
	prev := Compute(set, Options{})
	gen := set.Generation()
	if err := set.FailNode(8); err != nil {
		t.Fatal(err)
	}
	delta, ok := set.Since(gen)
	if !ok {
		t.Fatal("journal gap")
	}
	as, ok := RepairLevels(prev, set, delta, Options{})
	if !ok {
		t.Fatal("repair refused")
	}
	det := as.Detach()
	if !det.Repaired() || det.Rounds() != as.Rounds() || det.Evals() != as.Evals() ||
		det.DirtyNodes() != as.DirtyNodes() || !reflect.DeepEqual(det.Deltas(), as.Deltas()) {
		t.Fatal("detach dropped run statistics")
	}
	if det.Faults().Generation() != set.Generation() {
		t.Fatalf("detached generation %d != live %d", det.Faults().Generation(), set.Generation())
	}
	// CloneState drops the journal: the detached set cannot replay
	// history it never kept.
	if _, ok := det.Faults().Since(gen); ok {
		t.Fatal("detached set replayed journal history it should not hold")
	}
}
