package core

import (
	"testing"

	"repro/internal/faults"
	"repro/internal/stats"
	"repro/internal/topo"
)

// Scale benchmarks for the flat SoA core. Both are part of the CI
// bench-hot set (their names match the gate's Benchmark(GS|Repair)
// regex), so regressions in ns/op or allocs/op on the large-cube paths
// fail the bench-gate job.

// BenchmarkGSColdQ16 runs a cold GLOBAL_STATUS sweep over Q16 (65,536
// nodes, 40 faults) with the parallel sweep at GOMAXPROCS — the
// serving engine's cold-start path on a large cube.
func BenchmarkGSColdQ16(b *testing.B) {
	c := topo.MustCube(16)
	s := faults.NewSet(c)
	if err := faults.InjectUniform(s, stats.NewRNG(7), 40); err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		Compute(s, Options{Workers: -1})
	}
}

// BenchmarkRepairQ16 measures single-event incremental repair on Q16:
// fail or recover one node, replay the journal delta through
// RepairLevels. The dominant per-op cost should be the retained level
// table of the new assignment (one byte per node), not the repair
// working state, which lives in the pooled scratch.
func BenchmarkRepairQ16(b *testing.B) {
	c := topo.MustCube(16)
	set := faults.NewSet(c)
	if err := faults.InjectUniform(set, stats.NewRNG(7), 40); err != nil {
		b.Fatal(err)
	}
	as := Compute(set, Options{})
	gen := set.Generation()
	victim := topo.NodeID(31337)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		var err error
		if i%2 == 0 {
			err = set.FailNode(victim)
		} else {
			err = set.RecoverNode(victim)
		}
		if err != nil {
			b.Fatal(err)
		}
		delta, ok := set.Since(gen)
		if !ok {
			b.Fatal("journal gap")
		}
		rep, ok := RepairLevels(as, set, delta, Options{})
		if !ok {
			b.Fatal("repair refused")
		}
		as, gen = rep, set.Generation()
	}
}

// BenchmarkRepairChurnReplayQ10 replays the exact BENCH_3/BENCH_7
// schedule (Q10, 40 fail/recover events with link faults, seed 3) once
// per op, maintaining the table by incremental repair. Its bytes/op is
// the number BENCH_7.json records against BENCH_3's map-based core.
func BenchmarkRepairChurnReplayQ10(b *testing.B) {
	tp := topo.MustCube(10)
	events := faults.ChurnSchedule(tp, 3, 40, faults.ChurnOptions{Links: true})
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		set := faults.NewSet(tp)
		prev := Compute(set, Options{})
		gen := set.Generation()
		for _, ev := range events {
			if err := set.Apply(ev); err != nil {
				b.Fatal(err)
			}
			delta, ok := set.Since(gen)
			if !ok {
				b.Fatal("journal gap")
			}
			as, ok := RepairLevels(prev, set, delta, Options{})
			if !ok {
				b.Fatal("repair refused")
			}
			prev, gen = as, set.Generation()
		}
	}
}
