package topo

import (
	"testing"
	"testing/quick"
)

func TestNewCubeBounds(t *testing.T) {
	if _, err := NewCube(0); err == nil {
		t.Error("NewCube(0) should fail")
	}
	if _, err := NewCube(-3); err == nil {
		t.Error("NewCube(-3) should fail")
	}
	if _, err := NewCube(MaxDim + 1); err == nil {
		t.Error("NewCube(MaxDim+1) should fail")
	}
	for n := 1; n <= MaxDim; n++ {
		c, err := NewCube(n)
		if err != nil {
			t.Fatalf("NewCube(%d): %v", n, err)
		}
		if c.Dim() != n {
			t.Errorf("Dim() = %d, want %d", c.Dim(), n)
		}
		if c.Nodes() != 1<<uint(n) {
			t.Errorf("Nodes() = %d, want %d", c.Nodes(), 1<<uint(n))
		}
		if c.Links() != n<<uint(n-1) {
			t.Errorf("Links() = %d, want %d", c.Links(), n<<uint(n-1))
		}
	}
}

func TestMustCubePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("MustCube(0) should panic")
		}
	}()
	MustCube(0)
}

func TestNeighborInvolution(t *testing.T) {
	c := MustCube(5)
	for a := 0; a < c.Nodes(); a++ {
		for i := 0; i < c.Dim(); i++ {
			b := c.Neighbor(NodeID(a), i)
			if b == NodeID(a) {
				t.Fatalf("node is its own neighbor: %d dim %d", a, i)
			}
			if back := c.Neighbor(b, i); back != NodeID(a) {
				t.Fatalf("Neighbor not an involution: %d -> %d -> %d", a, b, back)
			}
			if Hamming(NodeID(a), b) != 1 {
				t.Fatalf("neighbor at Hamming distance %d", Hamming(NodeID(a), b))
			}
		}
	}
}

func TestNeighborPanicsOnBadDim(t *testing.T) {
	c := MustCube(3)
	defer func() {
		if recover() == nil {
			t.Error("Neighbor with dim out of range should panic")
		}
	}()
	c.Neighbor(0, 3)
}

func TestNeighborsList(t *testing.T) {
	c := MustCube(4)
	got := c.Neighbors(c.MustParse("0110"), nil)
	want := c.MustParseAll("0111", "0100", "0010", "1110")
	if len(got) != len(want) {
		t.Fatalf("got %d neighbors, want %d", len(got), len(want))
	}
	for i := range want {
		if got[i] != want[i] {
			t.Errorf("neighbor[%d] = %s, want %s", i, c.Format(got[i]), c.Format(want[i]))
		}
	}
}

func TestNeighborsReusesBuffer(t *testing.T) {
	c := MustCube(4)
	buf := make([]NodeID, 0, 8)
	got := c.Neighbors(3, buf[:0])
	if len(got) != 4 {
		t.Fatalf("len = %d, want 4", len(got))
	}
	if cap(got) != 8 {
		t.Errorf("buffer was reallocated: cap = %d", cap(got))
	}
}

func TestAdjacent(t *testing.T) {
	c := MustCube(4)
	cases := []struct {
		a, b string
		want bool
	}{
		{"0000", "0001", true},
		{"0000", "1000", true},
		{"0000", "0011", false},
		{"0000", "0000", false},
		{"1111", "0111", true},
		{"1010", "0101", false},
	}
	for _, tc := range cases {
		if got := c.Adjacent(c.MustParse(tc.a), c.MustParse(tc.b)); got != tc.want {
			t.Errorf("Adjacent(%s, %s) = %v, want %v", tc.a, tc.b, got, tc.want)
		}
	}
}

func TestHammingMatchesPaperExamples(t *testing.T) {
	c := MustCube(4)
	// Section 3.2 worked examples.
	if got := Hamming(c.MustParse("1110"), c.MustParse("0001")); got != 4 {
		t.Errorf("H(1110, 0001) = %d, want 4", got)
	}
	if got := Hamming(c.MustParse("0001"), c.MustParse("1100")); got != 3 {
		t.Errorf("H(0001, 1100) = %d, want 3", got)
	}
	// Section 3.3 examples.
	if got := Hamming(c.MustParse("0101"), c.MustParse("0000")); got != 2 {
		t.Errorf("H(0101, 0000) = %d, want 2", got)
	}
	if got := Hamming(c.MustParse("0111"), c.MustParse("1110")); got != 2 {
		t.Errorf("H(0111, 1110) = %d, want 2", got)
	}
}

func TestHammingProperties(t *testing.T) {
	symmetric := func(a, b uint16) bool {
		return Hamming(NodeID(a), NodeID(b)) == Hamming(NodeID(b), NodeID(a))
	}
	if err := quick.Check(symmetric, nil); err != nil {
		t.Error(err)
	}
	identity := func(a uint16) bool { return Hamming(NodeID(a), NodeID(a)) == 0 }
	if err := quick.Check(identity, nil); err != nil {
		t.Error(err)
	}
	triangle := func(a, b, x uint16) bool {
		return Hamming(NodeID(a), NodeID(b)) <= Hamming(NodeID(a), NodeID(x))+Hamming(NodeID(x), NodeID(b))
	}
	if err := quick.Check(triangle, nil); err != nil {
		t.Error(err)
	}
}

func TestWeight(t *testing.T) {
	c := MustCube(4)
	for _, tc := range []struct {
		addr string
		want int
	}{{"0000", 0}, {"0001", 1}, {"0110", 2}, {"1110", 3}, {"1111", 4}} {
		if got := Weight(c.MustParse(tc.addr)); got != tc.want {
			t.Errorf("Weight(%s) = %d, want %d", tc.addr, got, tc.want)
		}
	}
}

func TestNavVector(t *testing.T) {
	c := MustCube(4)
	s, d := c.MustParse("1110"), c.MustParse("0001")
	v := Nav(s, d)
	if v != NavVector(c.MustParse("1111")) {
		t.Fatalf("Nav = %04b, want 1111", v)
	}
	if v.Zero() {
		t.Error("Zero() on nonzero vector")
	}
	if v.Count() != 4 {
		t.Errorf("Count = %d, want 4", v.Count())
	}
	// Crossing dimension 0 resets bit 0 (paper: "after resetting bit 0").
	v2 := v.Flip(0)
	if v2 != NavVector(c.MustParse("1110")) {
		t.Errorf("Flip(0) = %04b, want 1110", v2)
	}
	// Setting a spare dimension on a detour hop.
	v3 := NavVector(c.MustParse("0100")).Flip(3)
	if v3 != NavVector(c.MustParse("1100")) {
		t.Errorf("spare Flip(3) = %04b, want 1100", v3)
	}
	if !Nav(d, d).Zero() {
		t.Error("Nav(d, d) should be zero")
	}
}

func TestPreferredAndSpareDims(t *testing.T) {
	c := MustCube(4)
	s, d := c.MustParse("0001"), c.MustParse("1100")
	pref := c.PreferredDims(s, d)
	want := []int{0, 2, 3}
	if len(pref) != len(want) {
		t.Fatalf("preferred = %v, want %v", pref, want)
	}
	for i := range want {
		if pref[i] != want[i] {
			t.Fatalf("preferred = %v, want %v", pref, want)
		}
	}
	spare := c.SpareDims(s, d)
	if len(spare) != 1 || spare[0] != 1 {
		t.Fatalf("spare = %v, want [1]", spare)
	}
}

func TestPreferredSparePartition(t *testing.T) {
	c := MustCube(6)
	f := func(s, d uint8) bool {
		a, b := NodeID(s)&NodeID(c.Nodes()-1), NodeID(d)&NodeID(c.Nodes()-1)
		p := c.PreferredDims(a, b)
		sp := c.SpareDims(a, b)
		if len(p)+len(sp) != c.Dim() {
			return false
		}
		if len(p) != Hamming(a, b) {
			return false
		}
		seen := map[int]bool{}
		for _, x := range append(append([]int{}, p...), sp...) {
			if seen[x] {
				return false
			}
			seen[x] = true
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestFormatParse(t *testing.T) {
	c := MustCube(4)
	if got := c.Format(3); got != "0011" {
		t.Errorf("Format(3) = %q, want 0011", got)
	}
	if got := c.Format(14); got != "1110" {
		t.Errorf("Format(14) = %q, want 1110", got)
	}
	for a := 0; a < c.Nodes(); a++ {
		back, err := c.Parse(c.Format(NodeID(a)))
		if err != nil {
			t.Fatalf("Parse round-trip %d: %v", a, err)
		}
		if back != NodeID(a) {
			t.Fatalf("round-trip %d -> %s -> %d", a, c.Format(NodeID(a)), back)
		}
	}
	if _, err := c.Parse("011"); err == nil {
		t.Error("Parse of short string should fail")
	}
	if _, err := c.Parse("01120"); err == nil {
		t.Error("Parse of 5-char string in 4-cube should fail")
	}
	if _, err := c.Parse("012x"); err == nil {
		t.Error("Parse of non-binary string should fail")
	}
}

func TestMustParsePanics(t *testing.T) {
	c := MustCube(4)
	defer func() {
		if recover() == nil {
			t.Error("MustParse on bad input should panic")
		}
	}()
	c.MustParse("21")
}

func TestPathValidSimpleLen(t *testing.T) {
	c := MustCube(4)
	p := topoPath(c, "0001", "0000", "1000", "1100")
	if !p.Valid(c) {
		t.Error("paper path should be valid")
	}
	if !p.Simple() {
		t.Error("paper path should be simple")
	}
	if p.Len() != 3 {
		t.Errorf("Len = %d, want 3", p.Len())
	}
	bad := topoPath(c, "0001", "0010")
	if bad.Valid(c) {
		t.Error("non-adjacent step should be invalid")
	}
	loop := topoPath(c, "0001", "0000", "0001")
	if !loop.Valid(c) {
		t.Error("walk with repeats is still a valid walk")
	}
	if loop.Simple() {
		t.Error("walk with repeats is not simple")
	}
	var empty Path
	if empty.Valid(c) {
		t.Error("empty path should be invalid")
	}
	if empty.Len() != 0 {
		t.Error("empty path length should be 0")
	}
}

func topoPath(c *Cube, addrs ...string) Path {
	p := make(Path, len(addrs))
	for i, s := range addrs {
		p[i] = c.MustParse(s)
	}
	return p
}

func TestPathFormat(t *testing.T) {
	c := MustCube(4)
	p := topoPath(c, "1101", "1111", "1011")
	if got := p.FormatWith(c); got != "1101 -> 1111 -> 1011" {
		t.Errorf("FormatWith = %q", got)
	}
}

func TestGrayPath(t *testing.T) {
	c := MustCube(5)
	for a := 0; a < c.Nodes(); a += 3 {
		for b := 0; b < c.Nodes(); b += 5 {
			s, d := NodeID(a), NodeID(b)
			p := c.GrayPath(s, d)
			if !p.Valid(c) || !p.Simple() {
				t.Fatalf("GrayPath(%d, %d) invalid", s, d)
			}
			if p.Len() != Hamming(s, d) {
				t.Fatalf("GrayPath(%d, %d) length %d != H %d", s, d, p.Len(), Hamming(s, d))
			}
			if p[0] != s || p[len(p)-1] != d {
				t.Fatalf("GrayPath endpoints wrong")
			}
		}
	}
}

func TestSubcubeNodes(t *testing.T) {
	c := MustCube(4)
	// Fix dims 2,3 to the value's bits: 01xx around 0101.
	got := c.SubcubeNodes(c.MustParse("0101"), c.MustParse("1100"))
	if len(got) != 4 {
		t.Fatalf("got %d nodes, want 4", len(got))
	}
	want := map[NodeID]bool{}
	for _, s := range []string{"0100", "0101", "0110", "0111"} {
		want[c.MustParse(s)] = true
	}
	for _, a := range got {
		if !want[a] {
			t.Errorf("unexpected subcube node %s", c.Format(a))
		}
	}
	// Fixing every dimension yields exactly the anchor.
	all := c.SubcubeNodes(c.MustParse("1010"), c.MustParse("1111"))
	if len(all) != 1 || all[0] != c.MustParse("1010") {
		t.Errorf("fully-fixed subcube = %v", all)
	}
	// Fixing nothing yields the whole cube.
	if got := c.SubcubeNodes(0, 0); len(got) != 16 {
		t.Errorf("free subcube has %d nodes, want 16", len(got))
	}
}

func TestContains(t *testing.T) {
	c := MustCube(3)
	if !c.Contains(7) {
		t.Error("7 should be in Q3")
	}
	if c.Contains(8) {
		t.Error("8 should not be in Q3")
	}
}
