// Topology abstracts the structural interface that the safety-level
// machinery (faults, core, simnet) needs from a hypercube-like network:
// a fixed number of dimensions, a per-dimension sibling relation, and a
// distance that counts differing dimensions. The binary cube Q_n and the
// generalized hypercube GH(m_{n-1} x ... x m_0) of Section 4.2 are the
// two implementations; Definition 4 of the paper reduces each dimension
// to the minimum sibling level, which degenerates to Definition 1 when
// every radix is 2, so one generic algorithm serves both.
package topo

import "math/bits"

// Topology is a node-symmetric product graph: every node has a
// coordinate per dimension, and two nodes are adjacent exactly when
// they differ in a single coordinate ("siblings" along that dimension).
// In the binary cube each dimension holds one sibling; in a generalized
// hypercube the m_i-1 siblings of dimension i form a complete subgraph.
//
// Implementations must be immutable after construction: fault knowledge
// lives in package faults, levels in package core.
type Topology interface {
	// Dim returns the number of dimensions n.
	Dim() int
	// Nodes returns the number of nodes.
	Nodes() int
	// Degree returns the number of neighbors of every node,
	// sum over i of (Radix(i) - 1).
	Degree() int
	// Radix returns m_i, the number of coordinate values in dimension i.
	Radix(i int) int
	// Contains reports whether a is a valid node address.
	Contains(a NodeID) bool
	// Coord returns a's coordinate in dimension i, in [0, Radix(i)).
	Coord(a NodeID, i int) int
	// Toward returns the dimension-i neighbor of a whose coordinate in i
	// matches d's. If a and d agree in dimension i it returns a itself.
	Toward(a, d NodeID, i int) NodeID
	// Siblings appends a's neighbors along dimension i (ascending
	// coordinate order, excluding a itself) to dst and returns the
	// extended slice.
	Siblings(a NodeID, i int, dst []NodeID) []NodeID
	// Distance returns the number of dimensions in which a and b differ,
	// which is the graph distance in the fault-free topology.
	Distance(a, b NodeID) int
	// Adjacent reports whether a and b differ in exactly one dimension.
	Adjacent(a, b NodeID) bool
	// LinkDim returns the dimension along which adjacent nodes a and b
	// differ; the result is unspecified if they are not adjacent.
	LinkDim(a, b NodeID) int
	// Format renders a node address in the paper's figure notation.
	Format(a NodeID) string
	// Parse inverts Format.
	Parse(s string) (NodeID, error)
}

// Compile-time interface checks.
var (
	_ Topology = (*Cube)(nil)
	_ Topology = (*Mixed)(nil)
)

// NavIn returns the navigation vector of a unicast at a heading for b:
// bit i set means dimension i still has to be crossed. For the binary
// cube this is exactly a XOR b (Section 3.1); for a generalized cube it
// is the set of differing coordinates. Dimensions are capped at MaxDim,
// so the mask always fits a NavVector.
func NavIn(t Topology, a, b NodeID) NavVector {
	if _, ok := t.(*Cube); ok {
		return Nav(a, b)
	}
	if m, ok := t.(*Mixed); ok {
		// Single-pass mixed-radix decomposition of both addresses.
		var v NavVector
		ra, rb := int(a), int(b)
		for i, rad := range m.radix {
			if ra%rad != rb%rad {
				v |= 1 << uint(i)
			}
			ra /= rad
			rb /= rad
		}
		return v
	}
	var v NavVector
	for i := 0; i < t.Dim(); i++ {
		if t.Coord(a, i) != t.Coord(b, i) {
			v |= 1 << uint(i)
		}
	}
	return v
}

// Degree returns the binary cube's node degree, n.
func (c *Cube) Degree() int { return c.dim }

// Radix returns 2 for every dimension of a binary cube.
func (c *Cube) Radix(i int) int { return 2 }

// Coord returns bit i of a.
func (c *Cube) Coord(a NodeID, i int) int { return int(a>>uint(i)) & 1 }

// Toward returns a with bit i replaced by d's bit i.
func (c *Cube) Toward(a, d NodeID, i int) NodeID {
	return a ^ ((a ^ d) & (1 << uint(i)))
}

// Siblings appends a's single dimension-i neighbor, a XOR e^i.
func (c *Cube) Siblings(a NodeID, i int, dst []NodeID) []NodeID {
	return append(dst, a^(1<<uint(i)))
}

// Distance returns the Hamming distance between a and b.
func (c *Cube) Distance(a, b NodeID) int { return Hamming(a, b) }

// LinkDim returns the dimension of the edge joining adjacent a and b.
func (c *Cube) LinkDim(a, b NodeID) int {
	return bits.TrailingZeros32(uint32(a ^ b))
}
