package topo

import "testing"

// FuzzParse checks that Parse never panics, and that whatever it
// accepts round-trips through Format.
func FuzzParse(f *testing.F) {
	f.Add(4, "0110")
	f.Add(4, "1111")
	f.Add(4, "011")
	f.Add(4, "01102")
	f.Add(1, "0")
	f.Add(8, "10101010")
	f.Fuzz(func(t *testing.T, dim int, s string) {
		if dim < 1 || dim > MaxDim {
			return
		}
		c := MustCube(dim)
		id, err := c.Parse(s)
		if err != nil {
			return
		}
		if !c.Contains(id) {
			t.Fatalf("Parse(%q) = %d outside cube", s, id)
		}
		if got := c.Format(id); got != s {
			t.Fatalf("round-trip %q -> %d -> %q", s, id, got)
		}
	})
}

// FuzzNavVector checks navigation-vector algebra: flipping every
// preferred dimension of Nav(s, d) exactly once reaches zero.
func FuzzNavVector(f *testing.F) {
	f.Add(uint16(0b1110), uint16(0b0001))
	f.Add(uint16(0), uint16(0))
	f.Add(uint16(65535), uint16(0))
	f.Fuzz(func(t *testing.T, a, b uint16) {
		s, d := NodeID(a), NodeID(b)
		v := Nav(s, d)
		if v.Count() != Hamming(s, d) {
			t.Fatalf("Count %d != Hamming %d", v.Count(), Hamming(s, d))
		}
		for i := 0; i < 16; i++ {
			if v.Bit(i) {
				v = v.Flip(i)
			}
		}
		if !v.Zero() {
			t.Fatalf("clearing all preferred bits left %b", v)
		}
	})
}
