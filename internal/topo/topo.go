package topo

import (
	"fmt"
	"math/bits"
	"strconv"
	"strings"
)

// MaxDim is the largest supported cube dimension. 2^20 nodes is far past
// anything the paper evaluates (it uses n = 4 and n = 7) while keeping
// every node table comfortably in memory.
const MaxDim = 20

// NodeID identifies a hypercube node by its binary address.
type NodeID uint32

// Cube describes an n-dimensional binary hypercube.
type Cube struct {
	dim int
}

// NewCube returns the n-dimensional hypercube Q_n.
// It returns an error if n is outside [1, MaxDim].
func NewCube(n int) (*Cube, error) {
	if n < 1 || n > MaxDim {
		return nil, fmt.Errorf("topo: dimension %d outside [1, %d]", n, MaxDim)
	}
	return &Cube{dim: n}, nil
}

// MustCube is NewCube for callers with a compile-time-constant dimension;
// it panics on an invalid dimension.
func MustCube(n int) *Cube {
	c, err := NewCube(n)
	if err != nil {
		panic(err)
	}
	return c
}

// Dim returns the cube dimension n.
func (c *Cube) Dim() int { return c.dim }

// String renders the topology name ("Q4").
func (c *Cube) String() string { return fmt.Sprintf("Q%d", c.dim) }

// Nodes returns the number of nodes, 2^n.
func (c *Cube) Nodes() int { return 1 << uint(c.dim) }

// Links returns the number of undirected links, n * 2^(n-1).
func (c *Cube) Links() int { return c.dim << uint(c.dim-1) }

// Contains reports whether a is a valid node address in this cube.
func (c *Cube) Contains(a NodeID) bool { return int(a) < c.Nodes() }

// Neighbor returns a's neighbor along dimension i: a XOR e^i.
// It panics if i is not a valid dimension, because a bad dimension is
// always a programming error rather than an input condition.
func (c *Cube) Neighbor(a NodeID, i int) NodeID {
	if i < 0 || i >= c.dim {
		panic(fmt.Sprintf("topo: dimension %d outside cube of dim %d", i, c.dim))
	}
	return a ^ (1 << uint(i))
}

// Neighbors appends all n neighbors of a (dimension order 0..n-1) to dst
// and returns the extended slice. Pass a reusable slice to avoid
// allocation in hot loops.
func (c *Cube) Neighbors(a NodeID, dst []NodeID) []NodeID {
	for i := 0; i < c.dim; i++ {
		dst = append(dst, a^(1<<uint(i)))
	}
	return dst
}

// Adjacent reports whether a and b are joined by a hypercube edge.
func (c *Cube) Adjacent(a, b NodeID) bool {
	return bits.OnesCount32(uint32(a^b)) == 1
}

// Hamming returns H(a, b): the number of bit positions in which the
// addresses differ, which equals the graph distance in a fault-free cube.
func Hamming(a, b NodeID) int {
	return bits.OnesCount32(uint32(a ^ b))
}

// Weight returns the number of one bits in the address of a (its "level"
// in the proof of Theorem 4).
func Weight(a NodeID) int { return bits.OnesCount32(uint32(a)) }

// NavVector is the navigation vector N = s XOR d carried with a unicast
// message (Section 3.1). Bit i set means dimension i still has to be
// crossed. A zero vector means the message has arrived.
type NavVector uint32

// Nav returns the navigation vector between s and d.
func Nav(s, d NodeID) NavVector { return NavVector(s ^ d) }

// Zero reports whether no dimensions remain to be crossed.
func (v NavVector) Zero() bool { return v == 0 }

// Bit reports whether dimension i is a preferred dimension under v.
func (v NavVector) Bit(i int) bool { return v&(1<<uint(i)) != 0 }

// Flip returns v with bit i toggled: resetting a preferred dimension
// after crossing it, or setting a spare dimension on a detour hop.
func (v NavVector) Flip(i int) NavVector { return v ^ (1 << uint(i)) }

// Count returns the number of remaining preferred dimensions, i.e. the
// Hamming distance still to cover.
func (v NavVector) Count() int { return bits.OnesCount32(uint32(v)) }

// Preferred appends the preferred dimensions (those with bit set,
// ascending) to dst and returns the extended slice.
func (v NavVector) Preferred(dim int, dst []int) []int {
	for i := 0; i < dim; i++ {
		if v.Bit(i) {
			dst = append(dst, i)
		}
	}
	return dst
}

// Spare appends the spare dimensions (bit clear, ascending) to dst and
// returns the extended slice.
func (v NavVector) Spare(dim int, dst []int) []int {
	for i := 0; i < dim; i++ {
		if !v.Bit(i) {
			dst = append(dst, i)
		}
	}
	return dst
}

// PreferredDims returns the preferred dimensions of a unicast from s to
// d, ascending. Equivalent to Nav(s, d).Preferred.
func (c *Cube) PreferredDims(s, d NodeID) []int {
	return Nav(s, d).Preferred(c.dim, nil)
}

// SpareDims returns the spare dimensions of a unicast from s to d.
func (c *Cube) SpareDims(s, d NodeID) []int {
	return Nav(s, d).Spare(c.dim, nil)
}

// Format renders a node address as an n-bit binary string, matching the
// notation used in the paper's figures (e.g. node 3 in Q4 is "0011").
func (c *Cube) Format(a NodeID) string {
	s := strconv.FormatUint(uint64(a), 2)
	if pad := c.dim - len(s); pad > 0 {
		s = strings.Repeat("0", pad) + s
	}
	return s
}

// Parse converts an n-bit binary string (as printed in the paper's
// figures) back into a NodeID.
func (c *Cube) Parse(s string) (NodeID, error) {
	if len(s) != c.dim {
		return 0, fmt.Errorf("topo: address %q has %d bits, want %d", s, len(s), c.dim)
	}
	v, err := strconv.ParseUint(s, 2, 32)
	if err != nil {
		return 0, fmt.Errorf("topo: bad address %q: %v", s, err)
	}
	return NodeID(v), nil
}

// MustParse is Parse for test fixtures and figure scenarios; it panics on
// malformed addresses.
func (c *Cube) MustParse(s string) NodeID {
	id, err := c.Parse(s)
	if err != nil {
		panic(err)
	}
	return id
}

// MustParseAll parses a list of binary addresses.
func (c *Cube) MustParseAll(ss ...string) []NodeID {
	out := make([]NodeID, len(ss))
	for i, s := range ss {
		out[i] = c.MustParse(s)
	}
	return out
}

// Path is a sequence of node addresses where consecutive entries are
// adjacent. It records the route a unicast message traveled.
type Path []NodeID

// Len returns the number of hops (edges), not nodes.
func (p Path) Len() int {
	if len(p) == 0 {
		return 0
	}
	return len(p) - 1
}

// Valid reports whether p is a walk in the topology: non-empty and each
// consecutive pair adjacent.
func (p Path) Valid(c Topology) bool {
	if len(p) == 0 {
		return false
	}
	for _, a := range p {
		if !c.Contains(a) {
			return false
		}
	}
	for i := 1; i < len(p); i++ {
		if !c.Adjacent(p[i-1], p[i]) {
			return false
		}
	}
	return true
}

// Simple reports whether no node repeats on the path.
func (p Path) Simple() bool {
	seen := make(map[NodeID]bool, len(p))
	for _, a := range p {
		if seen[a] {
			return false
		}
		seen[a] = true
	}
	return true
}

// FormatWith renders the path in figure notation: "0001 -> 0000 -> 1000".
func (p Path) FormatWith(c Topology) string {
	parts := make([]string, len(p))
	for i, a := range p {
		parts[i] = c.Format(a)
	}
	return strings.Join(parts, " -> ")
}

// GrayPath returns a Hamming-distance path from s to d crossing the
// preferred dimensions in ascending order. This is the canonical optimal
// path in a fault-free cube, used as a reference in tests.
func (c *Cube) GrayPath(s, d NodeID) Path {
	p := Path{s}
	cur := s
	for i := 0; i < c.dim; i++ {
		if Nav(cur, d).Bit(i) {
			cur = c.Neighbor(cur, i)
			p = append(p, cur)
		}
	}
	return p
}

// SubcubeNodes returns all nodes matching a mask pattern: bits in fixed
// are frozen to the corresponding bit of value; the rest vary. It is used
// by the fault injectors to build clustered (subcube) fault sets.
func (c *Cube) SubcubeNodes(value NodeID, fixed NodeID) []NodeID {
	freeDims := make([]int, 0, c.dim)
	for i := 0; i < c.dim; i++ {
		if fixed&(1<<uint(i)) == 0 {
			freeDims = append(freeDims, i)
		}
	}
	base := value & fixed
	out := make([]NodeID, 0, 1<<uint(len(freeDims)))
	for m := 0; m < 1<<uint(len(freeDims)); m++ {
		a := base
		for j, dim := range freeDims {
			if m&(1<<uint(j)) != 0 {
				a |= 1 << uint(dim)
			}
		}
		out = append(out, a)
	}
	return out
}
