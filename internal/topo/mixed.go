package topo

import (
	"fmt"
	"strconv"
	"strings"
)

// MaxMixedNodes bounds the size of a mixed-radix topology; 2^22 nodes
// is far past anything the paper evaluates while keeping node tables in
// memory. Since every radix is at least 2 this also caps the dimension
// count at 22, so navigation masks always fit a NavVector.
const MaxMixedNodes = 1 << 22

// Mixed is the generalized hypercube GH(m_{n-1} x ... x m_0) of Bhuyan
// and Agrawal (the paper's Section 4.2). Nodes are mixed-radix
// coordinate vectors indexed in row-major order with dimension 0 as the
// least significant digit; two nodes are adjacent iff they differ in
// exactly one coordinate, so the m_i nodes sharing all coordinates
// except dimension i form a complete subgraph and any dimension is
// crossed in a single hop. With every m_i = 2 the structure coincides
// exactly with the binary cube.
type Mixed struct {
	radix  []int // radix[i] = m_i, the size of dimension i
	stride []int // stride[i] = product of radix[0..i-1]
	nodes  int
	degree int
}

// NewMixed builds GH(radix[n-1] x ... x radix[0]). The slice is given
// in dimension order radix[0] = m_0 first; every m_i must be at least 2.
func NewMixed(radix []int) (*Mixed, error) {
	if len(radix) == 0 {
		return nil, fmt.Errorf("topo: no dimensions")
	}
	t := &Mixed{
		radix:  append([]int(nil), radix...),
		stride: make([]int, len(radix)),
	}
	total := 1
	for i, m := range radix {
		if m < 2 {
			return nil, fmt.Errorf("topo: dimension %d has radix %d < 2", i, m)
		}
		t.stride[i] = total
		total *= m
		if total > MaxMixedNodes {
			return nil, fmt.Errorf("topo: too many nodes")
		}
		t.degree += m - 1
	}
	t.nodes = total
	return t, nil
}

// MustMixed is NewMixed for compile-time-constant shapes; it panics on
// error.
func MustMixed(radix ...int) *Mixed {
	t, err := NewMixed(radix)
	if err != nil {
		panic(err)
	}
	return t
}

// Dim returns the number of dimensions n.
func (t *Mixed) Dim() int { return len(t.radix) }

// String renders the topology name in the paper's notation, highest
// dimension first ("GH(2x3x2)").
func (t *Mixed) String() string {
	var b strings.Builder
	b.WriteString("GH(")
	for i := len(t.radix) - 1; i >= 0; i-- {
		b.WriteString(strconv.Itoa(t.radix[i]))
		if i > 0 {
			b.WriteByte('x')
		}
	}
	b.WriteByte(')')
	return b.String()
}

// Nodes returns the total number of nodes.
func (t *Mixed) Nodes() int { return t.nodes }

// Degree returns the node degree, sum of (m_i - 1).
func (t *Mixed) Degree() int { return t.degree }

// Radix returns m_i.
func (t *Mixed) Radix(i int) int { return t.radix[i] }

// Contains reports whether a is a valid node.
func (t *Mixed) Contains(a NodeID) bool { return int(a) < t.nodes }

// Coord returns coordinate i of node a.
func (t *Mixed) Coord(a NodeID, i int) int {
	return (int(a) / t.stride[i]) % t.radix[i]
}

// CoordsInto appends all coordinates of node a to dst (dimension 0
// first) in one mixed-radix decomposition pass — n divmods total,
// against the 2n stride divisions of calling Coord per dimension. The
// dense-index accessor the flat SoA core uses when it needs a whole
// coordinate vector.
func (t *Mixed) CoordsInto(a NodeID, dst []int) []int {
	r := int(a)
	for _, m := range t.radix {
		dst = append(dst, r%m)
		r /= m
	}
	return dst
}

// Index converts a coordinate vector (dimension 0 first, as produced by
// CoordsInto) back to its dense node index.
func (t *Mixed) Index(coords []int) NodeID {
	id := 0
	for i, v := range coords {
		id += v * t.stride[i]
	}
	return NodeID(id)
}

// WithCoord returns a with coordinate i replaced by v.
func (t *Mixed) WithCoord(a NodeID, i, v int) NodeID {
	cur := t.Coord(a, i)
	return NodeID(int(a) + (v-cur)*t.stride[i])
}

// Toward returns a with coordinate i replaced by d's coordinate i.
func (t *Mixed) Toward(a, d NodeID, i int) NodeID {
	return t.WithCoord(a, i, t.Coord(d, i))
}

// Distance returns the number of coordinates in which a and b differ —
// the graph distance in a fault-free GH. Both addresses decompose in a
// single divmod walk, so the cost is one divmod per dimension per node.
func (t *Mixed) Distance(a, b NodeID) int {
	d := 0
	ra, rb := int(a), int(b)
	for _, m := range t.radix {
		if ra%m != rb%m {
			d++
		}
		ra /= m
		rb /= m
	}
	return d
}

// Adjacent reports whether a and b differ in exactly one coordinate.
func (t *Mixed) Adjacent(a, b NodeID) bool {
	if a == b {
		return false
	}
	diff := 0
	ra, rb := int(a), int(b)
	for _, m := range t.radix {
		if ra%m != rb%m {
			if diff++; diff > 1 {
				return false
			}
		}
		ra /= m
		rb /= m
	}
	return diff == 1
}

// LinkDim returns the dimension along which adjacent a and b differ.
func (t *Mixed) LinkDim(a, b NodeID) int {
	ra, rb := int(a), int(b)
	for i, m := range t.radix {
		if ra%m != rb%m {
			return i
		}
		ra /= m
		rb /= m
	}
	return -1
}

// Siblings appends the m_i - 1 neighbors of a along dimension i to dst
// in ascending coordinate order.
func (t *Mixed) Siblings(a NodeID, i int, dst []NodeID) []NodeID {
	cur := t.Coord(a, i)
	for v := 0; v < t.radix[i]; v++ {
		if v != cur {
			dst = append(dst, t.WithCoord(a, i, v))
		}
	}
	return dst
}

// Format renders a node as its digit string a_{n-1}...a_0, matching the
// paper's Fig. 5 notation (e.g. "021" in GH(2x3x2)). Radixes above 10
// fall back to dotted decimal.
func (t *Mixed) Format(a NodeID) string {
	wide := false
	for _, m := range t.radix {
		if m > 10 {
			wide = true
		}
	}
	parts := make([]string, len(t.radix))
	for i := range t.radix {
		parts[len(t.radix)-1-i] = strconv.Itoa(t.Coord(a, i))
	}
	if wide {
		return strings.Join(parts, ".")
	}
	return strings.Join(parts, "")
}

// Parse converts a digit string back into a NodeID.
func (t *Mixed) Parse(s string) (NodeID, error) {
	if len(s) != len(t.radix) {
		return 0, fmt.Errorf("topo: address %q has %d digits, want %d", s, len(s), len(t.radix))
	}
	var id int
	for pos, ch := range s {
		i := len(t.radix) - 1 - pos
		v := int(ch - '0')
		if v < 0 || v >= t.radix[i] {
			return 0, fmt.Errorf("topo: digit %c outside radix %d of dimension %d", ch, t.radix[i], i)
		}
		id += v * t.stride[i]
	}
	return NodeID(id), nil
}

// MustParse is Parse for fixtures; it panics on malformed addresses.
func (t *Mixed) MustParse(s string) NodeID {
	id, err := t.Parse(s)
	if err != nil {
		panic(err)
	}
	return id
}

// MustParseAll parses a list of addresses.
func (t *Mixed) MustParseAll(ss ...string) []NodeID {
	out := make([]NodeID, len(ss))
	for i, s := range ss {
		out[i] = t.MustParse(s)
	}
	return out
}
