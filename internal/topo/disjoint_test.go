package topo

import (
	"testing"
	"testing/quick"
)

func TestDisjointOptimalPathsExhaustiveQ4(t *testing.T) {
	c := MustCube(4)
	for s := 0; s < c.Nodes(); s++ {
		for d := 0; d < c.Nodes(); d++ {
			src, dst := NodeID(s), NodeID(d)
			paths := c.DisjointOptimalPaths(src, dst)
			h := Hamming(src, dst)
			if h == 0 {
				if len(paths) != 1 || paths[0].Len() != 0 {
					t.Fatalf("self case wrong for %d", s)
				}
				continue
			}
			if len(paths) != h {
				t.Fatalf("%s -> %s: %d paths, want %d",
					c.Format(src), c.Format(dst), len(paths), h)
			}
			for _, p := range paths {
				if !p.Valid(c) || !p.Simple() {
					t.Fatalf("%s -> %s: invalid path %s",
						c.Format(src), c.Format(dst), p.FormatWith(c))
				}
				if p.Len() != h {
					t.Fatalf("path length %d != H %d", p.Len(), h)
				}
				if p[0] != src || p[len(p)-1] != dst {
					t.Fatal("endpoints wrong")
				}
			}
			if !InternallyDisjoint(paths) {
				t.Fatalf("%s -> %s: paths not internally disjoint",
					c.Format(src), c.Format(dst))
			}
		}
	}
}

func TestDisjointOptimalPathsQuick(t *testing.T) {
	c := MustCube(8)
	f := func(a, b uint8) bool {
		src, dst := NodeID(a), NodeID(b)
		paths := c.DisjointOptimalPaths(src, dst)
		h := Hamming(src, dst)
		if h == 0 {
			return len(paths) == 1
		}
		if len(paths) != h {
			return false
		}
		for _, p := range paths {
			if !p.Valid(c) || !p.Simple() || p.Len() != h {
				return false
			}
		}
		return InternallyDisjoint(paths)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Error(err)
	}
}

func TestInternallyDisjointDetectsOverlap(t *testing.T) {
	c := MustCube(3)
	// Two paths 000 -> 011 sharing the interior node 001.
	p1 := Path{c.MustParse("000"), c.MustParse("001"), c.MustParse("011")}
	p2 := Path{c.MustParse("000"), c.MustParse("001"), c.MustParse("011")}
	if InternallyDisjoint([]Path{p1, p2}) {
		t.Error("shared interior node not detected")
	}
	p3 := Path{c.MustParse("000"), c.MustParse("010"), c.MustParse("011")}
	if !InternallyDisjoint([]Path{p1, p3}) {
		t.Error("disjoint pair misclassified")
	}
}
