package topo

import "testing"

// TestMixedCoordsRoundTrip pins the single-pass accessors to the
// stride-based ones over every node of a few shapes: CoordsInto must
// agree with Coord per dimension and Index must invert it.
func TestMixedCoordsRoundTrip(t *testing.T) {
	for _, shape := range [][]int{{2, 3, 2}, {4, 2, 5}, {3, 3, 3, 3}, {2, 2}} {
		m := MustMixed(shape...)
		var coords []int
		for a := 0; a < m.Nodes(); a++ {
			id := NodeID(a)
			coords = m.CoordsInto(id, coords[:0])
			if len(coords) != m.Dim() {
				t.Fatalf("%v: CoordsInto(%d) has %d digits, want %d", shape, a, len(coords), m.Dim())
			}
			for i, v := range coords {
				if want := m.Coord(id, i); v != want {
					t.Fatalf("%v: CoordsInto(%d)[%d] = %d, Coord gives %d", shape, a, i, v, want)
				}
			}
			if back := m.Index(coords); back != id {
				t.Fatalf("%v: Index(CoordsInto(%d)) = %d", shape, a, back)
			}
		}
	}
}

// TestMixedPairwiseAccessors checks the divmod-walk Distance, Adjacent,
// LinkDim, and NavIn against their coordinate-by-coordinate definitions
// over every node pair of GH(4x3x2).
func TestMixedPairwiseAccessors(t *testing.T) {
	m := MustMixed(2, 3, 4)
	for a := 0; a < m.Nodes(); a++ {
		for b := 0; b < m.Nodes(); b++ {
			ia, ib := NodeID(a), NodeID(b)
			dist, link := 0, -1
			var nav NavVector
			for i := 0; i < m.Dim(); i++ {
				if m.Coord(ia, i) != m.Coord(ib, i) {
					dist++
					nav |= 1 << uint(i)
					if link < 0 {
						link = i
					}
				}
			}
			if got := m.Distance(ia, ib); got != dist {
				t.Fatalf("Distance(%d,%d) = %d, want %d", a, b, got, dist)
			}
			if got := m.Adjacent(ia, ib); got != (dist == 1) {
				t.Fatalf("Adjacent(%d,%d) = %v, want %v", a, b, got, dist == 1)
			}
			if dist == 1 {
				if got := m.LinkDim(ia, ib); got != link {
					t.Fatalf("LinkDim(%d,%d) = %d, want %d", a, b, got, link)
				}
			}
			if got := NavIn(m, ia, ib); got != nav {
				t.Fatalf("NavIn(%d,%d) = %b, want %b", a, b, got, nav)
			}
		}
	}
}
