package topo

// DisjointOptimalPaths returns H(s, d) pairwise internally-node-disjoint
// optimal paths between s and d — the structural fact the proof of
// Theorem 2 invokes ("there are j node-disjoint optimal paths between
// two nodes separated by j Hamming distance").
//
// Construction: with preferred dimensions d_0 < d_1 < ... < d_{j-1},
// path i crosses them in the rotated order d_i, d_{i+1}, ..., wrapping
// around. Two rotations first diverge at their first hop and can only
// re-meet at a node whose crossed-dimension set is a rotation-prefix of
// both, which forces the full set — i.e. the destination.
func (c *Cube) DisjointOptimalPaths(s, d NodeID) []Path {
	dims := c.PreferredDims(s, d)
	j := len(dims)
	if j == 0 {
		return []Path{{s}}
	}
	out := make([]Path, j)
	for i := 0; i < j; i++ {
		p := Path{s}
		cur := s
		for k := 0; k < j; k++ {
			cur = c.Neighbor(cur, dims[(i+k)%j])
			p = append(p, cur)
		}
		out[i] = p
	}
	return out
}

// InternallyDisjoint reports whether the given paths share no node
// except (possibly) their common endpoints.
func InternallyDisjoint(paths []Path) bool {
	seen := make(map[NodeID]int)
	for pi, p := range paths {
		for k, a := range p {
			if k == 0 || k == len(p)-1 {
				continue // endpoints are shared by design
			}
			if prev, ok := seen[a]; ok && prev != pi {
				return false
			}
			seen[a] = pi
		}
	}
	return true
}
