// Package topo implements the addressing and structural primitives of
// the hypercube topologies used throughout the repository: the binary
// n-dimensional hypercube Q_n (Section 2.1 of the paper) and the
// mixed-radix generalized hypercube GH(m_{n-1} x ... x m_0) of Section
// 4.2, both behind the Topology interface the level and routing
// machinery is generic over.
//
// Binary nodes are labeled 0 .. 2^n-1; two nodes are adjacent exactly
// when their labels differ in one bit, so Hamming distance is graph
// distance.
//
// Key invariant: the package is purely combinatorial — fault knowledge
// lives in package faults and the safety-level machinery lives in
// package core, so a Topology is immutable and safely shared by every
// layer (including concurrently published serving snapshots) without
// synchronization.
package topo
