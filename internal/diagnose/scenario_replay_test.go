package diagnose

import (
	"errors"
	"reflect"
	"testing"

	"repro/internal/chaos"
	"repro/internal/faults"
	"repro/internal/topo"
)

// TestScheduleReplayDiagnosedScenarios is the closed-loop differential
// the issue's acceptance criterion names: replay correlated-fault
// scenario profiles through syndrome diagnosis instead of declared
// faults, and require the diagnosed schedule to drive chaos.RunEvents
// to a bit-identical report. Profiles are tuned so the simultaneous
// node-fault count stays within the Q4 diagnosability bound (dimcut is
// link-only and passes through untouched).
func TestScheduleReplayDiagnosedScenarios(t *testing.T) {
	tp, err := topo.NewCube(4)
	if err != nil {
		t.Fatal(err)
	}
	cases := []struct {
		profile faults.ScenarioProfile
		opts    faults.ScenarioOptions
	}{
		{faults.ScenarioRolling, faults.ScenarioOptions{RollWidth: 3}},
		{faults.ScenarioFlap, faults.ScenarioOptions{FlapNodes: 4, FlapToggles: 2}},
		{faults.ScenarioSubcube, faults.ScenarioOptions{Subdim: 2}},
		{faults.ScenarioDimCut, faults.ScenarioOptions{}},
	}
	chaosOpts := chaos.Options{OracleSources: 4, Unicasts: 8, Seed: 5}
	for _, tc := range cases {
		truth, err := faults.ScenarioSchedule(tp, tc.profile, 13, tc.opts)
		if err != nil {
			t.Fatalf("%s: schedule: %v", tc.profile, err)
		}
		for _, adv := range Adversaries() {
			diagnosed, err := ReplaySchedule(tp, truth, ReplayOptions{Seed: 31, Adversary: adv})
			if err != nil {
				t.Fatalf("%s/%s: replay: %v", tc.profile, adv, err)
			}
			if !reflect.DeepEqual(diagnosed, truth) {
				t.Fatalf("%s/%s: diagnosed schedule diverged from the truth schedule", tc.profile, adv)
			}
			// Belt and braces: run the full per-event differential on
			// both schedules and require identical reports.
			want, err := chaos.RunEvents(tp, truth, chaosOpts)
			if err != nil {
				t.Fatalf("%s/%s: chaos on truth: %v", tc.profile, adv, err)
			}
			got, err := chaos.RunEvents(tp, diagnosed, chaosOpts)
			if err != nil {
				t.Fatalf("%s/%s: chaos on diagnosed: %v", tc.profile, adv, err)
			}
			if !reflect.DeepEqual(got, want) {
				t.Fatalf("%s/%s: chaos report diverged:\n got %+v\nwant %+v", tc.profile, adv, got, want)
			}
		}
	}
}

// TestScheduleReplayDiagnosedPartitionAmbiguous: the partition profile
// fails a whole subcube boundary at once — far past the bound — so a
// diagnosed replay under the worst-case adversary must refuse with
// ErrAmbiguous rather than invent a schedule.
func TestScheduleReplayDiagnosedPartitionAmbiguous(t *testing.T) {
	tp, err := topo.NewCube(4)
	if err != nil {
		t.Fatal(err)
	}
	truth, err := faults.ScenarioSchedule(tp, faults.ScenarioPartition, 7, faults.ScenarioOptions{Subdim: 2})
	if err != nil {
		t.Fatal(err)
	}
	_, err = ReplaySchedule(tp, truth, ReplayOptions{Adversary: AdversaryInvert})
	if !errors.Is(err, ErrAmbiguous) {
		t.Fatalf("partition replay err = %v, want ErrAmbiguous", err)
	}
}
