package diagnose

import (
	"encoding/base64"
	"encoding/binary"
	"encoding/json"
	"fmt"

	"repro/internal/bitset"
	"repro/internal/faults"
	"repro/internal/stats"
	"repro/internal/topo"
)

// SyndromeFormat names the wire encoding of a Syndrome's JSON form.
// Decoders reject anything else, so the format can evolve behind a new
// tag without silently misreading old captures.
const SyndromeFormat = "pmc-bitset-v1"

// Adversary is the behavior policy of faulty testers. Under the PMC
// model a fault-free tester reports its neighbor's true status and a
// faulty tester reports ANYTHING; the decoder must be correct against
// every policy, so the collector makes the adversary explicit and
// deterministic (seeded) instead of hiding one arbitrary choice.
type Adversary string

const (
	// AdversaryTruthful: faulty testers happen to report the truth
	// (crash-consistent hardware). The easiest case.
	AdversaryTruthful Adversary = "truthful"
	// AdversaryStealth: faulty testers report every neighbor healthy,
	// trying to look like bystanders and hide fellow faults.
	AdversaryStealth Adversary = "stealth"
	// AdversarySlander: faulty testers report every neighbor faulty,
	// trying to frame the healthy majority.
	AdversarySlander Adversary = "slander"
	// AdversaryInvert: faulty testers lie maximally — every report is
	// the negation of the truth. The classical worst case.
	AdversaryInvert Adversary = "invert"
	// AdversaryRandom: faulty testers flip a seeded per-test coin. The
	// bit depends only on (seed, tester, testee), not on collection
	// order, so syndromes replay bit-identically.
	AdversaryRandom Adversary = "random"
)

// Adversaries lists every policy, for exhaustive differentials.
func Adversaries() []Adversary {
	return []Adversary{
		AdversaryTruthful, AdversaryStealth, AdversarySlander,
		AdversaryInvert, AdversaryRandom,
	}
}

// ParseAdversary validates a policy name from a flag or query string.
func ParseAdversary(s string) (Adversary, error) {
	switch Adversary(s) {
	case AdversaryTruthful, AdversaryStealth, AdversarySlander,
		AdversaryInvert, AdversaryRandom:
		return Adversary(s), nil
	case "":
		return AdversaryInvert, nil
	}
	return "", fmt.Errorf("diagnose: unknown adversary %q (want truthful, stealth, slander, invert or random)", s)
}

// report is one faulty tester's claim about testee. truth is the
// testee's real status.
func (a Adversary) report(seed uint64, tester, testee topo.NodeID, truth bool) bool {
	switch a {
	case AdversaryTruthful:
		return truth
	case AdversaryStealth:
		return false
	case AdversarySlander:
		return true
	case AdversaryRandom:
		// One splitmix64 draw keyed by (seed, tester, testee): stable
		// across collection order and platforms.
		r := stats.NewRNG(seed ^ uint64(tester)*0x9e3779b97f4a7c15 ^ uint64(testee)*0xbf58476d1ce4e5b9)
		return r.Uint64()&1 == 1
	default: // AdversaryInvert and the zero value
		return !truth
	}
}

// Syndrome is the outcome matrix of one PMC test round: for every
// directed neighbor pair (u tests v) it records whether the test ran
// and what it reported (0 = testee looked fault-free, 1 = faulty).
// Storage is two flat bitsets indexed by tester*degree + neighbor rank,
// where rank is the testee's position in the tester's dimension-ordered
// neighbor list — 2*Nodes*Degree bits total, matching the flat SoA
// layout of the rest of the data plane.
//
// Tests whose link is itself faulty never complete and are recorded as
// untested: they contribute no constraint to the decoder, which is how
// link faults coexist with node diagnosis (see docs/DIAGNOSIS.md).
type Syndrome struct {
	t       topo.Topology
	deg     int
	tested  bitset.Set
	result  bitset.Set
	scratch []topo.NodeID
}

// NewSyndrome allocates an empty (all-untested) syndrome over t.
func NewSyndrome(t topo.Topology) *Syndrome {
	deg := t.Degree()
	return &Syndrome{
		t:      t,
		deg:    deg,
		tested: bitset.New(t.Nodes() * deg),
		result: bitset.New(t.Nodes() * deg),
	}
}

// Topology returns the topology the syndrome is indexed over.
func (s *Syndrome) Topology() topo.Topology { return s.t }

// eachNeighbor visits tester's neighbors in rank order (dimensions
// ascending, siblings in coordinate order within a dimension) — the
// canonical order the bitset index is built on.
func (s *Syndrome) eachNeighbor(u topo.NodeID, fn func(rank int, v topo.NodeID)) {
	rank := 0
	for d := 0; d < s.t.Dim(); d++ {
		s.scratch = s.t.Siblings(u, d, s.scratch[:0])
		for _, v := range s.scratch {
			fn(rank, v)
			rank++
		}
	}
}

// rankOf returns testee's rank in tester's neighbor order, or -1 if
// they are not adjacent.
func (s *Syndrome) rankOf(tester, testee topo.NodeID) int {
	found := -1
	s.eachNeighborRank(tester, testee, &found)
	return found
}

func (s *Syndrome) eachNeighborRank(u, v topo.NodeID, out *int) {
	rank := 0
	var buf [8]topo.NodeID
	for d := 0; d < s.t.Dim(); d++ {
		sibs := s.t.Siblings(u, d, buf[:0])
		for _, w := range sibs {
			if w == v {
				*out = rank
				return
			}
			rank++
		}
	}
}

// Record stores the outcome of tester's test of its neighbor testee and
// marks the pair tested. It panics if the nodes are not adjacent —
// syndromes only hold neighbor tests.
func (s *Syndrome) Record(tester, testee topo.NodeID, faulty bool) {
	r := s.rankOf(tester, testee)
	if r < 0 {
		panic(fmt.Sprintf("diagnose: %s does not test non-neighbor %s",
			s.t.Format(tester), s.t.Format(testee)))
	}
	i := int(tester)*s.deg + r
	s.tested.Add(i)
	if faulty {
		s.result.Add(i)
	} else {
		s.result.Remove(i)
	}
}

// Result returns tester's report about testee: faulty is meaningful
// only when tested is true. Non-adjacent pairs read as untested.
func (s *Syndrome) Result(tester, testee topo.NodeID) (faulty, tested bool) {
	r := s.rankOf(tester, testee)
	if r < 0 {
		return false, false
	}
	i := int(tester)*s.deg + r
	return s.result.Test(i), s.tested.Test(i)
}

// at reads the directed test at (tester, rank) without a rank search.
func (s *Syndrome) at(tester topo.NodeID, rank int) (faulty, tested bool) {
	i := int(tester)*s.deg + rank
	return s.result.Test(i), s.tested.Test(i)
}

// Tests counts the directed tests that completed.
func (s *Syndrome) Tests() int { return s.tested.Count() }

// CollectOptions configure a syndrome collection round.
type CollectOptions struct {
	// Seed drives AdversaryRandom's coin and is recorded nowhere else;
	// the same (set, Seed, Adversary) triple always yields the same
	// syndrome.
	Seed uint64
	// Adversary is the faulty testers' reporting policy ("" means
	// invert, the classical worst case).
	Adversary Adversary
}

// Collect runs one full PMC test round against ground truth: every
// node tests each of its neighbors over the direct link. Fault-free
// testers report the testee's true status; faulty testers report
// whatever the adversary policy dictates; tests across faulty links
// never complete and stay untested.
func Collect(set *faults.Set, opts CollectOptions) *Syndrome {
	t := set.Topology()
	syn := NewSyndrome(t)
	for u := 0; u < t.Nodes(); u++ {
		uid := topo.NodeID(u)
		uFaulty := set.NodeFaulty(uid)
		rank := 0
		for d := 0; d < t.Dim(); d++ {
			syn.scratch = t.Siblings(uid, d, syn.scratch[:0])
			for _, v := range syn.scratch {
				i := u*syn.deg + rank
				rank++
				if set.LinkFaulty(uid, v) {
					continue
				}
				truth := set.NodeFaulty(v)
				r := truth
				if uFaulty {
					r = opts.Adversary.report(opts.Seed, uid, v, truth)
				}
				syn.tested.Add(i)
				if r {
					syn.result.Add(i)
				}
			}
		}
	}
	return syn
}

// syndromeJSON is the wire form: topology shape for validation plus the
// two bitsets as base64 little-endian words. Compact enough that a Q10
// syndrome is ~2.5 KiB of JSON.
type syndromeJSON struct {
	Format string `json:"format"`
	Dim    int    `json:"dim"`
	Nodes  int    `json:"nodes"`
	Degree int    `json:"degree"`
	Radix  []int  `json:"radix"`
	Tests  int    `json:"tests"`
	Tested string `json:"tested_b64"`
	Result string `json:"result_b64"`
}

func bitsB64(s bitset.Set) string {
	buf := make([]byte, 8*len(s))
	for i, w := range s {
		binary.LittleEndian.PutUint64(buf[8*i:], w)
	}
	return base64.StdEncoding.EncodeToString(buf)
}

func bitsFromB64(enc string, words int) (bitset.Set, error) {
	raw, err := base64.StdEncoding.DecodeString(enc)
	if err != nil {
		return nil, fmt.Errorf("diagnose: bad bitset encoding: %w", err)
	}
	if len(raw) != 8*words {
		return nil, fmt.Errorf("diagnose: bitset holds %d bytes, want %d", len(raw), 8*words)
	}
	s := make(bitset.Set, words)
	for i := range s {
		s[i] = binary.LittleEndian.Uint64(raw[8*i:])
	}
	return s, nil
}

// MarshalJSON encodes the syndrome in the pmc-bitset-v1 wire format.
func (s *Syndrome) MarshalJSON() ([]byte, error) {
	radix := make([]int, s.t.Dim())
	for d := range radix {
		radix[d] = s.t.Radix(d)
	}
	return json.Marshal(syndromeJSON{
		Format: SyndromeFormat,
		Dim:    s.t.Dim(),
		Nodes:  s.t.Nodes(),
		Degree: s.deg,
		Radix:  radix,
		Tests:  s.Tests(),
		Tested: bitsB64(s.tested),
		Result: bitsB64(s.result),
	})
}

// ParseSyndrome decodes a pmc-bitset-v1 JSON syndrome and validates it
// against t: a syndrome collected on one topology must not be decoded
// on another.
func ParseSyndrome(data []byte, t topo.Topology) (*Syndrome, error) {
	var w syndromeJSON
	if err := json.Unmarshal(data, &w); err != nil {
		return nil, fmt.Errorf("diagnose: bad syndrome JSON: %w", err)
	}
	if w.Format != SyndromeFormat {
		return nil, fmt.Errorf("diagnose: syndrome format %q, want %q", w.Format, SyndromeFormat)
	}
	if w.Dim != t.Dim() || w.Nodes != t.Nodes() || w.Degree != t.Degree() {
		return nil, fmt.Errorf("diagnose: syndrome shaped %d dims/%d nodes/%d degree, topology has %d/%d/%d",
			w.Dim, w.Nodes, w.Degree, t.Dim(), t.Nodes(), t.Degree())
	}
	if len(w.Radix) != t.Dim() {
		return nil, fmt.Errorf("diagnose: syndrome has %d radixes, want %d", len(w.Radix), t.Dim())
	}
	for d, m := range w.Radix {
		if m != t.Radix(d) {
			return nil, fmt.Errorf("diagnose: syndrome radix %d in dimension %d, topology has %d", m, d, t.Radix(d))
		}
	}
	syn := NewSyndrome(t)
	words := len(syn.tested)
	var err error
	if syn.tested, err = bitsFromB64(w.Tested, words); err != nil {
		return nil, err
	}
	if syn.result, err = bitsFromB64(w.Result, words); err != nil {
		return nil, err
	}
	if got := syn.Tests(); got != w.Tests {
		return nil, fmt.Errorf("diagnose: syndrome declares %d tests, bitset holds %d", w.Tests, got)
	}
	return syn, nil
}
