package diagnose

import (
	"context"
	"errors"
	"fmt"
	"sort"
	"sync"
	"time"

	"repro/internal/faults"
	"repro/internal/obs"
	"repro/internal/topo"
)

// Applier receives fault declarations. Structurally identical to
// monitor.Applier (and the loadgen targets' Fault method), so the same
// serving engine or /fault endpoint plugs into both front-ends.
type Applier interface {
	Fault(ctx context.Context, node int, down bool) error
}

// ApplyFunc adapts a function to the Applier interface.
type ApplyFunc func(ctx context.Context, node int, down bool) error

// Fault implements Applier.
func (f ApplyFunc) Fault(ctx context.Context, node int, down bool) error {
	return f(ctx, node, down)
}

// Dedup is the coalescing middleware between fault-declaring front-ends
// (monitor, diagnose) and the apply path. Two front-ends watching the
// same cube WILL declare the same node — the monitor from missed
// probes, the decoder from the syndrome — and without coalescing the
// shared journal would carry duplicate deltas. Dedup tracks the
// currently-declared view, forwards only actual state changes to the
// underlying applier, and keeps ONE merged journal in which each
// transition appears exactly once. Replaying that journal into an empty
// faults.Set reproduces the declared view, and replaying it twice is a
// no-op — the idempotent-replay property the tests pin.
//
// A forward that fails leaves the view unchanged (and unjournaled), so
// the front-end's own retry logic still applies.
type Dedup struct {
	applier Applier

	mu       sync.Mutex
	declared map[int]bool
	journal  []faults.ChurnEvent

	forwarded, coalesced, failed uint64
}

// NewDedup wraps applier. Share ONE Dedup between every front-end that
// feeds the same engine.
func NewDedup(applier Applier) *Dedup {
	return &Dedup{applier: applier, declared: make(map[int]bool)}
}

// Fault implements Applier with coalescing: a declaration that matches
// the current view is absorbed, a state change is forwarded and (on
// success) journaled.
func (d *Dedup) Fault(ctx context.Context, node int, down bool) error {
	d.mu.Lock()
	defer d.mu.Unlock()
	if d.declared[node] == down {
		d.coalesced++
		return nil
	}
	if err := d.applier.Fault(ctx, node, down); err != nil {
		d.failed++
		return err
	}
	d.declared[node] = down
	kind := faults.DeltaRecoverNode
	if down {
		kind = faults.DeltaFailNode
	}
	d.journal = append(d.journal, faults.ChurnEvent{Kind: kind, A: topo.NodeID(node)})
	d.forwarded++
	return nil
}

// Journal returns a copy of the merged declaration journal: every
// landed state change, in order, each exactly once.
func (d *Dedup) Journal() []faults.ChurnEvent {
	d.mu.Lock()
	defer d.mu.Unlock()
	return append([]faults.ChurnEvent(nil), d.journal...)
}

// Declared lists the nodes currently declared down, ascending.
func (d *Dedup) Declared() []int {
	d.mu.Lock()
	defer d.mu.Unlock()
	out := make([]int, 0, len(d.declared))
	for n, down := range d.declared {
		if down {
			out = append(out, n)
		}
	}
	sort.Ints(out)
	return out
}

// Stats reports (forwarded, coalesced, failed) declaration counts.
func (d *Dedup) Stats() (forwarded, coalesced, failed uint64) {
	d.mu.Lock()
	defer d.mu.Unlock()
	return d.forwarded, d.coalesced, d.failed
}

// Source produces one syndrome per diagnosis sweep.
type Source interface {
	Syndrome(ctx context.Context) (*Syndrome, error)
}

// SourceFunc adapts a function to the Source interface.
type SourceFunc func(ctx context.Context) (*Syndrome, error)

// Syndrome implements Source.
func (f SourceFunc) Syndrome(ctx context.Context) (*Syndrome, error) { return f(ctx) }

// SetSource collects syndromes from a ground-truth fault set — the
// in-process source for tests and the slserve self-diagnosis loop.
type SetSource struct {
	Set *faults.Set
	// Seed and Adversary parameterize the faulty testers, as in
	// Collect.
	Seed      uint64
	Adversary Adversary
}

// Syndrome implements Source.
func (s SetSource) Syndrome(context.Context) (*Syndrome, error) {
	return Collect(s.Set, CollectOptions{Seed: s.Seed, Adversary: s.Adversary}), nil
}

// ReconcilerOptions configure a Reconciler.
type ReconcilerOptions struct {
	// Topology the syndromes decode over. Required.
	Topology topo.Topology
	// Bound overrides the decode fault budget (0 means
	// Diagnosability(Topology)).
	Bound int
	// MaxCandidates caps ambiguous-candidate collection (0 means 8).
	MaxCandidates int
	// Interval is the Run sweep cadence (0 means 1s). Tick ignores it.
	Interval time.Duration
	// Registry receives the diagnose_* metrics (nil disables them).
	Registry *obs.Registry
	// Flight, when non-nil, records one ReqDiagnose flight record per
	// sweep; ambiguous sweeps carry OutcomeFailure and promote to
	// incidents.
	Flight *obs.FlightRecorder
	// Now injects the clock for decode latency (nil means time.Now).
	Now func() time.Time
}

// Reconciler closes the diagnosis loop: each Tick collects a syndrome
// from the Source, decodes it, and reconciles the identified fault set
// against what it has already declared — driving every transition
// through the Applier FIRST (exactly like internal/monitor) and
// journaling only transitions that landed. An Ambiguous decode changes
// nothing: the reconciler never acts on a guess, it just counts the
// sweep and leaves the declared view as-is until the syndrome becomes
// decodable again.
type Reconciler struct {
	source  Source
	applier Applier
	opts    ReconcilerOptions

	mu       sync.Mutex
	declared map[int]bool
	journal  []faults.ChurnEvent
	last     *Diagnosis
	lastErr  string

	sweeps, identified, ambiguous uint64
	declares, recovers            uint64
	applyErrors, sourceErrors     uint64

	mSweeps, mTests, mIdentified, mAmbiguous *obs.Counter
	mDeclared, mRecovered, mApplyErrors      *obs.Counter
	gDeclared                                *obs.Gauge
	hDecode                                  *obs.Histogram
}

// NewReconciler builds a Reconciler. Source and applier are required;
// wrap the applier in a shared Dedup when a monitor feeds the same
// engine.
func NewReconciler(source Source, applier Applier, opts ReconcilerOptions) (*Reconciler, error) {
	if source == nil || applier == nil {
		return nil, errors.New("diagnose: source and applier are required")
	}
	if opts.Topology == nil {
		return nil, errors.New("diagnose: Topology is required")
	}
	if opts.Bound <= 0 {
		opts.Bound = Diagnosability(opts.Topology)
	}
	if opts.Interval <= 0 {
		opts.Interval = time.Second
	}
	if opts.Now == nil {
		opts.Now = time.Now
	}
	r := &Reconciler{
		source:   source,
		applier:  applier,
		opts:     opts,
		declared: make(map[int]bool),
	}
	reg := opts.Registry
	r.mSweeps = reg.Counter(obs.MetricDiagnoseSweepsTotal)
	r.mTests = reg.Counter(obs.MetricDiagnoseTestsTotal)
	r.mIdentified = reg.Counter(obs.MetricDiagnoseIdentifiedTotal)
	r.mAmbiguous = reg.Counter(obs.MetricDiagnoseAmbiguousTotal)
	r.mDeclared = reg.Counter(obs.MetricDiagnoseDeclaredTotal)
	r.mRecovered = reg.Counter(obs.MetricDiagnoseRecoveredTotal)
	r.mApplyErrors = reg.Counter(obs.MetricDiagnoseApplyErrors)
	r.gDeclared = reg.Gauge(obs.MetricDiagnoseDeclaredNodes)
	r.hDecode = reg.LatencyHistogram(obs.MetricLatencyDecode)
	return r, nil
}

// TickResult summarizes one diagnosis sweep.
type TickResult struct {
	Verdict Verdict
	// Declared and Recovered count the transitions applied this sweep.
	Declared, Recovered int
	// Tests is the completed-test count of the sweep's syndrome.
	Tests int
}

// Tick runs one collect → decode → reconcile sweep. Apply failures
// leave the affected node undeclared so the transition retries next
// sweep; a source failure skips the sweep entirely.
func (r *Reconciler) Tick(ctx context.Context) (TickResult, error) {
	syn, err := r.source.Syndrome(ctx)
	if err != nil {
		r.mu.Lock()
		r.sourceErrors++
		r.lastErr = err.Error()
		r.mu.Unlock()
		return TickResult{}, fmt.Errorf("diagnose: syndrome collection: %w", err)
	}
	start := r.opts.Now()
	diag := Decode(syn, Options{Bound: r.opts.Bound, MaxCandidates: r.opts.MaxCandidates})
	decodeUS := r.opts.Now().Sub(start).Microseconds()

	res := TickResult{Verdict: diag.Verdict, Tests: diag.Stats.Tests}
	r.mu.Lock()
	r.sweeps++
	r.last = diag
	r.lastErr = ""
	r.mSweeps.Inc()
	r.mTests.Add(int64(diag.Stats.Tests))
	r.hDecode.Observe(decodeUS)
	if diag.Verdict == VerdictAmbiguous {
		r.ambiguous++
		r.mAmbiguous.Inc()
		r.mu.Unlock()
		r.flight(diag, decodeUS)
		return res, nil
	}
	r.identified++
	r.mIdentified.Inc()

	// Reconcile: the decoded set is the desired declared view. Apply
	// first, journal only what landed — the applier's refusal (full
	// queue, draining engine) must leave the journal truthful.
	want := make(map[int]bool, len(diag.Faulty))
	for _, a := range diag.Faulty {
		want[int(a)] = true
	}
	for _, a := range diag.Faulty {
		node := int(a)
		if r.declared[node] {
			continue
		}
		if err := r.applier.Fault(ctx, node, true); err != nil {
			r.applyErrors++
			r.mApplyErrors.Inc()
			continue
		}
		r.declared[node] = true
		r.journal = append(r.journal, faults.ChurnEvent{Kind: faults.DeltaFailNode, A: a})
		r.declares++
		r.mDeclared.Inc()
		r.gDeclared.Add(1)
		res.Declared++
	}
	var stale []int
	for node, down := range r.declared {
		if down && !want[node] {
			stale = append(stale, node)
		}
	}
	sort.Ints(stale)
	for _, node := range stale {
		if err := r.applier.Fault(ctx, node, false); err != nil {
			r.applyErrors++
			r.mApplyErrors.Inc()
			continue
		}
		r.declared[node] = false
		r.journal = append(r.journal, faults.ChurnEvent{Kind: faults.DeltaRecoverNode, A: topo.NodeID(node)})
		r.recovers++
		r.mRecovered.Inc()
		r.gDeclared.Add(-1)
		res.Recovered++
	}
	r.mu.Unlock()
	r.flight(diag, decodeUS)
	return res, nil
}

// flight emits the per-sweep flight record: Items carries the decoded
// fault count, an ambiguous sweep resolves as a failure (which the
// recorder promotes as "diagnosis-ambiguous").
func (r *Reconciler) flight(diag *Diagnosis, decodeUS int64) {
	f := r.opts.Flight
	if f == nil {
		return
	}
	outcome := obs.OutcomeNone
	items := len(diag.Faulty)
	if diag.Verdict == VerdictAmbiguous {
		outcome = obs.OutcomeFailure
		items = len(diag.Candidates)
	}
	rec := obs.FlightRecord{
		Kind:      obs.ReqDiagnose,
		LatencyUS: decodeUS,
		Items:     items,
		Outcome:   outcome,
	}
	if reason := f.Record(&rec); reason != "" {
		f.Promote(&rec, reason, nil)
	}
}

// Run sweeps on Options.Interval until ctx is done. Production entry
// point; tests call Tick directly.
func (r *Reconciler) Run(ctx context.Context) {
	t := time.NewTicker(r.opts.Interval)
	defer t.Stop()
	for {
		select {
		case <-ctx.Done():
			return
		case <-t.C:
			_, _ = r.Tick(ctx)
		}
	}
}

// Journal returns a copy of the declaration journal (fail/recover
// events that landed through the applier, in order). When the applier
// is a shared Dedup, prefer Dedup.Journal — the merged view.
func (r *Reconciler) Journal() []faults.ChurnEvent {
	r.mu.Lock()
	defer r.mu.Unlock()
	return append([]faults.ChurnEvent(nil), r.journal...)
}

// Status is the point-in-time snapshot behind the /diagnosis endpoint.
type Status struct {
	Nodes int `json:"nodes"`
	Bound int `json:"bound"`
	// Verdict of the latest sweep ("" before the first one).
	Verdict string `json:"verdict,omitempty"`
	// Faulty is the latest identified set; Candidates counts the
	// consistent sets of the latest ambiguous decode.
	Faulty     []int `json:"faulty,omitempty"`
	Candidates int   `json:"candidates,omitempty"`
	Exhaustive bool  `json:"exhaustive"`
	// Declared is the reconciler's currently-declared view, ascending.
	Declared []int `json:"declared"`

	Sweeps       uint64 `json:"sweeps"`
	Identified   uint64 `json:"identified"`
	Ambiguous    uint64 `json:"ambiguous"`
	Declarations uint64 `json:"declarations"`
	Recoveries   uint64 `json:"recoveries"`
	ApplyErrors  uint64 `json:"apply_errors"`
	SourceErrors uint64 `json:"source_errors"`
	JournalLen   int    `json:"journal_len"`
	LastError    string `json:"last_error,omitempty"`
}

// Status snapshots the reconciler.
func (r *Reconciler) Status() Status {
	r.mu.Lock()
	defer r.mu.Unlock()
	st := Status{
		Nodes:        r.opts.Topology.Nodes(),
		Bound:        r.opts.Bound,
		Sweeps:       r.sweeps,
		Identified:   r.identified,
		Ambiguous:    r.ambiguous,
		Declarations: r.declares,
		Recoveries:   r.recovers,
		ApplyErrors:  r.applyErrors,
		SourceErrors: r.sourceErrors,
		JournalLen:   len(r.journal),
		LastError:    r.lastErr,
		Exhaustive:   true,
	}
	if r.last != nil {
		st.Verdict = r.last.Verdict.String()
		st.Exhaustive = r.last.Exhaustive
		for _, a := range r.last.Faulty {
			st.Faulty = append(st.Faulty, int(a))
		}
		st.Candidates = len(r.last.Candidates)
	}
	for n, down := range r.declared {
		if down {
			st.Declared = append(st.Declared, n)
		}
	}
	sort.Ints(st.Declared)
	if st.Declared == nil {
		st.Declared = []int{}
	}
	return st
}

// ErrAmbiguous is returned by ReplaySchedule when a step's syndrome
// does not decode to a unique fault set — the schedule drove the cube
// past the diagnosability bound.
var ErrAmbiguous = errors.New("diagnose: syndrome is ambiguous")

// ReplayOptions configure ReplaySchedule.
type ReplayOptions struct {
	Seed      uint64
	Adversary Adversary
	// Bound overrides the decode budget (0 means Diagnosability).
	Bound int
}

// ReplaySchedule replays a ground-truth churn schedule through the
// diagnosis pipeline: after each event it collects a fresh syndrome
// from the evolving truth set, decodes it, and emits the declarations a
// reconciler would drive — link events pass through unchanged (PMC
// tests diagnose nodes; a faulty link merely removes its two tests).
// While every prefix of the schedule keeps the node-fault count within
// the bound, the decode is exact and the emitted schedule is
// event-for-event identical to the input — which is precisely what the
// chaos differential asserts before replaying routes over it. A step
// whose syndrome decodes Ambiguous (or to a wrong set, which only a
// beyond-bound schedule can produce) returns an error naming the step.
func ReplaySchedule(tp topo.Topology, events []faults.ChurnEvent, opts ReplayOptions) ([]faults.ChurnEvent, error) {
	truth := faults.NewSet(tp)
	declared := make(map[topo.NodeID]bool)
	out := make([]faults.ChurnEvent, 0, len(events))
	for i, ev := range events {
		if err := truth.Apply(ev); err != nil {
			return nil, fmt.Errorf("diagnose: replay step %d (%v): %w", i, ev.Kind, err)
		}
		isLink := ev.Kind == faults.DeltaFailLink || ev.Kind == faults.DeltaRecoverLink
		if isLink {
			out = append(out, ev)
		}
		syn := Collect(truth, CollectOptions{Seed: opts.Seed + uint64(i), Adversary: opts.Adversary})
		diag := Decode(syn, Options{Bound: opts.Bound})
		if diag.Verdict != VerdictIdentified {
			return nil, fmt.Errorf("diagnose: replay step %d: %w (%d candidates)", i, ErrAmbiguous, len(diag.Candidates))
		}
		want := make(map[topo.NodeID]bool, len(diag.Faulty))
		for _, a := range diag.Faulty {
			want[a] = true
			if !declared[a] {
				declared[a] = true
				out = append(out, faults.ChurnEvent{Kind: faults.DeltaFailNode, A: a})
			}
		}
		var recovered []topo.NodeID
		for a, down := range declared {
			if down && !want[a] {
				recovered = append(recovered, a)
			}
		}
		sort.Slice(recovered, func(x, y int) bool { return recovered[x] < recovered[y] })
		for _, a := range recovered {
			declared[a] = false
			out = append(out, faults.ChurnEvent{Kind: faults.DeltaRecoverNode, A: a})
		}
	}
	return out, nil
}
