package diagnose

import (
	"encoding/json"
	"strings"
	"testing"

	"repro/internal/faults"
	"repro/internal/topo"
)

func TestParseAdversary(t *testing.T) {
	for _, adv := range Adversaries() {
		got, err := ParseAdversary(string(adv))
		if err != nil || got != adv {
			t.Fatalf("ParseAdversary(%q) = %v, %v", adv, got, err)
		}
	}
	if got, err := ParseAdversary(""); err != nil || got != AdversaryInvert {
		t.Fatalf("empty adversary = %v, %v; want invert default", got, err)
	}
	if _, err := ParseAdversary("liar"); err == nil {
		t.Fatal("unknown adversary accepted")
	}
}

// TestCollectDeterminism: the same (set, seed, adversary) always yields
// an identical syndrome, and the random adversary actually depends on
// the seed.
func TestCollectDeterminism(t *testing.T) {
	tp, err := topo.NewCube(4)
	if err != nil {
		t.Fatal(err)
	}
	set := faults.NewSet(tp)
	for _, a := range []topo.NodeID{2, 7, 13} {
		if err := set.FailNode(a); err != nil {
			t.Fatal(err)
		}
	}
	a := Collect(set, CollectOptions{Seed: 9, Adversary: AdversaryRandom})
	b := Collect(set, CollectOptions{Seed: 9, Adversary: AdversaryRandom})
	aj, _ := json.Marshal(a)
	bj, _ := json.Marshal(b)
	if string(aj) != string(bj) {
		t.Fatal("same seed produced different syndromes")
	}
	c := Collect(set, CollectOptions{Seed: 10, Adversary: AdversaryRandom})
	cj, _ := json.Marshal(c)
	if string(aj) == string(cj) {
		t.Fatal("seed change did not perturb the random adversary")
	}
}

// TestSyndromeJSONRoundTrip: marshal → parse preserves every test and
// the decode result, across topologies.
func TestSyndromeJSONRoundTrip(t *testing.T) {
	cube, err := topo.NewCube(4)
	if err != nil {
		t.Fatal(err)
	}
	gh, err := topo.NewMixed([]int{2, 3, 2})
	if err != nil {
		t.Fatal(err)
	}
	for _, tp := range []topo.Topology{cube, gh} {
		set := faults.NewSet(tp)
		if err := set.FailNode(3); err != nil {
			t.Fatal(err)
		}
		syn := Collect(set, CollectOptions{Seed: 4, Adversary: AdversaryInvert})
		blob, err := json.Marshal(syn)
		if err != nil {
			t.Fatal(err)
		}
		back, err := ParseSyndrome(blob, tp)
		if err != nil {
			t.Fatalf("ParseSyndrome: %v", err)
		}
		if back.Tests() != syn.Tests() {
			t.Fatalf("round trip lost tests: %d != %d", back.Tests(), syn.Tests())
		}
		wantExact(t, Decode(back, Options{}), []topo.NodeID{3}, "round trip")
		// Every (tester, testee, result, tested) triple survives.
		for u := 0; u < tp.Nodes(); u++ {
			uid := topo.NodeID(u)
			var sib []topo.NodeID
			for d := 0; d < tp.Dim(); d++ {
				sib = tp.Siblings(uid, d, sib[:0])
				for _, v := range sib {
					gr, gt := syn.Result(uid, v)
					br, bt := back.Result(uid, v)
					if gr != br || gt != bt {
						t.Fatalf("test %d->%d changed: (%v,%v) != (%v,%v)", u, v, gr, gt, br, bt)
					}
				}
			}
		}
	}
}

func TestParseSyndromeRejectsMismatch(t *testing.T) {
	q3, err := topo.NewCube(3)
	if err != nil {
		t.Fatal(err)
	}
	q4, err := topo.NewCube(4)
	if err != nil {
		t.Fatal(err)
	}
	blob, err := json.Marshal(Collect(faults.NewSet(q3), CollectOptions{}))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := ParseSyndrome(blob, q4); err == nil {
		t.Fatal("Q3 syndrome parsed against Q4 topology")
	}
	for _, bad := range []string{
		`{`,
		`{"format":"something-else"}`,
		strings.Replace(string(blob), SyndromeFormat, "pmc-bitset-v0", 1),
	} {
		if _, err := ParseSyndrome([]byte(bad), q3); err == nil {
			t.Fatalf("bad blob parsed: %s", bad)
		}
	}
}

func TestRecordPanicsOnNonAdjacent(t *testing.T) {
	tp, err := topo.NewCube(3)
	if err != nil {
		t.Fatal(err)
	}
	syn := NewSyndrome(tp)
	defer func() {
		if recover() == nil {
			t.Fatal("Record accepted a non-adjacent pair")
		}
	}()
	syn.Record(0, 3, true)
}
