// Package diagnose closes the test→diagnose→journal→route loop: it
// collects PMC-model neighbor-test syndromes, decodes them into the
// faulty node set, and feeds the decoded set to the same applier-first
// journal that declared faults and the probe monitor use — so routing
// (the safety-level unicasting of Wu's ICPP 1995 paper, see PAPER.md)
// can run against a fault view that was *diagnosed* rather than
// declared.
//
// In the PMC (Preparata–Metze–Chien) model each node tests its n
// neighbors and reports 0 (fault-free) or 1 (faulty). Reports from
// fault-free testers are truthful; reports from faulty testers are
// arbitrary. Here "arbitrary" is made deterministic by an Adversary
// policy seeded per (seed, tester, testee), so every syndrome is
// replayable. Tests across faulty links never complete and are
// recorded as untested — they contribute no constraint, which is how
// link faults coexist with node diagnosis.
//
// The key invariant is soundness under the diagnosability bound: the
// n-cube is n-diagnosable (n >= 3), so whenever |F| <= Bound the
// decoder returns VerdictIdentified with exactly the true fault set,
// under every adversary. Beyond the bound the decoder never guesses
// silently — worst-case adversaries (invert, stealth) force
// VerdictAmbiguous with the surviving candidate sets, and any
// Identified verdict a benign adversary permits is still a consistent
// explanation within the bound. docs/DIAGNOSIS.md spells out the
// guarantees, the {v} ∪ N(v) blind spot behind that asymmetry, and
// the operator runbook.
package diagnose
