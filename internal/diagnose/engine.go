package diagnose

import (
	"context"

	"repro/internal/simnet"
	"repro/internal/topo"
)

// EngineSource collects syndromes through simnet self-test exchanges:
// every live node unicasts each neighbor over the message-passing
// engine and reads the outcome as its test result, so the syndrome is
// produced by the same inbox/goroutine machinery that carries real
// traffic — not read off the fault oracle. Faulty nodes run no code;
// the Adversary policy synthesizes their (arbitrary, per the PMC
// model) reports. Run a GS phase on the engine before the first sweep
// so levels are in place.
type EngineSource struct {
	Eng       *simnet.Engine
	Seed      uint64
	Adversary Adversary
}

// Syndrome implements Source.
func (s EngineSource) Syndrome(context.Context) (*Syndrome, error) {
	set := s.Eng.Faults()
	t := set.Topology()
	syn := NewSyndrome(t)
	var scratch []topo.NodeID
	for u := 0; u < t.Nodes(); u++ {
		uid := topo.NodeID(u)
		uFaulty := set.NodeFaulty(uid)
		for d := 0; d < t.Dim(); d++ {
			scratch = t.Siblings(uid, d, scratch[:0])
			for _, v := range scratch {
				if set.LinkFaulty(uid, v) {
					continue
				}
				if uFaulty {
					syn.Record(uid, v, s.Adversary.report(s.Seed, uid, v, set.NodeFaulty(v)))
					continue
				}
				faulty, tested, err := s.Eng.SelfTest(uid, v)
				if err != nil {
					return nil, err
				}
				if tested {
					syn.Record(uid, v, faulty)
				}
			}
		}
	}
	return syn, nil
}
