package diagnose

import (
	"context"
	"errors"
	"reflect"
	"sync"
	"testing"

	"repro/internal/faults"
	"repro/internal/monitor"
	"repro/internal/obs"
	"repro/internal/simnet"
	"repro/internal/topo"
)

// recordingApplier applies declarations onto a faults.Set and counts
// calls; refuse makes every call fail.
type recordingApplier struct {
	mu     sync.Mutex
	set    *faults.Set
	calls  int
	refuse bool
}

func (a *recordingApplier) Fault(_ context.Context, node int, down bool) error {
	a.mu.Lock()
	defer a.mu.Unlock()
	a.calls++
	if a.refuse {
		return errors.New("applier refused")
	}
	if down {
		return a.set.FailNode(topo.NodeID(node))
	}
	return a.set.RecoverNode(topo.NodeID(node))
}

// TestReconcilerTickLifecycle drives a fault through inject → declare →
// recover and checks the applier-first journal at each step.
func TestReconcilerTickLifecycle(t *testing.T) {
	tp, err := topo.NewCube(4)
	if err != nil {
		t.Fatal(err)
	}
	truth := faults.NewSet(tp)
	declared := faults.NewSet(tp)
	app := &recordingApplier{set: declared}
	reg := obs.NewRegistry()
	rec, err := NewReconciler(SetSource{Set: truth, Adversary: AdversaryInvert}, app,
		ReconcilerOptions{Topology: tp, Registry: reg})
	if err != nil {
		t.Fatal(err)
	}

	// Clean cube: nothing declared.
	res, err := rec.Tick(context.Background())
	if err != nil || res.Verdict != VerdictIdentified || res.Declared != 0 {
		t.Fatalf("clean tick: %+v err=%v", res, err)
	}

	// Three faults appear: one sweep declares all three.
	for _, a := range []topo.NodeID{2, 9, 11} {
		if err := truth.FailNode(a); err != nil {
			t.Fatal(err)
		}
	}
	res, err = rec.Tick(context.Background())
	if err != nil || res.Declared != 3 {
		t.Fatalf("fault tick: %+v err=%v", res, err)
	}
	for _, a := range []topo.NodeID{2, 9, 11} {
		if !declared.NodeFaulty(a) {
			t.Fatalf("node %d not declared into the applied set", a)
		}
	}

	// One recovers: the next sweep un-declares exactly it.
	if err := truth.RecoverNode(9); err != nil {
		t.Fatal(err)
	}
	res, err = rec.Tick(context.Background())
	if err != nil || res.Recovered != 1 || res.Declared != 0 {
		t.Fatalf("recover tick: %+v err=%v", res, err)
	}
	if declared.NodeFaulty(9) {
		t.Fatal("node 9 still declared after recovery")
	}

	// The journal replays to exactly the declared view, idempotently.
	j := rec.Journal()
	replay := faults.NewSet(tp)
	for _, ev := range j {
		if err := replay.Apply(ev); err != nil {
			t.Fatalf("journal replay: %v", err)
		}
	}
	if !reflect.DeepEqual(replay.FaultyNodes(), declared.FaultyNodes()) {
		t.Fatalf("journal replay %v != declared %v", replay.FaultyNodes(), declared.FaultyNodes())
	}
	st := rec.Status()
	if st.Verdict != "identified" || st.Sweeps != 3 || len(st.Declared) != 2 {
		t.Fatalf("status: %+v", st)
	}
}

// TestReconcilerAmbiguousHoldsState pins the safety rule: an ambiguous
// decode must not churn the declared view, and must surface through the
// counters and the flight recorder as a diagnosis-ambiguous incident.
func TestReconcilerAmbiguousHoldsState(t *testing.T) {
	tp, err := topo.NewCube(3)
	if err != nil {
		t.Fatal(err)
	}
	truth := faults.NewSet(tp)
	declared := faults.NewSet(tp)
	app := &recordingApplier{set: declared}
	flight := obs.NewFlightRecorder(obs.FlightOptions{Records: 16, Incidents: 4})
	rec, err := NewReconciler(SetSource{Set: truth, Adversary: AdversaryInvert}, app,
		ReconcilerOptions{Topology: tp, Flight: flight})
	if err != nil {
		t.Fatal(err)
	}

	// Declare one real fault first.
	if err := truth.FailNode(5); err != nil {
		t.Fatal(err)
	}
	if _, err := rec.Tick(context.Background()); err != nil {
		t.Fatal(err)
	}

	// Push past the bound with the even-parity independent set: the
	// all-ones invert syndrome is ambiguous.
	for _, a := range []topo.NodeID{0b000, 0b011, 0b110} {
		if err := truth.FailNode(a); err != nil {
			t.Fatal(err)
		}
	}
	before := app.calls
	res, err := rec.Tick(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if res.Verdict != VerdictAmbiguous || res.Declared != 0 || res.Recovered != 0 {
		t.Fatalf("ambiguous tick acted: %+v", res)
	}
	if app.calls != before {
		t.Fatalf("ambiguous tick reached the applier (%d calls)", app.calls-before)
	}
	if !declared.NodeFaulty(5) {
		t.Fatal("ambiguity must not roll back earlier declarations")
	}
	st := rec.Status()
	if st.Ambiguous != 1 || st.Verdict != "ambiguous" {
		t.Fatalf("status after ambiguity: %+v", st)
	}
	incidents := flight.Incidents()
	if len(incidents.Incidents) == 0 || incidents.Incidents[0].Reason != "diagnosis-ambiguous" {
		t.Fatalf("want a diagnosis-ambiguous incident, got %+v", incidents)
	}
}

// TestReconcilerApplyErrorRetries: a refused apply leaves the node
// undeclared and the journal empty; the next sweep retries and lands.
func TestReconcilerApplyErrorRetries(t *testing.T) {
	tp, err := topo.NewCube(3)
	if err != nil {
		t.Fatal(err)
	}
	truth := faults.NewSet(tp)
	declared := faults.NewSet(tp)
	app := &recordingApplier{set: declared, refuse: true}
	rec, err := NewReconciler(SetSource{Set: truth, Adversary: AdversaryTruthful}, app,
		ReconcilerOptions{Topology: tp})
	if err != nil {
		t.Fatal(err)
	}
	if err := truth.FailNode(4); err != nil {
		t.Fatal(err)
	}
	res, err := rec.Tick(context.Background())
	if err != nil || res.Declared != 0 {
		t.Fatalf("refused tick: %+v err=%v", res, err)
	}
	if len(rec.Journal()) != 0 {
		t.Fatal("journal recorded a transition that never landed")
	}
	app.mu.Lock()
	app.refuse = false
	app.mu.Unlock()
	res, err = rec.Tick(context.Background())
	if err != nil || res.Declared != 1 {
		t.Fatalf("retry tick: %+v err=%v", res, err)
	}
	if !declared.NodeFaulty(4) {
		t.Fatal("retry did not land")
	}
}

// TestDedupCoalescesMonitorAndDiagnose is the duplicate-declaration
// fix: a monitor and a diagnosis reconciler feeding the same engine
// through ONE shared Dedup produce exactly one applier call and one
// journal delta per actual transition, however many front-ends declare
// it — and the merged journal replays idempotently.
func TestDedupCoalescesMonitorAndDiagnose(t *testing.T) {
	tp, err := topo.NewCube(4)
	if err != nil {
		t.Fatal(err)
	}
	truth := faults.NewSet(tp)
	declared := faults.NewSet(tp)
	app := &recordingApplier{set: declared}
	dedup := NewDedup(app)

	mon, err := monitor.New(
		monitor.ProbeFunc(func(_ context.Context, node int) error {
			if truth.NodeFaulty(topo.NodeID(node)) {
				return errors.New("down")
			}
			return nil
		}),
		dedup,
		monitor.Options{Nodes: tp.Nodes(), FailK: 1, RecoverK: 1})
	if err != nil {
		t.Fatal(err)
	}
	rec, err := NewReconciler(SetSource{Set: truth, Adversary: AdversaryInvert}, dedup,
		ReconcilerOptions{Topology: tp})
	if err != nil {
		t.Fatal(err)
	}

	// Both front-ends see the same fault and both declare it.
	if err := truth.FailNode(7); err != nil {
		t.Fatal(err)
	}
	mon.Tick(context.Background())
	if _, err := rec.Tick(context.Background()); err != nil {
		t.Fatal(err)
	}
	mon.Tick(context.Background())
	if _, err := rec.Tick(context.Background()); err != nil {
		t.Fatal(err)
	}

	if app.calls != 1 {
		t.Fatalf("underlying applier saw %d calls, want 1", app.calls)
	}
	if j := dedup.Journal(); len(j) != 1 ||
		j[0] != (faults.ChurnEvent{Kind: faults.DeltaFailNode, A: 7}) {
		t.Fatalf("merged journal %v, want one fail-node(7) delta", j)
	}
	forwarded, coalesced, _ := dedup.Stats()
	if forwarded != 1 || coalesced == 0 {
		t.Fatalf("dedup stats forwarded=%d coalesced=%d", forwarded, coalesced)
	}
	if got := dedup.Declared(); !reflect.DeepEqual(got, []int{7}) {
		t.Fatalf("declared view %v", got)
	}

	// Recovery flows through once, too.
	if err := truth.RecoverNode(7); err != nil {
		t.Fatal(err)
	}
	mon.Tick(context.Background())
	if _, err := rec.Tick(context.Background()); err != nil {
		t.Fatal(err)
	}
	mon.Tick(context.Background())
	if app.calls != 2 {
		t.Fatalf("underlying applier saw %d calls, want 2", app.calls)
	}

	// Idempotent replay: the merged journal applied once — or twice —
	// onto an empty set reproduces the declared view exactly.
	j := dedup.Journal()
	if len(j) != 2 {
		t.Fatalf("merged journal %v, want fail+recover", j)
	}
	replay := faults.NewSet(tp)
	for pass := 0; pass < 2; pass++ {
		for _, ev := range j {
			if err := replay.Apply(ev); err != nil {
				t.Fatalf("replay pass %d: %v", pass, err)
			}
		}
	}
	if !reflect.DeepEqual(replay.FaultyNodes(), declared.FaultyNodes()) {
		t.Fatalf("replayed %v != declared %v", replay.FaultyNodes(), declared.FaultyNodes())
	}
}

// TestReplayScheduleIdentity: while a schedule keeps the node-fault
// count within the bound, diagnosing after every event reproduces the
// schedule event for event, for every adversary.
func TestReplayScheduleIdentity(t *testing.T) {
	tp, err := topo.NewCube(4)
	if err != nil {
		t.Fatal(err)
	}
	events := []faults.ChurnEvent{
		{Kind: faults.DeltaFailNode, A: 3},
		{Kind: faults.DeltaFailLink, A: 0, B: 8},
		{Kind: faults.DeltaFailNode, A: 12},
		{Kind: faults.DeltaRecoverNode, A: 3},
		{Kind: faults.DeltaFailNode, A: 5},
		{Kind: faults.DeltaRecoverLink, A: 0, B: 8},
		{Kind: faults.DeltaFailNode, A: 9},
		{Kind: faults.DeltaRecoverNode, A: 12},
	}
	for _, adv := range Adversaries() {
		got, err := ReplaySchedule(tp, events, ReplayOptions{Seed: 21, Adversary: adv})
		if err != nil {
			t.Fatalf("adv=%s: %v", adv, err)
		}
		if !reflect.DeepEqual(got, events) {
			t.Fatalf("adv=%s: diagnosed schedule %v != truth %v", adv, got, events)
		}
	}
}

// TestReplayScheduleAmbiguousErrors: a schedule that pushes past the
// bound makes the replay fail loudly with ErrAmbiguous instead of
// declaring a guess.
func TestReplayScheduleAmbiguousErrors(t *testing.T) {
	tp, err := topo.NewCube(3)
	if err != nil {
		t.Fatal(err)
	}
	events := []faults.ChurnEvent{
		{Kind: faults.DeltaFailNode, A: 0b000},
		{Kind: faults.DeltaFailNode, A: 0b011},
		{Kind: faults.DeltaFailNode, A: 0b101},
		{Kind: faults.DeltaFailNode, A: 0b110},
	}
	_, err = ReplaySchedule(tp, events, ReplayOptions{Adversary: AdversaryInvert})
	if !errors.Is(err, ErrAmbiguous) {
		t.Fatalf("err = %v, want ErrAmbiguous", err)
	}
}

// TestEngineSourceMatchesGroundTruth: the syndrome assembled from real
// simnet self-test exchanges equals the one collected directly from
// the fault oracle, and decodes to the engine's true fault set.
func TestEngineSourceMatchesGroundTruth(t *testing.T) {
	tp, err := topo.NewCube(4)
	if err != nil {
		t.Fatal(err)
	}
	set := faults.NewSet(tp)
	truth := []topo.NodeID{1, 6, 12}
	for _, a := range truth {
		if err := set.FailNode(a); err != nil {
			t.Fatal(err)
		}
	}
	eng := simnet.New(set)
	defer eng.Close()
	eng.RunGS(2 * tp.Dim())

	for _, adv := range Adversaries() {
		src := EngineSource{Eng: eng, Seed: 17, Adversary: adv}
		syn, err := src.Syndrome(context.Background())
		if err != nil {
			t.Fatalf("adv=%s: %v", adv, err)
		}
		want := Collect(set, CollectOptions{Seed: 17, Adversary: adv})
		if syn.Tests() != want.Tests() {
			t.Fatalf("adv=%s: %d tests, want %d", adv, syn.Tests(), want.Tests())
		}
		wantExact(t, Decode(syn, Options{}), truth, "engine adv="+string(adv))
	}

	// And through a reconciler: one sweep declares the engine's faults.
	declared := faults.NewSet(tp)
	app := &recordingApplier{set: declared}
	rec, err := NewReconciler(EngineSource{Eng: eng, Adversary: AdversaryInvert}, app,
		ReconcilerOptions{Topology: tp})
	if err != nil {
		t.Fatal(err)
	}
	res, err := rec.Tick(context.Background())
	if err != nil || res.Declared != len(truth) {
		t.Fatalf("engine tick: %+v err=%v", res, err)
	}
	if !reflect.DeepEqual(declared.FaultyNodes(), set.FaultyNodes()) {
		t.Fatalf("declared %v != truth %v", declared.FaultyNodes(), set.FaultyNodes())
	}
}
