package diagnose

import (
	"context"
	"fmt"
	"io"
	"net/http"
	"time"

	"repro/internal/topo"
)

// HTTPSource fetches a serialized syndrome from an upstream slserve
// /syndrome endpoint and parses it against the local topology, so a
// downstream server can diagnose — not merely mirror — the upstream's
// fault state. A shape mismatch between the two servers surfaces as a
// parse error on the first sweep, never as a silent misdecode.
type HTTPSource struct {
	// URL is the full syndrome URL including any seed/adversary query
	// parameters, e.g. "http://up:8080/syndrome?seed=7&adversary=invert".
	URL string
	// Topology validates the fetched syndrome's shape.
	Topology topo.Topology
	// Client overrides http.DefaultClient (a 5s-timeout client is used
	// when both are nil-ish; syndromes are small but O(N·n) in size).
	Client *http.Client
}

// Syndrome implements Source.
func (s HTTPSource) Syndrome(ctx context.Context) (*Syndrome, error) {
	client := s.Client
	if client == nil {
		client = &http.Client{Timeout: 5 * time.Second}
	}
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, s.URL, nil)
	if err != nil {
		return nil, fmt.Errorf("diagnose: syndrome request: %w", err)
	}
	resp, err := client.Do(req)
	if err != nil {
		return nil, fmt.Errorf("diagnose: syndrome fetch: %w", err)
	}
	defer resp.Body.Close()
	body, err := io.ReadAll(io.LimitReader(resp.Body, 64<<20))
	if err != nil {
		return nil, fmt.Errorf("diagnose: syndrome read: %w", err)
	}
	if resp.StatusCode != http.StatusOK {
		return nil, fmt.Errorf("diagnose: syndrome fetch: %s returned %s", s.URL, resp.Status)
	}
	return ParseSyndrome(body, s.Topology)
}
