package diagnose

import (
	"fmt"
	"sort"

	"repro/internal/bitset"
	"repro/internal/topo"
)

// Verdict is the decoder's confidence class.
type Verdict uint8

const (
	// VerdictIdentified: exactly one fault set of size ≤ bound is
	// consistent with the syndrome — under the |F| ≤ bound assumption
	// it IS the fault set.
	VerdictIdentified Verdict = iota
	// VerdictAmbiguous: zero or several consistent fault sets within
	// the bound (the bound was exceeded, or the search was truncated).
	// Candidates carries what the search found.
	VerdictAmbiguous
)

// String names the verdict for status surfaces.
func (v Verdict) String() string {
	switch v {
	case VerdictIdentified:
		return "identified"
	case VerdictAmbiguous:
		return "ambiguous"
	}
	return fmt.Sprintf("verdict(%d)", uint8(v))
}

// Diagnosability returns the default PMC fault bound for t: the
// largest |F| for which every syndrome decodes to a unique fault set.
// For the binary cube the classical result is n for n ≥ 3 (Q2 is only
// 1-diagnosable — its 4-cycle admits two consistent 2-sets — and Q1 is
// 0-diagnosable). For generalized hypercubes the bound is conservative:
// the degree, capped by Karp's global necessary condition
// |F| ≤ (N-1)/2, which complete-graph dimensions can hit first.
func Diagnosability(t topo.Topology) int {
	if c, ok := t.(*topo.Cube); ok {
		switch c.Dim() {
		case 1:
			return 0
		case 2:
			return 1
		default:
			return c.Dim()
		}
	}
	b := t.Degree()
	if m := (t.Nodes() - 1) / 2; m < b {
		b = m
	}
	return b
}

// DecodeStats instrument one decode for the diagnose_* metrics.
type DecodeStats struct {
	Tests    int `json:"tests"`    // completed directed tests consumed
	Forced   int `json:"forced"`   // nodes labeled before any branching
	Branches int `json:"branches"` // branch-and-bound tree nodes visited
}

// Options tune Decode and DiagnoseLocal. The zero value is the
// recommended configuration.
type Options struct {
	// Bound is the assumed maximum fault count (0 means
	// Diagnosability(t)). Decoding is only guaranteed exact while the
	// true fault count stays within it.
	Bound int
	// MaxCandidates caps the consistent fault sets an Ambiguous verdict
	// collects before the search stops (0 means 8, minimum 2 — one
	// short of proving uniqueness is useless).
	MaxCandidates int
	// MaxBranches is a safety valve on the search tree (0 means 1<<20).
	// Exceeding it yields Ambiguous with Exhaustive=false.
	MaxBranches int
}

func (o Options) withDefaults(t topo.Topology) Options {
	if o.Bound <= 0 {
		o.Bound = Diagnosability(t)
	}
	if o.MaxCandidates <= 0 {
		o.MaxCandidates = 8
	}
	if o.MaxCandidates < 2 {
		o.MaxCandidates = 2
	}
	if o.MaxBranches <= 0 {
		o.MaxBranches = 1 << 20
	}
	return o
}

// Diagnosis is the decoder's output.
type Diagnosis struct {
	Verdict Verdict `json:"verdict"`
	// Bound is the fault budget the decode assumed.
	Bound int `json:"bound"`
	// Faulty is the identified fault set (ascending), nil unless
	// Verdict is VerdictIdentified.
	Faulty []topo.NodeID `json:"faulty"`
	// Candidates holds the consistent fault sets an ambiguous decode
	// found, each ascending, ordered by discovery; empty means NO set
	// of ≤ Bound faults explains the syndrome (the bound is certainly
	// exceeded).
	Candidates [][]topo.NodeID `json:"candidates,omitempty"`
	// Exhaustive reports that the search ran to completion: the listed
	// candidates are ALL consistent sets within the bound.
	Exhaustive bool        `json:"exhaustive"`
	Stats      DecodeStats `json:"stats"`
}

// Node labels during decoding.
const (
	labelUnknown int8 = iota
	labelGood
	labelBad
)

// decoder is the shared constraint-propagation + branch-and-bound
// engine behind Decode (whole cube) and DiagnoseLocal (a 2-ball).
type decoder struct {
	t   topo.Topology
	syn *Syndrome
	// allowed restricts the decode to a node subset (nil = all nodes);
	// tests with either endpoint outside are ignored.
	allowed bitset.Set
	nodes   []topo.NodeID // the nodes being labeled
	bound   int

	labels   []int8
	badCount int
	// trail records labeled nodes for backtracking undo.
	trail []topo.NodeID
	// queue is the propagation worklist (indices into labels).
	queue []topo.NodeID

	branches    int
	maxBranches int
	truncated   bool

	// onLeaf consumes one full consistent labeling; returning false
	// stops the search.
	onLeaf func(d *decoder) bool

	scratch []topo.NodeID
}

func newDecoder(syn *Syndrome, allowed bitset.Set, nodes []topo.NodeID, opts Options) *decoder {
	t := syn.Topology()
	return &decoder{
		t:           t,
		syn:         syn,
		allowed:     allowed,
		nodes:       nodes,
		bound:       opts.Bound,
		labels:      make([]int8, t.Nodes()),
		maxBranches: opts.MaxBranches,
	}
}

func (d *decoder) in(v topo.NodeID) bool {
	return d.allowed == nil || d.allowed.Test(int(v))
}

// force labels v, returning false on contradiction (v already carries
// the opposite label, or the fault budget is exhausted). Newly labeled
// nodes join the propagation queue.
func (d *decoder) force(v topo.NodeID, lab int8) bool {
	switch d.labels[v] {
	case lab:
		return true
	case labelUnknown:
	default:
		return false
	}
	if lab == labelBad {
		if d.badCount == d.bound {
			return false
		}
		d.badCount++
	}
	d.labels[v] = lab
	d.trail = append(d.trail, v)
	d.queue = append(d.queue, v)
	return true
}

// propagate drains the queue, applying both PMC inference rules to each
// freshly labeled node v:
//
//  1. a good tester's reports are the truth: if v is good, every
//     completed test v→w forces w to the reported status;
//  2. a report contradicted by its testee's known status convicts the
//     tester: if u→v reports the wrong status for v, u must be faulty
//     (a good u cannot misreport).
//
// Faulty nodes' own reports carry no information. Returns false on
// contradiction.
func (d *decoder) propagate() bool {
	for len(d.queue) > 0 {
		v := d.queue[len(d.queue)-1]
		d.queue = d.queue[:len(d.queue)-1]
		lv := d.labels[v]
		vBad := lv == labelBad
		rank := 0
		for dim := 0; dim < d.t.Dim(); dim++ {
			d.scratch = d.t.Siblings(v, dim, d.scratch[:0])
			for _, w := range d.scratch {
				r := rank
				rank++
				if !d.in(w) {
					continue
				}
				// Rule 1: v's own report about w.
				if lv == labelGood {
					if says, tested := d.syn.at(v, r); tested {
						want := labelGood
						if says {
							want = labelBad
						}
						if !d.force(w, want) {
							return false
						}
					}
				}
				// Rule 2: w's report about v (neighborhood is
				// symmetric, so w is also a tester of v).
				if says, tested := d.syn.Result(w, v); tested {
					if says != vBad && !d.force(w, labelBad) {
						return false
					}
				}
			}
		}
	}
	return true
}

// undo rewinds the trail (and bad count) to mark.
func (d *decoder) undo(mark int) {
	for i := len(d.trail) - 1; i >= mark; i-- {
		v := d.trail[i]
		if d.labels[v] == labelBad {
			d.badCount--
		}
		d.labels[v] = labelUnknown
	}
	d.trail = d.trail[:mark]
	d.queue = d.queue[:0]
}

// assume labels v and propagates; reports consistency.
func (d *decoder) assume(v topo.NodeID, lab int8) bool {
	if !d.force(v, lab) {
		return false
	}
	return d.propagate()
}

// forceComponents applies the mutual-0 pre-pass: an edge both of whose
// directed tests completed and reported 0 ties its endpoints to the
// same status (a good endpoint would have exposed a bad one), so each
// such component is all-good or all-bad — and a component larger than
// the fault budget cannot be all-bad. In the common case (few faults,
// most links up) this labels almost the whole cube good before any
// branching.
func (d *decoder) forceComponents() bool {
	n := d.t.Nodes()
	parent := make([]int32, n)
	size := make([]int32, n)
	for i := range parent {
		parent[i] = int32(i)
		size[i] = 1
	}
	var find func(x int32) int32
	find = func(x int32) int32 {
		for parent[x] != x {
			parent[x] = parent[parent[x]]
			x = parent[x]
		}
		return x
	}
	union := func(a, b int32) {
		ra, rb := find(a), find(b)
		if ra == rb {
			return
		}
		if size[ra] < size[rb] {
			ra, rb = rb, ra
		}
		parent[rb] = ra
		size[ra] += size[rb]
	}
	for _, u := range d.nodes {
		rank := 0
		for dim := 0; dim < d.t.Dim(); dim++ {
			d.scratch = d.t.Siblings(u, dim, d.scratch[:0])
			for _, v := range d.scratch {
				r := rank
				rank++
				if u > v || !d.in(v) {
					continue // one pass per undirected edge
				}
				uv, ok1 := d.syn.at(u, r)
				vu, ok2 := d.syn.Result(v, u)
				if ok1 && ok2 && !uv && !vu {
					union(int32(u), int32(v))
				}
			}
		}
	}
	for _, u := range d.nodes {
		if size[find(int32(u))] > int32(d.bound) {
			if !d.force(u, labelGood) {
				return false
			}
		}
	}
	return d.propagate()
}

// search branches on the remaining unknown nodes in d.nodes[idx:].
// Returns false when onLeaf asked to stop or the branch budget ran dry.
func (d *decoder) search(idx int) bool {
	for idx < len(d.nodes) && d.labels[d.nodes[idx]] != labelUnknown {
		idx++
	}
	if idx == len(d.nodes) {
		return d.onLeaf(d)
	}
	d.branches++
	if d.branches > d.maxBranches {
		d.truncated = true
		return false
	}
	v := d.nodes[idx]
	for _, lab := range [2]int8{labelGood, labelBad} {
		if lab == labelBad && d.badCount == d.bound {
			continue
		}
		mark := len(d.trail)
		ok := d.assume(v, lab)
		if ok && !d.search(idx+1) {
			return false
		}
		d.undo(mark)
	}
	return true
}

// badSet snapshots the currently-bad nodes, ascending.
func (d *decoder) badSet() []topo.NodeID {
	out := make([]topo.NodeID, 0, d.badCount)
	for _, v := range d.nodes {
		if d.labels[v] == labelBad {
			out = append(out, v)
		}
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

// allNodes lists every node of t in ascending order.
func allNodes(t topo.Topology) []topo.NodeID {
	out := make([]topo.NodeID, t.Nodes())
	for i := range out {
		out[i] = topo.NodeID(i)
	}
	return out
}

// Decode identifies the fault set behind a syndrome. While the true
// fault count is within opts.Bound the decode is exact: the PMC
// diagnosability of the topology guarantees a unique consistent fault
// set, whatever the faulty testers reported. Beyond the bound the
// decoder never guesses — it returns VerdictAmbiguous carrying the
// consistent candidate sets it found (possibly none).
func Decode(syn *Syndrome, opts Options) *Diagnosis {
	t := syn.Topology()
	opts = opts.withDefaults(t)
	d := newDecoder(syn, nil, allNodes(t), opts)

	diag := &Diagnosis{
		Bound: opts.Bound,
		Stats: DecodeStats{Tests: syn.Tests()},
	}
	var candidates [][]topo.NodeID
	d.onLeaf = func(d *decoder) bool {
		candidates = append(candidates, d.badSet())
		return len(candidates) < opts.MaxCandidates
	}
	if d.forceComponents() {
		diag.Stats.Forced = len(d.trail)
		complete := d.search(0)
		diag.Exhaustive = complete && !d.truncated
		if d.truncated {
			diag.Exhaustive = false
		} else if !complete {
			// onLeaf stopped the search at the candidate cap.
			diag.Exhaustive = false
		}
	} else {
		// The forced labels are implied by EVERY consistent labeling
		// within the bound, so a contradiction here proves there is
		// none: the bound is certainly exceeded.
		diag.Exhaustive = true
	}
	diag.Stats.Branches = d.branches
	if len(candidates) == 1 && diag.Exhaustive {
		diag.Verdict = VerdictIdentified
		diag.Faulty = candidates[0]
	} else {
		diag.Verdict = VerdictAmbiguous
		diag.Candidates = candidates
	}
	return diag
}
