package diagnose

import (
	"fmt"
	"sort"

	"repro/internal/bitset"
	"repro/internal/topo"
)

// LocalVerdict classifies one node from its 2-neighborhood syndrome.
type LocalVerdict uint8

const (
	// LocalGood: every consistent labeling of the 2-ball (within the
	// global fault budget) marks the node fault-free.
	LocalGood LocalVerdict = iota
	// LocalFaulty: every consistent labeling marks the node faulty.
	LocalFaulty
	// LocalAmbiguous: the ball's syndrome admits labelings both ways
	// (or none at all — the budget is certainly exceeded).
	LocalAmbiguous
)

// String names the verdict for status surfaces.
func (v LocalVerdict) String() string {
	switch v {
	case LocalGood:
		return "good"
	case LocalFaulty:
		return "faulty"
	case LocalAmbiguous:
		return "ambiguous"
	}
	return fmt.Sprintf("local-verdict(%d)", uint8(v))
}

// LocalResult is DiagnoseLocal's output.
type LocalResult struct {
	Node    topo.NodeID  `json:"node"`
	Verdict LocalVerdict `json:"verdict"`
	// Ball is the 2-neighborhood the classification consulted,
	// ascending (includes Node itself).
	Ball []topo.NodeID `json:"ball"`
	// Labelings counts the consistent ball labelings enumerated before
	// the verdict settled (the search stops as soon as both statuses
	// for Node have been witnessed).
	Labelings int `json:"labelings"`
	// Exhaustive reports the enumeration was not cut off by the branch
	// budget. A non-exhaustive result is always LocalAmbiguous.
	Exhaustive bool        `json:"exhaustive"`
	Stats      DecodeStats `json:"stats"`
}

// ball2 collects the distance-≤2 neighborhood of u, ascending.
func ball2(t topo.Topology, u topo.NodeID) (bitset.Set, []topo.NodeID) {
	in := bitset.New(t.Nodes())
	in.Add(int(u))
	var members []topo.NodeID
	members = append(members, u)
	var scratch []topo.NodeID
	frontier := []topo.NodeID{u}
	for depth := 0; depth < 2; depth++ {
		var next []topo.NodeID
		for _, v := range frontier {
			for d := 0; d < t.Dim(); d++ {
				scratch = t.Siblings(v, d, scratch[:0])
				for _, w := range scratch {
					if !in.Test(int(w)) {
						in.Add(int(w))
						members = append(members, w)
						next = append(next, w)
					}
				}
			}
		}
		frontier = next
	}
	sort.Slice(members, func(i, j int) bool { return members[i] < members[j] })
	return in, members
}

// DiagnoseLocal classifies a single node from the syndrome restricted
// to its 2-neighborhood — the BGM-style local-diagnosis mode: instead
// of decoding the whole cube, enumerate the consistent labelings of the
// ball (with at most opts.Bound faults inside it, since the global
// fault count bounds the local one) and report the node's status when
// every labeling agrees on it. Sound by construction: the true fault
// pattern's restriction to the ball is always among the labelings
// enumerated, so LocalGood/LocalFaulty are never wrong while the global
// fault count stays within the bound.
func DiagnoseLocal(syn *Syndrome, u topo.NodeID, opts Options) *LocalResult {
	t := syn.Topology()
	opts = opts.withDefaults(t)
	allowed, members := ball2(t, u)
	d := newDecoder(syn, allowed, members, opts)

	res := &LocalResult{
		Node:  u,
		Ball:  members,
		Stats: DecodeStats{Tests: syn.Tests()},
	}
	var sawGood, sawBad bool
	d.onLeaf = func(d *decoder) bool {
		res.Labelings++
		if d.labels[u] == labelBad {
			sawBad = true
		} else {
			sawGood = true
		}
		return !(sawGood && sawBad)
	}
	if d.forceComponents() {
		res.Stats.Forced = len(d.trail)
		d.search(0)
	}
	res.Stats.Branches = d.branches
	res.Exhaustive = !d.truncated
	switch {
	case d.truncated, sawGood == sawBad:
		// Both witnessed, or none: no conclusive local verdict. "None"
		// means no ball labeling stays within the fault budget, so the
		// global |F| ≤ bound assumption is already broken.
		res.Verdict = LocalAmbiguous
	case sawBad:
		res.Verdict = LocalFaulty
	default:
		res.Verdict = LocalGood
	}
	return res
}
