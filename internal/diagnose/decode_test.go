package diagnose

import (
	"fmt"
	"reflect"
	"testing"

	"repro/internal/faults"
	"repro/internal/stats"
	"repro/internal/topo"
)

// failSet builds a fault set over t with exactly the given nodes down.
func failSet(t *testing.T, tp topo.Topology, nodes []topo.NodeID) *faults.Set {
	t.Helper()
	set := faults.NewSet(tp)
	for _, a := range nodes {
		if err := set.FailNode(a); err != nil {
			t.Fatalf("FailNode(%d): %v", a, err)
		}
	}
	return set
}

// combinations invokes fn with every k-subset of [0, n).
func combinations(n, k int, fn func(sel []topo.NodeID)) {
	sel := make([]topo.NodeID, k)
	var rec func(start, idx int)
	rec = func(start, idx int) {
		if idx == k {
			fn(sel)
			return
		}
		for v := start; v <= n-(k-idx); v++ {
			sel[idx] = topo.NodeID(v)
			rec(v+1, idx+1)
		}
	}
	rec(0, 0)
}

func wantExact(t *testing.T, diag *Diagnosis, truth []topo.NodeID, ctx string) {
	t.Helper()
	if diag.Verdict != VerdictIdentified {
		t.Fatalf("%s: verdict %v (candidates %v), want identified", ctx, diag.Verdict, diag.Candidates)
	}
	want := append([]topo.NodeID(nil), truth...)
	if len(want) == 0 {
		want = []topo.NodeID{}
	}
	got := diag.Faulty
	if len(got) == 0 {
		got = []topo.NodeID{}
	}
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("%s: decoded %v, want %v", ctx, got, want)
	}
}

// TestDecodeQ3Exhaustive sweeps EVERY fault set of Q3 within the
// diagnosability bound (|F| ≤ 3) against every adversary policy: the
// decode must identify the exact injected set regardless of what the
// faulty testers reported.
func TestDecodeQ3Exhaustive(t *testing.T) {
	exhaustiveWithinBound(t, 3)
}

// TestDecodeQ4Exhaustive is the same sweep over Q4 (|F| ≤ 4): 2517
// fault sets × 5 adversary policies.
func TestDecodeQ4Exhaustive(t *testing.T) {
	exhaustiveWithinBound(t, 4)
}

func exhaustiveWithinBound(t *testing.T, n int) {
	tp, err := topo.NewCube(n)
	if err != nil {
		t.Fatal(err)
	}
	bound := Diagnosability(tp)
	for k := 0; k <= bound; k++ {
		combinations(tp.Nodes(), k, func(sel []topo.NodeID) {
			set := failSet(t, tp, sel)
			for _, adv := range Adversaries() {
				syn := Collect(set, CollectOptions{Seed: 42, Adversary: adv})
				diag := Decode(syn, Options{})
				wantExact(t, diag, sel, fmt.Sprintf("Q%d F=%v adv=%s", n, sel, adv))
			}
		})
	}
}

// consistent reports whether fault set F explains syn under PMC rules:
// every completed test by a tester outside F reports exactly whether
// its testee is in F (testers inside F may say anything).
func consistent(syn *Syndrome, tp topo.Topology, F []topo.NodeID) bool {
	in := make(map[topo.NodeID]bool, len(F))
	for _, a := range F {
		in[a] = true
	}
	var scratch []topo.NodeID
	for u := 0; u < tp.Nodes(); u++ {
		uid := topo.NodeID(u)
		if in[uid] {
			continue
		}
		for d := 0; d < tp.Dim(); d++ {
			scratch = tp.Siblings(uid, d, scratch[:0])
			for _, v := range scratch {
				if says, tested := syn.Result(uid, v); tested && says != in[v] {
					return false
				}
			}
		}
	}
	return true
}

// TestDecodeAmbiguousIffBeyondBound pins the decoder's verdict law.
// Within the bound, Ambiguous never occurs (the exhaustive sweeps
// above). One past the bound (|F| = n+1 on Q3 and Q4):
//
//   - under the worst-case adversaries (invert — faulty testers lie
//     maximally — and stealth) EVERY syndrome decodes Ambiguous: the
//     verdict is "iff the bound is exceeded" exactly;
//   - under benign adversaries (truthful, slander) the one
//     information-theoretic blind spot appears: F ⊇ {v} ∪ N(v) with v's
//     faulty neighbors truthfully accusing v is indistinguishable from
//     the ≤-bound set F \ {v}, so the decoder names that smaller set.
//     No decoder can do better — the test pins that every Identified
//     verdict is still a consistent explanation of size ≤ bound, never
//     a guess.
//
// It also pins the classical zero-candidate witness: the even-parity
// independent 4-set of Q3 under invert yields the all-ones syndrome,
// which NO ≤3-set explains.
func TestDecodeAmbiguousIffBeyondBound(t *testing.T) {
	for _, n := range []int{3, 4} {
		tp, err := topo.NewCube(n)
		if err != nil {
			t.Fatal(err)
		}
		bound := Diagnosability(tp)
		combinations(tp.Nodes(), bound+1, func(sel []topo.NodeID) {
			set := failSet(t, tp, sel)
			for _, adv := range Adversaries() {
				syn := Collect(set, CollectOptions{Seed: 7, Adversary: adv})
				diag := Decode(syn, Options{})
				switch diag.Verdict {
				case VerdictAmbiguous:
					// The only correct verdict beyond the bound.
				case VerdictIdentified:
					if adv == AdversaryInvert || adv == AdversaryStealth {
						t.Fatalf("Q%d F=%v adv=%s: identified %v beyond the bound under a worst-case adversary",
							n, sel, adv, diag.Faulty)
					}
					if len(diag.Faulty) > bound || !consistent(syn, tp, diag.Faulty) {
						t.Fatalf("Q%d F=%v adv=%s: identified %v is not a consistent ≤%d explanation",
							n, sel, adv, diag.Faulty, bound)
					}
				}
			}
		})
	}

	// The even-parity nodes of Q3 form an independent 4-set; with
	// invert every completed test reports 1, and no labeling with ≤3
	// faults explains an all-ones syndrome.
	tp, err := topo.NewCube(3)
	if err != nil {
		t.Fatal(err)
	}
	parity := []topo.NodeID{0b000, 0b011, 0b101, 0b110}
	syn := Collect(failSet(t, tp, parity), CollectOptions{Adversary: AdversaryInvert})
	diag := Decode(syn, Options{})
	if diag.Verdict != VerdictAmbiguous {
		t.Fatalf("even-parity invert: verdict %v, want ambiguous", diag.Verdict)
	}
	if len(diag.Candidates) != 0 || !diag.Exhaustive {
		t.Fatalf("even-parity invert: candidates %v exhaustive %v, want none/true",
			diag.Candidates, diag.Exhaustive)
	}
}

// TestDecodeQ2BoundIsOne pins the small-cube special case: Q2 is only
// 1-diagnosable. Single faults decode exactly; the 4-cycle's antipodal
// 2-sets are indistinguishable under an adversarial syndrome.
func TestDecodeQ2BoundIsOne(t *testing.T) {
	tp, err := topo.NewCube(2)
	if err != nil {
		t.Fatal(err)
	}
	if got := Diagnosability(tp); got != 1 {
		t.Fatalf("Diagnosability(Q2) = %d, want 1", got)
	}
	for a := 0; a < 4; a++ {
		for _, adv := range Adversaries() {
			set := failSet(t, tp, []topo.NodeID{topo.NodeID(a)})
			syn := Collect(set, CollectOptions{Seed: 3, Adversary: adv})
			wantExact(t, Decode(syn, Options{}), []topo.NodeID{topo.NodeID(a)},
				fmt.Sprintf("Q2 F={%d} adv=%s", a, adv))
		}
	}
	// {00,11} under invert produces the all-ones syndrome, which the
	// antipodal pair {01,10} explains equally well: raising the bound
	// to 2 must yield ambiguity with both candidates, not a guess —
	// the 4-cycle counterexample behind Q2's bound of 1.
	set := failSet(t, tp, []topo.NodeID{0b00, 0b11})
	syn := Collect(set, CollectOptions{Adversary: AdversaryInvert})
	diag := Decode(syn, Options{Bound: 2})
	if diag.Verdict != VerdictAmbiguous || len(diag.Candidates) != 2 {
		t.Fatalf("Q2 antipodal at bound 2: verdict %v candidates %v, want ambiguous with both antipodal pairs",
			diag.Verdict, diag.Candidates)
	}
}

// TestDecodeRandomQ5Q6 spot-checks bigger cubes: seeded random fault
// sets within the bound decode exactly under every adversary.
func TestDecodeRandomQ5Q6(t *testing.T) {
	for _, n := range []int{5, 6} {
		tp, err := topo.NewCube(n)
		if err != nil {
			t.Fatal(err)
		}
		rng := stats.NewRNG(uint64(n) * 1001)
		for trial := 0; trial < 40; trial++ {
			k := rng.Intn(n + 1)
			var sel []topo.NodeID
			for _, v := range rng.Sample(tp.Nodes(), k) {
				sel = append(sel, topo.NodeID(v))
			}
			sortNodes(sel)
			set := failSet(t, tp, sel)
			for _, adv := range Adversaries() {
				syn := Collect(set, CollectOptions{Seed: uint64(trial), Adversary: adv})
				diag := Decode(syn, Options{})
				wantExact(t, diag, sel, fmt.Sprintf("Q%d trial %d adv=%s F=%v", n, trial, adv, sel))
			}
		}
	}
}

// TestDecodeGH smoke-tests the generalized hypercube: the conservative
// bound min(degree, (N-1)/2) still yields exact decodes within it.
func TestDecodeGH(t *testing.T) {
	tp, err := topo.NewMixed([]int{2, 3, 2})
	if err != nil {
		t.Fatal(err)
	}
	bound := Diagnosability(tp)
	if bound <= 0 {
		t.Fatalf("Diagnosability(GH 2x3x2) = %d, want positive", bound)
	}
	rng := stats.NewRNG(99)
	for trial := 0; trial < 30; trial++ {
		k := rng.Intn(bound + 1)
		var sel []topo.NodeID
		for _, v := range rng.Sample(tp.Nodes(), k) {
			sel = append(sel, topo.NodeID(v))
		}
		sortNodes(sel)
		set := failSet(t, tp, sel)
		for _, adv := range Adversaries() {
			syn := Collect(set, CollectOptions{Seed: uint64(trial), Adversary: adv})
			diag := Decode(syn, Options{})
			wantExact(t, diag, sel, fmt.Sprintf("GH trial %d adv=%s F=%v", trial, adv, sel))
		}
	}
}

// TestDecodeWithLinkFaults pins the untested-edge semantics: tests
// across faulty links are skipped, and as long as enough tests remain
// the node decode stays exact. A dimension cut (every dimension-0 link
// down) removes one test pair per node and still decodes node faults
// exactly.
func TestDecodeWithLinkFaults(t *testing.T) {
	tp, err := topo.NewCube(4)
	if err != nil {
		t.Fatal(err)
	}
	set := faults.NewSet(tp)
	for _, l := range faults.DimensionLinks(tp, 0) {
		if err := set.FailLink(l.A, l.B); err != nil {
			t.Fatal(err)
		}
	}
	truth := []topo.NodeID{3, 9}
	for _, a := range truth {
		if err := set.FailNode(a); err != nil {
			t.Fatal(err)
		}
	}
	for _, adv := range Adversaries() {
		syn := Collect(set, CollectOptions{Seed: 5, Adversary: adv})
		if syn.Tests() >= tp.Nodes()*tp.Degree() {
			t.Fatalf("adv=%s: expected missing tests under a dimension cut, got %d", adv, syn.Tests())
		}
		diag := Decode(syn, Options{})
		wantExact(t, diag, truth, fmt.Sprintf("dimcut adv=%s", adv))
	}
}

func sortNodes(s []topo.NodeID) {
	for i := 1; i < len(s); i++ {
		for j := i; j > 0 && s[j] < s[j-1]; j-- {
			s[j], s[j-1] = s[j-1], s[j]
		}
	}
}
