package diagnose

import (
	"fmt"
	"testing"

	"repro/internal/stats"
	"repro/internal/topo"
)

// TestLocalQ3Exhaustive classifies EVERY node of Q3 under EVERY fault
// set within the bound and every adversary: a conclusive local verdict
// must match ground truth (soundness), and conclusive verdicts must
// actually occur.
func TestLocalQ3Exhaustive(t *testing.T) {
	tp, err := topo.NewCube(3)
	if err != nil {
		t.Fatal(err)
	}
	bound := Diagnosability(tp)
	conclusive, total := 0, 0
	for k := 0; k <= bound; k++ {
		combinations(tp.Nodes(), k, func(sel []topo.NodeID) {
			set := failSet(t, tp, sel)
			in := map[topo.NodeID]bool{}
			for _, a := range sel {
				in[a] = true
			}
			for _, adv := range Adversaries() {
				syn := Collect(set, CollectOptions{Seed: 13, Adversary: adv})
				for u := 0; u < tp.Nodes(); u++ {
					res := DiagnoseLocal(syn, topo.NodeID(u), Options{})
					total++
					switch res.Verdict {
					case LocalGood:
						conclusive++
						if in[topo.NodeID(u)] {
							t.Fatalf("F=%v adv=%s node %d: local verdict good but faulty", sel, adv, u)
						}
					case LocalFaulty:
						conclusive++
						if !in[topo.NodeID(u)] {
							t.Fatalf("F=%v adv=%s node %d: local verdict faulty but good", sel, adv, u)
						}
					}
				}
			}
		})
	}
	if conclusive == 0 {
		t.Fatalf("no conclusive local verdict in %d classifications", total)
	}
	// On Q3 the 2-ball is 7 of 8 nodes; local diagnosis should be
	// conclusive nearly always. Guard against silent degradation.
	if ratio := float64(conclusive) / float64(total); ratio < 0.9 {
		t.Fatalf("only %.1f%% of local verdicts conclusive, want ≥90%%", 100*ratio)
	}
}

// TestLocalQ5Random spot-checks a cube whose 2-ball is a small fraction
// of the whole: soundness must hold and the truthful-adversary case
// must classify every node conclusively.
func TestLocalQ5Random(t *testing.T) {
	tp, err := topo.NewCube(5)
	if err != nil {
		t.Fatal(err)
	}
	rng := stats.NewRNG(55)
	for trial := 0; trial < 20; trial++ {
		k := rng.Intn(tp.Dim() + 1)
		var sel []topo.NodeID
		for _, v := range rng.Sample(tp.Nodes(), k) {
			sel = append(sel, topo.NodeID(v))
		}
		set := failSet(t, tp, sel)
		in := map[topo.NodeID]bool{}
		for _, a := range sel {
			in[a] = true
		}
		for _, adv := range Adversaries() {
			syn := Collect(set, CollectOptions{Seed: uint64(trial), Adversary: adv})
			for u := 0; u < tp.Nodes(); u++ {
				res := DiagnoseLocal(syn, topo.NodeID(u), Options{})
				ctx := fmt.Sprintf("trial %d adv=%s F=%v node %d", trial, adv, sel, u)
				switch res.Verdict {
				case LocalGood:
					if in[topo.NodeID(u)] {
						t.Fatalf("%s: good but faulty", ctx)
					}
				case LocalFaulty:
					if !in[topo.NodeID(u)] {
						t.Fatalf("%s: faulty but good", ctx)
					}
				}
				if len(res.Ball) >= tp.Nodes() {
					t.Fatalf("%s: 2-ball covers the whole cube (%d nodes)", ctx, len(res.Ball))
				}
			}
		}
	}
}
