package loadgen

import (
	"context"
	"net/http"
	"net/http/httptest"
	"sync"
	"testing"
	"time"

	"repro/internal/faults"
	"repro/internal/serve"
	"repro/internal/topo"
)

func newLocal(t *testing.T, opts serve.Options) LocalTarget {
	t.Helper()
	svc, err := serve.New(faults.NewSet(topo.MustCube(6)), opts)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(svc.Close)
	return LocalTarget{Svc: svc}
}

// TestRunClosedLoop: a short closed-loop run over all three op kinds
// completes, classifies everything OK, and produces a sane digest.
func TestRunClosedLoop(t *testing.T) {
	tgt := newLocal(t, serve.Options{})
	rep := Run(tgt, Config{
		Seed:     1,
		Workers:  4,
		Duration: 100 * time.Millisecond,
		Warmup:   20 * time.Millisecond,
		Mix:      Mix{Route: 8, Batch: 1, RouteAll: 1},
	})
	if rep.Mode != "closed" {
		t.Fatalf("mode %q, want closed", rep.Mode)
	}
	if rep.Ops == 0 || rep.Classes[ClassOK] != rep.Ops {
		t.Fatalf("ops=%d classes=%v, want all OK", rep.Ops, rep.Classes)
	}
	if rep.Latency.Count != rep.Classes[ClassOK] {
		t.Fatalf("latency count %d != ok count %d", rep.Latency.Count, rep.Classes[ClassOK])
	}
	if rep.Latency.P50Us <= 0 || rep.Latency.P999Us < rep.Latency.P50Us {
		t.Fatalf("bad quantiles: %+v", rep.Latency)
	}
	if rep.Latency.MaxUs <= 0 {
		t.Fatalf("max latency %d, want > 0", rep.Latency.MaxUs)
	}
	if len(rep.PerKind) == 0 {
		t.Fatal("no per-kind digests")
	}
	if rep.WarmupOps == 0 {
		t.Fatal("warmup window recorded no ops")
	}
}

// TestRunOpenLoopChurn: open-loop pacing under a churn storm advances
// the fault-set generation and still answers the offered load.
func TestRunOpenLoop(t *testing.T) {
	tgt := newLocal(t, serve.Options{QueueDepth: 64})
	gen0 := tgt.Svc.Generation()
	rep := Run(tgt, Config{
		Seed:       7,
		Workers:    2,
		Rate:       2000,
		Duration:   150 * time.Millisecond,
		ChurnEvery: 5 * time.Millisecond,
	})
	if rep.Mode != "open" {
		t.Fatalf("mode %q, want open", rep.Mode)
	}
	if rep.ChurnEvents == 0 {
		t.Fatal("churn storm injected nothing")
	}
	if rep.Classes[ClassOK] == 0 {
		t.Fatalf("no OK ops under churn: %v", rep.Classes)
	}
	tgt.Svc.Flush()
	if tgt.Svc.Generation() == gen0 {
		t.Fatal("generation never advanced despite churn events")
	}
	// Open loop should land near the offered rate, not the maximum
	// throughput (which for a trivial route would be far higher).
	if rep.OKPerSec > 3*2000 {
		t.Fatalf("open loop ran at %.0f ops/s against an offered 2000", rep.OKPerSec)
	}
}

// TestRunShedding: a tiny admission bucket turns most of the offered
// load into ClassOverload without contaminating the OK latency digest.
func TestRunShedding(t *testing.T) {
	tgt := newLocal(t, serve.Options{Rate: 50, Burst: 5})
	rep := Run(tgt, Config{
		Seed:     3,
		Workers:  4,
		Duration: 100 * time.Millisecond,
	})
	if rep.Classes[ClassOverload] == 0 {
		t.Fatalf("no shedding with Rate=50: %v", rep.Classes)
	}
	if rep.Latency.Count != rep.Classes[ClassOK] {
		t.Fatalf("latency digest holds %d samples, want only the %d OK",
			rep.Latency.Count, rep.Classes[ClassOK])
	}
}

// TestClassify covers the error taxonomy mapping.
func TestClassify(t *testing.T) {
	cases := map[string]error{
		ClassOK:       nil,
		ClassOverload: serve.ErrOverload,
		ClassDraining: serve.ErrDraining,
		ClassBacklog:  serve.ErrBacklog,
		ClassDeadline: context.DeadlineExceeded,
		ClassError:    context.Canceled,
	}
	for want, err := range cases {
		if got := Classify(err); got != want {
			t.Errorf("Classify(%v) = %q, want %q", err, got, want)
		}
	}
}

// TestHTTPTargetMapping: the HTTP target maps each slserve status back
// to the canonical error so classification matches LocalTarget.
func TestHTTPTargetMapping(t *testing.T) {
	codes := map[string]int{
		"/route":    http.StatusOK,
		"/batch":    http.StatusTooManyRequests,
		"/routeall": http.StatusGatewayTimeout,
		"/fault":    http.StatusAccepted,
	}
	var lastURL string
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		lastURL = r.URL.String()
		w.WriteHeader(codes[r.URL.Path])
	}))
	defer srv.Close()

	tgt := HTTPTarget{Base: srv.URL, N: 16}
	ctx := context.Background()
	if err := tgt.Route(ctx, 0, 15); err != nil {
		t.Fatalf("200 -> %v, want nil", err)
	}
	if err := tgt.Batch(ctx, [][2]int{{0, 1}}); Classify(err) != ClassOverload {
		t.Fatalf("429 -> %v, want overload", err)
	}
	if err := tgt.RouteAll(ctx, 0); Classify(err) != ClassDeadline {
		t.Fatalf("504 -> %v, want deadline", err)
	}
	if err := tgt.Fault(ctx, 3, true); err != nil {
		t.Fatalf("202 -> %v, want nil", err)
	}
	if lastURL != "/fault?a=3&op=fail-node" {
		t.Fatalf("fault URL %q", lastURL)
	}
}

// TestScheduleReplayLocal: a seeded scenario schedule replays in full
// through the local target's TryApply path, every event lands, and the
// ends-clean invariant leaves the served fault set empty again.
func TestScheduleReplayLocal(t *testing.T) {
	tgt := newLocal(t, serve.Options{QueueDepth: 256})
	sched, err := faults.ScenarioSchedule(tgt.Svc.Topology(), faults.ScenarioSubcube, 42, faults.ScenarioOptions{})
	if err != nil {
		t.Fatal(err)
	}
	gen0 := tgt.Svc.Generation()
	rep := Run(tgt, Config{
		Seed:       9,
		Workers:    2,
		Duration:   200 * time.Millisecond,
		ChurnEvery: 2 * time.Millisecond,
		Schedule:   sched,
		Scenario:   string(faults.ScenarioSubcube),
	})
	if rep.ChurnEvents != int64(len(sched)) {
		t.Fatalf("replayed %d/%d events (errors %d)", rep.ChurnEvents, len(sched), rep.ChurnErrors)
	}
	if rep.ChurnErrors != 0 {
		t.Fatalf("%d schedule events failed to apply", rep.ChurnErrors)
	}
	tgt.Svc.Flush()
	if tgt.Svc.Generation() == gen0 {
		t.Fatal("generation never advanced despite schedule replay")
	}
	if rep.Config.Scenario != "subcube" {
		t.Fatalf("report scenario %q", rep.Config.Scenario)
	}
	// Scenario schedules end clean: a fresh replay against ground truth
	// confirms the run left no residual faults behind.
	set := faults.NewSet(tgt.Svc.Topology())
	for _, ev := range sched {
		if err := set.Apply(ev); err != nil {
			t.Fatal(err)
		}
	}
	if set.NodeFaults() != 0 || set.LinkFaults() != 0 {
		t.Fatalf("schedule not ends-clean: %d node / %d link faults", set.NodeFaults(), set.LinkFaults())
	}
}

// TestScheduleReplayHTTP: the same event vocabulary reaches a remote
// slserve as /fault queries — node events carry op+a, link events add
// b — in exact schedule order.
func TestScheduleReplayHTTP(t *testing.T) {
	var mu sync.Mutex
	var faultURLs []string
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if r.URL.Path == "/fault" {
			mu.Lock()
			faultURLs = append(faultURLs, r.URL.String())
			mu.Unlock()
			w.WriteHeader(http.StatusAccepted)
			return
		}
		w.WriteHeader(http.StatusOK)
	}))
	defer srv.Close()

	sched := []faults.ChurnEvent{
		{Kind: faults.DeltaFailNode, A: 3},
		{Kind: faults.DeltaFailLink, A: 0, B: 8},
		{Kind: faults.DeltaRecoverLink, A: 0, B: 8},
		{Kind: faults.DeltaRecoverNode, A: 3},
	}
	tgt := HTTPTarget{Base: srv.URL, N: 16}
	rep := Run(tgt, Config{
		Workers:    1,
		Duration:   120 * time.Millisecond,
		ChurnEvery: 2 * time.Millisecond,
		Schedule:   sched,
	})
	if rep.ChurnEvents != int64(len(sched)) || rep.ChurnErrors != 0 {
		t.Fatalf("replayed %d/%d events, %d errors", rep.ChurnEvents, len(sched), rep.ChurnErrors)
	}
	want := []string{
		"/fault?a=3&op=fail-node",
		"/fault?a=0&b=8&op=fail-link",
		"/fault?a=0&b=8&op=recover-link",
		"/fault?a=3&op=recover-node",
	}
	mu.Lock()
	defer mu.Unlock()
	if len(faultURLs) != len(want) {
		t.Fatalf("fault URLs %v, want %v", faultURLs, want)
	}
	for i, u := range want {
		if faultURLs[i] != u {
			t.Fatalf("fault URL %d = %q, want %q", i, faultURLs[i], u)
		}
	}
}

// TestDeterministicStream: two runs with the same seed offer the same
// number of warm+measured requests of each kind when the duration is
// long enough to drain the schedule (open loop, fast target, fixed op
// count makes this exact only per-worker; we assert the weaker —
// but still seed-sensitive — property that op synthesis is stable).
func TestDeterministicStream(t *testing.T) {
	rng1 := newKindSeq(42, 100)
	rng2 := newKindSeq(42, 100)
	rng3 := newKindSeq(43, 100)
	if rng1 != rng2 {
		t.Fatal("same seed produced different op sequences")
	}
	if rng1 == rng3 {
		t.Fatal("different seeds produced identical op sequences")
	}
}

func newKindSeq(seed uint64, n int) string {
	rng := newWorkerRNG(seed, 0)
	m := Mix{Route: 3, Batch: 2, RouteAll: 1}
	out := make([]byte, n)
	for i := range out {
		out[i] = pickKind(rng, m)[0]
	}
	return string(out)
}
