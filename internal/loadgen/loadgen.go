package loadgen

import (
	"context"
	"errors"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/faults"
	"repro/internal/obs"
	"repro/internal/serve"
	"repro/internal/stats"
	"repro/internal/wire"
)

// Outcome classes a driven request can land in. OK requests (and only
// those) contribute to the latency histograms; every class is counted.
const (
	ClassOK       = "ok"
	ClassOverload = "overload" // shed by admission control (429 / ErrOverload)
	ClassDeadline = "deadline" // context expired (504)
	ClassDraining = "draining" // server draining (503 / ErrDraining)
	ClassBacklog  = "backlog"  // churn queue full (fault path only)
	ClassError    = "error"    // anything else
)

// Classify maps an error from a Target to its outcome class. The wire
// protocol's typed error frames land in the same classes as their
// in-process and HTTP counterparts, so reports are target-agnostic.
func Classify(err error) string {
	switch {
	case err == nil:
		return ClassOK
	case errors.Is(err, serve.ErrOverload), errors.Is(err, wire.ErrOverload):
		return ClassOverload
	case errors.Is(err, context.DeadlineExceeded), errors.Is(err, wire.ErrDeadline):
		return ClassDeadline
	case errors.Is(err, serve.ErrDraining), errors.Is(err, wire.ErrDraining):
		return ClassDraining
	case errors.Is(err, serve.ErrBacklog), errors.Is(err, wire.ErrBacklog):
		return ClassBacklog
	default:
		return ClassError
	}
}

// Target is a system under load: the in-process serving engine
// (LocalTarget) or a remote slserve (HTTPTarget). Implementations
// return nil for a served request and a Classify-able error otherwise.
type Target interface {
	// Nodes returns the topology size, for request synthesis.
	Nodes() int
	// Route drives one unicast query.
	Route(ctx context.Context, src, dst int) error
	// Batch drives one batch query pinned to a single snapshot.
	Batch(ctx context.Context, pairs [][2]int) error
	// RouteAll drives one full fan-out from src.
	RouteAll(ctx context.Context, src int) error
	// Fault reports node a as failed (down) or recovered (!down) —
	// the churn-storm injection path.
	Fault(ctx context.Context, a int, down bool) error
	// ApplyEvent drives one scheduled churn event — node or link, fail
	// or recover — through the same injection path as Fault. This is
	// the scenario-replay surface: a seeded faults.ScenarioSchedule
	// replays identically against both targets.
	ApplyEvent(ctx context.Context, ev faults.ChurnEvent) error
}

// Mix weights the request kinds. Zero weights drop the kind; the zero
// Mix means route-only.
type Mix struct {
	Route    int `json:"route"`
	Batch    int `json:"batch"`
	RouteAll int `json:"routeall"`
}

func (m Mix) total() int { return m.Route + m.Batch + m.RouteAll }

// Config tunes one load-generation run. Zero values: 1 worker, closed
// loop, route-only mix, batch size 16, no warmup, no churn, no
// per-request deadline.
type Config struct {
	// Seed makes the request sequence deterministic: every worker
	// derives its own splitmix64 stream from it, so the same seed
	// offers the same sources, destinations and op kinds in the same
	// per-worker order.
	Seed uint64
	// Workers is the closed-loop concurrency (and the number of pacer
	// goroutines in open-loop mode).
	Workers int
	// Rate switches to open-loop mode: the generator offers this many
	// requests per second in aggregate on a fixed schedule, regardless
	// of how fast the target answers, and measures latency from each
	// request's *scheduled* start — the HDR-style correction for
	// coordinated omission. 0 means closed loop.
	Rate float64
	// Duration is the measured window; Warmup runs first and is
	// recorded separately (reported but excluded from the headline
	// numbers).
	Duration time.Duration
	Warmup   time.Duration
	// Deadline is the per-request context deadline (0 = none).
	Deadline time.Duration
	// Mix weights the request kinds; BatchSize sizes OpBatch requests.
	Mix       Mix
	BatchSize int
	// ChurnEvery enables the churn storm: every interval, one victim
	// node is toggled between failed and recovered through
	// Target.Fault. 0 disables (unless Schedule is set). ChurnVictims
	// bounds the rotating victim set (default 8).
	ChurnEvery   time.Duration
	ChurnVictims int
	// Schedule, when non-empty, replaces the rotating-victim storm with
	// an externally supplied event sequence (e.g. a seeded
	// faults.ScenarioSchedule): one event replays through
	// Target.ApplyEvent per ChurnEvery tick, in order, stopping when
	// the schedule is exhausted; events still pending when the run
	// window closes apply unpaced so the target always reaches the
	// schedule's final state. With ChurnEvery 0 the schedule is
	// spread evenly across warmup+duration so the last event lands
	// before the window closes. Scenario labels the schedule in the
	// report; the events themselves stay out of the JSON.
	Schedule []faults.ChurnEvent `json:"-"`
	Scenario string              `json:",omitempty"`
}

// LatencyReport is the HDR-style digest of one latency population:
// quantiles estimated from the log-spaced histogram plus the full
// bucket counts for offline analysis.
type LatencyReport struct {
	Count  int64   `json:"count"`
	MeanUs float64 `json:"mean_us"`
	P50Us  float64 `json:"p50_us"`
	P90Us  float64 `json:"p90_us"`
	P99Us  float64 `json:"p99_us"`
	P999Us float64 `json:"p999_us"`
	MaxUs  int64   `json:"max_us"`
	// Hist is the raw log-spaced histogram the quantiles were
	// estimated from (bounds in microseconds, one extra +Inf count).
	Hist obs.HistSnapshot `json:"hist"`
}

func latencyReport(h *obs.Histogram, maxUs *atomic.Int64) LatencyReport {
	s := h.Snapshot()
	r := LatencyReport{Count: s.Count, MaxUs: maxUs.Load(), Hist: s}
	if s.Count > 0 {
		r.MeanUs = float64(s.Sum) / float64(s.Count)
		r.P50Us = s.Quantile(0.50)
		r.P90Us = s.Quantile(0.90)
		r.P99Us = s.Quantile(0.99)
		r.P999Us = s.Quantile(0.999)
	}
	return r
}

// Report is the JSON result of one run.
type Report struct {
	Config      Config                   `json:"config"`
	Mode        string                   `json:"mode"` // "closed" or "open"
	Elapsed     time.Duration            `json:"elapsed_ns"`
	Ops         int64                    `json:"ops"`
	OKPerSec    float64                  `json:"ok_per_sec"`
	Classes     map[string]int64         `json:"classes"`
	ChurnEvents int64                    `json:"churn_events"`
	ChurnErrors int64                    `json:"churn_errors"`
	Latency     LatencyReport            `json:"latency"`
	PerKind     map[string]LatencyReport `json:"per_kind"`
	WarmupOps   int64                    `json:"warmup_ops"`
}

// recorder aggregates measurements wait-free across workers.
type recorder struct {
	all     *obs.Histogram
	perKind map[string]*obs.Histogram
	maxUs   atomic.Int64
	ops     atomic.Int64
	classes [6]atomic.Int64
	warmOps atomic.Int64
}

var classIndex = map[string]int{
	ClassOK: 0, ClassOverload: 1, ClassDeadline: 2,
	ClassDraining: 3, ClassBacklog: 4, ClassError: 5,
}

var classNames = []string{ClassOK, ClassOverload, ClassDeadline, ClassDraining, ClassBacklog, ClassError}

func newRecorder() *recorder {
	return &recorder{
		all: obs.NewLatencyHistogram(),
		perKind: map[string]*obs.Histogram{
			"route":    obs.NewLatencyHistogram(),
			"batch":    obs.NewLatencyHistogram(),
			"routeall": obs.NewLatencyHistogram(),
		},
	}
}

func (rec *recorder) record(kind string, class string, us int64, warm bool) {
	if warm {
		rec.warmOps.Add(1)
		return
	}
	rec.ops.Add(1)
	rec.classes[classIndex[class]].Add(1)
	if class != ClassOK {
		return
	}
	rec.all.Observe(us)
	rec.perKind[kind].Observe(us)
	for {
		cur := rec.maxUs.Load()
		if us <= cur || rec.maxUs.CompareAndSwap(cur, us) {
			return
		}
	}
}

// Run drives the target with cfg and returns the measured report.
func Run(t Target, cfg Config) *Report {
	workers := cfg.Workers
	if workers < 1 {
		workers = 1
	}
	batch := cfg.BatchSize
	if batch < 1 {
		batch = 16
	}
	mix := cfg.Mix
	if mix.total() == 0 {
		mix = Mix{Route: 1}
	}
	if cfg.Duration <= 0 {
		cfg.Duration = time.Second
	}

	rec := newRecorder()
	nodes := t.Nodes()
	begin := time.Now()
	warmUntil := begin.Add(cfg.Warmup)
	end := warmUntil.Add(cfg.Duration)

	stopChurn := make(chan struct{})
	var churnWg sync.WaitGroup
	var churnEvents, churnErrors atomic.Int64
	if len(cfg.Schedule) > 0 {
		// Scenario replay: the schedule is the storm. Pacing defaults
		// to an even spread over the whole run so the final recovery
		// wave lands inside the measured window.
		every := cfg.ChurnEvery
		if every <= 0 {
			every = (cfg.Warmup + cfg.Duration) / time.Duration(len(cfg.Schedule)+1)
			if every <= 0 {
				every = time.Millisecond
			}
		}
		churnWg.Add(1)
		go func() {
			defer churnWg.Done()
			tick := time.NewTicker(every)
			defer tick.Stop()
			for _, ev := range cfg.Schedule {
				select {
				case <-stopChurn:
					// The window closed first: drain the rest unpaced so
					// the target still ends in the schedule's final
					// (ends-clean) state instead of keeping residual
					// faults a later run would inherit.
				case <-tick.C:
				}
				// A failed apply (backlog, transport) is counted and the
				// event dropped; later events may then be no-ops against
				// the target's set, which the apply path tolerates.
				if err := t.ApplyEvent(context.Background(), ev); err != nil {
					churnErrors.Add(1)
					continue
				}
				churnEvents.Add(1)
			}
		}()
	} else if cfg.ChurnEvery > 0 {
		victims := cfg.ChurnVictims
		if victims <= 0 {
			victims = 8
		}
		if victims > nodes/2 {
			victims = nodes / 2
		}
		churnWg.Add(1)
		go func() {
			defer churnWg.Done()
			rng := stats.NewRNG(cfg.Seed).Split(0xC0FFEE)
			// A rotating victim set with per-victim down/up state, so
			// the storm never wedges the topology: at most `victims`
			// nodes are down at once and every fail is eventually
			// undone by the same goroutine.
			set := rng.Sample(nodes, victims)
			down := make([]bool, len(set))
			tick := time.NewTicker(cfg.ChurnEvery)
			defer tick.Stop()
			for i := 0; ; i++ {
				select {
				case <-stopChurn:
					return
				case <-tick.C:
				}
				v := i % len(set)
				ctx := context.Background()
				if err := t.Fault(ctx, set[v], !down[v]); err != nil {
					churnErrors.Add(1)
					continue
				}
				down[v] = !down[v]
				churnEvents.Add(1)
			}
		}()
	}

	mode := "closed"
	if cfg.Rate > 0 {
		mode = "open"
	}
	var interval time.Duration
	if cfg.Rate > 0 {
		interval = time.Duration(float64(workers) * float64(time.Second) / cfg.Rate)
		if interval <= 0 {
			interval = time.Nanosecond
		}
	}

	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(id int) {
			defer wg.Done()
			rng := newWorkerRNG(cfg.Seed, id)
			// Open-loop schedule: worker id fires at begin + offset +
			// k*interval; the offset staggers workers uniformly.
			next := begin
			if interval > 0 {
				next = begin.Add(time.Duration(id) * interval / time.Duration(workers))
			}
			for k := 0; ; k++ {
				now := time.Now()
				if !now.Before(end) {
					return
				}
				start := now
				if interval > 0 {
					if sleep := time.Until(next); sleep > 0 {
						time.Sleep(sleep)
						if !time.Now().Before(end) {
							return
						}
					}
					// Latency is measured from the *scheduled* start:
					// a stalled target inflates the latency of every
					// queued request, not just the one in flight.
					start = next
					next = next.Add(interval)
				}
				kind := pickKind(rng, mix)
				ctx := context.Background()
				cancel := func() {}
				if cfg.Deadline > 0 {
					ctx, cancel = context.WithDeadline(ctx, time.Now().Add(cfg.Deadline))
				}
				var err error
				switch kind {
				case "route":
					err = t.Route(ctx, rng.Intn(nodes), rng.Intn(nodes))
				case "batch":
					pairs := make([][2]int, batch)
					for i := range pairs {
						pairs[i] = [2]int{rng.Intn(nodes), rng.Intn(nodes)}
					}
					err = t.Batch(ctx, pairs)
				case "routeall":
					err = t.RouteAll(ctx, rng.Intn(nodes))
				}
				cancel()
				us := time.Since(start).Microseconds()
				rec.record(kind, Classify(err), us, time.Now().Before(warmUntil))
			}
		}(w)
	}
	wg.Wait()
	close(stopChurn)
	churnWg.Wait()
	elapsed := time.Since(warmUntil)
	if elapsed <= 0 {
		elapsed = time.Nanosecond
	}

	rep := &Report{
		Config:      cfg,
		Mode:        mode,
		Elapsed:     elapsed,
		Ops:         rec.ops.Load(),
		Classes:     map[string]int64{},
		ChurnEvents: churnEvents.Load(),
		ChurnErrors: churnErrors.Load(),
		Latency:     latencyReport(rec.all, &rec.maxUs),
		PerKind:     map[string]LatencyReport{},
		WarmupOps:   rec.warmOps.Load(),
	}
	for i, name := range classNames {
		if v := rec.classes[i].Load(); v > 0 {
			rep.Classes[name] = v
		}
	}
	rep.OKPerSec = float64(rep.Classes[ClassOK]) / elapsed.Seconds()
	var zero atomic.Int64
	for kind, h := range rec.perKind {
		if s := h.Snapshot(); s.Count > 0 {
			lr := latencyReport(h, &zero)
			lr.MaxUs = 0 // tracked only for the aggregate population
			rep.PerKind[kind] = lr
		}
	}
	return rep
}

// newWorkerRNG derives worker id's private stream from the run seed.
func newWorkerRNG(seed uint64, id int) *stats.RNG {
	return stats.NewRNG(seed).Split(uint64(id) + 1)
}

// pickKind draws an op kind with the mix's weights.
func pickKind(rng *stats.RNG, m Mix) string {
	n := rng.Intn(m.total())
	if n < m.Route {
		return "route"
	}
	if n < m.Route+m.Batch {
		return "batch"
	}
	return "routeall"
}
