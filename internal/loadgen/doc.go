// Package loadgen is the deterministic load generator behind cmd/slload
// and the E17 churn-storm experiment: it drives a serving engine — in
// process (LocalTarget) or over HTTP against cmd/slserve (HTTPTarget) —
// with a seeded, reproducible request stream and reports an HDR-style
// latency digest.
//
// It exists to measure what the paper's complexity analysis cannot: the
// tail latency of safety-level routing while the fault set is churning
// underneath the readers (DESIGN.md §9). Two loop disciplines are
// supported. The closed loop (Config.Rate == 0) keeps Config.Workers
// requests in flight and measures service time. The open loop offers a
// fixed schedule regardless of how fast the target answers and measures
// each request from its *scheduled* start, so a stalled target charges
// the stall to every request queued behind it — the standard correction
// for coordinated omission, without which tail percentiles under a
// churn storm would be flattered by exactly the stalls they are meant
// to expose.
//
// Key invariant: given the same Config.Seed, every worker replays the
// same op-kind and address sequence (per-worker splitmix64 streams via
// stats.RNG.Split), so two runs differing only in server-side settings
// — e.g. admission control on versus off — see identical offered load.
// Only requests that complete OK are recorded into the latency
// histograms; shed, drained, and deadline-exceeded requests are counted
// by class instead, so admission control cannot improve the reported
// tail by silently dropping the slow requests into it.
package loadgen
