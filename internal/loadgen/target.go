package loadgen

import (
	"context"
	"fmt"
	"io"
	"net/http"
	"net/url"
	"strings"

	"repro/internal/faults"
	"repro/internal/serve"
	"repro/internal/topo"
)

// faultEvent builds the churn event for toggling node a.
func faultEvent(a topo.NodeID, down bool) faults.ChurnEvent {
	kind := faults.DeltaRecoverNode
	if down {
		kind = faults.DeltaFailNode
	}
	return faults.ChurnEvent{Kind: kind, A: a}
}

// LocalTarget drives an in-process serve.Service through its
// context-aware readers — the same code path cmd/slserve handlers use,
// minus HTTP. Fault injection goes through TryApply so a full churn
// queue surfaces as ClassBacklog instead of stalling the storm.
type LocalTarget struct {
	Svc *serve.Service
}

func (l LocalTarget) Nodes() int { return l.Svc.Topology().Nodes() }

func (l LocalTarget) Route(ctx context.Context, src, dst int) error {
	_, err := l.Svc.RouteCtx(ctx, topo.NodeID(src), topo.NodeID(dst))
	return err
}

func (l LocalTarget) Batch(ctx context.Context, pairs [][2]int) error {
	reqs := make([]serve.Request, len(pairs))
	for i, p := range pairs {
		reqs[i] = serve.Request{Src: topo.NodeID(p[0]), Dst: topo.NodeID(p[1])}
	}
	_, err := l.Svc.BatchUnicastCtx(ctx, reqs)
	return err
}

func (l LocalTarget) RouteAll(ctx context.Context, src int) error {
	_, err := l.Svc.RouteAllCtx(ctx, topo.NodeID(src))
	return err
}

func (l LocalTarget) Fault(_ context.Context, a int, down bool) error {
	ev := faultEvent(topo.NodeID(a), down)
	return l.Svc.TryApply(ev)
}

func (l LocalTarget) ApplyEvent(_ context.Context, ev faults.ChurnEvent) error {
	return l.Svc.TryApply(ev)
}

// HTTPTarget drives a remote slserve over its HTTP endpoints,
// translating the server's status-code taxonomy back into the
// canonical errors so Classify works identically for both targets.
type HTTPTarget struct {
	// Base is the server root, e.g. "http://localhost:8080".
	Base string
	// Format renders a node for the URL (the slserve address notation,
	// e.g. 4-bit binary for a Q4).
	Format func(int) string
	// N is the topology size (slserve does not expose it; the caller
	// knows the -n it launched the server with).
	N int
	// Client defaults to http.DefaultClient.
	Client *http.Client
}

func (h HTTPTarget) Nodes() int { return h.N }

func (h HTTPTarget) client() *http.Client {
	if h.Client != nil {
		return h.Client
	}
	return http.DefaultClient
}

// get performs one GET and maps the response status to a canonical
// error. The per-request deadline rides on ctx; slserve's own -deadline
// remains the server-side ceiling.
func (h HTTPTarget) get(ctx context.Context, path string, q url.Values) error {
	u := strings.TrimRight(h.Base, "/") + path
	if len(q) > 0 {
		u += "?" + q.Encode()
	}
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, u, nil)
	if err != nil {
		return err
	}
	resp, err := h.client().Do(req)
	if err != nil {
		// The transport surfaces a blown deadline as a *url.Error
		// wrapping context.DeadlineExceeded; ctx.Err() disambiguates.
		if ctx.Err() != nil {
			return ctx.Err()
		}
		return err
	}
	defer resp.Body.Close()
	io.Copy(io.Discard, resp.Body)
	switch resp.StatusCode {
	case http.StatusOK, http.StatusAccepted:
		return nil
	case http.StatusTooManyRequests:
		return serve.ErrOverload
	case http.StatusServiceUnavailable:
		return serve.ErrDraining
	case http.StatusGatewayTimeout:
		return context.DeadlineExceeded
	default:
		return fmt.Errorf("loadgen: %s: status %d", path, resp.StatusCode)
	}
}

func (h HTTPTarget) fmtNode(a int) string {
	if h.Format != nil {
		return h.Format(a)
	}
	return fmt.Sprint(a)
}

func (h HTTPTarget) Route(ctx context.Context, src, dst int) error {
	return h.get(ctx, "/route", url.Values{"src": {h.fmtNode(src)}, "dst": {h.fmtNode(dst)}})
}

func (h HTTPTarget) Batch(ctx context.Context, pairs [][2]int) error {
	specs := make([]string, len(pairs))
	for i, p := range pairs {
		specs[i] = h.fmtNode(p[0]) + "-" + h.fmtNode(p[1])
	}
	return h.get(ctx, "/batch", url.Values{"pairs": {strings.Join(specs, ",")}})
}

func (h HTTPTarget) RouteAll(ctx context.Context, src int) error {
	return h.get(ctx, "/routeall", url.Values{"src": {h.fmtNode(src)}})
}

func (h HTTPTarget) Fault(ctx context.Context, a int, down bool) error {
	op := "recover-node"
	if down {
		op = "fail-node"
	}
	return h.get(ctx, "/fault", url.Values{"op": {op}, "a": {h.fmtNode(a)}})
}

func (h HTTPTarget) ApplyEvent(ctx context.Context, ev faults.ChurnEvent) error {
	// DeltaKind.String is exactly the slserve op vocabulary: fail-node,
	// recover-node, fail-link, recover-link.
	q := url.Values{"op": {ev.Kind.String()}, "a": {h.fmtNode(int(ev.A))}}
	if ev.Kind == faults.DeltaFailLink || ev.Kind == faults.DeltaRecoverLink {
		q.Set("b", h.fmtNode(int(ev.B)))
	}
	return h.get(ctx, "/fault", q)
}
