package loadgen

import (
	"context"

	"repro/internal/faults"
	"repro/internal/wire"
)

// WireTarget drives a remote wire server over the binary protocol —
// the same request surface as HTTPTarget, minus the JSON and the
// per-request connection ceremony. With a Coalescer attached, single
// Route calls from concurrent workers merge into pipelined OpBatch
// frames, which is how slload -wire saturates a server the HTTP path
// cannot.
type WireTarget struct {
	// Client is the pooled wire client (required).
	Client *wire.Client
	// Coalescer, when non-nil, batches Route calls into OpBatch frames.
	Coalescer *wire.Coalescer
	// N is the topology size (the wire protocol, like slserve, does
	// not expose it; the caller knows the -n it launched with).
	N int
}

func (w WireTarget) Nodes() int { return w.N }

func (w WireTarget) Route(ctx context.Context, src, dst int) error {
	if w.Coalescer != nil {
		_, _, err := w.Coalescer.Unicast(ctx, uint32(src), uint32(dst))
		return err
	}
	_, err := w.Client.Unicast(ctx, uint32(src), uint32(dst))
	return err
}

func (w WireTarget) Batch(ctx context.Context, pairs [][2]int) error {
	ps := make([]wire.Pair, len(pairs))
	for i, p := range pairs {
		ps[i] = wire.Pair{Src: uint32(p[0]), Dst: uint32(p[1])}
	}
	_, _, err := w.Client.Batch(ctx, ps, nil)
	return err
}

// RouteAll synthesizes the fan-out as one snapshot-pinned batch — the
// wire protocol has no separate fan-out opcode; a batch of N-1 pairs
// is the same work against the same single snapshot.
func (w WireTarget) RouteAll(ctx context.Context, src int) error {
	ps := make([]wire.Pair, 0, w.N-1)
	for d := 0; d < w.N; d++ {
		if d == src {
			continue
		}
		ps = append(ps, wire.Pair{Src: uint32(src), Dst: uint32(d)})
	}
	_, _, err := w.Client.Batch(ctx, ps, nil)
	return err
}

func (w WireTarget) Fault(ctx context.Context, a int, down bool) error {
	kind := faults.DeltaRecoverNode
	if down {
		kind = faults.DeltaFailNode
	}
	_, err := w.Client.Fault(ctx, wire.FaultReq{Kind: uint8(kind), A: uint32(a)})
	return err
}

func (w WireTarget) ApplyEvent(ctx context.Context, ev faults.ChurnEvent) error {
	_, err := w.Client.Fault(ctx, wire.FaultReq{
		Kind: uint8(ev.Kind), A: uint32(ev.A), B: uint32(ev.B),
	})
	return err
}
