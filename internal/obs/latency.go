package obs

import "time"

// Latency measurement. The serving path needs tail latencies (p99,
// p999), not just means, and it needs them without a lock on the hot
// path: every request does one atomic increment into a fixed-boundary
// histogram, and quantiles are estimated only at exposition time from
// a snapshot of the bucket counts. The estimate is exact to within one
// bucket boundary — with the log-spaced buckets below, a relative
// error bound of at most the 1-2-5 step (≤ 2.5×) that shrinks to the
// bucket width around the quantile, which is what fixed-boundary
// HDR-style recorders trade for being wait-free.

// Names of the latency metric series. All record microseconds into
// LatencyBuckets; the serve-engine ones are observed inside
// internal/serve, the http_* ones by cmd/slserve around each endpoint
// handler (including encoding), and latency_repair_us by the applier
// around one repair + publish cycle.
const (
	MetricLatencyRoute    = "latency_route_us"
	MetricLatencyBatch    = "latency_batch_us"
	MetricLatencyRouteAll = "latency_routeall_us"
	MetricLatencyRepair   = "latency_repair_us"

	MetricLatencyHTTPRoute    = "latency_http_route_us"
	MetricLatencyHTTPBatch    = "latency_http_batch_us"
	MetricLatencyHTTPRouteAll = "latency_http_routeall_us"
	MetricLatencyHTTPFault    = "latency_http_fault_us"
	MetricLatencyHTTPHealthz  = "latency_http_healthz_us"
	MetricLatencyHTTPProbe    = "latency_http_probe_us"
	MetricLatencyHTTPSyndrome = "latency_http_syndrome_us"
)

// LatencyBuckets are log-spaced (1-2-5 per decade) microsecond bounds
// from 1µs to 10s — wide enough to hold a snapshot-swap stall or a
// slow HTTP client without saturating, fine enough that a quantile
// estimate is within a 1-2-5 step of the truth.
var LatencyBuckets = []int64{
	1, 2, 5,
	10, 20, 50,
	100, 200, 500,
	1_000, 2_000, 5_000,
	10_000, 20_000, 50_000,
	100_000, 200_000, 500_000,
	1_000_000, 2_000_000, 5_000_000,
	10_000_000,
}

// LatencyHistogram returns the named histogram registered with
// LatencyBuckets. A nil registry returns a nil (no-op) histogram.
func (r *Registry) LatencyHistogram(name string) *Histogram {
	return r.Histogram(name, LatencyBuckets...)
}

// NewLatencyHistogram returns a standalone histogram over
// LatencyBuckets, unattached to any registry — the recorder the slload
// generator aggregates per-worker measurements into.
func NewLatencyHistogram() *Histogram { return newHistogram(LatencyBuckets) }

// ObserveSince records the elapsed time since start, in microseconds.
// The no-op path (nil histogram) skips the clock read entirely.
func (h *Histogram) ObserveSince(start time.Time) {
	if h == nil {
		return
	}
	h.Observe(time.Since(start).Microseconds())
}

// Quantile estimates the q-quantile (0 < q ≤ 1) of the recorded
// sample by linear interpolation inside the bucket where the
// cumulative count crosses q·Count. The estimate never leaves that
// bucket, so it is within one bucket boundary of the exact sample
// quantile (the property TestLatencyQuantileWithinBucket pins). It
// returns 0 on an empty snapshot; observations beyond the last bound
// clamp to it, so a saturated histogram reports the last finite bound.
func (s HistSnapshot) Quantile(q float64) float64 {
	if s.Count == 0 || len(s.Bounds) == 0 {
		return 0
	}
	if q < 0 {
		q = 0
	}
	if q > 1 {
		q = 1
	}
	rank := q * float64(s.Count)
	cum := int64(0)
	for i, c := range s.Counts {
		if float64(cum+c) < rank {
			cum += c
			continue
		}
		if i >= len(s.Bounds) { // +Inf bucket: clamp to the last bound
			return float64(s.Bounds[len(s.Bounds)-1])
		}
		lo := float64(0)
		if i > 0 {
			lo = float64(s.Bounds[i-1])
		}
		hi := float64(s.Bounds[i])
		if c == 0 {
			return hi
		}
		frac := (rank - float64(cum)) / float64(c)
		if frac < 0 {
			frac = 0
		}
		return lo + (hi-lo)*frac
	}
	return float64(s.Bounds[len(s.Bounds)-1])
}

// quantiles returns the standard p50/p90/p99/p999 digest, nil for an
// empty snapshot (so JSON exposition omits it rather than reporting
// zeros that look like measurements).
func (s HistSnapshot) quantiles() map[string]float64 {
	if s.Count == 0 {
		return nil
	}
	return map[string]float64{
		"p50":  s.Quantile(0.50),
		"p90":  s.Quantile(0.90),
		"p99":  s.Quantile(0.99),
		"p999": s.Quantile(0.999),
	}
}
