package obs

import (
	"sync/atomic"
	"testing"
)

// BenchmarkFlightRecorder measures the hot-path cost of one flight
// record: ID allocation + pack + seqlock ring write + anomaly check.
// This is the per-request overhead the serving path pays with the
// recorder on, so bench-gate watches it; the serial cell is the single
// reader's view, the parallel cell shows shard contention behavior.
func BenchmarkFlightRecorder(b *testing.B) {
	healthy := func(id uint64) FlightRecord {
		return FlightRecord{
			ID: id, Kind: ReqRoute, Gen: 7, Start: 1_700_000_000,
			LatencyUS: 12, Hamming: 5, Hops: 5, Items: 1,
			Cond: CondCodeC1, Outcome: OutcomeOptimal,
		}
	}
	b.Run("record", func(b *testing.B) {
		f := NewFlightRecorder(FlightOptions{Records: 4096})
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			rec := healthy(f.NextID())
			if reason := f.Record(&rec); reason != "" {
				b.Fatal(reason)
			}
		}
	})
	b.Run("record-parallel", func(b *testing.B) {
		f := NewFlightRecorder(FlightOptions{Records: 4096})
		b.ReportAllocs()
		b.ResetTimer()
		b.RunParallel(func(pb *testing.PB) {
			for pb.Next() {
				rec := healthy(f.NextID())
				if reason := f.Record(&rec); reason != "" {
					b.Fatal(reason)
				}
			}
		})
	})
	// A read of the whole ring while it is being written: the cost an
	// operator pays per /debug/flight scrape.
	b.Run("snapshot", func(b *testing.B) {
		f := NewFlightRecorder(FlightOptions{Records: 4096})
		for i := 0; i < 8192; i++ {
			rec := healthy(f.NextID())
			f.Record(&rec)
		}
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			if s := f.Snapshot(0); len(s.Records) == 0 {
				b.Fatal("empty snapshot")
			}
		}
	})
}

// BenchmarkFlightGauges measures the two metric primitives the flight
// work added to the serving path: the exemplar-carrying histogram
// observation (vs the plain one) and the high-water gauge raise.
func BenchmarkFlightGauges(b *testing.B) {
	b.Run("observe", func(b *testing.B) {
		r := NewRegistry()
		h := r.Histogram("bench_lat_us")
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			h.Observe(int64(i & 1023))
		}
	})
	b.Run("observe-exemplar", func(b *testing.B) {
		r := NewRegistry()
		h := r.Histogram("bench_lat_us")
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			h.ObserveEx(int64(i&1023), uint64(i+1))
		}
	})
	b.Run("gauge-max", func(b *testing.B) {
		r := NewRegistry()
		g := r.Gauge("bench_hwm")
		var x atomic.Int64
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			g.Max(x.Add(1) & 255)
		}
	})
}
