package obs

import (
	"bytes"
	"encoding/json"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"
)

func TestNilRegistryIsNoOp(t *testing.T) {
	var r *Registry
	c := r.Counter("x")
	g := r.Gauge("y")
	h := r.Histogram("z")
	if c != nil || g != nil || h != nil {
		t.Fatal("nil registry must hand out nil handles")
	}
	// None of these may panic, and all reads stay zero.
	c.Inc()
	c.Add(5)
	g.Set(3)
	g.Add(-1)
	h.Observe(7)
	if c.Value() != 0 || g.Value() != 0 || h.Snapshot().Count != 0 {
		t.Error("nil handles must read as zero")
	}
	r.KeepTraces(4)
	r.RecordGS(&GSTrace{})
	if r.LastGS() != nil {
		t.Error("nil registry retained a GS trace")
	}
	var o *RouteObserver = r.RouteObserver()
	if o != nil {
		t.Fatal("nil registry must yield a nil observer")
	}
	o.Admit(0, 1, 2, "C1", "optimal")
	o.Hop(0, 1, 0, 3, false)
	o.Blocked(1)
	o.Reroute(1, 2, "C3", "suboptimal", false)
	o.Done(2, "C3", "suboptimal", 4, 2, 1, "")
	if o.WithTrace(0, 1, 1) != nil || o.Trace() != nil {
		t.Error("nil observer must stay nil through WithTrace")
	}
	snap := r.Snapshot()
	if snap == nil || len(snap.Counters) != 0 {
		t.Error("nil registry snapshot must be empty but marshalable")
	}
	var buf bytes.Buffer
	if err := r.WriteJSON(&buf); err != nil {
		t.Errorf("nil WriteJSON: %v", err)
	}
	if err := r.WritePrometheus(&buf); err != nil {
		t.Errorf("nil WritePrometheus: %v", err)
	}
}

func TestCounterMonotone(t *testing.T) {
	r := NewRegistry()
	c := r.Counter("hits")
	c.Inc()
	c.Add(4)
	c.Add(-10) // ignored: counters are monotone
	if c.Value() != 5 {
		t.Errorf("value = %d, want 5", c.Value())
	}
	if r.Counter("hits") != c {
		t.Error("same name must return the same counter")
	}
}

func TestGauge(t *testing.T) {
	g := NewRegistry().Gauge("depth")
	g.Set(10)
	g.Add(-3)
	if g.Value() != 7 {
		t.Errorf("value = %d, want 7", g.Value())
	}
}

func TestHistogramBuckets(t *testing.T) {
	r := NewRegistry()
	h := r.Histogram("lat", 1, 4, 16)
	for _, v := range []int64{0, 1, 2, 4, 5, 100} {
		h.Observe(v)
	}
	s := h.Snapshot()
	// le=1: {0,1}; le=4: {2,4}; le=16: {5}; +Inf: {100}.
	want := []int64{2, 2, 1, 1}
	for i, w := range want {
		if s.Counts[i] != w {
			t.Errorf("bucket %d = %d, want %d (snapshot %+v)", i, s.Counts[i], w, s)
		}
	}
	if s.Count != 6 || s.Sum != 112 {
		t.Errorf("count %d sum %d", s.Count, s.Sum)
	}
	// Unspecified bounds fall back to DefaultBuckets, sorted.
	d := r.Histogram("hops")
	if got := d.Snapshot(); len(got.Bounds) != len(DefaultBuckets) {
		t.Errorf("default bounds = %v", got.Bounds)
	}
}

func TestKeepTracesRing(t *testing.T) {
	r := NewRegistry()
	r.KeepTraces(2)
	for i := 0; i < 5; i++ {
		r.keepTrace(&RouteTrace{Source: i})
	}
	snap := r.Snapshot()
	if len(snap.Traces) != 2 || snap.Traces[0].Source != 3 || snap.Traces[1].Source != 4 {
		t.Fatalf("ring kept %+v, want sources 3,4", snap.Traces)
	}
	r.KeepTraces(1) // shrinking trims to the newest
	if tr := r.Snapshot().Traces; len(tr) != 1 || tr[0].Source != 4 {
		t.Errorf("after shrink: %+v", tr)
	}
	r.KeepTraces(0)
	r.keepTrace(&RouteTrace{Source: 9})
	if tr := r.Snapshot().Traces; len(tr) != 0 {
		t.Errorf("retention disabled but kept %+v", tr)
	}
}

func TestPrometheusFormat(t *testing.T) {
	r := NewRegistry()
	r.Counter("route_unicasts_total").Add(3)
	r.Gauge("gs_last_rounds").Set(2)
	h := r.Histogram("route_path_hops", 1, 2)
	h.Observe(1)
	h.Observe(2)
	h.Observe(5)
	r.RecordGS(&GSTrace{Kind: "sequential", Rounds: 2, Deltas: []int{4, 2}})

	var buf bytes.Buffer
	if err := r.WritePrometheus(&buf); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, want := range []string{
		"# TYPE safecube_route_unicasts_total counter\nsafecube_route_unicasts_total 3\n",
		"# TYPE safecube_gs_last_rounds gauge\nsafecube_gs_last_rounds 2\n",
		"# TYPE safecube_route_path_hops histogram\n",
		// Buckets are cumulative and end with +Inf == _count.
		"safecube_route_path_hops_bucket{le=\"1\"} 1\n",
		"safecube_route_path_hops_bucket{le=\"2\"} 2\n",
		"safecube_route_path_hops_bucket{le=\"+Inf\"} 3\n",
		"safecube_route_path_hops_sum 8\n",
		"safecube_route_path_hops_count 3\n",
		"safecube_gs_trace_rounds 2\n",
		"safecube_gs_trace_round_delta{round=\"1\"} 4\n",
		"safecube_gs_trace_round_delta{round=\"2\"} 2\n",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("exposition missing %q:\n%s", want, out)
		}
	}
}

func TestPromNameSanitized(t *testing.T) {
	if got := promName("per-link.msgs total"); got != "safecube_per_link_msgs_total" {
		t.Errorf("promName = %q", got)
	}
}

func TestJSONRoundTrip(t *testing.T) {
	r := NewRegistry()
	r.Counter("a").Inc()
	r.Gauge("b").Set(-2)
	r.Histogram("c").Observe(3)
	var buf bytes.Buffer
	if err := r.WriteJSON(&buf); err != nil {
		t.Fatal(err)
	}
	var snap Snapshot
	if err := json.Unmarshal(buf.Bytes(), &snap); err != nil {
		t.Fatalf("dump does not parse: %v", err)
	}
	if snap.Counters["a"] != 1 || snap.Gauges["b"] != -2 || snap.Histograms["c"].Count != 1 {
		t.Errorf("round-trip lost data: %+v", snap)
	}
}

func TestHTTPEndpoints(t *testing.T) {
	r := NewRegistry()
	r.Counter("route_unicasts_total").Add(7)
	mux := r.Mux()

	rec := httptest.NewRecorder()
	mux.ServeHTTP(rec, httptest.NewRequest("GET", "/metrics", nil))
	if ct := rec.Header().Get("Content-Type"); !strings.HasPrefix(ct, "text/plain") {
		t.Errorf("/metrics content type %q", ct)
	}
	if !strings.Contains(rec.Body.String(), "safecube_route_unicasts_total 7") {
		t.Errorf("/metrics body:\n%s", rec.Body.String())
	}

	rec = httptest.NewRecorder()
	mux.ServeHTTP(rec, httptest.NewRequest("GET", "/vars", nil))
	if ct := rec.Header().Get("Content-Type"); !strings.HasPrefix(ct, "application/json") {
		t.Errorf("/vars content type %q", ct)
	}
	var snap Snapshot
	if err := json.Unmarshal(rec.Body.Bytes(), &snap); err != nil {
		t.Fatalf("/vars is not JSON: %v", err)
	}
	if snap.Counters["route_unicasts_total"] != 7 {
		t.Errorf("/vars counters: %+v", snap.Counters)
	}
}

func TestTracedObserverSharesCounters(t *testing.T) {
	r := NewRegistry()
	r.KeepTraces(8)
	base := r.RouteObserver()
	tr1 := base.WithTrace(0, 3, 2)
	tr1.Admit(0, 2, 4, "C1", "optimal")
	tr1.Hop(0, 1, 0, 4, false)
	tr1.Hop(1, 3, 1, 4, false)
	tr1.Done(3, "C1", "optimal", 2, 2, 0, "")
	// The untraced base observer feeds the same counters without events.
	base.Admit(5, 1, 4, "C2", "optimal")
	base.Hop(5, 4, 0, 3, false)
	base.Done(4, "C2", "optimal", 1, 1, 0, "")

	s := r.Snapshot()
	if s.Counters[MetricUnicastsTotal] != 2 || s.Counters[MetricHopsTotal] != 3 {
		t.Errorf("shared counters: %+v", s.Counters)
	}
	if base.Trace() != nil {
		t.Error("base observer must not accumulate events")
	}
	if got := tr1.Trace(); len(got.Events) != 4 || got.Outcome != "optimal" || got.Stretch != 0 {
		t.Errorf("trace = %+v", got)
	}
	if len(s.Traces) != 1 {
		t.Errorf("ring holds %d traces, want 1 (untraced Done must not enqueue)", len(s.Traces))
	}
	// Failure outcomes stay out of the hop/stretch histograms.
	base.Admit(6, 3, 0, "none", "failure")
	base.Done(6, "none", "failure", 0, 3, 0, "")
	if h := r.Snapshot().Histograms[MetricHopsHist]; h.Count != 2 {
		t.Errorf("failure leaked into path-hops histogram: %+v", h)
	}
}

func TestConcurrentMetricUpdates(t *testing.T) {
	r := NewRegistry()
	const workers, iters = 16, 500
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			c := r.Counter("shared")
			h := r.Histogram("histo")
			for i := 0; i < iters; i++ {
				c.Inc()
				r.Gauge("g").Set(int64(i))
				h.Observe(int64(i % 10))
				if i%100 == 0 {
					r.Snapshot()
				}
			}
		}()
	}
	wg.Wait()
	if got := r.Counter("shared").Value(); got != workers*iters {
		t.Errorf("lost increments: %d, want %d", got, workers*iters)
	}
	if got := r.Histogram("histo").Snapshot().Count; got != workers*iters {
		t.Errorf("lost observations: %d, want %d", got, workers*iters)
	}
}
