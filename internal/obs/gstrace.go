package obs

import (
	"fmt"
	"strings"
)

// GSTrace records one run of the safety-level computation — the paper's
// GLOBAL_STATUS / EXTENDED_GLOBAL_STATUS — in whichever execution model
// produced it. The sequential model fills Rounds and Deltas; the
// distributed (simnet) models additionally fill the message-cost fields,
// turning the paper's "n-1 rounds of information exchange among
// neighboring nodes" into measured traffic.
type GSTrace struct {
	// Kind identifies the execution model: "sequential", "repair",
	// "simnet-sync" or "simnet-async".
	Kind string `json:"kind"`
	// Topo names the topology ("Q7", "GH(2x3x2)"); Summary falls back to
	// "Q<Dim>" when empty, so binary producers may leave it unset.
	Topo string `json:"topo,omitempty"`
	// Dim, NodeFaults and LinkFaults describe the instance.
	Dim        int `json:"dim"`
	NodeFaults int `json:"node_faults"`
	LinkFaults int `json:"link_faults"`
	// Rounds is the number of rounds until no level changed (the paper's
	// Corollary bound is n-1; Fig. 2 plots this statistic).
	Rounds int `json:"rounds"`
	// Deltas[r-1] is the number of nodes whose level changed in round r.
	Deltas []int `json:"deltas,omitempty"`
	// Updates counts level changes in the asynchronous protocol (its
	// analogue of round counting).
	Updates int `json:"updates,omitempty"`
	// Messages is the total number of level messages sent during the
	// phase (distributed models only).
	Messages int `json:"messages,omitempty"`
	// PerLink maps "addr-addr" to the number of level messages that
	// crossed that link in either direction. Populated only for small
	// cubes (<= 256 nodes) to keep snapshots bounded; MaxLinkMessages
	// and Messages are always filled.
	PerLink map[string]int `json:"per_link,omitempty"`
	// MaxLinkMessages is the busiest link's message count.
	MaxLinkMessages int `json:"max_link_messages,omitempty"`
	// DirtyNodes and Evals describe incremental repairs (Kind "repair"):
	// total dirty-frontier slots processed and NODE_STATUS evaluations
	// spent converging back to the fixpoint.
	DirtyNodes int `json:"dirty_nodes,omitempty"`
	Evals      int `json:"evals,omitempty"`
	// TableBytes is the memory footprint of the run's retained level
	// tables (core.Assignment.TableBytes: one byte per node per distinct
	// table) — the per-snapshot copy cost of the flat SoA layout.
	TableBytes int `json:"table_bytes,omitempty"`
}

// Summary renders the trace as a one-paragraph transcript line.
func (t *GSTrace) Summary() string {
	if t == nil {
		return "no GS run recorded"
	}
	name := t.Topo
	if name == "" {
		name = fmt.Sprintf("Q%d", t.Dim)
	}
	var b strings.Builder
	fmt.Fprintf(&b, "%s GS on %s (%d node faults, %d link faults): stabilized in %d rounds",
		t.Kind, name, t.NodeFaults, t.LinkFaults, t.Rounds)
	if len(t.Deltas) > 0 {
		fmt.Fprintf(&b, ", per-round level changes %v", t.Deltas)
	}
	if t.Updates > 0 {
		fmt.Fprintf(&b, ", %d async updates", t.Updates)
	}
	if t.DirtyNodes > 0 {
		fmt.Fprintf(&b, ", %d dirty nodes (%d evals)", t.DirtyNodes, t.Evals)
	}
	if t.Messages > 0 {
		fmt.Fprintf(&b, ", %d messages (busiest link %d)", t.Messages, t.MaxLinkMessages)
	}
	if t.TableBytes > 0 {
		fmt.Fprintf(&b, ", %d table bytes", t.TableBytes)
	}
	return b.String()
}
