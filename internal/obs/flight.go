package obs

import (
	"fmt"
	"sort"
	"sync"
	"sync/atomic"
	"time"
)

// Flight recorder: an always-on, lock-free ring of compact per-request
// records on the serving path. Aggregate counters say THAT something
// degraded; the flight recorder says WHICH request, against WHICH
// snapshot generation, admitted under WHICH safety-level case, and how
// far its path strayed from the Hamming distance. Anomalous requests
// (errors, route failures, non-minimal paths, latency over a per-kind
// threshold, torn-publication canary trips) are additionally promoted
// to a small bounded incident buffer together with a full per-hop
// RouteTrace, so a p999 histogram exemplar links to a replayable
// decision sequence.
//
// Hot-path cost model: one atomic ID allocation, one packed seqlock
// ring write (stamp invalidate + 4 payload words + stamp commit, all
// word-sized atomics), and a handful of integer packs — no allocation,
// no lock, no string. Trace reconstruction (which does allocate) runs
// only on promotion, and promotion is rare by construction.

// ReqKind classifies the serving-path request a flight record covers.
type ReqKind uint8

const (
	// ReqRoute is a single-unicast read (RouteCtx).
	ReqRoute ReqKind = iota
	// ReqBatch is a batched read (BatchUnicastCtx).
	ReqBatch
	// ReqRouteAll is a full fan-out read (RouteAllCtx).
	ReqRouteAll
	// ReqApply is a churn write (only recorded when refused: backlog).
	ReqApply
	// ReqDiagnose is one PMC diagnosis sweep (internal/diagnose
	// Reconciler.Tick): an Ambiguous decode records OutcomeFailure,
	// which the anomaly classifier promotes to an incident.
	ReqDiagnose

	numReqKinds
)

// String names the request kind.
func (k ReqKind) String() string {
	switch k {
	case ReqRoute:
		return "route"
	case ReqBatch:
		return "batch"
	case ReqRouteAll:
		return "routeall"
	case ReqApply:
		return "apply"
	case ReqDiagnose:
		return "diagnose"
	default:
		return fmt.Sprintf("kind(%d)", int(k))
	}
}

// MarshalText renders the kind for JSON exposition.
func (k ReqKind) MarshalText() ([]byte, error) { return []byte(k.String()), nil }

// UnmarshalText parses the exposition form (used by the smoke checker
// and by tools replaying /debug/flight dumps).
func (k *ReqKind) UnmarshalText(b []byte) error {
	switch string(b) {
	case "route":
		*k = ReqRoute
	case "batch":
		*k = ReqBatch
	case "routeall":
		*k = ReqRouteAll
	case "apply":
		*k = ReqApply
	case "diagnose":
		*k = ReqDiagnose
	default:
		return fmt.Errorf("obs: unknown request kind %q", b)
	}
	return nil
}

// ErrClass buckets the serving-path error a request resolved with.
// ErrClassNone means the request was served; a route the safety-level
// admission refused carries OutcomeFailure plus ErrClassUnreachable.
type ErrClass uint8

const (
	ErrClassNone ErrClass = iota
	// ErrClassOverload: shed by token-bucket admission (ErrOverload).
	ErrClassOverload
	// ErrClassBacklog: churn refused by a full apply queue (ErrBacklog).
	ErrClassBacklog
	// ErrClassDeadline: the caller's context deadline expired.
	ErrClassDeadline
	// ErrClassCanceled: the caller's context was canceled.
	ErrClassCanceled
	// ErrClassDraining: refused during shutdown drain (ErrDraining).
	ErrClassDraining
	// ErrClassTorn: the torn-publication canary tripped (a snapshot
	// observed with gen != genCheck). Never expected in production.
	ErrClassTorn
	// ErrClassOther: a transport anomaly (core.Route.Err) or an
	// unclassified error.
	ErrClassOther
	// ErrClassUnreachable: the router refused the pair at admission —
	// no safe route exists under the current fault state (the paper's
	// Theorem-4 disconnected-detection surface). Distinct from
	// ErrClassOther so a partition reads as "unreachable", not as a
	// generic transport anomaly. Must stay within the record format's
	// 4-bit error field (15 max).
	ErrClassUnreachable
)

// String names the error class ("" for none, matching omitempty).
func (e ErrClass) String() string {
	switch e {
	case ErrClassNone:
		return ""
	case ErrClassOverload:
		return "overload"
	case ErrClassBacklog:
		return "backlog"
	case ErrClassDeadline:
		return "deadline"
	case ErrClassCanceled:
		return "canceled"
	case ErrClassDraining:
		return "draining"
	case ErrClassTorn:
		return "torn"
	case ErrClassOther:
		return "other"
	case ErrClassUnreachable:
		return "unreachable"
	default:
		return fmt.Sprintf("err(%d)", int(e))
	}
}

// MarshalText renders the error class for JSON exposition.
func (e ErrClass) MarshalText() ([]byte, error) { return []byte(e.String()), nil }

// UnmarshalText parses the exposition form.
func (e *ErrClass) UnmarshalText(b []byte) error {
	switch string(b) {
	case "":
		*e = ErrClassNone
	case "overload":
		*e = ErrClassOverload
	case "backlog":
		*e = ErrClassBacklog
	case "deadline":
		*e = ErrClassDeadline
	case "canceled":
		*e = ErrClassCanceled
	case "draining":
		*e = ErrClassDraining
	case "torn":
		*e = ErrClassTorn
	case "other":
		*e = ErrClassOther
	case "unreachable":
		*e = ErrClassUnreachable
	default:
		return fmt.Errorf("obs: unknown error class %q", b)
	}
	return nil
}

// CondCode is the admission condition in compact form, numerically
// aligned with core.Condition (0 none, 1 C1, 2 C2, 3 C3).
type CondCode uint8

const (
	CondCodeNone CondCode = iota
	CondCodeC1
	CondCodeC2
	CondCodeC3
)

// String names the condition as the paper does.
func (c CondCode) String() string {
	switch c {
	case CondCodeC1:
		return "C1"
	case CondCodeC2:
		return "C2"
	case CondCodeC3:
		return "C3"
	default:
		return "none"
	}
}

// MarshalText renders the condition for JSON exposition.
func (c CondCode) MarshalText() ([]byte, error) { return []byte(c.String()), nil }

// UnmarshalText parses the exposition form.
func (c *CondCode) UnmarshalText(b []byte) error {
	switch string(b) {
	case "none":
		*c = CondCodeNone
	case "C1":
		*c = CondCodeC1
	case "C2":
		*c = CondCodeC2
	case "C3":
		*c = CondCodeC3
	default:
		return fmt.Errorf("obs: unknown condition %q", b)
	}
	return nil
}

// OutcomeCode is the routing outcome in compact form: 0 means the
// request never reached the router (refused or a churn write),
// otherwise core.Outcome + 1.
type OutcomeCode uint8

const (
	OutcomeNone OutcomeCode = iota
	OutcomeOptimal
	OutcomeSuboptimal
	OutcomeFailure
)

// String names the outcome ("" for not-routed, matching omitempty).
func (o OutcomeCode) String() string {
	switch o {
	case OutcomeOptimal:
		return "optimal"
	case OutcomeSuboptimal:
		return "suboptimal"
	case OutcomeFailure:
		return "failure"
	default:
		return ""
	}
}

// MarshalText renders the outcome for JSON exposition.
func (o OutcomeCode) MarshalText() ([]byte, error) { return []byte(o.String()), nil }

// UnmarshalText parses the exposition form.
func (o *OutcomeCode) UnmarshalText(b []byte) error {
	switch string(b) {
	case "":
		*o = OutcomeNone
	case "optimal":
		*o = OutcomeOptimal
	case "suboptimal":
		*o = OutcomeSuboptimal
	case "failure":
		*o = OutcomeFailure
	default:
		return fmt.Errorf("obs: unknown outcome %q", b)
	}
	return nil
}

// FlightRecord is one request's compact flight entry. In the ring it is
// packed into four 64-bit payload words (see pack); the struct form is
// what readers and the JSON endpoints see. Field ranges are clamped at
// pack time: generation and microsecond fields to 32 bits, hop counts
// to 12 bits, detours to 8, items to 16 — far beyond anything the
// serving path produces, and documented in DESIGN.md §10.
type FlightRecord struct {
	// ID is the request ID, allocated per context-aware request and
	// propagated through the router (core.Route.FlightID) and into the
	// latency histogram exemplars.
	ID   uint64  `json:"id"`
	Kind ReqKind `json:"kind"`
	// Gen is the generation of the snapshot the request was served
	// against (0 for requests refused before snapshot selection).
	Gen uint64 `json:"gen"`
	// Start is the admission wall time in Unix seconds — coarse on
	// purpose; ordering within the ring is by ID.
	Start int64 `json:"start_unix,omitempty"`
	// LatencyUS is the serving latency in microseconds.
	LatencyUS int64 `json:"latency_us"`
	// DeadlineUS is the request's remaining deadline budget at
	// admission, in microseconds (0 when the context had no deadline).
	DeadlineUS int64 `json:"deadline_us,omitempty"`
	// Hamming, Hops and Detours carry the route-quality triple of a
	// single unicast: H(s,d), links traveled, and spare-dimension
	// detour hops. For every delivered safety-level route,
	// Hops - Hamming == 2*Detours (the property test pins this).
	Hamming int `json:"hamming,omitempty"`
	Hops    int `json:"hops,omitempty"`
	Detours int `json:"detours,omitempty"`
	// Items is the request size: 1 for a route, the pair count for a
	// batch, the destination count for a fan-out, the event count for a
	// refused churn write.
	Items int `json:"items,omitempty"`
	// Cond is the safety-level admission case (C1/C2/C3) that held at
	// the source; Outcome the resulting class.
	Cond    CondCode    `json:"cond"`
	Outcome OutcomeCode `json:"outcome,omitempty"`
	// Err is the serving-path error class, if the request was refused
	// or hit a transport anomaly.
	Err ErrClass `json:"err,omitempty"`
	// Stale marks a read served while churn was queued behind the
	// published snapshot.
	Stale bool `json:"stale,omitempty"`
}

// clampU32 clamps a non-negative int64 into 32 bits.
func clampU32(v int64) uint64 {
	if v < 0 {
		return 0
	}
	if v > 0xffffffff {
		return 0xffffffff
	}
	return uint64(v)
}

func clampN(v, max int) uint64 {
	if v < 0 {
		return 0
	}
	if v > max {
		return uint64(max)
	}
	return uint64(v)
}

// pack encodes the record into the four ring payload words.
func (rec *FlightRecord) pack() (w0, w1, w2, w3 uint64) {
	w0 = rec.ID
	g := rec.Gen
	if g > 0xffffffff {
		g = 0xffffffff
	}
	w1 = g<<32 | clampU32(rec.LatencyUS)
	w2 = clampU32(rec.DeadlineUS)<<32 | uint64(uint32(rec.Start))
	w3 = uint64(rec.Kind&0xf) |
		uint64(rec.Cond&0x3)<<4 |
		uint64(rec.Outcome&0x3)<<6 |
		uint64(rec.Err&0xf)<<8
	if rec.Stale {
		w3 |= 1 << 12
	}
	w3 |= clampN(rec.Hamming, 0xfff) << 16
	w3 |= clampN(rec.Hops, 0xfff) << 28
	w3 |= clampN(rec.Detours, 0xff) << 40
	w3 |= clampN(rec.Items, 0xffff) << 48
	return
}

// unpack decodes a ring slot back into the struct form.
func unpack(w0, w1, w2, w3 uint64) FlightRecord {
	return FlightRecord{
		ID:         w0,
		Gen:        w1 >> 32,
		LatencyUS:  int64(w1 & 0xffffffff),
		DeadlineUS: int64(w2 >> 32),
		Start:      int64(int32(uint32(w2 & 0xffffffff))),
		Kind:       ReqKind(w3 & 0xf),
		Cond:       CondCode(w3 >> 4 & 0x3),
		Outcome:    OutcomeCode(w3 >> 6 & 0x3),
		Err:        ErrClass(w3 >> 8 & 0xf),
		Stale:      w3>>12&1 == 1,
		Hamming:    int(w3 >> 16 & 0xfff),
		Hops:       int(w3 >> 28 & 0xfff),
		Detours:    int(w3 >> 40 & 0xff),
		Items:      int(w3 >> 48 & 0xffff),
	}
}

// flightSlot is one seqlock-protected ring entry. The writer
// invalidates the stamp, stores the payload words, then commits the
// per-shard sequence number as the stamp; a reader accepts a slot only
// when the stamp is nonzero and unchanged across its payload reads.
// Stamps grow by the ring size per wrap, so a stamp value never recurs
// on a slot and an interrupted write is always detected.
type flightSlot struct {
	stamp atomic.Uint64
	w0    atomic.Uint64
	w1    atomic.Uint64
	w2    atomic.Uint64
	w3    atomic.Uint64
}

// flightShard is one independently-sequenced slice of the ring. Writers
// pick a shard by request ID, so concurrent writers contend on a shard
// counter only 1/nshards of the time; padding keeps the counters off
// each other's cache lines.
type flightShard struct {
	seq   atomic.Uint64
	_     [56]byte
	slots []flightSlot
	mask  uint64
}

// FlightOptions size a FlightRecorder. The zero value is ready to use.
type FlightOptions struct {
	// Records bounds the ring (total across shards, rounded up to a
	// power of two per shard; <= 0 means 1024).
	Records int
	// Incidents bounds the promoted-incident buffer (<= 0 means 64).
	Incidents int
	// SlowRouteUS, SlowBatchUS and SlowRouteAllUS are the per-kind
	// latency anomaly thresholds in microseconds (<= 0 means the
	// defaults: 50ms, 250ms, 1s).
	SlowRouteUS    int64
	SlowBatchUS    int64
	SlowRouteAllUS int64
	// PromoteGapUS throttles incident promotion: within one anomaly
	// class (each error class, route-failure, non-minimal, slow), at
	// most one record per gap is promoted. Under a fault load every
	// route past a faulty region is non-minimal, so promoting each one
	// would churn the bounded incident buffer with duplicates and put
	// trace reconstruction on the hot path; one exemplar per class per
	// gap keeps promotion cost amortized to nothing while the ring
	// still records every request. 0 means the 1ms default; negative
	// disables throttling (every anomaly promotes).
	PromoteGapUS int64
	// Registry, when non-nil, receives the recorder's own counters
	// (flight_records_total, flight_incidents_total).
	Registry *Registry
}

// Flight recorder metric names.
const (
	MetricFlightRecords   = "flight_records_total"
	MetricFlightIncidents = "flight_incidents_total"
)

// Default per-kind slow thresholds (µs).
const (
	defaultSlowRouteUS    = 50_000
	defaultSlowBatchUS    = 250_000
	defaultSlowRouteAllUS = 1_000_000
)

const flightShards = 8

// defaultPromoteGapUS is the per-class promotion throttle (1ms).
const defaultPromoteGapUS = 1000

// Anomaly classes for the promotion throttle: one slot per error class
// (ErrClassOverload..ErrClassUnreachable), then route-failure,
// non-minimal and slow.
const (
	classFailure = iota + int(ErrClassUnreachable) // error classes occupy 0..Unreachable-1
	classNonMinimal
	classSlow
	numAnomalyClasses
)

// FlightRecorder is the always-on request recorder. All methods are
// safe for arbitrary concurrent use; a nil recorder is a no-op.
type FlightRecorder struct {
	ids    atomic.Uint64
	shards [flightShards]flightShard
	slow   [numReqKinds]int64

	// promoteGapUS throttles promotion per anomaly class; lastPromote
	// holds each class's last promotion time in Unix microseconds.
	promoteGapUS int64
	lastPromote  [numAnomalyClasses]atomic.Int64

	mu          sync.Mutex
	incidents   []*Incident
	incidentCap int
	promoted    uint64

	mRecords   *Counter
	mIncidents *Counter
}

// NewFlightRecorder builds a recorder sized by opts.
func NewFlightRecorder(opts FlightOptions) *FlightRecorder {
	records := opts.Records
	if records <= 0 {
		records = 1024
	}
	per := 8
	for per*flightShards < records {
		per <<= 1
	}
	f := &FlightRecorder{
		incidentCap:  opts.Incidents,
		promoteGapUS: opts.PromoteGapUS,
		mRecords:     opts.Registry.Counter(MetricFlightRecords),
		mIncidents:   opts.Registry.Counter(MetricFlightIncidents),
	}
	if f.promoteGapUS == 0 {
		f.promoteGapUS = defaultPromoteGapUS
	}
	if f.incidentCap <= 0 {
		f.incidentCap = 64
	}
	for i := range f.shards {
		f.shards[i].slots = make([]flightSlot, per)
		f.shards[i].mask = uint64(per - 1)
	}
	f.slow[ReqRoute] = opts.SlowRouteUS
	f.slow[ReqBatch] = opts.SlowBatchUS
	f.slow[ReqRouteAll] = opts.SlowRouteAllUS
	if f.slow[ReqRoute] <= 0 {
		f.slow[ReqRoute] = defaultSlowRouteUS
	}
	if f.slow[ReqBatch] <= 0 {
		f.slow[ReqBatch] = defaultSlowBatchUS
	}
	if f.slow[ReqRouteAll] <= 0 {
		f.slow[ReqRouteAll] = defaultSlowRouteAllUS
	}
	return f
}

// NextID allocates the next request ID (1-based; 0 is "unrecorded").
func (f *FlightRecorder) NextID() uint64 {
	if f == nil {
		return 0
	}
	return f.ids.Add(1)
}

// Record writes rec into the ring and returns the anomaly reason if
// the record should be promoted to an incident ("" for a healthy
// request, or for an anomaly throttled by the per-class promotion
// gap). This is the hot-path entry: no allocation, no lock.
func (f *FlightRecorder) Record(rec *FlightRecord) string {
	if f == nil {
		return ""
	}
	sh := &f.shards[rec.ID%flightShards]
	w0, w1, w2, w3 := rec.pack()
	seq := sh.seq.Add(1)
	sl := &sh.slots[seq&sh.mask]
	sl.stamp.Store(0)
	sl.w0.Store(w0)
	sl.w1.Store(w1)
	sl.w2.Store(w2)
	sl.w3.Store(w3)
	sl.stamp.Store(seq)
	f.mRecords.Inc()
	reason, class := f.anomaly(rec)
	if reason == "" {
		return ""
	}
	if f.promoteGapUS > 0 {
		// One promotion per class per gap; the CAS makes concurrent
		// anomalies of one class elect a single winner.
		if class < 0 || class >= numAnomalyClasses {
			class = 0
		}
		now := time.Now().UnixMicro()
		last := f.lastPromote[class].Load()
		if now-last < f.promoteGapUS || !f.lastPromote[class].CompareAndSwap(last, now) {
			return ""
		}
	}
	return reason
}

// anomaly classifies a record against the promotion triggers,
// returning the reason and the throttle class.
func (f *FlightRecorder) anomaly(rec *FlightRecord) (string, int) {
	if rec.Err != ErrClassNone {
		return "error:" + rec.Err.String(), int(rec.Err) - 1
	}
	if rec.Outcome == OutcomeFailure {
		if rec.Kind == ReqDiagnose {
			return "diagnosis-ambiguous", classFailure
		}
		return "route-failure", classFailure
	}
	if rec.Detours > 0 || (rec.Outcome != OutcomeNone && rec.Hops > rec.Hamming) {
		return "non-minimal", classNonMinimal
	}
	if s := f.slow[rec.Kind%numReqKinds]; s > 0 && rec.LatencyUS >= s {
		return "slow", classSlow
	}
	return "", 0
}

// Incident is one promoted anomaly: the flight record, the reason it
// tripped, and (for single unicasts) the reconstructed per-hop trace.
type Incident struct {
	// Seq is the promotion sequence number (1-based, monotonic).
	Seq uint64 `json:"seq"`
	// Reason names the trigger: "error:<class>", "route-failure",
	// "diagnosis-ambiguous", "non-minimal" or "slow".
	Reason string `json:"reason"`
	// AtUS is the promotion wall time in Unix microseconds.
	AtUS   int64        `json:"at_us"`
	Record FlightRecord `json:"record"`
	Trace  *RouteTrace  `json:"trace,omitempty"`
}

// Promote appends an incident for rec (reason as returned by Record;
// trace may be nil for batch/fan-out/refused requests). The buffer
// keeps the most recent Incidents entries.
func (f *FlightRecorder) Promote(rec *FlightRecord, reason string, trace *RouteTrace) {
	if f == nil {
		return
	}
	inc := &Incident{Reason: reason, AtUS: time.Now().UnixMicro(), Record: *rec, Trace: trace}
	f.mu.Lock()
	f.promoted++
	inc.Seq = f.promoted
	f.incidents = append(f.incidents, inc)
	if len(f.incidents) > f.incidentCap {
		f.incidents = append(f.incidents[:0], f.incidents[len(f.incidents)-f.incidentCap:]...)
	}
	f.mu.Unlock()
	f.mIncidents.Inc()
}

// FlightSnapshot is the JSON view of the ring (/debug/flight).
type FlightSnapshot struct {
	// Issued is the number of request IDs allocated so far.
	Issued uint64 `json:"issued"`
	// Capacity is the total ring capacity in records.
	Capacity int `json:"capacity"`
	// Records holds the retained records, newest first.
	Records []FlightRecord `json:"records"`
}

// Records returns the currently retained records, newest first,
// truncated to max when max > 0. Reads race benignly with writers:
// slots caught mid-write are skipped, never returned torn.
func (f *FlightRecorder) Records(max int) []FlightRecord {
	if f == nil {
		return nil
	}
	out := make([]FlightRecord, 0, 64)
	for i := range f.shards {
		sh := &f.shards[i]
		for j := range sh.slots {
			sl := &sh.slots[j]
			st := sl.stamp.Load()
			if st == 0 {
				continue
			}
			w0, w1, w2, w3 := sl.w0.Load(), sl.w1.Load(), sl.w2.Load(), sl.w3.Load()
			if sl.stamp.Load() != st {
				continue
			}
			out = append(out, unpack(w0, w1, w2, w3))
		}
	}
	sort.Slice(out, func(a, b int) bool { return out[a].ID > out[b].ID })
	if max > 0 && len(out) > max {
		out = out[:max]
	}
	return out
}

// Snapshot captures the ring for export. max > 0 truncates to the max
// newest records.
func (f *FlightRecorder) Snapshot(max int) *FlightSnapshot {
	s := &FlightSnapshot{Records: []FlightRecord{}}
	if f == nil {
		return s
	}
	s.Issued = f.ids.Load()
	for i := range f.shards {
		s.Capacity += len(f.shards[i].slots)
	}
	s.Records = f.Records(max)
	return s
}

// IncidentSnapshot is the JSON view of the incident buffer
// (/debug/incidents).
type IncidentSnapshot struct {
	// Total counts promotions ever (>= len(Incidents)).
	Total uint64 `json:"total"`
	// Capacity is the buffer bound.
	Capacity int `json:"capacity"`
	// Incidents holds the retained incidents, newest first.
	Incidents []*Incident `json:"incidents"`
}

// Incidents captures the incident buffer, newest first.
func (f *FlightRecorder) Incidents() *IncidentSnapshot {
	s := &IncidentSnapshot{Incidents: []*Incident{}}
	if f == nil {
		return s
	}
	f.mu.Lock()
	defer f.mu.Unlock()
	s.Total = f.promoted
	s.Capacity = f.incidentCap
	for i := len(f.incidents) - 1; i >= 0; i-- {
		s.Incidents = append(s.Incidents, f.incidents[i])
	}
	return s
}
