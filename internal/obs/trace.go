package obs

import (
	"fmt"
	"strings"
)

// EventKind discriminates route trace events.
type EventKind int

const (
	// EvAdmit: the source-side admission test ran (at the source, or at
	// the current node after a Reroute re-admission).
	EvAdmit EventKind = iota
	// EvHop: the message crossed one link.
	EvHop
	// EvBlocked: no usable preferred neighbor remained mid-flight.
	EvBlocked
	// EvReroute: the session was re-admitted from the current node after
	// fresh levels were computed (Section 2.2 demand-driven scenario).
	EvReroute
	// EvAbort: a re-admission failed; the message is stuck (the paper's
	// "might be aborted" branch).
	EvAbort
	// EvDone: the attempt resolved (delivered or failed at the source).
	EvDone
)

// String names the event kind for transcripts.
func (k EventKind) String() string {
	switch k {
	case EvAdmit:
		return "admit"
	case EvHop:
		return "hop"
	case EvBlocked:
		return "blocked"
	case EvReroute:
		return "reroute"
	case EvAbort:
		return "abort"
	case EvDone:
		return "done"
	default:
		return fmt.Sprintf("event(%d)", int(k))
	}
}

// RouteEvent is one entry of a unicast decision trace. Node identities
// are raw IDs so that obs stays independent of the topology package;
// Format renders them through a caller-supplied address formatter.
type RouteEvent struct {
	Kind EventKind `json:"kind"`
	// Node is where the decision happened (for hops: the receiving node).
	Node int `json:"node"`
	// From is the sending node of a hop.
	From int `json:"from,omitempty"`
	// Dim is the dimension crossed by a hop.
	Dim int `json:"dim,omitempty"`
	// Spare marks the C3 detour hop (preferred-vs-spare choice).
	Spare bool `json:"spare,omitempty"`
	// Level is the decision's safety level: the source's own level for
	// admissions, the chosen neighbor's observed level for hops.
	Level int `json:"level,omitempty"`
	// Hamming is the remaining Hamming distance at admission time.
	Hamming int `json:"hamming,omitempty"`
	// Cond and Outcome carry the admission result (C1/C2/C3/none,
	// optimal/suboptimal/failure) for admit/reroute/done events.
	Cond    string `json:"cond,omitempty"`
	Outcome string `json:"outcome,omitempty"`
	// Note carries a transport anomaly description.
	Note string `json:"note,omitempty"`
}

// RouteTrace is the full event sequence of one unicast attempt.
type RouteTrace struct {
	Source  int `json:"source"`
	Dest    int `json:"dest"`
	Hamming int `json:"hamming"`
	// RequestID links the trace to its flight record and histogram
	// exemplars (0 when the unicast was not served by a Server).
	RequestID uint64 `json:"request_id,omitempty"`
	// Generation is the fault-set generation of the level snapshot the
	// unicast routed against, so traces gathered under concurrent churn
	// stay attributable to one level state (0 when unknown).
	Generation uint64       `json:"generation,omitempty"`
	Events     []RouteEvent `json:"events"`
	// Cond and Outcome mirror the final admission condition and outcome.
	Cond    string `json:"cond,omitempty"`
	Outcome string `json:"outcome,omitempty"`
	// PathLen is the number of hops traveled (0 on failure); Stretch is
	// PathLen - Hamming for delivered messages.
	PathLen  int `json:"path_len"`
	Stretch  int `json:"stretch"`
	Reroutes int `json:"reroutes"`
}

// Format renders the trace as a human-readable transcript, using fmtNode
// to print node addresses (pass nil for raw integers).
func (t *RouteTrace) Format(fmtNode func(int) string) string {
	if t == nil {
		return ""
	}
	if fmtNode == nil {
		fmtNode = func(a int) string { return fmt.Sprintf("%d", a) }
	}
	var b strings.Builder
	fmt.Fprintf(&b, "trace %s -> %s (H = %d)", fmtNode(t.Source), fmtNode(t.Dest), t.Hamming)
	if t.Generation != 0 {
		fmt.Fprintf(&b, " gen %d", t.Generation)
	}
	if t.RequestID != 0 {
		fmt.Fprintf(&b, " req %d", t.RequestID)
	}
	b.WriteByte('\n')
	for _, e := range t.Events {
		switch e.Kind {
		case EvAdmit:
			fmt.Fprintf(&b, "  admit   at %s: H=%d S=%d -> %s (%s)\n",
				fmtNode(e.Node), e.Hamming, e.Level, e.Cond, e.Outcome)
		case EvHop:
			role := "preferred"
			if e.Spare {
				role = "spare"
			}
			fmt.Fprintf(&b, "  hop     %s -> %s dim %d (%s, neighbor level %d)\n",
				fmtNode(e.From), fmtNode(e.Node), e.Dim, role, e.Level)
		case EvBlocked:
			fmt.Fprintf(&b, "  blocked at %s: no usable preferred neighbor\n", fmtNode(e.Node))
		case EvReroute:
			fmt.Fprintf(&b, "  reroute at %s: H=%d -> %s (%s)\n",
				fmtNode(e.Node), e.Hamming, e.Cond, e.Outcome)
		case EvAbort:
			fmt.Fprintf(&b, "  abort   at %s: re-admission failed, message stuck\n", fmtNode(e.Node))
		case EvDone:
			if e.Note != "" {
				fmt.Fprintf(&b, "  done    %s at %s: %s\n", e.Outcome, fmtNode(e.Node), e.Note)
			} else {
				fmt.Fprintf(&b, "  done    %s at %s\n", e.Outcome, fmtNode(e.Node))
			}
		default:
			fmt.Fprintf(&b, "  %s\n", e.Kind)
		}
	}
	fmt.Fprintf(&b, "outcome %s via %s: %d hops vs H = %d (stretch %d, reroutes %d)\n",
		t.Outcome, t.Cond, t.PathLen, t.Hamming, t.Stretch, t.Reroutes)
	return b.String()
}

// RouteObserver instruments unicast routing: it always maintains the
// aggregate counters and, when armed with WithTrace, additionally
// records the structured per-hop event sequence. A nil observer is a
// no-op; the non-trace counter path is safe for concurrent use by many
// routers sharing one observer.
type RouteObserver struct {
	reg *Registry

	unicasts  *Counter
	admitC1   *Counter
	admitC2   *Counter
	admitC3   *Counter
	admitNone *Counter

	optimal    *Counter
	suboptimal *Counter
	failure    *Counter

	hops     *Counter
	spares   *Counter
	blocked  *Counter
	reroutes *Counter
	aborts   *Counter
	errors   *Counter

	hammingH *Histogram
	hopsH    *Histogram
	stretchH *Histogram

	// trace, when non-nil, is the single-unicast event recorder. A
	// traced observer must not be shared across concurrent unicasts.
	trace *RouteTrace
}

// Route metric names (see the README metric reference table).
const (
	MetricUnicastsTotal       = "route_unicasts_total"
	MetricAdmitC1Total        = "route_admit_c1_total"
	MetricAdmitC2Total        = "route_admit_c2_total"
	MetricAdmitC3Total        = "route_admit_c3_total"
	MetricAdmitNoneTotal      = "route_admit_none_total"
	MetricOutcomeOptimal      = "route_outcome_optimal_total"
	MetricOutcomeSuboptimal   = "route_outcome_suboptimal_total"
	MetricOutcomeFailure      = "route_outcome_failure_total"
	MetricHopsTotal           = "route_hops_total"
	MetricSpareHopsTotal      = "route_spare_hops_total"
	MetricBlockedTotal        = "route_blocked_total"
	MetricReroutesTotal       = "route_reroutes_total"
	MetricRerouteAbortsTotal  = "route_reroute_aborts_total"
	MetricForwardErrorsTotal  = "route_forward_errors_total"
	MetricHammingHist         = "route_hamming"
	MetricHopsHist            = "route_path_hops"
	MetricStretchHist         = "route_stretch"
	MetricLevelsCacheHits     = "levels_cache_hits_total"
	MetricLevelsCacheMisses   = "levels_cache_misses_total"
	MetricGSRunsTotal         = "gs_runs_total"
	MetricGSLastRounds        = "gs_last_rounds"
	MetricGSRoundsHist        = "gs_rounds"
	MetricGSLevelChangesTotal = "gs_level_changes_total"
	// Incremental repair metrics: a repair counts as a cache miss (the
	// assignment was recomputed) plus a repairs counter, so
	// misses - repairs = cold recomputations.
	MetricLevelsCacheRepairs = "levels_cache_repairs_total"
	MetricGSRepairRounds     = "gs_repair_last_rounds"
	MetricGSRepairDirtyNodes = "gs_repair_dirty_nodes_total"
	MetricGSRepairEvals      = "gs_repair_evals_total"
	// Serving-engine metrics (internal/serve): the lock-free snapshot
	// readers, the bounded apply queue, and the swap path.
	MetricServeSnapshotGen    = "serve_snapshot_generation"
	MetricServeSwapsTotal     = "serve_swaps_total"
	MetricServeSwapLastNs     = "serve_swap_last_ns"
	MetricServeSwapMicros     = "serve_swap_micros"
	MetricServeRepairsTotal   = "serve_snapshot_repairs_total"
	MetricServeColdTotal      = "serve_snapshot_cold_total"
	MetricServeQueueDepth     = "serve_apply_queue_depth"
	MetricServeApplyTotal     = "serve_apply_events_total"
	MetricServeApplyErrors    = "serve_apply_errors_total"
	MetricServeApplyRejected  = "serve_apply_rejected_total"
	MetricServeApplyCoalesced = "serve_apply_coalesced_total"
	MetricServeRoutesTotal    = "serve_routes_total"
	MetricServeStaleReads     = "serve_stale_reads_total"
	MetricServeBatchesTotal   = "serve_batches_total"
	MetricServeBatchItems     = "serve_batch_items_total"
	MetricServeFanoutsTotal   = "serve_fanouts_total"
	MetricServeFanoutItems    = "serve_fanout_items_total"
	// Serving-path hardening metrics: token-bucket load shedding
	// (distinct from serve_apply_rejected_total, which is writer-side
	// churn backpressure), context cancellation, and the drain state.
	MetricServeOverloadTotal = "serve_overload_total"
	MetricServeDeadlineTotal = "serve_deadline_total"
	MetricServeInflight      = "serve_inflight"
	MetricServeDraining      = "serve_draining"
	// Staleness and backlog telemetry: age of the published snapshot,
	// how many generations the applier is behind the accepted churn,
	// and the apply queue's high-water occupancy since start.
	MetricServeSnapshotAgeUs = "serve_snapshot_age_us"
	MetricServeRepairLag     = "serve_repair_lag_gens"
	MetricServeQueueHWM      = "serve_apply_queue_hwm"
	// Binary wire-protocol data plane (internal/serve WireServer):
	// connection lifecycle and the frame/error-frame flow.
	MetricWireConns       = "wire_conns_active"
	MetricWireAccepted    = "wire_conns_accepted_total"
	MetricWireFrames      = "wire_frames_total"
	MetricWireErrorFrames = "wire_error_frames_total"
	// Self-healing monitor metrics (internal/monitor): probe sweep
	// outcomes, fault declarations driven through the apply path, and
	// flap-suppression activity.
	MetricMonitorProbesTotal     = "monitor_probes_total"
	MetricMonitorMissesTotal     = "monitor_probe_misses_total"
	MetricMonitorDeclaredTotal   = "monitor_declared_total"
	MetricMonitorUndeclaredTotal = "monitor_undeclared_total"
	MetricMonitorFlapSuppressed  = "monitor_flap_suppressions_total"
	MetricMonitorApplyErrors     = "monitor_apply_errors_total"
	MetricMonitorDeclaredNodes   = "monitor_declared_nodes"
	// PMC syndrome-diagnosis metrics (internal/diagnose): collect and
	// decode sweeps, verdict split, declarations driven through the
	// apply path, and the decode latency histogram.
	MetricDiagnoseSweepsTotal     = "diagnose_sweeps_total"
	MetricDiagnoseTestsTotal      = "diagnose_tests_total"
	MetricDiagnoseIdentifiedTotal = "diagnose_identified_total"
	MetricDiagnoseAmbiguousTotal  = "diagnose_ambiguous_total"
	MetricDiagnoseDeclaredTotal   = "diagnose_declared_total"
	MetricDiagnoseRecoveredTotal  = "diagnose_recovered_total"
	MetricDiagnoseApplyErrors     = "diagnose_apply_errors_total"
	MetricDiagnoseDeclaredNodes   = "diagnose_declared_nodes"
	MetricLatencyDecode           = "diagnose_decode_us"
)

// RouteObserver builds (or rebuilds) an observer bound to the registry,
// resolving every counter handle once. A nil registry yields a nil
// observer, which every instrumented call site treats as "off".
func (r *Registry) RouteObserver() *RouteObserver {
	if r == nil {
		return nil
	}
	return &RouteObserver{
		reg:        r,
		unicasts:   r.Counter(MetricUnicastsTotal),
		admitC1:    r.Counter(MetricAdmitC1Total),
		admitC2:    r.Counter(MetricAdmitC2Total),
		admitC3:    r.Counter(MetricAdmitC3Total),
		admitNone:  r.Counter(MetricAdmitNoneTotal),
		optimal:    r.Counter(MetricOutcomeOptimal),
		suboptimal: r.Counter(MetricOutcomeSuboptimal),
		failure:    r.Counter(MetricOutcomeFailure),
		hops:       r.Counter(MetricHopsTotal),
		spares:     r.Counter(MetricSpareHopsTotal),
		blocked:    r.Counter(MetricBlockedTotal),
		reroutes:   r.Counter(MetricReroutesTotal),
		aborts:     r.Counter(MetricRerouteAbortsTotal),
		errors:     r.Counter(MetricForwardErrorsTotal),
		hammingH:   r.Histogram(MetricHammingHist),
		hopsH:      r.Histogram(MetricHopsHist),
		stretchH:   r.Histogram(MetricStretchHist, 0, 1, 2, 3, 4, 8),
	}
}

// WithTrace returns a copy of the observer armed with a fresh trace for
// one unicast from src to dst. The copy shares the parent's counters.
func (o *RouteObserver) WithTrace(src, dst, hamming int) *RouteObserver {
	return o.WithTraceGen(src, dst, hamming, 0)
}

// WithTraceGen is WithTrace with the fault-set generation of the level
// snapshot the unicast will route against, so the trace stays
// attributable to one level state under churn.
func (o *RouteObserver) WithTraceGen(src, dst, hamming int, gen uint64) *RouteObserver {
	if o == nil {
		return nil
	}
	cp := *o
	cp.trace = &RouteTrace{Source: src, Dest: dst, Hamming: hamming, Generation: gen}
	return &cp
}

// Trace returns the recorded trace (nil when not tracing).
func (o *RouteObserver) Trace() *RouteTrace {
	if o == nil {
		return nil
	}
	return o.trace
}

// Admit records the source-side admission decision.
func (o *RouteObserver) Admit(node, hamming, srcLevel int, cond, outcome string) {
	if o == nil {
		return
	}
	o.unicasts.Inc()
	o.hammingH.Observe(int64(hamming))
	o.countCond(cond)
	if o.trace != nil {
		o.trace.Events = append(o.trace.Events, RouteEvent{
			Kind: EvAdmit, Node: node, Hamming: hamming, Level: srcLevel,
			Cond: cond, Outcome: outcome,
		})
	}
}

func (o *RouteObserver) countCond(cond string) {
	switch cond {
	case "C1":
		o.admitC1.Inc()
	case "C2":
		o.admitC2.Inc()
	case "C3":
		o.admitC3.Inc()
	default:
		o.admitNone.Inc()
	}
}

// Hop records one link crossing; level is the chosen neighbor's observed
// safety level and spare marks the C3 detour hop.
func (o *RouteObserver) Hop(from, to, dim, level int, spare bool) {
	if o == nil {
		return
	}
	o.hops.Inc()
	if spare {
		o.spares.Inc()
	}
	if o.trace != nil {
		o.trace.Events = append(o.trace.Events, RouteEvent{
			Kind: EvHop, Node: to, From: from, Dim: dim, Level: level, Spare: spare,
		})
	}
}

// Blocked records a mid-flight blockage (ErrBlocked).
func (o *RouteObserver) Blocked(at int) {
	if o == nil {
		return
	}
	o.blocked.Inc()
	if o.trace != nil {
		o.trace.Events = append(o.trace.Events, RouteEvent{Kind: EvBlocked, Node: at})
	}
}

// Reroute records a re-admission attempt from node at; a Failure outcome
// is the paper's abort branch.
func (o *RouteObserver) Reroute(at, hamming int, cond, outcome string, failed bool) {
	if o == nil {
		return
	}
	if failed {
		o.aborts.Inc()
		if o.trace != nil {
			o.trace.Events = append(o.trace.Events, RouteEvent{
				Kind: EvAbort, Node: at, Hamming: hamming, Cond: cond, Outcome: outcome,
			})
		}
		return
	}
	o.reroutes.Inc()
	if o.trace != nil {
		o.trace.Events = append(o.trace.Events, RouteEvent{
			Kind: EvReroute, Node: at, Hamming: hamming, Cond: cond, Outcome: outcome,
		})
	}
}

// Done resolves the attempt: outcome is the final class, pathLen the
// hops traveled, note an optional transport anomaly. It finalizes the
// trace (if any) and hands it to the registry's ring buffer.
func (o *RouteObserver) Done(at int, cond, outcome string, pathLen, hamming, reroutes int, note string) {
	if o == nil {
		return
	}
	switch outcome {
	case "optimal":
		o.optimal.Inc()
	case "suboptimal":
		o.suboptimal.Inc()
	default:
		o.failure.Inc()
	}
	if note != "" {
		o.errors.Inc()
	}
	if outcome != "failure" {
		o.hopsH.Observe(int64(pathLen))
		o.stretchH.Observe(int64(pathLen - hamming))
	}
	if o.trace != nil {
		o.trace.Events = append(o.trace.Events, RouteEvent{
			Kind: EvDone, Node: at, Cond: cond, Outcome: outcome, Note: note,
		})
		o.trace.Cond = cond
		o.trace.Outcome = outcome
		o.trace.PathLen = pathLen
		if outcome != "failure" {
			o.trace.Stretch = pathLen - hamming
		}
		o.trace.Reroutes = reroutes
		o.reg.keepTrace(o.trace)
	}
}
