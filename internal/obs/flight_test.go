package obs

import (
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
	"sync"
	"testing"
)

// TestFlightPackRoundTrip pins the 4-word ring encoding: every field
// within its documented range survives pack/unpack unchanged.
func TestFlightPackRoundTrip(t *testing.T) {
	recs := []FlightRecord{
		{},
		{ID: 1, Kind: ReqRoute, Gen: 1, LatencyUS: 1, Cond: CondCodeC1, Outcome: OutcomeOptimal},
		{
			ID: 1<<64 - 1, Kind: ReqApply, Gen: 0xffffffff,
			Start: 0x7fffffff, LatencyUS: 0xffffffff, DeadlineUS: 0xffffffff,
			Hamming: 0xfff, Hops: 0xfff, Detours: 0xff, Items: 0xffff,
			Cond: CondCodeC3, Outcome: OutcomeFailure, Err: ErrClassOther, Stale: true,
		},
		{
			ID: 42, Kind: ReqBatch, Gen: 9999, Start: 1_700_000_000,
			LatencyUS: 1234, DeadlineUS: 5678, Hamming: 8, Hops: 12,
			Detours: 2, Items: 64, Cond: CondCodeC2, Outcome: OutcomeSuboptimal,
			Err: ErrClassTorn, Stale: true,
		},
	}
	for i, rec := range recs {
		got := unpack(rec.pack())
		if got != rec {
			t.Errorf("record %d: round trip changed\n got %+v\nwant %+v", i, got, rec)
		}
	}
}

// TestFlightPackClamps pins the saturation behavior for out-of-range
// values: clamped, never wrapped.
func TestFlightPackClamps(t *testing.T) {
	rec := FlightRecord{
		ID: 7, Gen: 1 << 40, LatencyUS: 1 << 40, DeadlineUS: -5,
		Hamming: 1 << 20, Hops: -1, Detours: 300, Items: 1 << 20,
	}
	got := unpack(rec.pack())
	if got.Gen != 0xffffffff {
		t.Errorf("Gen = %d, want clamp to 0xffffffff", got.Gen)
	}
	if got.LatencyUS != 0xffffffff {
		t.Errorf("LatencyUS = %d, want clamp to 0xffffffff", got.LatencyUS)
	}
	if got.DeadlineUS != 0 {
		t.Errorf("DeadlineUS = %d, want negative clamped to 0", got.DeadlineUS)
	}
	if got.Hamming != 0xfff || got.Hops != 0 || got.Detours != 0xff || got.Items != 0xffff {
		t.Errorf("counts = H%d/h%d/d%d/i%d, want 4095/0/255/65535",
			got.Hamming, got.Hops, got.Detours, got.Items)
	}
}

// TestFlightEnumText round-trips every enum value through its text form,
// which is what the JSON endpoints and the smoke checker rely on.
func TestFlightEnumText(t *testing.T) {
	for k := ReqRoute; k < numReqKinds; k++ {
		b, err := k.MarshalText()
		if err != nil {
			t.Fatalf("kind %d: %v", k, err)
		}
		var back ReqKind
		if err := back.UnmarshalText(b); err != nil || back != k {
			t.Errorf("kind %q: round trip gave %v, %v", b, back, err)
		}
	}
	for e := ErrClassNone; e <= ErrClassUnreachable; e++ {
		b, _ := e.MarshalText()
		var back ErrClass
		if err := back.UnmarshalText(b); err != nil || back != e {
			t.Errorf("err class %q: round trip gave %v, %v", b, back, err)
		}
	}
	for c := CondCodeNone; c <= CondCodeC3; c++ {
		b, _ := c.MarshalText()
		var back CondCode
		if err := back.UnmarshalText(b); err != nil || back != c {
			t.Errorf("cond %q: round trip gave %v, %v", b, back, err)
		}
	}
	for o := OutcomeNone; o <= OutcomeFailure; o++ {
		b, _ := o.MarshalText()
		var back OutcomeCode
		if err := back.UnmarshalText(b); err != nil || back != o {
			t.Errorf("outcome %q: round trip gave %v, %v", b, back, err)
		}
	}
	var k ReqKind
	if err := k.UnmarshalText([]byte("bogus")); err == nil {
		t.Error("UnmarshalText accepted bogus kind")
	}
}

// TestFlightAnomaly pins the promotion triggers and their precedence.
func TestFlightAnomaly(t *testing.T) {
	f := NewFlightRecorder(FlightOptions{SlowRouteUS: 100})
	cases := []struct {
		rec  FlightRecord
		want string
	}{
		{FlightRecord{Kind: ReqRoute, Outcome: OutcomeOptimal, Hamming: 3, Hops: 3}, ""},
		{FlightRecord{Kind: ReqRoute, Err: ErrClassOverload}, "error:overload"},
		{FlightRecord{Kind: ReqRoute, Err: ErrClassTorn, Outcome: OutcomeFailure}, "error:torn"},
		{FlightRecord{Kind: ReqRoute, Err: ErrClassUnreachable, Outcome: OutcomeFailure}, "error:unreachable"},
		{FlightRecord{Kind: ReqRoute, Outcome: OutcomeFailure, Hamming: 3}, "route-failure"},
		{FlightRecord{Kind: ReqRoute, Outcome: OutcomeSuboptimal, Hamming: 3, Hops: 5, Detours: 1}, "non-minimal"},
		{FlightRecord{Kind: ReqRoute, Outcome: OutcomeOptimal, Hamming: 3, Hops: 4}, "non-minimal"},
		{FlightRecord{Kind: ReqRoute, Outcome: OutcomeOptimal, Hamming: 3, Hops: 3, LatencyUS: 100}, "slow"},
		{FlightRecord{Kind: ReqBatch, LatencyUS: 100}, ""}, // batch threshold is the 250ms default
	}
	for i, c := range cases {
		if got, _ := f.anomaly(&c.rec); got != c.want {
			t.Errorf("case %d: anomaly = %q, want %q", i, got, c.want)
		}
	}
}

// TestFlightPromotionThrottle pins the per-class promotion gate: one
// promotion per anomaly class per gap, independent classes unaffected,
// and a negative gap disables throttling.
func TestFlightPromotionThrottle(t *testing.T) {
	f := NewFlightRecorder(FlightOptions{PromoteGapUS: 60_000_000}) // 1min: first only
	rec := FlightRecord{ID: 1, Err: ErrClassOverload}
	if r := f.Record(&rec); r != "error:overload" {
		t.Fatalf("first overload = %q, want promoted", r)
	}
	rec2 := FlightRecord{ID: 2, Err: ErrClassOverload}
	if r := f.Record(&rec2); r != "" {
		t.Fatalf("second overload = %q, want throttled", r)
	}
	rec3 := FlightRecord{ID: 3, Outcome: OutcomeFailure}
	if r := f.Record(&rec3); r != "route-failure" {
		t.Fatalf("failure = %q, want promoted (independent class)", r)
	}

	un := NewFlightRecorder(FlightOptions{PromoteGapUS: -1})
	for i := 1; i <= 3; i++ {
		rec := FlightRecord{ID: uint64(i), Err: ErrClassOverload}
		if r := un.Record(&rec); r != "error:overload" {
			t.Fatalf("unthrottled record %d = %q, want promoted", i, r)
		}
	}
}

// TestFlightRecorderBasic exercises record/snapshot ordering and bounds.
func TestFlightRecorderBasic(t *testing.T) {
	reg := NewRegistry()
	f := NewFlightRecorder(FlightOptions{Records: 64, Incidents: 4, Registry: reg})
	for i := 0; i < 50; i++ {
		id := f.NextID()
		rec := FlightRecord{ID: id, Kind: ReqRoute, Gen: 3, LatencyUS: int64(i), Hamming: 2, Hops: 2, Outcome: OutcomeOptimal}
		if reason := f.Record(&rec); reason != "" {
			t.Fatalf("healthy record %d flagged %q", id, reason)
		}
	}
	s := f.Snapshot(0)
	if s.Issued != 50 {
		t.Errorf("Issued = %d, want 50", s.Issued)
	}
	if s.Capacity != 64 {
		t.Errorf("Capacity = %d, want 64", s.Capacity)
	}
	if len(s.Records) != 50 {
		t.Errorf("retained %d records, want 50", len(s.Records))
	}
	for i := 1; i < len(s.Records); i++ {
		if s.Records[i-1].ID <= s.Records[i].ID {
			t.Fatalf("records not newest-first at %d: %d then %d", i, s.Records[i-1].ID, s.Records[i].ID)
		}
	}
	if got := f.Snapshot(5); len(got.Records) != 5 || got.Records[0].ID != 50 {
		t.Errorf("Snapshot(5) = %d records starting %d, want 5 starting 50", len(got.Records), got.Records[0].ID)
	}
	if got := reg.Snapshot().Counters[MetricFlightRecords]; got != 50 {
		t.Errorf("%s = %d, want 50", MetricFlightRecords, got)
	}
}

// TestFlightIncidentsBounded pins the incident buffer semantics: Total
// counts every promotion, the buffer keeps only the newest cap entries.
func TestFlightIncidentsBounded(t *testing.T) {
	f := NewFlightRecorder(FlightOptions{Incidents: 4})
	for i := 1; i <= 10; i++ {
		rec := FlightRecord{ID: uint64(i), Err: ErrClassOverload}
		f.Promote(&rec, "error:overload", nil)
	}
	s := f.Incidents()
	if s.Total != 10 {
		t.Errorf("Total = %d, want 10", s.Total)
	}
	if s.Capacity != 4 || len(s.Incidents) != 4 {
		t.Fatalf("retained %d/%d, want 4/4", len(s.Incidents), s.Capacity)
	}
	for i, want := range []uint64{10, 9, 8, 7} {
		if s.Incidents[i].Record.ID != want {
			t.Errorf("incident %d: ID = %d, want %d", i, s.Incidents[i].Record.ID, want)
		}
		if s.Incidents[i].Seq != want {
			t.Errorf("incident %d: Seq = %d, want %d", i, s.Incidents[i].Seq, want)
		}
	}
}

// TestFlightNil verifies the whole API is a no-op on a nil recorder, so
// callers never need to branch.
func TestFlightNil(t *testing.T) {
	var f *FlightRecorder
	if id := f.NextID(); id != 0 {
		t.Errorf("nil NextID = %d", id)
	}
	if r := f.Record(&FlightRecord{Err: ErrClassOverload}); r != "" {
		t.Errorf("nil Record = %q", r)
	}
	f.Promote(&FlightRecord{}, "x", nil)
	if got := f.Records(0); got != nil {
		t.Errorf("nil Records = %v", got)
	}
	if s := f.Snapshot(0); s == nil || s.Records == nil || len(s.Records) != 0 {
		t.Errorf("nil Snapshot = %+v", s)
	}
	if s := f.Incidents(); s == nil || s.Incidents == nil || len(s.Incidents) != 0 {
		t.Errorf("nil Incidents = %+v", s)
	}
}

// deriveRecord builds a record whose every field is a pure function of
// its ID, so the hammer readers can verify any slot they observe is
// internally consistent — i.e. the seqlock never exposed a torn write.
func deriveRecord(id uint64) FlightRecord {
	h := int(id % 10)
	d := int(id % 3)
	return FlightRecord{
		ID:         id,
		Kind:       ReqKind(id % 3),
		Gen:        id * 7 % 100000,
		Start:      int64(id % 100000),
		LatencyUS:  int64(id % 49999),
		DeadlineUS: int64(id % 997),
		Hamming:    h,
		Hops:       h + 2*d,
		Detours:    d,
		Items:      int(id % 100),
		Cond:       CondCode(id % 4),
		Outcome:    OutcomeCode(id % 4),
		Err:        ErrClass(id % 8),
		Stale:      id%2 == 0,
	}
}

// TestFlightRecorderHammer drives many writers over a deliberately tiny
// ring (maximum wrap pressure) while readers continuously snapshot.
// Every record a reader observes must equal deriveRecord(its ID) — a
// single mismatched field means the seqlock leaked a torn write. Run
// with -race this also proves the ring is data-race-free.
func TestFlightRecorderHammer(t *testing.T) {
	f := NewFlightRecorder(FlightOptions{Records: 64})
	const (
		writers      = 8
		readers      = 4
		perWriter    = 20000
		readsPerGoro = 400
	)
	var wg sync.WaitGroup
	for w := 0; w < writers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < perWriter; i++ {
				rec := deriveRecord(f.NextID())
				f.Record(&rec)
			}
		}()
	}
	errs := make(chan error, readers)
	for r := 0; r < readers; r++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < readsPerGoro; i++ {
				for _, rec := range f.Records(0) {
					if want := deriveRecord(rec.ID); rec != want {
						select {
						case errs <- fmt.Errorf("torn read for ID %d:\n got %+v\nwant %+v", rec.ID, rec, want):
						default:
						}
						return
					}
				}
			}
		}()
	}
	wg.Wait()
	close(errs)
	if err := <-errs; err != nil {
		t.Fatal(err)
	}
	if got := f.ids.Load(); got != writers*perWriter {
		t.Errorf("issued %d IDs, want %d", got, writers*perWriter)
	}
}

// TestIncidentGoldenJSON pins the /debug/incidents wire format against
// a golden file, so the JSON surface (field names, enum spellings,
// omitempty behavior, trace embedding) cannot drift silently. Regenerate
// with UPDATE_GOLDEN=1 go test ./internal/obs -run IncidentGolden.
func TestIncidentGoldenJSON(t *testing.T) {
	f := NewFlightRecorder(FlightOptions{Incidents: 8})
	rec := FlightRecord{
		ID: 17, Kind: ReqRoute, Gen: 4, Start: 1700000000,
		LatencyUS: 321, DeadlineUS: 250000, Hamming: 2, Hops: 4,
		Detours: 1, Items: 1, Cond: CondCodeC3, Outcome: OutcomeSuboptimal,
		Stale: true,
	}
	trace := &RouteTrace{
		Source: 0, Dest: 3, Hamming: 2, RequestID: 17, Generation: 4,
		Cond: "C3", Outcome: "suboptimal", PathLen: 4, Stretch: 2,
		Events: []RouteEvent{
			{Kind: EvAdmit, Node: 0, Hamming: 2, Level: 1, Cond: "C3", Outcome: "suboptimal"},
			{Kind: EvHop, Node: 4, From: 0, Dim: 2, Spare: true, Level: 4},
			{Kind: EvHop, Node: 5, From: 4, Dim: 0, Level: 4},
			{Kind: EvHop, Node: 7, From: 5, Dim: 1, Level: 4},
			{Kind: EvHop, Node: 3, From: 7, Dim: 2, Level: 4},
			{Kind: EvDone, Node: 3, Cond: "C3", Outcome: "suboptimal"},
		},
	}
	f.Promote(&rec, "non-minimal", trace)
	s := f.Incidents()
	// Promotion wall time is the one nondeterministic field.
	s.Incidents[0].AtUS = 0

	got, err := json.MarshalIndent(s, "", "  ")
	if err != nil {
		t.Fatal(err)
	}
	got = append(got, '\n')

	golden := filepath.Join("testdata", "incident.golden.json")
	if os.Getenv("UPDATE_GOLDEN") != "" {
		if err := os.MkdirAll("testdata", 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(golden, got, 0o644); err != nil {
			t.Fatal(err)
		}
	}
	want, err := os.ReadFile(golden)
	if err != nil {
		t.Fatalf("%v (regenerate with UPDATE_GOLDEN=1)", err)
	}
	if string(got) != string(want) {
		t.Errorf("incident JSON drifted from %s:\n got:\n%s\nwant:\n%s", golden, got, want)
	}
}
