package obs

import (
	"math/rand"
	"sort"
	"sync"
	"testing"
	"time"
)

// bucketIndex returns the index of the bucket a value lands in under
// the histogram's "first bound >= v" rule (len(bounds) for +Inf).
func bucketIndex(bounds []int64, v int64) int {
	return sort.Search(len(bounds), func(i int) bool { return bounds[i] >= v })
}

// TestLatencyQuantileWithinBucket is the histogram-correctness
// property: for random samples from several distributions, the
// estimated quantile must land in the same bucket as the exact sample
// quantile or in one adjacent to it — i.e. the estimate is within one
// bucket boundary of the truth, the best any fixed-boundary recorder
// can promise.
func TestLatencyQuantileWithinBucket(t *testing.T) {
	rng := rand.New(rand.NewSource(19950701))
	distributions := map[string]func() int64{
		// Uniform over the full bucket range.
		"uniform": func() int64 { return rng.Int63n(12_000_000) },
		// Log-uniform: equal mass per decade, the latency-like shape.
		"loguniform": func() int64 {
			return int64(math10(rng.Float64() * 7)) // 1..10^7 µs
		},
		// Bimodal: fast path plus a heavy tail.
		"bimodal": func() int64 {
			if rng.Intn(100) < 95 {
				return 50 + rng.Int63n(400)
			}
			return 100_000 + rng.Int63n(4_000_000)
		},
		// Constant: every mass point on one value.
		"constant": func() int64 { return 777 },
	}
	quantiles := []float64{0.5, 0.9, 0.99, 0.999}

	for name, draw := range distributions {
		h := newHistogram(LatencyBuckets)
		sample := make([]int64, 20_000)
		for i := range sample {
			sample[i] = draw()
			h.Observe(sample[i])
		}
		sort.Slice(sample, func(i, j int) bool { return sample[i] < sample[j] })
		snap := h.Snapshot()
		for _, q := range quantiles {
			// Exact sample quantile: the ceil(q*n)-th order statistic,
			// matching the histogram's cumulative-count crossing rule.
			rank := int(q * float64(len(sample)))
			if rank >= len(sample) {
				rank = len(sample) - 1
			}
			exact := sample[rank]
			est := snap.Quantile(q)
			bExact := bucketIndex(LatencyBuckets, exact)
			bEst := bucketIndex(LatencyBuckets, int64(est))
			if d := bEst - bExact; d < -1 || d > 1 {
				t.Errorf("%s p%g: estimate %.0f (bucket %d) vs exact %d (bucket %d): more than one boundary apart",
					name, q*100, est, bEst, exact, bExact)
			}
		}
		// The digest in the snapshot must agree with direct estimation.
		if snap.Quantiles == nil {
			t.Fatalf("%s: non-empty snapshot has nil Quantiles digest", name)
		}
		if got, want := snap.Quantiles["p99"], snap.Quantile(0.99); got != want {
			t.Errorf("%s: digest p99 %v != Quantile(0.99) %v", name, got, want)
		}
	}
}

// math10 is 10^x without importing math for one call site.
func math10(x float64) float64 {
	v := 1.0
	for x >= 1 {
		v *= 10
		x--
	}
	// Linear blend within the last partial decade is accurate enough
	// for generating test samples.
	return v * (1 + 9*x)
}

// TestLatencyQuantileEdges pins the degenerate cases.
func TestLatencyQuantileEdges(t *testing.T) {
	var nilSnap HistSnapshot
	if got := nilSnap.Quantile(0.5); got != 0 {
		t.Fatalf("empty snapshot quantile = %v, want 0", got)
	}
	h := newHistogram(LatencyBuckets)
	h.Observe(25_000_000) // beyond the last bound: +Inf bucket
	if got, want := h.Snapshot().Quantile(0.5), float64(LatencyBuckets[len(LatencyBuckets)-1]); got != want {
		t.Fatalf("+Inf-bucket quantile = %v, want clamp to last bound %v", got, want)
	}
	h2 := newHistogram(LatencyBuckets)
	h2.Observe(3)
	if got := h2.Snapshot().Quantile(1.5); got < 2 || got > 5 {
		t.Fatalf("clamped q>1 quantile = %v, want within the observation's bucket (2,5]", got)
	}
	if h2.Snapshot().Quantile(-1) < 0 {
		t.Fatal("negative q must clamp, not extrapolate below zero")
	}
}

// TestLatencyObserveDuringExposition hammers Observe from many
// goroutines while snapshots and quantile estimates are taken
// concurrently — the -race check that exposition never tears the
// wait-free recording path.
func TestLatencyObserveDuringExposition(t *testing.T) {
	reg := NewRegistry()
	h := reg.LatencyHistogram(MetricLatencyRoute)
	const (
		writers = 8
		perW    = 5_000
	)
	stop := make(chan struct{})
	readerDone := make(chan struct{})
	// Exposition side: snapshots and quantile estimates in a tight loop
	// while the writers are live.
	go func() {
		defer close(readerDone)
		for {
			select {
			case <-stop:
				return
			default:
			}
			snap := h.Snapshot()
			if q := snap.Quantile(0.99); q < 0 {
				t.Error("negative quantile from live snapshot")
				return
			}
			if snap.Count < 0 {
				t.Error("negative count from live snapshot")
				return
			}
		}
	}()
	var wg sync.WaitGroup
	for w := 0; w < writers; w++ {
		wg.Add(1)
		go func(seed int64) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(seed))
			for i := 0; i < perW; i++ {
				h.Observe(rng.Int63n(1_000_000))
			}
			h.ObserveSince(time.Now())
		}(int64(w + 1))
	}
	wg.Wait()
	close(stop)
	<-readerDone
	if got, want := h.Snapshot().Count, int64(writers*(perW+1)); got != want {
		t.Fatalf("lost observations under concurrency: count %d, want %d", got, want)
	}
}
