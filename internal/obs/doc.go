// Package obs is the instrumentation layer of the safecube system: a
// stdlib-only registry of lock-cheap counters, gauges and histograms,
// plus structured tracers for the two protocols whose cost the paper
// quantifies — the unicasting algorithm (admission condition, per-hop
// decisions, reroutes, path length vs Hamming distance) and the GS/EGS
// safety-level computation (rounds to stabilize, per-round level deltas,
// per-link message counts).
//
// Key invariant: everything is nil-safe. A nil *Registry (and every
// metric handle it returns) is a valid "instrumentation disabled" value
// whose methods are single-branch no-ops, so instrumented hot paths
// cost one pointer test when observability is off. Metric updates are
// atomic and snapshots are consistent enough for monitoring (each value
// is read atomically; cross-metric skew is possible by design), which
// keeps the fast path free of locks and safe under `go test -race`.
//
// Latency measurement lives in latency.go: fixed-boundary log-spaced
// (1-2-5 per decade) microsecond histograms whose tail quantiles
// (p50/p90/p99/p999) are estimated at exposition time and are exact to
// within one bucket boundary. Exposition lives in export.go: an
// expvar-style JSON snapshot, a Prometheus text-format writer, and
// net/http handlers so both CLI tools and long-running servers can
// publish the same registry.
package obs
