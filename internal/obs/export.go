package obs

import (
	"encoding/json"
	"expvar"
	"fmt"
	"io"
	"net/http"
	"sort"
	"strings"
)

// WriteJSON writes the registry snapshot as indented expvar-style JSON.
// A nil registry writes an empty snapshot; CLI tools can therefore dump
// unconditionally.
func (r *Registry) WriteJSON(w io.Writer) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(r.Snapshot())
}

// promName sanitizes a metric name for the Prometheus text format and
// applies the system namespace prefix.
func promName(name string) string {
	var b strings.Builder
	b.WriteString("safecube_")
	for _, c := range name {
		switch {
		case c >= 'a' && c <= 'z', c >= 'A' && c <= 'Z', c >= '0' && c <= '9', c == '_', c == ':':
			b.WriteRune(c)
		default:
			b.WriteByte('_')
		}
	}
	return b.String()
}

// WritePrometheus writes every metric in the Prometheus text exposition
// format (version 0.0.4): counters and gauges as single samples,
// histograms as cumulative _bucket/_sum/_count series, and the last GS
// trace's headline numbers as gauges.
func (r *Registry) WritePrometheus(w io.Writer) error {
	s := r.Snapshot()

	names := make([]string, 0, len(s.Counters))
	for name := range s.Counters {
		names = append(names, name)
	}
	sort.Strings(names)
	for _, name := range names {
		pn := promName(name)
		if _, err := fmt.Fprintf(w, "# TYPE %s counter\n%s %d\n", pn, pn, s.Counters[name]); err != nil {
			return err
		}
	}

	names = names[:0]
	for name := range s.Gauges {
		names = append(names, name)
	}
	sort.Strings(names)
	for _, name := range names {
		pn := promName(name)
		if _, err := fmt.Fprintf(w, "# TYPE %s gauge\n%s %d\n", pn, pn, s.Gauges[name]); err != nil {
			return err
		}
	}

	names = names[:0]
	for name := range s.Histograms {
		names = append(names, name)
	}
	sort.Strings(names)
	for _, name := range names {
		h := s.Histograms[name]
		pn := promName(name)
		if _, err := fmt.Fprintf(w, "# TYPE %s histogram\n", pn); err != nil {
			return err
		}
		cum := int64(0)
		for i, bound := range h.Bounds {
			cum += h.Counts[i]
			if _, err := fmt.Fprintf(w, "%s_bucket{le=\"%d\"} %d\n", pn, bound, cum); err != nil {
				return err
			}
		}
		cum += h.Counts[len(h.Counts)-1]
		if _, err := fmt.Fprintf(w, "%s_bucket{le=\"+Inf\"} %d\n%s_sum %d\n%s_count %d\n",
			pn, cum, pn, h.Sum, pn, h.Count); err != nil {
			return err
		}
		// Quantile estimates and per-bucket exemplars as plain gauge
		// series (valid 0.0.4 text; no OpenMetrics extensions), the one
		// exposition shared by every cmd. Quantiles go out in a fixed
		// order; an exemplar sample carries the last request ID that
		// landed in that bucket, linking it to /debug/flight.
		if h.Count > 0 {
			for _, q := range []struct{ label, key string }{
				{"0.5", "p50"}, {"0.9", "p90"}, {"0.99", "p99"}, {"0.999", "p999"},
			} {
				if _, err := fmt.Fprintf(w, "%s_quantile{q=\"%s\"} %g\n", pn, q.label, h.Quantiles[q.key]); err != nil {
					return err
				}
			}
		}
		for i, id := range h.Exemplars {
			if id == 0 {
				continue
			}
			le := "+Inf"
			if i < len(h.Bounds) {
				le = fmt.Sprintf("%d", h.Bounds[i])
			}
			if _, err := fmt.Fprintf(w, "%s_exemplar{le=\"%s\"} %d\n", pn, le, id); err != nil {
				return err
			}
		}
	}

	if s.GS != nil {
		for _, kv := range []struct {
			name string
			v    int
		}{
			{"gs_trace_rounds", s.GS.Rounds},
			{"gs_trace_messages", s.GS.Messages},
			{"gs_trace_max_link_messages", s.GS.MaxLinkMessages},
			{"gs_trace_updates", s.GS.Updates},
		} {
			pn := promName(kv.name)
			if _, err := fmt.Fprintf(w, "# TYPE %s gauge\n%s %d\n", pn, pn, kv.v); err != nil {
				return err
			}
		}
		for i, d := range s.GS.Deltas {
			pn := promName("gs_trace_round_delta")
			if _, err := fmt.Fprintf(w, "%s{round=\"%d\"} %d\n", pn, i+1, d); err != nil {
				return err
			}
		}
	}
	return nil
}

// JSONHandler serves the snapshot as JSON (the expvar-style view).
func (r *Registry) JSONHandler() http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, _ *http.Request) {
		w.Header().Set("Content-Type", "application/json; charset=utf-8")
		_ = r.WriteJSON(w)
	})
}

// PromHandler serves the Prometheus text exposition.
func (r *Registry) PromHandler() http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, _ *http.Request) {
		w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
		_ = r.WritePrometheus(w)
	})
}

// Mux returns an http.ServeMux with the conventional endpoints wired:
// /metrics (Prometheus text) and /vars (expvar-style JSON).
func (r *Registry) Mux() *http.ServeMux {
	mux := http.NewServeMux()
	mux.Handle("/metrics", r.PromHandler())
	mux.Handle("/vars", r.JSONHandler())
	return mux
}

// WriteDigest writes a compact latency-quantile table — one line per
// histogram with observations: name, p50/p90/p99/p999 and count. It is
// the human-readable digest shared by slmetrics -digest and ad-hoc
// debugging; the same numbers appear as _quantile series in
// WritePrometheus.
func (r *Registry) WriteDigest(w io.Writer) error {
	s := r.Snapshot()
	names := make([]string, 0, len(s.Histograms))
	for name := range s.Histograms {
		if s.Histograms[name].Count > 0 {
			names = append(names, name)
		}
	}
	sort.Strings(names)
	if _, err := fmt.Fprintf(w, "%-28s %10s %10s %10s %10s %10s\n",
		"histogram", "p50", "p90", "p99", "p999", "count"); err != nil {
		return err
	}
	for _, name := range names {
		h := s.Histograms[name]
		q := h.Quantiles
		if _, err := fmt.Fprintf(w, "%-28s %10.0f %10.0f %10.0f %10.0f %10d\n",
			name, q["p50"], q["p90"], q["p99"], q["p999"], h.Count); err != nil {
			return err
		}
	}
	return nil
}

// WriteFlightText renders a flight-recorder snapshot as a fixed-width
// table, newest first — the ?format=text view of /debug/flight.
func WriteFlightText(w io.Writer, s *FlightSnapshot) error {
	if s == nil {
		s = &FlightSnapshot{}
	}
	if _, err := fmt.Fprintf(w, "flight: %d issued, %d retained (capacity %d)\n",
		s.Issued, len(s.Records), s.Capacity); err != nil {
		return err
	}
	if _, err := fmt.Fprintf(w, "%8s %-8s %6s %5s %9s %9s %3s %4s %3s %5s %4s %-10s %s\n",
		"id", "kind", "gen", "items", "lat_us", "ddl_us", "ham", "hops", "det", "stale", "cond", "outcome", "err"); err != nil {
		return err
	}
	for _, rec := range s.Records {
		stale := ""
		if rec.Stale {
			stale = "stale"
		}
		if _, err := fmt.Fprintf(w, "%8d %-8s %6d %5d %9d %9d %3d %4d %3d %5s %4s %-10s %s\n",
			rec.ID, rec.Kind, rec.Gen, rec.Items, rec.LatencyUS, rec.DeadlineUS,
			rec.Hamming, rec.Hops, rec.Detours, stale, rec.Cond, rec.Outcome, rec.Err); err != nil {
			return err
		}
	}
	return nil
}

// WriteIncidentsText renders the incident buffer as transcripts, newest
// first, printing node addresses with fmtNode (nil for raw integers) —
// the ?format=text view of /debug/incidents.
func WriteIncidentsText(w io.Writer, s *IncidentSnapshot, fmtNode func(int) string) error {
	if s == nil {
		s = &IncidentSnapshot{}
	}
	if _, err := fmt.Fprintf(w, "incidents: %d total, %d retained (capacity %d)\n",
		s.Total, len(s.Incidents), s.Capacity); err != nil {
		return err
	}
	for _, inc := range s.Incidents {
		rec := inc.Record
		if _, err := fmt.Fprintf(w, "\n#%d [%s] req %d kind=%s gen=%d lat=%dus hops=%d/%d detours=%d cond=%s outcome=%s err=%s\n",
			inc.Seq, inc.Reason, rec.ID, rec.Kind, rec.Gen, rec.LatencyUS,
			rec.Hops, rec.Hamming, rec.Detours, rec.Cond, rec.Outcome, rec.Err); err != nil {
			return err
		}
		if inc.Trace != nil {
			if _, err := io.WriteString(w, inc.Trace.Format(fmtNode)); err != nil {
				return err
			}
		}
	}
	return nil
}

// Publish registers the snapshot under name in the process-global expvar
// namespace, so the registry also appears on the standard /debug/vars
// endpoint. Publishing the same name twice panics (an expvar invariant);
// call once per process.
func (r *Registry) Publish(name string) {
	expvar.Publish(name, expvar.Func(func() any { return r.Snapshot() }))
}
