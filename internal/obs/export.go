package obs

import (
	"encoding/json"
	"expvar"
	"fmt"
	"io"
	"net/http"
	"sort"
	"strings"
)

// WriteJSON writes the registry snapshot as indented expvar-style JSON.
// A nil registry writes an empty snapshot; CLI tools can therefore dump
// unconditionally.
func (r *Registry) WriteJSON(w io.Writer) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(r.Snapshot())
}

// promName sanitizes a metric name for the Prometheus text format and
// applies the system namespace prefix.
func promName(name string) string {
	var b strings.Builder
	b.WriteString("safecube_")
	for _, c := range name {
		switch {
		case c >= 'a' && c <= 'z', c >= 'A' && c <= 'Z', c >= '0' && c <= '9', c == '_', c == ':':
			b.WriteRune(c)
		default:
			b.WriteByte('_')
		}
	}
	return b.String()
}

// WritePrometheus writes every metric in the Prometheus text exposition
// format (version 0.0.4): counters and gauges as single samples,
// histograms as cumulative _bucket/_sum/_count series, and the last GS
// trace's headline numbers as gauges.
func (r *Registry) WritePrometheus(w io.Writer) error {
	s := r.Snapshot()

	names := make([]string, 0, len(s.Counters))
	for name := range s.Counters {
		names = append(names, name)
	}
	sort.Strings(names)
	for _, name := range names {
		pn := promName(name)
		if _, err := fmt.Fprintf(w, "# TYPE %s counter\n%s %d\n", pn, pn, s.Counters[name]); err != nil {
			return err
		}
	}

	names = names[:0]
	for name := range s.Gauges {
		names = append(names, name)
	}
	sort.Strings(names)
	for _, name := range names {
		pn := promName(name)
		if _, err := fmt.Fprintf(w, "# TYPE %s gauge\n%s %d\n", pn, pn, s.Gauges[name]); err != nil {
			return err
		}
	}

	names = names[:0]
	for name := range s.Histograms {
		names = append(names, name)
	}
	sort.Strings(names)
	for _, name := range names {
		h := s.Histograms[name]
		pn := promName(name)
		if _, err := fmt.Fprintf(w, "# TYPE %s histogram\n", pn); err != nil {
			return err
		}
		cum := int64(0)
		for i, bound := range h.Bounds {
			cum += h.Counts[i]
			if _, err := fmt.Fprintf(w, "%s_bucket{le=\"%d\"} %d\n", pn, bound, cum); err != nil {
				return err
			}
		}
		cum += h.Counts[len(h.Counts)-1]
		if _, err := fmt.Fprintf(w, "%s_bucket{le=\"+Inf\"} %d\n%s_sum %d\n%s_count %d\n",
			pn, cum, pn, h.Sum, pn, h.Count); err != nil {
			return err
		}
	}

	if s.GS != nil {
		for _, kv := range []struct {
			name string
			v    int
		}{
			{"gs_trace_rounds", s.GS.Rounds},
			{"gs_trace_messages", s.GS.Messages},
			{"gs_trace_max_link_messages", s.GS.MaxLinkMessages},
			{"gs_trace_updates", s.GS.Updates},
		} {
			pn := promName(kv.name)
			if _, err := fmt.Fprintf(w, "# TYPE %s gauge\n%s %d\n", pn, pn, kv.v); err != nil {
				return err
			}
		}
		for i, d := range s.GS.Deltas {
			pn := promName("gs_trace_round_delta")
			if _, err := fmt.Fprintf(w, "%s{round=\"%d\"} %d\n", pn, i+1, d); err != nil {
				return err
			}
		}
	}
	return nil
}

// JSONHandler serves the snapshot as JSON (the expvar-style view).
func (r *Registry) JSONHandler() http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, _ *http.Request) {
		w.Header().Set("Content-Type", "application/json; charset=utf-8")
		_ = r.WriteJSON(w)
	})
}

// PromHandler serves the Prometheus text exposition.
func (r *Registry) PromHandler() http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, _ *http.Request) {
		w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
		_ = r.WritePrometheus(w)
	})
}

// Mux returns an http.ServeMux with the conventional endpoints wired:
// /metrics (Prometheus text) and /vars (expvar-style JSON).
func (r *Registry) Mux() *http.ServeMux {
	mux := http.NewServeMux()
	mux.Handle("/metrics", r.PromHandler())
	mux.Handle("/vars", r.JSONHandler())
	return mux
}

// Publish registers the snapshot under name in the process-global expvar
// namespace, so the registry also appears on the standard /debug/vars
// endpoint. Publishing the same name twice panics (an expvar invariant);
// call once per process.
func (r *Registry) Publish(name string) {
	expvar.Publish(name, expvar.Func(func() any { return r.Snapshot() }))
}
