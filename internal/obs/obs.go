package obs

import (
	"sort"
	"sync"
	"sync/atomic"
)

// Counter is a monotonically increasing metric. The zero value is ready
// to use; a nil Counter ignores updates.
type Counter struct {
	v atomic.Int64
}

// Inc adds 1.
func (c *Counter) Inc() { c.Add(1) }

// Add adds n (negative deltas are ignored to keep the counter monotone).
func (c *Counter) Add(n int64) {
	if c == nil || n < 0 {
		return
	}
	c.v.Add(n)
}

// Value returns the current count (0 for a nil Counter).
func (c *Counter) Value() int64 {
	if c == nil {
		return 0
	}
	return c.v.Load()
}

// Gauge is a metric that can move both ways. A nil Gauge ignores
// updates.
type Gauge struct {
	v atomic.Int64
}

// Set stores v.
func (g *Gauge) Set(v int64) {
	if g == nil {
		return
	}
	g.v.Store(v)
}

// Add adjusts the gauge by n.
func (g *Gauge) Add(n int64) {
	if g == nil {
		return
	}
	g.v.Add(n)
}

// Max raises the gauge to v if v is larger — a lock-free high-water
// mark, safe under concurrent Max callers.
func (g *Gauge) Max(v int64) {
	if g == nil {
		return
	}
	for {
		cur := g.v.Load()
		if v <= cur || g.v.CompareAndSwap(cur, v) {
			return
		}
	}
}

// Value returns the current value (0 for a nil Gauge).
func (g *Gauge) Value() int64 {
	if g == nil {
		return 0
	}
	return g.v.Load()
}

// Histogram counts integer observations into cumulative buckets with
// fixed upper bounds (Prometheus "le" semantics: an observation lands in
// the first bucket whose bound is >= the value, and in every later
// bucket at exposition time). A nil Histogram ignores observations.
type Histogram struct {
	bounds []int64        // ascending upper bounds; implicit +Inf last
	counts []atomic.Int64 // len(bounds)+1
	sum    atomic.Int64
	count  atomic.Int64
	// exemplars holds the most recent request ID observed per bucket
	// (0 when the bucket has never seen an attributed observation), so
	// a hot tail bucket links straight to a flight-recorder trace.
	exemplars []atomic.Uint64
}

// DefaultBuckets suit the small integer measurements of this system
// (hops, rounds, levels, message counts per node).
var DefaultBuckets = []int64{0, 1, 2, 4, 8, 16, 32, 64}

func newHistogram(bounds []int64) *Histogram {
	if len(bounds) == 0 {
		bounds = DefaultBuckets
	}
	b := append([]int64(nil), bounds...)
	sort.Slice(b, func(i, j int) bool { return b[i] < b[j] })
	return &Histogram{
		bounds:    b,
		counts:    make([]atomic.Int64, len(b)+1),
		exemplars: make([]atomic.Uint64, len(b)+1),
	}
}

// Observe records one value.
func (h *Histogram) Observe(v int64) {
	if h == nil {
		return
	}
	i := sort.Search(len(h.bounds), func(i int) bool { return h.bounds[i] >= v })
	h.counts[i].Add(1)
	h.sum.Add(v)
	h.count.Add(1)
}

// ObserveEx is Observe plus an exemplar: id (a flight-recorder request
// ID) becomes the bucket's exemplar, replacing the previous one. id 0
// leaves the exemplar untouched.
func (h *Histogram) ObserveEx(v int64, id uint64) {
	if h == nil {
		return
	}
	i := sort.Search(len(h.bounds), func(i int) bool { return h.bounds[i] >= v })
	h.counts[i].Add(1)
	h.sum.Add(v)
	h.count.Add(1)
	if id != 0 {
		h.exemplars[i].Store(id)
	}
}

// HistSnapshot is a consistent-enough copy of a histogram for export.
type HistSnapshot struct {
	// Bounds are the bucket upper bounds; Counts[i] is the number of
	// observations <= Bounds[i] (non-cumulative per bucket here;
	// exporters cumulate). Counts has one extra entry for +Inf.
	Bounds []int64 `json:"bounds"`
	Counts []int64 `json:"counts"`
	Sum    int64   `json:"sum"`
	Count  int64   `json:"count"`
	// Quantiles holds the p50/p90/p99/p999 estimates (see Quantile),
	// computed at snapshot time; nil while the histogram is empty.
	Quantiles map[string]float64 `json:"quantiles,omitempty"`
	// Exemplars is the last request ID observed per bucket, aligned
	// with Counts; nil while no bucket has an exemplar.
	Exemplars []uint64 `json:"exemplars,omitempty"`
}

// Snapshot copies the histogram state (zero value for nil).
func (h *Histogram) Snapshot() HistSnapshot {
	if h == nil {
		return HistSnapshot{}
	}
	s := HistSnapshot{
		Bounds: append([]int64(nil), h.bounds...),
		Counts: make([]int64, len(h.counts)),
		Sum:    h.sum.Load(),
		Count:  h.count.Load(),
	}
	for i := range h.counts {
		s.Counts[i] = h.counts[i].Load()
	}
	any := false
	ex := make([]uint64, len(h.exemplars))
	for i := range h.exemplars {
		if ex[i] = h.exemplars[i].Load(); ex[i] != 0 {
			any = true
		}
	}
	if any {
		s.Exemplars = ex
	}
	s.Quantiles = s.quantiles()
	return s
}

// Registry holds named metrics and the most recent protocol traces. All
// methods are safe for concurrent use, and all of them accept a nil
// receiver as "instrumentation disabled".
type Registry struct {
	mu       sync.Mutex
	counters map[string]*Counter
	gauges   map[string]*Gauge
	gaugeFns map[string]func() int64
	hists    map[string]*Histogram

	lastGS *GSTrace

	traceCap int
	traces   []*RouteTrace
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry {
	return &Registry{
		counters: make(map[string]*Counter),
		gauges:   make(map[string]*Gauge),
		gaugeFns: make(map[string]func() int64),
		hists:    make(map[string]*Histogram),
	}
}

// Counter returns the named counter, creating it on first use. A nil
// registry returns a nil (no-op) counter. Hot paths should resolve the
// handle once and reuse it rather than paying the map lookup per event.
func (r *Registry) Counter(name string) *Counter {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	c, ok := r.counters[name]
	if !ok {
		c = &Counter{}
		r.counters[name] = c
	}
	return c
}

// Gauge returns the named gauge, creating it on first use.
func (r *Registry) Gauge(name string) *Gauge {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	g, ok := r.gauges[name]
	if !ok {
		g = &Gauge{}
		r.gauges[name] = g
	}
	return g
}

// GaugeFunc registers a callback gauge: fn is evaluated at Snapshot
// time and its result appears under name alongside the plain gauges
// (shadowing a plain gauge of the same name). fn runs with the
// registry lock held, so it must be fast and must not touch the
// registry. fn == nil unregisters. Useful for derived values that are
// cheap to read but awkward to push, like snapshot age.
func (r *Registry) GaugeFunc(name string, fn func() int64) {
	if r == nil {
		return
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if fn == nil {
		delete(r.gaugeFns, name)
		return
	}
	r.gaugeFns[name] = fn
}

// Histogram returns the named histogram, creating it with the given
// bucket bounds on first use (DefaultBuckets when none are given).
// Later calls reuse the existing histogram regardless of bounds.
func (r *Registry) Histogram(name string, bounds ...int64) *Histogram {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	h, ok := r.hists[name]
	if !ok {
		h = newHistogram(bounds)
		r.hists[name] = h
	}
	return h
}

// KeepTraces enables the route-trace ring buffer: the registry retains
// the most recent k traced unicasts for export. k <= 0 disables
// retention (per-call traces still work).
func (r *Registry) KeepTraces(k int) {
	if r == nil {
		return
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	r.traceCap = k
	if k <= 0 {
		r.traces = nil
	} else if len(r.traces) > k {
		r.traces = append([]*RouteTrace(nil), r.traces[len(r.traces)-k:]...)
	}
}

// keepTrace appends a finished trace to the ring buffer, if enabled.
func (r *Registry) keepTrace(t *RouteTrace) {
	if r == nil || t == nil {
		return
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if r.traceCap <= 0 {
		return
	}
	r.traces = append(r.traces, t)
	if len(r.traces) > r.traceCap {
		r.traces = r.traces[len(r.traces)-r.traceCap:]
	}
}

// RecordGS stores t as the most recent GS trace.
func (r *Registry) RecordGS(t *GSTrace) {
	if r == nil {
		return
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	r.lastGS = t
}

// LastGS returns the most recent GS trace (nil if none recorded).
func (r *Registry) LastGS() *GSTrace {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.lastGS
}

// Snapshot is a point-in-time copy of every metric plus the retained
// traces, ready for JSON marshaling.
type Snapshot struct {
	Counters   map[string]int64        `json:"counters"`
	Gauges     map[string]int64        `json:"gauges"`
	Histograms map[string]HistSnapshot `json:"histograms"`
	GS         *GSTrace                `json:"gs,omitempty"`
	Traces     []*RouteTrace           `json:"traces,omitempty"`
}

// Snapshot captures the registry. A nil registry yields an empty (but
// marshalable) snapshot.
func (r *Registry) Snapshot() *Snapshot {
	s := &Snapshot{
		Counters:   map[string]int64{},
		Gauges:     map[string]int64{},
		Histograms: map[string]HistSnapshot{},
	}
	if r == nil {
		return s
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	for name, c := range r.counters {
		s.Counters[name] = c.Value()
	}
	for name, g := range r.gauges {
		s.Gauges[name] = g.Value()
	}
	for name, fn := range r.gaugeFns {
		s.Gauges[name] = fn()
	}
	for name, h := range r.hists {
		s.Histograms[name] = h.Snapshot()
	}
	s.GS = r.lastGS
	s.Traces = append([]*RouteTrace(nil), r.traces...)
	return s
}
