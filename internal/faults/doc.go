// Package faults models fail-stop node and link failures in a hypercube
// and provides the fault oracle the rest of the system consults.
//
// The paper's fault model (Section 1, assumptions 1-2): node faults are
// fail-stop, and every node knows exactly the status of its neighbors —
// nothing more. Set is that oracle: the topology-independent record of
// which nodes and links are down. A Set is generic over topo.Topology,
// so the same oracle serves the binary cube and the generalized
// hypercubes of Section 4.2.
//
// Key invariant: every mutation bumps the Set's generation counter, and
// Since(gen) replays the exact delta journal between two generations —
// the contract the incremental repair (core.RepairLevels) and the
// serving layer's snapshot stamps are built on. Clone gives a frozen,
// independently mutable copy at the current generation.
package faults
