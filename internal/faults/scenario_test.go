package faults

import (
	"reflect"
	"testing"

	"repro/internal/topo"
)

// replayScenario applies the schedule to a fresh set, tracking the peak
// node- and link-fault populations and whether the set was ever
// disconnected among the healthy nodes.
func replayScenario(t *testing.T, c topo.Topology, events []ChurnEvent) (peakNodes, peakLinks int, sawDisconnect bool) {
	t.Helper()
	s := NewSet(c)
	for _, ev := range events {
		if err := s.Apply(ev); err != nil {
			t.Fatalf("infeasible event %v: %v", ev, err)
		}
		if n := s.NodeFaults(); n > peakNodes {
			peakNodes = n
		}
		if l := s.LinkFaults(); l > peakLinks {
			peakLinks = l
		}
		if !Connected(s) {
			sawDisconnect = true
		}
	}
	if s.NodeFaults() != 0 || s.LinkFaults() != 0 {
		t.Fatalf("schedule does not end clean: %d node, %d link faults", s.NodeFaults(), s.LinkFaults())
	}
	return peakNodes, peakLinks, sawDisconnect
}

func TestScenarioScheduleDeterministic(t *testing.T) {
	c := topo.MustCube(5)
	for _, p := range ScenarioProfiles() {
		a, err := ScenarioSchedule(c, p, 42, ScenarioOptions{})
		if err != nil {
			t.Fatalf("%s: %v", p, err)
		}
		b, err := ScenarioSchedule(c, p, 42, ScenarioOptions{})
		if err != nil {
			t.Fatalf("%s: %v", p, err)
		}
		if !reflect.DeepEqual(a, b) {
			t.Errorf("%s: same seed produced different schedules", p)
		}
		d, err := ScenarioSchedule(c, p, 43, ScenarioOptions{})
		if err != nil {
			t.Fatalf("%s: %v", p, err)
		}
		if reflect.DeepEqual(a, d) {
			t.Errorf("%s: different seeds produced identical schedules", p)
		}
		if len(a) == 0 {
			t.Errorf("%s: empty schedule", p)
		}
	}
}

func TestScenarioSubcubeShape(t *testing.T) {
	c := topo.MustCube(5)
	events, err := ScenarioSchedule(c, ScenarioSubcube, 7, ScenarioOptions{Waves: 3, Subdim: 2})
	if err != nil {
		t.Fatal(err)
	}
	// 3 waves x (4 fails + 4 recovers) for a 2-subcube.
	if len(events) != 3*8 {
		t.Fatalf("len(events) = %d, want 24", len(events))
	}
	peakNodes, peakLinks, _ := replayScenario(t, c, events)
	if peakNodes != 4 {
		t.Errorf("peak node faults = %d, want 4 (one whole 2-subcube)", peakNodes)
	}
	if peakLinks != 0 {
		t.Errorf("peak link faults = %d, want 0", peakLinks)
	}
	// The first wave's victims must form a subcube: all pairwise XORs
	// confined to the same 2 dimensions.
	var mask topo.NodeID
	first := events[0].A
	for _, ev := range events[:4] {
		if ev.Kind != DeltaFailNode {
			t.Fatalf("event %v: want fail-node in first wave", ev)
		}
		mask |= ev.A ^ first
	}
	if on := popcount(uint32(mask)); on != 2 {
		t.Errorf("first-wave victims span %d dimensions (mask %05b), want 2", on, mask)
	}
}

func popcount(x uint32) int {
	n := 0
	for ; x != 0; x &= x - 1 {
		n++
	}
	return n
}

func TestScenarioDimCutShape(t *testing.T) {
	c := topo.MustCube(4)
	events, err := ScenarioSchedule(c, ScenarioDimCut, 11, ScenarioOptions{Waves: 2})
	if err != nil {
		t.Fatal(err)
	}
	// Each wave: 2^(n-1) = 8 link fails + 8 recovers.
	if len(events) != 2*16 {
		t.Fatalf("len(events) = %d, want 32", len(events))
	}
	peakNodes, peakLinks, _ := replayScenario(t, c, events)
	if peakNodes != 0 || peakLinks != 8 {
		t.Errorf("peaks = (%d nodes, %d links), want (0, 8)", peakNodes, peakLinks)
	}
	// All first-wave links must cross the same dimension and cover it.
	d := Link{events[0].A, events[0].B}.Dimension()
	if d < 0 {
		t.Fatalf("first event %v is not a cube link", events[0])
	}
	seen := map[Link]bool{}
	for _, ev := range events[:8] {
		if ev.Kind != DeltaFailLink {
			t.Fatalf("event %v: want fail-link in first wave", ev)
		}
		l := Link{ev.A, ev.B}
		if l.Dimension() != d {
			t.Errorf("link %v crosses dim %d, want %d", l, l.Dimension(), d)
		}
		seen[l.Normalize()] = true
	}
	if len(seen) != 8 {
		t.Errorf("first wave covers %d distinct links, want all 8 of dimension %d", len(seen), d)
	}
	// Consecutive waves cut different dimensions (the permutation walk).
	d2 := Link{events[16].A, events[16].B}.Dimension()
	if d2 == d {
		t.Errorf("both waves cut dimension %d; want distinct dims", d)
	}
}

func TestDimensionLinks(t *testing.T) {
	c := topo.MustCube(4)
	for d := 0; d < 4; d++ {
		links := DimensionLinks(c, d)
		if len(links) != 8 {
			t.Fatalf("dim %d: %d links, want 8", d, len(links))
		}
		for _, l := range links {
			if l.Dimension() != d {
				t.Errorf("link %v reports dim %d, want %d", l, l.Dimension(), d)
			}
			if l.A > l.B {
				t.Errorf("link %v not normalized", l)
			}
		}
	}
}

func TestScenarioRollingShape(t *testing.T) {
	c := topo.MustCube(4)
	for _, width := range []int{1, 3} {
		events, err := ScenarioSchedule(c, ScenarioRolling, 5, ScenarioOptions{Waves: 1, RollWidth: width})
		if err != nil {
			t.Fatal(err)
		}
		// Every node fails exactly once and recovers exactly once.
		if len(events) != 2*c.Nodes() {
			t.Fatalf("width %d: len(events) = %d, want %d", width, len(events), 2*c.Nodes())
		}
		peakNodes, _, _ := replayScenario(t, c, events)
		if peakNodes != width {
			t.Errorf("width %d: peak simultaneous faults = %d, want %d", width, peakNodes, width)
		}
		failed := map[topo.NodeID]int{}
		for _, ev := range events {
			if ev.Kind == DeltaFailNode {
				failed[ev.A]++
			}
		}
		if len(failed) != c.Nodes() {
			t.Errorf("width %d: wave visited %d nodes, want all %d", width, len(failed), c.Nodes())
		}
	}
}

func TestScenarioFlapShape(t *testing.T) {
	c := topo.MustCube(4)
	events, err := ScenarioSchedule(c, ScenarioFlap, 9, ScenarioOptions{Waves: 1, FlapNodes: 2, FlapToggles: 4})
	if err != nil {
		t.Fatal(err)
	}
	// 2 victims x 4 toggles x (fail + recover).
	if len(events) != 16 {
		t.Fatalf("len(events) = %d, want 16", len(events))
	}
	peakNodes, _, _ := replayScenario(t, c, events)
	if peakNodes != 2 {
		t.Errorf("peak node faults = %d, want 2", peakNodes)
	}
	toggles := map[topo.NodeID]int{}
	for _, ev := range events {
		if ev.Kind == DeltaFailNode {
			toggles[ev.A]++
		}
	}
	if len(toggles) != 2 {
		t.Fatalf("flapping victim set has %d nodes, want 2", len(toggles))
	}
	for a, n := range toggles {
		if n != 4 {
			t.Errorf("node %d flapped %d times, want 4", a, n)
		}
	}
}

func TestScenarioPartitionDisconnects(t *testing.T) {
	c := topo.MustCube(5)
	events, err := ScenarioSchedule(c, ScenarioPartition, 3, ScenarioOptions{Waves: 2, Subdim: 2})
	if err != nil {
		t.Fatal(err)
	}
	_, _, sawDisconnect := replayScenario(t, c, events)
	if !sawDisconnect {
		t.Error("partition scenario never disconnected the healthy nodes (Theorem-4 path not exercised)")
	}
	// Mid-wave (all boundary nodes down, interior healthy): verify the
	// isolated interior is intact. Boundary of a 2-subcube in Q5 is
	// 3 fixed dims x 4 inside nodes = 12 nodes; wave 1 is events[:24].
	s := NewSet(c)
	for _, ev := range events[:12] {
		if err := s.Apply(ev); err != nil {
			t.Fatal(err)
		}
	}
	if s.NodeFaults() != 12 {
		t.Fatalf("mid-wave node faults = %d, want 12", s.NodeFaults())
	}
	if Connected(s) {
		t.Error("boundary fully down but healthy nodes still connected")
	}
}

func TestScenarioRejectsBadInput(t *testing.T) {
	if _, err := ParseScenarioProfile("meteor"); err == nil {
		t.Error("ParseScenarioProfile should reject unknown names")
	}
	for _, p := range ScenarioProfiles() {
		got, err := ParseScenarioProfile(string(p))
		if err != nil || got != p {
			t.Errorf("ParseScenarioProfile(%q) = %v, %v", p, got, err)
		}
	}
	c := topo.MustCube(4)
	if _, err := ScenarioSchedule(c, ScenarioProfile("meteor"), 1, ScenarioOptions{}); err == nil {
		t.Error("ScenarioSchedule should reject unknown profiles")
	}
	// Mask-geometry profiles need a binary cube.
	m, err := topo.NewMixed([]int{3, 4, 5})
	if err != nil {
		t.Fatal(err)
	}
	for _, p := range []ScenarioProfile{ScenarioSubcube, ScenarioDimCut, ScenarioPartition} {
		if _, err := ScenarioSchedule(m, p, 1, ScenarioOptions{}); err == nil {
			t.Errorf("%s over a mixed-radix topology should error", p)
		}
	}
	// Rolling and flap are topology-generic.
	for _, p := range []ScenarioProfile{ScenarioRolling, ScenarioFlap} {
		events, err := ScenarioSchedule(m, p, 1, ScenarioOptions{Waves: 1})
		if err != nil {
			t.Errorf("%s over a mixed-radix topology: %v", p, err)
		}
		replayScenario(t, m, events)
	}
}

func TestScenarioSubdimClamped(t *testing.T) {
	c := topo.MustCube(3)
	// Subdim far too large: subcube clamps to n-1, partition to n-2, and
	// both must still leave healthy nodes and end clean.
	events, err := ScenarioSchedule(c, ScenarioSubcube, 1, ScenarioOptions{Waves: 1, Subdim: 10})
	if err != nil {
		t.Fatal(err)
	}
	peak, _, _ := replayScenario(t, c, events)
	if peak != 4 {
		t.Errorf("subcube peak = %d, want 4 (clamped to a 2-subcube of Q3)", peak)
	}
	events, err = ScenarioSchedule(c, ScenarioPartition, 1, ScenarioOptions{Waves: 1, Subdim: 10})
	if err != nil {
		t.Fatal(err)
	}
	peak, _, _ = replayScenario(t, c, events)
	// Partition clamps to a 1-subcube: 2 inside nodes x 2 fixed dims.
	if peak != 4 {
		t.Errorf("partition peak = %d, want 4 boundary nodes", peak)
	}
}
