package faults

import (
	"fmt"

	"repro/internal/stats"
	"repro/internal/topo"
)

// InjectUniform fails exactly count distinct nodes chosen uniformly at
// random. This is the workload of the paper's Fig. 2 simulation
// ("seven-cubes with various number of faults").
func InjectUniform(s *Set, rng *stats.RNG, count int) error {
	n := s.t.Nodes()
	if count < 0 || count > n {
		return fmt.Errorf("faults: cannot fail %d of %d nodes", count, n)
	}
	// Sample from the currently-healthy population so repeated calls
	// compose (always failing `count` *additional* nodes).
	healthy := make([]topo.NodeID, 0, n)
	for a := 0; a < n; a++ {
		if !s.node.Test(a) {
			healthy = append(healthy, topo.NodeID(a))
		}
	}
	if count > len(healthy) {
		return fmt.Errorf("faults: only %d healthy nodes remain, cannot fail %d", len(healthy), count)
	}
	for _, idx := range rng.Sample(len(healthy), count) {
		if err := s.FailNode(healthy[idx]); err != nil {
			return err
		}
	}
	return nil
}

// InjectUniformLinks fails exactly count distinct links chosen uniformly
// at random among currently-healthy links. Enumeration order (ascending
// lower endpoint, then dimension, then sibling) is deterministic so a
// fixed RNG seed reproduces the same fault set.
func InjectUniformLinks(s *Set, rng *stats.RNG, count int) error {
	if count < 0 {
		return fmt.Errorf("faults: negative link fault count")
	}
	type edge struct {
		a, b topo.NodeID
	}
	var healthy []edge
	var sibs []topo.NodeID
	for a := 0; a < s.t.Nodes(); a++ {
		for d := 0; d < s.t.Dim(); d++ {
			sibs = s.t.Siblings(topo.NodeID(a), d, sibs[:0])
			for _, b := range sibs {
				if topo.NodeID(a) < b && !s.LinkFaulty(topo.NodeID(a), b) {
					healthy = append(healthy, edge{topo.NodeID(a), b})
				}
			}
		}
	}
	if count > len(healthy) {
		return fmt.Errorf("faults: only %d healthy links, cannot fail %d", len(healthy), count)
	}
	for _, idx := range rng.Sample(len(healthy), count) {
		e := healthy[idx]
		if err := s.FailLink(e.a, e.b); err != nil {
			return err
		}
	}
	return nil
}

// InjectClustered fails count nodes drawn from a random subcube of
// dimension subdim (clipped to the cluster size). Clustered faults are
// the adversarial distribution for safety levels: they depress levels
// locally much faster than uniform faults, which is exactly the
// "distribution, not just number, of faulty nodes" effect the safety
// level is designed to capture. Binary cubes only.
func InjectClustered(s *Set, rng *stats.RNG, count, subdim int) error {
	c := s.Cube()
	n := c.Dim()
	if subdim < 0 || subdim > n {
		return fmt.Errorf("faults: subcube dimension %d outside [0, %d]", subdim, n)
	}
	anchor := topo.NodeID(rng.Intn(c.Nodes()))
	// Freeze n-subdim random dimensions to the anchor's bits.
	perm := rng.Perm(n)
	var fixed topo.NodeID
	for _, d := range perm[:n-subdim] {
		fixed |= 1 << uint(d)
	}
	cluster := c.SubcubeNodes(anchor, fixed)
	if count > len(cluster) {
		count = len(cluster)
	}
	for _, idx := range rng.Sample(len(cluster), count) {
		if err := s.FailNode(cluster[idx]); err != nil {
			return err
		}
	}
	return nil
}

// InjectIsolating fails every neighbor of victim, disconnecting it from
// the rest of the topology. This is the minimal partition generator used
// by the Theorem 4 experiments: the resulting cube is disconnected with
// {victim} as one part (n faults in an n-cube — the tight bound, since
// connectivity of Q_n is n).
func InjectIsolating(s *Set, victim topo.NodeID) error {
	if !s.t.Contains(victim) {
		return fmt.Errorf("faults: victim %d outside cube", victim)
	}
	var sibs []topo.NodeID
	for i := 0; i < s.t.Dim(); i++ {
		sibs = s.t.Siblings(victim, i, sibs[:0])
		for _, b := range sibs {
			if err := s.FailNode(b); err != nil {
				return err
			}
		}
	}
	return nil
}

// InjectIsolatingSubcube fails the full boundary of the subdim-dimensional
// subcube containing victim whose free dimensions are 0..subdim-1, i.e.
// every node one hop outside the subcube. The healthy interior becomes a
// disconnected component of size up to 2^subdim, producing the multi-node
// partitions exercised in the disconnected-routing experiments.
// Binary cubes only.
func InjectIsolatingSubcube(s *Set, victim topo.NodeID, subdim int) error {
	c := s.Cube()
	n := c.Dim()
	if subdim < 0 || subdim >= n {
		return fmt.Errorf("faults: subcube dimension %d outside [0, %d)", subdim, n)
	}
	var fixed topo.NodeID
	for d := subdim; d < n; d++ {
		fixed |= 1 << uint(d)
	}
	for _, inside := range c.SubcubeNodes(victim, fixed) {
		for d := subdim; d < n; d++ {
			if err := s.FailNode(c.Neighbor(inside, d)); err != nil {
				return err
			}
		}
	}
	return nil
}
