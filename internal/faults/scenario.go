package faults

import (
	"fmt"

	"repro/internal/stats"
	"repro/internal/topo"
)

// Correlated-fault scenarios: deterministic seeded schedules shaped
// like real production incidents rather than uniform random churn. Each
// profile emits plain ChurnEvents, so a scenario replays through the
// same paths as ChurnSchedule output — the Delta journal, incremental
// repair, the chaos differential, the loadgen churn storm, and the
// slload -scenario flag all consume them unchanged.
//
// The structure-fault work on hypercubes (subcube and dimension cuts;
// see PAPERS.md) motivates the shapes: a whole-subcube outage models a
// rack/enclosure loss, a dimension-wide link cut models a failed switch
// plane, a rolling wave models an upgrade sweep, flapping models a node
// oscillating across its health threshold, and a partition isolates a
// subcube behind a failed boundary — the one shape that drives the
// paper's Theorem-4 disconnected-detection path with healthy nodes on
// both sides.

// ScenarioProfile names one correlated-fault schedule shape.
type ScenarioProfile string

// The five scenario profiles. Subcube, DimCut and Partition need a
// binary cube (their geometry is mask-based); Rolling and Flap work on
// any topology.
const (
	// ScenarioSubcube fails every node of a random subcube at once, then
	// recovers them — a rack/enclosure outage.
	ScenarioSubcube ScenarioProfile = "subcube"
	// ScenarioDimCut fails every link crossing one dimension, then
	// recovers them — a switch-plane loss. With all 2^(n-1) links of a
	// dimension down every node is in N2, so all public safety levels
	// collapse to 0 (Section 4.1) while the cube stays node-connected
	// through the other dimensions... until the routing layer needs that
	// dimension, which is exactly what the chaos differential exercises.
	ScenarioDimCut ScenarioProfile = "dimcut"
	// ScenarioRolling takes nodes down and back up in a sliding window
	// over a random permutation — an upgrade wave.
	ScenarioRolling ScenarioProfile = "rolling"
	// ScenarioFlap toggles a small victim set down/up repeatedly — the
	// workload the monitor's flap suppression exists for.
	ScenarioFlap ScenarioProfile = "flap"
	// ScenarioPartition fails the full node boundary of a random subcube,
	// disconnecting its healthy interior from the rest of the cube
	// (Theorem 4: every safe set empty), then recovers the boundary.
	ScenarioPartition ScenarioProfile = "partition"
)

// ScenarioProfiles returns all profiles in fixed (documentation) order.
func ScenarioProfiles() []ScenarioProfile {
	return []ScenarioProfile{
		ScenarioSubcube, ScenarioDimCut, ScenarioRolling,
		ScenarioFlap, ScenarioPartition,
	}
}

// ParseScenarioProfile maps a -scenario flag value to its profile.
func ParseScenarioProfile(s string) (ScenarioProfile, error) {
	for _, p := range ScenarioProfiles() {
		if string(p) == s {
			return p, nil
		}
	}
	return "", fmt.Errorf("faults: unknown scenario profile %q (want one of subcube, dimcut, rolling, flap, partition)", s)
}

// ScenarioOptions tune schedule generation. The zero value picks
// topology-appropriate defaults for every field.
type ScenarioOptions struct {
	// Waves is the number of outage/recovery cycles (0 means 2). Each
	// wave picks fresh random victims, and ends with everything it broke
	// recovered, so waves compose without feasibility conflicts.
	Waves int
	// Subdim is the dimension of the failed (subcube) or isolated
	// (partition) subcube. 0 means dim/2; values are clamped so at least
	// one healthy node remains outside the blast radius.
	Subdim int
	// FlapNodes is the flapping victim-set size (flap profile; 0 means
	// min(dim, nodes/4), at least 1).
	FlapNodes int
	// FlapToggles is the number of down/up cycles per wave (flap
	// profile; 0 means 3).
	FlapToggles int
	// RollWidth is the number of simultaneously-down nodes in a rolling
	// wave (0 means 1 — the classic one-at-a-time upgrade).
	RollWidth int
}

// ScenarioSchedule generates the deterministic event schedule for one
// profile over topology t. The same (t, profile, seed, opts) always
// yields the same schedule on every platform, and replaying it in order
// from an empty Set never hits an infeasible event — the same contract
// ChurnSchedule gives, checked here against a shadow set the same way.
func ScenarioSchedule(t topo.Topology, profile ScenarioProfile, seed uint64, opts ScenarioOptions) ([]ChurnEvent, error) {
	waves := opts.Waves
	if waves <= 0 {
		waves = 2
	}
	rng := stats.NewRNG(seed)
	var events []ChurnEvent
	var err error
	switch profile {
	case ScenarioSubcube:
		events, err = subcubeSchedule(t, rng, waves, opts.Subdim, false)
	case ScenarioDimCut:
		events, err = dimCutSchedule(t, rng, waves)
	case ScenarioRolling:
		events = rollingSchedule(t, rng, waves, opts.RollWidth)
	case ScenarioFlap:
		events = flapSchedule(t, rng, waves, opts.FlapNodes, opts.FlapToggles)
	case ScenarioPartition:
		events, err = subcubeSchedule(t, rng, waves, opts.Subdim, true)
	default:
		return nil, fmt.Errorf("faults: unknown scenario profile %q", profile)
	}
	if err != nil {
		return nil, err
	}
	// Feasibility check: replay against a shadow set exactly as the
	// consumer will. A violation is a generator bug, same as in
	// ChurnSchedule.
	shadow := NewSet(t)
	for _, ev := range events {
		if err := shadow.Apply(ev); err != nil {
			panic(fmt.Sprintf("faults: scenario %s generated infeasible event %v: %v", profile, ev, err))
		}
	}
	if shadow.NodeFaults() != 0 || shadow.LinkFaults() != 0 {
		panic(fmt.Sprintf("faults: scenario %s schedule does not end clean (%d node, %d link faults)",
			profile, shadow.NodeFaults(), shadow.LinkFaults()))
	}
	return events, nil
}

// binaryCube asserts the profile's mask-based geometry has a binary
// cube to work with.
func binaryCube(t topo.Topology, profile ScenarioProfile) (*topo.Cube, error) {
	c, ok := t.(*topo.Cube)
	if !ok {
		return nil, fmt.Errorf("faults: scenario %s requires a binary cube, got %v", profile, t)
	}
	return c, nil
}

// subcubeMask draws a random subdim-dimensional subcube: an anchor node
// plus the fixed-bit mask freezing the other dim-subdim coordinates.
// The free dimension set is drawn from a permutation so different waves
// cut along different axes.
func subcubeMask(c *topo.Cube, rng *stats.RNG, subdim int) (anchor topo.NodeID, fixed topo.NodeID) {
	anchor = topo.NodeID(rng.Intn(c.Nodes()))
	fixed = topo.NodeID(1<<uint(c.Dim())) - 1
	for _, d := range rng.Perm(c.Dim())[:subdim] {
		fixed &^= 1 << uint(d)
	}
	return anchor, fixed
}

// subcubeSchedule emits Waves cycles of either a whole-subcube node
// outage (partition=false) or a subcube isolation that fails only the
// boundary neighbors of the subcube (partition=true), each followed by
// full recovery in the same order.
func subcubeSchedule(t topo.Topology, rng *stats.RNG, waves, subdim int, partition bool) ([]ChurnEvent, error) {
	profile := ScenarioSubcube
	if partition {
		profile = ScenarioPartition
	}
	c, err := binaryCube(t, profile)
	if err != nil {
		return nil, err
	}
	n := c.Dim()
	if n < 2 {
		return nil, fmt.Errorf("faults: scenario %s needs dim >= 2, got Q%d", profile, n)
	}
	if subdim <= 0 {
		subdim = n / 2
	}
	// Clamp so the blast radius leaves healthy nodes outside: a failed
	// or isolated subcube of dimension n-1 already takes half the cube
	// (plus boundary, for partition), so cap at n-2 for partition and
	// n-1 for subcube.
	max := n - 1
	if partition {
		max = n - 2
	}
	if subdim > max {
		subdim = max
	}
	if subdim < 1 {
		subdim = 1
	}
	var events []ChurnEvent
	for w := 0; w < waves; w++ {
		anchor, fixed := subcubeMask(c, rng, subdim)
		inside := c.SubcubeNodes(anchor, fixed)
		var victims []topo.NodeID
		if partition {
			// The boundary: every neighbor of an inside node across a
			// fixed dimension. A boundary node differs from every inside
			// node in exactly one fixed bit, so inside and boundary never
			// overlap; and two distinct (inside, fixed-dim) pairs always
			// yield distinct boundary nodes (their XOR would have to lie
			// in both the free and the fixed bit sets), so no dedup is
			// needed.
			for _, a := range inside {
				for d := 0; d < n; d++ {
					if fixed&(1<<uint(d)) != 0 {
						victims = append(victims, c.Neighbor(a, d))
					}
				}
			}
		} else {
			victims = inside
		}
		for _, a := range victims {
			events = append(events, ChurnEvent{Kind: DeltaFailNode, A: a})
		}
		for _, a := range victims {
			events = append(events, ChurnEvent{Kind: DeltaRecoverNode, A: a})
		}
	}
	return events, nil
}

// dimCutSchedule emits Waves cycles that fail every link crossing one
// dimension (2^(n-1) links), then recover them. The cut dimension walks
// a random permutation so consecutive waves cut different planes.
func dimCutSchedule(t topo.Topology, rng *stats.RNG, waves int) ([]ChurnEvent, error) {
	c, err := binaryCube(t, ScenarioDimCut)
	if err != nil {
		return nil, err
	}
	n := c.Dim()
	perm := rng.Perm(n)
	var events []ChurnEvent
	for w := 0; w < waves; w++ {
		d := perm[w%n]
		cut := DimensionLinks(c, d)
		for _, l := range cut {
			events = append(events, ChurnEvent{Kind: DeltaFailLink, A: l.A, B: l.B})
		}
		for _, l := range cut {
			events = append(events, ChurnEvent{Kind: DeltaRecoverLink, A: l.A, B: l.B})
		}
	}
	return events, nil
}

// DimensionLinks returns every link of the cube crossing dimension d,
// normalized and in ascending order of the low endpoint. The dimcut
// scenario and the Theorem-4 tests share this enumeration.
func DimensionLinks(c *topo.Cube, d int) []Link {
	out := make([]Link, 0, c.Nodes()/2)
	for a := 0; a < c.Nodes(); a++ {
		if a&(1<<uint(d)) == 0 {
			out = append(out, Link{topo.NodeID(a), topo.NodeID(a) | 1<<uint(d)})
		}
	}
	return out
}

// rollingSchedule emits Waves upgrade sweeps: a random permutation of
// all nodes, taken down and brought back in a sliding window of width
// RollWidth, so at most RollWidth nodes are ever down at once and every
// node cycles exactly once per wave.
func rollingSchedule(t topo.Topology, rng *stats.RNG, waves, width int) []ChurnEvent {
	if width <= 0 {
		width = 1
	}
	nodes := t.Nodes()
	if width > nodes-2 {
		// Keep at least two nodes up so routing endpoints always exist
		// (degenerate tiny cubes still roll one node at a time).
		width = nodes - 2
		if width < 1 {
			width = 1
		}
	}
	var events []ChurnEvent
	for w := 0; w < waves; w++ {
		perm := rng.Perm(nodes)
		for i, a := range perm {
			events = append(events, ChurnEvent{Kind: DeltaFailNode, A: topo.NodeID(a)})
			if i >= width-1 {
				events = append(events, ChurnEvent{Kind: DeltaRecoverNode, A: topo.NodeID(perm[i-width+1])})
			}
		}
		for i := nodes - width + 1; i < nodes; i++ {
			events = append(events, ChurnEvent{Kind: DeltaRecoverNode, A: topo.NodeID(perm[i])})
		}
	}
	return events
}

// flapSchedule emits Waves bursts in which a small random victim set
// toggles down/up FlapToggles times in quick succession — each toggle
// is one full fail/recover cycle per victim, interleaved round-robin so
// several nodes flap concurrently the way a bad rack does.
func flapSchedule(t topo.Topology, rng *stats.RNG, waves, flapNodes, toggles int) []ChurnEvent {
	nodes := t.Nodes()
	if flapNodes <= 0 {
		flapNodes = t.Dim()
		if q := nodes / 4; flapNodes > q {
			flapNodes = q
		}
		if flapNodes < 1 {
			flapNodes = 1
		}
	}
	if flapNodes > nodes-2 {
		flapNodes = nodes - 2
		if flapNodes < 1 {
			flapNodes = 1
		}
	}
	if toggles <= 0 {
		toggles = 3
	}
	var events []ChurnEvent
	for w := 0; w < waves; w++ {
		victims := rng.Sample(nodes, flapNodes)
		for c := 0; c < toggles; c++ {
			for _, v := range victims {
				events = append(events, ChurnEvent{Kind: DeltaFailNode, A: topo.NodeID(v)})
			}
			for _, v := range victims {
				events = append(events, ChurnEvent{Kind: DeltaRecoverNode, A: topo.NodeID(v)})
			}
		}
	}
	return events
}
