package faults

import (
	"fmt"

	"repro/internal/stats"
	"repro/internal/topo"
)

// Fault churn: deterministic randomized schedules of interleaved fail
// and recover events, the workload of the incremental-repair and chaos
// tests. A schedule is generated against a scratch fault set so every
// event is feasible (never failing an already-faulty node, never
// recovering a healthy link) when replayed from an empty set in order.

// ChurnEvent is one scheduled fault-state mutation. Kind selects the
// mutation; A is the node (node events) or the low link endpoint, B the
// high link endpoint (link events).
type ChurnEvent struct {
	Kind DeltaKind
	A, B topo.NodeID
}

// String renders the event with raw node IDs.
func (ev ChurnEvent) String() string {
	switch ev.Kind {
	case DeltaFailLink, DeltaRecoverLink:
		return fmt.Sprintf("%s(%d,%d)", ev.Kind, ev.A, ev.B)
	default:
		return fmt.Sprintf("%s(%d)", ev.Kind, ev.A)
	}
}

// Apply executes the event against the set.
func (s *Set) Apply(ev ChurnEvent) error {
	switch ev.Kind {
	case DeltaFailNode:
		return s.FailNode(ev.A)
	case DeltaRecoverNode:
		return s.RecoverNode(ev.A)
	case DeltaFailLink:
		return s.FailLink(ev.A, ev.B)
	case DeltaRecoverLink:
		return s.RecoverLink(ev.A, ev.B)
	}
	return fmt.Errorf("faults: unknown churn event kind %d", ev.Kind)
}

// ChurnOptions tune schedule generation. The zero value yields a
// node-only schedule bounded at 2n simultaneous faults.
type ChurnOptions struct {
	// Links enables link fail/recover events alongside node events.
	Links bool
	// MaxNodeFaults caps simultaneous node faults (0 means 2n). Once at
	// the cap the generator recovers instead of failing.
	MaxNodeFaults int
	// MaxLinkFaults caps simultaneous link faults (0 means n).
	MaxLinkFaults int
	// MinHealthy keeps at least this many nodes alive (0 means 2), so
	// routing steps always have endpoints to work with.
	MinHealthy int
}

// ChurnSchedule generates a deterministic steps-long schedule of
// feasible fail/recover events over topology t using the splitmix64
// generator seeded by seed. The same (t, seed, steps, opts) always
// yields the same schedule, on every platform — the property the chaos
// tests and EXPERIMENTS.md pin their measurements on.
func ChurnSchedule(t topo.Topology, seed uint64, steps int, opts ChurnOptions) []ChurnEvent {
	maxNode := opts.MaxNodeFaults
	if maxNode <= 0 {
		maxNode = 2 * t.Dim()
	}
	maxLink := opts.MaxLinkFaults
	if maxLink <= 0 {
		maxLink = t.Dim()
	}
	minHealthy := opts.MinHealthy
	if minHealthy <= 0 {
		minHealthy = 2
	}
	rng := stats.NewRNG(seed)
	shadow := NewSet(t)
	events := make([]ChurnEvent, 0, steps)
	for len(events) < steps {
		ev, ok := nextChurnEvent(shadow, rng, opts.Links, maxNode, maxLink, minHealthy)
		if !ok {
			break // topology too small for any feasible event
		}
		if err := shadow.Apply(ev); err != nil {
			panic(fmt.Sprintf("faults: generated infeasible churn event %v: %v", ev, err))
		}
		events = append(events, ev)
	}
	return events
}

// nextChurnEvent draws one feasible event. Kind weights: failures are
// preferred while under the caps (roughly 60/40 fail/recover), which
// keeps the fault population hovering near the cap — the interesting
// regime for safety levels.
func nextChurnEvent(s *Set, rng *stats.RNG, links bool, maxNode, maxLink, minHealthy int) (ChurnEvent, bool) {
	canFailNode := s.NodeFaults() < maxNode && s.t.Nodes()-s.NodeFaults() > minHealthy
	canRecoverNode := s.NodeFaults() > 0
	canFailLink := links && s.LinkFaults() < maxLink
	canRecoverLink := links && s.LinkFaults() > 0
	for try := 0; try < 16; try++ {
		switch rng.Intn(10) {
		case 0, 1, 2, 3: // fail node
			if !canFailNode {
				continue
			}
			healthy := make([]topo.NodeID, 0, s.t.Nodes()-s.NodeFaults())
			for a := 0; a < s.t.Nodes(); a++ {
				if !s.NodeFaulty(topo.NodeID(a)) {
					healthy = append(healthy, topo.NodeID(a))
				}
			}
			return ChurnEvent{Kind: DeltaFailNode, A: healthy[rng.Intn(len(healthy))]}, true
		case 4, 5, 6: // recover node
			if !canRecoverNode {
				continue
			}
			down := s.FaultyNodes()
			return ChurnEvent{Kind: DeltaRecoverNode, A: down[rng.Intn(len(down))]}, true
		case 7, 8: // fail link
			if !canFailLink {
				continue
			}
			a := topo.NodeID(rng.Intn(s.t.Nodes()))
			d := rng.Intn(s.t.Dim())
			sibs := s.t.Siblings(a, d, nil)
			b := sibs[rng.Intn(len(sibs))]
			if s.LinkFaulty(a, b) {
				continue
			}
			l := Link{a, b}.Normalize()
			return ChurnEvent{Kind: DeltaFailLink, A: l.A, B: l.B}, true
		default: // recover link
			if !canRecoverLink {
				continue
			}
			up := s.FaultyLinks()
			l := up[rng.Intn(len(up))]
			return ChurnEvent{Kind: DeltaRecoverLink, A: l.A, B: l.B}, true
		}
	}
	// Weighted draw starved (e.g. caps reached with links disabled);
	// fall back to the first feasible kind in a fixed order.
	switch {
	case canRecoverNode:
		down := s.FaultyNodes()
		return ChurnEvent{Kind: DeltaRecoverNode, A: down[rng.Intn(len(down))]}, true
	case canFailNode:
		for a := 0; a < s.t.Nodes(); a++ {
			if !s.NodeFaulty(topo.NodeID(a)) {
				return ChurnEvent{Kind: DeltaFailNode, A: topo.NodeID(a)}, true
			}
		}
	case canRecoverLink:
		up := s.FaultyLinks()
		l := up[0]
		return ChurnEvent{Kind: DeltaRecoverLink, A: l.A, B: l.B}, true
	}
	return ChurnEvent{}, false
}
