package faults

import (
	"fmt"
	"sort"
	"strings"

	"repro/internal/bitset"
	"repro/internal/topo"
)

// Link is an undirected edge identified by its two endpoints.
// Normalize before using a Link as a map key.
type Link struct {
	A, B topo.NodeID
}

// Normalize returns the link with endpoints ordered A < B so that the
// same physical edge always compares equal.
func (l Link) Normalize() Link {
	if l.A > l.B {
		l.A, l.B = l.B, l.A
	}
	return l
}

// Dimension returns the dimension the link crosses in a binary cube, or
// -1 if the two endpoints are not hypercube-adjacent. For non-binary
// topologies use Topology.LinkDim instead.
func (l Link) Dimension() int {
	x := uint32(l.A ^ l.B)
	if x == 0 || x&(x-1) != 0 {
		return -1
	}
	d := 0
	for x > 1 {
		x >>= 1
		d++
	}
	return d
}

// DeltaKind discriminates the four elementary fault-state mutations.
type DeltaKind uint8

// Elementary mutations, in the order the paper's dynamic fault model
// introduces them (fail-stop faults, then the Section 2.2 recovery and
// the Section 4.1 link faults).
const (
	DeltaFailNode DeltaKind = iota
	DeltaRecoverNode
	DeltaFailLink
	DeltaRecoverLink
)

// String names the mutation kind.
func (k DeltaKind) String() string {
	switch k {
	case DeltaFailNode:
		return "fail-node"
	case DeltaRecoverNode:
		return "recover-node"
	case DeltaFailLink:
		return "fail-link"
	case DeltaRecoverLink:
		return "recover-link"
	}
	return "unknown"
}

// Delta records one effective mutation of a fault set: the generation
// the set reached by applying it, the kind, and the touched node (A) or
// link endpoints (A, B — normalized A < B). The journal of recent
// deltas is what lets the incremental GS repair seed its dirty frontier
// instead of re-sweeping all 2^n nodes.
type Delta struct {
	Gen  uint64
	Kind DeltaKind
	A, B topo.NodeID
}

// journalCap bounds the retained delta journal. A consumer that falls
// more than journalCap effective mutations behind simply recomputes
// cold; the cap only trades repairability for memory.
const journalCap = 4096

// Set records the faulty nodes and links of one topology instance.
// The zero value is not usable; construct with NewSet.
//
// Storage is flat: faulty nodes live in a word-addressed bitset keyed
// by dense node index, faulty links in a slice kept sorted by
// normalized endpoints. Both clone with a memcpy — the property the
// serving layer's per-publish CloneState depends on — and both stay
// near-linear in the fault count rather than the topology size.
type Set struct {
	t         topo.Topology
	node      bitset.Set
	nodeCount int
	// links holds the normalized faulty links sorted by (A, B); lookups
	// binary-search it and FaultyLinks returns a copy without sorting.
	links []Link
	// gen increments on every effective mutation; caches keyed on it
	// (e.g. the Cube level cache) detect staleness without callers
	// having to flag every mutation path by hand.
	gen uint64
	// journal holds the most recent effective mutations, one entry per
	// generation increment, oldest first. Bounded by journalCap.
	journal []Delta
}

// Generation returns the mutation generation: it changes exactly when
// the fault set changes. Two equal generations of the same Set imply an
// identical fault state.
func (s *Set) Generation() uint64 { return s.gen }

// record advances the generation and journals the mutation. Every
// effective mutation path funnels through here so the journal invariant
// (one consecutive entry per generation) holds by construction.
func (s *Set) record(kind DeltaKind, a, b topo.NodeID) {
	s.gen++
	if len(s.journal) >= journalCap {
		// Drop the older half in one copy; amortized O(1) per mutation.
		n := copy(s.journal, s.journal[len(s.journal)-journalCap/2:])
		s.journal = s.journal[:n]
	}
	s.journal = append(s.journal, Delta{Gen: s.gen, Kind: kind, A: a, B: b})
}

// Since returns the deltas that moved the set from generation gen to its
// current state, oldest first. ok is false when the journal no longer
// reaches back to gen (too many mutations since) — the caller must then
// treat the whole set as changed and recompute from scratch.
func (s *Set) Since(gen uint64) (deltas []Delta, ok bool) {
	if gen == s.gen {
		return nil, true
	}
	if gen > s.gen || len(s.journal) == 0 || s.journal[0].Gen > gen+1 {
		return nil, false
	}
	// Entries are consecutive, so the first wanted entry sits at a fixed
	// offset from the journal tail.
	idx := len(s.journal) - int(s.gen-gen)
	if idx < 0 {
		return nil, false
	}
	return s.journal[idx:], true
}

// NewSet returns an empty fault set over topology t.
func NewSet(t topo.Topology) *Set {
	return &Set{
		t:    t,
		node: bitset.New(t.Nodes()),
	}
}

// Clone returns an independent deep copy.
func (s *Set) Clone() *Set {
	cp := s.CloneState()
	cp.journal = append([]Delta(nil), s.journal...)
	return cp
}

// CloneState returns an independent copy of the fault state without the
// delta journal. The copy reports the same faults and generation but
// Since on it only succeeds for the current generation, so it cannot
// replay history for an incremental repair — it is the cheap frozen
// view the serving layer publishes inside each level snapshot, where
// the journal (up to journalCap entries) would be dead weight copied
// on every swap. With the flat storage the whole clone is two slice
// copies (node bitset + sorted link slice): a memcpy, not a map walk.
func (s *Set) CloneState() *Set {
	cp := &Set{
		t:         s.t,
		node:      s.node.Clone(),
		nodeCount: s.nodeCount,
		gen:       s.gen,
	}
	if len(s.links) > 0 {
		cp.links = append([]Link(nil), s.links...)
	}
	return cp
}

// linkIndex binary-searches the sorted link slice for normalized link
// l, returning its position (or insertion point) and whether it is
// present.
func (s *Set) linkIndex(l Link) (int, bool) {
	i := sort.Search(len(s.links), func(i int) bool {
		e := s.links[i]
		return e.A > l.A || (e.A == l.A && e.B >= l.B)
	})
	return i, i < len(s.links) && s.links[i] == l
}

// Topology returns the topology the set is defined over.
func (s *Set) Topology() topo.Topology { return s.t }

// Cube returns the topology as a binary cube; it panics if the set was
// built over a non-binary topology. Binary-only consumers (the subcube
// injectors, the baseline routers) use this accessor.
func (s *Set) Cube() *topo.Cube {
	c, ok := s.t.(*topo.Cube)
	if !ok {
		panic("faults: set is not over a binary cube")
	}
	return c
}

// FailNode marks node a faulty. Failing an already-faulty node is a no-op.
func (s *Set) FailNode(a topo.NodeID) error {
	if !s.t.Contains(a) {
		return fmt.Errorf("faults: node %d outside cube", a)
	}
	if !s.node.Test(int(a)) {
		s.node.Add(int(a))
		s.nodeCount++
		s.record(DeltaFailNode, a, a)
	}
	return nil
}

// RecoverNode marks node a nonfaulty again (used by the update-strategy
// ablations; the paper discusses recovery under demand-driven GS).
//
// Recovery resets the node's incident links to healthy as well: a
// repaired node rejoins the cube with a fresh set of working links, so
// any link fault recorded while it was down is dropped (and journaled as
// its own recovery). Without this, a later FailLink on an incident link
// would be silently absorbed by the stale record and the link would
// appear to have been faulty the whole time. Link faults that should
// survive a node repair must be re-asserted with FailLink.
//
// RecoverNode is a composite mutation: it journals one delta (and bumps
// the generation) per dropped link plus one for the node itself. A Set
// is not safe for concurrent use, and a reader racing RecoverNode could
// observe a generation from the middle of the composite — levels where
// the node is still down but its link faults are already gone. Callers
// that serve readers concurrently must serialize mutations and publish
// immutable CloneState views instead of sharing the live set; that is
// exactly what internal/serve does (see the snapshot/swap argument in
// DESIGN.md §9 and TestServeChurn).
func (s *Set) RecoverNode(a topo.NodeID) error {
	if !s.t.Contains(a) {
		return fmt.Errorf("faults: node %d outside cube", a)
	}
	if !s.node.Test(int(a)) {
		return nil
	}
	if len(s.links) > 0 {
		var sibs []topo.NodeID
		for i := 0; i < s.t.Dim(); i++ {
			sibs = s.t.Siblings(a, i, sibs[:0])
			for _, b := range sibs {
				l := Link{a, b}.Normalize()
				if idx, ok := s.linkIndex(l); ok {
					s.links = append(s.links[:idx], s.links[idx+1:]...)
					s.record(DeltaRecoverLink, l.A, l.B)
				}
			}
		}
	}
	s.node.Remove(int(a))
	s.nodeCount--
	s.record(DeltaRecoverNode, a, a)
	return nil
}

// FailNodes marks each listed node faulty.
func (s *Set) FailNodes(nodes ...topo.NodeID) error {
	for _, a := range nodes {
		if err := s.FailNode(a); err != nil {
			return err
		}
	}
	return nil
}

// FailLink marks the undirected link between a and b faulty.
// It returns an error if a and b are not adjacent.
func (s *Set) FailLink(a, b topo.NodeID) error {
	if !s.t.Contains(a) || !s.t.Contains(b) {
		return fmt.Errorf("faults: link endpoint outside cube")
	}
	if !s.t.Adjacent(a, b) {
		return fmt.Errorf("faults: %d and %d are not adjacent", a, b)
	}
	l := Link{a, b}.Normalize()
	if idx, ok := s.linkIndex(l); !ok {
		s.links = append(s.links, Link{})
		copy(s.links[idx+1:], s.links[idx:])
		s.links[idx] = l
		s.record(DeltaFailLink, l.A, l.B)
	}
	return nil
}

// RecoverLink marks the undirected link between a and b healthy again.
func (s *Set) RecoverLink(a, b topo.NodeID) error {
	if !s.t.Contains(a) || !s.t.Contains(b) {
		return fmt.Errorf("faults: link endpoint outside cube")
	}
	l := Link{a, b}.Normalize()
	if idx, ok := s.linkIndex(l); ok {
		s.links = append(s.links[:idx], s.links[idx+1:]...)
		s.record(DeltaRecoverLink, l.A, l.B)
	}
	return nil
}

// NodeFaulty reports whether node a is faulty.
func (s *Set) NodeFaulty(a topo.NodeID) bool { return s.node.Test(int(a)) }

// LinkFaulty reports whether the undirected link (a, b) is faulty.
// A link incident to a faulty node is NOT automatically reported faulty:
// the paper keeps node and link faults distinct (Section 4.1), and the
// safety-level machinery composes them itself.
func (s *Set) LinkFaulty(a, b topo.NodeID) bool {
	if len(s.links) == 0 {
		return false
	}
	_, ok := s.linkIndex(Link{a, b}.Normalize())
	return ok
}

// Usable reports whether a message can traverse the edge from a to b:
// both endpoints in the topology, the link itself healthy, and the
// receiving endpoint b nonfaulty. (A faulty destination can still be an
// endpoint of the final hop; the routing layer decides that case — see
// the footnote to Section 4.1. Here we take the conservative transport
// view.)
func (s *Set) Usable(a, b topo.NodeID) bool {
	if !s.t.Adjacent(a, b) {
		return false
	}
	return !s.LinkFaulty(a, b) && !s.node.Test(int(b)) && !s.node.Test(int(a))
}

// NodeFaults returns the number of faulty nodes.
func (s *Set) NodeFaults() int { return s.nodeCount }

// LinkFaults returns the number of faulty links.
func (s *Set) LinkFaults() int { return len(s.links) }

// FaultyNodes returns the faulty node IDs in ascending order.
func (s *Set) FaultyNodes() []topo.NodeID {
	out := make([]topo.NodeID, 0, s.nodeCount)
	s.node.ForEach(func(a int) { out = append(out, topo.NodeID(a)) })
	return out
}

// FaultyLinks returns the faulty links, normalized, in deterministic
// (sorted) order. The slice is already kept sorted, so this is one copy.
func (s *Set) FaultyLinks() []Link {
	if len(s.links) == 0 {
		return []Link{}
	}
	return append([]Link(nil), s.links...)
}

// HasLinkFaults reports whether any link fault is present; the core
// package uses this to decide between GS and EGS.
func (s *Set) HasLinkFaults() bool { return len(s.links) > 0 }

// AdjacentFaultyLinks returns the dimensions of the faulty links incident
// to node a, ascending; a dimension with several faulty sibling links is
// listed once. A node with a non-empty result belongs to the paper's set
// N2 (Section 4.1).
func (s *Set) AdjacentFaultyLinks(a topo.NodeID) []int {
	if len(s.links) == 0 {
		return nil
	}
	var dims []int
	var sibs []topo.NodeID
	for i := 0; i < s.t.Dim(); i++ {
		sibs = s.t.Siblings(a, i, sibs[:0])
		for _, b := range sibs {
			if s.LinkFaulty(a, b) {
				dims = append(dims, i)
				break
			}
		}
	}
	return dims
}

// String renders the fault set in figure notation.
func (s *Set) String() string {
	var b strings.Builder
	b.WriteString("nodes{")
	for i, a := range s.FaultyNodes() {
		if i > 0 {
			b.WriteString(", ")
		}
		b.WriteString(s.t.Format(a))
	}
	b.WriteString("}")
	if len(s.links) > 0 {
		b.WriteString(" links{")
		for i, l := range s.FaultyLinks() {
			if i > 0 {
				b.WriteString(", ")
			}
			fmt.Fprintf(&b, "(%s,%s)", s.t.Format(l.A), s.t.Format(l.B))
		}
		b.WriteString("}")
	}
	return b.String()
}
