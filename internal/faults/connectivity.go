package faults

import "repro/internal/topo"

// Components labels every nonfaulty node with the ID of its connected
// component in the surviving subgraph (faulty nodes and faulty links
// removed). Faulty nodes get label -1. Labels are small consecutive
// integers assigned in ascending order of each component's smallest node.
func Components(s *Set) (labels []int, count int) {
	t := s.t
	n := t.Nodes()
	labels = make([]int, n)
	for i := range labels {
		labels[i] = -1
	}
	queue := make([]topo.NodeID, 0, n)
	var sibs []topo.NodeID
	for start := 0; start < n; start++ {
		if s.node.Test(start) || labels[start] >= 0 {
			continue
		}
		labels[start] = count
		queue = append(queue[:0], topo.NodeID(start))
		for len(queue) > 0 {
			a := queue[0]
			queue = queue[1:]
			for i := 0; i < t.Dim(); i++ {
				sibs = t.Siblings(a, i, sibs[:0])
				for _, b := range sibs {
					if s.node.Test(int(b)) || labels[b] >= 0 || s.LinkFaulty(a, b) {
						continue
					}
					labels[b] = count
					queue = append(queue, b)
				}
			}
		}
		count++
	}
	return labels, count
}

// Connected reports whether all nonfaulty nodes lie in one component.
// A cube whose nonfaulty nodes are split into two or more parts is the
// paper's "disconnected hypercube" (Section 3.3).
func Connected(s *Set) bool {
	_, count := Components(s)
	return count <= 1
}

// SameComponent reports whether nonfaulty nodes a and b are connected in
// the surviving subgraph. It returns false if either is faulty.
func SameComponent(s *Set, a, b topo.NodeID) bool {
	if s.node.Test(int(a)) || s.node.Test(int(b)) {
		return false
	}
	labels, _ := Components(s)
	return labels[a] == labels[b]
}

// Distances runs a BFS from src over the surviving subgraph and returns
// the exact shortest-path distance to every node (-1 = unreachable or
// faulty). This is the ground-truth oracle the optimality experiments
// compare routed paths against.
func Distances(s *Set, src topo.NodeID) []int {
	t := s.t
	n := t.Nodes()
	dist := make([]int, n)
	for i := range dist {
		dist[i] = -1
	}
	if s.node.Test(int(src)) {
		return dist
	}
	dist[src] = 0
	queue := []topo.NodeID{src}
	var sibs []topo.NodeID
	for len(queue) > 0 {
		a := queue[0]
		queue = queue[1:]
		for i := 0; i < t.Dim(); i++ {
			sibs = t.Siblings(a, i, sibs[:0])
			for _, b := range sibs {
				if s.node.Test(int(b)) || dist[b] >= 0 || s.LinkFaulty(a, b) {
					continue
				}
				dist[b] = dist[a] + 1
				queue = append(queue, b)
			}
		}
	}
	return dist
}

// HasOptimalPath reports whether a distance-length path from s to d
// survives the faults: a path of length Distance(s,d) using only
// nonfaulty intermediate nodes, healthy links, and moving strictly
// toward d (each hop fixes one differing coordinate to d's value; in a
// generalized cube any dimension is crossed in a single hop, so every
// optimal path has this form). The destination itself must be nonfaulty.
// This is the exact predicate behind Theorem 2 (and its Section 4.2
// analogue) and is computed by dynamic programming over the sub-lattice
// between src and dst (2^H states).
func HasOptimalPath(set *Set, src, dst topo.NodeID) bool {
	if set.node.Test(int(src)) || set.node.Test(int(dst)) {
		return false
	}
	t := set.t
	nav := topo.NavIn(t, src, dst)
	h := nav.Count()
	if h == 0 {
		return true
	}
	dims := nav.Preferred(t.Dim(), nil)
	// reach[m] = an optimal prefix exists from src to the node whose
	// coordinates match dst in the dims subset m and src elsewhere.
	reach := make([]bool, 1<<uint(h))
	reach[0] = true
	// Iterate masks in increasing popcount order; since adding a bit only
	// increases the mask value, plain ascending order suffices.
	for m := 1; m < 1<<uint(h); m++ {
		node := src
		for j, d := range dims {
			if m&(1<<uint(j)) != 0 {
				node = t.Toward(node, dst, d)
			}
		}
		if set.node.Test(int(node)) {
			continue
		}
		for j := range dims {
			bit := 1 << uint(j)
			if m&bit == 0 || !reach[m^bit] {
				continue
			}
			prev := t.Toward(node, src, dims[j])
			if !set.LinkFaulty(prev, node) {
				reach[m] = true
				break
			}
		}
	}
	return reach[1<<uint(h)-1]
}
