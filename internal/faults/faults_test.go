package faults

import (
	"testing"

	"repro/internal/stats"
	"repro/internal/topo"
)

func q4() *topo.Cube { return topo.MustCube(4) }

func TestFailAndRecoverNode(t *testing.T) {
	c := q4()
	s := NewSet(c)
	if s.NodeFaults() != 0 || s.LinkFaults() != 0 {
		t.Fatal("new set should be empty")
	}
	a := c.MustParse("0110")
	if err := s.FailNode(a); err != nil {
		t.Fatal(err)
	}
	if !s.NodeFaulty(a) || s.NodeFaults() != 1 {
		t.Error("node should be faulty")
	}
	// Idempotent.
	if err := s.FailNode(a); err != nil {
		t.Fatal(err)
	}
	if s.NodeFaults() != 1 {
		t.Error("double fail should not double count")
	}
	if err := s.RecoverNode(a); err != nil {
		t.Fatal(err)
	}
	if s.NodeFaulty(a) || s.NodeFaults() != 0 {
		t.Error("node should have recovered")
	}
	if err := s.RecoverNode(a); err != nil {
		t.Fatal(err)
	}
	if err := s.FailNode(99); err == nil {
		t.Error("failing node outside cube should error")
	}
	if err := s.RecoverNode(99); err == nil {
		t.Error("recovering node outside cube should error")
	}
}

func TestFailNodesBatch(t *testing.T) {
	c := q4()
	s := NewSet(c)
	if err := s.FailNodes(c.MustParseAll("0011", "0100", "0110", "1001")...); err != nil {
		t.Fatal(err)
	}
	if s.NodeFaults() != 4 {
		t.Errorf("faults = %d, want 4", s.NodeFaults())
	}
	got := s.FaultyNodes()
	want := c.MustParseAll("0011", "0100", "0110", "1001")
	if len(got) != len(want) {
		t.Fatalf("FaultyNodes = %v", got)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Errorf("FaultyNodes[%d] = %s, want %s", i, c.Format(got[i]), c.Format(want[i]))
		}
	}
}

func TestLinkNormalizeAndDimension(t *testing.T) {
	l := Link{A: 5, B: 4}
	n := l.Normalize()
	if n.A != 4 || n.B != 5 {
		t.Errorf("Normalize = %+v", n)
	}
	if d := n.Dimension(); d != 0 {
		t.Errorf("Dimension = %d, want 0", d)
	}
	if d := (Link{A: 0, B: 8}).Dimension(); d != 3 {
		t.Errorf("Dimension = %d, want 3", d)
	}
	if d := (Link{A: 0, B: 3}).Dimension(); d != -1 {
		t.Errorf("non-adjacent Dimension = %d, want -1", d)
	}
	if d := (Link{A: 6, B: 6}).Dimension(); d != -1 {
		t.Errorf("self-link Dimension = %d, want -1", d)
	}
}

func TestFailLink(t *testing.T) {
	c := q4()
	s := NewSet(c)
	a, b := c.MustParse("1000"), c.MustParse("1001")
	if err := s.FailLink(a, b); err != nil {
		t.Fatal(err)
	}
	if !s.LinkFaulty(a, b) || !s.LinkFaulty(b, a) {
		t.Error("link fault should be undirected")
	}
	if s.LinkFaults() != 1 {
		t.Errorf("LinkFaults = %d", s.LinkFaults())
	}
	if err := s.FailLink(b, a); err != nil {
		t.Fatal(err)
	}
	if s.LinkFaults() != 1 {
		t.Error("re-failing the reversed link should not double count")
	}
	if err := s.FailLink(a, c.MustParse("0001")); err == nil {
		t.Error("non-adjacent link should error")
	}
	if err := s.FailLink(a, 77); err == nil {
		t.Error("out-of-cube link should error")
	}
	if !s.HasLinkFaults() {
		t.Error("HasLinkFaults should be true")
	}
	dims := s.AdjacentFaultyLinks(a)
	if len(dims) != 1 || dims[0] != 0 {
		t.Errorf("AdjacentFaultyLinks = %v, want [0]", dims)
	}
	if got := s.AdjacentFaultyLinks(c.MustParse("0000")); len(got) != 0 {
		t.Errorf("unrelated node has faulty links %v", got)
	}
}

func TestUsable(t *testing.T) {
	c := q4()
	s := NewSet(c)
	a, b := c.MustParse("0000"), c.MustParse("0001")
	if !s.Usable(a, b) {
		t.Error("healthy edge should be usable")
	}
	if s.Usable(a, c.MustParse("0011")) {
		t.Error("non-adjacent pair should not be usable")
	}
	s.FailLink(a, b)
	if s.Usable(a, b) {
		t.Error("faulty link should not be usable")
	}
	s2 := NewSet(c)
	s2.FailNode(b)
	if s2.Usable(a, b) {
		t.Error("edge into faulty node should not be usable")
	}
}

func TestClone(t *testing.T) {
	c := q4()
	s := NewSet(c)
	s.FailNode(c.MustParse("0011"))
	s.FailLink(c.MustParse("0000"), c.MustParse("0001"))
	cp := s.Clone()
	cp.FailNode(c.MustParse("1111"))
	cp.FailLink(c.MustParse("0000"), c.MustParse("0010"))
	if s.NodeFaulty(c.MustParse("1111")) {
		t.Error("clone mutation leaked into original (nodes)")
	}
	if s.LinkFaulty(c.MustParse("0000"), c.MustParse("0010")) {
		t.Error("clone mutation leaked into original (links)")
	}
	if !cp.NodeFaulty(c.MustParse("0011")) || !cp.LinkFaulty(c.MustParse("0000"), c.MustParse("0001")) {
		t.Error("clone lost original faults")
	}
}

func TestStringRendering(t *testing.T) {
	c := q4()
	s := NewSet(c)
	s.FailNodes(c.MustParseAll("0011", "0100")...)
	if got := s.String(); got != "nodes{0011, 0100}" {
		t.Errorf("String = %q", got)
	}
	s.FailLink(c.MustParse("1000"), c.MustParse("1001"))
	if got := s.String(); got != "nodes{0011, 0100} links{(1000,1001)}" {
		t.Errorf("String = %q", got)
	}
}

func TestInjectUniformExactCount(t *testing.T) {
	c := topo.MustCube(7)
	rng := stats.NewRNG(123)
	for count := 0; count <= 20; count += 5 {
		s := NewSet(c)
		if err := InjectUniform(s, rng, count); err != nil {
			t.Fatal(err)
		}
		if s.NodeFaults() != count {
			t.Errorf("InjectUniform(%d) produced %d faults", count, s.NodeFaults())
		}
	}
	s := NewSet(c)
	if err := InjectUniform(s, rng, c.Nodes()+1); err == nil {
		t.Error("overful injection should error")
	}
	if err := InjectUniform(s, rng, -1); err == nil {
		t.Error("negative injection should error")
	}
}

func TestInjectUniformComposes(t *testing.T) {
	c := topo.MustCube(5)
	rng := stats.NewRNG(9)
	s := NewSet(c)
	if err := InjectUniform(s, rng, 10); err != nil {
		t.Fatal(err)
	}
	if err := InjectUniform(s, rng, 10); err != nil {
		t.Fatal(err)
	}
	if s.NodeFaults() != 20 {
		t.Errorf("two injections of 10 produced %d faults", s.NodeFaults())
	}
}

func TestInjectUniformCoverage(t *testing.T) {
	// Over many trials every node should get hit at least once.
	c := q4()
	rng := stats.NewRNG(31)
	hit := make([]bool, c.Nodes())
	for trial := 0; trial < 400; trial++ {
		s := NewSet(c)
		InjectUniform(s, rng, 3)
		for _, a := range s.FaultyNodes() {
			hit[a] = true
		}
	}
	for a, ok := range hit {
		if !ok {
			t.Errorf("node %d never selected by uniform injector", a)
		}
	}
}

func TestInjectUniformLinks(t *testing.T) {
	c := q4()
	rng := stats.NewRNG(17)
	s := NewSet(c)
	if err := InjectUniformLinks(s, rng, 5); err != nil {
		t.Fatal(err)
	}
	if s.LinkFaults() != 5 {
		t.Errorf("LinkFaults = %d, want 5", s.LinkFaults())
	}
	if err := InjectUniformLinks(s, rng, c.Links()); err == nil {
		t.Error("injecting more links than remain should error")
	}
	if err := InjectUniformLinks(s, rng, -1); err == nil {
		t.Error("negative count should error")
	}
}

func TestInjectClustered(t *testing.T) {
	c := topo.MustCube(6)
	rng := stats.NewRNG(77)
	s := NewSet(c)
	if err := InjectClustered(s, rng, 4, 2); err != nil {
		t.Fatal(err)
	}
	// 4 faults requested from a 2-subcube: the subcube has exactly 4
	// nodes, so all of them fail and pairwise distances stay within 2.
	fn := s.FaultyNodes()
	if len(fn) != 4 {
		t.Fatalf("clustered faults = %d, want 4", len(fn))
	}
	for _, a := range fn {
		for _, b := range fn {
			if topo.Hamming(a, b) > 2 {
				t.Errorf("clustered faults %s and %s are %d apart",
					c.Format(a), c.Format(b), topo.Hamming(a, b))
			}
		}
	}
	if err := InjectClustered(s, rng, 1, 9); err == nil {
		t.Error("subdim > n should error")
	}
	// Requesting more than the cluster holds clips to the cluster size.
	s2 := NewSet(c)
	if err := InjectClustered(s2, rng, 100, 2); err != nil {
		t.Fatal(err)
	}
	if s2.NodeFaults() != 4 {
		t.Errorf("clipped clustered faults = %d, want 4", s2.NodeFaults())
	}
}

func TestInjectIsolating(t *testing.T) {
	c := q4()
	s := NewSet(c)
	victim := c.MustParse("0101")
	if err := InjectIsolating(s, victim); err != nil {
		t.Fatal(err)
	}
	if s.NodeFaults() != 4 {
		t.Errorf("faults = %d, want n = 4", s.NodeFaults())
	}
	if s.NodeFaulty(victim) {
		t.Error("victim itself should stay healthy")
	}
	if Connected(s) {
		t.Error("cube should be disconnected")
	}
	labels, count := Components(s)
	if count != 2 {
		t.Errorf("components = %d, want 2", count)
	}
	// Victim is alone in its component.
	alone := 0
	for a, l := range labels {
		if l == labels[victim] && l >= 0 {
			alone++
			_ = a
		}
	}
	if alone != 1 {
		t.Errorf("victim component has %d nodes, want 1", alone)
	}
	if err := InjectIsolating(s, 999); err == nil {
		t.Error("victim outside cube should error")
	}
}

func TestInjectIsolatingSubcube(t *testing.T) {
	c := topo.MustCube(5)
	s := NewSet(c)
	victim := c.MustParse("00010")
	if err := InjectIsolatingSubcube(s, victim, 2); err != nil {
		t.Fatal(err)
	}
	if Connected(s) {
		t.Error("cube should be disconnected")
	}
	labels, count := Components(s)
	if count < 2 {
		t.Fatalf("components = %d", count)
	}
	// The interior 2-subcube (4 nodes) survives as one component.
	interior := 0
	for a, l := range labels {
		if l == labels[victim] {
			interior++
			_ = a
		}
	}
	if interior != 4 {
		t.Errorf("interior component has %d nodes, want 4", interior)
	}
	if err := InjectIsolatingSubcube(s, victim, 5); err == nil {
		t.Error("subdim = n should error")
	}
}

func TestComponentsFaultFree(t *testing.T) {
	s := NewSet(q4())
	labels, count := Components(s)
	if count != 1 {
		t.Errorf("fault-free components = %d", count)
	}
	for _, l := range labels {
		if l != 0 {
			t.Error("all labels should be 0")
		}
	}
	if !Connected(s) {
		t.Error("fault-free cube should be connected")
	}
}

func TestComponentsFig3(t *testing.T) {
	// Fig. 3: faults {0110, 1010, 1100, 1111} disconnect 1110 from the
	// rest of Q4.
	c := q4()
	s := NewSet(c)
	s.FailNodes(c.MustParseAll("0110", "1010", "1100", "1111")...)
	labels, count := Components(s)
	if count != 2 {
		t.Fatalf("Fig. 3 components = %d, want 2", count)
	}
	island := c.MustParse("1110")
	if labels[island] < 0 {
		t.Fatal("1110 should be nonfaulty")
	}
	for a, l := range labels {
		if topo.NodeID(a) == island || l < 0 {
			continue
		}
		if l == labels[island] {
			t.Errorf("node %s should not share 1110's component", c.Format(topo.NodeID(a)))
		}
	}
	if Connected(s) {
		t.Error("Fig. 3 cube should be disconnected")
	}
	if SameComponent(s, island, c.MustParse("0000")) {
		t.Error("1110 and 0000 should be in different parts")
	}
	if !SameComponent(s, c.MustParse("0101"), c.MustParse("0000")) {
		t.Error("0101 and 0000 should be connected")
	}
	if SameComponent(s, c.MustParse("0110"), c.MustParse("0000")) {
		t.Error("faulty node is in no component")
	}
}

func TestComponentsSplitByLinkFaults(t *testing.T) {
	// Disconnect Q2 into two halves by cutting both dimension-1 links.
	c := topo.MustCube(2)
	s := NewSet(c)
	s.FailLink(0, 2)
	s.FailLink(1, 3)
	_, count := Components(s)
	if count != 2 {
		t.Errorf("link-partitioned components = %d, want 2", count)
	}
}

func TestDistances(t *testing.T) {
	c := q4()
	s := NewSet(c)
	d := Distances(s, 0)
	for a := 0; a < c.Nodes(); a++ {
		if d[a] != topo.Weight(topo.NodeID(a)) {
			t.Errorf("fault-free distance to %d = %d, want %d", a, d[a], topo.Weight(topo.NodeID(a)))
		}
	}
	// Faults can lengthen shortest paths: isolate a corridor.
	s2 := NewSet(c)
	s2.FailNodes(c.MustParseAll("0001", "0010", "0100")...)
	d2 := Distances(s2, c.MustParse("0000"))
	if d2[c.MustParse("1000")] != 1 {
		t.Errorf("distance to 1000 = %d", d2[c.MustParse("1000")])
	}
	if d2[c.MustParse("0011")] != 5 {
		// 0000 -> 1000 -> 1001 -> 1011 -> 0011 is length 4? 1011->0011
		// crosses dim 3: yes, so distance is 4.
		if d2[c.MustParse("0011")] != 4 {
			t.Errorf("distance to 0011 = %d, want 4", d2[c.MustParse("0011")])
		}
	}
	if d2[c.MustParse("0001")] != -1 {
		t.Error("faulty node should be unreachable")
	}
	// From a faulty source everything is unreachable.
	d3 := Distances(s2, c.MustParse("0001"))
	for _, v := range d3 {
		if v != -1 {
			t.Error("distances from faulty source should be -1")
		}
	}
}

func TestDistancesDisconnected(t *testing.T) {
	c := q4()
	s := NewSet(c)
	s.FailNodes(c.MustParseAll("0110", "1010", "1100", "1111")...)
	d := Distances(s, c.MustParse("0000"))
	if d[c.MustParse("1110")] != -1 {
		t.Error("island 1110 should be unreachable from 0000")
	}
	if d[c.MustParse("0111")] < 0 {
		t.Error("0111 should be reachable from 0000")
	}
}

func TestHasOptimalPathFaultFree(t *testing.T) {
	c := topo.MustCube(5)
	s := NewSet(c)
	for a := 0; a < c.Nodes(); a += 3 {
		for b := 0; b < c.Nodes(); b += 7 {
			if !HasOptimalPath(s, topo.NodeID(a), topo.NodeID(b)) {
				t.Errorf("fault-free cube must have optimal path %d -> %d", a, b)
			}
		}
	}
}

func TestHasOptimalPathBlocked(t *testing.T) {
	c := q4()
	s := NewSet(c)
	// Block both intermediate nodes between 0000 and 0011.
	s.FailNodes(c.MustParseAll("0001", "0010")...)
	if HasOptimalPath(s, c.MustParse("0000"), c.MustParse("0011")) {
		t.Error("optimal path should be blocked")
	}
	// The pair is still connected, just not optimally.
	if !SameComponent(s, c.MustParse("0000"), c.MustParse("0011")) {
		t.Error("pair should still be connected")
	}
	// Endpoints faulty.
	if HasOptimalPath(s, c.MustParse("0001"), c.MustParse("0000")) {
		t.Error("faulty source has no optimal path")
	}
	if HasOptimalPath(s, c.MustParse("0000"), c.MustParse("0001")) {
		t.Error("faulty destination has no optimal path")
	}
	// Self path trivially exists.
	if !HasOptimalPath(s, c.MustParse("0000"), c.MustParse("0000")) {
		t.Error("self path should exist")
	}
}

func TestHasOptimalPathRespectsLinkFaults(t *testing.T) {
	c := topo.MustCube(2)
	s := NewSet(c)
	// Q2: paths 00->11 via 01 or 10. Cut link (00,01) and node 10: no
	// optimal path remains.
	s.FailLink(0, 1)
	s.FailNode(2)
	if HasOptimalPath(s, 0, 3) {
		t.Error("optimal path should be blocked by link+node faults")
	}
	s2 := NewSet(c)
	s2.FailLink(0, 1)
	if !HasOptimalPath(s2, 0, 3) {
		t.Error("optimal path via 10 should survive")
	}
}

func TestHasOptimalPathMatchesBFS(t *testing.T) {
	// Cross-check the lattice DP against the BFS oracle: an optimal
	// path exists iff BFS distance equals Hamming distance.
	c := topo.MustCube(5)
	rng := stats.NewRNG(2024)
	for trial := 0; trial < 60; trial++ {
		s := NewSet(c)
		InjectUniform(s, rng, 6)
		for src := 0; src < c.Nodes(); src += 5 {
			if s.NodeFaulty(topo.NodeID(src)) {
				continue
			}
			dist := Distances(s, topo.NodeID(src))
			for dst := 0; dst < c.Nodes(); dst += 3 {
				if s.NodeFaulty(topo.NodeID(dst)) {
					continue
				}
				want := dist[dst] == topo.Hamming(topo.NodeID(src), topo.NodeID(dst))
				got := HasOptimalPath(s, topo.NodeID(src), topo.NodeID(dst))
				if got != want {
					t.Fatalf("trial %d: HasOptimalPath(%s, %s) = %v, BFS says %v (dist %d, H %d)",
						trial, c.Format(topo.NodeID(src)), c.Format(topo.NodeID(dst)),
						got, want, dist[dst], topo.Hamming(topo.NodeID(src), topo.NodeID(dst)))
				}
			}
		}
	}
}
