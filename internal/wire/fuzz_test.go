package wire

import (
	"bytes"
	"errors"
	"io"
	"runtime"
	"testing"
)

// FuzzWireDecode hardens the full server-side decode surface against a
// hostile stream: arbitrary bytes are framed-read and every opcode's
// parser is run over whatever payload survives. The invariants are the
// CI contract — a malformed, truncated or oversize input must come
// back as an error, never a panic, and never an allocation sized by
// attacker-controlled length fields.
func FuzzWireDecode(f *testing.F) {
	// Seed with every pinned golden frame, their truncations, and the
	// classic hostile shapes.
	for _, frame := range goldenFrames() {
		f.Add(frame)
		if len(frame) > 2 {
			f.Add(frame[:len(frame)/2])
		}
	}
	f.Add([]byte{})
	f.Add([]byte("GET / HTTP/1.1\r\n")) // wrong protocol entirely
	// Oversize length field: header claims 2^30 payload bytes.
	var huge [HeaderSize]byte
	PutHeader(huge[:], Header{Major: Major, Minor: Minor, Op: OpBatch, ReqID: 1, Len: 1 << 30})
	f.Add(huge[:])
	// Batch that declares more pairs than it carries.
	lying := AppendBatchReq(nil, 0, []Pair{{1, 2}})
	lying[4] = 0xFF
	f.Add(AppendFrame(nil, OpBatch, 0, 2, lying))
	// Error frame whose detail length overruns the payload.
	badErr := AppendError(nil, CodeInternal, "x")
	badErr[2] = 0xFF
	f.Add(AppendFrame(nil, OpError, FlagResponse, 3, badErr))

	const maxPayload = 1 << 16

	f.Fuzz(func(t *testing.T, data []byte) {
		var before, after runtime.MemStats
		runtime.ReadMemStats(&before)

		r := bytes.NewReader(data)
		buf := make([]byte, 0, 512)
		for {
			h, payload, nbuf, err := ReadFrame(r, buf, maxPayload)
			buf = nbuf
			if err != nil {
				// Any error is acceptable; io.EOF just means the stream
				// ended cleanly between frames.
				if errors.Is(err, ErrTooLarge) && h.Len <= maxPayload {
					t.Fatalf("ErrTooLarge for in-bounds length %d", h.Len)
				}
				break
			}
			if int(h.Len) != len(payload) {
				t.Fatalf("header len %d != payload %d", h.Len, len(payload))
			}
			// Run every parser the opcode could dispatch to; each must
			// return cleanly. Request and response shapes share opcodes,
			// so both directions are exercised regardless of FlagResponse.
			switch h.Op {
			case OpPing:
				_, _ = ParsePingResp(payload)
			case OpUnicast:
				_, _ = ParseUnicastReq(payload)
				_, _ = ParseUnicastResp(payload)
			case OpBatch:
				_, pairs, err := ParseBatchReq(payload, nil)
				if err == nil && len(pairs)*pairSize+batchReqMin != len(payload) {
					t.Fatalf("batch req size drift: %d pairs from %d bytes", len(pairs), len(payload))
				}
				_, _, _ = ParseBatchResp(payload, nil)
			case OpFeasibility:
				_, _ = ParseFeasReq(payload)
				_, _ = ParseFeasResp(payload)
			case OpFaultDelta:
				_, _ = ParseFaultReq(payload)
				_, _ = ParseFaultResp(payload)
			case OpError:
				_, _, _ = ParseError(payload)
			}
		}

		runtime.ReadMemStats(&after)
		// The whole walk must allocate O(maxPayload), regardless of what
		// the length fields claim: 8 MiB is over two orders of magnitude
		// above any honest per-iteration cost, and far under the 1 GiB a
		// trusted length field would have bought.
		if delta := after.TotalAlloc - before.TotalAlloc; delta > 8<<20 {
			t.Fatalf("decode of %d input bytes allocated %d bytes", len(data), delta)
		}
	})
}

// TestFuzzSeedsClean runs the committed corpus invariants directly so
// `go test` (not just `go test -fuzz`) exercises them; the corpus files
// under testdata/fuzz/FuzzWireDecode are replayed by the fuzz target
// automatically.
func TestFuzzSeedsClean(t *testing.T) {
	for name, frame := range goldenFrames() {
		h, payload, _, err := ReadFrame(bytes.NewReader(frame), nil, 0)
		if err != nil {
			t.Errorf("seed %s: %v", name, err)
			continue
		}
		if int(h.Len) != len(payload) {
			t.Errorf("seed %s: len %d != payload %d", name, h.Len, len(payload))
		}
	}
	// A lone truncated header errors without reading past the stream.
	if _, _, _, err := ReadFrame(bytes.NewReader([]byte{0x53, 0x4C}), nil, 0); !errors.Is(err, io.ErrUnexpectedEOF) {
		t.Errorf("truncated magic: %v", err)
	}
}
