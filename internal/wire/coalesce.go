package wire

import (
	"context"
	"sync"
	"time"
)

// Coalescer batches concurrent single-unicast calls into OpBatch
// frames: callers enqueue a pair and block for their slot's answer
// while the coalescer flushes whenever MaxBatch pairs are waiting or
// MaxDelay has passed since the first — amortizing one frame, one
// syscall and one server snapshot load over the whole batch. This is
// how a load generator (or any high-QPS caller) saturates the router
// through the wire without one connection per in-flight request.
type Coalescer struct {
	c    *Client
	opts CoalescerOptions

	mu      sync.Mutex
	pairs   []Pair
	waiters []chan coalResult
	timer   *time.Timer
	closed  bool
}

// CoalescerOptions tune a Coalescer. The zero value batches up to 64
// pairs with a 200µs linger.
type CoalescerOptions struct {
	// MaxBatch flushes when this many pairs are waiting (<= 0 means 64).
	MaxBatch int
	// MaxDelay flushes the batch this long after its first pair arrives
	// even if it is not full (<= 0 means 200µs) — the latency bound a
	// lone request pays for the batching win.
	MaxDelay time.Duration
	// Deadline is the per-flush server-side deadline budget (0 = none).
	Deadline time.Duration
}

// coalResult is one slot's answer.
type coalResult struct {
	info RouteInfo
	gen  uint64
	err  error
}

// NewCoalescer wraps a client in a batching front.
func NewCoalescer(c *Client, opts CoalescerOptions) *Coalescer {
	if opts.MaxBatch <= 0 {
		opts.MaxBatch = 64
	}
	if opts.MaxDelay <= 0 {
		opts.MaxDelay = 200 * time.Microsecond
	}
	return &Coalescer{c: c, opts: opts}
}

// Unicast enqueues one pair and waits for its coalesced answer. The
// caller's ctx bounds only the wait — the flush itself rides the
// coalescer's Deadline option, so one impatient caller cannot cancel
// a batch others are riding.
func (co *Coalescer) Unicast(ctx context.Context, src, dst uint32) (RouteInfo, uint64, error) {
	ch := make(chan coalResult, 1)
	co.mu.Lock()
	if co.closed {
		co.mu.Unlock()
		return RouteInfo{}, 0, ErrClosed
	}
	co.pairs = append(co.pairs, Pair{Src: src, Dst: dst})
	co.waiters = append(co.waiters, ch)
	if len(co.pairs) >= co.opts.MaxBatch {
		pairs, waiters := co.take()
		co.mu.Unlock()
		go co.flush(pairs, waiters)
	} else {
		if len(co.pairs) == 1 {
			// First pair of a fresh batch arms the linger timer.
			co.timer = time.AfterFunc(co.opts.MaxDelay, co.flushTimer)
		}
		co.mu.Unlock()
	}
	select {
	case r := <-ch:
		return r.info, r.gen, r.err
	case <-ctx.Done():
		// The flush still runs; the abandoned slot's buffered channel
		// absorbs the late result.
		return RouteInfo{}, 0, ctx.Err()
	}
}

// take detaches the current batch. Caller holds co.mu.
func (co *Coalescer) take() ([]Pair, []chan coalResult) {
	pairs, waiters := co.pairs, co.waiters
	co.pairs, co.waiters = nil, nil
	if co.timer != nil {
		co.timer.Stop()
		co.timer = nil
	}
	return pairs, waiters
}

func (co *Coalescer) flushTimer() {
	co.mu.Lock()
	pairs, waiters := co.take()
	co.mu.Unlock()
	if len(pairs) > 0 {
		co.flush(pairs, waiters)
	}
}

// flush issues one Batch call and fans the answers back out.
func (co *Coalescer) flush(pairs []Pair, waiters []chan coalResult) {
	ctx := context.Background()
	if co.opts.Deadline > 0 {
		var cancel context.CancelFunc
		ctx, cancel = context.WithTimeout(ctx, co.opts.Deadline)
		defer cancel()
	}
	gen, routes, err := co.c.Batch(ctx, pairs, make([]RouteInfo, 0, len(pairs)))
	if err == nil && len(routes) != len(pairs) {
		err = ErrShort
	}
	for i, ch := range waiters {
		if err != nil {
			ch <- coalResult{err: err}
			continue
		}
		ch <- coalResult{info: routes[i], gen: gen}
	}
}

// Close flushes nothing and fails later callers with ErrClosed; pairs
// already enqueued are still flushed by their timer path.
func (co *Coalescer) Close() {
	co.mu.Lock()
	co.closed = true
	pairs, waiters := co.take()
	co.mu.Unlock()
	if len(pairs) > 0 {
		co.flush(pairs, waiters)
	}
}
