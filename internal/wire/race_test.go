//go:build race

package wire

// raceEnabled skips the exact zero-alloc assertions under the race
// detector, whose instrumentation makes sync.Pool drop puts at random.
const raceEnabled = true
