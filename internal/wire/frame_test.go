package wire

import (
	"bytes"
	"errors"
	"io"
	"runtime"
	"strings"
	"testing"
)

func TestHeaderRoundTrip(t *testing.T) {
	h := Header{
		Major: Major, Minor: Minor,
		Op: OpBatch, Flags: FlagResponse,
		ReqID: 0xDEADBEEFCAFE, Len: 12345,
	}
	var b [HeaderSize]byte
	PutHeader(b[:], h)
	got, err := ParseHeader(b[:])
	if err != nil {
		t.Fatalf("ParseHeader: %v", err)
	}
	if got != h {
		t.Fatalf("header round trip: got %+v, want %+v", got, h)
	}
}

func TestParseHeaderRejects(t *testing.T) {
	var b [HeaderSize]byte
	PutHeader(b[:], Header{Op: OpPing})
	if _, err := ParseHeader(b[:HeaderSize-1]); !errors.Is(err, ErrShort) {
		t.Fatalf("short header: got %v, want ErrShort", err)
	}
	b[0] ^= 0xFF
	if _, err := ParseHeader(b[:]); !errors.Is(err, ErrMagic) {
		t.Fatalf("bad magic: got %v, want ErrMagic", err)
	}
}

func TestMessageRoundTrips(t *testing.T) {
	ureq := UnicastReq{Src: 5, Dst: 250, DeadlineUS: 1500}
	if got, err := ParseUnicastReq(AppendUnicastReq(nil, ureq)); err != nil || got != ureq {
		t.Fatalf("unicast req: got %+v, %v", got, err)
	}
	uresp := UnicastResp{Gen: 7, FlightID: 99, Route: RouteInfo{Outcome: 1, Cond: 2, Hamming: 3, Hops: 4}}
	if got, err := ParseUnicastResp(AppendUnicastResp(nil, uresp)); err != nil || got != uresp {
		t.Fatalf("unicast resp: got %+v, %v", got, err)
	}
	freq := FeasReq{Src: 1, Dst: 2}
	if got, err := ParseFeasReq(AppendFeasReq(nil, freq)); err != nil || got != freq {
		t.Fatalf("feas req: got %+v, %v", got, err)
	}
	fresp := FeasResp{Cond: 3, Outcome: 2}
	if got, err := ParseFeasResp(AppendFeasResp(nil, fresp)); err != nil || got != fresp {
		t.Fatalf("feas resp: got %+v, %v", got, err)
	}
	dreq := FaultReq{Kind: 2, A: 9, B: 13}
	if got, err := ParseFaultReq(AppendFaultReq(nil, dreq)); err != nil || got != dreq {
		t.Fatalf("fault req: got %+v, %v", got, err)
	}
	dresp := FaultResp{Gen: 41, QueueDepth: 17}
	if got, err := ParseFaultResp(AppendFaultResp(nil, dresp)); err != nil || got != dresp {
		t.Fatalf("fault resp: got %+v, %v", got, err)
	}
	presp := PingResp{Major: 1, Minor: 3}
	if got, err := ParsePingResp(AppendPingResp(nil, presp)); err != nil || got != presp {
		t.Fatalf("ping resp: got %+v, %v", got, err)
	}
}

func TestBatchRoundTrip(t *testing.T) {
	pairs := []Pair{{1, 2}, {3, 4}, {5, 6}}
	p := AppendBatchReq(nil, 777, pairs)
	dl, got, err := ParseBatchReq(p, nil)
	if err != nil || dl != 777 {
		t.Fatalf("batch req: deadline %d, err %v", dl, err)
	}
	if len(got) != len(pairs) {
		t.Fatalf("batch req: %d pairs, want %d", len(got), len(pairs))
	}
	for i := range pairs {
		if got[i] != pairs[i] {
			t.Fatalf("pair %d: got %+v, want %+v", i, got[i], pairs[i])
		}
	}

	routes := []RouteInfo{{Outcome: 0, Cond: 1, Hamming: 2, Hops: 2}, {Outcome: 2, Cond: 0, Hamming: 5, Hops: 0}}
	rp := AppendBatchResp(nil, 9, routes)
	gen, rgot, err := ParseBatchResp(rp, nil)
	if err != nil || gen != 9 {
		t.Fatalf("batch resp: gen %d, err %v", gen, err)
	}
	if len(rgot) != len(routes) || rgot[0] != routes[0] || rgot[1] != routes[1] {
		t.Fatalf("batch resp: got %+v, want %+v", rgot, routes)
	}
}

func TestBatchLengthMismatch(t *testing.T) {
	p := AppendBatchReq(nil, 0, []Pair{{1, 2}, {3, 4}})
	// Inflate the declared count beyond the bytes present: malformed,
	// not a short read into garbage.
	p[4] = 200
	if _, _, err := ParseBatchReq(p, nil); !errors.Is(err, ErrShort) {
		t.Fatalf("inflated count: got %v, want ErrShort", err)
	}
	rp := AppendBatchResp(nil, 1, []RouteInfo{{}})
	rp = rp[:len(rp)-1]
	if _, _, err := ParseBatchResp(rp, nil); !errors.Is(err, ErrShort) {
		t.Fatalf("truncated resp: got %v, want ErrShort", err)
	}
}

func TestErrorRoundTrip(t *testing.T) {
	p := AppendError(nil, CodeOverload, "shed")
	code, msg, err := ParseError(p)
	if err != nil || code != CodeOverload || msg != "shed" {
		t.Fatalf("error frame: code %d, msg %q, err %v", code, msg, err)
	}
	if !errors.Is(code.Err(), ErrOverload) {
		t.Fatalf("CodeOverload.Err() = %v, want ErrOverload", code.Err())
	}
	// Oversize detail is truncated at encode, never rejected.
	long := AppendError(nil, CodeInternal, strings.Repeat("x", 1<<13))
	if _, msg, err := ParseError(long); err != nil || len(msg) != 1<<12 {
		t.Fatalf("long detail: len %d, err %v", len(msg), err)
	}
}

func TestOpString(t *testing.T) {
	want := map[Op]string{
		OpPing:        "ping",
		OpUnicast:     "unicast",
		OpBatch:       "batch",
		OpFeasibility: "feasibility",
		OpFaultDelta:  "fault-delta",
		OpError:       "error",
		Op(77):        "op(77)",
	}
	for op, s := range want {
		if got := op.String(); got != s {
			t.Errorf("Op(%d).String() = %q, want %q", uint8(op), got, s)
		}
	}
}

// Every fixed-size parser refuses a payload one byte short of its
// minimum with ErrShort — no partial decode, no panic.
func TestParsersRejectShortPayloads(t *testing.T) {
	short := make([]byte, 1)
	checks := map[string]error{}
	_, err := ParseUnicastReq(short)
	checks["unicast req"] = err
	_, err = ParseUnicastResp(short)
	checks["unicast resp"] = err
	_, _, err = ParseBatchReq(short, nil)
	checks["batch req"] = err
	_, _, err = ParseBatchResp(short, nil)
	checks["batch resp"] = err
	_, err = ParseFeasReq(short)
	checks["feas req"] = err
	_, err = ParseFeasResp(short)
	checks["feas resp"] = err
	_, err = ParseFaultReq(short)
	checks["fault req"] = err
	_, err = ParseFaultResp(short)
	checks["fault resp"] = err
	_, err = ParsePingResp(short)
	checks["ping resp"] = err
	_, _, err = ParseError(short)
	checks["error"] = err
	for name, err := range checks {
		if !errors.Is(err, ErrShort) {
			t.Errorf("%s: got %v, want ErrShort", name, err)
		}
	}
}

func TestErrCodeMapping(t *testing.T) {
	want := map[ErrCode]error{
		CodeBadRequest: ErrBadRequest,
		CodeOverload:   ErrOverload,
		CodeBacklog:    ErrBacklog,
		CodeDraining:   ErrDraining,
		CodeDeadline:   ErrDeadline,
		CodeCanceled:   ErrCanceled,
		CodeVersion:    ErrVersion,
		CodeTooLarge:   ErrTooLarge,
		CodeUnknownOp:  ErrUnknownOp,
		CodeInternal:   ErrInternal,
		ErrCode(999):   ErrInternal,
	}
	for code, sentinel := range want {
		if !errors.Is(code.Err(), sentinel) {
			t.Errorf("code %d: got %v, want %v", code, code.Err(), sentinel)
		}
	}
}

func TestReadFrame(t *testing.T) {
	frame := AppendFrame(nil, OpUnicast, 0, 42, AppendUnicastReq(nil, UnicastReq{Src: 1, Dst: 2}))
	h, payload, buf, err := ReadFrame(bytes.NewReader(frame), nil, 0)
	if err != nil {
		t.Fatalf("ReadFrame: %v", err)
	}
	if h.Op != OpUnicast || h.ReqID != 42 || int(h.Len) != len(payload) {
		t.Fatalf("header %+v, payload %d bytes", h, len(payload))
	}
	m, err := ParseUnicastReq(payload)
	if err != nil || m.Src != 1 || m.Dst != 2 {
		t.Fatalf("payload: %+v, %v", m, err)
	}
	// The returned backing buffer is reusable for the next call.
	if _, _, _, err := ReadFrame(bytes.NewReader(frame), buf, 0); err != nil {
		t.Fatalf("reuse: %v", err)
	}
}

func TestReadFrameOversizeRejectedBeforeAlloc(t *testing.T) {
	var hb [HeaderSize]byte
	PutHeader(hb[:], Header{Major: Major, Minor: Minor, Op: OpBatch, ReqID: 1, Len: 1 << 30})
	// Only the header is present; if ReadFrame tried to allocate or read
	// the advertised gigabyte it would block or blow up — it must refuse
	// on the declared length alone. Measure bytes, not objects: a
	// payload-sized buffer is one object but 2^30 bytes.
	r := bytes.NewReader(hb[:])
	runtime.GC()
	var before, after runtime.MemStats
	runtime.ReadMemStats(&before)
	for i := 0; i < 100; i++ {
		r.Reset(hb[:])
		_, _, _, err := ReadFrame(r, nil, 1<<16)
		if !errors.Is(err, ErrTooLarge) {
			t.Fatalf("oversize: got %v, want ErrTooLarge", err)
		}
	}
	runtime.ReadMemStats(&after)
	if delta := after.TotalAlloc - before.TotalAlloc; delta > 1<<20 {
		t.Fatalf("oversize reject allocated %d bytes over 100 calls", delta)
	}
}

func TestReadFrameTruncated(t *testing.T) {
	frame := AppendFrame(nil, OpPing, 0, 7, nil)
	if _, _, _, err := ReadFrame(bytes.NewReader(frame[:HeaderSize-3]), nil, 0); err == nil {
		t.Fatal("truncated header: want error")
	}
	full := AppendFrame(nil, OpUnicast, 0, 7, AppendUnicastReq(nil, UnicastReq{}))
	if _, _, _, err := ReadFrame(bytes.NewReader(full[:len(full)-2]), nil, 0); !errors.Is(err, io.ErrUnexpectedEOF) {
		t.Fatalf("truncated payload: got %v, want ErrUnexpectedEOF", err)
	}
}

func TestBufPool(t *testing.T) {
	b := GetBuf()
	if len(b) != 0 {
		t.Fatalf("GetBuf length %d, want 0", len(b))
	}
	b = AppendFrame(b, OpPing, 0, 1, nil)
	PutBuf(b)
	PutBuf(nil) // zero-cap buffers are dropped, not pooled
}

// TestWireCodecZeroAlloc is the hot-path contract: once the buffer pool
// is warm, encoding and decoding a frame allocates nothing.
func TestWireCodecZeroAlloc(t *testing.T) {
	if raceEnabled {
		t.Skip("race instrumentation makes sync.Pool drop puts; alloc counts are meaningless")
	}
	// Warm the pool.
	PutBuf(AppendFrame(GetBuf(), OpUnicast, 0, 1, nil))

	encAllocs := testing.AllocsPerRun(1000, func() {
		b := GetBuf()
		b = AppendUnicastReq(b, UnicastReq{Src: 3, Dst: 5, DeadlineUS: 100})
		f := GetBuf()
		f = AppendFrame(f, OpUnicast, 0, 9, b)
		PutBuf(f)
		PutBuf(b)
	})
	if encAllocs != 0 {
		t.Errorf("encode: %v allocs/op, want 0", encAllocs)
	}

	frame := AppendFrame(nil, OpUnicast, 0, 42, AppendUnicastReq(nil, UnicastReq{Src: 1, Dst: 2}))
	decAllocs := testing.AllocsPerRun(1000, func() {
		h, err := ParseHeader(frame)
		if err != nil {
			t.Fatal(err)
		}
		if _, err := ParseUnicastReq(frame[HeaderSize : HeaderSize+int(h.Len)]); err != nil {
			t.Fatal(err)
		}
	})
	if decAllocs != 0 {
		t.Errorf("decode: %v allocs/op, want 0", decAllocs)
	}

	pairs := []Pair{{1, 2}, {3, 4}, {5, 6}, {7, 8}}
	breq := AppendBatchReq(nil, 0, pairs)
	scratch := make([]Pair, 0, 8)
	batchAllocs := testing.AllocsPerRun(1000, func() {
		_, out, err := ParseBatchReq(breq, scratch)
		if err != nil || len(out) != 4 {
			t.Fatal(err)
		}
	})
	if batchAllocs != 0 {
		t.Errorf("batch decode: %v allocs/op, want 0", batchAllocs)
	}
}

// BenchmarkWireEncode measures building one complete OpUnicast request
// frame with pooled buffers; the bench gate holds it at 0 allocs/op.
func BenchmarkWireEncode(b *testing.B) {
	PutBuf(AppendFrame(GetBuf(), OpUnicast, 0, 1, nil))
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		p := GetBuf()
		p = AppendUnicastReq(p, UnicastReq{Src: 3, Dst: 250, DeadlineUS: 1500})
		f := GetBuf()
		f = AppendFrame(f, OpUnicast, 0, uint64(i), p)
		PutBuf(f)
		PutBuf(p)
	}
}

// BenchmarkWireDecode measures header + payload decode of an OpUnicast
// frame read from a stream; the bench gate holds it at 0 allocs/op.
func BenchmarkWireDecode(b *testing.B) {
	frame := AppendFrame(nil, OpUnicast, 0, 42, AppendUnicastReq(nil, UnicastReq{Src: 1, Dst: 2, DeadlineUS: 50}))
	r := bytes.NewReader(frame)
	buf := make([]byte, 0, 64)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		r.Reset(frame)
		h, payload, nbuf, err := ReadFrame(r, buf, 0)
		if err != nil {
			b.Fatal(err)
		}
		buf = nbuf
		if _, err := ParseUnicastReq(payload); err != nil || h.ReqID != 42 {
			b.Fatal(err)
		}
	}
}

// BenchmarkWireEncodeBatch measures a 64-pair batch request frame.
func BenchmarkWireEncodeBatch(b *testing.B) {
	pairs := make([]Pair, 64)
	for i := range pairs {
		pairs[i] = Pair{Src: uint32(i), Dst: uint32(255 - i)}
	}
	pbuf := make([]byte, 0, 1024)
	fbuf := make([]byte, 0, 1024)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		p := AppendBatchReq(pbuf[:0], 0, pairs)
		_ = AppendFrame(fbuf[:0], OpBatch, 0, uint64(i), p)
	}
}
