package wire

import (
	"bufio"
	"bytes"
	"encoding/hex"
	"flag"
	"fmt"
	"os"
	"sort"
	"strings"
	"testing"
)

var updateGolden = flag.Bool("update", false, "rewrite testdata/golden_frames.txt from the current encoder")

// goldenFrames are the pinned v1 byte vectors: one fully-framed message
// per wire shape. TestGoldenFrames fails if the encoding of any of them
// drifts — byte layout is the protocol contract; changing it is a major
// version bump, not a refactor.
func goldenFrames() map[string][]byte {
	return map[string][]byte{
		"ping_req": AppendFrame(nil, OpPing, 0, 1, nil),
		"ping_resp": AppendFrame(nil, OpPing, FlagResponse, 1,
			AppendPingResp(nil, PingResp{Major: 1, Minor: 0})),
		"unicast_req": AppendFrame(nil, OpUnicast, 0, 0x0102030405060708,
			AppendUnicastReq(nil, UnicastReq{Src: 5, Dst: 250, DeadlineUS: 1500})),
		"unicast_resp": AppendFrame(nil, OpUnicast, FlagResponse, 0x0102030405060708,
			AppendUnicastResp(nil, UnicastResp{
				Gen: 7, FlightID: 99,
				Route: RouteInfo{Outcome: 1, Cond: 2, Hamming: 3, Hops: 5},
			})),
		"batch_req": AppendFrame(nil, OpBatch, 0, 2,
			AppendBatchReq(nil, 2000, []Pair{{1, 2}, {3, 4}})),
		"batch_resp": AppendFrame(nil, OpBatch, FlagResponse, 2,
			AppendBatchResp(nil, 11, []RouteInfo{
				{Outcome: 0, Cond: 1, Hamming: 2, Hops: 2},
				{Outcome: 2, Cond: 0, Hamming: 4, Hops: 0},
			})),
		"feasibility_req": AppendFrame(nil, OpFeasibility, 0, 3,
			AppendFeasReq(nil, FeasReq{Src: 9, Dst: 12})),
		"feasibility_resp": AppendFrame(nil, OpFeasibility, FlagResponse, 3,
			AppendFeasResp(nil, FeasResp{Cond: 3, Outcome: 0})),
		"fault_req": AppendFrame(nil, OpFaultDelta, 0, 4,
			AppendFaultReq(nil, FaultReq{Kind: 1, A: 42, B: 0})),
		"fault_resp": AppendFrame(nil, OpFaultDelta, FlagResponse, 4,
			AppendFaultResp(nil, FaultResp{Gen: 8, QueueDepth: 3})),
		"error_overload": AppendFrame(nil, OpError, FlagResponse, 5,
			AppendError(nil, CodeOverload, "shed")),
		"error_version": AppendFrame(nil, OpError, FlagResponse, 6,
			AppendError(nil, CodeVersion, "server speaks 1.0")),
	}
}

const goldenPath = "testdata/golden_frames.txt"

func TestGoldenFrames(t *testing.T) {
	frames := goldenFrames()

	if *updateGolden {
		var sb strings.Builder
		sb.WriteString("# Pinned v1 wire frames: <name> <hex>. Regenerate with\n")
		sb.WriteString("#   go test ./internal/wire -run TestGoldenFrames -update\n")
		sb.WriteString("# but only alongside a protocol version bump.\n")
		names := make([]string, 0, len(frames))
		for name := range frames {
			names = append(names, name)
		}
		sort.Strings(names)
		for _, name := range names {
			fmt.Fprintf(&sb, "%s %s\n", name, hex.EncodeToString(frames[name]))
		}
		if err := os.WriteFile(goldenPath, []byte(sb.String()), 0o644); err != nil {
			t.Fatal(err)
		}
	}

	f, err := os.Open(goldenPath)
	if err != nil {
		t.Fatalf("golden vectors missing (run with -update to create): %v", err)
	}
	defer f.Close()

	seen := map[string]bool{}
	sc := bufio.NewScanner(f)
	for sc.Scan() {
		line := strings.TrimSpace(sc.Text())
		if line == "" || strings.HasPrefix(line, "#") {
			continue
		}
		name, hx, ok := strings.Cut(line, " ")
		if !ok {
			t.Fatalf("bad golden line %q", line)
		}
		want, err := hex.DecodeString(hx)
		if err != nil {
			t.Fatalf("golden %s: bad hex: %v", name, err)
		}
		got, present := frames[name]
		if !present {
			t.Errorf("golden %s: no encoder in goldenFrames()", name)
			continue
		}
		seen[name] = true
		if !bytes.Equal(got, want) {
			t.Errorf("golden %s drifted:\n got  %x\n want %x\n(the v1 byte layout is pinned; a relayout is a major version bump)",
				name, got, want)
		}
		// Every pinned frame must also parse back through the public
		// decoders — the file is a decode corpus too.
		h, err := ParseHeader(want)
		if err != nil {
			t.Errorf("golden %s: ParseHeader: %v", name, err)
			continue
		}
		if int(h.Len) != len(want)-HeaderSize {
			t.Errorf("golden %s: header len %d, payload %d", name, h.Len, len(want)-HeaderSize)
		}
	}
	if err := sc.Err(); err != nil {
		t.Fatal(err)
	}
	for name := range frames {
		if !seen[name] {
			t.Errorf("frame %s missing from %s (run with -update)", name, goldenPath)
		}
	}
}

// TestGoldenHeaderLayout pins the exact header byte offsets of v1
// independent of the golden file, so a PutHeader refactor cannot move
// fields even if the file is regenerated in the same commit.
func TestGoldenHeaderLayout(t *testing.T) {
	var b [HeaderSize]byte
	PutHeader(b[:], Header{
		Major: 1, Minor: 2, Op: OpBatch, Flags: FlagResponse,
		ReqID: 0x1122334455667788, Len: 0xAABBCCDD,
	})
	want := []byte{
		0x53, 0x4C, 0x57, 0x31, // "SLW1"
		0x01,                                           // major
		0x02,                                           // minor
		0x03,                                           // opcode (batch)
		0x01,                                           // flags (response)
		0x88, 0x77, 0x66, 0x55, 0x44, 0x33, 0x22, 0x11, // request ID LE
		0xDD, 0xCC, 0xBB, 0xAA, // payload length LE
	}
	if !bytes.Equal(b[:], want) {
		t.Fatalf("header layout drifted:\n got  %x\n want %x", b, want)
	}
}
