package wire

import (
	"bufio"
	"context"
	"fmt"
	"net"
	"sync"
	"time"
)

// Client is a pooled, pipelining wire-protocol client. Each pooled
// connection multiplexes many in-flight requests: senders stamp a
// per-connection request ID, register a waiter, and write the frame;
// one reader goroutine per connection demultiplexes responses back to
// their waiters by that ID. Requests therefore pipeline on one TCP
// stream without head-of-line blocking inside the client, and the pool
// spreads load over Conns streams. All methods are safe for concurrent
// use.
type Client struct {
	addr string
	opts ClientOptions

	mu    sync.Mutex
	conns []*clientConn
	next  uint64
	done  bool
}

// ClientOptions tune a Client. The zero value dials one connection
// with the default payload limit.
type ClientOptions struct {
	// Conns is the connection-pool size (<= 0 means 1).
	Conns int
	// MaxPayload bounds accepted response payloads (<= 0 means
	// DefaultMaxPayload).
	MaxPayload int
	// DialTimeout bounds each dial (<= 0 means 5s).
	DialTimeout time.Duration
}

// Dial connects a client pool to a wire server. The first connection
// is established eagerly so configuration errors surface here; the
// rest are dialed on demand.
func Dial(addr string, opts ClientOptions) (*Client, error) {
	if opts.Conns <= 0 {
		opts.Conns = 1
	}
	if opts.MaxPayload <= 0 {
		opts.MaxPayload = DefaultMaxPayload
	}
	if opts.DialTimeout <= 0 {
		opts.DialTimeout = 5 * time.Second
	}
	c := &Client{addr: addr, opts: opts, conns: make([]*clientConn, opts.Conns)}
	cc, err := c.dial()
	if err != nil {
		return nil, err
	}
	c.conns[0] = cc
	return c, nil
}

// Close tears down every pooled connection. In-flight requests fail
// with ErrClosed.
func (c *Client) Close() error {
	c.mu.Lock()
	c.done = true
	conns := append([]*clientConn(nil), c.conns...)
	c.mu.Unlock()
	for _, cc := range conns {
		if cc != nil {
			cc.close(ErrClosed)
		}
	}
	return nil
}

func (c *Client) dial() (*clientConn, error) {
	nc, err := net.DialTimeout("tcp", c.addr, c.opts.DialTimeout)
	if err != nil {
		return nil, err
	}
	if tc, ok := nc.(*net.TCPConn); ok {
		// Frames are already flushed whole; Nagle would only add delay
		// under the pipelined small-frame workload.
		_ = tc.SetNoDelay(true)
	}
	cc := &clientConn{
		nc:         nc,
		bw:         bufio.NewWriterSize(nc, 16<<10),
		pending:    make(map[uint64]chan respFrame),
		maxPayload: c.opts.MaxPayload,
	}
	go cc.readLoop()
	return cc, nil
}

// conn picks the next pool slot round-robin, redialing slots whose
// connection died (lazy reconnect keeps one flaky drop from poisoning
// the pool for the rest of a run).
func (c *Client) conn() (*clientConn, error) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.done {
		return nil, ErrClosed
	}
	i := int(c.next % uint64(len(c.conns)))
	c.next++
	cc := c.conns[i]
	if cc != nil && !cc.dead() {
		return cc, nil
	}
	cc, err := c.dial()
	if err != nil {
		return nil, err
	}
	c.conns[i] = cc
	return cc, nil
}

// respFrame is one demultiplexed response: the parsed header and the
// payload, copied into a pooled buffer owned by the waiter.
type respFrame struct {
	hdr Header
	p   []byte
}

// clientConn is one pooled stream.
type clientConn struct {
	nc net.Conn

	wmu sync.Mutex // serializes frame writes and flushes
	bw  *bufio.Writer

	pmu     sync.Mutex
	pending map[uint64]chan respFrame
	nextID  uint64
	err     error // set once the read loop exits; conn is dead

	maxPayload int
}

func (cc *clientConn) dead() bool {
	cc.pmu.Lock()
	defer cc.pmu.Unlock()
	return cc.err != nil
}

// close fails every pending waiter and tears down the stream.
func (cc *clientConn) close(err error) {
	cc.pmu.Lock()
	if cc.err == nil {
		cc.err = err
	}
	waiters := cc.pending
	cc.pending = map[uint64]chan respFrame{}
	cc.pmu.Unlock()
	_ = cc.nc.Close()
	for _, ch := range waiters {
		close(ch)
	}
}

// readLoop demultiplexes response frames to their waiters until the
// stream breaks.
func (cc *clientConn) readLoop() {
	var buf []byte
	for {
		hdr, payload, nbuf, err := ReadFrame(cc.nc, buf, cc.maxPayload)
		buf = nbuf
		if err != nil {
			cc.close(fmt.Errorf("%w: %v", ErrClosed, err))
			return
		}
		cc.pmu.Lock()
		ch, ok := cc.pending[hdr.ReqID]
		delete(cc.pending, hdr.ReqID)
		cc.pmu.Unlock()
		if !ok {
			// Waiter gave up (deadline) — drop the late answer.
			continue
		}
		p := append(GetBuf(), payload...)
		ch <- respFrame{hdr: hdr, p: p}
	}
}

// call sends one request frame and waits for its response. payload is
// the encoded request body; the returned respFrame's buffer must be
// released with PutBuf by the caller.
func (cc *clientConn) call(ctx context.Context, op Op, payload []byte) (respFrame, error) {
	cc.pmu.Lock()
	if cc.err != nil {
		err := cc.err
		cc.pmu.Unlock()
		return respFrame{}, err
	}
	cc.nextID++
	id := cc.nextID
	ch := make(chan respFrame, 1)
	cc.pending[id] = ch
	cc.pmu.Unlock()

	frame := AppendFrame(GetBuf(), op, 0, id, payload)
	cc.wmu.Lock()
	_, werr := cc.bw.Write(frame)
	if werr == nil {
		werr = cc.bw.Flush()
	}
	cc.wmu.Unlock()
	PutBuf(frame)
	if werr != nil {
		cc.forget(id)
		cc.close(fmt.Errorf("%w: %v", ErrClosed, werr))
		return respFrame{}, werr
	}

	select {
	case rf, ok := <-ch:
		if !ok {
			cc.pmu.Lock()
			err := cc.err
			cc.pmu.Unlock()
			if err == nil {
				err = ErrClosed
			}
			return respFrame{}, err
		}
		return rf, nil
	case <-ctx.Done():
		cc.forget(id)
		return respFrame{}, ctx.Err()
	}
}

// forget abandons a pending waiter (deadline expiry, write failure).
// A response that raced the removal is drained and recycled.
func (cc *clientConn) forget(id uint64) {
	cc.pmu.Lock()
	ch, ok := cc.pending[id]
	delete(cc.pending, id)
	cc.pmu.Unlock()
	if ok {
		select {
		case rf, live := <-ch:
			if live {
				PutBuf(rf.p)
			}
		default:
		}
	}
}

// result decodes the common response-frame prologue: an OpError frame
// becomes its typed error, a mismatched opcode is a protocol error.
func checkResp(rf respFrame, want Op) error {
	if rf.hdr.Op == OpError {
		code, msg, err := ParseError(rf.p)
		if err != nil {
			return err
		}
		if msg != "" {
			return fmt.Errorf("%w: %s", code.Err(), msg)
		}
		return code.Err()
	}
	if rf.hdr.Op != want {
		return fmt.Errorf("wire: response opcode %v, want %v", rf.hdr.Op, want)
	}
	return nil
}

// deadlineUS converts a context deadline into the on-wire microsecond
// budget (0 = none, clamped to at least 1 once a deadline exists).
func deadlineUS(ctx context.Context) uint32 {
	dl, ok := ctx.Deadline()
	if !ok {
		return 0
	}
	us := time.Until(dl).Microseconds()
	if us < 1 {
		us = 1
	}
	if us > 1<<31 {
		us = 1 << 31
	}
	return uint32(us)
}

// Ping round-trips a liveness frame and returns the server's protocol
// version. A server that refuses this client's version surfaces as
// ErrVersion here — the recommended post-dial handshake.
func (c *Client) Ping(ctx context.Context) (PingResp, error) {
	cc, err := c.conn()
	if err != nil {
		return PingResp{}, err
	}
	rf, err := cc.call(ctx, OpPing, nil)
	if err != nil {
		return PingResp{}, err
	}
	defer PutBuf(rf.p)
	if err := checkResp(rf, OpPing); err != nil {
		return PingResp{}, err
	}
	return ParsePingResp(rf.p)
}

// Unicast routes one pair.
func (c *Client) Unicast(ctx context.Context, src, dst uint32) (UnicastResp, error) {
	cc, err := c.conn()
	if err != nil {
		return UnicastResp{}, err
	}
	var pb [unicastReqSize]byte
	payload := AppendUnicastReq(pb[:0], UnicastReq{Src: src, Dst: dst, DeadlineUS: deadlineUS(ctx)})
	rf, err := cc.call(ctx, OpUnicast, payload)
	if err != nil {
		return UnicastResp{}, err
	}
	defer PutBuf(rf.p)
	if err := checkResp(rf, OpUnicast); err != nil {
		return UnicastResp{}, err
	}
	return ParseUnicastResp(rf.p)
}

// Batch routes many pairs against one snapshot; routes is filled into
// the caller's slice (reused when capacity allows) in request order.
func (c *Client) Batch(ctx context.Context, pairs []Pair, routes []RouteInfo) (gen uint64, out []RouteInfo, err error) {
	cc, err := c.conn()
	if err != nil {
		return 0, routes, err
	}
	payload := AppendBatchReq(GetBuf(), deadlineUS(ctx), pairs)
	rf, err := cc.call(ctx, OpBatch, payload)
	PutBuf(payload)
	if err != nil {
		return 0, routes, err
	}
	defer PutBuf(rf.p)
	if err := checkResp(rf, OpBatch); err != nil {
		return 0, routes, err
	}
	return ParseBatchResp(rf.p, routes)
}

// Feasibility evaluates the admission test on one pair.
func (c *Client) Feasibility(ctx context.Context, src, dst uint32) (FeasResp, error) {
	cc, err := c.conn()
	if err != nil {
		return FeasResp{}, err
	}
	var pb [feasReqSize]byte
	payload := AppendFeasReq(pb[:0], FeasReq{Src: src, Dst: dst})
	rf, err := cc.call(ctx, OpFeasibility, payload)
	if err != nil {
		return FeasResp{}, err
	}
	defer PutBuf(rf.p)
	if err := checkResp(rf, OpFeasibility); err != nil {
		return FeasResp{}, err
	}
	return ParseFeasResp(rf.p)
}

// Fault enqueues one churn event (kind uses the fault journal's
// DeltaKind encoding). A full apply queue surfaces as ErrBacklog.
func (c *Client) Fault(ctx context.Context, req FaultReq) (FaultResp, error) {
	cc, err := c.conn()
	if err != nil {
		return FaultResp{}, err
	}
	var pb [faultReqSize]byte
	payload := AppendFaultReq(pb[:0], req)
	rf, err := cc.call(ctx, OpFaultDelta, payload)
	if err != nil {
		return FaultResp{}, err
	}
	defer PutBuf(rf.p)
	if err := checkResp(rf, OpFaultDelta); err != nil {
		return FaultResp{}, err
	}
	return ParseFaultResp(rf.p)
}
