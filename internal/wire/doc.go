// Package wire is the binary serving protocol: a length-prefixed,
// little-endian framing with a fixed 20-byte header (magic, protocol
// version, request ID, opcode, payload length) and flat fixed-layout
// payloads for the five serving operations — Unicast, BatchUnicast,
// Feasibility, FaultDelta and Ping — plus a typed error frame that
// carries the server's refusal taxonomy (overload, backlog, draining,
// deadline, version) to the client without string parsing.
//
// The codec is allocation-free on the hot path by construction: every
// encoder appends into a caller-supplied buffer (recycled through
// GetBuf/PutBuf), every decoder reads fixed offsets out of the raw
// payload with no reflection and no intermediate structs behind
// interfaces, and batch decoders fill caller-owned slices. ReadFrame
// rejects oversized payload lengths *before* allocating, so a hostile
// header cannot balloon memory (FuzzWireDecode pins this).
//
// The v1 byte layout is pinned by golden frame vectors in
// testdata/golden_frames.txt; any change to the encoding must bump the
// protocol version instead of silently shifting bytes. Requests carry
// the client's version pair; a server that cannot serve that version
// answers with an Error frame coded CodeVersion, which clients surface
// as ErrVersion (the clean-degrade path the compat tests exercise).
//
// The serving loop that speaks this protocol lives in internal/serve
// (WireServer); the pooled, pipelining client with BatchUnicast
// coalescing is Client/Coalescer in this package. See
// docs/OPERATIONS.md for the frame diagrams and the operator cookbook.
package wire
