package wire

import (
	"encoding/binary"
	"fmt"
)

// Payload layouts, all little-endian with fixed offsets. Appenders
// extend a caller buffer; parsers read in place and fill caller-owned
// slices, so neither direction allocates on the hot path.

// Pair is one src→dst unicast query of a batch.
type Pair struct {
	Src, Dst uint32
}

// RouteInfo is the compact per-route result: enough for a load
// generator or forwarding client to classify the answer without the
// path bytes (outcome and condition use the engine's own encodings).
type RouteInfo struct {
	Outcome uint8
	Cond    uint8
	Hamming uint16
	Hops    uint16
}

const (
	unicastReqSize  = 12
	unicastRespSize = 24
	feasReqSize     = 8
	feasRespSize    = 2
	faultReqSize    = 12
	faultRespSize   = 12
	pingRespSize    = 2
	pairSize        = 8
	routeInfoSize   = 6
	batchReqMin     = 8
	batchRespMin    = 12
	errRespMin      = 4
)

// UnicastReq asks for one route. DeadlineUS is the remaining deadline
// budget in microseconds at send time (0 = no deadline); the server
// re-arms it as a context timeout so budgets survive the hop.
type UnicastReq struct {
	Src, Dst   uint32
	DeadlineUS uint32
}

// AppendUnicastReq appends the OpUnicast request payload.
func AppendUnicastReq(b []byte, m UnicastReq) []byte {
	var p [unicastReqSize]byte
	binary.LittleEndian.PutUint32(p[0:], m.Src)
	binary.LittleEndian.PutUint32(p[4:], m.Dst)
	binary.LittleEndian.PutUint32(p[8:], m.DeadlineUS)
	return append(b, p[:]...)
}

// ParseUnicastReq decodes an OpUnicast request payload.
func ParseUnicastReq(p []byte) (UnicastReq, error) {
	if len(p) < unicastReqSize {
		return UnicastReq{}, fmt.Errorf("%w: unicast request %d < %d bytes", ErrShort, len(p), unicastReqSize)
	}
	return UnicastReq{
		Src:        binary.LittleEndian.Uint32(p[0:]),
		Dst:        binary.LittleEndian.Uint32(p[4:]),
		DeadlineUS: binary.LittleEndian.Uint32(p[8:]),
	}, nil
}

// UnicastResp answers one route. Gen is the snapshot generation the
// route was computed against; FlightID is the flight-recorder request
// ID, the causal join key into /debug/flight and histogram exemplars.
type UnicastResp struct {
	Gen      uint64
	FlightID uint64
	Route    RouteInfo
}

// AppendUnicastResp appends the OpUnicast response payload.
func AppendUnicastResp(b []byte, m UnicastResp) []byte {
	var p [unicastRespSize]byte
	binary.LittleEndian.PutUint64(p[0:], m.Gen)
	binary.LittleEndian.PutUint64(p[8:], m.FlightID)
	putRouteInfo(p[16:], m.Route)
	// Two trailing pad bytes keep the payload 8-byte aligned for v1.x
	// extensions; they must be zero.
	return append(b, p[:]...)
}

// ParseUnicastResp decodes an OpUnicast response payload.
func ParseUnicastResp(p []byte) (UnicastResp, error) {
	if len(p) < unicastRespSize {
		return UnicastResp{}, fmt.Errorf("%w: unicast response %d < %d bytes", ErrShort, len(p), unicastRespSize)
	}
	return UnicastResp{
		Gen:      binary.LittleEndian.Uint64(p[0:]),
		FlightID: binary.LittleEndian.Uint64(p[8:]),
		Route:    routeInfoAt(p[16:]),
	}, nil
}

func putRouteInfo(p []byte, r RouteInfo) {
	p[0] = r.Outcome
	p[1] = r.Cond
	binary.LittleEndian.PutUint16(p[2:], r.Hamming)
	binary.LittleEndian.PutUint16(p[4:], r.Hops)
}

func routeInfoAt(p []byte) RouteInfo {
	return RouteInfo{
		Outcome: p[0],
		Cond:    p[1],
		Hamming: binary.LittleEndian.Uint16(p[2:]),
		Hops:    binary.LittleEndian.Uint16(p[4:]),
	}
}

// AppendBatchReq appends the OpBatch request payload: the shared
// deadline budget, the pair count, then the pairs.
func AppendBatchReq(b []byte, deadlineUS uint32, pairs []Pair) []byte {
	var hd [batchReqMin]byte
	binary.LittleEndian.PutUint32(hd[0:], deadlineUS)
	binary.LittleEndian.PutUint32(hd[4:], uint32(len(pairs)))
	b = append(b, hd[:]...)
	for _, q := range pairs {
		var p [pairSize]byte
		binary.LittleEndian.PutUint32(p[0:], q.Src)
		binary.LittleEndian.PutUint32(p[4:], q.Dst)
		b = append(b, p[:]...)
	}
	return b
}

// ParseBatchReq decodes an OpBatch request into the caller's pairs
// slice (reused when capacity allows). The declared count must match
// the payload length exactly — a count that promises more pairs than
// the payload carries is malformed, never a short read.
func ParseBatchReq(p []byte, pairs []Pair) (deadlineUS uint32, out []Pair, err error) {
	if len(p) < batchReqMin {
		return 0, pairs, fmt.Errorf("%w: batch request %d < %d bytes", ErrShort, len(p), batchReqMin)
	}
	deadlineUS = binary.LittleEndian.Uint32(p[0:])
	n := int(binary.LittleEndian.Uint32(p[4:]))
	if want := batchReqMin + n*pairSize; len(p) != want {
		return 0, pairs, fmt.Errorf("%w: batch request declares %d pairs (%d bytes), has %d", ErrShort, n, want, len(p))
	}
	out = pairs[:0]
	for i := 0; i < n; i++ {
		off := batchReqMin + i*pairSize
		out = append(out, Pair{
			Src: binary.LittleEndian.Uint32(p[off:]),
			Dst: binary.LittleEndian.Uint32(p[off+4:]),
		})
	}
	return deadlineUS, out, nil
}

// AppendBatchResp appends the OpBatch response payload: snapshot
// generation, route count, then the compact per-route records in
// request order.
func AppendBatchResp(b []byte, gen uint64, routes []RouteInfo) []byte {
	var hd [batchRespMin]byte
	binary.LittleEndian.PutUint64(hd[0:], gen)
	binary.LittleEndian.PutUint32(hd[8:], uint32(len(routes)))
	b = append(b, hd[:]...)
	for _, r := range routes {
		var p [routeInfoSize]byte
		putRouteInfo(p[:], r)
		b = append(b, p[:]...)
	}
	return b
}

// ParseBatchResp decodes an OpBatch response into the caller's routes
// slice (reused when capacity allows).
func ParseBatchResp(p []byte, routes []RouteInfo) (gen uint64, out []RouteInfo, err error) {
	if len(p) < batchRespMin {
		return 0, routes, fmt.Errorf("%w: batch response %d < %d bytes", ErrShort, len(p), batchRespMin)
	}
	gen = binary.LittleEndian.Uint64(p[0:])
	n := int(binary.LittleEndian.Uint32(p[8:]))
	if want := batchRespMin + n*routeInfoSize; len(p) != want {
		return 0, routes, fmt.Errorf("%w: batch response declares %d routes (%d bytes), has %d", ErrShort, n, want, len(p))
	}
	out = routes[:0]
	for i := 0; i < n; i++ {
		out = append(out, routeInfoAt(p[batchRespMin+i*routeInfoSize:]))
	}
	return gen, out, nil
}

// FeasReq asks for the admission test on one pair.
type FeasReq struct {
	Src, Dst uint32
}

// AppendFeasReq appends the OpFeasibility request payload.
func AppendFeasReq(b []byte, m FeasReq) []byte {
	var p [feasReqSize]byte
	binary.LittleEndian.PutUint32(p[0:], m.Src)
	binary.LittleEndian.PutUint32(p[4:], m.Dst)
	return append(b, p[:]...)
}

// ParseFeasReq decodes an OpFeasibility request payload.
func ParseFeasReq(p []byte) (FeasReq, error) {
	if len(p) < feasReqSize {
		return FeasReq{}, fmt.Errorf("%w: feasibility request %d < %d bytes", ErrShort, len(p), feasReqSize)
	}
	return FeasReq{
		Src: binary.LittleEndian.Uint32(p[0:]),
		Dst: binary.LittleEndian.Uint32(p[4:]),
	}, nil
}

// FeasResp answers the admission test (engine Condition/Outcome
// encodings).
type FeasResp struct {
	Cond    uint8
	Outcome uint8
}

// AppendFeasResp appends the OpFeasibility response payload.
func AppendFeasResp(b []byte, m FeasResp) []byte {
	return append(b, m.Cond, m.Outcome)
}

// ParseFeasResp decodes an OpFeasibility response payload.
func ParseFeasResp(p []byte) (FeasResp, error) {
	if len(p) < feasRespSize {
		return FeasResp{}, fmt.Errorf("%w: feasibility response %d < %d bytes", ErrShort, len(p), feasRespSize)
	}
	return FeasResp{Cond: p[0], Outcome: p[1]}, nil
}

// FaultReq enqueues one churn event. Kind uses the fault journal's
// DeltaKind encoding (fail-node, recover-node, fail-link,
// recover-link); B is ignored for node events.
type FaultReq struct {
	Kind uint8
	A, B uint32
}

// AppendFaultReq appends the OpFaultDelta request payload.
func AppendFaultReq(b []byte, m FaultReq) []byte {
	var p [faultReqSize]byte
	p[0] = m.Kind
	binary.LittleEndian.PutUint32(p[4:], m.A)
	binary.LittleEndian.PutUint32(p[8:], m.B)
	return append(b, p[:]...)
}

// ParseFaultReq decodes an OpFaultDelta request payload.
func ParseFaultReq(p []byte) (FaultReq, error) {
	if len(p) < faultReqSize {
		return FaultReq{}, fmt.Errorf("%w: fault request %d < %d bytes", ErrShort, len(p), faultReqSize)
	}
	return FaultReq{
		Kind: p[0],
		A:    binary.LittleEndian.Uint32(p[4:]),
		B:    binary.LittleEndian.Uint32(p[8:]),
	}, nil
}

// FaultResp acknowledges an accepted churn event: the generation at
// acceptance time (churn applies asynchronously; the published
// generation advances on swap) and the apply-queue depth.
type FaultResp struct {
	Gen        uint64
	QueueDepth uint32
}

// AppendFaultResp appends the OpFaultDelta response payload.
func AppendFaultResp(b []byte, m FaultResp) []byte {
	var p [faultRespSize]byte
	binary.LittleEndian.PutUint64(p[0:], m.Gen)
	binary.LittleEndian.PutUint32(p[8:], m.QueueDepth)
	return append(b, p[:]...)
}

// ParseFaultResp decodes an OpFaultDelta response payload.
func ParseFaultResp(p []byte) (FaultResp, error) {
	if len(p) < faultRespSize {
		return FaultResp{}, fmt.Errorf("%w: fault response %d < %d bytes", ErrShort, len(p), faultRespSize)
	}
	return FaultResp{
		Gen:        binary.LittleEndian.Uint64(p[0:]),
		QueueDepth: binary.LittleEndian.Uint32(p[8:]),
	}, nil
}

// PingResp carries the server's protocol version — the handshake a
// client uses to discover what it is talking to. The request payload
// is empty.
type PingResp struct {
	Major, Minor uint8
}

// AppendPingResp appends the OpPing response payload.
func AppendPingResp(b []byte, m PingResp) []byte {
	return append(b, m.Major, m.Minor)
}

// ParsePingResp decodes an OpPing response payload.
func ParsePingResp(p []byte) (PingResp, error) {
	if len(p) < pingRespSize {
		return PingResp{}, fmt.Errorf("%w: ping response %d < %d bytes", ErrShort, len(p), pingRespSize)
	}
	return PingResp{Major: p[0], Minor: p[1]}, nil
}

// AppendError appends the OpError response payload: the typed code,
// then an optional human-readable detail string (bounded; the code
// alone decides client behavior).
func AppendError(b []byte, code ErrCode, msg string) []byte {
	if len(msg) > 1<<12 {
		msg = msg[:1<<12]
	}
	var p [errRespMin]byte
	binary.LittleEndian.PutUint16(p[0:], uint16(code))
	binary.LittleEndian.PutUint16(p[2:], uint16(len(msg)))
	b = append(b, p[:]...)
	return append(b, msg...)
}

// ParseError decodes an OpError response payload.
func ParseError(p []byte) (ErrCode, string, error) {
	if len(p) < errRespMin {
		return 0, "", fmt.Errorf("%w: error frame %d < %d bytes", ErrShort, len(p), errRespMin)
	}
	code := ErrCode(binary.LittleEndian.Uint16(p[0:]))
	n := int(binary.LittleEndian.Uint16(p[2:]))
	if len(p) != errRespMin+n {
		return 0, "", fmt.Errorf("%w: error frame declares %d detail bytes, has %d", ErrShort, n, len(p)-errRespMin)
	}
	return code, string(p[errRespMin:]), nil
}
