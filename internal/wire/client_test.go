package wire

import (
	"context"
	"errors"
	"net"
	"sync"
	"sync/atomic"
	"testing"
	"time"
)

// fakeServer is a minimal hand-rolled wire peer for client unit tests:
// it reads frames off every accepted connection and answers each via
// the handler — out of order when the handler says so, with error
// frames, or not at all. The real server lives in internal/serve; this
// one exists so the client's demultiplexer is tested against behaviors
// a correct server never exhibits.
type fakeServer struct {
	ln     net.Listener
	wg     sync.WaitGroup
	handle func(h Header, payload []byte) (Op, []byte) // nil reply = drop
}

func newFakeServer(t *testing.T, handle func(h Header, payload []byte) (Op, []byte)) *fakeServer {
	t.Helper()
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	fs := &fakeServer{ln: ln, handle: handle}
	fs.wg.Add(1)
	go fs.acceptLoop()
	t.Cleanup(fs.close)
	return fs
}

func (fs *fakeServer) close() {
	_ = fs.ln.Close()
	fs.wg.Wait()
}

func (fs *fakeServer) acceptLoop() {
	defer fs.wg.Done()
	for {
		nc, err := fs.ln.Accept()
		if err != nil {
			return
		}
		fs.wg.Add(1)
		go func() {
			defer fs.wg.Done()
			defer nc.Close()
			var buf []byte
			var wmu sync.Mutex
			for {
				h, payload, nbuf, err := ReadFrame(nc, buf, 0)
				buf = nbuf
				if err != nil {
					return
				}
				// Handle each frame concurrently so client pipelining is
				// observable at the handler (and answers can reorder).
				p := append([]byte(nil), payload...)
				fs.wg.Add(1)
				go func() {
					defer fs.wg.Done()
					op, resp := fs.handle(h, p)
					if resp == nil && op == 0 {
						return // drop: simulate a lost answer
					}
					frame := AppendFrame(nil, op, FlagResponse, h.ReqID, resp)
					wmu.Lock()
					_, _ = nc.Write(frame)
					wmu.Unlock()
				}()
			}
		}()
	}
}

// echoRouter answers every opcode with a well-formed response.
func echoRouter(h Header, payload []byte) (Op, []byte) {
	switch h.Op {
	case OpPing:
		return OpPing, AppendPingResp(nil, PingResp{Major: Major, Minor: Minor})
	case OpUnicast:
		m, err := ParseUnicastReq(payload)
		if err != nil {
			return OpError, AppendError(nil, CodeBadRequest, err.Error())
		}
		return OpUnicast, AppendUnicastResp(nil, UnicastResp{
			Gen: 1, FlightID: h.ReqID,
			Route: RouteInfo{Outcome: 0, Hamming: uint16(m.Src ^ m.Dst), Hops: uint16(m.Src ^ m.Dst)},
		})
	case OpBatch:
		_, pairs, err := ParseBatchReq(payload, nil)
		if err != nil {
			return OpError, AppendError(nil, CodeBadRequest, err.Error())
		}
		routes := make([]RouteInfo, len(pairs))
		for i, p := range pairs {
			routes[i] = RouteInfo{Hamming: uint16(p.Src ^ p.Dst)}
		}
		return OpBatch, AppendBatchResp(nil, 1, routes)
	case OpFeasibility:
		return OpFeasibility, AppendFeasResp(nil, FeasResp{Cond: 1})
	case OpFaultDelta:
		return OpFaultDelta, AppendFaultResp(nil, FaultResp{Gen: 2, QueueDepth: 1})
	default:
		return OpError, AppendError(nil, CodeUnknownOp, "")
	}
}

func TestClientRoundTrips(t *testing.T) {
	fs := newFakeServer(t, echoRouter)
	c, err := Dial(fs.ln.Addr().String(), ClientOptions{Conns: 2})
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	ctx := context.Background()

	pr, err := c.Ping(ctx)
	if err != nil || pr.Major != Major {
		t.Fatalf("ping: %+v, %v", pr, err)
	}
	ur, err := c.Unicast(ctx, 3, 5)
	if err != nil || ur.Route.Hamming != 6 {
		t.Fatalf("unicast: %+v, %v", ur, err)
	}
	gen, routes, err := c.Batch(ctx, []Pair{{1, 2}, {4, 4}}, nil)
	if err != nil || gen != 1 || len(routes) != 2 || routes[0].Hamming != 3 || routes[1].Hamming != 0 {
		t.Fatalf("batch: gen %d, %+v, %v", gen, routes, err)
	}
	fr, err := c.Feasibility(ctx, 0, 1)
	if err != nil || fr.Cond != 1 {
		t.Fatalf("feasibility: %+v, %v", fr, err)
	}
	dr, err := c.Fault(ctx, FaultReq{Kind: 1, A: 9})
	if err != nil || dr.Gen != 2 {
		t.Fatalf("fault: %+v, %v", dr, err)
	}
}

func TestClientPipelinesConcurrentRequests(t *testing.T) {
	var inflight, peak atomic.Int64
	fs := newFakeServer(t, func(h Header, payload []byte) (Op, []byte) {
		cur := inflight.Add(1)
		for {
			p := peak.Load()
			if cur <= p || peak.CompareAndSwap(p, cur) {
				break
			}
		}
		time.Sleep(2 * time.Millisecond) // hold so requests overlap
		inflight.Add(-1)
		return echoRouter(h, payload)
	})
	c, err := Dial(fs.ln.Addr().String(), ClientOptions{Conns: 1})
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()

	const n = 16
	var wg sync.WaitGroup
	errs := make([]error, n)
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			_, errs[i] = c.Unicast(context.Background(), uint32(i), uint32(i+1))
		}(i)
	}
	wg.Wait()
	for i, err := range errs {
		if err != nil {
			t.Fatalf("request %d: %v", i, err)
		}
	}
	if peak.Load() < 2 {
		t.Fatalf("peak in-flight %d on one connection; requests did not pipeline", peak.Load())
	}
}

func TestClientTypedErrorFrames(t *testing.T) {
	fs := newFakeServer(t, func(h Header, payload []byte) (Op, []byte) {
		return OpError, AppendError(nil, CodeOverload, "shed by admission")
	})
	c, err := Dial(fs.ln.Addr().String(), ClientOptions{})
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	_, err = c.Unicast(context.Background(), 1, 2)
	if !errors.Is(err, ErrOverload) {
		t.Fatalf("got %v, want ErrOverload", err)
	}
}

func TestClientVersionRefusal(t *testing.T) {
	// A server from the future refuses v1 frames with CodeVersion; the
	// client must degrade to the typed sentinel, not a stream error.
	fs := newFakeServer(t, func(h Header, payload []byte) (Op, []byte) {
		return OpError, AppendError(nil, CodeVersion, "server speaks 2.0")
	})
	c, err := Dial(fs.ln.Addr().String(), ClientOptions{})
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	if _, err := c.Ping(context.Background()); !errors.Is(err, ErrVersion) {
		t.Fatalf("got %v, want ErrVersion", err)
	}
	// The connection survives the refusal: a second call still errors
	// cleanly rather than hitting a torn stream.
	if _, err := c.Unicast(context.Background(), 0, 1); !errors.Is(err, ErrVersion) {
		t.Fatalf("second call: got %v, want ErrVersion", err)
	}
}

func TestClientDeadline(t *testing.T) {
	release := make(chan struct{})
	fs := newFakeServer(t, func(h Header, payload []byte) (Op, []byte) {
		<-release
		return echoRouter(h, payload)
	})
	c, err := Dial(fs.ln.Addr().String(), ClientOptions{})
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	ctx, cancel := context.WithTimeout(context.Background(), 20*time.Millisecond)
	defer cancel()
	if _, err := c.Unicast(ctx, 1, 2); !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("got %v, want DeadlineExceeded", err)
	}
	close(release)
	// The late answer is dropped by the demux; a fresh request works.
	if _, err := c.Unicast(context.Background(), 1, 2); err != nil {
		t.Fatalf("post-deadline request: %v", err)
	}
}

func TestClientClosed(t *testing.T) {
	fs := newFakeServer(t, echoRouter)
	c, err := Dial(fs.ln.Addr().String(), ClientOptions{})
	if err != nil {
		t.Fatal(err)
	}
	c.Close()
	if _, err := c.Ping(context.Background()); !errors.Is(err, ErrClosed) {
		t.Fatalf("got %v, want ErrClosed", err)
	}
}

func TestClientRedialsDeadConn(t *testing.T) {
	fs := newFakeServer(t, echoRouter)
	c, err := Dial(fs.ln.Addr().String(), ClientOptions{Conns: 1})
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	if _, err := c.Ping(context.Background()); err != nil {
		t.Fatal(err)
	}
	// Kill the live conn server-side; the pool must lazily redial.
	c.mu.Lock()
	cc := c.conns[0]
	c.mu.Unlock()
	cc.close(ErrClosed)
	deadline := time.Now().Add(2 * time.Second)
	for {
		if _, err := c.Ping(context.Background()); err == nil {
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("client never recovered after connection drop")
		}
		time.Sleep(10 * time.Millisecond)
	}
}

func TestCoalescerMergesCalls(t *testing.T) {
	var batchFrames, batchedPairs atomic.Int64
	fs := newFakeServer(t, func(h Header, payload []byte) (Op, []byte) {
		if h.Op == OpBatch {
			batchFrames.Add(1)
			_, pairs, _ := ParseBatchReq(payload, nil)
			batchedPairs.Add(int64(len(pairs)))
		}
		return echoRouter(h, payload)
	})
	c, err := Dial(fs.ln.Addr().String(), ClientOptions{})
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	co := NewCoalescer(c, CoalescerOptions{MaxBatch: 8, MaxDelay: 5 * time.Millisecond})
	defer co.Close()

	const n = 32
	var wg sync.WaitGroup
	var bad atomic.Int64
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			info, gen, err := co.Unicast(context.Background(), uint32(i), uint32(i^1))
			if err != nil || gen != 1 || info.Hamming != 1 {
				bad.Add(1)
			}
		}(i)
	}
	wg.Wait()
	if bad.Load() != 0 {
		t.Fatalf("%d coalesced calls returned wrong results", bad.Load())
	}
	if got := batchedPairs.Load(); got != n {
		t.Fatalf("server saw %d pairs, want %d", got, n)
	}
	if frames := batchFrames.Load(); frames >= n {
		t.Fatalf("%d batch frames for %d calls; nothing coalesced", frames, n)
	}
}

func TestCoalescerClose(t *testing.T) {
	fs := newFakeServer(t, echoRouter)
	c, err := Dial(fs.ln.Addr().String(), ClientOptions{})
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	co := NewCoalescer(c, CoalescerOptions{MaxBatch: 64, MaxDelay: time.Hour})
	done := make(chan error, 1)
	go func() {
		_, _, err := co.Unicast(context.Background(), 1, 2)
		done <- err
	}()
	// Wait until the pair is enqueued, then Close must flush it.
	deadline := time.Now().Add(2 * time.Second)
	for {
		co.mu.Lock()
		queued := len(co.pairs)
		co.mu.Unlock()
		if queued > 0 || time.Now().After(deadline) {
			break
		}
		time.Sleep(time.Millisecond)
	}
	co.Close()
	if err := <-done; err != nil {
		t.Fatalf("pending call after Close: %v", err)
	}
	if _, _, err := co.Unicast(context.Background(), 3, 4); !errors.Is(err, ErrClosed) {
		t.Fatalf("post-Close call: got %v, want ErrClosed", err)
	}
}
