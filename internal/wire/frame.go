package wire

import (
	"encoding/binary"
	"errors"
	"fmt"
	"io"
	"sync"
)

// Protocol constants. The header is fixed-size little-endian so both
// sides parse it with direct loads — no varints, no reflection.
const (
	// Magic opens every frame: "SLW1" little-endian.
	Magic uint32 = 0x31574C53
	// Major/Minor is the protocol version this package speaks. Minor
	// bumps add fields or opcodes without moving existing bytes; major
	// bumps may relayout. A server refuses versions it cannot serve
	// with an Error frame coded CodeVersion.
	Major uint8 = 1
	Minor uint8 = 0
	// HeaderSize is the fixed frame-header length in bytes.
	HeaderSize = 20
	// DefaultMaxPayload bounds the payload length a reader will accept
	// before allocating (1 MiB holds a 65k-pair batch with room).
	DefaultMaxPayload = 1 << 20
)

// Op identifies the operation a frame carries.
type Op uint8

const (
	// OpPing is the liveness and version handshake; its response
	// carries the server's protocol version.
	OpPing Op = 1
	// OpUnicast is a single route query.
	OpUnicast Op = 2
	// OpBatch is a pipelined batch of route queries answered against
	// one snapshot.
	OpBatch Op = 3
	// OpFeasibility is the source-side admission test without routing.
	OpFeasibility Op = 4
	// OpFaultDelta enqueues one churn event (fail/recover node/link).
	OpFaultDelta Op = 5
	// OpError is a response-only frame carrying a typed refusal.
	OpError Op = 6
)

// String names an opcode for diagnostics.
func (o Op) String() string {
	switch o {
	case OpPing:
		return "ping"
	case OpUnicast:
		return "unicast"
	case OpBatch:
		return "batch"
	case OpFeasibility:
		return "feasibility"
	case OpFaultDelta:
		return "fault-delta"
	case OpError:
		return "error"
	default:
		return fmt.Sprintf("op(%d)", uint8(o))
	}
}

// Flags qualify a frame.
type Flags uint8

// FlagResponse marks server→client frames; requests leave it clear.
const FlagResponse Flags = 1 << 0

// Header is the parsed fixed frame header.
//
//	offset size field
//	0      4    magic "SLW1"
//	4      1    major version
//	5      1    minor version
//	6      1    opcode
//	7      1    flags (bit0: response)
//	8      8    request ID
//	16     4    payload length
type Header struct {
	Major uint8
	Minor uint8
	Op    Op
	Flags Flags
	ReqID uint64
	Len   uint32
}

// Framing errors. ErrVersion is the typed clean-degrade signal a v1
// client receives from a server that no longer (or does not yet)
// serves its version.
var (
	ErrMagic    = errors.New("wire: bad frame magic")
	ErrVersion  = errors.New("wire: unsupported protocol version")
	ErrTooLarge = errors.New("wire: payload length exceeds limit")
	ErrShort    = errors.New("wire: short payload")
	ErrClosed   = errors.New("wire: connection closed")
)

// Typed server refusals, decoded from Error frames. They mirror the
// serving engine's taxonomy one-to-one so a wire client classifies
// outcomes exactly like an in-process caller (loadgen.Classify).
var (
	ErrOverload   = errors.New("wire: overloaded, request shed")
	ErrBacklog    = errors.New("wire: churn queue full")
	ErrDraining   = errors.New("wire: server draining")
	ErrDeadline   = errors.New("wire: deadline exceeded")
	ErrCanceled   = errors.New("wire: request canceled")
	ErrBadRequest = errors.New("wire: bad request")
	ErrUnknownOp  = errors.New("wire: unknown opcode")
	ErrInternal   = errors.New("wire: internal server error")
)

// ErrCode is the numeric refusal taxonomy carried by Error frames.
type ErrCode uint16

const (
	// CodeBadRequest: the payload failed validation (node out of range,
	// malformed batch, short payload).
	CodeBadRequest ErrCode = 1
	// CodeOverload: shed by GCRA admission control (HTTP 429).
	CodeOverload ErrCode = 2
	// CodeBacklog: churn refused by a full apply queue (writer-side
	// backpressure).
	CodeBacklog ErrCode = 3
	// CodeDraining: the server is shutting down (HTTP 503).
	CodeDraining ErrCode = 4
	// CodeDeadline: the request's deadline budget expired (HTTP 504).
	CodeDeadline ErrCode = 5
	// CodeCanceled: the request context was canceled (HTTP 499).
	CodeCanceled ErrCode = 6
	// CodeVersion: the server does not serve the client's protocol
	// version; the message carries the server's own version.
	CodeVersion ErrCode = 7
	// CodeTooLarge: the request payload exceeded the server's limit.
	CodeTooLarge ErrCode = 8
	// CodeUnknownOp: the opcode is not served at this version.
	CodeUnknownOp ErrCode = 9
	// CodeInternal: anything else.
	CodeInternal ErrCode = 10
)

// Err maps a code to its typed sentinel, so errors.Is works across the
// wire exactly like in process.
func (c ErrCode) Err() error {
	switch c {
	case CodeBadRequest:
		return ErrBadRequest
	case CodeOverload:
		return ErrOverload
	case CodeBacklog:
		return ErrBacklog
	case CodeDraining:
		return ErrDraining
	case CodeDeadline:
		return ErrDeadline
	case CodeCanceled:
		return ErrCanceled
	case CodeVersion:
		return ErrVersion
	case CodeTooLarge:
		return ErrTooLarge
	case CodeUnknownOp:
		return ErrUnknownOp
	default:
		return ErrInternal
	}
}

// PutHeader writes h into b[:HeaderSize]. b must hold HeaderSize bytes.
func PutHeader(b []byte, h Header) {
	binary.LittleEndian.PutUint32(b[0:], Magic)
	b[4] = h.Major
	b[5] = h.Minor
	b[6] = uint8(h.Op)
	b[7] = uint8(h.Flags)
	binary.LittleEndian.PutUint64(b[8:], h.ReqID)
	binary.LittleEndian.PutUint32(b[16:], h.Len)
}

// ParseHeader decodes b[:HeaderSize], checking only the magic — version
// acceptance is the caller's policy (servers refuse with CodeVersion,
// clients with ErrVersion), so a parse failure always means the stream
// is not speaking this protocol at all.
func ParseHeader(b []byte) (Header, error) {
	if len(b) < HeaderSize {
		return Header{}, ErrShort
	}
	if binary.LittleEndian.Uint32(b[0:]) != Magic {
		return Header{}, ErrMagic
	}
	return Header{
		Major: b[4],
		Minor: b[5],
		Op:    Op(b[6]),
		Flags: Flags(b[7]),
		ReqID: binary.LittleEndian.Uint64(b[8:]),
		Len:   binary.LittleEndian.Uint32(b[16:]),
	}, nil
}

// bufPool recycles frame buffers across requests; boxPool recycles the
// *[]byte header boxes bufPool entries are carried in, so a warm
// Get/Put cycle allocates nothing at all — not even the 24-byte slice
// header a naive `bufPool.Put(&b)` would heap-allocate per call.
var (
	bufPool sync.Pool // *[]byte with live backing arrays
	boxPool sync.Pool // *[]byte boxes whose slice is nil
)

// GetBuf returns a pooled frame buffer with length 0.
func GetBuf() []byte {
	bp, _ := bufPool.Get().(*[]byte)
	if bp == nil {
		return make([]byte, 0, 512)
	}
	b := (*bp)[:0]
	*bp = nil
	boxPool.Put(bp)
	return b
}

// PutBuf recycles a buffer obtained from GetBuf (or grown from one).
func PutBuf(b []byte) {
	if cap(b) == 0 {
		return
	}
	bp, _ := boxPool.Get().(*[]byte)
	if bp == nil {
		bp = new([]byte)
	}
	*bp = b[:0]
	bufPool.Put(bp)
}

// AppendFrame appends a complete frame — header stamped with this
// package's version and the payload's length, then the payload — to b
// and returns the extended slice. This is the single encode entry both
// sides use; payload is built by the message appenders in messages.go.
func AppendFrame(b []byte, op Op, flags Flags, reqID uint64, payload []byte) []byte {
	var hdr [HeaderSize]byte
	PutHeader(hdr[:], Header{
		Major: Major, Minor: Minor,
		Op: op, Flags: flags, ReqID: reqID,
		Len: uint32(len(payload)),
	})
	b = append(b, hdr[:]...)
	return append(b, payload...)
}

// ReadFrame reads one frame from r: the fixed header, then exactly
// Len payload bytes into buf (grown if needed, reused otherwise). It
// refuses a payload length beyond maxPayload BEFORE reading or
// allocating anything for it — the defense FuzzWireDecode pins. The
// returned slice aliases buf; the second return is the (possibly
// grown) backing buffer to keep for the next call.
func ReadFrame(r io.Reader, buf []byte, maxPayload int) (Header, []byte, []byte, error) {
	if maxPayload <= 0 {
		maxPayload = DefaultMaxPayload
	}
	// The header is read into the reusable buffer (not a local array,
	// which would escape through the io.Reader interface and cost one
	// heap allocation per frame); the payload then overwrites it.
	if cap(buf) < HeaderSize {
		buf = make([]byte, 0, 512)
	}
	if _, err := io.ReadFull(r, buf[:HeaderSize]); err != nil {
		return Header{}, nil, buf, err
	}
	h, err := ParseHeader(buf[:HeaderSize])
	if err != nil {
		return Header{}, nil, buf, err
	}
	if int64(h.Len) > int64(maxPayload) {
		return h, nil, buf, fmt.Errorf("%w: %d > %d", ErrTooLarge, h.Len, maxPayload)
	}
	n := int(h.Len)
	if cap(buf) < n {
		buf = make([]byte, n)
	}
	buf = buf[:cap(buf)]
	if _, err := io.ReadFull(r, buf[:n]); err != nil {
		if err == io.EOF {
			err = io.ErrUnexpectedEOF
		}
		return h, nil, buf, err
	}
	return h, buf[:n], buf, nil
}
