package expt

import (
	"repro/internal/faults"
	"repro/internal/simnet"
	"repro/internal/stats"
	"repro/internal/topo"
)

// Traffic (E14) runs concurrent unicast batches through the
// goroutine-per-node engine under two classic traffic patterns —
// random permutation and all-to-one hotspot — and measures delivery,
// hop cost, and the congestion hotspot (the largest number of messages
// any single node had to forward).
func Traffic(cfg Config) *Table {
	cfg = cfg.withDefaults(25)
	const n = 6
	c := topo.MustCube(n)
	t := &Table{
		ID:    "E14",
		Title: "Concurrent traffic on the distributed engine (6-cube)",
		Header: []string{"faults", "pattern", "messages", "delivered %", "avg hops",
			"max node transit"},
	}
	rng := stats.NewRNG(cfg.Seed + 17)
	for _, f := range []int{0, n - 1, 2 * n} {
		for _, pattern := range []string{"permutation", "hotspot"} {
			var delivered, total int
			var hops, transit stats.Accumulator
			for trial := 0; trial < cfg.Trials; trial++ {
				s := faults.NewSet(c)
				if err := faults.InjectUniform(s, rng, f); err != nil {
					panic(err)
				}
				e := simnet.New(s)
				e.RunGS(0)
				pairs := buildPattern(c, s, rng, pattern, e.MaxBatch())
				st, err := e.UnicastBatch(pairs)
				if err != nil {
					panic(err)
				}
				total += len(pairs)
				delivered += st.Delivered
				if st.Delivered > 0 {
					hops.Add(float64(st.TotalHops) / float64(st.Delivered))
				}
				transit.Add(float64(st.MaxTransit))
				e.Close()
			}
			t.AddRow(f, pattern, total, pct(delivered, total), hops.Mean(), transit.Mean())
		}
	}
	t.Note("permutation: each healthy node sends to a random healthy partner (capped by MaxBatch);")
	t.Note("hotspot: every healthy node sends to one healthy sink — its transit equals deliveries")
	return t
}

// buildPattern constructs the request list for one trial.
func buildPattern(c *topo.Cube, s *faults.Set, rng *stats.RNG, pattern string, cap int) []simnet.Pair {
	var healthy []topo.NodeID
	for a := 0; a < c.Nodes(); a++ {
		if !s.NodeFaulty(topo.NodeID(a)) {
			healthy = append(healthy, topo.NodeID(a))
		}
	}
	var pairs []simnet.Pair
	switch pattern {
	case "hotspot":
		sink := healthy[rng.Intn(len(healthy))]
		for _, a := range healthy {
			if a == sink || len(pairs) >= cap {
				continue
			}
			pairs = append(pairs, simnet.Pair{Src: a, Dst: sink})
		}
	default: // permutation
		perm := rng.Perm(len(healthy))
		for i, a := range healthy {
			b := healthy[perm[i]]
			if a == b || len(pairs) >= cap {
				continue
			}
			pairs = append(pairs, simnet.Pair{Src: a, Dst: b})
		}
	}
	return pairs
}
