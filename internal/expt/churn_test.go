package expt

import "testing"

// TestChurnRepairTable smoke-tests E16 at a reduced step count: the
// harness inside already convicts any repaired-vs-cold divergence, so
// the test only checks the table shape and that repair never does more
// work than cold recomputation.
func TestChurnRepairTable(t *testing.T) {
	tab := ChurnRepair(Config{Trials: 30})
	if tab.ID != "E16" {
		t.Fatalf("ID = %q", tab.ID)
	}
	if len(tab.Rows) != 8 {
		t.Fatalf("rows = %d, want 8 (4 shapes x links on/off)", len(tab.Rows))
	}
	for _, row := range tab.Rows {
		if len(row) != len(tab.Header) {
			t.Fatalf("row %v has %d cells, header has %d", row, len(row), len(tab.Header))
		}
	}
}
