package expt

import (
	"repro/internal/broadcast"
	"repro/internal/core"
	"repro/internal/faults"
	"repro/internal/stats"
	"repro/internal/topo"
)

// BroadcastSweep (E13) measures the safety-level broadcast extension
// (reference [9]'s application, reconstructed): coverage, tree traffic
// and latency versus fault load, split by source class (safe vs.
// unsafe+repair), on 7-cubes.
func BroadcastSweep(cfg Config) *Table {
	cfg = cfg.withDefaults(300)
	const n = 7
	c := topo.MustCube(n)
	t := &Table{
		ID:    "E13",
		Title: "Safety-level broadcast (7-cube): coverage and traffic vs. faults",
		Header: []string{"faults", "source class", "runs", "tree-covered %", "final-covered %",
			"avg tree msgs", "avg repair msgs", "avg rounds"},
	}
	rng := stats.NewRNG(cfg.Seed + 16)
	for _, f := range []int{0, 3, 6, 12, 20} {
		type agg struct {
			runs, treeCov, finalCov  int
			msgs, repairMsgs, rounds stats.Accumulator
		}
		var safeAgg, unsafeAgg agg
		for trial := 0; trial < cfg.Trials; trial++ {
			s := faults.NewSet(c)
			if err := faults.InjectUniform(s, rng, f); err != nil {
				panic(err)
			}
			as := core.Compute(s, core.Options{})
			b := broadcast.New(as, true)
			src := topo.NodeID(rng.Intn(c.Nodes()))
			if s.NodeFaulty(src) {
				continue
			}
			res := b.Broadcast(src)
			a := &unsafeAgg
			if as.Safe(src) {
				a = &safeAgg
			}
			a.runs++
			if len(res.Missed) == 0 {
				a.treeCov++
			}
			if res.Covered() {
				a.finalCov++
			}
			a.msgs.Add(float64(res.Messages))
			a.repairMsgs.Add(float64(res.RepairMessages))
			a.rounds.Add(float64(res.Rounds))
		}
		for _, row := range []struct {
			label string
			a     *agg
		}{{"safe", &safeAgg}, {"unsafe", &unsafeAgg}} {
			if row.a.runs == 0 {
				t.AddRow(f, row.label, 0, "-", "-", "-", "-", "-")
				continue
			}
			t.AddRow(f, row.label, row.a.runs,
				pct(row.a.treeCov, row.a.runs), pct(row.a.finalCov, row.a.runs),
				row.a.msgs.Mean(), row.a.repairMsgs.Mean(), row.a.rounds.Mean())
		}
	}
	t.Note("tree-covered %% is the level-ranked binomial tree alone; final adds unicast repair")
	t.Note("a fault-free broadcast is the perfect binomial tree: N-1 messages, depth n")
	return t
}
