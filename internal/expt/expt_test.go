package expt

import (
	"bytes"
	"encoding/json"
	"strconv"
	"strings"
	"testing"
)

var quick = Config{Seed: 42, Trials: 40}

func renderToString(t *testing.T, tab *Table) string {
	t.Helper()
	var buf bytes.Buffer
	tab.Render(&buf)
	out := buf.String()
	if !strings.Contains(out, tab.ID) || !strings.Contains(out, tab.Title) {
		t.Errorf("render missing ID/title:\n%s", out)
	}
	return out
}

func cell(t *testing.T, tab *Table, row, col int) string {
	t.Helper()
	if row >= len(tab.Rows) || col >= len(tab.Rows[row]) {
		t.Fatalf("table %s has no cell (%d, %d)", tab.ID, row, col)
	}
	return tab.Rows[row][col]
}

func cellFloat(t *testing.T, tab *Table, row, col int) float64 {
	t.Helper()
	v, err := strconv.ParseFloat(cell(t, tab, row, col), 64)
	if err != nil {
		t.Fatalf("table %s cell (%d,%d) = %q not a float", tab.ID, row, col, cell(t, tab, row, col))
	}
	return v
}

func TestTableRenderAndCSV(t *testing.T) {
	tab := &Table{ID: "X", Title: "demo", Header: []string{"a", "b"}}
	tab.AddRow(1, 2.50)
	tab.AddRow("x,y", "quo\"te")
	tab.Note("hello %d", 7)
	out := renderToString(t, tab)
	if !strings.Contains(out, "hello 7") {
		t.Error("note missing")
	}
	if !strings.Contains(out, "2.5") || strings.Contains(out, "2.500") {
		t.Error("float trimming wrong")
	}
	var csv bytes.Buffer
	tab.CSV(&csv)
	if !strings.Contains(csv.String(), "\"x,y\"") || !strings.Contains(csv.String(), "\"quo\"\"te\"") {
		t.Errorf("CSV quoting wrong: %s", csv.String())
	}
}

func TestFig1Table(t *testing.T) {
	tab := Fig1()
	if len(tab.Rows) != 16 {
		t.Fatalf("Fig1 rows = %d, want 16", len(tab.Rows))
	}
	out := renderToString(t, tab)
	for _, want := range []string{
		"1110 -> 1111 -> 1101 -> 0101 -> 0001",
		"0001 -> 0000 -> 1000 -> 1100",
		"stabilized after 2 rounds",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("Fig1 output missing %q", want)
		}
	}
}

func TestTable1(t *testing.T) {
	tab := Table1()
	if len(tab.Rows) != 3 {
		t.Fatalf("rows = %d", len(tab.Rows))
	}
	if got := cell(t, tab, 0, 2); got != "9" {
		t.Errorf("safety-level count = %s, want 9", got)
	}
	if got := cell(t, tab, 1, 2); got != "9" {
		t.Errorf("WF count = %s, want 9 (literal Definition 3)", got)
	}
	if got := cell(t, tab, 2, 2); got != "0" {
		t.Errorf("LH count = %s, want 0", got)
	}
}

func TestFig2ShapeAndClaim(t *testing.T) {
	tab := Fig2(Config{Seed: 42, Trials: 120})
	if len(tab.Rows) != 17 {
		t.Fatalf("rows = %d, want 17 (faults 0..32 step 2)", len(tab.Rows))
	}
	// Paper claim: below n = 7 faults the average is under 2 rounds.
	for _, row := range tab.Rows {
		f, _ := strconv.Atoi(row[0])
		avg, _ := strconv.ParseFloat(row[1], 64)
		if f < 7 && avg >= 2 {
			t.Errorf("faults=%d: avg rounds %f >= 2, contradicts paper claim", f, avg)
		}
		max, _ := strconv.Atoi(row[3])
		if max > 6 {
			t.Errorf("faults=%d: max rounds %d > n-1", f, max)
		}
	}
	// Monotone-ish growth: the last point should need more rounds than
	// the first nonzero point.
	first := cellFloat(t, tab, 1, 1)
	last := cellFloat(t, tab, len(tab.Rows)-1, 1)
	if last <= first {
		t.Errorf("rounds should grow with faults: first %f, last %f", first, last)
	}
}

func TestFig3Table(t *testing.T) {
	tab := Fig3()
	out := renderToString(t, tab)
	for _, want := range []string{"optimal", "failure", "aborted", "Lee-Hayes safe set size: 0"} {
		if !strings.Contains(out, want) {
			t.Errorf("Fig3 output missing %q", want)
		}
	}
	// Row 0: 0101 -> 0000 optimal C1; row 2 and 3 failures.
	if cell(t, tab, 0, 5) != "optimal" || cell(t, tab, 0, 4) != "C1" {
		t.Error("0101 -> 0000 should be C1/optimal")
	}
	if cell(t, tab, 1, 5) != "optimal" || cell(t, tab, 1, 4) != "C2" {
		t.Error("0111 -> 1011 should be C2/optimal")
	}
	if cell(t, tab, 2, 5) != "failure" || cell(t, tab, 3, 5) != "failure" {
		t.Error("cross-partition unicasts should fail")
	}
}

func TestFig4Table(t *testing.T) {
	tab := Fig4()
	out := renderToString(t, tab)
	if !strings.Contains(out, "1101 -> 1111 -> 1011 -> 1010 -> 1000") {
		t.Error("Fig4 route missing")
	}
	// N2 rows: 1000 public 0 own 1; 1001 public 0 own 2.
	foundN2 := 0
	for _, row := range tab.Rows {
		if row[3] == "N2" {
			foundN2++
			switch row[0] {
			case "1000":
				if row[1] != "0" || row[2] != "1" {
					t.Errorf("1000 levels = %s/%s, want 0/1", row[1], row[2])
				}
			case "1001":
				if row[1] != "0" || row[2] != "2" {
					t.Errorf("1001 levels = %s/%s, want 0/2", row[1], row[2])
				}
			}
		}
	}
	if foundN2 != 2 {
		t.Errorf("N2 nodes = %d, want 2", foundN2)
	}
}

func TestFig5Table(t *testing.T) {
	tab := Fig5()
	out := renderToString(t, tab)
	if !strings.Contains(out, "010 -> 000 -> 001 -> 101") {
		t.Error("Fig5 route missing")
	}
	if !strings.Contains(out, "safe nodes: 4") {
		t.Error("Fig5 safe count missing")
	}
	if len(tab.Rows) != 12 {
		t.Errorf("rows = %d, want 12", len(tab.Rows))
	}
}

func TestSafeSetSizesInclusion(t *testing.T) {
	tab := SafeSetSizes(quick)
	for i, row := range tab.Rows {
		sl, _ := strconv.ParseFloat(row[1], 64)
		wf, _ := strconv.ParseFloat(row[2], 64)
		lh, _ := strconv.ParseFloat(row[3], 64)
		if lh > wf+1e-9 || wf > sl+1e-9 {
			t.Errorf("row %d: inclusion chain violated: LH %f WF %f SL %f", i, lh, wf, sl)
		}
		if row[4] != "0" {
			t.Errorf("row %d: %s inclusion violations", i, row[4])
		}
	}
	// At zero faults everything is safe.
	if got := cellFloat(t, tab, 0, 1); got != 128 {
		t.Errorf("fault-free SL safe = %f, want 128", got)
	}
}

func TestRoundsComparisonTable(t *testing.T) {
	tab := RoundsComparison(Config{Seed: 42, Trials: 30})
	if len(tab.Rows) != 16 {
		t.Fatalf("rows = %d", len(tab.Rows))
	}
	for i, row := range tab.Rows {
		n, _ := strconv.Atoi(row[0])
		gsMax, _ := strconv.Atoi(row[3])
		if gsMax > n-1 {
			t.Errorf("row %d: GS max %d exceeds n-1", i, gsMax)
		}
	}
}

func TestGuaranteeNoFailuresBelowN(t *testing.T) {
	tab, results := Guarantee(quick)
	if len(results) == 0 {
		t.Fatal("no results")
	}
	for _, r := range results {
		if r.Failures != 0 {
			t.Errorf("n=%d faults=%d: %d failures below n", r.N, r.Faults, r.Failures)
		}
		if r.Attempts == 0 {
			t.Errorf("n=%d faults=%d: no attempts", r.N, r.Faults)
		}
		if r.Optimal+r.Suboptimal != r.Attempts {
			t.Errorf("n=%d faults=%d: outcome counts inconsistent", r.N, r.Faults)
		}
	}
	renderToString(t, tab)
}

func TestTheorem4Table(t *testing.T) {
	tab := Theorem4(Config{Seed: 42, Trials: 20})
	for i, row := range tab.Rows {
		if row[2] != "0" || row[3] != "0" {
			t.Errorf("row %d: LH/WF safe counts %s/%s, want 0/0", i, row[2], row[3])
		}
		if det, _ := strconv.ParseFloat(row[4], 64); det != 100 {
			t.Errorf("row %d: cross-partition detection %f%%, want 100", i, det)
		}
	}
}

func TestCompareTable(t *testing.T) {
	tab := Compare(Config{Seed: 42, Trials: 60})
	if len(tab.Rows) != 30 {
		t.Fatalf("rows = %d, want 5 fault loads x 6 schemes", len(tab.Rows))
	}
	get := func(load, scheme string) []float64 {
		for _, row := range tab.Rows {
			if row[0] == load && row[1] == scheme {
				out := make([]float64, 6)
				for i := 0; i < 6; i++ {
					out[i], _ = strconv.ParseFloat(row[2+i], 64)
				}
				return out
			}
		}
		t.Fatalf("no row for load %s scheme %s", load, scheme)
		return nil
	}
	// Light faults (2 < n): safety-level admits and delivers everything,
	// nearly all optimally.
	sl2 := get("2", "safety-level")
	if sl2[1] < 100 {
		t.Errorf("safety-level delivered%% at 2 faults = %f, want 100", sl2[1])
	}
	if sl2[2] < 90 {
		t.Errorf("safety-level optimal%% at 2 faults = %f, want >= 90", sl2[2])
	}
	for _, load := range []string{"2", "6", "12", "20", "32"} {
		sl := get(load, "safety-level")
		// The paper's guarantee: every delivered safety-level message is
		// within H+2 at every load.
		if sl[1] > 0 && sl[3] != 100 {
			t.Errorf("load %s: safety-level within-H+2 = %f, want 100", load, sl[3])
		}
		// DFS is complete: it delivers at least as much as safety-level.
		dfs := get(load, "chen-shin-dfs")
		if dfs[1]+1e-9 < sl[1] {
			t.Errorf("load %s: DFS delivered %f below safety-level %f", load, dfs[1], sl[1])
		}
	}
	// At the heaviest load DFS pays for completeness with longer walks.
	if dfs32 := get("32", "chen-shin-dfs"); dfs32[4] <= get("32", "safety-level")[4] {
		t.Errorf("DFS stretch %f should exceed safety-level stretch %f at 32 faults",
			dfs32[4], get("32", "safety-level")[4])
	}
}

func TestTieBreakAblation(t *testing.T) {
	tab := TieBreakAblation(Config{Seed: 42, Trials: 20})
	if len(tab.Rows) != 2 {
		t.Fatalf("rows = %d", len(tab.Rows))
	}
	// Outcome classes must agree between the two policies.
	if tab.Rows[0][4] != "0" {
		t.Errorf("tie-break outcome mismatches = %s, want 0", tab.Rows[0][4])
	}
	// Both policies deliver the same number of messages with the same
	// average length (only physical paths differ).
	if tab.Rows[0][1] != tab.Rows[1][1] {
		t.Errorf("delivery counts differ: %s vs %s", tab.Rows[0][1], tab.Rows[1][1])
	}
	if tab.Rows[0][2] != tab.Rows[1][2] {
		t.Errorf("average lengths differ: %s vs %s", tab.Rows[0][2], tab.Rows[1][2])
	}
}

func TestTruncatedGSAblation(t *testing.T) {
	tab := TruncatedGSAblation(Config{Seed: 42, Trials: 30})
	last := tab.Rows[len(tab.Rows)-1]
	if last[0] != "6" {
		t.Fatalf("last row D = %s, want 6", last[0])
	}
	for col := 1; col < 5; col++ {
		if v, _ := strconv.ParseFloat(last[col], 64); v != 0 {
			t.Errorf("D = n-1: column %d = %s, want 0", col, last[col])
		}
	}
	// D = 1 should show at least some wrong levels on clustered faults.
	if v := cellFloat(t, tab, 0, 1); v == 0 {
		t.Error("D = 1 shows no wrong levels; ablation not exercising anything")
	}
}

func TestDistributedTable(t *testing.T) {
	tab := Distributed(Config{Seed: 42, Trials: 4})
	if len(tab.Rows) != 9 {
		t.Fatalf("rows = %d", len(tab.Rows))
	}
	for i, row := range tab.Rows {
		if v, _ := strconv.ParseFloat(row[4], 64); v != 1 {
			t.Errorf("row %d: msgs/link/round = %s, want exactly 1", i, row[4])
		}
		delivered, _ := strconv.Atoi(row[6])
		unicasts, _ := strconv.Atoi(row[5])
		if delivered > unicasts {
			t.Errorf("row %d: delivered > attempted", i)
		}
	}
}

func TestUpdateStrategiesTable(t *testing.T) {
	tab := UpdateStrategies(Config{Seed: 42, Trials: 3})
	if len(tab.Rows) != 2 {
		t.Fatalf("rows = %d", len(tab.Rows))
	}
	if tab.Rows[0][3] != "true" || tab.Rows[1][3] != "true" {
		t.Error("both strategies must end with correct levels")
	}
	periodic := cellFloat(t, tab, 0, 2)
	driven := cellFloat(t, tab, 1, 2)
	if driven >= periodic {
		t.Errorf("state-change-driven (%f msgs) should cost less than periodic (%f)", driven, periodic)
	}
}

func TestScenarioConstructors(t *testing.T) {
	if Fig1Set().NodeFaults() != 4 {
		t.Error("Fig1Set should have 4 faults")
	}
	if Fig3Set().NodeFaults() != 4 {
		t.Error("Fig3Set should have 4 faults")
	}
	s4 := Fig4Set()
	if s4.NodeFaults() != 4 || s4.LinkFaults() != 1 {
		t.Error("Fig4Set should have 4 node faults and 1 link fault")
	}
	if Fig5Graph().NodeFaults() != 4 {
		t.Error("Fig5Graph should have 4 faults")
	}
	if Section23Set().NodeFaults() != 3 || Property2Set().NodeFaults() != 3 {
		t.Error("Section 2.3 / Property 2 sets should have 3 faults")
	}
}

func TestTableJSON(t *testing.T) {
	tab := &Table{ID: "X", Title: "demo", Header: []string{"a"}, Rows: [][]string{{"1"}}}
	tab.Note("n")
	var buf bytes.Buffer
	if err := tab.JSON(&buf); err != nil {
		t.Fatal(err)
	}
	var doc struct {
		ID    string     `json:"id"`
		Rows  [][]string `json:"rows"`
		Notes []string   `json:"notes"`
	}
	if err := json.Unmarshal(buf.Bytes(), &doc); err != nil {
		t.Fatal(err)
	}
	if doc.ID != "X" || len(doc.Rows) != 1 || len(doc.Notes) != 1 {
		t.Errorf("decoded %+v", doc)
	}
}

// TestDiagnoseSweepTable pins E21's law: within the diagnosability
// bound every adversary row reads identified = exact = 1 and ambiguous
// = 0; beyond the bound the worst-case adversaries (invert, stealth)
// read ambiguous = 1.
func TestDiagnoseSweepTable(t *testing.T) {
	tab := DiagnoseSweep(Config{Seed: 42, Trials: 10})
	if tab.ID != "E21" || len(tab.Rows) == 0 {
		t.Fatalf("table %s with %d rows", tab.ID, len(tab.Rows))
	}
	for row := range tab.Rows {
		bound, _ := strconv.Atoi(cell(t, tab, row, 1))
		k, _ := strconv.Atoi(cell(t, tab, row, 2))
		adv := cell(t, tab, row, 3)
		identified := cellFloat(t, tab, row, 5)
		exact := cellFloat(t, tab, row, 6)
		ambiguous := cellFloat(t, tab, row, 7)
		if k <= bound {
			if identified != 1 || exact != 1 || ambiguous != 0 {
				t.Errorf("row %d (|F|=%d <= %d, %s): identified %v exact %v ambiguous %v",
					row, k, bound, adv, identified, exact, ambiguous)
			}
		} else if adv == "invert" || adv == "stealth" {
			if ambiguous != 1 {
				t.Errorf("row %d (|F|=%d > %d, %s): ambiguous %v, want 1",
					row, k, bound, adv, ambiguous)
			}
		}
	}
}
