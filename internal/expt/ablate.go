package expt

import (
	"repro/internal/core"
	"repro/internal/faults"
	"repro/internal/stats"
	"repro/internal/topo"
)

// TieBreakAblation (E12a) quantifies the freedom the paper leaves in
// "select a preferred neighbor with the highest safety level": both
// deterministic policies must keep identical outcome classes and path
// lengths (Theorem 3 does not depend on the choice), but they spread
// traffic differently. The measure is the maximum per-link load when
// many unicasts run on the same faulty cube.
func TieBreakAblation(cfg Config) *Table {
	cfg = cfg.withDefaults(60)
	const n = 7
	c := topo.MustCube(n)
	t := &Table{
		ID:     "E12a",
		Title:  "Tie-break ablation (7-cube, faults = n-1, all-pairs sample)",
		Header: []string{"policy", "delivered", "avg len", "max link load", "outcome mismatches"},
	}
	rng := stats.NewRNG(cfg.Seed + 13)

	type res struct {
		delivered int
		lengths   stats.Accumulator
		maxLoad   stats.Accumulator
	}
	results := map[string]*res{"lowest-dim": {}, "highest-dim": {}}
	mismatches := 0

	for trial := 0; trial < cfg.Trials; trial++ {
		s := faults.NewSet(c)
		if err := faults.InjectUniform(s, rng, n-1); err != nil {
			panic(err)
		}
		as := core.Compute(s, core.Options{})
		low := core.NewRouter(as, core.LowestDim)
		high := core.NewRouter(as, core.HighestDim)

		loads := map[string]map[faults.Link]int{
			"lowest-dim":  {},
			"highest-dim": {},
		}
		for pair := 0; pair < 60; pair++ {
			src := topo.NodeID(rng.Intn(c.Nodes()))
			dst := topo.NodeID(rng.Intn(c.Nodes()))
			if s.NodeFaulty(src) || s.NodeFaulty(dst) || src == dst {
				continue
			}
			rl := low.Unicast(src, dst)
			rh := high.Unicast(src, dst)
			if rl.Outcome != rh.Outcome {
				mismatches++
			}
			for name, r := range map[string]*core.Route{"lowest-dim": rl, "highest-dim": rh} {
				if r.Outcome == core.Failure {
					continue
				}
				results[name].delivered++
				results[name].lengths.Add(float64(r.Len()))
				for i := 1; i < len(r.Path); i++ {
					loads[name][faults.Link{A: r.Path[i-1], B: r.Path[i]}.Normalize()]++
				}
			}
		}
		for name, lm := range loads {
			max := 0
			for _, v := range lm {
				if v > max {
					max = v
				}
			}
			results[name].maxLoad.Add(float64(max))
		}
	}
	for _, name := range []string{"lowest-dim", "highest-dim"} {
		r := results[name]
		t.AddRow(name, r.delivered, r.lengths.Mean(), r.maxLoad.Mean(), mismatches)
	}
	t.Note("outcome classes must agree between policies (mismatches = 0); only the physical paths differ")
	return t
}

// TruncatedGSAblation (E12c) asks what an under-provisioned D (the GS
// iteration cap) costs: with D below the Corollary bound n-1, levels can
// be over-optimistic, the source check can admit unicasts it should not,
// and deliveries can exceed the promised H/H+2 or hit transport errors.
func TruncatedGSAblation(cfg Config) *Table {
	cfg = cfg.withDefaults(150)
	const n = 7
	c := topo.MustCube(n)
	t := &Table{
		ID:     "E12c",
		Title:  "GS round budget ablation (7-cube, 12 clustered faults)",
		Header: []string{"D", "wrong levels %", "admission errors", "transport errors", "broken guarantees"},
	}
	rng := stats.NewRNG(cfg.Seed + 14)
	for d := 1; d <= n-1; d++ {
		wrongLevels, totalLevels := 0, 0
		admissionErr, transportErr, brokenLen := 0, 0, 0
		for trial := 0; trial < cfg.Trials; trial++ {
			s := faults.NewSet(c)
			if err := faults.InjectClustered(s, rng, 12, 4); err != nil {
				panic(err)
			}
			exact := core.Compute(s, core.Options{})
			trunc := core.Compute(s, core.Options{MaxRounds: d})
			for a := 0; a < c.Nodes(); a++ {
				totalLevels++
				if trunc.Level(topo.NodeID(a)) != exact.Level(topo.NodeID(a)) {
					wrongLevels++
				}
			}
			rt := core.NewRouter(trunc, nil)
			exactRt := core.NewRouter(exact, nil)
			for pair := 0; pair < 10; pair++ {
				src := topo.NodeID(rng.Intn(c.Nodes()))
				dst := topo.NodeID(rng.Intn(c.Nodes()))
				if s.NodeFaulty(src) || s.NodeFaulty(dst) || src == dst {
					continue
				}
				_, truncOut := rt.Feasibility(src, dst)
				_, exactOut := exactRt.Feasibility(src, dst)
				if truncOut != exactOut {
					admissionErr++
				}
				r := rt.Unicast(src, dst)
				if r.Err != nil {
					transportErr++
					continue
				}
				switch r.Outcome {
				case core.Optimal:
					if r.Len() != r.Hamming {
						brokenLen++
					}
				case core.Suboptimal:
					if r.Len() != r.Hamming+2 {
						brokenLen++
					}
				}
			}
		}
		t.AddRow(d, pct(wrongLevels, totalLevels), admissionErr, transportErr, brokenLen)
	}
	t.Note("at D = n-1 every column must be 0 (Corollary to Property 1)")
	return t
}
