package expt

import (
	"fmt"
	"io"
	"strings"

	"repro/internal/core"
	"repro/internal/topo"
)

// RenderLevelMap draws the safety levels of a cube as a Karnaugh-style
// grid: rows are the Gray-coded high half of the address bits, columns
// the Gray-coded low half, so every horizontal and vertical step between
// cells is exactly one hypercube hop (wrapping around the edges). Each
// cell shows the node's level plus a status marker:
//
//	'*' safe (level n)   'X' faulty   '!' N2 (adjacent faulty link)
//
// The layout keeps adjacency visible for dimensions up to about 8
// (16x16 cells).
func RenderLevelMap(w io.Writer, as *core.Assignment) {
	c := as.Cube()
	n := c.Dim()
	low := n / 2
	high := n - low
	cols := 1 << uint(low)

	colCode := grayCodes(low)
	rowCode := grayCodes(high)

	cellW := low + 5 // "addr S?" width: low bits + marker + level digit
	if cellW < 6 {
		cellW = 6
	}

	// Column headers (low bits).
	fmt.Fprintf(w, "%*s", high+2, "")
	for _, g := range colCode {
		fmt.Fprintf(w, " %-*s", cellW, padBits(g, low))
	}
	fmt.Fprintln(w)

	set := as.Faults()
	for _, rg := range rowCode {
		fmt.Fprintf(w, "%-*s |", high, padBits(rg, high))
		for _, cg := range colCode {
			id := topo.NodeID(rg<<uint(low) | cg)
			var cell string
			switch {
			case set.NodeFaulty(id):
				cell = "X"
			case len(set.AdjacentFaultyLinks(id)) > 0:
				cell = fmt.Sprintf("!%d/%d", as.Level(id), as.OwnLevel(id))
			case as.Safe(id):
				cell = fmt.Sprintf("*%d", as.Level(id))
			default:
				cell = fmt.Sprintf("%d", as.Level(id))
			}
			fmt.Fprintf(w, " %-*s", cellW, cell)
		}
		fmt.Fprintln(w)
	}
	fmt.Fprintln(w, strings.Repeat("-", high+2+(cellW+1)*cols))
	fmt.Fprintln(w, "rows: high address bits (Gray order), cols: low bits (Gray order)")
	fmt.Fprintln(w, "*k safe  k level  X faulty  !pub/own node with adjacent faulty link")
}

// grayCodes returns the bits-bit Gray code sequence.
func grayCodes(bits int) []int {
	out := make([]int, 1<<uint(bits))
	for i := range out {
		out[i] = i ^ (i >> 1)
	}
	return out
}

// padBits renders v as a bits-wide binary string (empty for bits = 0).
func padBits(v, bits int) string {
	if bits == 0 {
		return ""
	}
	s := fmt.Sprintf("%b", v)
	if len(s) < bits {
		s = strings.Repeat("0", bits-len(s)) + s
	}
	return s
}

// RenderRoute overlays a routed path on the textual output: the path in
// figure notation plus a per-hop annotation of the levels that drove
// each decision.
func RenderRoute(w io.Writer, as *core.Assignment, r *core.Route) {
	c := as.Cube()
	fmt.Fprintf(w, "unicast %s -> %s: H=%d condition=%s outcome=%s\n",
		c.Format(r.Source), c.Format(r.Dest), r.Hamming, r.Condition, r.Outcome)
	if r.Outcome == core.Failure {
		if r.Err != nil {
			fmt.Fprintf(w, "  error: %v\n", r.Err)
		} else {
			fmt.Fprintln(w, "  aborted at the source (C1, C2 and C3 all failed)")
		}
		return
	}
	for i, h := range r.Hops {
		kind := "preferred"
		if h.Spare {
			kind = "spare    "
		}
		fmt.Fprintf(w, "  hop %d: %s -> %s  dim %d (%s)  S(next)=%d  nav %0*b\n",
			i+1, c.Format(h.From), c.Format(h.To), h.Dim, kind,
			as.Level(h.To), c.Dim(), h.Nav)
	}
}
