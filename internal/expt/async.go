package expt

import (
	"repro/internal/core"
	"repro/internal/faults"
	"repro/internal/simnet"
	"repro/internal/stats"
	"repro/internal/topo"
)

// AsyncVsSync (E11b) compares the two distributed implementations of
// the GS status protocol that Section 2.2 describes: the synchronous
// n-1-round exchange versus the asynchronous quiescence-driven variant,
// on identical fault sets. Both must reach the same fixpoint; the
// asynchronous mode only pays for levels that actually change, so its
// message count collapses when faults are few or scattered.
func AsyncVsSync(cfg Config) *Table {
	cfg = cfg.withDefaults(15)
	t := &Table{
		ID:    "E11b",
		Title: "Synchronous vs. asynchronous GS (message cost to the same fixpoint)",
		Header: []string{"n", "faults", "placement", "sync msgs", "async msgs",
			"async/sync %", "fixpoint equal"},
	}
	rng := stats.NewRNG(cfg.Seed + 15)
	for _, n := range []int{6, 8} {
		c := topo.MustCube(n)
		for _, load := range []struct {
			faults    int
			clustered bool
			label     string
		}{
			{0, false, "none"},
			{n - 1, false, "uniform"},
			{n - 1, true, "clustered"},
			{4 * n, false, "uniform"},
			{4 * n, true, "clustered"},
		} {
			var syncMsgs, asyncMsgs stats.Accumulator
			equal := true
			for trial := 0; trial < cfg.Trials; trial++ {
				s := faults.NewSet(c)
				var err error
				if load.clustered {
					err = faults.InjectClustered(s, rng, load.faults, min(n, 4))
				} else {
					err = faults.InjectUniform(s, rng, load.faults)
				}
				if err != nil {
					panic(err)
				}

				eSync := simnet.New(s)
				eSync.RunGS(0)
				syncMsgs.Add(float64(eSync.MessagesSent()))
				syncLv := eSync.Levels()
				eSync.Close()

				eAsync := simnet.New(s)
				eAsync.RunGSAsync()
				asyncMsgs.Add(float64(eAsync.MessagesSent()))
				asyncLv := eAsync.Levels()
				eAsync.Close()

				want := core.Compute(s, core.Options{})
				for a := 0; a < c.Nodes(); a++ {
					if syncLv[a] != want.Level(topo.NodeID(a)) || asyncLv[a] != want.Level(topo.NodeID(a)) {
						equal = false
					}
				}
			}
			ratio := 0.0
			if syncMsgs.Mean() > 0 {
				ratio = 100 * asyncMsgs.Mean() / syncMsgs.Mean()
			}
			t.AddRow(n, load.faults, load.label, syncMsgs.Mean(), asyncMsgs.Mean(), ratio, equal)
		}
	}
	t.Note("sync sends one message per directed live link per round for n-1 rounds;")
	t.Note("async sends the initial push plus one update per actual level change (demand-driven)")
	return t
}
