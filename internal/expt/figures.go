package expt

import (
	"repro/internal/baseline"
	"repro/internal/core"
	"repro/internal/faults"
	"repro/internal/ghcube"
	"repro/internal/topo"
)

// Fig1 (E1) regenerates Fig. 1: the safety level of every node of the
// example four-cube, plus the paper's two worked unicasts.
func Fig1() *Table {
	s := Fig1Set()
	c := s.Cube()
	as := core.Compute(s, core.Options{})
	t := &Table{
		ID:     "E1",
		Title:  "Fig. 1 — safety levels in a 4-cube with faults {0011, 0100, 0110, 1001}",
		Header: []string{"node", "level", "status"},
	}
	for a := 0; a < c.Nodes(); a++ {
		id := topo.NodeID(a)
		status := "nonfaulty"
		if s.NodeFaulty(id) {
			status = "faulty"
		} else if as.Safe(id) {
			status = "safe"
		}
		t.AddRow(c.Format(id), as.Level(id), status)
	}
	t.Note("levels stabilized after %d rounds (paper: 2)", as.Rounds())

	rt := core.NewRouter(as, nil)
	r1 := rt.Unicast(c.MustParse("1110"), c.MustParse("0001"))
	t.Note("unicast 1110 -> 0001: %s via %s, path %s (paper: 1110 -> 1111 -> 1101 -> 0101 -> 0001)",
		r1.Outcome, r1.Condition, r1.Path.FormatWith(c))
	r2 := rt.Unicast(c.MustParse("0001"), c.MustParse("1100"))
	t.Note("unicast 0001 -> 1100: %s via %s, path %s (paper: 0001 -> 0000 -> 1000 -> 1100)",
		r2.Outcome, r2.Condition, r2.Path.FormatWith(c))
	return t
}

// Table1 (E3) regenerates the Section 2.3 three-way safe-set comparison
// on the example cube with faults {0000, 0110, 1111}.
func Table1() *Table {
	s := Section23Set()
	c := s.Cube()
	as := core.Compute(s, core.Options{})
	lh := baseline.LeeHayes(s)
	wf := baseline.WuFernandez(s)

	t := &Table{
		ID:     "E3",
		Title:  "Section 2.3 — safe node sets under the three definitions (Q4, faults {0000, 0110, 1111})",
		Header: []string{"definition", "safe nodes", "count", "rounds"},
	}
	t.AddRow("safety level (this paper)", formatNodes(c, as.SafeSet()), len(as.SafeSet()), as.Rounds())
	t.AddRow("Wu-Fernandez (Def. 3)", formatNodes(c, wf.SafeSet()), wf.SafeCount(), wf.Rounds())
	t.AddRow("Lee-Hayes (Def. 2)", formatNodes(c, lh.SafeSet()), lh.SafeCount(), lh.Rounds())
	t.Note("paper lists the WF set as the 9 safety-level nodes minus 1100; under the literal")
	t.Note("Definition 3 fixpoint 1100 is provably safe (its profile equals 0011/0101/1010's),")
	t.Note("so the measured WF set has 9 nodes — see EXPERIMENTS.md for the discrepancy analysis")
	return t
}

func formatNodes(c *topo.Cube, nodes []topo.NodeID) string {
	if len(nodes) == 0 {
		return "(empty)"
	}
	out := ""
	for i, a := range nodes {
		if i > 0 {
			out += " "
		}
		out += c.Format(a)
	}
	return out
}

// Fig3 (E5) regenerates the disconnected-cube walkthrough of Fig. 3.
func Fig3() *Table {
	s := Fig3Set()
	c := s.Cube()
	as := core.Compute(s, core.Options{})
	rt := core.NewRouter(as, nil)

	t := &Table{
		ID:     "E5",
		Title:  "Fig. 3 — unicasting in a disconnected 4-cube with faults {0110, 1010, 1100, 1111}",
		Header: []string{"source", "dest", "H", "S(src)", "condition", "outcome", "path"},
	}
	cases := [][2]string{
		{"0101", "0000"}, // paper: optimal, C1
		{"0111", "1011"}, // paper: optimal via preferred neighbor 0011, C2
		{"0111", "1110"}, // paper: aborted at the source
		{"1110", "0000"}, // island source: aborted
	}
	for _, cs := range cases {
		src, dst := c.MustParse(cs[0]), c.MustParse(cs[1])
		r := rt.Unicast(src, dst)
		path := "(aborted at source)"
		if r.Outcome != core.Failure {
			path = r.Path.FormatWith(c)
		}
		t.AddRow(cs[0], cs[1], r.Hamming, as.Level(src), r.Condition.String(), r.Outcome.String(), path)
	}
	_, comps := faults.Components(s)
	t.Note("surviving graph splits into %d components; island node 1110 is 1-safe", comps)
	t.Note("Lee-Hayes safe set size: %d, Wu-Fernandez: %d (Theorem 4: both empty)",
		baseline.LeeHayes(s).SafeCount(), baseline.WuFernandez(s).SafeCount())
	return t
}

// Fig4 (E8) regenerates the link-fault walkthrough of Section 4.1.
func Fig4() *Table {
	s := Fig4Set()
	c := s.Cube()
	as := core.Compute(s, core.Options{})

	t := &Table{
		ID:     "E8",
		Title:  "Fig. 4 — 4-cube with node faults {0000, 0100, 1100, 1110} and faulty link (1000, 1001)",
		Header: []string{"node", "public level", "own level", "class"},
	}
	for a := 0; a < c.Nodes(); a++ {
		id := topo.NodeID(a)
		class := "N1"
		switch {
		case s.NodeFaulty(id):
			class = "faulty"
		case len(s.AdjacentFaultyLinks(id)) > 0:
			class = "N2"
		}
		t.AddRow(c.Format(id), as.Level(id), as.OwnLevel(id), class)
	}
	rt := core.NewRouter(as, nil)
	r := rt.Unicast(c.MustParse("1101"), c.MustParse("1000"))
	t.Note("paper: S(1000)=1 and S(1001)=2 in their own view, 0 to everyone else — measured above")
	t.Note("unicast 1101 -> 1000 (H=2): %s, path %s (paper: 1101 -> 1111 -> 1011 -> 1010 -> 1000)",
		r.Outcome, r.Path.FormatWith(c))
	return t
}

// Fig5 (E9) regenerates the generalized-hypercube walkthrough of
// Section 4.2.
func Fig5() *Table {
	g := Fig5Graph()
	as := ghcube.Compute(g)

	t := &Table{
		ID:     "E9",
		Title:  "Fig. 5 — GH(2x3x2) with faults {011, 100, 111, 121}",
		Header: []string{"node", "level", "status"},
	}
	for a := 0; a < g.Nodes(); a++ {
		id := ghcube.NodeID(a)
		status := "nonfaulty"
		if g.NodeFaulty(id) {
			status = "faulty"
		} else if as.Level(id) == g.Dim() {
			status = "safe"
		}
		t.AddRow(g.Format(id), as.Level(id), status)
	}
	rt := ghcube.NewRouter(as)
	r := rt.Unicast(g.MustParse("010"), g.MustParse("101"))
	t.Note("safe nodes: %d (paper: four)", len(as.SafeSet()))
	t.Note("unicast 010 -> 101 (distance 3): %s via %s, path %s (paper: 010 -> 000 -> 001 -> 101)",
		r.Outcome, r.Condition, r.Path.FormatWith(g))
	return t
}
