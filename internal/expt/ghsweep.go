package expt

import (
	"fmt"

	"repro/internal/core"
	"repro/internal/faults"
	"repro/internal/simnet"
	"repro/internal/stats"
	"repro/internal/topo"
)

// The generalized-hypercube backend: the Section 4.2 claims measured
// through the same generic core and distributed engine the binary
// experiments use. "The algorithms for the regular hypercube can be
// directly applied with a minor modification" — here the modification
// is only the topology value handed to the stack.

// ghShapes are the mixed-radix shapes the GH sweeps cover, dimension 0
// first (GH(2x3x2) is the paper's Fig. 5 shape).
var ghShapes = [][]int{
	{2, 3, 2},
	{3, 3, 3},
	{4, 3, 2, 2},
}

func ghName(radix []int) string {
	s := "GH("
	for i := len(radix) - 1; i >= 0; i-- {
		s += fmt.Sprint(radix[i])
		if i > 0 {
			s += "x"
		}
	}
	return s + ")"
}

// GHSweep (E15) runs the unicast guarantee sweep on generalized
// hypercubes: uniform random faults, random healthy pairs, Definition 4
// levels from the generic core. Optimal outcomes are cross-checked
// against the ground-truth optimal-path oracle — an Optimal verdict
// with no surviving optimal path would be a routing soundness bug, so
// the mismatch column must stay 0.
func GHSweep(cfg Config) *Table {
	cfg = cfg.withDefaults(200)
	t := &Table{
		ID:     "E15",
		Title:  "Section 4.2 — safety-level unicasting on generalized hypercubes",
		Header: []string{"shape", "faults", "attempts", "failures", "optimal %", "suboptimal %", "avg rounds", "oracle mismatches"},
	}
	rng := stats.NewRNG(cfg.Seed + 15)
	for _, radix := range ghShapes {
		m := topo.MustMixed(radix...)
		for _, f := range []int{m.Dim() - 1, m.Dim() + 1} {
			attempts, failures, optimal, suboptimal, mismatches := 0, 0, 0, 0, 0
			var rounds stats.Accumulator
			for trial := 0; trial < cfg.Trials; trial++ {
				s := faults.NewSet(m)
				if err := faults.InjectUniform(s, rng, f); err != nil {
					panic(err)
				}
				as := core.Compute(s, core.Options{})
				rounds.Add(float64(as.Rounds()))
				rt := core.NewRouter(as, nil)
				for pair := 0; pair < 10; pair++ {
					src := topo.NodeID(rng.Intn(m.Nodes()))
					dst := topo.NodeID(rng.Intn(m.Nodes()))
					if s.NodeFaulty(src) || s.NodeFaulty(dst) || src == dst {
						continue
					}
					attempts++
					r := rt.Unicast(src, dst)
					switch r.Outcome {
					case core.Optimal:
						optimal++
						if !faults.HasOptimalPath(s, src, dst) {
							mismatches++
						}
					case core.Suboptimal:
						suboptimal++
					default:
						failures++
					}
				}
			}
			t.AddRow(ghName(radix), f, attempts, failures,
				pct(optimal, attempts), pct(suboptimal, attempts), rounds.Mean(), mismatches)
		}
	}
	t.Note("%d trials per row, 10 random pairs each, seed %d", cfg.Trials, cfg.Seed)
	t.Note("oracle mismatches counts Optimal verdicts with no surviving optimal path; must be 0")
	return t
}

// GHDistributed (E15b) runs the message-passing engine on generalized
// hypercubes and compares the distributed fixpoint with the sequential
// one: every trial must agree level-for-level, and the per-trial message
// count is reported against the deg*(n-1) full-exchange bound (each of
// the deg sends per node per round, for up to n-1 rounds).
func GHDistributed(cfg Config) *Table {
	cfg = cfg.withDefaults(30)
	t := &Table{
		ID:     "E15b",
		Title:  "Distributed GS on generalized hypercubes — fixpoint agreement and message cost",
		Header: []string{"shape", "faults", "trials", "level mismatches", "avg rounds", "avg messages", "bound"},
	}
	rng := stats.NewRNG(cfg.Seed + 16)
	for _, radix := range ghShapes {
		m := topo.MustMixed(radix...)
		f := m.Dim()
		mismatches := 0
		var rounds, msgs stats.Accumulator
		for trial := 0; trial < cfg.Trials; trial++ {
			s := faults.NewSet(m)
			if err := faults.InjectUniform(s, rng, f); err != nil {
				panic(err)
			}
			e := simnet.New(s)
			e.RunGS(0)
			want := core.Compute(s, core.Options{})
			for a, got := range e.Levels() {
				id := topo.NodeID(a)
				if !s.NodeFaulty(id) && got != want.Level(id) {
					mismatches++
				}
			}
			rounds.Add(float64(e.StableRound()))
			msgs.Add(float64(e.MessagesSent()))
			e.Close()
		}
		bound := (m.Nodes() - f) * m.Degree() * (m.Dim() - 1)
		t.AddRow(ghName(radix), f, cfg.Trials, mismatches, rounds.Mean(), msgs.Mean(), bound)
	}
	t.Note("%d trials per shape, seed %d; level mismatches must be 0", cfg.Trials, cfg.Seed)
	return t
}
