package expt

import (
	"encoding/json"
	"fmt"
	"io"
	"strings"
)

// Table is a rendered experiment result: a titled grid plus free-form
// notes (assumptions, paper-vs-measured commentary).
type Table struct {
	ID     string // experiment ID, e.g. "E2"
	Title  string
	Header []string
	Rows   [][]string
	Notes  []string
}

// AddRow appends a row; values are Sprint-ed.
func (t *Table) AddRow(cells ...interface{}) {
	row := make([]string, len(cells))
	for i, c := range cells {
		switch v := c.(type) {
		case float64:
			row[i] = trimFloat(v)
		default:
			row[i] = fmt.Sprint(c)
		}
	}
	t.Rows = append(t.Rows, row)
}

// trimFloat renders with 3 decimals, dropping trailing zeros.
func trimFloat(v float64) string {
	s := fmt.Sprintf("%.3f", v)
	s = strings.TrimRight(s, "0")
	return strings.TrimRight(s, ".")
}

// Note appends a formatted note line.
func (t *Table) Note(format string, args ...interface{}) {
	t.Notes = append(t.Notes, fmt.Sprintf(format, args...))
}

// Render writes the table as fixed-width text.
func (t *Table) Render(w io.Writer) {
	fmt.Fprintf(w, "== %s: %s ==\n", t.ID, t.Title)
	if len(t.Header) > 0 {
		widths := make([]int, len(t.Header))
		for i, h := range t.Header {
			widths[i] = len(h)
		}
		for _, row := range t.Rows {
			for i, cell := range row {
				if i < len(widths) && len(cell) > widths[i] {
					widths[i] = len(cell)
				}
			}
		}
		line := func(cells []string) {
			parts := make([]string, len(cells))
			for i, cell := range cells {
				if i < len(widths) {
					parts[i] = pad(cell, widths[i])
				} else {
					parts[i] = cell
				}
			}
			fmt.Fprintln(w, "  "+strings.Join(parts, "  "))
		}
		line(t.Header)
		rule := make([]string, len(t.Header))
		for i := range rule {
			rule[i] = strings.Repeat("-", widths[i])
		}
		line(rule)
		for _, row := range t.Rows {
			line(row)
		}
	}
	for _, n := range t.Notes {
		fmt.Fprintf(w, "  note: %s\n", n)
	}
	fmt.Fprintln(w)
}

// CSV writes the table as comma-separated values (header + rows).
func (t *Table) CSV(w io.Writer) {
	writeCSVRow(w, t.Header)
	for _, row := range t.Rows {
		writeCSVRow(w, row)
	}
}

func writeCSVRow(w io.Writer, cells []string) {
	parts := make([]string, len(cells))
	for i, c := range cells {
		if strings.ContainsAny(c, ",\"\n") {
			c = "\"" + strings.ReplaceAll(c, "\"", "\"\"") + "\""
		}
		parts[i] = c
	}
	fmt.Fprintln(w, strings.Join(parts, ","))
}

func pad(s string, w int) string {
	if len(s) >= w {
		return s
	}
	return s + strings.Repeat(" ", w-len(s))
}

// JSON writes the table as a single JSON object with id, title,
// header, rows and notes — for downstream plotting pipelines.
func (t *Table) JSON(w io.Writer) error {
	doc := struct {
		ID     string     `json:"id"`
		Title  string     `json:"title"`
		Header []string   `json:"header"`
		Rows   [][]string `json:"rows"`
		Notes  []string   `json:"notes,omitempty"`
	}{t.ID, t.Title, t.Header, t.Rows, t.Notes}
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(doc)
}
