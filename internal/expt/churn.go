package expt

import (
	"fmt"

	"repro/internal/chaos"
	"repro/internal/faults"
	"repro/internal/topo"
)

// ChurnRepair (E16) measures incremental GS repair against cold
// recomputation under sustained fault churn: every step of a random
// fail/recover schedule patches the previous fixpoint via
// core.RepairLevels and recomputes cold, and the chaos harness asserts
// bit-identity plus the Theorem-2 oracle before either cost is counted.
// The table reports total NODE_STATUS evaluations for both strategies —
// the speedup column is the number the issue's acceptance criterion
// bounds at 3x on Q10.
func ChurnRepair(cfg Config) *Table {
	cfg = cfg.withDefaults(200)
	t := &Table{
		ID:    "E16",
		Title: "Incremental repair vs. cold GS under fault churn",
		Header: []string{"shape", "links", "steps", "repair evals", "cold evals",
			"speedup", "repair rounds", "cold rounds", "dirty nodes", "routes ok/fail"},
	}
	shapes := []struct {
		name string
		tp   topo.Topology
	}{
		{"Q6", topo.MustCube(6)},
		{"Q8", topo.MustCube(8)},
		{"Q10", topo.MustCube(10)},
		{"GH(3x3x3)", topo.MustMixed(3, 3, 3)},
	}
	for si, s := range shapes {
		for _, links := range []bool{false, true} {
			rep, err := chaos.Run(s.tp, cfg.Trials, chaos.Options{
				Churn:         faults.ChurnOptions{Links: links},
				OracleSources: 8,
				Unicasts:      2,
				Seed:          cfg.Seed + uint64(si),
			})
			if err != nil {
				panic(err) // a harness error is a level-machinery bug
			}
			t.AddRow(s.name, links, rep.Steps, rep.RepairEvals, rep.ColdEvals,
				float64(rep.ColdEvals)/float64(rep.RepairEvals),
				rep.RepairRounds, rep.ColdRounds, rep.DirtyNodes,
				fmt.Sprintf("%d/%d", rep.Optimal+rep.Suboptimal, rep.Failures))
		}
	}
	t.Note("every step is oracle-checked: repaired == cold bit-for-bit, levels realized by actual paths, routed paths legal")
	t.Note("evals count NODE_STATUS evaluations; repair touches only the dirty region around each fault event")
	return t
}
