package expt

import (
	"strconv"
	"strings"
	"testing"
)

func TestAsyncVsSyncTable(t *testing.T) {
	tab := AsyncVsSync(Config{Seed: 42, Trials: 3})
	if len(tab.Rows) != 10 {
		t.Fatalf("rows = %d, want 10", len(tab.Rows))
	}
	for i, row := range tab.Rows {
		if row[6] != "true" {
			t.Errorf("row %d: fixpoints diverged", i)
		}
		sync, _ := strconv.ParseFloat(row[3], 64)
		async, _ := strconv.ParseFloat(row[4], 64)
		if async > sync {
			t.Errorf("row %d: async (%f) costs more than sync (%f)", i, async, sync)
		}
		// Fault-free rows: async sends exactly the initial push, which
		// is 1/(n-1) of the synchronous cost.
		if row[1] == "0" {
			n, _ := strconv.Atoi(row[0])
			if ratio, _ := strconv.ParseFloat(row[5], 64); ratio > 100.0/float64(n-1)+0.5 {
				t.Errorf("row %d: fault-free async ratio %f too high", i, ratio)
			}
		}
	}
}

func TestTrafficTable(t *testing.T) {
	tab := Traffic(Config{Seed: 42, Trials: 3})
	if len(tab.Rows) != 6 {
		t.Fatalf("rows = %d, want 6", len(tab.Rows))
	}
	for i, row := range tab.Rows {
		if row[1] != "permutation" && row[1] != "hotspot" {
			t.Errorf("row %d: unknown pattern %s", i, row[1])
		}
		del, _ := strconv.ParseFloat(row[3], 64)
		if row[0] == "0" && del != 100 {
			t.Errorf("row %d: fault-free delivery %f, want 100", i, del)
		}
	}
	// Hotspot transit must dominate permutation transit at equal load.
	var perm, hot float64
	for _, row := range tab.Rows {
		if row[0] == "0" {
			v, _ := strconv.ParseFloat(row[5], 64)
			if row[1] == "permutation" {
				perm = v
			} else {
				hot = v
			}
		}
	}
	if hot <= perm {
		t.Errorf("hotspot transit %f should exceed permutation %f", hot, perm)
	}
}

func TestFig2DistributionTable(t *testing.T) {
	tab := Fig2Distribution(Config{Seed: 42, Trials: 60})
	if len(tab.Rows) != 8 {
		t.Fatalf("rows = %d", len(tab.Rows))
	}
	get := func(f, placement string, col int) float64 {
		for _, row := range tab.Rows {
			if row[0] == f && strings.HasPrefix(row[1], placement) {
				v, _ := strconv.ParseFloat(row[col], 64)
				return v
			}
		}
		t.Fatalf("row %s/%s missing", f, placement)
		return 0
	}
	// Partial clusters depress the minimum level more than uniform.
	if get("4", "clustered", 4) >= get("4", "uniform", 4) {
		t.Error("clustered min level should be below uniform at 4 faults")
	}
	// A fully dead 4-subcube is invisible: all survivors stay 7-safe.
	if got := get("16", "clustered", 4); got != 7 {
		t.Errorf("dead-subcube min level = %f, want 7", got)
	}
	if got := get("16", "clustered", 2); got != 0 {
		t.Errorf("dead-subcube rounds = %f, want 0", got)
	}
}
