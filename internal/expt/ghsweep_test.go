package expt

import (
	"testing"

	"repro/internal/core"
	"repro/internal/faults"
	"repro/internal/topo"
)

// TestGHSweepGuarantees runs the generalized-hypercube sweep at test
// scale and checks the paper's hard claims: no routing failure below n
// faults, and never an Optimal verdict without a surviving optimal path.
func TestGHSweepGuarantees(t *testing.T) {
	tab := GHSweep(Config{Trials: 15})
	if len(tab.Rows) != 2*len(ghShapes) {
		t.Fatalf("rows = %d, want %d", len(tab.Rows), 2*len(ghShapes))
	}
	for i, row := range tab.Rows {
		if row[7] != "0" {
			t.Errorf("row %d (%s, %s faults): %s oracle mismatches", i, row[0], row[1], row[7])
		}
		// Even rows use n-1 faults — below the Theorem 3 threshold, so
		// failures must be exactly 0.
		if i%2 == 0 && row[3] != "0" {
			t.Errorf("row %d (%s, %s faults): %s failures below n faults", i, row[0], row[1], row[3])
		}
	}
}

// TestGHDistributedAgreement checks the distributed-vs-sequential GS
// fixpoint agreement column across every GH shape.
func TestGHDistributedAgreement(t *testing.T) {
	tab := GHDistributed(Config{Trials: 5})
	if len(tab.Rows) != len(ghShapes) {
		t.Fatalf("rows = %d, want %d", len(tab.Rows), len(ghShapes))
	}
	for i, row := range tab.Rows {
		if row[3] != "0" {
			t.Errorf("row %d (%s): %s level mismatches", i, row[0], row[3])
		}
	}
}

// TestGHFig5SetMatchesGraph pins the two forms of the Fig. 5 scenario
// to each other: the adapter graph and the bare set must produce the
// same Definition 4 assignment.
func TestGHFig5SetMatchesGraph(t *testing.T) {
	m, s := Fig5Set()
	if s.NodeFaults() != 4 {
		t.Fatalf("Fig5Set faults = %d", s.NodeFaults())
	}
	as := core.Compute(s, core.Options{})
	g := Fig5Graph()
	gas := g.FaultSet()
	if gas.NodeFaults() != s.NodeFaults() {
		t.Fatal("fault counts differ")
	}
	want := core.Compute(gas, core.Options{})
	for a := 0; a < m.Nodes(); a++ {
		id := topo.NodeID(a)
		if as.Level(id) != want.Level(id) {
			t.Errorf("level(%s): set %d vs graph %d", m.Format(id), as.Level(id), want.Level(id))
		}
	}
	if got := as.Level(m.MustParse("110")); got != 1 {
		t.Errorf("S(110) = %d, want 1 (paper)", got)
	}
	_ = faults.Connected(s) // the Fig. 5 cube stays connected; exercised for coverage
}
