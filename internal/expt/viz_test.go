package expt

import (
	"bytes"
	"strings"
	"testing"

	"repro/internal/core"
	"repro/internal/faults"
	"repro/internal/topo"
)

func TestRenderLevelMapFig4(t *testing.T) {
	as := core.Compute(Fig4Set(), core.Options{})
	var buf bytes.Buffer
	RenderLevelMap(&buf, as)
	out := buf.String()
	for _, want := range []string{
		"X",    // faulty marker
		"*4",   // safe node
		"!0/1", // N2 node 1000: public 0, own 1
		"!0/2", // N2 node 1001: public 0, own 2
		"Gray order",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("level map missing %q:\n%s", want, out)
		}
	}
	// 4 rows of cells plus headers/footers.
	if lines := strings.Count(out, "\n"); lines < 8 {
		t.Errorf("map too short: %d lines", lines)
	}
}

func TestRenderLevelMapOddDimension(t *testing.T) {
	// n = 5 splits into a 2-bit column code and 3-bit row code:
	// 8 data rows of 4 cells each, all safe in a fault-free cube.
	as := core.Compute(faults.NewSet(topo.MustCube(5)), core.Options{})
	var buf bytes.Buffer
	RenderLevelMap(&buf, as)
	out := buf.String()
	if got := strings.Count(out, "*5"); got != 32 {
		t.Errorf("fault-free 5-cube should show 32 safe cells, got %d:\n%s", got, out)
	}
}

func TestRenderRouteDelivered(t *testing.T) {
	as := core.Compute(Fig1Set(), core.Options{})
	c := as.Cube()
	rt := core.NewRouter(as, nil)
	r := rt.Unicast(c.MustParse("1110"), c.MustParse("0001"))
	var buf bytes.Buffer
	RenderRoute(&buf, as, r)
	out := buf.String()
	for _, want := range []string{"condition=C1", "outcome=optimal", "hop 4", "preferred"} {
		if !strings.Contains(out, want) {
			t.Errorf("route render missing %q:\n%s", want, out)
		}
	}
}

func TestRenderRouteAborted(t *testing.T) {
	as := core.Compute(Fig3Set(), core.Options{})
	c := as.Cube()
	rt := core.NewRouter(as, nil)
	r := rt.Unicast(c.MustParse("0111"), c.MustParse("1110"))
	var buf bytes.Buffer
	RenderRoute(&buf, as, r)
	if !strings.Contains(buf.String(), "aborted at the source") {
		t.Errorf("abort render wrong:\n%s", buf.String())
	}
}
