package expt

import (
	"bytes"
	"flag"
	"os"
	"path/filepath"
	"testing"
)

// The deterministic figure tables (no Monte-Carlo input) are pinned as
// golden files: any change to level computation, routing, or rendering
// shows up as a readable diff. Regenerate after an intentional change:
//
//	go test ./internal/expt -run TestGolden -update
var update = flag.Bool("update", false, "rewrite golden files")

func TestGoldenFigures(t *testing.T) {
	cases := []struct {
		name string
		tab  *Table
	}{
		{"fig1", Fig1()},
		{"table1", Table1()},
		{"fig3", Fig3()},
		{"fig4", Fig4()},
		{"fig5", Fig5()},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			var buf bytes.Buffer
			tc.tab.Render(&buf)
			path := filepath.Join("testdata", tc.name+".golden")
			if *update {
				if err := os.MkdirAll("testdata", 0o755); err != nil {
					t.Fatal(err)
				}
				if err := os.WriteFile(path, buf.Bytes(), 0o644); err != nil {
					t.Fatal(err)
				}
				return
			}
			want, err := os.ReadFile(path)
			if err != nil {
				t.Fatalf("missing golden file (run with -update): %v", err)
			}
			if !bytes.Equal(buf.Bytes(), want) {
				t.Errorf("output differs from %s:\n--- got ---\n%s\n--- want ---\n%s",
					path, buf.String(), want)
			}
		})
	}
}

func TestGoldenCSV(t *testing.T) {
	var buf bytes.Buffer
	Fig1().CSV(&buf)
	path := filepath.Join("testdata", "fig1_csv.golden")
	if *update {
		if err := os.WriteFile(path, buf.Bytes(), 0o644); err != nil {
			t.Fatal(err)
		}
		return
	}
	want, err := os.ReadFile(path)
	if err != nil {
		t.Fatalf("missing golden file (run with -update): %v", err)
	}
	if !bytes.Equal(buf.Bytes(), want) {
		t.Errorf("CSV output differs from %s:\n%s", path, buf.String())
	}
}
