package expt

import (
	"fmt"

	"repro/internal/diagnose"
	"repro/internal/faults"
	"repro/internal/stats"
	"repro/internal/topo"
)

// DiagnoseSweep (E21) measures the PMC syndrome decoder against ground
// truth across fault-set sizes and adversary policies: every trial
// injects a uniform random node-fault set, collects the full self-test
// syndrome under the adversary, decodes it, and scores the verdict.
// Within the diagnosability bound the exact-rate column must read
// 1.000 for every adversary — that is the paper-level guarantee the
// decoder differential pins — while past the bound the worst-case
// adversaries (invert, stealth) must be ambiguous every time and the
// benign ones may still identify a consistent within-bound explanation
// (the {v} ∪ N(v) blind spot, docs/DIAGNOSIS.md).
func DiagnoseSweep(cfg Config) *Table {
	cfg = cfg.withDefaults(60)
	t := &Table{
		ID:    "E21",
		Title: "PMC syndrome diagnosis vs. ground truth",
		Header: []string{"shape", "bound", "|F|", "adversary", "trials",
			"identified", "exact", "ambiguous", "avg tests", "avg branches"},
	}
	shapes := []struct {
		name string
		tp   topo.Topology
	}{
		{"Q6", topo.MustCube(6)},
		{"GH(2x3x2)", topo.MustMixed(2, 3, 2)},
	}
	for si, s := range shapes {
		bound := diagnose.Diagnosability(s.tp)
		for _, k := range []int{bound / 2, bound, bound + 2} {
			for ai, adv := range diagnose.Adversaries() {
				rng := stats.NewRNG(cfg.Seed + uint64(si*1000+k*10+ai))
				identified, exact, ambiguous := 0, 0, 0
				tests, branches := 0, 0
				for trial := 0; trial < cfg.Trials; trial++ {
					set := faults.NewSet(s.tp)
					for _, a := range rng.Sample(s.tp.Nodes(), k) {
						if err := set.FailNode(topo.NodeID(a)); err != nil {
							panic(err)
						}
					}
					syn := diagnose.Collect(set, diagnose.CollectOptions{
						Seed:      cfg.Seed + uint64(trial),
						Adversary: adv,
					})
					diag := diagnose.Decode(syn, diagnose.Options{})
					tests += diag.Stats.Tests
					branches += diag.Stats.Branches
					switch diag.Verdict {
					case diagnose.VerdictIdentified:
						identified++
						if exactMatch(diag.Faulty, set) {
							exact++
						}
					case diagnose.VerdictAmbiguous:
						ambiguous++
					}
					if k <= bound && diag.Verdict != diagnose.VerdictIdentified {
						panic(fmt.Sprintf("E21: %s |F|=%d <= bound %d decoded %s under %s",
							s.name, k, bound, diag.Verdict, adv))
					}
				}
				t.AddRow(s.name, bound, k, string(adv), cfg.Trials,
					ratio(identified, cfg.Trials), ratio(exact, cfg.Trials),
					ratio(ambiguous, cfg.Trials),
					float64(tests)/float64(cfg.Trials),
					float64(branches)/float64(cfg.Trials))
			}
		}
	}
	t.Note("exact = identified AND the decoded set equals the injected one; within the bound it must be 1.000 for every adversary")
	t.Note("beyond the bound, invert/stealth decode ambiguous; truthful/slander/random may still identify a consistent within-bound set")
	return t
}

// exactMatch reports whether the decoded faulty list equals the
// injected fault set exactly.
func exactMatch(decoded []topo.NodeID, set *faults.Set) bool {
	truth := set.FaultyNodes()
	if len(decoded) != len(truth) {
		return false
	}
	seen := make(map[topo.NodeID]bool, len(truth))
	for _, a := range truth {
		seen[a] = true
	}
	for _, a := range decoded {
		if !seen[a] {
			return false
		}
	}
	return true
}

func ratio(n, total int) float64 { return float64(n) / float64(total) }
