package expt

import (
	"repro/internal/baseline"
	"repro/internal/core"
	"repro/internal/faults"
	"repro/internal/stats"
	"repro/internal/topo"
)

// Config tunes the Monte-Carlo sweeps. The zero value is filled with the
// defaults used for EXPERIMENTS.md; tests use smaller trial counts.
type Config struct {
	Seed   uint64
	Trials int
}

func (c Config) withDefaults(trials int) Config {
	if c.Seed == 0 {
		c.Seed = 19950701 // ICPP 1995
	}
	if c.Trials == 0 {
		c.Trials = trials
	}
	return c
}

// Fig2 (E2) regenerates Fig. 2: the average number of GS information-
// exchange rounds for seven-cubes under 0..maxFaults uniform random
// faults. The paper's claim: when the number of faults is below the
// dimension, the average is under 2, far below the worst case n-1.
func Fig2(cfg Config) *Table {
	cfg = cfg.withDefaults(1000)
	const n = 7
	c := topo.MustCube(n)
	t := &Table{
		ID:     "E2",
		Title:  "Fig. 2 — average GS rounds for seven-cubes vs. number of faults",
		Header: []string{"faults", "avg rounds", "ci95", "max", "worst case (n-1)"},
	}
	rng := stats.NewRNG(cfg.Seed)
	for f := 0; f <= 32; f += 2 {
		var acc stats.Accumulator
		maxSeen := 0
		for trial := 0; trial < cfg.Trials; trial++ {
			s := faults.NewSet(c)
			if err := faults.InjectUniform(s, rng, f); err != nil {
				panic(err)
			}
			as := core.Compute(s, core.Options{})
			acc.Add(float64(as.Rounds()))
			if as.Rounds() > maxSeen {
				maxSeen = as.Rounds()
			}
		}
		t.AddRow(f, acc.Mean(), acc.CI95(), maxSeen, n-1)
	}
	t.Note("%d trials per point, uniform random fault placement, seed %d", cfg.Trials, cfg.Seed)
	t.Note("paper claim: faults < 7 => average rounds < 2")
	return t
}

// RoundsComparison (E4) compares the stabilization rounds of GS against
// the Lee-Hayes and Wu-Fernandez status fixpoints across dimensions and
// fault loads. GS is bounded by n-1; the binary definitions are O(n^2)
// in the worst case and measurably slower on clustered faults.
func RoundsComparison(cfg Config) *Table {
	cfg = cfg.withDefaults(300)
	t := &Table{
		ID:     "E4",
		Title:  "Section 2.3 — status-identification rounds: GS vs. Lee-Hayes vs. Wu-Fernandez",
		Header: []string{"n", "faults", "GS avg", "GS max", "LH avg", "LH max", "WF avg", "WF max"},
	}
	rng := stats.NewRNG(cfg.Seed + 4)
	for _, n := range []int{5, 6, 7, 8} {
		c := topo.MustCube(n)
		for _, f := range []int{n / 2, n, 2 * n, 4 * n} {
			var gs, lh, wf stats.Accumulator
			gsMax, lhMax, wfMax := 0, 0, 0
			for trial := 0; trial < cfg.Trials; trial++ {
				s := faults.NewSet(c)
				// Half the trials use clustered faults: the adversarial
				// distribution for wave propagation.
				if trial%2 == 0 {
					if err := faults.InjectUniform(s, rng, f); err != nil {
						panic(err)
					}
				} else {
					if err := faults.InjectClustered(s, rng, f, min(n, 4)); err != nil {
						panic(err)
					}
				}
				as := core.Compute(s, core.Options{})
				l := baseline.LeeHayes(s)
				w := baseline.WuFernandez(s)
				gs.Add(float64(as.Rounds()))
				lh.Add(float64(l.Rounds()))
				wf.Add(float64(w.Rounds()))
				gsMax = maxInt(gsMax, as.Rounds())
				lhMax = maxInt(lhMax, l.Rounds())
				wfMax = maxInt(wfMax, w.Rounds())
			}
			t.AddRow(n, f, gs.Mean(), gsMax, lh.Mean(), lhMax, wf.Mean(), wfMax)
		}
	}
	t.Note("GS is bounded by n-1 (Corollary); LH/WF have O(n^2) worst cases")
	t.Note("%d trials per row (uniform and clustered mixed), seed %d", cfg.Trials, cfg.Seed+4)
	return t
}

// SafeSetSizes (E3 sweep) measures the average size of the three safe
// sets as faults grow, demonstrating the inclusion chain LH ⊆ WF ⊆ SL
// and how quickly the binary definitions collapse.
func SafeSetSizes(cfg Config) *Table {
	cfg = cfg.withDefaults(500)
	const n = 7
	c := topo.MustCube(n)
	t := &Table{
		ID:     "E3b",
		Title:  "Safe-set sizes vs. faults (7-cube): safety-level vs. Wu-Fernandez vs. Lee-Hayes",
		Header: []string{"faults", "SL safe avg", "WF safe avg", "LH safe avg", "inclusion violations"},
	}
	rng := stats.NewRNG(cfg.Seed + 3)
	for _, f := range []int{0, 2, 4, 6, 8, 12, 16, 24, 32} {
		var sl, wf, lh stats.Accumulator
		violations := 0
		for trial := 0; trial < cfg.Trials; trial++ {
			s := faults.NewSet(c)
			if err := faults.InjectUniform(s, rng, f); err != nil {
				panic(err)
			}
			as := core.Compute(s, core.Options{})
			w := baseline.WuFernandez(s)
			l := baseline.LeeHayes(s)
			sl.Add(float64(len(as.SafeSet())))
			wf.Add(float64(w.SafeCount()))
			lh.Add(float64(l.SafeCount()))
			if !l.ContainedIn(w) {
				violations++
			}
			for _, a := range w.SafeSet() {
				if as.Level(a) != n {
					violations++
					break
				}
			}
		}
		t.AddRow(f, sl.Mean(), wf.Mean(), lh.Mean(), violations)
	}
	t.Note("inclusion chain LH ⊆ WF ⊆ {S=n} must never be violated")
	return t
}

// GuaranteeResult carries the aggregate of one Guarantee sweep row; the
// bench harness asserts on it.
type GuaranteeResult struct {
	N          int
	Faults     int
	Attempts   int
	Failures   int
	Optimal    int
	Suboptimal int
}

// Guarantee (E6) validates Theorem 3 + Property 2 empirically: with
// fewer than n faults the unicast never fails and delivers in H or H+2.
func Guarantee(cfg Config) (*Table, []GuaranteeResult) {
	cfg = cfg.withDefaults(300)
	t := &Table{
		ID:     "E6",
		Title:  "Theorem 3 / Property 2 — unicast admission with faults < n",
		Header: []string{"n", "faults", "attempts", "failures", "optimal %", "suboptimal %", "avg len - H"},
	}
	rng := stats.NewRNG(cfg.Seed + 6)
	var results []GuaranteeResult
	for _, n := range []int{4, 6, 8, 10} {
		c := topo.MustCube(n)
		for _, f := range []int{n / 2, n - 1} {
			res := GuaranteeResult{N: n, Faults: f}
			var stretch stats.Accumulator
			for trial := 0; trial < cfg.Trials; trial++ {
				s := faults.NewSet(c)
				if err := faults.InjectUniform(s, rng, f); err != nil {
					panic(err)
				}
				rt := core.NewRouter(core.Compute(s, core.Options{}), nil)
				for pair := 0; pair < 10; pair++ {
					src := topo.NodeID(rng.Intn(c.Nodes()))
					dst := topo.NodeID(rng.Intn(c.Nodes()))
					if s.NodeFaulty(src) || s.NodeFaulty(dst) || src == dst {
						continue
					}
					res.Attempts++
					r := rt.Unicast(src, dst)
					switch r.Outcome {
					case core.Optimal:
						res.Optimal++
					case core.Suboptimal:
						res.Suboptimal++
					default:
						res.Failures++
					}
					if r.Outcome != core.Failure {
						stretch.Add(float64(r.Len() - r.Hamming))
					}
				}
			}
			t.AddRow(res.N, res.Faults, res.Attempts, res.Failures,
				pct(res.Optimal, res.Attempts), pct(res.Suboptimal, res.Attempts), stretch.Mean())
			results = append(results, res)
		}
	}
	t.Note("failures must be exactly 0 below n faults; delivered length is H or H+2")
	return t, results
}

// Theorem4 (E7) builds disconnected cubes and verifies that the binary
// safe-node sets are empty (so LH/Chiu-Wu are inapplicable) while the
// safety-level router keeps routing inside components and detects every
// cross-partition request at the source.
func Theorem4(cfg Config) *Table {
	cfg = cfg.withDefaults(200)
	t := &Table{
		ID:    "E7",
		Title: "Theorem 4 — disconnected hypercubes",
		Header: []string{"n", "trials", "LH safe", "WF safe", "cross-partition detected %",
			"in-component delivered %"},
	}
	rng := stats.NewRNG(cfg.Seed + 7)
	for _, n := range []int{4, 5, 6, 7} {
		c := topo.MustCube(n)
		lhTotal, wfTotal := 0, 0
		crossDetected, crossTotal := 0, 0
		inDelivered, inTotal := 0, 0
		for trial := 0; trial < cfg.Trials; trial++ {
			s := faults.NewSet(c)
			victim := topo.NodeID(rng.Intn(c.Nodes()))
			if trial%2 == 0 {
				if err := faults.InjectIsolating(s, victim); err != nil {
					panic(err)
				}
			} else {
				if err := faults.InjectIsolatingSubcube(s, victim, 1+rng.Intn(2)); err != nil {
					panic(err)
				}
			}
			if faults.Connected(s) {
				continue
			}
			lhTotal += baseline.LeeHayes(s).SafeCount()
			wfTotal += baseline.WuFernandez(s).SafeCount()
			labels, _ := faults.Components(s)
			rt := core.NewRouter(core.Compute(s, core.Options{}), nil)
			for pair := 0; pair < 20; pair++ {
				src := topo.NodeID(rng.Intn(c.Nodes()))
				dst := topo.NodeID(rng.Intn(c.Nodes()))
				if s.NodeFaulty(src) || s.NodeFaulty(dst) || src == dst {
					continue
				}
				r := rt.Unicast(src, dst)
				if labels[src] != labels[dst] {
					crossTotal++
					if r.Outcome == core.Failure && r.Err == nil {
						crossDetected++
					}
				} else {
					inTotal++
					if r.Outcome != core.Failure {
						inDelivered++
					}
				}
			}
		}
		t.AddRow(n, cfg.Trials, lhTotal, wfTotal, pct(crossDetected, crossTotal), pct(inDelivered, inTotal))
	}
	t.Note("LH/WF safe counts must be 0 (Theorem 4); every cross-partition unicast must abort at the source")
	t.Note("in-component delivery is not guaranteed in heavily-faulted partitions (n or more faults)")
	return t
}

// Compare (E10) runs the head-to-head router comparison: safety-level
// unicasting vs. the four baselines, measuring applicability, delivery,
// optimality and traffic across fault loads.
func Compare(cfg Config) *Table {
	cfg = cfg.withDefaults(400)
	const n = 7
	c := topo.MustCube(n)
	t := &Table{
		ID:    "E10",
		Title: "Router comparison on 7-cubes (delivery % / optimal % / mean stretch)",
		Header: []string{"faults", "scheme", "admitted %", "delivered %", "optimal %",
			"within H+2 %", "avg stretch", "avg traffic"},
	}
	rng := stats.NewRNG(cfg.Seed + 10)
	for _, f := range []int{2, 6, 12, 20, 32} {
		type agg struct {
			admitted, delivered, optimal, within, attempts int
			stretch, traffic                               stats.Accumulator
		}
		schemes := []string{"safety-level", "lee-hayes", "chiu-wu", "chen-shin-dfs",
			"gordon-stout-sidetrack", "free-dimensions"}
		aggs := make(map[string]*agg, len(schemes))
		for _, sc := range schemes {
			aggs[sc] = &agg{}
		}
		for trial := 0; trial < cfg.Trials; trial++ {
			s := faults.NewSet(c)
			if err := faults.InjectUniform(s, rng, f); err != nil {
				panic(err)
			}
			slr := core.NewRouter(core.Compute(s, core.Options{}), nil)
			routers := []baseline.Router{
				baseline.NewLeeHayesRouter(s),
				baseline.NewChiuWuRouter(s),
				baseline.NewDFSRouter(s),
				baseline.NewSidetrackRouter(s, rng.Split(uint64(trial))),
				baseline.NewFreeDimRouter(s),
			}
			for pair := 0; pair < 10; pair++ {
				src := topo.NodeID(rng.Intn(c.Nodes()))
				dst := topo.NodeID(rng.Intn(c.Nodes()))
				if s.NodeFaulty(src) || s.NodeFaulty(dst) || src == dst {
					continue
				}
				h := topo.Hamming(src, dst)

				a := aggs["safety-level"]
				a.attempts++
				r := slr.Unicast(src, dst)
				if r.Outcome != core.Failure {
					a.admitted++
					a.delivered++
					if r.Len() == h {
						a.optimal++
					}
					if r.Len() <= h+2 {
						a.within++
					}
					a.stretch.Add(float64(r.Len() - h))
					a.traffic.Add(float64(r.Len()))
				}
				for _, brt := range routers {
					a := aggs[brt.Name()]
					a.attempts++
					res := brt.Route(src, dst)
					if res.Admitted {
						a.admitted++
					}
					if res.Delivered {
						a.delivered++
						if res.Hops == h {
							a.optimal++
						}
						if res.Hops <= h+2 {
							a.within++
						}
						a.stretch.Add(float64(res.Hops - h))
						a.traffic.Add(float64(res.Hops))
					}
				}
			}
		}
		for _, sc := range schemes {
			a := aggs[sc]
			t.AddRow(f, sc, pct(a.admitted, a.attempts), pct(a.delivered, a.attempts),
				pct(a.optimal, a.attempts), pct(a.within, a.delivered),
				a.stretch.Mean(), a.traffic.Mean())
		}
	}
	t.Note("optimal %% counts delivery in exactly H hops (of attempts); within H+2 %% is of delivered")
	t.Note("safety-level aborts unadmitted unicasts, so its delivered %% drops at heavy loads while every")
	t.Note("delivery stays within H+2; DFS trades unbounded path length for maximum reachability")
	return t
}

func pct(a, b int) float64 {
	if b == 0 {
		return 0
	}
	return 100 * float64(a) / float64(b)
}

func maxInt(a, b int) int {
	if a > b {
		return a
	}
	return b
}

func min(a, b int) int {
	if a < b {
		return a
	}
	return b
}

// Fig2Distribution (E2b) extends Fig. 2 along the axis the paper's
// definition emphasizes: the safety level approximates "the number and
// distribution of faulty nodes", so clustered faults must depress
// levels (and lengthen GS convergence) far more than the same number of
// uniform faults.
func Fig2Distribution(cfg Config) *Table {
	cfg = cfg.withDefaults(500)
	const n = 7
	c := topo.MustCube(n)
	t := &Table{
		ID:    "E2b",
		Title: "Fault distribution sensitivity (7-cube): uniform vs. clustered",
		Header: []string{"faults", "placement", "avg rounds", "avg safe nodes",
			"avg min nonfaulty level"},
	}
	rng := stats.NewRNG(cfg.Seed + 2)
	for _, f := range []int{4, 8, 12, 16} {
		for _, clustered := range []bool{false, true} {
			var rounds, safe, minLevel stats.Accumulator
			for trial := 0; trial < cfg.Trials; trial++ {
				s := faults.NewSet(c)
				var err error
				if clustered {
					err = faults.InjectClustered(s, rng, f, 4)
				} else {
					err = faults.InjectUniform(s, rng, f)
				}
				if err != nil {
					panic(err)
				}
				as := core.Compute(s, core.Options{})
				rounds.Add(float64(as.Rounds()))
				safe.Add(float64(len(as.SafeSet())))
				min := n
				for a := 0; a < c.Nodes(); a++ {
					id := topo.NodeID(a)
					if !s.NodeFaulty(id) && as.Level(id) < min {
						min = as.Level(id)
					}
				}
				minLevel.Add(float64(min))
			}
			label := "uniform"
			if clustered {
				label = "clustered (4-subcube)"
			}
			t.AddRow(f, label, rounds.Mean(), safe.Mean(), minLevel.Mean())
		}
	}
	t.Note("same fault counts, different placement: partial clusters depress neighborhoods far")
	t.Note("more than uniform faults (min level 1.06 vs 2.56 at 4 faults), but a COMPLETELY dead")
	t.Note("subcube is invisible — at 16 faults the whole 4-subcube dies and every survivor has")
	t.Note("at most one faulty neighbor, so all levels stay n: distribution, not count, decides")
	return t
}
