package expt

import (
	"repro/internal/faults"
	"repro/internal/ghcube"
	"repro/internal/topo"
)

// The canonical figure scenarios of the paper, shared by the harness,
// the CLI tools and the examples.

// Fig1Set returns the Fig. 1 cube: Q4 with faults 0011, 0100, 0110, 1001.
func Fig1Set() *faults.Set {
	c := topo.MustCube(4)
	s := faults.NewSet(c)
	mustFail(s, c, "0011", "0100", "0110", "1001")
	return s
}

// Fig3Set returns the Fig. 3 disconnected cube: Q4 with faults 0110,
// 1010, 1100, 1111 (node 1110 is cut off).
func Fig3Set() *faults.Set {
	c := topo.MustCube(4)
	s := faults.NewSet(c)
	mustFail(s, c, "0110", "1010", "1100", "1111")
	return s
}

// Fig4Set returns the Section 4.1 cube: Q4 with node faults 0000, 0100,
// 1100, 1110 and the faulty link (1000, 1001). The node-fault set is not
// spelled out in the text; this one reproduces every stated fact of
// Fig. 4 (see internal/core's egs tests).
func Fig4Set() *faults.Set {
	c := topo.MustCube(4)
	s := faults.NewSet(c)
	mustFail(s, c, "0000", "0100", "1100", "1110")
	if err := s.FailLink(c.MustParse("1000"), c.MustParse("1001")); err != nil {
		panic(err)
	}
	return s
}

// Fig5Graph returns the Section 4.2 generalized hypercube GH(2x3x2) with
// faults 011, 100, 111, 121 — the fault set consistent with the figure's
// stated facts (four safe nodes, S(110) = 1, the worked route).
func Fig5Graph() *ghcube.Graph {
	g := ghcube.MustNew(2, 3, 2)
	if err := g.FailNodes(g.MustParseAll("011", "100", "111", "121")...); err != nil {
		panic(err)
	}
	return g
}

// Fig5Set returns the Fig. 5 scenario as a bare topology + fault set —
// the form the generic core, the distributed engine and the GH sweeps
// consume directly.
func Fig5Set() (*topo.Mixed, *faults.Set) {
	m := topo.MustMixed(2, 3, 2)
	s := faults.NewSet(m)
	for _, a := range []string{"011", "100", "111", "121"} {
		if err := s.FailNode(m.MustParse(a)); err != nil {
			panic(err)
		}
	}
	return m, s
}

// Section23Set returns the Section 2.3 comparison cube: Q4 with faults
// 0000, 0110, 1111.
func Section23Set() *faults.Set {
	c := topo.MustCube(4)
	s := faults.NewSet(c)
	mustFail(s, c, "0000", "0110", "1111")
	return s
}

// Property2Set returns the Property 2 example: Q4 with faults 0000,
// 0110, 1101.
func Property2Set() *faults.Set {
	c := topo.MustCube(4)
	s := faults.NewSet(c)
	mustFail(s, c, "0000", "0110", "1101")
	return s
}

func mustFail(s *faults.Set, c *topo.Cube, addrs ...string) {
	if err := s.FailNodes(c.MustParseAll(addrs...)...); err != nil {
		panic(err)
	}
}
