package expt

import (
	"repro/internal/core"
	"repro/internal/faults"
	"repro/internal/simnet"
	"repro/internal/stats"
	"repro/internal/topo"
)

// Distributed (E11) measures the real communication cost of the
// protocols on the goroutine-per-node engine: GS messages per directed
// live link per round, stabilization rounds, and hop-by-hop unicast
// delivery, across cube sizes.
func Distributed(cfg Config) *Table {
	cfg = cfg.withDefaults(20)
	t := &Table{
		ID:    "E11",
		Title: "Distributed execution cost (goroutine-per-node engine)",
		Header: []string{"n", "faults", "GS rounds (stable)", "GS messages", "msgs/link/round",
			"unicasts", "delivered", "avg hops"},
	}
	rng := stats.NewRNG(cfg.Seed + 11)
	for _, n := range []int{4, 6, 8} {
		c := topo.MustCube(n)
		for _, f := range []int{n / 2, n - 1, 2 * n} {
			var rounds, msgs, perLink, hops stats.Accumulator
			unicasts, delivered := 0, 0
			for trial := 0; trial < cfg.Trials; trial++ {
				s := faults.NewSet(c)
				if err := faults.InjectUniform(s, rng, f); err != nil {
					panic(err)
				}
				e := simnet.New(s)
				e.RunGS(0)
				rounds.Add(float64(e.StableRound()))
				sent := e.MessagesSent()
				msgs.Add(float64(sent))
				liveDirected := 0
				for a := 0; a < c.Nodes(); a++ {
					if s.NodeFaulty(topo.NodeID(a)) {
						continue
					}
					for i := 0; i < n; i++ {
						if !s.NodeFaulty(c.Neighbor(topo.NodeID(a), i)) {
							liveDirected++
						}
					}
				}
				if liveDirected > 0 {
					perLink.Add(float64(sent) / float64(liveDirected) / float64(n-1))
				}
				for pair := 0; pair < 5; pair++ {
					src := topo.NodeID(rng.Intn(c.Nodes()))
					dst := topo.NodeID(rng.Intn(c.Nodes()))
					if s.NodeFaulty(src) || s.NodeFaulty(dst) || src == dst {
						continue
					}
					unicasts++
					res := e.Unicast(src, dst)
					if res.Outcome != core.Failure {
						delivered++
						hops.Add(float64(res.Hops))
					}
				}
				e.Close()
			}
			t.AddRow(n, f, rounds.Mean(), msgs.Mean(), perLink.Mean(), unicasts, delivered, hops.Mean())
		}
	}
	t.Note("msgs/link/round must be 1.0 for node-fault-only cubes: one level per directed live link per round")
	t.Note("the engine runs the paper's D = n-1 rounds; 'GS rounds (stable)' is when levels stopped changing")
	return t
}

// UpdateStrategies (E12b) compares the paper's three level-maintenance
// strategies (Section 2.2) on a fault timeline: periodic GS every step
// versus state-change-driven GS only when a node dies. The measure is
// total messages over the timeline; correctness (levels equal the
// sequential fixpoint at the end) is asserted by the harness tests.
func UpdateStrategies(cfg Config) *Table {
	cfg = cfg.withDefaults(10)
	const n = 6
	c := topo.MustCube(n)
	t := &Table{
		ID:     "E12b",
		Title:  "Update strategies over a fault timeline (6-cube, 8 steps, one failure every 4th step)",
		Header: []string{"strategy", "GS phases", "total messages", "final levels correct"},
	}
	rng := stats.NewRNG(cfg.Seed + 12)

	run := func(periodic bool) (phases, msgs int, correct bool) {
		s := faults.NewSet(c)
		if err := faults.InjectUniform(s, rng, 3); err != nil {
			panic(err)
		}
		e := simnet.New(s)
		defer e.Close()
		e.RunGS(0)
		phases = 1
		for step := 1; step <= 8; step++ {
			changed := false
			if step%4 == 0 {
				// A random live node fails.
				for {
					v := topo.NodeID(rng.Intn(c.Nodes()))
					if !s.NodeFaulty(v) {
						if err := e.KillNode(v); err != nil {
							panic(err)
						}
						changed = true
						break
					}
				}
			}
			if periodic || changed {
				e.RunGS(0)
				phases++
			}
		}
		msgs = e.MessagesSent()
		want := core.Compute(s, core.Options{})
		correct = true
		got := e.Levels()
		for a := 0; a < c.Nodes(); a++ {
			if got[a] != want.Level(topo.NodeID(a)) {
				correct = false
			}
		}
		return phases, msgs, correct
	}

	var pPhases, pMsgs, sPhases, sMsgs stats.Accumulator
	pOK, sOK := true, true
	for trial := 0; trial < cfg.Trials; trial++ {
		ph, ms, ok := run(true)
		pPhases.Add(float64(ph))
		pMsgs.Add(float64(ms))
		pOK = pOK && ok
		ph, ms, ok = run(false)
		sPhases.Add(float64(ph))
		sMsgs.Add(float64(ms))
		sOK = sOK && ok
	}
	t.AddRow("periodic (every step)", pPhases.Mean(), pMsgs.Mean(), pOK)
	t.AddRow("state-change-driven", sPhases.Mean(), sMsgs.Mean(), sOK)
	t.Note("both end with correct levels; state-change-driven spends messages only when faults occur")
	return t
}
