// Package expt is the experiment harness: it regenerates every figure
// and quantitative claim of the paper as a formatted table (see
// DESIGN.md's experiment index; EXPERIMENTS.md records the outputs,
// E1–E17). Later experiments extend past the paper into the engineering
// layers — churn repair (E16) and serving-path tail latency (E17, run
// through cmd/slload rather than this package).
//
// Key invariant: each runner is deterministic given its seed (all
// randomness flows through stats.RNG), so the committed tables can be
// regenerated bit-for-bit by `go run ./cmd/slreport`.
package expt
