package chaos

import (
	"fmt"
	"testing"

	"repro/internal/core"
	"repro/internal/faults"
	"repro/internal/topo"
)

// TestChurnChaosSmallShapes runs the full harness — bit-identity,
// Theorem-2 realization over every node, and routed-path legality — on
// shapes small enough for the exhaustive quadratic oracle.
func TestChurnChaosSmallShapes(t *testing.T) {
	shapes := []topo.Topology{
		topo.MustCube(4),
		topo.MustCube(5),
		topo.MustMixed(2, 3, 2),
		topo.MustMixed(3, 3, 3),
	}
	for si, tp := range shapes {
		for _, links := range []bool{false, true} {
			name := fmt.Sprintf("shape%d/links=%v", si, links)
			t.Run(name, func(t *testing.T) {
				rep, err := Run(tp, 60, Options{
					Churn:    faults.ChurnOptions{Links: links},
					Unicasts: 4,
					Seed:     uint64(200 + si),
				})
				if err != nil {
					t.Fatal(err)
				}
				if rep.Routes == 0 {
					t.Fatal("harness routed nothing")
				}
			})
		}
	}
}

// TestChurnChaosAcceptanceQ10 is the issue's acceptance run: a 10-cube
// under a 200-step random fail/recover schedule. The harness already
// enforces bit-identical repaired-vs-cold tables at every step; on top,
// the total repair work must undercut cold recomputation by at least 3x.
// The oracle check samples 16 sources per step (it is quadratic in cube
// size); the small-shape test above covers the exhaustive sweep.
func TestChurnChaosAcceptanceQ10(t *testing.T) {
	rep, err := Run(topo.MustCube(10), 200, Options{
		Churn:         faults.ChurnOptions{Links: true},
		OracleSources: 16,
		Unicasts:      2,
		Seed:          10,
	})
	if err != nil {
		t.Fatal(err)
	}
	if rep.Steps != 200 {
		t.Fatalf("schedule ran %d steps, want 200", rep.Steps)
	}
	if rep.RepairEvals*3 > rep.ColdEvals {
		t.Fatalf("repair evals %d not 3x below cold evals %d (ratio %.2f)",
			rep.RepairEvals, rep.ColdEvals, float64(rep.ColdEvals)/float64(rep.RepairEvals))
	}
	t.Logf("Q10/200 steps: repair evals %d, cold evals %d (%.1fx), repair rounds %d, cold rounds %d, dirty %d",
		rep.RepairEvals, rep.ColdEvals, float64(rep.ColdEvals)/float64(rep.RepairEvals),
		rep.RepairRounds, rep.ColdRounds, rep.DirtyNodes)
}

// TestChurnChaosParallelWorkers runs the harness with the worker-pool
// repair; under -race this doubles as the data-race check on the
// chunked frontier evaluation.
func TestChurnChaosParallelWorkers(t *testing.T) {
	rep, err := Run(topo.MustCube(7), 80, Options{
		Core:          core.Options{Workers: 4},
		Churn:         faults.ChurnOptions{Links: true},
		OracleSources: 16,
		Unicasts:      2,
		Seed:          77,
	})
	if err != nil {
		t.Fatal(err)
	}
	if rep.Steps != 80 {
		t.Fatalf("schedule ran %d steps, want 80", rep.Steps)
	}
}

// TestChaosRejectsTruncatedOptions pins the harness contract that
// repair composes only with full-convergence options.
func TestChaosRejectsTruncatedOptions(t *testing.T) {
	_, err := Run(topo.MustCube(4), 10, Options{
		Core: core.Options{MaxRounds: 1},
		Seed: 3,
	})
	if err == nil {
		t.Fatal("harness accepted MaxRounds truncation")
	}
}
