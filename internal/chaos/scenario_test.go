package chaos

import (
	"fmt"
	"testing"

	"repro/internal/core"
	"repro/internal/faults"
	"repro/internal/topo"
)

// scenarioEvents builds the deterministic schedule for one profile,
// failing the test on generator errors.
func scenarioEvents(t *testing.T, tp topo.Topology, p faults.ScenarioProfile, seed uint64) []faults.ChurnEvent {
	t.Helper()
	events, err := faults.ScenarioSchedule(tp, p, seed, faults.ScenarioOptions{Waves: 2})
	if err != nil {
		t.Fatalf("%s: %v", p, err)
	}
	return events
}

// TestScenarioChurnChaosAllProfiles runs the full differential —
// repaired ≡ cold bit-for-bit, exhaustive Theorem-2 oracle realization,
// routed-path legality — at every event of every correlated-fault
// profile on Q4 and Q5. This is the issue's core acceptance criterion:
// the chaos harness holds under subcube outages, dimension cuts,
// rolling waves, flapping, and partitions, not only uniform churn —
// including the partition steps where the cube is disconnected and
// every safe set is empty (Theorem 4).
func TestScenarioChurnChaosAllProfiles(t *testing.T) {
	for _, dim := range []int{4, 5} {
		tp := topo.MustCube(dim)
		for _, p := range faults.ScenarioProfiles() {
			t.Run(fmt.Sprintf("Q%d/%s", dim, p), func(t *testing.T) {
				events := scenarioEvents(t, tp, p, uint64(300+dim))
				rep, err := RunEvents(tp, events, Options{
					Unicasts: 4,
					Seed:     uint64(300 + dim),
				})
				if err != nil {
					t.Fatal(err)
				}
				if rep.Steps != len(events) {
					t.Fatalf("ran %d steps, want %d", rep.Steps, len(events))
				}
				if rep.Routes == 0 {
					t.Fatal("harness routed nothing")
				}
				// Partition waves must actually exercise the
				// unreachable path: cross-partition unicasts fail.
				if p == faults.ScenarioPartition && rep.Failures == 0 {
					t.Error("partition scenario produced no routing failures")
				}
			})
		}
	}
}

// TestScenarioChurnChaosParallelEquality replays every profile twice —
// sequential and with the 4-worker sharded repair — and requires not
// just that both pass the differential but that their work accounting
// is identical, pinning the bit-identical Workers contract on the
// correlated shapes. Under -race (the CI churn job) this doubles as the
// data-race check for scenario replays.
func TestScenarioChurnChaosParallelEquality(t *testing.T) {
	tp := topo.MustCube(5)
	for _, p := range faults.ScenarioProfiles() {
		t.Run(string(p), func(t *testing.T) {
			events := scenarioEvents(t, tp, p, 41)
			seq, err := RunEvents(tp, events, Options{Unicasts: 2, Seed: 41})
			if err != nil {
				t.Fatalf("sequential: %v", err)
			}
			par, err := RunEvents(tp, events, Options{
				Core:     core.Options{Workers: 4},
				Unicasts: 2,
				Seed:     41,
			})
			if err != nil {
				t.Fatalf("workers=4: %v", err)
			}
			if *seq != *par {
				t.Errorf("parallel run diverged from sequential:\nseq %+v\npar %+v", seq, par)
			}
		})
	}
}

// TestRunEventsRejectsEmptySchedule pins the explicit-schedule entry
// point's contract.
func TestRunEventsRejectsEmptySchedule(t *testing.T) {
	if _, err := RunEvents(topo.MustCube(4), nil, Options{Seed: 1}); err == nil {
		t.Fatal("RunEvents accepted an empty schedule")
	}
}
