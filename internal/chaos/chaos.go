package chaos

import (
	"fmt"

	"repro/internal/core"
	"repro/internal/faults"
	"repro/internal/oracle"
	"repro/internal/stats"
	"repro/internal/topo"
)

// Options configure one churn run.
type Options struct {
	// Core options are used for both the incremental repair and the cold
	// reference computation. MaxRounds must be 0 (repair refuses
	// truncated convergence).
	Core core.Options
	// Churn shapes the generated schedule (faults.ChurnSchedule).
	Churn faults.ChurnOptions
	// OracleSources >0 samples that many BFS sources per step for the
	// Theorem-2 realization check instead of sweeping all nodes — the
	// check is quadratic, and sampling keeps big-cube runs affordable
	// without weakening any sampled source's assertion. 0 checks all.
	OracleSources int
	// Unicasts is the number of random routed unicasts per step whose
	// paths are checked for legality. 0 disables routing checks.
	Unicasts int
	// Seed drives both the schedule and the sampling, so a run is fully
	// reproducible from (topology, steps, Options).
	Seed uint64
}

// Report aggregates the work statistics of a completed churn run; the
// E16 table and BENCH_3.json are built from these numbers.
type Report struct {
	Steps int
	// RepairEvals and ColdEvals total the NODE_STATUS evaluations spent
	// by incremental repair vs. cold recomputation over the whole run —
	// the work ratio the issue's acceptance criterion bounds.
	RepairEvals int
	ColdEvals   int
	// RepairRounds and ColdRounds total the iteration rounds.
	RepairRounds int
	ColdRounds   int
	// DirtyNodes totals the dirty-frontier slots the repairs processed.
	DirtyNodes int
	// Routing outcome tallies (only when Options.Unicasts > 0).
	Routes, Optimal, Suboptimal, Failures int
}

// Run generates a steps-long churn schedule over tp and replays it,
// repairing incrementally after every event and asserting the three
// contracts above. It returns the aggregate report, or an error
// describing the first violation (step, event, node) — an error here
// means a real bug in the level machinery, never a statistical fluke.
func Run(tp topo.Topology, steps int, opts Options) (*Report, error) {
	events := faults.ChurnSchedule(tp, opts.Seed, steps, opts.Churn)
	if len(events) == 0 {
		return nil, fmt.Errorf("chaos: empty schedule for %d steps", steps)
	}
	return RunEvents(tp, events, opts)
}

// RunEvents replays an explicit event schedule — a ChurnSchedule, a
// correlated-fault ScenarioSchedule, or a monitor declaration journal —
// with the same per-event differential Run applies: incremental repair
// vs cold recompute bit-for-bit, Theorem-2 oracle realization, and
// routed-path legality. Options.Churn is ignored (the schedule is
// already fixed); Seed still drives oracle sampling and unicast draws.
func RunEvents(tp topo.Topology, events []faults.ChurnEvent, opts Options) (*Report, error) {
	if len(events) == 0 {
		return nil, fmt.Errorf("chaos: empty event schedule")
	}
	set := faults.NewSet(tp)
	prev := core.Compute(set, opts.Core)
	gen := set.Generation()
	rng := stats.NewRNG(opts.Seed ^ 0x9e3779b97f4a7c15)
	rep := &Report{Steps: len(events)}

	for i, ev := range events {
		if err := set.Apply(ev); err != nil {
			return nil, fmt.Errorf("chaos: step %d apply %v: %v", i, ev, err)
		}
		delta, ok := set.Since(gen)
		if !ok {
			return nil, fmt.Errorf("chaos: step %d: journal gap after one event", i)
		}
		repaired, ok := core.RepairLevels(prev, set, delta, opts.Core)
		if !ok {
			return nil, fmt.Errorf("chaos: step %d (%v): repair refused", i, ev)
		}
		cold := core.Compute(set, opts.Core)

		// (a) bit-for-bit equality with the cold fixpoint.
		for a := 0; a < tp.Nodes(); a++ {
			id := topo.NodeID(a)
			if repaired.Level(id) != cold.Level(id) || repaired.OwnLevel(id) != cold.OwnLevel(id) {
				return nil, fmt.Errorf(
					"chaos: step %d (%v): node %s repaired %d/%d, cold %d/%d",
					i, ev, tp.Format(id), repaired.Level(id), repaired.OwnLevel(id),
					cold.Level(id), cold.OwnLevel(id))
			}
		}

		// (b) every claimed level is realized by actual paths.
		if err := oracle.CheckLevelsFrom(repaired, sampleSources(tp, rng, opts.OracleSources)); err != nil {
			return nil, fmt.Errorf("chaos: step %d (%v): %v", i, ev, err)
		}

		// (c) routed paths are legal under the current fault state.
		if opts.Unicasts > 0 {
			if err := checkUnicasts(set, repaired, rng, opts.Unicasts, rep); err != nil {
				return nil, fmt.Errorf("chaos: step %d (%v): %v", i, ev, err)
			}
		}

		rep.RepairEvals += repaired.Evals()
		rep.ColdEvals += cold.Evals()
		rep.RepairRounds += repaired.Rounds()
		rep.ColdRounds += cold.Rounds()
		rep.DirtyNodes += repaired.DirtyNodes()
		prev, gen = repaired, set.Generation()
	}
	return rep, nil
}

// sampleSources draws count distinct BFS sources (nil = all, the
// CheckLevelsFrom convention).
func sampleSources(tp topo.Topology, rng *stats.RNG, count int) []topo.NodeID {
	if count <= 0 || count >= tp.Nodes() {
		return nil
	}
	out := make([]topo.NodeID, 0, count)
	for _, a := range rng.Sample(tp.Nodes(), count) {
		out = append(out, topo.NodeID(a))
	}
	return out
}

// checkUnicasts routes count random source/destination pairs on the
// repaired assignment and judges every produced path with the oracle.
func checkUnicasts(set *faults.Set, as *core.Assignment, rng *stats.RNG, count int, rep *Report) error {
	tp := set.Topology()
	router := core.NewRouter(as, nil)
	for u := 0; u < count; u++ {
		src, ok := randomNonfaulty(set, rng)
		if !ok {
			return nil // everything faulty; nothing to route
		}
		dst, ok := randomNonfaulty(set, rng)
		if !ok || src == dst {
			continue
		}
		r := router.Unicast(src, dst)
		rep.Routes++
		switch r.Outcome {
		case core.Optimal:
			rep.Optimal++
		case core.Suboptimal:
			rep.Suboptimal++
		case core.Failure:
			rep.Failures++
			continue
		default:
			return fmt.Errorf("unicast %s->%s: unclassified outcome %v",
				tp.Format(src), tp.Format(dst), r.Outcome)
		}
		if err := oracle.CheckPath(set, r.Path); err != nil {
			return fmt.Errorf("unicast %s->%s: %v", tp.Format(src), tp.Format(dst), err)
		}
		if r.Outcome == core.Optimal && r.Len() != tp.Distance(src, dst) {
			return fmt.Errorf("unicast %s->%s: optimal route of length %d, distance %d",
				tp.Format(src), tp.Format(dst), r.Len(), tp.Distance(src, dst))
		}
	}
	return nil
}

// randomNonfaulty draws a uniformly random nonfaulty node, or ok=false
// when none exists.
func randomNonfaulty(set *faults.Set, rng *stats.RNG) (topo.NodeID, bool) {
	tp := set.Topology()
	alive := tp.Nodes() - set.NodeFaults()
	if alive <= 0 {
		return 0, false
	}
	k := rng.Intn(alive)
	for a := 0; a < tp.Nodes(); a++ {
		if set.NodeFaulty(topo.NodeID(a)) {
			continue
		}
		if k == 0 {
			return topo.NodeID(a), true
		}
		k--
	}
	return 0, false
}
