// Package chaos drives the safety-level machinery through randomized
// fault churn and convicts it on the spot when any of its contracts
// breaks. At every step of a deterministic fail/recover schedule the
// harness asserts, against the independent oracle package:
//
//	(a) the incrementally repaired level table is bit-identical to a
//	    cold GS/EGS recomputation (the Theorem 1 uniqueness of the
//	    fixpoint) — public and own views both;
//	(b) every Theorem-2 guarantee a level claims is realized by an
//	    actual fault-free path of optimal length;
//	(c) routed unicast paths never traverse a currently-faulty node or
//	    link.
//
// Key invariant: the schedule is reproducible — the same seed replays
// the same churn, so any conviction is a deterministic repro case, not
// a flake. The harness is pure library code so both the test suite and
// the E16 experiment tables run the same loop.
package chaos
