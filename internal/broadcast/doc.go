// Package broadcast implements safety-level-guided broadcasting in
// faulty hypercubes — the companion application from which the safety
// level concept originates (the paper's reference [9]: J. Wu, "Safety
// Level — An Efficient Mechanism for Achieving Reliable Broadcasting in
// Hypercubes", IEEE TC 44(5), 1995). The unicasting paper reproduced by
// this repository cites it as the source of Definition 1; this package
// is the natural extension feature and is validated empirically (the
// text of [9] is not part of the reproduced paper, so the exact
// algorithm here is a faithful-in-spirit reconstruction, documented and
// measured rather than claimed).
//
// Algorithm (spanning binomial tree with level-ranked subtree
// assignment): a node holding the message and a set D of dimensions to
// cover sorts D by the safety level of the neighbor along each
// dimension, ascending. The neighbor at rank i — level S_i — receives
// responsibility for the subtree spanned by the i lower-ranked
// dimensions, so the safest neighbors take the largest subtrees. When
// the source is safe, its sorted full sequence dominates (0, 1, ...,
// n-1), hence the rank-i child has level at least i: exactly the
// strength needed for a subtree of dimension i. Faulty neighbors sink
// to the lowest ranks where subtrees are empty; a delivery to a faulty
// node is skipped entirely (fail-stop nodes need no message).
//
// Key invariant: the guarantee is empirical, not theorem-backed here —
// deep in the recursion a child's *restricted* neighbor sequence can
// fall short of its rank, leaving nodes uncovered. Result records
// exactly which nonfaulty, reachable nodes were missed; WithRepair
// patches each by a safety-level unicast from the source, so the
// combined operation covers every reachable node whenever the unicast
// admission (Theorem 2) holds.
package broadcast
