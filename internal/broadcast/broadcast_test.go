package broadcast

import (
	"testing"

	"repro/internal/core"
	"repro/internal/faults"
	"repro/internal/stats"
	"repro/internal/topo"
)

func assignment(t testing.TB, s *faults.Set) *core.Assignment {
	t.Helper()
	return core.Compute(s, core.Options{})
}

func TestFaultFreeBroadcastIsOptimal(t *testing.T) {
	// No faults: the tree is a perfect spanning binomial tree — every
	// node exactly once, N-1 messages, depth n.
	for n := 1; n <= 8; n++ {
		c := topo.MustCube(n)
		s := faults.NewSet(c)
		b := New(assignment(t, s), false)
		res := b.Broadcast(0)
		if len(res.Depth) != c.Nodes() {
			t.Fatalf("n=%d: covered %d of %d", n, len(res.Depth), c.Nodes())
		}
		if res.Messages != c.Nodes()-1 {
			t.Errorf("n=%d: %d messages, want %d", n, res.Messages, c.Nodes()-1)
		}
		if res.Rounds != n {
			t.Errorf("n=%d: depth %d, want %d", n, res.Rounds, n)
		}
		if len(res.Missed) != 0 || !res.Covered() {
			t.Errorf("n=%d: missed %v", n, res.Missed)
		}
		// Each node's depth equals its Hamming distance from the
		// source in the fault-free binomial tree.
		for a, d := range res.Depth {
			if d != topo.Hamming(0, a) {
				t.Fatalf("n=%d: depth of %d is %d, want %d", n, a, d, topo.Hamming(0, a))
			}
		}
	}
}

func TestBroadcastFromFaultySource(t *testing.T) {
	c := topo.MustCube(4)
	s := faults.NewSet(c)
	s.FailNode(5)
	b := New(assignment(t, s), false)
	res := b.Broadcast(5)
	if len(res.Depth) != 0 || res.Messages != 0 {
		t.Error("broadcast from a faulty source should be a no-op")
	}
}

func TestFig1BroadcastFromSafeSource(t *testing.T) {
	c := topo.MustCube(4)
	s := faults.NewSet(c)
	if err := s.FailNodes(c.MustParseAll("0011", "0100", "0110", "1001")...); err != nil {
		t.Fatal(err)
	}
	as := assignment(t, s)
	b := New(as, false)
	for _, src := range as.SafeSet() {
		res := b.Broadcast(src)
		if len(res.Missed) != 0 {
			t.Errorf("safe source %s missed %v", c.Format(src), res.Missed)
		}
		// 12 nonfaulty nodes in the component.
		if len(res.Depth) != 12 {
			t.Errorf("safe source %s covered %d, want 12", c.Format(src), len(res.Depth))
		}
		// Never more messages than live directed links.
		if res.Messages > 12*4 {
			t.Errorf("message count %d implausible", res.Messages)
		}
	}
}

func TestExhaustiveQ4SafeSourceCoverage(t *testing.T) {
	// Empirical coverage claim: for every fault set of size <= 3 in Q4
	// and every SAFE source, the tree alone reaches every reachable
	// nonfaulty node. This is the broadcast analogue of the exhaustive
	// unicast suite; any counterexample would fail loudly and the
	// package documentation would need weakening.
	c := topo.MustCube(4)
	nodes := c.Nodes()
	var idx [3]int
	for k := 0; k <= 3; k++ {
		comb := make([]int, k)
		for i := range comb {
			comb[i] = i
		}
		for {
			s := faults.NewSet(c)
			for _, v := range comb {
				s.FailNode(topo.NodeID(v))
			}
			as := core.Compute(s, core.Options{})
			b := New(as, false)
			for _, src := range as.SafeSet() {
				res := b.Broadcast(src)
				if len(res.Missed) != 0 {
					t.Fatalf("faults %s, safe source %s: missed %v",
						s, c.Format(src), res.Missed)
				}
			}
			i := k - 1
			for i >= 0 && comb[i] == nodes-k+i {
				i--
			}
			if i < 0 {
				break
			}
			comb[i]++
			for j := i + 1; j < k; j++ {
				comb[j] = comb[j-1] + 1
			}
		}
	}
	_ = idx
}

func TestRandomizedSafeSourceCoverage(t *testing.T) {
	// Larger cubes, random faults below n: every safe source covers.
	rng := stats.NewRNG(112233)
	for n := 5; n <= 8; n++ {
		c := topo.MustCube(n)
		for trial := 0; trial < 40; trial++ {
			s := faults.NewSet(c)
			faults.InjectUniform(s, rng, rng.Intn(n))
			as := core.Compute(s, core.Options{})
			safe := as.SafeSet()
			if len(safe) == 0 {
				continue
			}
			b := New(as, false)
			src := safe[rng.Intn(len(safe))]
			res := b.Broadcast(src)
			if len(res.Missed) != 0 {
				t.Fatalf("n=%d faults %s safe source %s: missed %d nodes",
					n, s, c.Format(src), len(res.Missed))
			}
		}
	}
}

func TestUnsafeSourceRepair(t *testing.T) {
	// From an unsafe source the tree may miss nodes; repair must close
	// the gap whenever unicast admission holds (always below n faults).
	rng := stats.NewRNG(445566)
	c := topo.MustCube(6)
	sawMiss := false
	for trial := 0; trial < 80; trial++ {
		s := faults.NewSet(c)
		faults.InjectUniform(s, rng, rng.Intn(6))
		as := core.Compute(s, core.Options{})
		b := New(as, true)
		src := topo.NodeID(rng.Intn(c.Nodes()))
		if s.NodeFaulty(src) {
			continue
		}
		res := b.Broadcast(src)
		if len(res.Missed) > 0 {
			sawMiss = true
		}
		if !res.Covered() {
			t.Fatalf("faults %s source %s: repair left %d of %d missed",
				s, c.Format(src), len(res.Missed)-len(res.Repaired), len(res.Missed))
		}
		// Total coverage: every reachable nonfaulty node has a depth.
		dist := faults.Distances(s, src)
		for a, d := range dist {
			if d >= 0 {
				if _, ok := res.Depth[topo.NodeID(a)]; !ok {
					t.Fatalf("node %d reachable but not covered", a)
				}
			}
		}
	}
	_ = sawMiss // misses are possible but not required; coverage is the contract
}

func TestBroadcastRespectsFailStop(t *testing.T) {
	// Faulty nodes receive nothing and relay nothing.
	c := topo.MustCube(5)
	s := faults.NewSet(c)
	rng := stats.NewRNG(8)
	faults.InjectUniform(s, rng, 4)
	b := New(assignment(t, s), true)
	res := b.Broadcast(pickHealthy(t, s, rng))
	for a := range res.Depth {
		if s.NodeFaulty(a) {
			t.Errorf("faulty node %s received the broadcast", c.Format(a))
		}
	}
}

func TestBroadcastWithLinkFaults(t *testing.T) {
	// Dead links are never crossed; N2 nodes are still reachable and
	// covered (directly or via repair).
	c := topo.MustCube(4)
	s := faults.NewSet(c)
	if err := s.FailNodes(c.MustParseAll("0000", "0100", "1100", "1110")...); err != nil {
		t.Fatal(err)
	}
	if err := s.FailLink(c.MustParse("1000"), c.MustParse("1001")); err != nil {
		t.Fatal(err)
	}
	as := assignment(t, s)
	b := New(as, true)
	res := b.Broadcast(c.MustParse("1111"))
	dist := faults.Distances(s, c.MustParse("1111"))
	for a, d := range dist {
		if d < 0 {
			continue
		}
		if _, ok := res.Depth[topo.NodeID(a)]; !ok {
			t.Errorf("reachable node %s not covered", c.Format(topo.NodeID(a)))
		}
	}
}

func TestDisconnectedBroadcastCoversComponentOnly(t *testing.T) {
	// Fig. 3 cube: a broadcast from the big component covers exactly
	// that component; the island is out of reach and NOT counted as
	// missed (Missed only lists reachable nodes).
	c := topo.MustCube(4)
	s := faults.NewSet(c)
	s.FailNodes(c.MustParseAll("0110", "1010", "1100", "1111")...)
	b := New(assignment(t, s), true)
	res := b.Broadcast(c.MustParse("0101"))
	if _, ok := res.Depth[c.MustParse("1110")]; ok {
		t.Error("island node cannot receive the broadcast")
	}
	if !res.Covered() {
		t.Errorf("component broadcast should cover: missed %v repaired %v",
			res.Missed, res.Repaired)
	}
	// 11 nonfaulty nodes in the big component.
	if len(res.Depth) != 11 {
		t.Errorf("covered %d nodes, want 11", len(res.Depth))
	}
}

func pickHealthy(t testing.TB, s *faults.Set, rng *stats.RNG) topo.NodeID {
	t.Helper()
	for {
		a := topo.NodeID(rng.Intn(s.Cube().Nodes()))
		if !s.NodeFaulty(a) {
			return a
		}
	}
}
