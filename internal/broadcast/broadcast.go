package broadcast

import (
	"sort"

	"repro/internal/core"
	"repro/internal/faults"
	"repro/internal/topo"
)

// Result reports one broadcast.
type Result struct {
	Source topo.NodeID
	// Depth[a] is the tree depth at which nonfaulty node a received its
	// (first) copy; the source has depth 0. Nodes absent from the map
	// did not receive the message from the tree.
	Depth map[topo.NodeID]int
	// Messages is the number of point-to-point sends the tree used.
	Messages int
	// Rounds is the maximum delivery depth — broadcast latency in the
	// paper's store-and-forward cost model.
	Rounds int
	// Missed lists nonfaulty nodes in the source's component that the
	// tree did not reach (ascending). Empty for every safe source
	// observed in the test suite; never empty guarantees are claimed.
	Missed []topo.NodeID
	// Repaired lists missed nodes that the unicast fallback delivered
	// (only populated when repair is enabled).
	Repaired []topo.NodeID
	// RepairMessages counts the extra hops the fallback unicasts used.
	RepairMessages int
}

// Covered reports whether every nonfaulty node of the source's
// component got the message (tree plus repair).
func (r *Result) Covered() bool {
	return len(r.Missed) == len(r.Repaired)
}

// Broadcaster executes broadcasts over one safety-level assignment.
type Broadcaster struct {
	as     *core.Assignment
	repair bool
}

// New returns a Broadcaster over the assignment. With repair enabled,
// nodes the tree misses are delivered by individual safety-level
// unicasts from the source.
func New(as *core.Assignment, repair bool) *Broadcaster {
	return &Broadcaster{as: as, repair: repair}
}

// task is one pending subtree expansion.
type task struct {
	node  topo.NodeID
	dims  []int
	depth int
}

// Broadcast floods the message from s through the level-ranked binomial
// tree. The source must be nonfaulty.
func (b *Broadcaster) Broadcast(s topo.NodeID) *Result {
	c := b.as.Cube()
	set := b.as.Faults()
	res := &Result{
		Source: s,
		Depth:  make(map[topo.NodeID]int, c.Nodes()),
	}
	if set.NodeFaulty(s) {
		return res
	}
	res.Depth[s] = 0

	all := make([]int, c.Dim())
	for i := range all {
		all[i] = i
	}
	queue := []task{{node: s, dims: all, depth: 0}}
	for len(queue) > 0 {
		t := queue[0]
		queue = queue[1:]
		if len(t.dims) == 0 {
			continue
		}
		// Rank the subtree's dimensions by the level of the neighbor
		// along each, ascending; ties by dimension for determinism.
		ranked := append([]int(nil), t.dims...)
		sort.Slice(ranked, func(i, j int) bool {
			li := b.neighborLevel(t.node, ranked[i])
			lj := b.neighborLevel(t.node, ranked[j])
			if li != lj {
				return li < lj
			}
			return ranked[i] < ranked[j]
		})
		for i := len(ranked) - 1; i >= 0; i-- {
			child := c.Neighbor(t.node, ranked[i])
			if set.NodeFaulty(child) || set.LinkFaulty(t.node, child) {
				// Fail-stop child: its assigned subtree (the i lower
				// ranks) is what Missed accounting will surface.
				continue
			}
			res.Messages++
			if _, seen := res.Depth[child]; !seen {
				res.Depth[child] = t.depth + 1
				if t.depth+1 > res.Rounds {
					res.Rounds = t.depth + 1
				}
			}
			queue = append(queue, task{
				node:  child,
				dims:  append([]int(nil), ranked[:i]...),
				depth: t.depth + 1,
			})
		}
	}

	b.accountMisses(res)
	if b.repair && len(res.Missed) > 0 {
		b.runRepair(res)
	}
	return res
}

// neighborLevel mirrors the router's view: the far end of a faulty link
// is observed as level 0.
func (b *Broadcaster) neighborLevel(a topo.NodeID, dim int) int {
	c := b.as.Cube()
	nb := c.Neighbor(a, dim)
	if b.as.Faults().LinkFaulty(a, nb) {
		return 0
	}
	return b.as.Level(nb)
}

// accountMisses fills Missed with the reachable nonfaulty nodes the
// tree did not cover.
func (b *Broadcaster) accountMisses(res *Result) {
	set := b.as.Faults()
	dist := faults.Distances(set, res.Source)
	for a, d := range dist {
		id := topo.NodeID(a)
		if d < 0 {
			continue // faulty or in another component
		}
		if _, ok := res.Depth[id]; !ok {
			res.Missed = append(res.Missed, id)
		}
	}
}

// runRepair delivers each missed node by a safety-level unicast.
func (b *Broadcaster) runRepair(res *Result) {
	rt := core.NewRouter(b.as, nil)
	for _, m := range res.Missed {
		r := rt.Unicast(res.Source, m)
		if r.Outcome == core.Failure {
			continue
		}
		res.Repaired = append(res.Repaired, m)
		res.RepairMessages += r.Len()
		if d := r.Len(); d > res.Rounds {
			res.Rounds = d
		}
		res.Depth[m] = r.Len()
	}
}
