package monitor

import (
	"context"
	"fmt"
	"io"
	"net/http"
	"sync"

	"repro/internal/core"
	"repro/internal/faults"
	"repro/internal/simnet"
	"repro/internal/topo"
)

// SetProber probes a ground-truth fault set directly: a faulty node
// misses, a healthy one answers. This is the harness prober — the
// injected truth the monitor's declarations are verified against. Mu,
// when set, guards Set against a concurrently mutating injector.
type SetProber struct {
	Set *faults.Set
	Mu  *sync.Mutex
}

// Probe implements Prober.
func (p SetProber) Probe(_ context.Context, node int) error {
	if p.Mu != nil {
		p.Mu.Lock()
		defer p.Mu.Unlock()
	}
	if p.Set.NodeFaulty(topo.NodeID(node)) {
		return fmt.Errorf("monitor: node %d down", node)
	}
	return nil
}

// EngineProber probes through the simnet exchange path: a self-unicast
// puts a real message through the node's inbox and back, so the probe
// exercises the same goroutine and channels that carry traffic. A dead
// node fails immediately at injection (the engine refuses a faulty
// source); a wedged one would fail to echo.
//
// Engine methods are only safe between phases, so the caller must not
// run concurrent unicasts on the same engine during a sweep — the
// monitor's serialized Tick respects that by construction.
type EngineProber struct {
	Eng *simnet.Engine
}

// Probe implements Prober.
func (p EngineProber) Probe(_ context.Context, node int) error {
	res := p.Eng.Unicast(topo.NodeID(node), topo.NodeID(node))
	if res.Err != nil {
		return res.Err
	}
	if res.Outcome == core.Failure {
		return fmt.Errorf("monitor: probe of node %d not delivered", node)
	}
	return nil
}

// HTTPProber probes a remote server's per-node health endpoint
// (slserve's /probe): any 2xx answer is healthy, anything else — a
// non-2xx status, a transport error, a context timeout — is a miss.
type HTTPProber struct {
	// URL renders the probe URL for a node.
	URL func(node int) string
	// Client defaults to http.DefaultClient.
	Client *http.Client
}

// Probe implements Prober.
func (p HTTPProber) Probe(ctx context.Context, node int) error {
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, p.URL(node), nil)
	if err != nil {
		return err
	}
	client := p.Client
	if client == nil {
		client = http.DefaultClient
	}
	resp, err := client.Do(req)
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	io.Copy(io.Discard, io.LimitReader(resp.Body, 4096))
	if resp.StatusCode/100 != 2 {
		return fmt.Errorf("monitor: probe of node %d: %s", node, resp.Status)
	}
	return nil
}
