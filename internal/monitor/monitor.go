package monitor

import (
	"context"
	"fmt"
	"sort"
	"sync"
	"time"

	"repro/internal/faults"
	"repro/internal/obs"
	"repro/internal/topo"
)

// Prober answers one health probe: nil means the node responded,
// non-nil means the probe missed (dead, unreachable, or errored).
type Prober interface {
	Probe(ctx context.Context, node int) error
}

// ProbeFunc adapts a function to the Prober interface.
type ProbeFunc func(ctx context.Context, node int) error

// Probe implements Prober.
func (f ProbeFunc) Probe(ctx context.Context, node int) error { return f(ctx, node) }

// Applier receives fault declarations. It is structurally identical to
// the loadgen targets' Fault method, so a loadgen.LocalTarget (the
// serving engine's apply path) or loadgen.HTTPTarget (/fault) plugs in
// unchanged.
type Applier interface {
	Fault(ctx context.Context, node int, down bool) error
}

// ApplyFunc adapts a function to the Applier interface.
type ApplyFunc func(ctx context.Context, node int, down bool) error

// Fault implements Applier.
func (f ApplyFunc) Fault(ctx context.Context, node int, down bool) error {
	return f(ctx, node, down)
}

// State is a node's position in the monitor state machine.
type State uint8

// The four observable states. Suspect and Recovering are Healthy and
// Declared with a partial streak; Suppressed is Declared with the flap
// brake engaged.
const (
	StateHealthy State = iota
	StateSuspect
	StateDeclared
	StateSuppressed
)

// String names the state for status surfaces.
func (s State) String() string {
	switch s {
	case StateHealthy:
		return "healthy"
	case StateSuspect:
		return "suspect"
	case StateDeclared:
		return "declared"
	case StateSuppressed:
		return "suppressed"
	}
	return fmt.Sprintf("state(%d)", uint8(s))
}

// Options configure a Monitor. The zero value of every field except
// Nodes picks a sane default.
type Options struct {
	// Nodes is the number of nodes to sweep (probed as 0..Nodes-1).
	Nodes int
	// FailK declares a node faulty after this many consecutive missed
	// probes (0 means 3). One missed probe is noise; k in a row is an
	// outage.
	FailK int
	// RecoverK un-declares after this many consecutive successful
	// probes (0 means 2) — the recovery hysteresis that keeps a
	// single lucky probe from resurrecting a dying node.
	RecoverK int
	// Interval is the Run sweep cadence (0 means 1s). Tick ignores it;
	// tests drive Tick directly on a fake clock.
	Interval time.Duration
	// FlapWindow and FlapMax engage the flap brake: a node declared
	// FlapMax times within FlapWindow is suppressed (0 mean 20*Interval
	// and 3). A suppressed node stays declared until it has been
	// stably healthy for FlapHold on top of the RecoverK streak
	// (0 means FlapWindow), so a flapping node costs the repair applier
	// two events per window instead of two per flap.
	FlapWindow time.Duration
	FlapMax    int
	FlapHold   time.Duration
	// Now injects the clock (nil means time.Now). Tests substitute a
	// fake so no test sleeps.
	Now func() time.Time
	// Registry receives the monitor_* metrics (nil disables them).
	Registry *obs.Registry
}

// nodeState is the per-node state machine storage.
type nodeState struct {
	declared   bool
	suppressed bool
	// misses / hits are the current consecutive streaks; a miss resets
	// hits and vice versa.
	misses int
	hits   int
	// declares holds recent declaration times, pruned to FlapWindow.
	declares []time.Time
	// healthySince marks the start of the current hit streak while
	// declared; the FlapHold check measures against it.
	healthySince time.Time
}

// Monitor sweeps nodes with a Prober and drives fault declarations
// through an Applier. All methods are safe for concurrent use.
type Monitor struct {
	prober  Prober
	applier Applier
	opts    Options

	mu      sync.Mutex
	nodes   []nodeState
	journal []faults.ChurnEvent

	probes, misses, declarations, undeclarations uint64
	suppressions, applyErrors                    uint64

	mProbes, mMisses, mDeclared, mUndeclared *obs.Counter
	mSuppressed, mApplyErrors                *obs.Counter
	gDeclared                                *obs.Gauge
}

// New builds a Monitor over opts.Nodes nodes. The prober and applier
// are required; the monitor starts with every node assumed healthy and
// does nothing until Tick or Run.
func New(prober Prober, applier Applier, opts Options) (*Monitor, error) {
	if prober == nil || applier == nil {
		return nil, fmt.Errorf("monitor: prober and applier are required")
	}
	if opts.Nodes <= 0 {
		return nil, fmt.Errorf("monitor: Nodes must be positive, got %d", opts.Nodes)
	}
	if opts.FailK <= 0 {
		opts.FailK = 3
	}
	if opts.RecoverK <= 0 {
		opts.RecoverK = 2
	}
	if opts.Interval <= 0 {
		opts.Interval = time.Second
	}
	if opts.FlapWindow <= 0 {
		opts.FlapWindow = 20 * opts.Interval
	}
	if opts.FlapMax <= 0 {
		opts.FlapMax = 3
	}
	if opts.FlapHold <= 0 {
		opts.FlapHold = opts.FlapWindow
	}
	if opts.Now == nil {
		opts.Now = time.Now
	}
	m := &Monitor{
		prober:  prober,
		applier: applier,
		opts:    opts,
		nodes:   make([]nodeState, opts.Nodes),
	}
	reg := opts.Registry
	m.mProbes = reg.Counter(obs.MetricMonitorProbesTotal)
	m.mMisses = reg.Counter(obs.MetricMonitorMissesTotal)
	m.mDeclared = reg.Counter(obs.MetricMonitorDeclaredTotal)
	m.mUndeclared = reg.Counter(obs.MetricMonitorUndeclaredTotal)
	m.mSuppressed = reg.Counter(obs.MetricMonitorFlapSuppressed)
	m.mApplyErrors = reg.Counter(obs.MetricMonitorApplyErrors)
	m.gDeclared = reg.Gauge(obs.MetricMonitorDeclaredNodes)
	return m, nil
}

// TickResult summarizes one probe sweep.
type TickResult struct {
	Probes     int
	Misses     int
	Declared   int // declarations applied this sweep
	Undeclared int // un-declarations applied this sweep
}

// Tick probes every node once and advances the state machines. It is
// the entire control loop of one sweep; Run just calls it on a ticker.
// Apply failures (a full queue, a dead upstream) leave the node's state
// unchanged so the transition retries on the next sweep.
func (m *Monitor) Tick(ctx context.Context) TickResult {
	now := m.opts.Now()
	var res TickResult
	for node := 0; node < m.opts.Nodes; node++ {
		err := m.prober.Probe(ctx, node)
		m.mu.Lock()
		m.probes++
		m.mProbes.Inc()
		res.Probes++
		if err != nil {
			m.misses++
			m.mMisses.Inc()
			res.Misses++
			if m.missOne(ctx, node, now) {
				res.Declared++
			}
		} else if m.hitOne(ctx, node, now) {
			res.Undeclared++
		}
		m.mu.Unlock()
	}
	return res
}

// missOne handles one missed probe under the lock; reports whether the
// node was declared this tick.
func (m *Monitor) missOne(ctx context.Context, node int, now time.Time) bool {
	ns := &m.nodes[node]
	ns.hits = 0
	ns.healthySince = time.Time{}
	if ns.declared {
		return false
	}
	ns.misses++
	if ns.misses < m.opts.FailK {
		return false
	}
	// Declare through the apply path first: if the applier refuses, the
	// node stays (logically) undeclared and the streak retries next
	// sweep — the journal must only record transitions that landed.
	if err := m.applier.Fault(ctx, node, true); err != nil {
		m.applyErrors++
		m.mApplyErrors.Inc()
		return false
	}
	ns.declared = true
	ns.misses = 0
	m.declarations++
	m.mDeclared.Inc()
	m.gDeclared.Add(1)
	m.journal = append(m.journal, faults.ChurnEvent{Kind: faults.DeltaFailNode, A: topo.NodeID(node)})
	// Flap accounting: prune the declare history to the window, record
	// this declaration, and engage the brake when the node has now been
	// declared FlapMax times within the window.
	keep := ns.declares[:0]
	for _, t := range ns.declares {
		if now.Sub(t) < m.opts.FlapWindow {
			keep = append(keep, t)
		}
	}
	ns.declares = append(keep, now)
	if !ns.suppressed && len(ns.declares) >= m.opts.FlapMax {
		ns.suppressed = true
		m.suppressions++
		m.mSuppressed.Inc()
	}
	return true
}

// hitOne handles one successful probe under the lock; reports whether
// the node was un-declared this tick.
func (m *Monitor) hitOne(ctx context.Context, node int, now time.Time) bool {
	ns := &m.nodes[node]
	ns.misses = 0
	if !ns.declared {
		return false
	}
	if ns.hits == 0 {
		ns.healthySince = now
	}
	ns.hits++
	if ns.hits < m.opts.RecoverK {
		return false
	}
	// The flap brake: a suppressed node needs FlapHold of continuous
	// health beyond the hysteresis streak before it may rejoin.
	if ns.suppressed && now.Sub(ns.healthySince) < m.opts.FlapHold {
		return false
	}
	if err := m.applier.Fault(ctx, node, false); err != nil {
		m.applyErrors++
		m.mApplyErrors.Inc()
		return false
	}
	ns.declared = false
	ns.suppressed = false
	ns.hits = 0
	m.undeclarations++
	m.mUndeclared.Inc()
	m.gDeclared.Add(-1)
	m.journal = append(m.journal, faults.ChurnEvent{Kind: faults.DeltaRecoverNode, A: topo.NodeID(node)})
	return true
}

// Run sweeps on Options.Interval until ctx is done. Production entry
// point; tests call Tick directly.
func (m *Monitor) Run(ctx context.Context) {
	t := time.NewTicker(m.opts.Interval)
	defer t.Stop()
	for {
		select {
		case <-ctx.Done():
			return
		case <-t.C:
			m.Tick(ctx)
		}
	}
}

// Journal returns a copy of the declaration journal: the fail/recover
// events the monitor successfully drove through the applier, in order.
// Replaying it into an empty faults.Set reproduces exactly the fault
// view the monitor declared — the idempotent-replay property the tests
// pin.
func (m *Monitor) Journal() []faults.ChurnEvent {
	m.mu.Lock()
	defer m.mu.Unlock()
	return append([]faults.ChurnEvent(nil), m.journal...)
}

// NodeState reports node's current state.
func (m *Monitor) NodeState(node int) State {
	m.mu.Lock()
	defer m.mu.Unlock()
	return m.stateOf(node)
}

// stateOf classifies one node under the lock.
func (m *Monitor) stateOf(node int) State {
	ns := &m.nodes[node]
	switch {
	case ns.declared && ns.suppressed:
		return StateSuppressed
	case ns.declared:
		return StateDeclared
	case ns.misses > 0:
		return StateSuspect
	default:
		return StateHealthy
	}
}

// Status is a point-in-time snapshot for the /monitor surface.
type Status struct {
	Nodes      int   `json:"nodes"`
	Declared   []int `json:"declared"`   // currently declared nodes, ascending
	Suppressed []int `json:"suppressed"` // subset of Declared with the flap brake on
	Suspect    []int `json:"suspect,omitempty"`

	Probes         uint64 `json:"probes"`
	Misses         uint64 `json:"misses"`
	Declarations   uint64 `json:"declarations"`
	Undeclarations uint64 `json:"undeclarations"`
	Suppressions   uint64 `json:"flap_suppressions"`
	ApplyErrors    uint64 `json:"apply_errors"`
	JournalLen     int    `json:"journal_len"`
}

// Status snapshots the monitor.
func (m *Monitor) Status() Status {
	m.mu.Lock()
	defer m.mu.Unlock()
	st := Status{
		Nodes:          m.opts.Nodes,
		Probes:         m.probes,
		Misses:         m.misses,
		Declarations:   m.declarations,
		Undeclarations: m.undeclarations,
		Suppressions:   m.suppressions,
		ApplyErrors:    m.applyErrors,
		JournalLen:     len(m.journal),
	}
	for node := range m.nodes {
		switch m.stateOf(node) {
		case StateDeclared:
			st.Declared = append(st.Declared, node)
		case StateSuppressed:
			st.Declared = append(st.Declared, node)
			st.Suppressed = append(st.Suppressed, node)
		case StateSuspect:
			st.Suspect = append(st.Suspect, node)
		}
	}
	sort.Ints(st.Declared)
	return st
}
