// Package monitor closes the probe -> declare -> repair loop the paper
// leaves out: the safety-level machinery (Definition 1, Section 2)
// assumes fault status is simply known, but a real system has to
// *detect* faults, declare them into the fault journal, and un-declare
// them on recovery without thrashing the repair applier.
//
// The Monitor sweeps every node with a pluggable Prober — the ground
// truth of a test harness, the simnet exchange path (a self-unicast
// through a node's real inbox), or an HTTP /probe endpoint — and runs a
// small per-node state machine:
//
//	Healthy --k misses--> Declared --j hits--> Healthy
//	                       |    ^
//	                       flap suppression (declared FlapMax times
//	                       within FlapWindow => recovery additionally
//	                       requires FlapHold of stable health)
//
// A declaration drives an Applier (the same surface as the serving
// engine's /fault apply path), so the router starts detouring around
// the node as soon as the declaration lands; un-declaration restores
// it. Both transitions append to a journal of faults.ChurnEvents whose
// replay is idempotent against ground-truth injection — the property
// the chaos harness leans on.
//
// Time is injected (Options.Now), so every state-machine test runs on a
// fake clock with explicit Tick calls: no wall-clock sleeps anywhere.
package monitor
