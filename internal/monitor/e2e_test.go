package monitor_test

import (
	"context"
	"testing"
	"time"

	"repro/internal/core"
	"repro/internal/faults"
	"repro/internal/loadgen"
	"repro/internal/monitor"
	"repro/internal/serve"
	"repro/internal/simnet"
	"repro/internal/topo"
)

// TestMonitorServeEndToEnd closes the full loop with deterministic
// seeds and zero wall-clock sleeps: ground-truth faults are injected,
// the monitor detects them after FailK missed probes, declares them
// through the serving engine's apply path (a loadgen.LocalTarget — the
// exact structural surface slserve's /fault uses), the router detours
// around the declared nodes, and recovery un-declares them after the
// hysteresis streak, restoring the optimal route.
func TestMonitorServeEndToEnd(t *testing.T) {
	c := topo.MustCube(4)
	truth := faults.NewSet(c)
	svc, err := serve.New(faults.NewSet(c), serve.Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer svc.Close()
	applier := loadgen.LocalTarget{Svc: svc}

	now := time.Unix(1_700_000_000, 0)
	mon, err := monitor.New(monitor.SetProber{Set: truth}, applier, monitor.Options{
		Nodes: c.Nodes(), FailK: 3, RecoverK: 2,
		Now: func() time.Time { return now },
	})
	if err != nil {
		t.Fatal(err)
	}
	tick := func() monitor.TickResult {
		now = now.Add(time.Second)
		res := mon.Tick(context.Background())
		// The LocalTarget applies through the async coalescing applier;
		// Flush publishes everything the sweep declared before we route.
		svc.Flush()
		return res
	}

	ctx := context.Background()
	src, dst := c.MustParse("0000"), c.MustParse("0011")
	r, err := svc.RouteCtx(ctx, src, dst)
	if err != nil {
		t.Fatal(err)
	}
	if r.Outcome != core.Optimal || r.Len() != 2 {
		t.Fatalf("healthy route: outcome %v len %d, want optimal 2", r.Outcome, r.Len())
	}

	// Kill both minimal intermediates (0001, 0010) in ground truth: the
	// only minimal s->d paths run through them, so once the monitor has
	// declared both, delivery requires a spare-dimension detour.
	victims := c.MustParseAll("0001", "0010")
	for _, v := range victims {
		if err := truth.FailNode(v); err != nil {
			t.Fatal(err)
		}
	}
	for i := 0; i < 2; i++ {
		if res := tick(); res.Declared != 0 {
			t.Fatalf("sweep %d: declared %d nodes before the FailK streak", i, res.Declared)
		}
	}
	if res := tick(); res.Declared != 2 {
		t.Fatalf("third sweep: declared %d nodes, want 2", res.Declared)
	}
	if gen := svc.Current().Generation(); gen != 2 {
		t.Fatalf("served snapshot at generation %d, want 2 (both declarations applied)", gen)
	}

	r, err = svc.RouteCtx(ctx, src, dst)
	if err != nil {
		t.Fatal(err)
	}
	if r.Outcome != core.Suboptimal || r.Len() != 4 {
		t.Fatalf("detour route: outcome %v len %d, want suboptimal 4 (H+2)", r.Outcome, r.Len())
	}
	for _, hop := range r.Path {
		if hop == victims[0] || hop == victims[1] {
			t.Fatalf("detour path %v crosses a declared-faulty node", r.Path)
		}
	}

	// Ground truth recovers; hysteresis holds for one healthy sweep,
	// then the second un-declares both and the optimal route returns.
	for _, v := range victims {
		if err := truth.RecoverNode(v); err != nil {
			t.Fatal(err)
		}
	}
	if res := tick(); res.Undeclared != 0 {
		t.Fatal("un-declared after a single healthy probe (no hysteresis)")
	}
	if res := tick(); res.Undeclared != 2 {
		t.Fatal("second healthy sweep did not un-declare both nodes")
	}
	r, err = svc.RouteCtx(ctx, src, dst)
	if err != nil {
		t.Fatal(err)
	}
	if r.Outcome != core.Optimal || r.Len() != 2 {
		t.Fatalf("post-recovery route: outcome %v len %d, want optimal 2", r.Outcome, r.Len())
	}

	// The journal is exactly the two declarations and two recoveries.
	j := mon.Journal()
	if len(j) != 4 {
		t.Fatalf("journal %v, want 4 events", j)
	}
	replay := faults.NewSet(c)
	for _, ev := range j {
		if err := replay.Apply(ev); err != nil {
			t.Fatal(err)
		}
	}
	if replay.NodeFaults() != 0 {
		t.Fatalf("journal replay leaves %d faults, want 0", replay.NodeFaults())
	}
}

// TestMonitorEngineProber runs the monitor against the message-passing
// engine: probes are real self-unicasts through each node's inbox, so a
// killed node misses and a revived one answers — the in-process
// "exchange path" probe of the issue, with no sleeps (the engine's
// unicasts are synchronous).
func TestMonitorEngineProber(t *testing.T) {
	c := topo.MustCube(3)
	set := faults.NewSet(c)
	eng := simnet.New(set)
	defer eng.Close()

	declared := faults.NewSet(c)
	now := time.Unix(0, 0)
	mon, err := monitor.New(monitor.EngineProber{Eng: eng}, monitor.ApplyFunc(
		func(_ context.Context, node int, down bool) error {
			if down {
				return declared.FailNode(topo.NodeID(node))
			}
			return declared.RecoverNode(topo.NodeID(node))
		}), monitor.Options{
		Nodes: c.Nodes(), FailK: 2, RecoverK: 1,
		Now: func() time.Time { return now },
	})
	if err != nil {
		t.Fatal(err)
	}
	tick := func() monitor.TickResult {
		now = now.Add(time.Second)
		return mon.Tick(context.Background())
	}

	if res := tick(); res.Misses != 0 {
		t.Fatalf("all-alive engine sweep missed %d probes", res.Misses)
	}
	victim := c.MustParse("101")
	if err := eng.KillNode(victim); err != nil {
		t.Fatal(err)
	}
	tick()
	if res := tick(); res.Declared != 1 {
		t.Fatalf("killed node not declared after FailK sweeps: %+v", res)
	}
	if !declared.NodeFaulty(victim) {
		t.Fatal("declaration did not reach the applier")
	}
	if err := eng.ReviveNode(victim); err != nil {
		t.Fatal(err)
	}
	if res := tick(); res.Undeclared != 1 {
		t.Fatalf("revived node not un-declared: %+v", res)
	}
	if declared.NodeFaulty(victim) {
		t.Fatal("applier still shows the node faulty")
	}
}
