package monitor

import (
	"context"
	"errors"
	"fmt"
	"testing"
	"time"

	"repro/internal/faults"
	"repro/internal/obs"
	"repro/internal/stats"
	"repro/internal/topo"
)

// fakeClock drives Options.Now so no test sleeps.
type fakeClock struct{ now time.Time }

func newFakeClock() *fakeClock { return &fakeClock{now: time.Unix(1_000_000, 0)} }

func (c *fakeClock) Now() time.Time          { return c.now }
func (c *fakeClock) advance(d time.Duration) { c.now = c.now.Add(d) }
func (c *fakeClock) tick(m *Monitor) TickResult {
	c.advance(time.Second)
	return m.Tick(context.Background())
}

// setApplier applies declarations to a faults.Set — the monitor's view
// of the world, kept separate from the ground truth it probes.
type setApplier struct {
	set  *faults.Set
	fail error // when non-nil, every apply refuses
}

func (a *setApplier) Fault(_ context.Context, node int, down bool) error {
	if a.fail != nil {
		return a.fail
	}
	if down {
		return a.set.FailNode(topo.NodeID(node))
	}
	return a.set.RecoverNode(topo.NodeID(node))
}

// harness bundles ground truth, declared view, clock and monitor.
type harness struct {
	truth    *faults.Set
	declared *faults.Set
	applier  *setApplier
	clock    *fakeClock
	mon      *Monitor
}

func newHarness(t *testing.T, dim int, opts Options) *harness {
	t.Helper()
	c := topo.MustCube(dim)
	h := &harness{
		truth:    faults.NewSet(c),
		declared: faults.NewSet(c),
		clock:    newFakeClock(),
	}
	h.applier = &setApplier{set: h.declared}
	opts.Nodes = c.Nodes()
	opts.Now = h.clock.Now
	mon, err := New(SetProber{Set: h.truth}, h.applier, opts)
	if err != nil {
		t.Fatal(err)
	}
	h.mon = mon
	return h
}

func TestMonitorKProbeDeclaration(t *testing.T) {
	h := newHarness(t, 4, Options{FailK: 3, RecoverK: 2})
	// Healthy sweep: nothing declared.
	res := h.clock.tick(h.mon)
	if res.Probes != 16 || res.Misses != 0 || res.Declared != 0 {
		t.Fatalf("healthy sweep: %+v", res)
	}
	victim := topo.NodeID(5)
	if err := h.truth.FailNode(victim); err != nil {
		t.Fatal(err)
	}
	// Two missed probes: suspect, not declared — one flaky probe (or
	// two) must not drive the apply path.
	for i := 1; i <= 2; i++ {
		res = h.clock.tick(h.mon)
		if res.Misses != 1 || res.Declared != 0 {
			t.Fatalf("miss %d: %+v", i, res)
		}
		if st := h.mon.NodeState(int(victim)); st != StateSuspect {
			t.Fatalf("miss %d: state %v, want suspect", i, st)
		}
		if h.declared.NodeFaulty(victim) {
			t.Fatalf("declared after only %d misses", i)
		}
	}
	// Third miss: declared through the applier.
	res = h.clock.tick(h.mon)
	if res.Declared != 1 {
		t.Fatalf("third miss: %+v", res)
	}
	if st := h.mon.NodeState(int(victim)); st != StateDeclared {
		t.Fatalf("state %v, want declared", st)
	}
	if !h.declared.NodeFaulty(victim) {
		t.Fatal("applier did not receive the declaration")
	}
	// Further misses while declared do not re-declare.
	res = h.clock.tick(h.mon)
	if res.Declared != 0 {
		t.Fatalf("re-declared an already-declared node: %+v", res)
	}
	if got := h.mon.Status().Declarations; got != 1 {
		t.Fatalf("declarations = %d, want 1", got)
	}
}

func TestMonitorRecoveryHysteresis(t *testing.T) {
	h := newHarness(t, 4, Options{FailK: 1, RecoverK: 3})
	victim := topo.NodeID(9)
	if err := h.truth.FailNode(victim); err != nil {
		t.Fatal(err)
	}
	if res := h.clock.tick(h.mon); res.Declared != 1 {
		t.Fatalf("FailK=1 should declare on the first miss: %+v", res)
	}
	if err := h.truth.RecoverNode(victim); err != nil {
		t.Fatal(err)
	}
	// Two healthy probes: hysteresis holds the declaration.
	for i := 1; i <= 2; i++ {
		if res := h.clock.tick(h.mon); res.Undeclared != 0 {
			t.Fatalf("hit %d: un-declared before the RecoverK streak", i)
		}
		if !h.declared.NodeFaulty(victim) {
			t.Fatalf("hit %d: applier saw a premature recovery", i)
		}
	}
	// A relapse resets the streak entirely.
	if err := h.truth.FailNode(victim); err != nil {
		t.Fatal(err)
	}
	h.clock.tick(h.mon)
	if err := h.truth.RecoverNode(victim); err != nil {
		t.Fatal(err)
	}
	for i := 1; i <= 2; i++ {
		if res := h.clock.tick(h.mon); res.Undeclared != 0 {
			t.Fatalf("post-relapse hit %d: streak did not reset", i)
		}
	}
	if res := h.clock.tick(h.mon); res.Undeclared != 1 {
		t.Fatalf("third consecutive hit should un-declare: %+v", res)
	}
	if h.declared.NodeFaulty(victim) {
		t.Fatal("applier still shows the node faulty after un-declaration")
	}
	if st := h.mon.NodeState(int(victim)); st != StateHealthy {
		t.Fatalf("state %v, want healthy", st)
	}
}

func TestMonitorFlapSuppression(t *testing.T) {
	h := newHarness(t, 3, Options{
		FailK: 1, RecoverK: 1,
		FlapMax:    2,
		FlapWindow: 30 * time.Second,
		FlapHold:   5 * time.Second,
	})
	victim := topo.NodeID(3)
	flap := func() {
		if err := h.truth.FailNode(victim); err != nil {
			t.Fatal(err)
		}
		h.clock.tick(h.mon)
		if err := h.truth.RecoverNode(victim); err != nil {
			t.Fatal(err)
		}
		h.clock.tick(h.mon)
	}
	// First flap: declare + immediate un-declare (no brake yet).
	flap()
	if h.declared.NodeFaulty(victim) {
		t.Fatal("first flap should have fully recovered")
	}
	// Second flap within the window: the brake engages, so the healthy
	// probe no longer un-declares.
	if err := h.truth.FailNode(victim); err != nil {
		t.Fatal(err)
	}
	h.clock.tick(h.mon)
	if st := h.mon.NodeState(int(victim)); st != StateSuppressed {
		t.Fatalf("state %v, want suppressed after %d declares in window", st, 2)
	}
	if err := h.truth.RecoverNode(victim); err != nil {
		t.Fatal(err)
	}
	// Healthy, but held: FlapHold is 5s, ticks advance 1s each, and the
	// hold is measured from the tick of the first healthy probe — so
	// that tick (elapsed 0s) through elapsed 4s stay held, and the
	// elapsed-5s tick releases.
	for i := 0; i < 5; i++ {
		if res := h.clock.tick(h.mon); res.Undeclared != 0 {
			t.Fatalf("tick %d: suppressed node released before FlapHold", i)
		}
		if !h.declared.NodeFaulty(victim) {
			t.Fatalf("tick %d: applier saw an early recovery", i)
		}
	}
	// Sixth healthy tick: past the hold, releases.
	if res := h.clock.tick(h.mon); res.Undeclared != 1 {
		t.Fatal("suppressed node not released after FlapHold of stable health")
	}
	st := h.mon.Status()
	if st.Suppressions != 1 {
		t.Fatalf("suppressions = %d, want 1", st.Suppressions)
	}
	if h.declared.NodeFaulty(victim) {
		t.Fatal("applier still shows the node faulty")
	}
	// The journal charged the applier 2 round trips for 3 flaps.
	if n := len(h.mon.Journal()); n != 4 {
		t.Fatalf("journal has %d events, want 4 (two full declare/recover cycles)", n)
	}
}

func TestMonitorApplierFailureRetries(t *testing.T) {
	h := newHarness(t, 3, Options{FailK: 2, RecoverK: 1})
	victim := topo.NodeID(1)
	if err := h.truth.FailNode(victim); err != nil {
		t.Fatal(err)
	}
	h.applier.fail = errors.New("queue full")
	h.clock.tick(h.mon)
	if res := h.clock.tick(h.mon); res.Declared != 0 {
		t.Fatal("declaration counted despite applier refusal")
	}
	if st := h.mon.NodeState(int(victim)); st == StateDeclared {
		t.Fatal("node marked declared while the applier refused")
	}
	if h.mon.Status().ApplyErrors == 0 {
		t.Fatal("apply error not counted")
	}
	if len(h.mon.Journal()) != 0 {
		t.Fatal("journal recorded a transition that never landed")
	}
	// Applier heals: next sweep retries and lands.
	h.applier.fail = nil
	if res := h.clock.tick(h.mon); res.Declared != 1 {
		t.Fatal("declaration not retried after the applier healed")
	}
	if !h.declared.NodeFaulty(victim) {
		t.Fatal("applier did not receive the retried declaration")
	}
}

func TestMonitorMetricsAndStatus(t *testing.T) {
	reg := obs.NewRegistry()
	c := topo.MustCube(3)
	truth := faults.NewSet(c)
	declared := faults.NewSet(c)
	clock := newFakeClock()
	mon, err := New(SetProber{Set: truth}, &setApplier{set: declared}, Options{
		Nodes: c.Nodes(), FailK: 1, RecoverK: 1,
		Now: clock.Now, Registry: reg,
	})
	if err != nil {
		t.Fatal(err)
	}
	if err := truth.FailNode(6); err != nil {
		t.Fatal(err)
	}
	clock.tick(mon)
	if v := reg.Counter(obs.MetricMonitorProbesTotal).Value(); v != 8 {
		t.Errorf("probes metric = %d, want 8", v)
	}
	if v := reg.Counter(obs.MetricMonitorDeclaredTotal).Value(); v != 1 {
		t.Errorf("declared metric = %d, want 1", v)
	}
	if v := reg.Gauge(obs.MetricMonitorDeclaredNodes).Value(); v != 1 {
		t.Errorf("declared gauge = %d, want 1", v)
	}
	st := mon.Status()
	if len(st.Declared) != 1 || st.Declared[0] != 6 {
		t.Errorf("status declared = %v, want [6]", st.Declared)
	}
	if err := truth.RecoverNode(6); err != nil {
		t.Fatal(err)
	}
	clock.tick(mon)
	if v := reg.Gauge(obs.MetricMonitorDeclaredNodes).Value(); v != 0 {
		t.Errorf("declared gauge after recovery = %d, want 0", v)
	}
	if v := reg.Counter(obs.MetricMonitorUndeclaredTotal).Value(); v != 1 {
		t.Errorf("undeclared metric = %d, want 1", v)
	}
}

func TestMonitorRejectsBadOptions(t *testing.T) {
	p := SetProber{Set: faults.NewSet(topo.MustCube(2))}
	a := &setApplier{set: faults.NewSet(topo.MustCube(2))}
	if _, err := New(nil, a, Options{Nodes: 4}); err == nil {
		t.Error("nil prober accepted")
	}
	if _, err := New(p, nil, Options{Nodes: 4}); err == nil {
		t.Error("nil applier accepted")
	}
	if _, err := New(p, a, Options{}); err == nil {
		t.Error("zero Nodes accepted")
	}
	for s := StateHealthy; s <= StateSuppressed+1; s++ {
		if s.String() == "" {
			t.Errorf("state %d has empty name", s)
		}
	}
}

// TestMonitorJournalIdempotentReplay is the property test: after the
// monitor reaches quiescence on any ground-truth injection history, its
// declaration journal replayed into an empty set reproduces the ground
// truth exactly — and replaying the journal a second time over the same
// set is a no-op (fail/recover events are idempotent), so the journal
// is safe to re-apply on recovery of the applier itself.
func TestMonitorJournalIdempotentReplay(t *testing.T) {
	c := topo.MustCube(5)
	for seed := uint64(1); seed <= 8; seed++ {
		seed := seed
		t.Run(fmt.Sprintf("seed%d", seed), func(t *testing.T) {
			rng := stats.NewRNG(seed)
			truth := faults.NewSet(c)
			declared := faults.NewSet(c)
			clock := newFakeClock()
			failK := 1 + int(seed%3)
			recoverK := 1 + int(seed%2)
			mon, err := New(SetProber{Set: truth}, &setApplier{set: declared}, Options{
				Nodes: c.Nodes(), FailK: failK, RecoverK: recoverK,
				// Effectively disable the flap brake: this property is
				// about declaration bookkeeping, and suppression holds
				// real state back by design.
				FlapMax: 1 << 20,
				Now:     clock.Now,
			})
			if err != nil {
				t.Fatal(err)
			}
			settle := failK
			if recoverK > settle {
				settle = recoverK
			}
			for step := 0; step < 60; step++ {
				a := topo.NodeID(rng.Intn(c.Nodes()))
				if truth.NodeFaulty(a) {
					if err := truth.RecoverNode(a); err != nil {
						t.Fatal(err)
					}
				} else if err := truth.FailNode(a); err != nil {
					t.Fatal(err)
				}
				// Let the monitor converge on this truth before the next
				// mutation (k sweeps cover both streak thresholds).
				for i := 0; i < settle; i++ {
					clock.tick(mon)
				}
			}
			// Quiesce: one extra settle round, then compare.
			for i := 0; i < settle; i++ {
				clock.tick(mon)
			}
			journal := mon.Journal()
			replay := faults.NewSet(c)
			for _, ev := range journal {
				if err := replay.Apply(ev); err != nil {
					t.Fatalf("journal replay: %v", err)
				}
			}
			assertSameFaults(t, "replay vs truth", replay, truth)
			assertSameFaults(t, "replay vs declared view", replay, declared)
			// Idempotence: a second full replay changes nothing.
			before := fmt.Sprint(replay.FaultyNodes())
			for _, ev := range journal {
				if err := replay.Apply(ev); err != nil {
					t.Fatalf("second replay: %v", err)
				}
			}
			if after := fmt.Sprint(replay.FaultyNodes()); after != before {
				t.Fatalf("second replay changed state: %s -> %s", before, after)
			}
		})
	}
}

func assertSameFaults(t *testing.T, label string, got, want *faults.Set) {
	t.Helper()
	g, w := fmt.Sprint(got.FaultyNodes()), fmt.Sprint(want.FaultyNodes())
	if g != w {
		t.Fatalf("%s: faulty nodes %s, want %s", label, g, w)
	}
}
