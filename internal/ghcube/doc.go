// Package ghcube exposes Section 4.2 — safety levels and unicasting in
// generalized n-dimensional hypercubes GH(m_{n-1} x ... x m_0) of
// Bhuyan and Agrawal — as a thin adapter over the generic machinery:
// the topology is topo.Mixed, the fault oracle is faults.Set, and the
// levels (Definition 4) and the router both come from internal/core,
// which is generic over topo.Topology. The package keeps the historical
// int-typed NodeID and its Graph/Assignment/Router/Route shapes so the
// experiment layer and the exhaustive Section 4.2 tests read unchanged,
// but contains no independent GS or routing implementation.
//
// Key invariant: because Definition 4 collapses to Definition 1 when
// every radix is 2, a GH(2 x 2 x ... x 2) through this package must
// agree bit-for-bit with the binary cube path — the equivalence the
// generalized test suite pins.
package ghcube
