package ghcube

import (
	"testing"

	"repro/internal/core"
	"repro/internal/faults"
	"repro/internal/stats"
	"repro/internal/topo"
)

// fig5 builds the Section 4.2 scenario: GH(2x3x2) with four faulty
// nodes. The paper's figure does not list the fault set in the text;
// this one reproduces its stated facts: 011 (source 010's dimension-0
// neighbor) and 100 (000's dimension-2 neighbor) are faulty, S(110) = 1,
// exactly four nodes are safe (level 3) — including the example source
// 010, consistent with "routing from any of these four nodes [is]
// optimal" — and the worked route 010 -> 000 -> 001 -> 101 comes out
// hop for hop. (The paper's parenthetical that node 001 has safety
// level 1 is internally inconsistent with Definition 4: with 000 and
// 101 nonfaulty, at most one of 001's per-dimension minima can be 0, so
// S(001) >= 2 for every possible fault set. Likewise the "another
// possible optimal path" of length 4 cannot be optimal for a distance-3
// pair.
// EXPERIMENTS.md records both discrepancies.)
func fig5(t testing.TB) *Graph {
	t.Helper()
	g := MustNew(2, 3, 2)
	if err := g.FailNodes(g.MustParseAll("011", "100", "111", "121")...); err != nil {
		t.Fatal(err)
	}
	return g
}

func TestNewValidation(t *testing.T) {
	if _, err := New(nil); err == nil {
		t.Error("empty radix should fail")
	}
	if _, err := New([]int{2, 1, 2}); err == nil {
		t.Error("radix 1 should fail")
	}
	g, err := New([]int{2, 3, 2})
	if err != nil {
		t.Fatal(err)
	}
	if g.Nodes() != 12 || g.Dim() != 3 {
		t.Errorf("GH(2x3x2): nodes=%d dim=%d", g.Nodes(), g.Dim())
	}
	if g.Radix(0) != 2 || g.Radix(1) != 3 || g.Radix(2) != 2 {
		t.Error("radix accessors wrong")
	}
}

func TestMustNewPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("MustNew(1) should panic")
		}
	}()
	MustNew(1)
}

func TestCoordinateRoundTrip(t *testing.T) {
	g := MustNew(2, 3, 2)
	for a := 0; a < g.Nodes(); a++ {
		id := NodeID(a)
		s := g.Format(id)
		back, err := g.Parse(s)
		if err != nil || back != id {
			t.Fatalf("round-trip %d -> %q -> %d (%v)", a, s, back, err)
		}
	}
	if _, err := g.Parse("05"); err == nil {
		t.Error("short address should fail")
	}
	if _, err := g.Parse("031"); err == nil {
		t.Error("digit outside radix should fail")
	}
	if g.Format(g.MustParse("021")) != "021" {
		t.Error("format mismatch")
	}
}

func TestWithCoordAndCoord(t *testing.T) {
	g := MustNew(2, 3, 2)
	a := g.MustParse("021")
	if g.Coord(a, 0) != 1 || g.Coord(a, 1) != 2 || g.Coord(a, 2) != 0 {
		t.Fatalf("coords of 021: %d %d %d", g.Coord(a, 0), g.Coord(a, 1), g.Coord(a, 2))
	}
	if got := g.WithCoord(a, 1, 0); got != g.MustParse("001") {
		t.Errorf("WithCoord = %s", g.Format(got))
	}
	if got := g.WithCoord(a, 2, 1); got != g.MustParse("121") {
		t.Errorf("WithCoord = %s", g.Format(got))
	}
}

func TestDistanceAndAdjacency(t *testing.T) {
	g := MustNew(2, 3, 2)
	if d := g.Distance(g.MustParse("010"), g.MustParse("101")); d != 3 {
		t.Errorf("Distance(010, 101) = %d, want 3", d)
	}
	// All siblings along a radix-3 dimension are mutually adjacent.
	if !g.Adjacent(g.MustParse("000"), g.MustParse("020")) {
		t.Error("000 and 020 should be adjacent (complete connection)")
	}
	if g.Adjacent(g.MustParse("000"), g.MustParse("000")) {
		t.Error("self adjacency")
	}
	if g.Adjacent(g.MustParse("000"), g.MustParse("011")) {
		t.Error("two-coordinate difference is not an edge")
	}
}

func TestSiblings(t *testing.T) {
	g := MustNew(2, 3, 2)
	sibs := g.Siblings(g.MustParse("010"), 1, nil)
	if len(sibs) != 2 {
		t.Fatalf("dimension-1 siblings = %d, want 2", len(sibs))
	}
	want := map[NodeID]bool{g.MustParse("000"): true, g.MustParse("020"): true}
	for _, b := range sibs {
		if !want[b] {
			t.Errorf("unexpected sibling %s", g.Format(b))
		}
	}
	if got := g.Siblings(g.MustParse("010"), 0, nil); len(got) != 1 || got[0] != g.MustParse("011") {
		t.Errorf("dimension-0 sibling = %v", got)
	}
}

func TestFig5Levels(t *testing.T) {
	g := fig5(t)
	as := Compute(g)
	want := map[string]int{
		"000": 3, "001": 3, "010": 3, "020": 3,
		"021": 1, "101": 1, "110": 1, "120": 1,
		"011": 0, "100": 0, "111": 0, "121": 0,
	}
	for addr, lv := range want {
		if got := as.Level(g.MustParse(addr)); got != lv {
			t.Errorf("S(%s) = %d, want %d", addr, got, lv)
		}
	}
	// "There are four nodes whose safety levels are 3, i.e., safe."
	if safe := as.SafeSet(); len(safe) != 4 {
		t.Errorf("safe set size = %d, want 4", len(safe))
	}
	if err := as.Verify(); err != nil {
		t.Error(err)
	}
}

func TestFig5SafeNeighborProperty(t *testing.T) {
	// "Because each unsafe but nonfaulty node has a safe neighbor,
	// routing from any of these nodes is at least suboptimal."
	g := fig5(t)
	as := Compute(g)
	for a := 0; a < g.Nodes(); a++ {
		id := NodeID(a)
		if g.NodeFaulty(id) || as.Level(id) == g.Dim() {
			continue
		}
		has := false
		for d := 0; d < g.Dim() && !has; d++ {
			for _, b := range g.Siblings(id, d, nil) {
				if as.Level(b) == g.Dim() {
					has = true
					break
				}
			}
		}
		if !has {
			t.Errorf("unsafe node %s has no safe neighbor", g.Format(id))
		}
	}
}

func TestFig5Route(t *testing.T) {
	g := fig5(t)
	as := Compute(g)
	rt := NewRouter(as)
	r := rt.Unicast(g.MustParse("010"), g.MustParse("101"))
	if r.Outcome != core.Optimal {
		t.Fatalf("outcome = %v", r.Outcome)
	}
	if got := r.Path.FormatWith(g); got != "010 -> 000 -> 001 -> 101" {
		t.Errorf("route = %s, want 010 -> 000 -> 001 -> 101", got)
	}
	if r.Len() != 3 || r.Len() != r.Distance {
		t.Errorf("length = %d, want distance 3", r.Len())
	}
	// Source 010 is safe, so C1 admits it — "routing from any of these
	// four nodes [is] optimal".
	if r.Condition != core.CondC1 {
		t.Errorf("condition = %v, want C1", r.Condition)
	}
}

func TestFig5RoutingFromAllSafeNodes(t *testing.T) {
	// Every unicast from a safe node to any nonfaulty node is optimal.
	g := fig5(t)
	as := Compute(g)
	rt := NewRouter(as)
	for _, s := range as.SafeSet() {
		for d := 0; d < g.Nodes(); d++ {
			did := NodeID(d)
			if g.NodeFaulty(did) {
				continue
			}
			r := rt.Unicast(s, did)
			if r.Outcome != core.Optimal || r.Err != nil {
				t.Errorf("%s -> %s: %v (%v)", g.Format(s), g.Format(did), r.Outcome, r.Err)
				continue
			}
			if r.Len() != g.Distance(s, did) {
				t.Errorf("%s -> %s: length %d != distance %d",
					g.Format(s), g.Format(did), r.Len(), g.Distance(s, did))
			}
		}
	}
}

func TestBinaryRadixesReduceToHypercube(t *testing.T) {
	// GH(2x2x...x2) must agree with the binary cube implementation on
	// levels for identical fault sets.
	rng := stats.NewRNG(4242)
	for n := 2; n <= 6; n++ {
		radix := make([]int, n)
		for i := range radix {
			radix[i] = 2
		}
		c := topo.MustCube(n)
		for trial := 0; trial < 20; trial++ {
			g := MustNew(radix...)
			s := faults.NewSet(c)
			faults.InjectUniform(s, rng, rng.Intn(c.Nodes()/2))
			for _, f := range s.FaultyNodes() {
				// NodeID encodings coincide: bit i == coordinate i.
				if err := g.FailNode(NodeID(f)); err != nil {
					t.Fatal(err)
				}
			}
			want := core.Compute(s, core.Options{})
			got := Compute(g)
			for a := 0; a < c.Nodes(); a++ {
				if got.Level(NodeID(a)) != want.Level(topo.NodeID(a)) {
					t.Fatalf("n=%d trial %d: GH level %d != cube level %d at node %d (faults %s)",
						n, trial, got.Level(NodeID(a)), want.Level(topo.NodeID(a)), a, s)
				}
			}
			if got.Rounds() != want.Rounds() {
				t.Errorf("n=%d trial %d: GH rounds %d != cube rounds %d",
					n, trial, got.Rounds(), want.Rounds())
			}
		}
	}
}

func TestFaultFreeGH(t *testing.T) {
	g := MustNew(3, 4, 2)
	as := Compute(g)
	if as.Rounds() != 0 {
		t.Errorf("fault-free rounds = %d", as.Rounds())
	}
	for a := 0; a < g.Nodes(); a++ {
		if as.Level(NodeID(a)) != 3 {
			t.Errorf("fault-free level = %d", as.Level(NodeID(a)))
		}
	}
	rt := NewRouter(as)
	r := rt.Unicast(0, NodeID(g.Nodes()-1))
	if r.Outcome != core.Optimal || r.Len() != 3 {
		t.Errorf("fault-free route: %v len %d", r.Outcome, r.Len())
	}
}

func TestTheorem2PrimeOptimalPaths(t *testing.T) {
	// Theorem 2': a k-safe node has an optimal path to every node
	// within k differing coordinates. Checked against the lattice DP
	// oracle on random GH(3x3x2x2) instances.
	rng := stats.NewRNG(909)
	for trial := 0; trial < 40; trial++ {
		g := MustNew(3, 3, 2, 2)
		if err := g.InjectUniform(rng, rng.Intn(8)); err != nil {
			t.Fatal(err)
		}
		as := Compute(g)
		if err := as.Verify(); err != nil {
			t.Fatal(err)
		}
		for src := 0; src < g.Nodes(); src++ {
			sid := NodeID(src)
			if g.NodeFaulty(sid) {
				continue
			}
			k := as.Level(sid)
			for dst := 0; dst < g.Nodes(); dst++ {
				did := NodeID(dst)
				h := g.Distance(sid, did)
				if h == 0 || h > k || g.NodeFaulty(did) {
					continue
				}
				if !g.HasOptimalPath(sid, did) {
					t.Fatalf("trial %d: S(%s)=%d but no optimal path to %s (h=%d)",
						trial, g.Format(sid), k, g.Format(did), h)
				}
			}
		}
	}
}

func TestGHRoutingGuarantees(t *testing.T) {
	// Admitted optimal unicasts deliver in exactly Distance hops along
	// nonfaulty intermediate nodes; admitted suboptimal in Distance+2.
	rng := stats.NewRNG(31415)
	for trial := 0; trial < 50; trial++ {
		g := MustNew(2, 3, 2, 3)
		if err := g.InjectUniform(rng, rng.Intn(6)); err != nil {
			t.Fatal(err)
		}
		as := Compute(g)
		rt := NewRouter(as)
		for pair := 0; pair < 60; pair++ {
			s := NodeID(rng.Intn(g.Nodes()))
			d := NodeID(rng.Intn(g.Nodes()))
			if g.NodeFaulty(s) || g.NodeFaulty(d) {
				continue
			}
			r := rt.Unicast(s, d)
			switch r.Outcome {
			case core.Optimal:
				if r.Err != nil || r.Len() != g.Distance(s, d) {
					t.Fatalf("trial %d: optimal %s->%s len %d dist %d err %v",
						trial, g.Format(s), g.Format(d), r.Len(), g.Distance(s, d), r.Err)
				}
			case core.Suboptimal:
				if r.Err != nil || r.Len() != g.Distance(s, d)+2 {
					t.Fatalf("trial %d: suboptimal %s->%s len %d want %d err %v",
						trial, g.Format(s), g.Format(d), r.Len(), g.Distance(s, d)+2, r.Err)
				}
			}
			if r.Outcome != core.Failure {
				if !r.Path.Valid(g) || !r.Path.Simple() {
					t.Fatalf("trial %d: bad path %s", trial, r.Path.FormatWith(g))
				}
				for _, a := range r.Path[1:] {
					if a != d && g.NodeFaulty(a) {
						t.Fatalf("trial %d: path crosses faulty %s", trial, g.Format(a))
					}
				}
			}
		}
	}
}

func TestGHRouterRejectsBadInput(t *testing.T) {
	g := fig5(t)
	as := Compute(g)
	rt := NewRouter(as)
	if r := rt.Unicast(g.MustParse("011"), 0); r.Outcome != core.Failure || r.Err == nil {
		t.Error("faulty source should fail")
	}
	if r := rt.Unicast(NodeID(99), 0); r.Outcome != core.Failure || r.Err == nil {
		t.Error("out-of-graph source should fail")
	}
	r := rt.Unicast(g.MustParse("000"), g.MustParse("000"))
	if r.Outcome != core.Optimal || r.Len() != 0 {
		t.Error("self unicast should be trivially optimal")
	}
}

func TestGHUnicastToFaultyNeighbor(t *testing.T) {
	// Distance-1 delivery reaches even a faulty destination (Theorem 2
	// base case carries over).
	g := fig5(t)
	as := Compute(g)
	rt := NewRouter(as)
	r := rt.Unicast(g.MustParse("010"), g.MustParse("011"))
	if r.Outcome != core.Optimal || r.Len() != 1 {
		t.Errorf("unicast to faulty neighbor: %v len %d", r.Outcome, r.Len())
	}
}

func TestInjectUniformGH(t *testing.T) {
	g := MustNew(3, 3, 3)
	rng := stats.NewRNG(5)
	if err := g.InjectUniform(rng, 7); err != nil {
		t.Fatal(err)
	}
	if g.NodeFaults() != 7 {
		t.Errorf("faults = %d", g.NodeFaults())
	}
	if err := g.InjectUniform(rng, 100); err == nil {
		t.Error("overfull injection should fail")
	}
	if err := g.InjectUniform(rng, -1); err == nil {
		t.Error("negative injection should fail")
	}
}

func TestGHRoundsBound(t *testing.T) {
	// The extended GS stabilizes within n-1 rounds (Section 4.2: "it
	// still requires a total of (n-1) steps").
	rng := stats.NewRNG(66)
	for trial := 0; trial < 30; trial++ {
		g := MustNew(3, 2, 4, 2)
		g.InjectUniform(rng, rng.Intn(12))
		as := Compute(g)
		if as.Rounds() > g.Dim()-1 {
			t.Fatalf("rounds = %d > n-1 = %d", as.Rounds(), g.Dim()-1)
		}
		if err := as.Verify(); err != nil {
			t.Fatal(err)
		}
	}
}

func TestPathHelpers(t *testing.T) {
	g := MustNew(2, 3, 2)
	p := Path(g.MustParseAll("010", "000", "001", "101"))
	if !p.Valid(g) || !p.Simple() || p.Len() != 3 {
		t.Error("paper path should be a simple valid 3-hop path")
	}
	if p.FormatWith(g) != "010 -> 000 -> 001 -> 101" {
		t.Errorf("FormatWith = %s", p.FormatWith(g))
	}
	bad := Path(g.MustParseAll("010", "101"))
	if bad.Valid(g) {
		t.Error("non-adjacent pair is not a path")
	}
	var empty Path
	if empty.Valid(g) || empty.Len() != 0 {
		t.Error("empty path invalid with length 0")
	}
	loop := Path(g.MustParseAll("010", "000", "010"))
	if loop.Simple() {
		t.Error("loop is not simple")
	}
}

func TestHasOptimalPathGH(t *testing.T) {
	g := fig5(t)
	// 010 -> 101 has the surviving optimal path through 000, 001.
	if !g.HasOptimalPath(g.MustParse("010"), g.MustParse("101")) {
		t.Error("optimal path 010 -> 101 should exist")
	}
	// Faulty endpoints have none.
	if g.HasOptimalPath(g.MustParse("011"), g.MustParse("101")) {
		t.Error("faulty source should have no optimal path")
	}
	if !g.HasOptimalPath(g.MustParse("000"), g.MustParse("000")) {
		t.Error("self path exists")
	}
}

func TestWideRadixFormat(t *testing.T) {
	g := MustNew(12, 2)
	s := g.Format(NodeID(11))
	if s != "0.11" {
		t.Errorf("wide format = %q, want 0.11", s)
	}
}
