package ghcube

import (
	"strings"

	"repro/internal/core"
	"repro/internal/faults"
	"repro/internal/stats"
	"repro/internal/topo"
)

// NodeID indexes a node in mixed-radix row-major order (dimension 0 is
// the least significant digit).
type NodeID int

// Graph is a generalized hypercube topology plus its fault set.
type Graph struct {
	t   *topo.Mixed
	set *faults.Set
}

// New builds GH(radix[n-1] x ... x radix[0]). The slice is given in
// dimension order radix[0] = m_0 first; every m_i must be at least 2.
func New(radix []int) (*Graph, error) {
	t, err := topo.NewMixed(radix)
	if err != nil {
		return nil, err
	}
	return &Graph{t: t, set: faults.NewSet(t)}, nil
}

// MustNew is New for compile-time-constant shapes; it panics on error.
func MustNew(radix ...int) *Graph {
	g, err := New(radix)
	if err != nil {
		panic(err)
	}
	return g
}

// Topology returns the underlying mixed-radix topology.
func (g *Graph) Topology() *topo.Mixed { return g.t }

// FaultSet returns the underlying fault oracle.
func (g *Graph) FaultSet() *faults.Set { return g.set }

// Dim returns the number of dimensions n.
func (g *Graph) Dim() int { return g.t.Dim() }

// Radix returns m_i.
func (g *Graph) Radix(i int) int { return g.t.Radix(i) }

// Nodes returns the total number of nodes.
func (g *Graph) Nodes() int { return g.t.Nodes() }

// Contains reports whether a is a valid node.
func (g *Graph) Contains(a NodeID) bool { return a >= 0 && int(a) < g.t.Nodes() }

// Coord returns coordinate i of node a.
func (g *Graph) Coord(a NodeID, i int) int { return g.t.Coord(topo.NodeID(a), i) }

// WithCoord returns a with coordinate i replaced by v.
func (g *Graph) WithCoord(a NodeID, i, v int) NodeID {
	return NodeID(g.t.WithCoord(topo.NodeID(a), i, v))
}

// Distance returns the number of coordinates in which a and b differ —
// the graph distance in a fault-free GH.
func (g *Graph) Distance(a, b NodeID) int { return g.t.Distance(topo.NodeID(a), topo.NodeID(b)) }

// Adjacent reports whether a and b differ in exactly one coordinate.
func (g *Graph) Adjacent(a, b NodeID) bool { return g.t.Adjacent(topo.NodeID(a), topo.NodeID(b)) }

// Siblings appends the m_i - 1 neighbors of a along dimension i to dst.
func (g *Graph) Siblings(a NodeID, i int, dst []NodeID) []NodeID {
	cur := g.t.Coord(topo.NodeID(a), i)
	for v := 0; v < g.t.Radix(i); v++ {
		if v != cur {
			dst = append(dst, g.WithCoord(a, i, v))
		}
	}
	return dst
}

// FailNode marks a faulty.
func (g *Graph) FailNode(a NodeID) error { return g.set.FailNode(topo.NodeID(a)) }

// FailNodes marks each listed node faulty.
func (g *Graph) FailNodes(nodes ...NodeID) error {
	for _, a := range nodes {
		if err := g.FailNode(a); err != nil {
			return err
		}
	}
	return nil
}

// NodeFaulty reports whether a is faulty.
func (g *Graph) NodeFaulty(a NodeID) bool { return g.set.NodeFaulty(topo.NodeID(a)) }

// NodeFaults returns the number of faulty nodes.
func (g *Graph) NodeFaults() int { return g.set.NodeFaults() }

// InjectUniform fails exactly count healthy nodes chosen uniformly.
func (g *Graph) InjectUniform(rng *stats.RNG, count int) error {
	return faults.InjectUniform(g.set, rng, count)
}

// Format renders a node as its digit string a_{n-1}...a_0, matching the
// paper's Fig. 5 notation (e.g. "021" in GH(2x3x2)).
func (g *Graph) Format(a NodeID) string { return g.t.Format(topo.NodeID(a)) }

// Parse converts a digit string back into a NodeID.
func (g *Graph) Parse(s string) (NodeID, error) {
	id, err := g.t.Parse(s)
	return NodeID(id), err
}

// MustParse is Parse for fixtures; it panics on malformed addresses.
func (g *Graph) MustParse(s string) NodeID { return NodeID(g.t.MustParse(s)) }

// MustParseAll parses a list of addresses.
func (g *Graph) MustParseAll(ss ...string) []NodeID {
	out := make([]NodeID, len(ss))
	for i, s := range ss {
		out[i] = g.MustParse(s)
	}
	return out
}

// Path is a node sequence with consecutive entries adjacent.
type Path []NodeID

// Len returns the hop count.
func (p Path) Len() int {
	if len(p) == 0 {
		return 0
	}
	return len(p) - 1
}

// Valid reports whether p is a walk in g.
func (p Path) Valid(g *Graph) bool {
	if len(p) == 0 {
		return false
	}
	for _, a := range p {
		if !g.Contains(a) {
			return false
		}
	}
	for i := 1; i < len(p); i++ {
		if !g.Adjacent(p[i-1], p[i]) {
			return false
		}
	}
	return true
}

// Simple reports whether no node repeats.
func (p Path) Simple() bool {
	seen := make(map[NodeID]bool, len(p))
	for _, a := range p {
		if seen[a] {
			return false
		}
		seen[a] = true
	}
	return true
}

// FormatWith renders the path in figure notation.
func (p Path) FormatWith(g *Graph) string {
	parts := make([]string, len(p))
	for i, a := range p {
		parts[i] = g.Format(a)
	}
	return strings.Join(parts, " -> ")
}

// Assignment holds the Definition 4 safety level of every node.
type Assignment struct {
	g  *Graph
	as *core.Assignment
}

// Compute runs the generic GLOBAL_STATUS algorithm on the graph's fault
// set: every nonfaulty node starts at level n; each round reduces each
// dimension to the minimum sibling level and applies Definition 1 to
// the n reduced values. The fixpoint is reached within n-1 rounds (the
// per-dimension minimum is available in one step because siblings are
// directly connected).
func Compute(g *Graph) *Assignment {
	return &Assignment{g: g, as: core.Compute(g.set, core.Options{})}
}

// Level returns S(a).
func (as *Assignment) Level(a NodeID) int { return as.as.Level(topo.NodeID(a)) }

// Rounds returns the synchronous rounds until stabilization.
func (as *Assignment) Rounds() int { return as.as.Rounds() }

// Graph returns the topology.
func (as *Assignment) Graph() *Graph { return as.g }

// Core returns the generic assignment the adapter wraps.
func (as *Assignment) Core() *core.Assignment { return as.as }

// SafeSet returns the nodes with the maximum level n.
func (as *Assignment) SafeSet() []NodeID {
	var out []NodeID
	for _, a := range as.as.SafeSet() {
		out = append(out, NodeID(a))
	}
	return out
}

// Verify checks the Definition 4 fixpoint condition at every node.
func (as *Assignment) Verify() error { return as.as.Verify() }

// Route is the result of one GH unicast attempt.
type Route struct {
	Source    NodeID
	Dest      NodeID
	Distance  int
	Outcome   core.Outcome
	Condition core.Condition
	Path      Path
	Err       error
}

// Len returns the hops traveled.
func (r *Route) Len() int { return r.Path.Len() }

// Router executes safety-level unicasts on a GH assignment. Routing is
// "exactly the same as in a regular hypercube" (Section 4.2): the
// candidate along a preferred dimension is the sibling holding the
// destination's coordinate (one hop crosses the whole dimension), and
// the candidate with the highest safety level is chosen; a C3 spare
// detour moves to any other coordinate of a spare dimension and costs
// the paper's two extra hops. It delegates to the generic core router.
type Router struct {
	g  *Graph
	rt *core.Router
}

// NewRouter returns a Router over as.
func NewRouter(as *Assignment) *Router {
	return &Router{g: as.g, rt: core.NewRouter(as.as, nil)}
}

// Feasibility evaluates C1/C2/C3 for a unicast from s to d.
func (rt *Router) Feasibility(s, d NodeID) (core.Condition, core.Outcome) {
	if !rt.g.Contains(s) || !rt.g.Contains(d) {
		return core.CondNone, core.Failure
	}
	return rt.rt.Feasibility(topo.NodeID(s), topo.NodeID(d))
}

// Unicast routes a message from s to d.
func (rt *Router) Unicast(s, d NodeID) *Route {
	cr := rt.rt.Unicast(topo.NodeID(s), topo.NodeID(d))
	r := &Route{
		Source:    s,
		Dest:      d,
		Distance:  cr.Hamming,
		Outcome:   cr.Outcome,
		Condition: cr.Condition,
		Err:       cr.Err,
	}
	if cr.Path != nil {
		r.Path = make(Path, len(cr.Path))
		for i, a := range cr.Path {
			r.Path[i] = NodeID(a)
		}
	}
	return r
}

// HasOptimalPath is the ground-truth oracle for Theorem 2': it reports
// whether a path of length Distance(s, d) from s to d survives the
// faults.
func (g *Graph) HasOptimalPath(s, d NodeID) bool {
	if !g.Contains(s) || !g.Contains(d) {
		return false
	}
	return faults.HasOptimalPath(g.set, topo.NodeID(s), topo.NodeID(d))
}

// Components labels every nonfaulty node with its connected component in
// the surviving subgraph (-1 for faulty nodes), in ascending order of
// each component's smallest node.
func (g *Graph) Components() (labels []int, count int) {
	return faults.Components(g.set)
}

// Connected reports whether all nonfaulty nodes form one component.
func (g *Graph) Connected() bool {
	return faults.Connected(g.set)
}
