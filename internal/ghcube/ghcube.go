// Package ghcube implements Section 4.2: safety levels and unicasting in
// generalized n-dimensional hypercubes GH(m_{n-1} x ... x m_0) of
// Bhuyan and Agrawal. Nodes are mixed-radix coordinate vectors; two
// nodes are adjacent iff they differ in exactly one coordinate, so the
// m_i nodes that share all coordinates except dimension i form a
// complete subgraph and any dimension is crossed in a single hop.
//
// Definition 4 reduces the m_i-1 siblings along each dimension to a
// single per-dimension level S_i = min over the siblings, then applies
// the binary cube's Definition 1 to the n-vector (S_0..S_{n-1}). With
// every m_i = 2 the structure and the levels coincide exactly with the
// binary hypercube, which the tests exploit.
package ghcube

import (
	"fmt"
	"strconv"
	"strings"

	"repro/internal/core"
	"repro/internal/stats"
)

// NodeID indexes a node in mixed-radix row-major order (dimension 0 is
// the least significant digit).
type NodeID int

// Graph is a generalized hypercube topology plus its fault set.
type Graph struct {
	radix  []int // radix[i] = m_i, the size of dimension i
	stride []int // stride[i] = product of radix[0..i-1]
	nodes  int
	faulty []bool
	nfault int
}

// New builds GH(radix[n-1] x ... x radix[0]). The slice is given in
// dimension order radix[0] = m_0 first; every m_i must be at least 2.
func New(radix []int) (*Graph, error) {
	if len(radix) == 0 {
		return nil, fmt.Errorf("ghcube: no dimensions")
	}
	g := &Graph{
		radix:  append([]int(nil), radix...),
		stride: make([]int, len(radix)),
	}
	total := 1
	for i, m := range radix {
		if m < 2 {
			return nil, fmt.Errorf("ghcube: dimension %d has radix %d < 2", i, m)
		}
		g.stride[i] = total
		total *= m
		if total > 1<<22 {
			return nil, fmt.Errorf("ghcube: too many nodes")
		}
	}
	g.nodes = total
	g.faulty = make([]bool, total)
	return g, nil
}

// MustNew is New for compile-time-constant shapes; it panics on error.
func MustNew(radix ...int) *Graph {
	g, err := New(radix)
	if err != nil {
		panic(err)
	}
	return g
}

// Dim returns the number of dimensions n.
func (g *Graph) Dim() int { return len(g.radix) }

// Radix returns m_i.
func (g *Graph) Radix(i int) int { return g.radix[i] }

// Nodes returns the total number of nodes.
func (g *Graph) Nodes() int { return g.nodes }

// Contains reports whether a is a valid node.
func (g *Graph) Contains(a NodeID) bool { return a >= 0 && int(a) < g.nodes }

// Coord returns coordinate i of node a.
func (g *Graph) Coord(a NodeID, i int) int {
	return (int(a) / g.stride[i]) % g.radix[i]
}

// WithCoord returns a with coordinate i replaced by v.
func (g *Graph) WithCoord(a NodeID, i, v int) NodeID {
	cur := g.Coord(a, i)
	return a + NodeID((v-cur)*g.stride[i])
}

// Distance returns the number of coordinates in which a and b differ —
// the graph distance in a fault-free GH.
func (g *Graph) Distance(a, b NodeID) int {
	d := 0
	for i := range g.radix {
		if g.Coord(a, i) != g.Coord(b, i) {
			d++
		}
	}
	return d
}

// Adjacent reports whether a and b differ in exactly one coordinate.
func (g *Graph) Adjacent(a, b NodeID) bool { return a != b && g.Distance(a, b) == 1 }

// Siblings appends the m_i - 1 neighbors of a along dimension i to dst.
func (g *Graph) Siblings(a NodeID, i int, dst []NodeID) []NodeID {
	cur := g.Coord(a, i)
	for v := 0; v < g.radix[i]; v++ {
		if v != cur {
			dst = append(dst, g.WithCoord(a, i, v))
		}
	}
	return dst
}

// FailNode marks a faulty.
func (g *Graph) FailNode(a NodeID) error {
	if !g.Contains(a) {
		return fmt.Errorf("ghcube: node %d outside graph", a)
	}
	if !g.faulty[a] {
		g.faulty[a] = true
		g.nfault++
	}
	return nil
}

// FailNodes marks each listed node faulty.
func (g *Graph) FailNodes(nodes ...NodeID) error {
	for _, a := range nodes {
		if err := g.FailNode(a); err != nil {
			return err
		}
	}
	return nil
}

// NodeFaulty reports whether a is faulty.
func (g *Graph) NodeFaulty(a NodeID) bool { return g.faulty[a] }

// NodeFaults returns the number of faulty nodes.
func (g *Graph) NodeFaults() int { return g.nfault }

// InjectUniform fails exactly count healthy nodes chosen uniformly.
func (g *Graph) InjectUniform(rng *stats.RNG, count int) error {
	healthy := make([]NodeID, 0, g.nodes)
	for a := 0; a < g.nodes; a++ {
		if !g.faulty[a] {
			healthy = append(healthy, NodeID(a))
		}
	}
	if count < 0 || count > len(healthy) {
		return fmt.Errorf("ghcube: cannot fail %d of %d healthy nodes", count, len(healthy))
	}
	for _, idx := range rng.Sample(len(healthy), count) {
		if err := g.FailNode(healthy[idx]); err != nil {
			return err
		}
	}
	return nil
}

// Format renders a node as its digit string a_{n-1}...a_0, matching the
// paper's Fig. 5 notation (e.g. "021" in GH(2x3x2)). Radixes above 10
// fall back to dotted decimal.
func (g *Graph) Format(a NodeID) string {
	wide := false
	for _, m := range g.radix {
		if m > 10 {
			wide = true
		}
	}
	parts := make([]string, len(g.radix))
	for i := range g.radix {
		parts[len(g.radix)-1-i] = strconv.Itoa(g.Coord(a, i))
	}
	if wide {
		return strings.Join(parts, ".")
	}
	return strings.Join(parts, "")
}

// Parse converts a digit string back into a NodeID.
func (g *Graph) Parse(s string) (NodeID, error) {
	if len(s) != len(g.radix) {
		return 0, fmt.Errorf("ghcube: address %q has %d digits, want %d", s, len(s), len(g.radix))
	}
	var id NodeID
	for pos, ch := range s {
		i := len(g.radix) - 1 - pos
		v := int(ch - '0')
		if v < 0 || v >= g.radix[i] {
			return 0, fmt.Errorf("ghcube: digit %c outside radix %d of dimension %d", ch, g.radix[i], i)
		}
		id += NodeID(v * g.stride[i])
	}
	return id, nil
}

// MustParse is Parse for fixtures; it panics on malformed addresses.
func (g *Graph) MustParse(s string) NodeID {
	id, err := g.Parse(s)
	if err != nil {
		panic(err)
	}
	return id
}

// MustParseAll parses a list of addresses.
func (g *Graph) MustParseAll(ss ...string) []NodeID {
	out := make([]NodeID, len(ss))
	for i, s := range ss {
		out[i] = g.MustParse(s)
	}
	return out
}

// Path is a node sequence with consecutive entries adjacent.
type Path []NodeID

// Len returns the hop count.
func (p Path) Len() int {
	if len(p) == 0 {
		return 0
	}
	return len(p) - 1
}

// Valid reports whether p is a walk in g.
func (p Path) Valid(g *Graph) bool {
	if len(p) == 0 {
		return false
	}
	for _, a := range p {
		if !g.Contains(a) {
			return false
		}
	}
	for i := 1; i < len(p); i++ {
		if !g.Adjacent(p[i-1], p[i]) {
			return false
		}
	}
	return true
}

// Simple reports whether no node repeats.
func (p Path) Simple() bool {
	seen := make(map[NodeID]bool, len(p))
	for _, a := range p {
		if seen[a] {
			return false
		}
		seen[a] = true
	}
	return true
}

// FormatWith renders the path in figure notation.
func (p Path) FormatWith(g *Graph) string {
	parts := make([]string, len(p))
	for i, a := range p {
		parts[i] = g.Format(a)
	}
	return strings.Join(parts, " -> ")
}

// ---------------------------------------------------------------------
// Safety levels (Definition 4) and the extended GS algorithm.
// ---------------------------------------------------------------------

// Assignment holds the Definition 4 safety level of every node.
type Assignment struct {
	g      *Graph
	levels []int
	rounds int
}

// Level returns S(a).
func (as *Assignment) Level(a NodeID) int { return as.levels[a] }

// Rounds returns the synchronous rounds until stabilization.
func (as *Assignment) Rounds() int { return as.rounds }

// Graph returns the topology.
func (as *Assignment) Graph() *Graph { return as.g }

// SafeSet returns the nodes with the maximum level n.
func (as *Assignment) SafeSet() []NodeID {
	var out []NodeID
	for a, lv := range as.levels {
		if lv == as.g.Dim() {
			out = append(out, NodeID(a))
		}
	}
	return out
}

// Compute runs the extended GLOBAL_STATUS algorithm: every nonfaulty node
// starts at level n; each round it reduces each dimension to the minimum
// sibling level and applies Definition 1 to the n reduced values. The
// fixpoint is reached within n-1 rounds (the per-dimension minimum is
// available in one step because siblings are directly connected).
func Compute(g *Graph) *Assignment {
	n := g.Dim()
	cur := make([]int, g.nodes)
	for a := 0; a < g.nodes; a++ {
		if g.faulty[a] {
			cur[a] = 0
		} else {
			cur[a] = n
		}
	}
	next := make([]int, g.nodes)
	dims := make([]int, n)
	scratch := make([]int, n)
	var sibs []NodeID
	as := &Assignment{g: g}
	maxRounds := n - 1
	if maxRounds < 1 {
		maxRounds = 1
	}
	for r := 1; r <= maxRounds; r++ {
		changed := false
		for a := 0; a < g.nodes; a++ {
			if g.faulty[a] {
				next[a] = 0
				continue
			}
			for i := 0; i < n; i++ {
				min := n
				sibs = g.Siblings(NodeID(a), i, sibs[:0])
				for _, b := range sibs {
					if cur[b] < min {
						min = cur[b]
					}
				}
				dims[i] = min
			}
			v := core.LevelFromNeighbors(dims, scratch)
			next[a] = v
			if v != cur[a] {
				changed = true
			}
		}
		if !changed {
			break
		}
		as.rounds = r
		copy(cur, next)
	}
	as.levels = cur
	return as
}

// Verify checks the Definition 4 fixpoint condition at every node.
func (as *Assignment) Verify() error {
	g, n := as.g, as.g.Dim()
	dims := make([]int, n)
	var sibs []NodeID
	for a := 0; a < g.nodes; a++ {
		if g.faulty[a] {
			if as.levels[a] != 0 {
				return fmt.Errorf("ghcube: faulty node %s has level %d", g.Format(NodeID(a)), as.levels[a])
			}
			continue
		}
		for i := 0; i < n; i++ {
			min := n
			sibs = g.Siblings(NodeID(a), i, sibs[:0])
			for _, b := range sibs {
				if as.levels[b] < min {
					min = as.levels[b]
				}
			}
			dims[i] = min
		}
		if want := core.LevelFromNeighbors(dims, nil); as.levels[a] != want {
			return fmt.Errorf("ghcube: node %s level %d, Definition 4 gives %d",
				g.Format(NodeID(a)), as.levels[a], want)
		}
	}
	return nil
}

// ---------------------------------------------------------------------
// Unicasting.
// ---------------------------------------------------------------------

// Route is the result of one GH unicast attempt.
type Route struct {
	Source    NodeID
	Dest      NodeID
	Distance  int
	Outcome   core.Outcome
	Condition core.Condition
	Path      Path
	Err       error
}

// Len returns the hops traveled.
func (r *Route) Len() int { return r.Path.Len() }

// Router executes safety-level unicasts on a GH assignment. Routing is
// "exactly the same as in a regular hypercube" (Section 4.2): the
// candidate along a preferred dimension is the sibling holding the
// destination's coordinate (one hop crosses the whole dimension), and
// the candidate with the highest safety level is chosen; a C3 spare
// detour moves to any other coordinate of a spare dimension and costs
// the paper's two extra hops.
type Router struct {
	as *Assignment
}

// NewRouter returns a Router over as.
func NewRouter(as *Assignment) *Router { return &Router{as: as} }

// Feasibility evaluates C1/C2/C3 for a unicast from s to d.
func (rt *Router) Feasibility(s, d NodeID) (core.Condition, core.Outcome) {
	g, as := rt.as.g, rt.as
	h := g.Distance(s, d)
	if h == 0 {
		return core.CondC1, core.Optimal
	}
	if as.Level(s) >= h {
		return core.CondC1, core.Optimal
	}
	for i := 0; i < g.Dim(); i++ {
		if g.Coord(s, i) == g.Coord(d, i) {
			continue
		}
		cand := g.WithCoord(s, i, g.Coord(d, i))
		if as.Level(cand) >= h-1 {
			return core.CondC2, core.Optimal
		}
	}
	for i := 0; i < g.Dim(); i++ {
		if g.Coord(s, i) != g.Coord(d, i) {
			continue
		}
		// Any sibling along a spare dimension qualifies as the detour.
		for v := 0; v < g.Radix(i); v++ {
			if v == g.Coord(s, i) {
				continue
			}
			if as.Level(g.WithCoord(s, i, v)) >= h+1 {
				return core.CondC3, core.Suboptimal
			}
		}
	}
	return core.CondNone, core.Failure
}

// Unicast routes a message from s to d.
func (rt *Router) Unicast(s, d NodeID) *Route {
	g, as := rt.as.g, rt.as
	r := &Route{Source: s, Dest: d, Distance: g.Distance(s, d)}
	if !g.Contains(s) || !g.Contains(d) {
		r.Outcome = core.Failure
		r.Err = fmt.Errorf("ghcube: node outside graph")
		return r
	}
	if g.NodeFaulty(s) {
		r.Outcome = core.Failure
		r.Err = fmt.Errorf("ghcube: source %s is faulty", g.Format(s))
		return r
	}
	cond, out := rt.Feasibility(s, d)
	r.Condition, r.Outcome = cond, out
	if out == core.Failure {
		return r
	}
	r.Path = Path{s}
	cur := s
	if cond == core.CondC3 {
		h := g.Distance(s, d)
		best, bestNode := -1, NodeID(-1)
		for i := 0; i < g.Dim(); i++ {
			if g.Coord(s, i) != g.Coord(d, i) {
				continue
			}
			for v := 0; v < g.Radix(i); v++ {
				if v == g.Coord(s, i) {
					continue
				}
				b := g.WithCoord(s, i, v)
				if lv := as.Level(b); lv >= h+1 && lv > best {
					best, bestNode = lv, b
				}
			}
		}
		cur = bestNode
		r.Path = append(r.Path, cur)
	}
	for hops := 0; cur != d; hops++ {
		if hops > g.Dim()+3 {
			r.Outcome = core.Failure
			r.Err = fmt.Errorf("ghcube: forwarding exceeded hop bound")
			return r
		}
		next, ok := rt.pick(cur, d)
		if !ok {
			r.Outcome = core.Failure
			r.Err = fmt.Errorf("ghcube: node %s has no usable candidate", g.Format(cur))
			return r
		}
		cur = next
		r.Path = append(r.Path, cur)
	}
	return r
}

// pick chooses the direct candidate (destination coordinate) along a
// remaining preferred dimension with the highest safety level; the final
// dimension is delivered unconditionally.
func (rt *Router) pick(cur, d NodeID) (NodeID, bool) {
	g, as := rt.as.g, rt.as
	h := g.Distance(cur, d)
	if h == 1 {
		return d, true
	}
	best, bestNode := -1, NodeID(-1)
	for i := 0; i < g.Dim(); i++ {
		if g.Coord(cur, i) == g.Coord(d, i) {
			continue
		}
		b := g.WithCoord(cur, i, g.Coord(d, i))
		if g.NodeFaulty(b) {
			continue
		}
		if lv := as.Level(b); lv > best {
			best, bestNode = lv, b
		}
	}
	if bestNode < 0 {
		return 0, false
	}
	return bestNode, true
}

// HasOptimalPath is the ground-truth oracle for Theorem 2': it reports
// whether a path of length Distance(s, d) from s to d survives the
// faults, by dynamic programming over the sub-lattice of differing
// dimensions (each crossed directly to d's coordinate — crossing to any
// other coordinate cannot be part of a distance-respecting path).
func (g *Graph) HasOptimalPath(s, d NodeID) bool {
	if g.faulty[s] || g.faulty[d] {
		return false
	}
	var dims []int
	for i := 0; i < g.Dim(); i++ {
		if g.Coord(s, i) != g.Coord(d, i) {
			dims = append(dims, i)
		}
	}
	h := len(dims)
	if h == 0 {
		return true
	}
	reach := make([]bool, 1<<uint(h))
	reach[0] = true
	for m := 1; m < 1<<uint(h); m++ {
		node := s
		for j, dim := range dims {
			if m&(1<<uint(j)) != 0 {
				node = g.WithCoord(node, dim, g.Coord(d, dim))
			}
		}
		if g.faulty[node] && node != d {
			continue
		}
		if g.faulty[node] {
			continue
		}
		for j := range dims {
			bit := 1 << uint(j)
			if m&bit != 0 && reach[m^bit] {
				reach[m] = true
				break
			}
		}
	}
	return reach[1<<uint(h)-1]
}

// Components labels every nonfaulty node with its connected component in
// the surviving subgraph (-1 for faulty nodes), in ascending order of
// each component's smallest node — the GH analogue of
// faults.Components, used to extend the paper's disconnected-hypercube
// analysis to Section 4.2.
func (g *Graph) Components() (labels []int, count int) {
	labels = make([]int, g.nodes)
	for i := range labels {
		labels[i] = -1
	}
	var queue []NodeID
	var sibs []NodeID
	for start := 0; start < g.nodes; start++ {
		if g.faulty[start] || labels[start] >= 0 {
			continue
		}
		labels[start] = count
		queue = append(queue[:0], NodeID(start))
		for len(queue) > 0 {
			a := queue[0]
			queue = queue[1:]
			for d := 0; d < g.Dim(); d++ {
				sibs = g.Siblings(a, d, sibs[:0])
				for _, b := range sibs {
					if g.faulty[b] || labels[b] >= 0 {
						continue
					}
					labels[b] = count
					queue = append(queue, b)
				}
			}
		}
		count++
	}
	return labels, count
}

// Connected reports whether all nonfaulty nodes form one component.
func (g *Graph) Connected() bool {
	_, count := g.Components()
	return count <= 1
}
