package ghcube

import (
	"testing"

	"repro/internal/core"
)

// forEachFaultPair enumerates all fault sets of exactly k nodes in the
// given shape and calls fn with a fresh Graph.
func forEachFaultSet(t *testing.T, radix []int, k int, fn func(*Graph)) {
	t.Helper()
	probe, err := New(radix)
	if err != nil {
		t.Fatal(err)
	}
	nodes := probe.Nodes()
	idx := make([]int, k)
	for i := range idx {
		idx[i] = i
	}
	for {
		g, err := New(radix)
		if err != nil {
			t.Fatal(err)
		}
		for _, v := range idx {
			if err := g.FailNode(NodeID(v)); err != nil {
				t.Fatal(err)
			}
		}
		fn(g)
		i := k - 1
		for i >= 0 && idx[i] == nodes-k+i {
			i--
		}
		if i < 0 {
			return
		}
		idx[i]++
		for j := i + 1; j < k; j++ {
			idx[j] = idx[j-1] + 1
		}
	}
}

func TestExhaustiveGH232TwoFaults(t *testing.T) {
	// All C(12,2) = 66 two-fault sets of the paper's GH(2x3x2), every
	// source/destination pair. Two faults < n = 3 dimensions, so the
	// Property 2 analogue holds and no unicast may fail.
	count := 0
	forEachFaultSet(t, []int{2, 3, 2}, 2, func(g *Graph) {
		count++
		as := Compute(g)
		if err := as.Verify(); err != nil {
			t.Fatalf("%v: %v", g, err)
		}
		if as.Rounds() > g.Dim()-1 {
			t.Fatalf("rounds %d > n-1", as.Rounds())
		}
		rt := NewRouter(as)
		for src := 0; src < g.Nodes(); src++ {
			sid := NodeID(src)
			if g.NodeFaulty(sid) {
				continue
			}
			// Theorem 2' against the lattice oracle.
			k := as.Level(sid)
			for dst := 0; dst < g.Nodes(); dst++ {
				did := NodeID(dst)
				if g.NodeFaulty(did) {
					continue
				}
				h := g.Distance(sid, did)
				if h >= 1 && h <= k && !g.HasOptimalPath(sid, did) {
					t.Fatalf("Theorem 2' violated: S(%s)=%d, no optimal path to %s",
						g.Format(sid), k, g.Format(did))
				}
				r := rt.Unicast(sid, did)
				if r.Outcome == core.Failure {
					t.Fatalf("unicast %s -> %s failed with 2 faults in GH(2x3x2)",
						g.Format(sid), g.Format(did))
				}
				if r.Err != nil {
					t.Fatalf("transport error: %v", r.Err)
				}
				wantLen := h
				if r.Outcome == core.Suboptimal {
					wantLen = h + 2
				}
				if r.Len() != wantLen {
					t.Fatalf("%s -> %s: length %d, want %d",
						g.Format(sid), g.Format(did), r.Len(), wantLen)
				}
			}
		}
	})
	if count != 66 {
		t.Errorf("enumerated %d fault sets, want 66", count)
	}
}

func TestExhaustiveGH33UniquenessFromBelow(t *testing.T) {
	// Definition 4's fixpoint is unique (the Theorem 1 argument carries
	// over): for every fault set of size <= 3 in GH(3x3), iterating
	// from the all-zero initialization reaches the same levels as the
	// from-above computation.
	for k := 0; k <= 3; k++ {
		forEachFaultSet(t, []int{3, 3}, k, func(g *Graph) {
			as := Compute(g)
			below := ghFromBelow(g)
			for a := 0; a < g.Nodes(); a++ {
				if below[a] != as.Level(NodeID(a)) {
					t.Fatalf("faults in %v: node %s from-below %d != from-above %d",
						g, g.Format(NodeID(a)), below[a], as.Level(NodeID(a)))
				}
			}
		})
	}
}

// ghFromBelow iterates Definition 4 from all-zero until the fixpoint.
func ghFromBelow(g *Graph) []int {
	n := g.Dim()
	cur := make([]int, g.Nodes())
	next := make([]int, g.Nodes())
	dims := make([]int, n)
	var sibs []NodeID
	for iter := 0; iter < g.Nodes()+n; iter++ {
		changed := false
		for a := 0; a < g.Nodes(); a++ {
			if g.NodeFaulty(NodeID(a)) {
				next[a] = 0
				continue
			}
			for i := 0; i < n; i++ {
				min := n
				sibs = g.Siblings(NodeID(a), i, sibs[:0])
				for _, b := range sibs {
					if cur[b] < min {
						min = cur[b]
					}
				}
				dims[i] = min
			}
			next[a] = core.LevelFromNeighbors(dims, nil)
			if next[a] != cur[a] {
				changed = true
			}
		}
		copy(cur, next)
		if !changed {
			break
		}
	}
	return cur
}

func TestExhaustiveGH222EqualsQ3(t *testing.T) {
	// GH(2x2x2) must agree with Q3 for every one of the 2^8 fault
	// subsets — an exhaustive version of the reduction property test.
	for mask := 0; mask < 256; mask++ {
		g := MustNew(2, 2, 2)
		for a := 0; a < 8; a++ {
			if mask&(1<<a) != 0 {
				g.FailNode(NodeID(a))
			}
		}
		as := Compute(g)
		if err := as.Verify(); err != nil {
			t.Fatalf("mask %08b: %v", mask, err)
		}
		// Compare with the binary-cube sorted-levels evaluation done
		// independently: per-dimension min over a single sibling IS the
		// sibling's level, so Definition 4 == Definition 1 here. Spot
		// the invariant that faulty <=> level 0 and Verify covers the
		// rest.
		for a := 0; a < 8; a++ {
			if (as.Level(NodeID(a)) == 0) != g.NodeFaulty(NodeID(a)) {
				// A nonfaulty node always has level >= 1.
				t.Fatalf("mask %08b: node %d level %d faulty=%v",
					mask, a, as.Level(NodeID(a)), g.NodeFaulty(NodeID(a)))
			}
		}
	}
}

func TestGHComponentsAndDisconnectedDetection(t *testing.T) {
	// Isolate a node of GH(2x3x2) by failing all its neighbors (degree
	// 1 + 2 + 1 = 4): the graph disconnects, no node can be n-safe, and
	// every cross-partition unicast aborts at the source.
	g := MustNew(2, 3, 2)
	victim := g.MustParse("000")
	for d := 0; d < g.Dim(); d++ {
		for _, b := range g.Siblings(victim, d, nil) {
			if err := g.FailNode(b); err != nil {
				t.Fatal(err)
			}
		}
	}
	if g.Connected() {
		t.Fatal("graph should be disconnected")
	}
	labels, count := g.Components()
	if count != 2 {
		t.Fatalf("components = %d, want 2", count)
	}
	as := Compute(g)
	for a := 0; a < g.Nodes(); a++ {
		if as.Level(NodeID(a)) == g.Dim() {
			t.Errorf("node %s is n-safe in a disconnected GH", g.Format(NodeID(a)))
		}
	}
	rt := NewRouter(as)
	for src := 0; src < g.Nodes(); src++ {
		sid := NodeID(src)
		if g.NodeFaulty(sid) {
			continue
		}
		for dst := 0; dst < g.Nodes(); dst++ {
			did := NodeID(dst)
			if g.NodeFaulty(did) || labels[sid] == labels[did] {
				continue
			}
			if r := rt.Unicast(sid, did); r.Outcome != core.Failure {
				t.Fatalf("cross-partition %s -> %s not aborted",
					g.Format(sid), g.Format(did))
			}
		}
	}
}

func TestGHComponentsFaultFree(t *testing.T) {
	g := MustNew(3, 2, 2)
	labels, count := g.Components()
	if count != 1 || !g.Connected() {
		t.Error("fault-free GH should be one component")
	}
	for _, l := range labels {
		if l != 0 {
			t.Error("labels should all be 0")
		}
	}
}
