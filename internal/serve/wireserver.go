package serve

import (
	"bufio"
	"context"
	"errors"
	"fmt"
	"net"
	"runtime"
	"sync"
	"time"

	"repro/internal/core"
	"repro/internal/faults"
	"repro/internal/obs"
	"repro/internal/topo"
	"repro/internal/wire"
)

// The binary data plane. Each accepted connection runs the pipelined
// loop the protocol was designed for:
//
//	reader ──frames──▶ bounded jobs chan ──▶ N workers ──▶ results chan ──▶ writer
//
// One goroutine reads frames off the socket and tags each with an
// arrival sequence number; the workers decode, route against the
// lock-free snapshot (the same RouteCtx/BatchUnicastCtx hardening the
// HTTP handlers use — deadline budgets re-armed from the frame, GCRA
// admission, drain awareness), and encode the response into a pooled
// buffer; a single writer reorders completed responses by sequence
// number so the client observes strict request order per connection,
// no matter how the workers interleave. The jobs channel is bounded:
// a client that pipelines faster than the workers drain blocks in the
// kernel, not in server memory.
//
// Refusals map to typed error frames one-to-one with the HTTP status
// taxonomy: ErrOverload→CodeOverload(429), ErrBacklog→CodeBacklog,
// ErrDraining/ErrClosed→CodeDraining(503), deadline→CodeDeadline(504),
// cancellation→CodeCanceled(499). Version mismatches answer with
// CodeVersion and keep the connection alive — framing is intact, only
// the semantics are refused — which is the clean-degrade contract the
// cross-version compat tests pin.

// WireOptions tune a WireServer. The zero value serves with
// min(GOMAXPROCS, 4) workers and 128 queued frames per connection.
type WireOptions struct {
	// Workers is the per-connection routing worker count (<= 0 means
	// min(GOMAXPROCS, 4)).
	Workers int
	// QueueDepth bounds the per-connection in-flight frame queue
	// (<= 0 means 128). A full queue exerts TCP backpressure.
	QueueDepth int
	// MaxPayload bounds accepted request payloads (<= 0 means
	// wire.DefaultMaxPayload).
	MaxPayload int
	// MaxBatch bounds the pair count of one OpBatch frame (<= 0 means
	// 4096); larger batches are refused with CodeTooLarge.
	MaxBatch int
	// RequireMinor refuses clients whose header minor version is below
	// it, and is what the server "advertises" in ping responses when it
	// exceeds the package's own minor. It models a future server that
	// has dropped old-minor support — the compat tests dial one to
	// prove a v1.0 client degrades to a typed ErrVersion, never a hang
	// or a mis-parse.
	RequireMinor uint8
	// Registry receives the wire_* metrics (nil disables).
	Registry *obs.Registry
}

// WireServer serves the binary protocol for one Service. Close stops
// the accept loop and every connection; the Service itself is not
// closed (it may still be serving HTTP).
type WireServer struct {
	svc  *Service
	ln   net.Listener
	opts WireOptions

	mu     sync.Mutex
	conns  map[net.Conn]struct{}
	closed bool
	wg     sync.WaitGroup

	mConns    *obs.Gauge
	mAccepted *obs.Counter
	mFrames   *obs.Counter
	mErrors   *obs.Counter
}

// NewWireServer starts serving the binary protocol on ln. It returns
// immediately; Close (or closing ln) stops it.
func NewWireServer(svc *Service, ln net.Listener, opts WireOptions) *WireServer {
	if opts.Workers <= 0 {
		opts.Workers = runtime.GOMAXPROCS(0)
		if opts.Workers > 4 {
			opts.Workers = 4
		}
	}
	if opts.QueueDepth <= 0 {
		opts.QueueDepth = 128
	}
	if opts.MaxPayload <= 0 {
		opts.MaxPayload = wire.DefaultMaxPayload
	}
	if opts.MaxBatch <= 0 {
		opts.MaxBatch = 4096
	}
	ws := &WireServer{
		svc:   svc,
		ln:    ln,
		opts:  opts,
		conns: map[net.Conn]struct{}{},
	}
	r := opts.Registry
	ws.mConns = r.Gauge(obs.MetricWireConns)
	ws.mAccepted = r.Counter(obs.MetricWireAccepted)
	ws.mFrames = r.Counter(obs.MetricWireFrames)
	ws.mErrors = r.Counter(obs.MetricWireErrorFrames)
	ws.wg.Add(1)
	go ws.acceptLoop()
	return ws
}

// ListenWire listens on addr (e.g. "127.0.0.1:9090") and serves the
// binary protocol there.
func ListenWire(svc *Service, addr string, opts WireOptions) (*WireServer, error) {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, err
	}
	return NewWireServer(svc, ln, opts), nil
}

// Addr returns the bound listen address (useful with ":0").
func (ws *WireServer) Addr() string { return ws.ln.Addr().String() }

// Close stops accepting, closes every live connection, and waits for
// the per-connection pipelines to exit. Idempotent.
func (ws *WireServer) Close() error {
	ws.mu.Lock()
	if ws.closed {
		ws.mu.Unlock()
		ws.wg.Wait()
		return nil
	}
	ws.closed = true
	conns := make([]net.Conn, 0, len(ws.conns))
	for c := range ws.conns {
		conns = append(conns, c)
	}
	ws.mu.Unlock()
	err := ws.ln.Close()
	for _, c := range conns {
		_ = c.Close()
	}
	ws.wg.Wait()
	return err
}

func (ws *WireServer) acceptLoop() {
	defer ws.wg.Done()
	for {
		nc, err := ws.ln.Accept()
		if err != nil {
			return
		}
		ws.mu.Lock()
		if ws.closed {
			ws.mu.Unlock()
			_ = nc.Close()
			return
		}
		ws.conns[nc] = struct{}{}
		ws.mu.Unlock()
		ws.mAccepted.Inc()
		ws.mConns.Add(1)
		ws.wg.Add(1)
		go ws.serveConn(nc)
	}
}

// wireJob is one framed request traveling reader→worker: seq is the
// arrival order the writer restores, refuse short-circuits execution
// with a typed error frame (version/size refusals decided at read
// time must still flow through the writer to keep ordering).
type wireJob struct {
	seq     uint64
	hdr     wire.Header
	payload []byte // pooled; worker releases
	refuse  wire.ErrCode
	detail  string
}

// wireResult is one encoded response frame traveling worker→writer.
type wireResult struct {
	seq   uint64
	frame []byte // pooled; writer releases after write
}

func (ws *WireServer) serveConn(nc net.Conn) {
	defer ws.wg.Done()
	defer func() {
		ws.mu.Lock()
		delete(ws.conns, nc)
		ws.mu.Unlock()
		ws.mConns.Add(-1)
		_ = nc.Close()
	}()
	if tc, ok := nc.(*net.TCPConn); ok {
		_ = tc.SetNoDelay(true)
	}

	jobs := make(chan wireJob, ws.opts.QueueDepth)
	results := make(chan wireResult, ws.opts.QueueDepth)

	// Workers: decode, execute against the snapshot engine, encode.
	var workerWg sync.WaitGroup
	for w := 0; w < ws.opts.Workers; w++ {
		workerWg.Add(1)
		go func() {
			defer workerWg.Done()
			ws.worker(jobs, results)
		}()
	}
	// Close results once every worker is done, so the writer drains
	// fully and exits.
	go func() {
		workerWg.Wait()
		close(results)
	}()

	// Writer: restore arrival order by sequence number. hold parks
	// responses that completed ahead of an earlier in-flight request.
	var writerWg sync.WaitGroup
	writerWg.Add(1)
	go func() {
		defer writerWg.Done()
		bw := bufio.NewWriterSize(nc, 32<<10)
		hold := map[uint64][]byte{}
		next := uint64(0)
		for res := range results {
			hold[res.seq] = res.frame
			for {
				frame, ok := hold[next]
				if !ok {
					break
				}
				delete(hold, next)
				next++
				if _, err := bw.Write(frame); err != nil {
					wire.PutBuf(frame)
					// The socket is gone; keep draining so workers
					// never block on the results channel.
					continue
				}
				wire.PutBuf(frame)
			}
			if len(results) == 0 {
				// No response immediately behind this one: flush the
				// batch to the wire rather than waiting for more.
				_ = bw.Flush()
			}
		}
		_ = bw.Flush()
		for _, frame := range hold {
			wire.PutBuf(frame)
		}
	}()

	// Reader: frames → jobs, in arrival order.
	var seq uint64
	var buf []byte
	for {
		hdr, payload, nbuf, err := wire.ReadFrame(nc, buf, ws.opts.MaxPayload)
		buf = nbuf
		if err != nil {
			if errors.Is(err, wire.ErrTooLarge) {
				// Framing itself is intact but the payload was refused
				// unread; the stream position is lost, so answer and
				// drop the connection.
				jobs <- wireJob{seq: seq, hdr: hdr, refuse: wire.CodeTooLarge, detail: err.Error()}
				seq++
			}
			break
		}
		ws.mFrames.Inc()
		job := wireJob{seq: seq, hdr: hdr}
		seq++
		switch {
		case hdr.Major != wire.Major, hdr.Minor < ws.opts.RequireMinor, hdr.Minor > ws.advertisedMinor():
			job.refuse = wire.CodeVersion
			job.detail = fmt.Sprintf("server speaks v%d.%d", wire.Major, ws.advertisedMinor())
		default:
			job.payload = append(wire.GetBuf(), payload...)
		}
		jobs <- job
	}
	close(jobs)
	workerWg.Wait()
	writerWg.Wait()
}

// advertisedMinor is the minor version the server claims: its own, or
// RequireMinor when that models a newer server.
func (ws *WireServer) advertisedMinor() uint8 {
	if ws.opts.RequireMinor > wire.Minor {
		return ws.opts.RequireMinor
	}
	return wire.Minor
}

// worker executes jobs and emits encoded response frames.
func (ws *WireServer) worker(jobs <-chan wireJob, results chan<- wireResult) {
	var pairs []wire.Pair
	var routes []wire.RouteInfo
	reqs := make([]Request, 0, 64)
	for job := range jobs {
		frame := ws.execute(&job, &pairs, &routes, &reqs)
		if job.payload != nil {
			wire.PutBuf(job.payload)
		}
		results <- wireResult{seq: job.seq, frame: frame}
	}
}

// errFrame encodes a typed error response.
func errFrame(reqID uint64, code wire.ErrCode, detail string) []byte {
	payload := wire.AppendError(wire.GetBuf(), code, detail)
	frame := wire.AppendFrame(wire.GetBuf(), wire.OpError, wire.FlagResponse, reqID, payload)
	wire.PutBuf(payload)
	return frame
}

// wireErrCode maps a serving-path error to the typed frame code the
// HTTP layer would have mapped to a status.
func wireErrCode(err error) wire.ErrCode {
	switch {
	case errors.Is(err, ErrOverload):
		return wire.CodeOverload
	case errors.Is(err, ErrBacklog):
		return wire.CodeBacklog
	case errors.Is(err, ErrDraining), errors.Is(err, ErrClosed):
		return wire.CodeDraining
	case errors.Is(err, context.DeadlineExceeded):
		return wire.CodeDeadline
	case errors.Is(err, context.Canceled):
		return wire.CodeCanceled
	default:
		return wire.CodeInternal
	}
}

// budgetCtx re-arms a request's deadline budget as a context.
func budgetCtx(deadlineUS uint32) (context.Context, context.CancelFunc) {
	if deadlineUS == 0 {
		return context.Background(), func() {}
	}
	return context.WithTimeout(context.Background(), time.Duration(deadlineUS)*time.Microsecond)
}

// execute runs one job and returns its encoded response frame. The
// scratch slices amortize batch decode/encode across a connection's
// lifetime.
func (ws *WireServer) execute(job *wireJob, pairs *[]wire.Pair, routes *[]wire.RouteInfo, reqs *[]Request) []byte {
	id := job.hdr.ReqID
	if job.refuse != 0 {
		ws.mErrors.Inc()
		return errFrame(id, job.refuse, job.detail)
	}
	switch job.hdr.Op {
	case wire.OpPing:
		payload := wire.AppendPingResp(wire.GetBuf(), wire.PingResp{Major: wire.Major, Minor: ws.advertisedMinor()})
		frame := wire.AppendFrame(wire.GetBuf(), wire.OpPing, wire.FlagResponse, id, payload)
		wire.PutBuf(payload)
		return frame

	case wire.OpUnicast:
		req, err := wire.ParseUnicastReq(job.payload)
		if err != nil {
			ws.mErrors.Inc()
			return errFrame(id, wire.CodeBadRequest, err.Error())
		}
		if !ws.svc.t.Contains(topo.NodeID(req.Src)) || !ws.svc.t.Contains(topo.NodeID(req.Dst)) {
			ws.mErrors.Inc()
			return errFrame(id, wire.CodeBadRequest, "node outside topology")
		}
		ctx, cancel := budgetCtx(req.DeadlineUS)
		r, err := ws.svc.RouteCtx(ctx, topo.NodeID(req.Src), topo.NodeID(req.Dst))
		cancel()
		if err != nil {
			ws.mErrors.Inc()
			return errFrame(id, wireErrCode(err), "")
		}
		payload := wire.AppendUnicastResp(wire.GetBuf(), wire.UnicastResp{
			Gen:      ws.svc.Generation(),
			FlightID: r.FlightID,
			Route:    routeInfoOf(r),
		})
		frame := wire.AppendFrame(wire.GetBuf(), wire.OpUnicast, wire.FlagResponse, id, payload)
		wire.PutBuf(payload)
		return frame

	case wire.OpBatch:
		deadline, ps, err := wire.ParseBatchReq(job.payload, (*pairs)[:0])
		*pairs = ps
		if err != nil {
			ws.mErrors.Inc()
			return errFrame(id, wire.CodeBadRequest, err.Error())
		}
		if len(ps) > ws.opts.MaxBatch {
			ws.mErrors.Inc()
			return errFrame(id, wire.CodeTooLarge, fmt.Sprintf("batch of %d pairs exceeds limit %d", len(ps), ws.opts.MaxBatch))
		}
		rq := (*reqs)[:0]
		for _, q := range ps {
			if !ws.svc.t.Contains(topo.NodeID(q.Src)) || !ws.svc.t.Contains(topo.NodeID(q.Dst)) {
				ws.mErrors.Inc()
				*reqs = rq
				return errFrame(id, wire.CodeBadRequest, "node outside topology")
			}
			rq = append(rq, Request{Src: topo.NodeID(q.Src), Dst: topo.NodeID(q.Dst)})
		}
		*reqs = rq
		ctx, cancel := budgetCtx(deadline)
		rs, err := ws.svc.BatchUnicastCtx(ctx, rq)
		cancel()
		if err != nil {
			ws.mErrors.Inc()
			return errFrame(id, wireErrCode(err), "")
		}
		out := (*routes)[:0]
		for _, r := range rs {
			out = append(out, routeInfoOf(r))
		}
		*routes = out
		payload := wire.AppendBatchResp(wire.GetBuf(), ws.svc.Generation(), out)
		frame := wire.AppendFrame(wire.GetBuf(), wire.OpBatch, wire.FlagResponse, id, payload)
		wire.PutBuf(payload)
		return frame

	case wire.OpFeasibility:
		req, err := wire.ParseFeasReq(job.payload)
		if err != nil {
			ws.mErrors.Inc()
			return errFrame(id, wire.CodeBadRequest, err.Error())
		}
		if !ws.svc.t.Contains(topo.NodeID(req.Src)) || !ws.svc.t.Contains(topo.NodeID(req.Dst)) {
			ws.mErrors.Inc()
			return errFrame(id, wire.CodeBadRequest, "node outside topology")
		}
		cond, out := ws.svc.Feasibility(topo.NodeID(req.Src), topo.NodeID(req.Dst))
		payload := wire.AppendFeasResp(wire.GetBuf(), wire.FeasResp{Cond: uint8(cond), Outcome: uint8(out)})
		frame := wire.AppendFrame(wire.GetBuf(), wire.OpFeasibility, wire.FlagResponse, id, payload)
		wire.PutBuf(payload)
		return frame

	case wire.OpFaultDelta:
		req, err := wire.ParseFaultReq(job.payload)
		if err != nil {
			ws.mErrors.Inc()
			return errFrame(id, wire.CodeBadRequest, err.Error())
		}
		ev := faults.ChurnEvent{Kind: faults.DeltaKind(req.Kind), A: topo.NodeID(req.A), B: topo.NodeID(req.B)}
		// TryApply, matching the HTTP /fault semantics: churn never
		// blocks the data plane; a full queue is typed backpressure.
		if err := ws.svc.TryApply(ev); err != nil {
			ws.mErrors.Inc()
			code := wireErrCode(err)
			if code == wire.CodeInternal {
				// Validation failures (bad kind, node out of range,
				// non-adjacent link) are the client's fault.
				code = wire.CodeBadRequest
			}
			return errFrame(id, code, err.Error())
		}
		payload := wire.AppendFaultResp(wire.GetBuf(), wire.FaultResp{
			Gen:        ws.svc.Generation(),
			QueueDepth: uint32(ws.svc.QueueDepth()),
		})
		frame := wire.AppendFrame(wire.GetBuf(), wire.OpFaultDelta, wire.FlagResponse, id, payload)
		wire.PutBuf(payload)
		return frame

	default:
		ws.mErrors.Inc()
		return errFrame(id, wire.CodeUnknownOp, job.hdr.Op.String())
	}
}

// routeInfoOf compacts a routed result for the wire (clamped to the
// field widths; a hypercube route can't exceed them anyway).
func routeInfoOf(r *core.Route) wire.RouteInfo {
	return wire.RouteInfo{
		Outcome: uint8(r.Outcome),
		Cond:    uint8(r.Condition),
		Hamming: uint16(r.Hamming),
		Hops:    uint16(r.Len()),
	}
}
