// Package serve is the concurrent route-serving engine: the first layer
// of the system that answers unicast queries for many callers at once
// instead of computing answers for one.
//
// The paper's routing decision is read-mostly. Safety levels change only
// on fault churn (a FailNode/RecoverNode/FailLink event), while every
// unicast between two churn events routes against the same level
// fixpoint — exactly the shape RCU-style snapshotting exploits. A
// Service therefore keeps one immutable, generation-stamped Snapshot
// behind an atomic pointer:
//
//   - Readers (Route, Feasibility, BatchUnicast, RouteAll) load the
//     pointer, route, and never take a lock. A reader keeps the snapshot
//     it loaded for the whole query, so every answer is internally
//     consistent even while the pointer moves underneath it.
//   - Fault churn goes through a bounded apply queue drained by a single
//     applier goroutine, which owns the live fault oracle, reconverges
//     the levels through core.RepairLevels (cold Compute as fallback),
//     and publishes the next snapshot with a single pointer swap.
//
// Stale-snapshot routing is safe, not merely tolerated: by Theorem 1 the
// safety-level fixpoint for a fault set is unique, so a snapshot is the
// exact assignment for the faults it was stamped with, and every route
// it produces is a correct route of that slightly-older cube — the same
// guarantee any distributed execution gives between two GS exchanges
// (see DESIGN.md §9 for the full argument).
//
// Production hardening lives in harden.go: the context-aware readers
// (RouteCtx, BatchUnicastCtx, RouteAllCtx) add per-request deadlines, a
// lock-free GCRA token bucket for admission control, and graceful drain
// via Shutdown. The load taxonomy is deliberately split — ErrBacklog is
// writer-side backpressure (the churn queue is full, so a churn storm
// throttles writers while readers keep serving the last snapshot;
// the applier also coalesces every queued event into one repair + one
// swap, so a storm of k events costs one reconvergence, not k),
// ErrOverload is reader-side shedding (admission refused the query),
// and ErrDraining means Shutdown has begun. See docs/OPERATIONS.md.
//
// Key invariant (drain ordering): a context-aware request admitted
// before Shutdown completes against a consistent snapshot, all churn
// accepted before the drain is flushed into one final published
// snapshot, and only then does the applier stop. The acquire path
// increments the inflight count before re-checking the phase under
// sequentially consistent atomics, so Shutdown either observes the
// request or the request observes the drain — never neither.
package serve
