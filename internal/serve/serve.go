package serve

import (
	"errors"
	"fmt"
	"runtime"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/core"
	"repro/internal/faults"
	"repro/internal/obs"
	"repro/internal/topo"
)

// ErrClosed is returned by mutations submitted after Close.
var ErrClosed = errors.New("serve: service closed")

// ErrBacklog is returned by TryApply when the apply queue is full — the
// backpressure signal of a churn storm.
var ErrBacklog = errors.New("serve: apply queue full")

// Request is one unicast query of a batch.
type Request struct {
	Src, Dst topo.NodeID
}

// Snapshot is one immutable published state: a safety-level assignment
// detached from the live fault oracle (core.Assignment.Detach), stamped
// with the fault-set generation it corresponds to. All methods are safe
// for arbitrary concurrent use; nothing in a Snapshot ever mutates.
type Snapshot struct {
	// gen and genCheck carry the same generation; they are written once
	// at construction and compared by readers (and TestServeChurn) as a
	// torn-publication canary. A snapshot observed with gen != genCheck
	// would mean the pointer swap exposed a half-built value.
	gen      uint64
	as       *core.Assignment
	rt       *core.Router
	at       time.Time
	genCheck uint64
}

// newSnapshot builds a snapshot around a detached assignment. The
// router is shared by every reader of the snapshot: core.Router carries
// no per-unicast state, and the observer is the counter-only kind,
// which is safe for concurrent use.
func newSnapshot(gen uint64, det *core.Assignment, tie core.TieBreak, ro *obs.RouteObserver) *Snapshot {
	return &Snapshot{
		gen:      gen,
		as:       det,
		rt:       core.NewRouter(det, tie).Observe(ro),
		at:       time.Now(),
		genCheck: gen,
	}
}

// Age returns how long ago the snapshot was published — the staleness
// a reader routed against, exported as serve_snapshot_age_us.
func (sn *Snapshot) Age() time.Duration { return time.Since(sn.at) }

// Generation returns the fault-set generation the snapshot was built
// from.
func (sn *Snapshot) Generation() uint64 { return sn.gen }

// Consistent reports whether the generation stamp survived publication
// untorn. With atomic.Pointer publication this is always true; the
// method exists so the churn tests can assert it under -race.
func (sn *Snapshot) Consistent() bool { return sn.gen == sn.genCheck }

// Assignment returns the snapshot's (immutable) safety-level
// assignment.
func (sn *Snapshot) Assignment() *core.Assignment { return sn.as }

// Level returns node a's public safety level in this snapshot.
func (sn *Snapshot) Level(a topo.NodeID) int { return sn.as.Level(a) }

// Faults returns the snapshot's fault view — the detached assignment's
// cloned fault-set state, immutable and consistent with the levels the
// snapshot routes on. Diagnosis front-ends collect syndromes from it
// so every test in one sweep sees one generation.
func (sn *Snapshot) Faults() *faults.Set { return sn.as.Faults() }

// Route unicasts from src to dst pinned to this snapshot. Callers that
// must answer several queries against one consistent state (the batch
// path, the property tests) hold a snapshot and route on it directly.
func (sn *Snapshot) Route(src, dst topo.NodeID) *core.Route {
	return sn.rt.Unicast(src, dst)
}

// Feasibility evaluates the admission test pinned to this snapshot.
func (sn *Snapshot) Feasibility(src, dst topo.NodeID) (core.Condition, core.Outcome) {
	return sn.rt.Feasibility(src, dst)
}

// Options tune a Service. The zero value serves with a 64-entry apply
// queue, a GOMAXPROCS-sized batch worker pool, the default tie-break,
// and no instrumentation.
type Options struct {
	// QueueDepth bounds the apply queue (<= 0 means 64). A full queue
	// blocks Apply and refuses TryApply; readers are unaffected.
	QueueDepth int
	// Workers sizes the BatchUnicast/RouteAll worker pool (<= 0 means
	// GOMAXPROCS).
	Workers int
	// Rate caps admitted work on the context-aware readers at this many
	// unicasts per second through a token bucket (RouteCtx costs 1,
	// BatchUnicastCtx one per item, RouteAllCtx one per destination).
	// <= 0 disables admission control. Shed requests fail fast with
	// ErrOverload; the context-free readers are never shed.
	Rate float64
	// Burst is the token-bucket depth in unicasts (< 1 means 1). Only
	// meaningful when Rate > 0.
	Burst int
	// Tie is the routing tie-break policy (nil means core.LowestDim).
	Tie core.TieBreak
	// Registry receives the per-service metrics (nil disables).
	Registry *obs.Registry
	// Compute tunes the level computations the applier runs. MaxRounds
	// must stay 0 (truncated convergence cannot be repaired).
	Compute core.Options
	// Flight supplies a pre-built flight recorder (shared across
	// services, or sized via obs.FlightOptions). When nil, the service
	// builds a default recorder — the flight recorder is on by default;
	// set NoFlight to serve without one.
	Flight *obs.FlightRecorder
	// NoFlight disables the flight recorder entirely (benchmarking the
	// bare path; ignored when Flight is non-nil).
	NoFlight bool
}

// applyMsg is one unit of the apply queue: a churn batch, or a barrier
// marker (events == nil) whose done channel closes once every earlier
// message has been fully applied and published.
type applyMsg struct {
	events []faults.ChurnEvent
	done   chan struct{}
}

// Service is the concurrent route-serving engine over one topology. All
// exported methods are safe for concurrent use; construction is the
// only exception (New publishes the first snapshot itself).
type Service struct {
	t   topo.Topology
	cur atomic.Pointer[Snapshot]

	queue  chan applyMsg
	closed chan struct{}
	once   sync.Once
	wg     sync.WaitGroup

	// Applier-owned state: the live fault oracle and the repair seed.
	// Nothing outside the applier goroutine touches these after New.
	set     *faults.Set
	live    *core.Assignment
	liveGen uint64

	workers int
	tie     core.TieBreak
	copts   core.Options

	// Hardened read-path state (harden.go): lifecycle phase, in-flight
	// request count for drain ordering, and the admission bucket.
	phase     atomic.Int32
	inflight  atomic.Int64
	drained   chan struct{}
	drainOnce sync.Once
	bucket    *tokenBucket

	// Metric handles, resolved once (nil-safe no-ops when
	// uninstrumented).
	routeObs   *obs.RouteObserver
	mGen       *obs.Gauge
	mSwaps     *obs.Counter
	mSwapNs    *obs.Gauge
	mSwapHist  *obs.Histogram
	mRepairs   *obs.Counter
	mCold      *obs.Counter
	mDepth     *obs.Gauge
	mApplied   *obs.Counter
	mApplyErrs *obs.Counter
	mRejected  *obs.Counter
	mCoalesced *obs.Counter
	mRoutes    *obs.Counter
	mStale     *obs.Counter
	mBatches   *obs.Counter
	mBatchN    *obs.Counter
	mFanouts   *obs.Counter
	mFanoutN   *obs.Counter

	mOverload    *obs.Counter
	mDeadline    *obs.Counter
	mInflight    *obs.Gauge
	mDraining    *obs.Gauge
	mLatRoute    *obs.Histogram
	mLatBatch    *obs.Histogram
	mLatRouteAll *obs.Histogram
	mLatRepair   *obs.Histogram
	mRepairLag   *obs.Gauge
	mQueueHWM    *obs.Gauge

	// flight is the always-on request recorder (nil only with
	// Options.NoFlight).
	flight *obs.FlightRecorder
}

// New starts a service over the fault state of set, which is cloned:
// the service's churn stream and the caller's set evolve independently
// afterwards. The initial snapshot is computed synchronously, so a
// freshly constructed service answers queries immediately.
func New(set *faults.Set, opts Options) (*Service, error) {
	if set == nil {
		return nil, errors.New("serve: nil fault set")
	}
	if opts.Compute.MaxRounds > 0 {
		return nil, errors.New("serve: truncated convergence (Compute.MaxRounds > 0) cannot be served")
	}
	depth := opts.QueueDepth
	if depth <= 0 {
		depth = 64
	}
	workers := opts.Workers
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	tie := opts.Tie
	if tie == nil {
		tie = core.LowestDim
	}
	s := &Service{
		t:       set.Topology(),
		queue:   make(chan applyMsg, depth),
		closed:  make(chan struct{}),
		drained: make(chan struct{}),
		set:     set.Clone(),
		workers: workers,
		tie:     tie,
		copts:   opts.Compute,
		bucket:  newTokenBucket(opts.Rate, opts.Burst),
	}
	switch {
	case opts.Flight != nil:
		s.flight = opts.Flight
	case !opts.NoFlight:
		s.flight = obs.NewFlightRecorder(obs.FlightOptions{Registry: opts.Registry})
	}
	s.bindMetrics(opts.Registry)
	s.live = core.Compute(s.set, s.copts)
	s.liveGen = s.set.Generation()
	s.publish(s.live, s.liveGen, false)
	s.wg.Add(1)
	go s.applier()
	return s, nil
}

// bindMetrics resolves every metric handle once. A nil registry leaves
// all handles nil, which the obs layer treats as "off".
func (s *Service) bindMetrics(r *obs.Registry) {
	s.routeObs = r.RouteObserver()
	s.mGen = r.Gauge(obs.MetricServeSnapshotGen)
	s.mSwaps = r.Counter(obs.MetricServeSwapsTotal)
	s.mSwapNs = r.Gauge(obs.MetricServeSwapLastNs)
	s.mSwapHist = r.Histogram(obs.MetricServeSwapMicros, 10, 100, 1000, 10000, 100000, 1000000)
	s.mRepairs = r.Counter(obs.MetricServeRepairsTotal)
	s.mCold = r.Counter(obs.MetricServeColdTotal)
	s.mDepth = r.Gauge(obs.MetricServeQueueDepth)
	s.mApplied = r.Counter(obs.MetricServeApplyTotal)
	s.mApplyErrs = r.Counter(obs.MetricServeApplyErrors)
	s.mRejected = r.Counter(obs.MetricServeApplyRejected)
	s.mCoalesced = r.Counter(obs.MetricServeApplyCoalesced)
	s.mRoutes = r.Counter(obs.MetricServeRoutesTotal)
	s.mStale = r.Counter(obs.MetricServeStaleReads)
	s.mBatches = r.Counter(obs.MetricServeBatchesTotal)
	s.mBatchN = r.Counter(obs.MetricServeBatchItems)
	s.mFanouts = r.Counter(obs.MetricServeFanoutsTotal)
	s.mFanoutN = r.Counter(obs.MetricServeFanoutItems)
	s.mOverload = r.Counter(obs.MetricServeOverloadTotal)
	s.mDeadline = r.Counter(obs.MetricServeDeadlineTotal)
	s.mInflight = r.Gauge(obs.MetricServeInflight)
	s.mDraining = r.Gauge(obs.MetricServeDraining)
	s.mLatRoute = r.LatencyHistogram(obs.MetricLatencyRoute)
	s.mLatBatch = r.LatencyHistogram(obs.MetricLatencyBatch)
	s.mLatRouteAll = r.LatencyHistogram(obs.MetricLatencyRouteAll)
	s.mLatRepair = r.LatencyHistogram(obs.MetricLatencyRepair)
	s.mRepairLag = r.Gauge(obs.MetricServeRepairLag)
	s.mQueueHWM = r.Gauge(obs.MetricServeQueueHWM)
	// Snapshot age is derived at scrape time, not pushed per request.
	// Registered before the first publish, so guard the nil snapshot.
	r.GaugeFunc(obs.MetricServeSnapshotAgeUs, func() int64 {
		sn := s.cur.Load()
		if sn == nil {
			return 0
		}
		return sn.Age().Microseconds()
	})
}

// Flight returns the service's flight recorder (nil with NoFlight).
func (s *Service) Flight() *obs.FlightRecorder { return s.flight }

// Topology returns the topology the service routes over.
func (s *Service) Topology() topo.Topology { return s.t }

// Current returns the currently published snapshot. The caller may hold
// it indefinitely; it never mutates.
func (s *Service) Current() *Snapshot { return s.cur.Load() }

// Generation returns the generation of the published snapshot.
func (s *Service) Generation() uint64 { return s.cur.Load().Generation() }

// CurrentFaults returns the published snapshot's immutable fault view
// (see Snapshot.Faults). Lock-free; successive calls may observe
// different generations as churn lands.
func (s *Service) CurrentFaults() *faults.Set { return s.cur.Load().Faults() }

// QueueDepth returns the number of apply messages waiting (a live
// backpressure signal; also exported as serve_apply_queue_depth).
func (s *Service) QueueDepth() int { return len(s.queue) }

// Route unicasts from src to dst against the current snapshot, without
// taking any lock. Under pending churn the answer is served from the
// last published generation (counted as a stale read).
func (s *Service) Route(src, dst topo.NodeID) *core.Route {
	sn := s.cur.Load()
	s.mRoutes.Inc()
	if len(s.queue) > 0 {
		s.mStale.Inc()
	}
	return sn.Route(src, dst)
}

// Feasibility evaluates the admission test against the current
// snapshot.
func (s *Service) Feasibility(src, dst topo.NodeID) (core.Condition, core.Outcome) {
	return s.cur.Load().Feasibility(src, dst)
}

// validate rejects events that no fault set over this topology could
// ever accept, so the asynchronous applier only ever sees feasible
// mutations (redundant ones — failing an already-faulty node — are
// no-ops by Set semantics).
func (s *Service) validate(events []faults.ChurnEvent) error {
	for _, ev := range events {
		switch ev.Kind {
		case faults.DeltaFailNode, faults.DeltaRecoverNode:
			if !s.t.Contains(ev.A) {
				return fmt.Errorf("serve: node %d outside topology", ev.A)
			}
		case faults.DeltaFailLink, faults.DeltaRecoverLink:
			if !s.t.Contains(ev.A) || !s.t.Contains(ev.B) {
				return fmt.Errorf("serve: link endpoint outside topology")
			}
			if !s.t.Adjacent(ev.A, ev.B) {
				return fmt.Errorf("serve: %d and %d are not adjacent", ev.A, ev.B)
			}
		default:
			return fmt.Errorf("serve: unknown churn event kind %d", ev.Kind)
		}
	}
	return nil
}

// Apply submits churn events, blocking while the queue is full (the
// writer-side backpressure of a churn storm; readers never block). The
// events are applied asynchronously; use Flush to wait for the swap.
func (s *Service) Apply(events ...faults.ChurnEvent) error {
	if len(events) == 0 {
		return nil
	}
	if err := s.validate(events); err != nil {
		return err
	}
	msg := applyMsg{events: append([]faults.ChurnEvent(nil), events...)}
	// Closed is checked on its own first so a closed service refuses
	// deterministically even when the queue also has room.
	select {
	case <-s.closed:
		return ErrClosed
	default:
	}
	select {
	case <-s.closed:
		return ErrClosed
	case s.queue <- msg:
		depth := int64(len(s.queue))
		s.mDepth.Set(depth)
		s.mQueueHWM.Max(depth)
		return nil
	}
}

// TryApply is Apply that refuses with ErrBacklog instead of blocking
// when the queue is full.
func (s *Service) TryApply(events ...faults.ChurnEvent) error {
	if len(events) == 0 {
		return nil
	}
	if err := s.validate(events); err != nil {
		return err
	}
	msg := applyMsg{events: append([]faults.ChurnEvent(nil), events...)}
	select {
	case <-s.closed:
		return ErrClosed
	default:
	}
	select {
	case s.queue <- msg:
		depth := int64(len(s.queue))
		s.mDepth.Set(depth)
		s.mQueueHWM.Max(depth)
		return nil
	default:
		s.mRejected.Inc()
		s.flightRefuse(obs.ReqApply, time.Time{}, nil, len(events), ErrBacklog)
		return ErrBacklog
	}
}

// FailNode enqueues a node failure.
func (s *Service) FailNode(a topo.NodeID) error {
	return s.Apply(faults.ChurnEvent{Kind: faults.DeltaFailNode, A: a})
}

// RecoverNode enqueues a node recovery.
func (s *Service) RecoverNode(a topo.NodeID) error {
	return s.Apply(faults.ChurnEvent{Kind: faults.DeltaRecoverNode, A: a})
}

// FailLink enqueues a link failure.
func (s *Service) FailLink(a, b topo.NodeID) error {
	return s.Apply(faults.ChurnEvent{Kind: faults.DeltaFailLink, A: a, B: b})
}

// RecoverLink enqueues a link recovery.
func (s *Service) RecoverLink(a, b topo.NodeID) error {
	return s.Apply(faults.ChurnEvent{Kind: faults.DeltaRecoverLink, A: a, B: b})
}

// Flush blocks until every event submitted before the call has been
// applied and its snapshot published. If the service is closed
// concurrently, Flush returns early (the final drain releases pending
// barriers best-effort).
func (s *Service) Flush() {
	done := make(chan struct{})
	select {
	case <-s.closed:
		return
	case s.queue <- applyMsg{done: done}:
	}
	select {
	case <-done:
	case <-s.closed:
	}
}

// Close stops the applier after draining the queue. Events accepted
// before Close are applied; later Apply/TryApply calls return
// ErrClosed. Close is idempotent and safe to call concurrently with
// readers: the context-free readers keep serving the final snapshot,
// while the context-aware ones refuse with ErrDraining. Close does not
// wait for in-flight context-aware requests — use Shutdown for an
// ordered drain.
func (s *Service) Close() {
	s.phase.Store(phaseStopped)
	s.mDraining.Set(1)
	s.once.Do(func() { close(s.closed) })
	s.wg.Wait()
	// A submitter that raced the shutdown may have enqueued after the
	// applier's final drain; release its barrier so no Flush can hang.
	for {
		select {
		case msg := <-s.queue:
			if msg.done != nil {
				close(msg.done)
			}
		default:
			return
		}
	}
}

// applier is the single writer: it owns the fault oracle, drains the
// queue, reconverges levels, and publishes snapshots.
func (s *Service) applier() {
	defer s.wg.Done()
	for {
		var batch []applyMsg
		select {
		case <-s.closed:
			// Final drain: apply whatever was accepted before Close so
			// Flush barriers in flight are released, then exit.
			for {
				select {
				case msg := <-s.queue:
					batch = append(batch, msg)
				default:
					s.process(batch)
					return
				}
			}
		case msg := <-s.queue:
			batch = append(batch, msg)
		}
		// Coalesce: everything already queued joins this cycle, so a
		// churn storm of k events costs one repair + one swap.
		for {
			select {
			case msg := <-s.queue:
				batch = append(batch, msg)
				continue
			default:
			}
			break
		}
		s.process(batch)
	}
}

// process applies one coalesced batch, publishes at most one snapshot,
// and releases the batch's barriers.
func (s *Service) process(batch []applyMsg) {
	applied := 0
	churnMsgs := 0
	for _, msg := range batch {
		if len(msg.events) > 0 {
			churnMsgs++
		}
		for _, ev := range msg.events {
			if err := s.set.Apply(ev); err != nil {
				// validate() screens impossible events; anything left is
				// a redundant mutation the Set absorbed silently or a
				// bug worth counting.
				s.mApplyErrs.Inc()
			} else {
				applied++
			}
		}
	}
	if churnMsgs > 1 {
		s.mCoalesced.Add(int64(churnMsgs - 1))
	}
	s.mApplied.Add(int64(applied))
	if gen := s.set.Generation(); gen != s.liveGen {
		s.rebuild(gen)
	}
	s.mDepth.Set(int64(len(s.queue)))
	for _, msg := range batch {
		if msg.done != nil {
			close(msg.done)
		}
	}
}

// rebuild reconverges the live assignment to generation gen — by
// incremental repair from the previous fixpoint when the journal
// reaches back, cold otherwise — and publishes the detached result.
func (s *Service) rebuild(gen uint64) {
	// How many generations of accepted churn this rebuild catches up on
	// — the applier's lag behind the write stream.
	s.mRepairLag.Set(int64(gen - s.liveGen))
	start := time.Now()
	var as *core.Assignment
	repaired := false
	if delta, ok := s.set.Since(s.liveGen); ok {
		as, repaired = core.RepairLevels(s.live, s.set, delta, s.copts)
	}
	if !repaired {
		as = core.Compute(s.set, s.copts)
		s.mCold.Inc()
	} else {
		s.mRepairs.Inc()
	}
	s.live, s.liveGen = as, gen
	s.publish(as, gen, true)
	elapsed := time.Since(start)
	s.mSwapNs.Set(elapsed.Nanoseconds())
	s.mSwapHist.Observe(elapsed.Microseconds())
	s.mLatRepair.Observe(elapsed.Microseconds())
}

// publish detaches the assignment from the live oracle and swaps the
// snapshot pointer — the single write the readers ever observe.
func (s *Service) publish(as *core.Assignment, gen uint64, swap bool) {
	sn := newSnapshot(gen, as.Detach(), s.tie, s.routeObs)
	s.cur.Store(sn)
	s.mGen.Set(int64(gen))
	if swap {
		s.mSwaps.Inc()
	}
}
