package serve

import (
	"sync"
	"sync/atomic"

	"repro/internal/core"
	"repro/internal/topo"
)

// Batched queries. A batch pins ONE snapshot for all of its requests,
// so the answers are mutually consistent (all computed against the same
// fault generation) no matter how many swaps land while the batch runs.
// Requests are spread over a worker pool sized by Options.Workers
// (GOMAXPROCS by default); because the snapshot router is deterministic
// (fixed tie-break, immutable levels), the result slice is element-wise
// identical to routing the requests sequentially — the property the
// batch tests pin across both topology families.

// BatchUnicast answers every request against one snapshot and returns
// the routes in request order. It never blocks on churn.
func (s *Service) BatchUnicast(reqs []Request) []*core.Route {
	sn := s.cur.Load()
	s.mBatches.Inc()
	s.mBatchN.Add(int64(len(reqs)))
	if len(s.queue) > 0 {
		s.mStale.Inc()
	}
	return sn.BatchUnicast(reqs, s.workers)
}

// BatchUnicast answers every request pinned to this snapshot, fanned
// over at most workers goroutines (<= 1 means sequential).
func (sn *Snapshot) BatchUnicast(reqs []Request, workers int) []*core.Route {
	out := make([]*core.Route, len(reqs))
	if len(reqs) == 0 {
		return out
	}
	if workers > len(reqs) {
		workers = len(reqs)
	}
	if workers <= 1 {
		for i, q := range reqs {
			out[i] = sn.rt.Unicast(q.Src, q.Dst)
		}
		return out
	}
	// Work-stealing by atomic cursor: each worker claims the next
	// unanswered index, so skewed per-route costs (short vs partitioned
	// unicasts) cannot idle the pool.
	var next atomic.Int64
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				i := int(next.Add(1)) - 1
				if i >= len(reqs) {
					return
				}
				out[i] = sn.rt.Unicast(reqs[i].Src, reqs[i].Dst)
			}
		}()
	}
	wg.Wait()
	return out
}

// RouteAll fans one source out to every other node of the topology
// against one snapshot: the serving-layer analogue of a broadcast
// reachability sweep. The result is indexed by destination node ID;
// the source's own slot is nil.
func (s *Service) RouteAll(src topo.NodeID) []*core.Route {
	sn := s.cur.Load()
	nodes := s.t.Nodes()
	reqs := make([]Request, 0, nodes-1)
	for a := 0; a < nodes; a++ {
		if topo.NodeID(a) == src {
			continue
		}
		reqs = append(reqs, Request{Src: src, Dst: topo.NodeID(a)})
	}
	s.mFanouts.Inc()
	s.mFanoutN.Add(int64(len(reqs)))
	routes := sn.BatchUnicast(reqs, s.workers)
	out := make([]*core.Route, nodes)
	for i, q := range reqs {
		out[q.Dst] = routes[i]
	}
	return out
}
