package serve

import (
	"context"
	"fmt"
	"runtime"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/faults"
	"repro/internal/stats"
	"repro/internal/topo"
)

// Throughput benchmarks of the lock-free read path: 1/4/16 concurrent
// readers, with and without a background churn storm feeding the apply
// queue. The BENCH_4.json emitter (bench_json4_test.go at the repo
// root) additionally measures the same workloads against the
// mutex-guarded facade baseline; here we only track the engine itself
// so bench-gate can watch it without the baseline's noise.

// benchService builds a Q10 service with a representative fault load.
func benchService(b *testing.B, opts Options) *Service {
	b.Helper()
	tp := topo.MustCube(10)
	set := faults.NewSet(tp)
	if err := faults.InjectUniform(set, stats.NewRNG(42), 12); err != nil {
		b.Fatal(err)
	}
	s, err := New(set, opts)
	if err != nil {
		b.Fatal(err)
	}
	b.Cleanup(s.Close)
	return s
}

// churnStorm hammers the apply queue from one goroutine until stopped,
// cycling a feasible fail/recover schedule. TryApply keeps the storm
// from blocking on backpressure (rejected events are simply retried on
// the next lap, like a real churn feed would).
func churnStorm(s *Service, events []faults.ChurnEvent) (stop func()) {
	var quit atomic.Bool
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		for i := 0; !quit.Load(); i = (i + 1) % len(events) {
			_ = s.TryApply(events[i])
			// Yield between events: on a single-CPU box an unyielding
			// spin loop starves the readers we are measuring, which
			// would benchmark the Go scheduler rather than the engine.
			runtime.Gosched()
		}
	}()
	return func() { quit.Store(true); wg.Wait() }
}

func benchReaders(b *testing.B, readers int, churn bool) {
	s := benchService(b, Options{QueueDepth: 32})
	var events []faults.ChurnEvent
	if churn {
		events = faults.ChurnSchedule(s.Topology(), 9, 512, faults.ChurnOptions{Links: true})
		stop := churnStorm(s, events)
		defer stop()
	}
	nodes := s.Topology().Nodes()
	var seq atomic.Uint64
	b.ResetTimer()
	b.SetParallelism(readers) // goroutines = readers × GOMAXPROCS
	b.RunParallel(func(pb *testing.PB) {
		rng := stats.NewRNG(seq.Add(1) * 7919)
		for pb.Next() {
			src := topo.NodeID(rng.Intn(nodes))
			dst := topo.NodeID(rng.Intn(nodes))
			r := s.Route(src, dst)
			if r == nil {
				b.Fatal("nil route")
			}
		}
	})
}

func BenchmarkServeRoute(b *testing.B) {
	for _, readers := range []int{1, 4, 16} {
		for _, churn := range []bool{false, true} {
			name := fmt.Sprintf("readers=%d/churn=%v", readers, churn)
			b.Run(name, func(b *testing.B) { benchReaders(b, readers, churn) })
		}
	}
}

// BenchmarkServeRouteCtx measures the hardened read path — inflight
// accounting, phase check, admission bucket, context check — so the
// production-serving overhead over the raw snapshot read stays visible
// to bench-gate. The bare cell is the default path (flight recorder
// on); noflight is the same path with the recorder disabled, so the
// bare−noflight delta is the recorder's hot-path cost (the ≤5% budget
// BENCH_6.json documents); the full cell adds a deadline context and
// an (unsaturated) bucket.
func BenchmarkServeRouteCtx(b *testing.B) {
	run := func(b *testing.B, opts Options, withDeadline bool) {
		s := benchService(b, opts)
		nodes := s.Topology().Nodes()
		ctx := context.Background()
		if withDeadline {
			var cancel context.CancelFunc
			ctx, cancel = context.WithTimeout(ctx, time.Hour)
			defer cancel()
		}
		rng := stats.NewRNG(17)
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			src := topo.NodeID(rng.Intn(nodes))
			dst := topo.NodeID(rng.Intn(nodes))
			if _, err := s.RouteCtx(ctx, src, dst); err != nil {
				b.Fatal(err)
			}
		}
	}
	b.Run("bare", func(b *testing.B) { run(b, Options{}, false) })
	b.Run("noflight", func(b *testing.B) { run(b, Options{NoFlight: true}, false) })
	b.Run("deadline+admission", func(b *testing.B) {
		run(b, Options{Rate: 1e12, Burst: 1 << 20}, true)
	})
}

// BenchmarkServeBatch measures the batched path: one snapshot load
// amortized over a 64-request batch through the worker pool.
func BenchmarkServeBatch(b *testing.B) {
	s := benchService(b, Options{Workers: 4})
	nodes := s.Topology().Nodes()
	rng := stats.NewRNG(3)
	reqs := make([]Request, 64)
	for i := range reqs {
		reqs[i] = Request{
			Src: topo.NodeID(rng.Intn(nodes)),
			Dst: topo.NodeID(rng.Intn(nodes)),
		}
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		s.BatchUnicast(reqs)
	}
}

// BenchmarkServeSwap measures the writer path in isolation: apply one
// event and wait for the published swap (repair + detach + pointer
// store), alternating fail/recover so the fault load stays fixed.
func BenchmarkServeSwap(b *testing.B) {
	s := benchService(b, Options{})
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		var ev faults.ChurnEvent
		if i%2 == 0 {
			ev = faults.ChurnEvent{Kind: faults.DeltaFailNode, A: 777}
		} else {
			ev = faults.ChurnEvent{Kind: faults.DeltaRecoverNode, A: 777}
		}
		if err := s.Apply(ev); err != nil {
			b.Fatal(err)
		}
		s.Flush()
	}
}
