package serve

import (
	"context"
	"testing"
	"time"

	"repro/internal/core"
	"repro/internal/faults"
	"repro/internal/obs"
	"repro/internal/stats"
	"repro/internal/topo"
)

// TestFlightDetourIdentity is the route-quality property test: for every
// recorded single unicast that was actually delivered (optimal or
// suboptimal), the flight record's triple must satisfy
// Hops - Hamming == 2 * Detours — a delivered safety-level route strays
// off the minimal path only via spare-dimension detours, and each one
// costs exactly two extra links (out and back).
func TestFlightDetourIdentity(t *testing.T) {
	tp := topo.MustCube(8)
	set := faults.NewSet(tp)
	if err := faults.InjectUniform(set, stats.NewRNG(1234), 24); err != nil {
		t.Fatal(err)
	}
	fl := obs.NewFlightRecorder(obs.FlightOptions{Records: 8192})
	s, err := New(set, Options{Flight: fl})
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()

	rng := stats.NewRNG(99)
	ctx := context.Background()
	const calls = 3000
	for i := 0; i < calls; i++ {
		src := topo.NodeID(rng.Intn(tp.Nodes()))
		dst := topo.NodeID(rng.Intn(tp.Nodes()))
		if _, err := s.RouteCtx(ctx, src, dst); err != nil {
			t.Fatalf("call %d: %v", i, err)
		}
	}

	recs := fl.Records(0)
	if len(recs) < calls {
		t.Fatalf("retained %d records, want >= %d", len(recs), calls)
	}
	gen := s.Current().Generation()
	var delivered, suboptimal int
	for _, rec := range recs {
		if rec.Kind != obs.ReqRoute {
			t.Fatalf("unexpected kind %v in record %+v", rec.Kind, rec)
		}
		if rec.Gen != gen {
			t.Fatalf("record %d served against gen %d, snapshot is %d", rec.ID, rec.Gen, gen)
		}
		switch rec.Outcome {
		case obs.OutcomeOptimal, obs.OutcomeSuboptimal:
			delivered++
			if rec.Hops-rec.Hamming != 2*rec.Detours {
				t.Fatalf("record %+v violates hops - hamming == 2*detours", rec)
			}
			if rec.Outcome == obs.OutcomeSuboptimal {
				suboptimal++
				if rec.Detours == 0 {
					t.Fatalf("suboptimal record %+v has no detour", rec)
				}
			}
		}
	}
	if delivered == 0 {
		t.Fatal("no delivered routes recorded; property vacuous")
	}
	if suboptimal == 0 {
		t.Fatal("no suboptimal routes in the sample; raise the fault load")
	}
}

// TestFlightGenerationUnderChurn verifies generation attribution: a
// read served after a flushed churn write carries the new snapshot's
// generation in its flight record.
func TestFlightGenerationUnderChurn(t *testing.T) {
	set := faults.NewSet(topo.MustCube(6))
	fl := obs.NewFlightRecorder(obs.FlightOptions{})
	s, err := New(set, Options{Flight: fl})
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()

	ctx := context.Background()
	g0 := s.Current().Generation()
	if _, err := s.RouteCtx(ctx, 0, 9); err != nil {
		t.Fatal(err)
	}
	if err := s.Apply(faults.ChurnEvent{Kind: faults.DeltaFailNode, A: 33}); err != nil {
		t.Fatal(err)
	}
	s.Flush()
	g1 := s.Current().Generation()
	if g1 == g0 {
		t.Fatalf("generation did not advance after churn (still %d)", g1)
	}
	if _, err := s.RouteCtx(ctx, 0, 9); err != nil {
		t.Fatal(err)
	}

	recs := fl.Records(2)
	if len(recs) != 2 {
		t.Fatalf("retained %d records, want 2", len(recs))
	}
	if recs[0].Gen != g1 || recs[1].Gen != g0 {
		t.Errorf("generations = %d then %d (newest first), want %d then %d",
			recs[0].Gen, recs[1].Gen, g1, g0)
	}
}

// TestFlightIncidentSuboptimal is the end-to-end incident check on the
// paper's deterministic Section-3 scenario: Q4 with 0001 and 0010
// faulty makes 0000 unsafe, so 0000 -> 0011 (H = 2) admits under C3 and
// delivers suboptimally via one spare-dimension detour. That route must
// surface as a "non-minimal" incident whose trace carries the C3
// admission and the spare hop, linked to the request ID.
func TestFlightIncidentSuboptimal(t *testing.T) {
	set := faults.NewSet(topo.MustCube(4))
	if err := set.FailNodes(1, 2); err != nil { // 0001, 0010
		t.Fatal(err)
	}
	s, err := New(set, Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()

	r, err := s.RouteCtx(context.Background(), 0, 3)
	if err != nil {
		t.Fatal(err)
	}
	if r.Condition != core.CondC3 || r.Outcome != core.Suboptimal {
		t.Fatalf("route = %v/%v, want C3/suboptimal", r.Condition, r.Outcome)
	}
	if r.FlightID == 0 {
		t.Fatal("route has no flight ID")
	}
	if r.Len() != r.Hamming+2 {
		t.Fatalf("path length %d, want H+2 = %d", r.Len(), r.Hamming+2)
	}

	inc := s.Flight().Incidents()
	if inc.Total != 1 || len(inc.Incidents) != 1 {
		t.Fatalf("incidents = %d total %d retained, want exactly 1", inc.Total, len(inc.Incidents))
	}
	got := inc.Incidents[0]
	if got.Reason != "non-minimal" {
		t.Errorf("reason = %q, want non-minimal", got.Reason)
	}
	if got.Record.ID != r.FlightID {
		t.Errorf("incident records ID %d, route carries %d", got.Record.ID, r.FlightID)
	}
	if got.Record.Detours != 1 || got.Record.Hops != got.Record.Hamming+2 {
		t.Errorf("incident triple H=%d hops=%d detours=%d, want detours 1 and hops H+2",
			got.Record.Hamming, got.Record.Hops, got.Record.Detours)
	}
	tr := got.Trace
	if tr == nil {
		t.Fatal("incident has no trace")
	}
	if tr.RequestID != r.FlightID || tr.Generation != got.Record.Gen {
		t.Errorf("trace req/gen = %d/%d, want %d/%d", tr.RequestID, tr.Generation, r.FlightID, got.Record.Gen)
	}
	if len(tr.Events) != 1+r.Len()+1 {
		t.Fatalf("trace has %d events, want admit + %d hops + done", len(tr.Events), r.Len())
	}
	if tr.Events[0].Kind != obs.EvAdmit || tr.Events[0].Cond != "C3" {
		t.Errorf("first event = %v/%q, want admit under C3", tr.Events[0].Kind, tr.Events[0].Cond)
	}
	spares := 0
	for _, ev := range tr.Events {
		if ev.Kind == obs.EvHop && ev.Spare {
			spares++
		}
	}
	if spares != 1 {
		t.Errorf("trace shows %d spare hops, want 1", spares)
	}
	last := tr.Events[len(tr.Events)-1]
	if last.Kind != obs.EvDone || last.Node != 3 {
		t.Errorf("last event = %v at %d, want done at the destination 3", last.Kind, last.Node)
	}
}

// TestFlightRefusals verifies that requests shed before reaching a
// snapshot — admission overload and dead contexts — still leave flight
// records and promoted incidents with the right error class.
func TestFlightRefusals(t *testing.T) {
	set := faults.NewSet(topo.MustCube(4))
	s, err := New(set, Options{Rate: 1e-6, Burst: 1})
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()

	ctx := context.Background()
	if _, err := s.RouteCtx(ctx, 0, 3); err != nil {
		t.Fatalf("first request should pass the burst: %v", err)
	}
	if _, err := s.RouteCtx(ctx, 0, 3); err != ErrOverload {
		t.Fatalf("second request = %v, want ErrOverload", err)
	}
	dead, cancel := context.WithCancel(context.Background())
	cancel()
	if _, err := s.RouteCtx(dead, 0, 3); err == nil {
		t.Fatal("canceled context served")
	}

	want := map[obs.ErrClass]bool{obs.ErrClassOverload: false, obs.ErrClassCanceled: false}
	for _, inc := range s.Flight().Incidents().Incidents {
		if _, ok := want[inc.Record.Err]; ok {
			want[inc.Record.Err] = true
		}
	}
	for class, seen := range want {
		if !seen {
			t.Errorf("no incident with error class %q", class)
		}
	}
}

// TestFlightDeadlineBudget checks the recorded deadline budget: present
// when the caller set one, absent when not.
func TestFlightDeadlineBudget(t *testing.T) {
	set := faults.NewSet(topo.MustCube(4))
	fl := obs.NewFlightRecorder(obs.FlightOptions{})
	s, err := New(set, Options{Flight: fl})
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()

	if _, err := s.RouteCtx(context.Background(), 0, 3); err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithTimeout(context.Background(), time.Hour)
	defer cancel()
	if _, err := s.BatchUnicastCtx(ctx, []Request{{Src: 0, Dst: 3}, {Src: 0, Dst: 5}}); err != nil {
		t.Fatal(err)
	}

	recs := fl.Records(2)
	if len(recs) != 2 {
		t.Fatalf("retained %d records, want 2", len(recs))
	}
	batch, route := recs[0], recs[1]
	if batch.Kind != obs.ReqBatch || batch.Items != 2 {
		t.Fatalf("newest record %+v, want the 2-item batch", batch)
	}
	if batch.DeadlineUS <= 0 {
		t.Errorf("batch with 1h deadline recorded budget %d", batch.DeadlineUS)
	}
	if route.DeadlineUS != 0 {
		t.Errorf("deadline-free route recorded budget %d", route.DeadlineUS)
	}
}

// TestFlightExemplars verifies the histogram exemplar chain: a served
// request's ID lands in its latency bucket's exemplar slot.
func TestFlightExemplars(t *testing.T) {
	reg := obs.NewRegistry()
	set := faults.NewSet(topo.MustCube(4))
	s, err := New(set, Options{Registry: reg})
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()

	r, err := s.RouteCtx(context.Background(), 0, 3)
	if err != nil {
		t.Fatal(err)
	}
	h, ok := reg.Snapshot().Histograms[obs.MetricLatencyRoute]
	if !ok {
		t.Fatal("no latency_route_us histogram")
	}
	found := false
	for _, id := range h.Exemplars {
		if id == r.FlightID {
			found = true
		}
	}
	if !found {
		t.Errorf("exemplars %v do not include request %d", h.Exemplars, r.FlightID)
	}
}

// TestFlightDisabled pins the opt-out: NoFlight leaves the service with
// no recorder, requests carry no ID, and the old latency path works.
func TestFlightDisabled(t *testing.T) {
	set := faults.NewSet(topo.MustCube(4))
	s, err := New(set, Options{NoFlight: true})
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	if s.Flight() != nil {
		t.Fatal("NoFlight service still has a recorder")
	}
	r, err := s.RouteCtx(context.Background(), 0, 3)
	if err != nil {
		t.Fatal(err)
	}
	if r.FlightID != 0 {
		t.Errorf("disabled recorder issued ID %d", r.FlightID)
	}
}
