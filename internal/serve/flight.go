package serve

import (
	"context"
	"errors"
	"time"

	"repro/internal/core"
	"repro/internal/obs"
)

// Flight-recorder glue for the serving path: classify serving errors
// into compact obs.ErrClass codes, summarize a core.Route into the
// packed record fields, and — only when a record is promoted to an
// incident — reconstruct the full per-hop RouteTrace from the route's
// decision record and the snapshot's level assignment. Nothing here
// allocates on the healthy hot path; see obs/flight.go for the cost
// model.

// errClass maps a serving-path error to its flight-record class.
func errClass(err error) obs.ErrClass {
	switch {
	case err == nil:
		return obs.ErrClassNone
	case errors.Is(err, ErrOverload):
		return obs.ErrClassOverload
	case errors.Is(err, ErrBacklog):
		return obs.ErrClassBacklog
	case errors.Is(err, ErrDraining), errors.Is(err, ErrClosed):
		return obs.ErrClassDraining
	case errors.Is(err, context.DeadlineExceeded):
		return obs.ErrClassDeadline
	case errors.Is(err, context.Canceled):
		return obs.ErrClassCanceled
	default:
		return obs.ErrClassOther
	}
}

// outcomeOf shifts a routed outcome into the flight encoding (0 is
// reserved for "never routed").
func outcomeOf(r *core.Route) obs.OutcomeCode {
	return obs.OutcomeCode(r.Outcome) + 1
}

// detoursOf counts the spare-dimension hops of a route. A suboptimal
// safety-level unicast takes exactly one spare hop and pays it back
// coming home, so Hops - Hamming = 2 * detours on every delivery.
func detoursOf(r *core.Route) int {
	n := 0
	for i := range r.Hops {
		if r.Hops[i].Spare {
			n++
		}
	}
	return n
}

// deadlineUS returns the remaining deadline budget at start, in
// microseconds (0 when ctx carries no deadline, 1 minimum once one
// exists so "had a deadline" is never confused with "had none").
func deadlineUS(ctx context.Context, start time.Time) int64 {
	if ctx == nil {
		return 0
	}
	dl, ok := ctx.Deadline()
	if !ok {
		return 0
	}
	us := dl.Sub(start).Microseconds()
	if us < 1 {
		us = 1
	}
	return us
}

// flightRefuse records a request that never reached a snapshot —
// shed, draining, context-dead, or churn bounced off a full queue —
// and promotes it (refusals are anomalies by definition). start may be
// zero (TryApply has no admission timestamp) and ctx may be nil.
func (s *Service) flightRefuse(kind obs.ReqKind, start time.Time, ctx context.Context, items int, err error) {
	fl := s.flight
	if fl == nil {
		return
	}
	rec := obs.FlightRecord{
		ID:    fl.NextID(),
		Kind:  kind,
		Items: items,
		Err:   errClass(err),
	}
	if !start.IsZero() {
		rec.Start = start.Unix()
		rec.LatencyUS = time.Since(start).Microseconds()
		rec.DeadlineUS = deadlineUS(ctx, start)
	}
	if reason := fl.Record(&rec); reason != "" {
		fl.Promote(&rec, reason, nil)
	}
}

// flightServed records a successfully served batch/fan-out request
// (no per-route triple; the per-unicast evidence for those lives in
// the aggregate histograms) and feeds the latency histogram with the
// request ID as exemplar.
func (s *Service) flightServed(kind obs.ReqKind, start time.Time, ctx context.Context, items int, sn *Snapshot, stale bool, lat *obs.Histogram) {
	fl := s.flight
	id := fl.NextID()
	us := time.Since(start).Microseconds()
	lat.ObserveEx(us, id)
	rec := obs.FlightRecord{
		ID:         id,
		Kind:       kind,
		Gen:        sn.gen,
		Start:      start.Unix(),
		LatencyUS:  us,
		DeadlineUS: deadlineUS(ctx, start),
		Items:      items,
		Stale:      stale,
	}
	if !sn.Consistent() {
		rec.Err = obs.ErrClassTorn
	}
	if reason := fl.Record(&rec); reason != "" {
		fl.Promote(&rec, reason, nil)
	}
}

// traceOfRoute rebuilds the full decision trace of a served route for
// incident promotion: the admission decision at the source, every hop
// with its dimension, spare role and the hopped-to node's public level
// in the served snapshot, and the final outcome. Levels shown for hops
// are the snapshot's public levels (not the sender's link-adjusted
// view), which is what an operator comparing against /levels sees.
func traceOfRoute(r *core.Route, as *core.Assignment, id, gen uint64) *obs.RouteTrace {
	t := &obs.RouteTrace{
		Source:     int(r.Source),
		Dest:       int(r.Dest),
		Hamming:    r.Hamming,
		RequestID:  id,
		Generation: gen,
		Cond:       r.Condition.String(),
		Outcome:    r.Outcome.String(),
		PathLen:    r.Len(),
	}
	t.Events = append(t.Events, obs.RouteEvent{
		Kind:    obs.EvAdmit,
		Node:    int(r.Source),
		Hamming: r.Hamming,
		Level:   as.OwnLevel(r.Source),
		Cond:    r.Condition.String(),
		Outcome: r.Outcome.String(),
	})
	at := r.Source
	for _, h := range r.Hops {
		t.Events = append(t.Events, obs.RouteEvent{
			Kind:  obs.EvHop,
			Node:  int(h.To),
			From:  int(h.From),
			Dim:   h.Dim,
			Spare: h.Spare,
			Level: as.Level(h.To),
		})
		at = h.To
	}
	note := ""
	if r.Err != nil {
		note = r.Err.Error()
	}
	t.Events = append(t.Events, obs.RouteEvent{
		Kind:    obs.EvDone,
		Node:    int(at),
		Cond:    r.Condition.String(),
		Outcome: r.Outcome.String(),
		Note:    note,
	})
	if r.Outcome != core.Failure {
		t.Stretch = t.PathLen - r.Hamming
	}
	return t
}
