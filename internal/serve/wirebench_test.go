package serve

import (
	"context"
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"strconv"
	"testing"
	"time"

	"repro/internal/topo"
	"repro/internal/wire"
)

// The wire-vs-HTTP serving benchmarks. Both sides drive the SAME Q10
// engine over real sockets from parallel clients, one route per op, so
// ns/op is directly an inverse req/s-per-core: the BENCH_8.json
// emitter at the repo root records the ratio and gates the >= 5x
// data-plane claim, and bench-gate watches these for regressions.

// benchWireServer binds a wire server to the bench service.
func benchWireServer(b *testing.B, opts WireOptions) *WireServer {
	b.Helper()
	svc := benchService(b, Options{})
	ws, err := ListenWire(svc, "127.0.0.1:0", opts)
	if err != nil {
		b.Fatal(err)
	}
	b.Cleanup(func() { ws.Close() })
	return ws
}

// benchHTTPServer exposes the bench service through the same JSON
// /route surface cmd/slserve serves (query params in, JSON out, the
// full encode on every response). Address parsing here is plain
// integers — cheaper than slserve's bit-string parse, which only
// biases the comparison AGAINST the wire path.
func benchHTTPServer(b *testing.B) *httptest.Server {
	b.Helper()
	svc := benchService(b, Options{})
	mux := http.NewServeMux()
	mux.HandleFunc("/route", func(w http.ResponseWriter, r *http.Request) {
		q := r.URL.Query()
		src, err1 := strconv.Atoi(q.Get("src"))
		dst, err2 := strconv.Atoi(q.Get("dst"))
		if err1 != nil || err2 != nil {
			http.Error(w, "bad node", http.StatusBadRequest)
			return
		}
		rt, err := svc.RouteCtx(r.Context(), topo.NodeID(src), topo.NodeID(dst))
		if err != nil {
			http.Error(w, err.Error(), http.StatusInternalServerError)
			return
		}
		w.Header().Set("Content-Type", "application/json")
		_ = json.NewEncoder(w).Encode(map[string]any{
			"generation": svc.Generation(),
			"outcome":    rt.Outcome.String(),
			"condition":  rt.Condition.String(),
			"distance":   rt.Hamming,
			"hops":       rt.Len(),
		})
	})
	hs := httptest.NewServer(mux)
	b.Cleanup(hs.Close)
	return hs
}

// BenchmarkServeWire is the headline data-plane number: parallel
// callers issuing single unicasts through the coalescing client, which
// merges them into pipelined OpBatch frames on pooled connections —
// the deployment shape cmd/slload -wire -coalesce drives.
func BenchmarkServeWire(b *testing.B) {
	ws := benchWireServer(b, WireOptions{})
	c, err := wire.Dial(ws.Addr(), wire.ClientOptions{Conns: 2})
	if err != nil {
		b.Fatal(err)
	}
	defer c.Close()
	// MaxBatch matches the caller count below: batches flush the moment
	// a full wave of callers has enqueued instead of waiting out the
	// linger timer (32 parallel callers per GOMAXPROCS, batch of 32, so
	// this holds at any core count).
	co := wire.NewCoalescer(c, wire.CoalescerOptions{MaxBatch: 32, MaxDelay: 100 * time.Microsecond})
	defer co.Close()

	ctx := context.Background()
	b.SetParallelism(32) // coalescing needs concurrent callers to merge
	b.ReportAllocs()
	b.ResetTimer()
	b.RunParallel(func(pb *testing.PB) {
		i := uint32(0)
		for pb.Next() {
			i++
			if _, _, err := co.Unicast(ctx, i%1024, (i*7)%1024); err != nil {
				b.Fatal(err)
			}
		}
	})
}

// BenchmarkServeWireUnpipelined is the same workload without the
// coalescer: one request frame per op, still multiplexed on pooled
// connections. The gap to BenchmarkServeWire is what client-side
// batching buys.
func BenchmarkServeWireUnpipelined(b *testing.B) {
	ws := benchWireServer(b, WireOptions{})
	c, err := wire.Dial(ws.Addr(), wire.ClientOptions{Conns: 2})
	if err != nil {
		b.Fatal(err)
	}
	defer c.Close()

	ctx := context.Background()
	b.ReportAllocs()
	b.ResetTimer()
	b.RunParallel(func(pb *testing.PB) {
		i := uint32(0)
		for pb.Next() {
			i++
			if _, err := c.Unicast(ctx, i%1024, (i*7)%1024); err != nil {
				b.Fatal(err)
			}
		}
	})
}

// BenchmarkServeWireBatch measures explicit 64-pair batch frames —
// the per-route floor of the wire path.
func BenchmarkServeWireBatch(b *testing.B) {
	ws := benchWireServer(b, WireOptions{})
	c, err := wire.Dial(ws.Addr(), wire.ClientOptions{})
	if err != nil {
		b.Fatal(err)
	}
	defer c.Close()

	const batch = 64
	pairs := make([]wire.Pair, batch)
	for i := range pairs {
		pairs[i] = wire.Pair{Src: uint32(i * 3 % 1024), Dst: uint32(i * 11 % 1024)}
	}
	ctx := context.Background()
	routes := make([]wire.RouteInfo, 0, batch)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_, out, err := c.Batch(ctx, pairs, routes)
		if err != nil || len(out) != batch {
			b.Fatal(err)
		}
		routes = out
	}
	b.StopTimer()
	// Report per-route cost so the number is comparable to the
	// single-unicast benchmarks above.
	perRoute := float64(b.Elapsed().Nanoseconds()) / float64(b.N) / batch
	b.ReportMetric(perRoute, "ns/route")
}

// BenchmarkServeHTTPRoute is the HTTP/JSON baseline on the same
// workload: parallel keep-alive clients, one GET /route per op.
func BenchmarkServeHTTPRoute(b *testing.B) {
	hs := benchHTTPServer(b)
	tr := &http.Transport{MaxIdleConns: 64, MaxIdleConnsPerHost: 64}
	defer tr.CloseIdleConnections()
	client := &http.Client{Transport: tr}

	b.ReportAllocs()
	b.ResetTimer()
	b.RunParallel(func(pb *testing.PB) {
		buf := make([]byte, 4096)
		i := uint32(0)
		for pb.Next() {
			i++
			url := fmt.Sprintf("%s/route?src=%d&dst=%d", hs.URL, i%1024, (i*7)%1024)
			resp, err := client.Get(url)
			if err != nil {
				b.Fatal(err)
			}
			for {
				if _, rerr := resp.Body.Read(buf); rerr != nil {
					break
				}
			}
			resp.Body.Close()
			if resp.StatusCode != http.StatusOK {
				b.Fatalf("HTTP %d", resp.StatusCode)
			}
		}
	})
}
