package serve

import (
	"context"
	"errors"
	"io"
	"net"
	"sync"
	"testing"
	"time"

	"repro/internal/faults"
	"repro/internal/obs"
	"repro/internal/topo"
	"repro/internal/wire"
)

// newWireServer spins a Service plus a bound WireServer on a loopback
// port and returns both with cleanup registered.
func newWireServer(t *testing.T, svcOpts Options, wsOpts WireOptions, failed ...topo.NodeID) (*Service, *WireServer) {
	t.Helper()
	svc := newService(t, topo.MustCube(6), svcOpts, failed...)
	ws, err := ListenWire(svc, "127.0.0.1:0", wsOpts)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { ws.Close() })
	return svc, ws
}

func dialWire(t *testing.T, ws *WireServer, opts wire.ClientOptions) *wire.Client {
	t.Helper()
	c, err := wire.Dial(ws.Addr(), opts)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { c.Close() })
	return c
}

func TestWireServerEndToEnd(t *testing.T) {
	svc, ws := newWireServer(t, Options{}, WireOptions{}, 3, 12)
	c := dialWire(t, ws, wire.ClientOptions{})
	ctx := context.Background()

	pr, err := c.Ping(ctx)
	if err != nil || pr.Major != wire.Major || pr.Minor != wire.Minor {
		t.Fatalf("ping: %+v, %v", pr, err)
	}

	// Wire answers must match the in-process engine answer for answer.
	for src := 0; src < 8; src++ {
		for dst := 56; dst < 64; dst++ {
			want := svc.Route(topo.NodeID(src), topo.NodeID(dst))
			got, err := c.Unicast(ctx, uint32(src), uint32(dst))
			if err != nil {
				t.Fatalf("unicast %d->%d: %v", src, dst, err)
			}
			if got.Route.Outcome != uint8(want.Outcome) || got.Route.Cond != uint8(want.Condition) ||
				got.Route.Hamming != uint16(want.Hamming) || got.Route.Hops != uint16(want.Len()) {
				t.Fatalf("unicast %d->%d: wire %+v, engine %v/%v d=%d h=%d",
					src, dst, got.Route, want.Outcome, want.Condition, want.Hamming, want.Len())
			}
		}
	}

	pairs := []wire.Pair{{Src: 0, Dst: 63}, {Src: 5, Dst: 5}, {Src: 7, Dst: 56}}
	gen, routes, err := c.Batch(ctx, pairs, nil)
	if err != nil || len(routes) != len(pairs) {
		t.Fatalf("batch: %d routes, %v", len(routes), err)
	}
	if gen != svc.Generation() {
		t.Fatalf("batch generation %d, engine %d", gen, svc.Generation())
	}
	for i, p := range pairs {
		want := svc.Route(topo.NodeID(p.Src), topo.NodeID(p.Dst))
		if routes[i].Outcome != uint8(want.Outcome) || routes[i].Hops != uint16(want.Len()) {
			t.Fatalf("batch[%d]: wire %+v, engine %v h=%d", i, routes[i], want.Outcome, want.Len())
		}
	}

	fr, err := c.Feasibility(ctx, 0, 63)
	if err != nil {
		t.Fatalf("feasibility: %v", err)
	}
	cond, out := svc.Feasibility(0, 63)
	if fr.Cond != uint8(cond) || fr.Outcome != uint8(out) {
		t.Fatalf("feasibility: wire %+v, engine %v/%v", fr, cond, out)
	}

	// Fault delta round-trips through the apply queue and shows up in a
	// later snapshot.
	before := svc.Generation()
	if _, err := c.Fault(ctx, wire.FaultReq{Kind: uint8(faults.DeltaFailNode), A: 9}); err != nil {
		t.Fatalf("fault: %v", err)
	}
	svc.Flush()
	if svc.Generation() == before {
		t.Fatal("fault delta did not advance the generation")
	}
	r, err := c.Unicast(ctx, 9, 0)
	if err != nil {
		t.Fatalf("unicast from failed node: %v", err)
	}
	want := svc.Route(9, 0)
	if r.Route.Outcome != uint8(want.Outcome) {
		t.Fatalf("post-fault route: wire outcome %d, engine %v", r.Route.Outcome, want.Outcome)
	}
}

func TestWireServerFlightIDThreaded(t *testing.T) {
	reg := obs.NewRegistry()
	fl := obs.NewFlightRecorder(obs.FlightOptions{Records: 64, Registry: reg})
	svc := newService(t, topo.MustCube(6), Options{Flight: fl, Registry: reg})
	ws, err := ListenWire(svc, "127.0.0.1:0", WireOptions{Registry: reg})
	if err != nil {
		t.Fatal(err)
	}
	defer ws.Close()
	c := dialWire(t, ws, wire.ClientOptions{})

	r, err := c.Unicast(context.Background(), 1, 62)
	if err != nil {
		t.Fatal(err)
	}
	if r.FlightID == 0 {
		t.Fatal("wire response carries no flight-recorder ID")
	}
	snap := fl.Snapshot(0)
	found := false
	for _, rec := range snap.Records {
		if rec.ID == r.FlightID {
			found = true
		}
	}
	if !found {
		t.Fatalf("flight ID %d not present in recorder snapshot", r.FlightID)
	}
}

func TestWireServerTypedRefusals(t *testing.T) {
	// Rate 1e-9 admits essentially nothing after the first token.
	_, ws := newWireServer(t, Options{Rate: 1e-9, Burst: 1}, WireOptions{MaxBatch: 4})
	c := dialWire(t, ws, wire.ClientOptions{})
	ctx := context.Background()

	// Exhaust the single token, then expect typed overload.
	var sawOverload bool
	for i := 0; i < 5; i++ {
		if _, err := c.Unicast(ctx, 0, 63); errors.Is(err, wire.ErrOverload) {
			sawOverload = true
			break
		}
	}
	if !sawOverload {
		t.Fatal("admission control never surfaced as wire.ErrOverload")
	}

	// Out-of-topology node: typed bad request, connection survives.
	if _, err := c.Feasibility(ctx, 0, 1<<20); !errors.Is(err, wire.ErrBadRequest) {
		t.Fatalf("out-of-range node: got %v, want ErrBadRequest", err)
	}

	// Oversize batch: typed too-large, connection survives.
	big := make([]wire.Pair, 5)
	if _, _, err := c.Batch(ctx, big, nil); !errors.Is(err, wire.ErrTooLarge) {
		t.Fatalf("oversize batch: got %v, want ErrTooLarge", err)
	}

	// Expired deadline budget: typed deadline.
	if _, err := c.Fault(ctx, wire.FaultReq{Kind: 99, A: 0}); !errors.Is(err, wire.ErrBadRequest) {
		t.Fatalf("bad fault kind: got %v, want ErrBadRequest", err)
	}

	// The connection is still healthy after every refusal above.
	if _, err := c.Ping(ctx); err != nil {
		t.Fatalf("connection dead after refusals: %v", err)
	}
}

func TestWireServerDeadlineBudget(t *testing.T) {
	_, ws := newWireServer(t, Options{}, WireOptions{})
	c := dialWire(t, ws, wire.ClientOptions{})
	// A 1µs budget expires before the worker picks the job up; the
	// refusal must be the typed deadline frame, mirrored from HTTP 504.
	ctx, cancel := context.WithTimeout(context.Background(), time.Microsecond)
	defer cancel()
	time.Sleep(time.Millisecond) // guarantee expiry at send time
	_, err := c.Unicast(ctx, 0, 63)
	if !errors.Is(err, wire.ErrDeadline) && !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("expired budget: got %v, want wire.ErrDeadline or DeadlineExceeded", err)
	}
}

func TestWireServerDraining(t *testing.T) {
	svc, ws := newWireServer(t, Options{}, WireOptions{})
	c := dialWire(t, ws, wire.ClientOptions{})
	if _, err := c.Unicast(context.Background(), 0, 1); err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithTimeout(context.Background(), time.Second)
	defer cancel()
	if err := svc.Shutdown(ctx); err != nil {
		t.Fatal(err)
	}
	if _, err := c.Unicast(context.Background(), 0, 1); !errors.Is(err, wire.ErrDraining) {
		t.Fatalf("post-shutdown: got %v, want ErrDraining", err)
	}
}

// TestWireServerResponseOrder pins the writer's reorder contract: a
// client that pipelines N requests on one connection reads the N
// responses back in exactly the order it sent them, even though the
// worker pool completes them in arbitrary order.
func TestWireServerResponseOrder(t *testing.T) {
	_, ws := newWireServer(t, Options{}, WireOptions{Workers: 4})
	nc, err := net.Dial("tcp", ws.Addr())
	if err != nil {
		t.Fatal(err)
	}
	defer nc.Close()

	const n = 200
	var sendErr error
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		var frame []byte
		for i := 0; i < n; i++ {
			// Mix cheap pings with full-diameter unicasts so completion
			// times genuinely interleave across workers.
			frame = frame[:0]
			if i%3 == 0 {
				frame = wire.AppendFrame(frame, wire.OpPing, 0, uint64(i+1), nil)
			} else {
				p := wire.AppendUnicastReq(nil, wire.UnicastReq{Src: 0, Dst: 63})
				frame = wire.AppendFrame(frame, wire.OpUnicast, 0, uint64(i+1), p)
			}
			if _, err := nc.Write(frame); err != nil {
				sendErr = err
				return
			}
		}
	}()

	var buf []byte
	for i := 0; i < n; i++ {
		hdr, _, nbuf, err := wire.ReadFrame(nc, buf, 0)
		buf = nbuf
		if err != nil {
			t.Fatalf("response %d: %v", i, err)
		}
		if hdr.ReqID != uint64(i+1) {
			t.Fatalf("response %d arrived with request ID %d; per-connection order broken", i, hdr.ReqID)
		}
		if hdr.Flags&wire.FlagResponse == 0 {
			t.Fatalf("response %d missing FlagResponse", i)
		}
	}
	wg.Wait()
	if sendErr != nil {
		t.Fatal(sendErr)
	}
}

// TestWireServerCompatVersions is the two-server compatibility check: a
// current (v1.0) client works against a current server, and degrades to
// a typed wire.ErrVersion — no hang, no stream corruption — against a
// server advertising a higher minor version that has dropped v1.0
// support.
func TestWireServerCompatVersions(t *testing.T) {
	_, current := newWireServer(t, Options{}, WireOptions{})
	_, future := newWireServer(t, Options{}, WireOptions{RequireMinor: wire.Minor + 1})

	cur := dialWire(t, current, wire.ClientOptions{})
	if _, err := cur.Unicast(context.Background(), 0, 63); err != nil {
		t.Fatalf("current server refused a current client: %v", err)
	}

	fut := dialWire(t, future, wire.ClientOptions{})
	// The recommended post-dial handshake surfaces the mismatch as the
	// typed sentinel.
	if _, err := fut.Ping(context.Background()); !errors.Is(err, wire.ErrVersion) {
		t.Fatalf("future server ping: got %v, want ErrVersion", err)
	}
	// Every data-plane op degrades the same way, and the connection
	// survives each refusal (framing is intact, semantics are refused).
	if _, err := fut.Unicast(context.Background(), 0, 63); !errors.Is(err, wire.ErrVersion) {
		t.Fatalf("future server unicast: got %v, want ErrVersion", err)
	}
	if _, _, err := fut.Batch(context.Background(), []wire.Pair{{Src: 0, Dst: 1}}, nil); !errors.Is(err, wire.ErrVersion) {
		t.Fatalf("future server batch: got %v, want ErrVersion", err)
	}
	// The refusal message names the version the server wants, so an
	// operator reading client logs knows what to upgrade to.
	_, err := fut.Ping(context.Background())
	if err == nil || !errors.Is(err, wire.ErrVersion) {
		t.Fatalf("expected version refusal, got %v", err)
	}
}

// TestWireServerFutureMinorFrameRefused drives the other direction with
// a raw socket: a frame stamped with a FUTURE minor against a current
// server is refused with CodeVersion, and the connection stays usable
// for correctly-versioned frames.
func TestWireServerFutureMinorFrameRefused(t *testing.T) {
	_, ws := newWireServer(t, Options{}, WireOptions{})
	nc, err := net.Dial("tcp", ws.Addr())
	if err != nil {
		t.Fatal(err)
	}
	defer nc.Close()

	// Hand-stamp minor = Minor+7.
	var hdr [wire.HeaderSize]byte
	wire.PutHeader(hdr[:], wire.Header{
		Major: wire.Major, Minor: wire.Minor + 7,
		Op: wire.OpPing, ReqID: 1,
	})
	if _, err := nc.Write(hdr[:]); err != nil {
		t.Fatal(err)
	}
	h, payload, buf, err := wire.ReadFrame(nc, nil, 0)
	if err != nil {
		t.Fatal(err)
	}
	if h.Op != wire.OpError {
		t.Fatalf("future-minor frame answered with %v, want error frame", h.Op)
	}
	code, msg, err := wire.ParseError(payload)
	if err != nil || code != wire.CodeVersion {
		t.Fatalf("refusal code %d (%q), err %v; want CodeVersion", code, msg, err)
	}

	// Same connection, correct version: served.
	frame := wire.AppendFrame(nil, wire.OpPing, 0, 2, nil)
	if _, err := nc.Write(frame); err != nil {
		t.Fatal(err)
	}
	h, _, _, err = wire.ReadFrame(nc, buf, 0)
	if err != nil || h.Op != wire.OpPing || h.ReqID != 2 {
		t.Fatalf("post-refusal ping: %+v, %v", h, err)
	}
}

// TestWireServerOversizePayloadDropsConn pins the too-large handling: a
// header advertising a payload beyond the server limit gets a typed
// CodeTooLarge answer and then the connection is dropped (the stream
// position is unrecoverable).
func TestWireServerOversizePayloadDropsConn(t *testing.T) {
	_, ws := newWireServer(t, Options{}, WireOptions{MaxPayload: 1 << 10})
	nc, err := net.Dial("tcp", ws.Addr())
	if err != nil {
		t.Fatal(err)
	}
	defer nc.Close()

	var hdr [wire.HeaderSize]byte
	wire.PutHeader(hdr[:], wire.Header{
		Major: wire.Major, Minor: wire.Minor,
		Op: wire.OpBatch, ReqID: 7, Len: 1 << 20,
	})
	if _, err := nc.Write(hdr[:]); err != nil {
		t.Fatal(err)
	}
	h, payload, buf, err := wire.ReadFrame(nc, nil, 0)
	if err != nil {
		t.Fatal(err)
	}
	if h.Op != wire.OpError || h.ReqID != 7 {
		t.Fatalf("oversize answered with %+v", h)
	}
	if code, _, err := wire.ParseError(payload); err != nil || code != wire.CodeTooLarge {
		t.Fatalf("refusal code %d, err %v; want CodeTooLarge", code, err)
	}
	// The server closes the stream after the refusal.
	nc.SetReadDeadline(time.Now().Add(2 * time.Second))
	if _, _, _, err := wire.ReadFrame(nc, buf, 0); !errors.Is(err, io.EOF) {
		t.Fatalf("connection survived an unrecoverable stream position: %v", err)
	}
}

func TestWireServerGarbageStream(t *testing.T) {
	_, ws := newWireServer(t, Options{}, WireOptions{})
	nc, err := net.Dial("tcp", ws.Addr())
	if err != nil {
		t.Fatal(err)
	}
	defer nc.Close()
	if _, err := nc.Write([]byte("GET /route?src=0&dst=1 HTTP/1.1\r\nHost: x\r\n\r\n")); err != nil {
		t.Fatal(err)
	}
	nc.SetReadDeadline(time.Now().Add(2 * time.Second))
	// Bad magic: the server drops the connection without answering.
	one := make([]byte, 1)
	if _, err := nc.Read(one); err == nil {
		t.Fatal("server answered a non-protocol stream")
	}
}

func TestWireServerUnknownOp(t *testing.T) {
	_, ws := newWireServer(t, Options{}, WireOptions{})
	nc, err := net.Dial("tcp", ws.Addr())
	if err != nil {
		t.Fatal(err)
	}
	defer nc.Close()
	frame := wire.AppendFrame(nil, wire.Op(99), 0, 5, []byte{1, 2, 3})
	if _, err := nc.Write(frame); err != nil {
		t.Fatal(err)
	}
	h, payload, _, err := wire.ReadFrame(nc, nil, 0)
	if err != nil || h.Op != wire.OpError {
		t.Fatalf("unknown op: %+v, %v", h, err)
	}
	if code, _, _ := wire.ParseError(payload); code != wire.CodeUnknownOp {
		t.Fatalf("code %d, want CodeUnknownOp", code)
	}
}

func TestWireServerMetrics(t *testing.T) {
	reg := obs.NewRegistry()
	svc := newService(t, topo.MustCube(6), Options{})
	ws, err := ListenWire(svc, "127.0.0.1:0", WireOptions{Registry: reg})
	if err != nil {
		t.Fatal(err)
	}
	defer ws.Close()
	c := dialWire(t, ws, wire.ClientOptions{})
	if _, err := c.Unicast(context.Background(), 0, 1); err != nil {
		t.Fatal(err)
	}
	if _, err := c.Feasibility(context.Background(), 0, 1<<20); !errors.Is(err, wire.ErrBadRequest) {
		t.Fatal(err)
	}
	dump := reg.Snapshot()
	if dump.Counters[obs.MetricWireAccepted] < 1 {
		t.Fatalf("accepted counter %d, want >= 1", dump.Counters[obs.MetricWireAccepted])
	}
	if dump.Counters[obs.MetricWireFrames] < 2 {
		t.Fatalf("frames counter %d, want >= 2", dump.Counters[obs.MetricWireFrames])
	}
	if dump.Counters[obs.MetricWireErrorFrames] < 1 {
		t.Fatalf("error-frames counter %d, want >= 1", dump.Counters[obs.MetricWireErrorFrames])
	}
	if g, ok := dump.Gauges[obs.MetricWireConns]; !ok || g < 1 {
		t.Fatalf("conns gauge %d, want >= 1", g)
	}
}

func TestWireServerCloseIdempotent(t *testing.T) {
	_, ws := newWireServer(t, Options{}, WireOptions{})
	c := dialWire(t, ws, wire.ClientOptions{})
	if _, err := c.Ping(context.Background()); err != nil {
		t.Fatal(err)
	}
	if err := ws.Close(); err != nil {
		t.Fatal(err)
	}
	if err := ws.Close(); err != nil {
		t.Fatal(err)
	}
	// Post-close calls fail promptly, not hang.
	if _, err := c.Ping(context.Background()); err == nil {
		t.Fatal("ping succeeded against a closed wire server")
	}
}

// TestWireServerQueueBackpressure floods one connection far past the
// job queue depth and checks every request is still answered exactly
// once in order — backpressure must stall the reader, never drop work.
func TestWireServerQueueBackpressure(t *testing.T) {
	_, ws := newWireServer(t, Options{}, WireOptions{Workers: 2, QueueDepth: 4})
	nc, err := net.Dial("tcp", ws.Addr())
	if err != nil {
		t.Fatal(err)
	}
	defer nc.Close()

	const n = 500
	go func() {
		p := wire.AppendUnicastReq(nil, wire.UnicastReq{Src: 0, Dst: 63})
		var frame []byte
		for i := 0; i < n; i++ {
			frame = wire.AppendFrame(frame[:0], wire.OpUnicast, 0, uint64(i+1), p)
			if _, err := nc.Write(frame); err != nil {
				return
			}
		}
	}()
	var buf []byte
	for i := 0; i < n; i++ {
		h, _, nbuf, err := wire.ReadFrame(nc, buf, 0)
		buf = nbuf
		if err != nil {
			t.Fatalf("response %d: %v", i, err)
		}
		if h.ReqID != uint64(i+1) {
			t.Fatalf("response %d has ID %d", i, h.ReqID)
		}
	}
}
