package serve

import (
	"context"
	"errors"
	"sync/atomic"
	"time"

	"repro/internal/core"
	"repro/internal/obs"
	"repro/internal/topo"
)

// Production hardening of the read path. The lock-free snapshot
// readers in serve.go can never block each other — but a production
// deployment still needs three guarantees they do not give on their
// own:
//
//   - Deadlines: a caller with a context gets an answer or that
//     context's error, promptly, even mid-batch.
//   - Admission control: an offered load beyond the configured rate is
//     shed at the door with ErrOverload (reader-side shedding), which
//     is deliberately a different signal from ErrBacklog
//     (writer-side churn backpressure): shedding protects the latency
//     of admitted requests, backpressure protects the applier.
//   - Drain ordering: Shutdown refuses new context-carrying requests,
//     waits for every in-flight one to finish against its pinned
//     snapshot, flushes the apply queue (so churn accepted before the
//     drain still reaches a published snapshot), and only then stops
//     the applier. A request admitted before the drain therefore
//     always completes against a consistent, fully published snapshot
//     — the invariant TestServeDrainOrdering pins under -race.
//
// The context-free methods (Route, BatchUnicast, RouteAll) keep their
// PR-4 semantics: never admitted, never shed, never refused — they
// serve the last published snapshot even after Close. The hardened
// surface is the *Ctx family below.

// ErrOverload is returned by the context-aware readers when the
// token-bucket admission controller sheds the request. It maps to HTTP
// 429 in cmd/slserve. Compare ErrBacklog, the writer-side signal.
var ErrOverload = errors.New("serve: overloaded, request shed")

// ErrDraining is returned by the context-aware readers once Shutdown
// (or Close) has begun: the service no longer admits new requests but
// still completes the ones already in flight. Maps to HTTP 503.
var ErrDraining = errors.New("serve: draining, not admitting requests")

// Service lifecycle phases (Service.phase).
const (
	phaseServing int32 = iota
	phaseDraining
	phaseStopped
)

// tokenBucket is a lock-free GCRA-style token bucket: the whole state
// is one atomic "theoretical arrival time" in nanoseconds. take(n)
// costs one CAS on the uncontended path and never blocks — admission
// control must not queue, or shed load would still consume the latency
// budget it exists to protect.
type tokenBucket struct {
	interval int64 // nanoseconds earned back per token
	depth    int64 // burst depth in nanoseconds (burst * interval)
	tat      atomic.Int64
}

// newTokenBucket builds a bucket admitting rate tokens/second with the
// given burst. rate <= 0 disables admission control (nil bucket).
func newTokenBucket(rate float64, burst int) *tokenBucket {
	if rate <= 0 {
		return nil
	}
	if burst < 1 {
		burst = 1
	}
	interval := int64(float64(time.Second) / rate)
	if interval < 1 {
		interval = 1
	}
	b := &tokenBucket{interval: interval, depth: int64(burst) * interval}
	b.tat.Store(time.Now().UnixNano() - b.depth) // start full
	return b
}

// take admits n tokens' worth of work, or reports shedding. A nil
// bucket admits everything.
func (b *tokenBucket) take(n int) bool {
	if b == nil {
		return true
	}
	cost := int64(n) * b.interval
	for {
		now := time.Now().UnixNano()
		tat := b.tat.Load()
		next := tat
		if now > next {
			next = now
		}
		next += cost
		if next-now > b.depth {
			return false
		}
		if b.tat.CompareAndSwap(tat, next) {
			return true
		}
	}
}

// acquire registers one in-flight request. It refuses once draining
// has begun; the seq-cst re-check after the increment closes the race
// with Shutdown flipping the phase between our load and our add.
func (s *Service) acquire() error {
	if s.phase.Load() != phaseServing {
		return ErrDraining
	}
	s.inflight.Add(1)
	s.mInflight.Add(1)
	if s.phase.Load() != phaseServing {
		s.release()
		return ErrDraining
	}
	return nil
}

// release retires one in-flight request and, if a drain is waiting on
// us, signals it when the count hits zero.
func (s *Service) release() {
	s.mInflight.Add(-1)
	if s.inflight.Add(-1) == 0 && s.phase.Load() != phaseServing {
		s.signalDrained()
	}
}

func (s *Service) signalDrained() {
	s.drainOnce.Do(func() { close(s.drained) })
}

// Inflight returns the number of context-aware requests currently
// being served (also exported as serve_inflight).
func (s *Service) Inflight() int64 { return s.inflight.Load() }

// ctxErr classifies a context error for metrics and returns it.
func (s *Service) ctxErr(ctx context.Context) error {
	s.mDeadline.Inc()
	return ctx.Err()
}

// RouteCtx is Route with deadlines, admission control and drain
// awareness: it refuses with ErrDraining after Shutdown begins, sheds
// with ErrOverload beyond the configured rate, returns ctx.Err() once
// the context is done, and otherwise routes against the snapshot
// current at admission time, recording the wall latency.
func (s *Service) RouteCtx(ctx context.Context, src, dst topo.NodeID) (*core.Route, error) {
	fl := s.flight
	var start time.Time
	if fl != nil {
		start = time.Now()
	}
	if err := s.acquire(); err != nil {
		s.flightRefuse(obs.ReqRoute, start, ctx, 1, err)
		return nil, err
	}
	defer s.release()
	if err := ctx.Err(); err != nil {
		err = s.ctxErr(ctx)
		s.flightRefuse(obs.ReqRoute, start, ctx, 1, err)
		return nil, err
	}
	if !s.bucket.take(1) {
		s.mOverload.Inc()
		s.flightRefuse(obs.ReqRoute, start, ctx, 1, ErrOverload)
		return nil, ErrOverload
	}
	if fl == nil {
		start = time.Now()
		r := s.Route(src, dst)
		s.mLatRoute.ObserveSince(start)
		return r, nil
	}
	// Flight-recorded path: inline s.Route so the snapshot stays in
	// hand for generation attribution and (rare) trace reconstruction.
	sn := s.cur.Load()
	s.mRoutes.Inc()
	stale := len(s.queue) > 0
	if stale {
		s.mStale.Inc()
	}
	id := fl.NextID()
	r := sn.rt.UnicastID(src, dst, id)
	lat := time.Since(start).Microseconds()
	s.mLatRoute.ObserveEx(lat, id)
	rec := obs.FlightRecord{
		ID:         id,
		Kind:       obs.ReqRoute,
		Gen:        sn.gen,
		Start:      start.Unix(),
		LatencyUS:  lat,
		DeadlineUS: deadlineUS(ctx, start),
		Hamming:    r.Hamming,
		Hops:       r.Len(),
		Detours:    detoursOf(r),
		Items:      1,
		Cond:       obs.CondCode(r.Condition),
		Outcome:    outcomeOf(r),
		Stale:      stale,
	}
	switch {
	case !sn.Consistent():
		rec.Err = obs.ErrClassTorn
	case r.Err != nil:
		rec.Err = obs.ErrClassOther
	case r.Outcome == core.Failure:
		// Admission refused the pair outright (Route.Err stays nil on
		// that path): no safe route exists under the current faults.
		// A partition or dimension cut surfaces here as "unreachable"
		// (Theorem 4), not as a transport anomaly.
		rec.Err = obs.ErrClassUnreachable
	}
	if reason := fl.Record(&rec); reason != "" {
		fl.Promote(&rec, reason, traceOfRoute(r, sn.as, id, sn.gen))
	}
	return r, nil
}

// BatchUnicastCtx is BatchUnicast with the same hardening. Admission
// costs one token per request in the batch; cancellation is observed
// between items, so a batch returns within one unicast of its
// context's deadline (partial results are discarded: the caller asked
// for a mutually consistent answer set, and a truncated one is not).
func (s *Service) BatchUnicastCtx(ctx context.Context, reqs []Request) ([]*core.Route, error) {
	fl := s.flight
	var start time.Time
	if fl != nil {
		start = time.Now()
	}
	if err := s.acquire(); err != nil {
		s.flightRefuse(obs.ReqBatch, start, ctx, len(reqs), err)
		return nil, err
	}
	defer s.release()
	if err := ctx.Err(); err != nil {
		err = s.ctxErr(ctx)
		s.flightRefuse(obs.ReqBatch, start, ctx, len(reqs), err)
		return nil, err
	}
	if !s.bucket.take(len(reqs)) {
		s.mOverload.Inc()
		s.flightRefuse(obs.ReqBatch, start, ctx, len(reqs), ErrOverload)
		return nil, ErrOverload
	}
	if fl == nil {
		start = time.Now()
	}
	sn := s.cur.Load()
	s.mBatches.Inc()
	s.mBatchN.Add(int64(len(reqs)))
	stale := len(s.queue) > 0
	if stale {
		s.mStale.Inc()
	}
	out, err := sn.batchUnicastCtx(ctx, reqs, s.workers)
	if err != nil {
		err = s.ctxErr(ctx)
		s.flightRefuse(obs.ReqBatch, start, ctx, len(reqs), err)
		return nil, err
	}
	if fl == nil {
		s.mLatBatch.ObserveSince(start)
		return out, nil
	}
	s.flightServed(obs.ReqBatch, start, ctx, len(reqs), sn, stale, s.mLatBatch)
	return out, nil
}

// RouteAllCtx is RouteAll with the same hardening; admission costs one
// token per destination.
func (s *Service) RouteAllCtx(ctx context.Context, src topo.NodeID) ([]*core.Route, error) {
	fl := s.flight
	var start time.Time
	if fl != nil {
		start = time.Now()
	}
	nodes := s.t.Nodes()
	if err := s.acquire(); err != nil {
		s.flightRefuse(obs.ReqRouteAll, start, ctx, nodes-1, err)
		return nil, err
	}
	defer s.release()
	if err := ctx.Err(); err != nil {
		err = s.ctxErr(ctx)
		s.flightRefuse(obs.ReqRouteAll, start, ctx, nodes-1, err)
		return nil, err
	}
	if !s.bucket.take(nodes - 1) {
		s.mOverload.Inc()
		s.flightRefuse(obs.ReqRouteAll, start, ctx, nodes-1, ErrOverload)
		return nil, ErrOverload
	}
	if fl == nil {
		start = time.Now()
	}
	sn := s.cur.Load()
	stale := len(s.queue) > 0
	reqs := make([]Request, 0, nodes-1)
	for a := 0; a < nodes; a++ {
		if topo.NodeID(a) == src {
			continue
		}
		reqs = append(reqs, Request{Src: src, Dst: topo.NodeID(a)})
	}
	s.mFanouts.Inc()
	s.mFanoutN.Add(int64(len(reqs)))
	routes, err := sn.batchUnicastCtx(ctx, reqs, s.workers)
	if err != nil {
		err = s.ctxErr(ctx)
		s.flightRefuse(obs.ReqRouteAll, start, ctx, len(reqs), err)
		return nil, err
	}
	out := make([]*core.Route, nodes)
	for i, q := range reqs {
		out[q.Dst] = routes[i]
	}
	if fl == nil {
		s.mLatRouteAll.ObserveSince(start)
		return out, nil
	}
	s.flightServed(obs.ReqRouteAll, start, ctx, len(reqs), sn, stale, s.mLatRouteAll)
	return out, nil
}

// batchUnicastCtx is Snapshot.BatchUnicast with cooperative
// cancellation: every worker re-checks the context before claiming the
// next index, so cancellation latency is bounded by one unicast, not
// by the batch.
func (sn *Snapshot) batchUnicastCtx(ctx context.Context, reqs []Request, workers int) ([]*core.Route, error) {
	if len(reqs) == 0 {
		return make([]*core.Route, 0), nil
	}
	if ctx.Done() == nil {
		// No deadline and no cancellation possible: take the fast path.
		return sn.BatchUnicast(reqs, workers), nil
	}
	out := make([]*core.Route, len(reqs))
	if workers > len(reqs) {
		workers = len(reqs)
	}
	if workers <= 1 {
		for i, q := range reqs {
			if ctx.Err() != nil {
				return nil, ctx.Err()
			}
			out[i] = sn.rt.Unicast(q.Src, q.Dst)
		}
		return out, nil
	}
	var next atomic.Int64
	var canceled atomic.Bool
	done := make(chan struct{})
	var pending atomic.Int64
	pending.Store(int64(workers))
	for w := 0; w < workers; w++ {
		go func() {
			defer func() {
				if pending.Add(-1) == 0 {
					close(done)
				}
			}()
			for {
				if ctx.Err() != nil {
					canceled.Store(true)
					return
				}
				i := int(next.Add(1)) - 1
				if i >= len(reqs) {
					return
				}
				out[i] = sn.rt.Unicast(reqs[i].Src, reqs[i].Dst)
			}
		}()
	}
	<-done
	if canceled.Load() {
		return nil, ctx.Err()
	}
	return out, nil
}

// Shutdown drains the service: it stops admitting context-aware
// requests (they get ErrDraining), waits for every in-flight request
// to complete, flushes the apply queue so churn accepted before the
// drain reaches a published snapshot, and then stops the applier.
// The drain order is the guarantee: in-flight requests first, queue
// flush second, final snapshot swap third, applier stop last.
//
// If ctx expires while in-flight requests remain, Shutdown abandons
// the drain, hard-closes the service (exactly Close), and returns
// ctx.Err(). In-flight requests still finish correctly — they hold
// immutable snapshots — but Shutdown no longer vouches for having
// waited for them.
//
// Shutdown is idempotent and safe to race with Close; the context-free
// readers keep serving the final snapshot afterwards.
func (s *Service) Shutdown(ctx context.Context) error {
	s.phase.CompareAndSwap(phaseServing, phaseDraining)
	s.mDraining.Set(1)
	if s.inflight.Load() == 0 {
		s.signalDrained()
	}
	select {
	case <-s.drained:
	case <-ctx.Done():
		s.Close()
		return ctx.Err()
	}
	// All in-flight requests have retired. Publish any churn accepted
	// before (or during) the drain, then stop the applier for good.
	s.Flush()
	s.Close()
	return nil
}
