package serve

import (
	"fmt"
	"reflect"
	"testing"

	"repro/internal/core"
	"repro/internal/faults"
	"repro/internal/stats"
	"repro/internal/topo"
)

// TestBatchUnicastMatchesSequential is the batch/sequential equivalence
// property across both topology families: for random fault sets and
// random request lists, BatchUnicast over the worker pool returns
// element-wise exactly the routes that sequential Unicast calls on the
// same snapshot produce. The equality is structural (outcome, condition,
// path, hops), not just statistical.
func TestBatchUnicastMatchesSequential(t *testing.T) {
	topos := []struct {
		name string
		t    topo.Topology
	}{
		{"cube/q5", topo.MustCube(5)},
		{"cube/q7", topo.MustCube(7)},
		{"mixed/3x2x4", topo.MustMixed(3, 2, 4)},
		{"mixed/2x3x2x2", topo.MustMixed(2, 3, 2, 2)},
	}
	for _, tc := range topos {
		tc := tc
		t.Run(tc.name, func(t *testing.T) {
			for trial := 0; trial < 8; trial++ {
				seed := uint64(trial)*131 + 7
				rng := stats.NewRNG(seed)
				set := faults.NewSet(tc.t)
				nfaults := rng.Intn(tc.t.Dim() + 2)
				if err := faults.InjectUniform(set, stats.NewRNG(seed^0xbeef), nfaults); err != nil {
					t.Fatal(err)
				}

				// Force a real pool (workers > 1) even on one CPU.
				s, err := New(set, Options{Workers: 4})
				if err != nil {
					t.Fatal(err)
				}

				reqs := make([]Request, 1+rng.Intn(64))
				for i := range reqs {
					reqs[i] = Request{
						Src: topo.NodeID(rng.Intn(tc.t.Nodes())),
						Dst: topo.NodeID(rng.Intn(tc.t.Nodes())),
					}
				}

				sn := s.Current()
				got := s.BatchUnicast(reqs)
				for i, q := range reqs {
					want := sn.Route(q.Src, q.Dst)
					if err := sameRoute(got[i], want); err != nil {
						t.Fatalf("trial %d request %d (%d->%d): %v", trial, i, q.Src, q.Dst, err)
					}
				}
				// The snapshot-level pool agrees too, at any worker count.
				for _, workers := range []int{1, 3, 16} {
					alt := sn.BatchUnicast(reqs, workers)
					for i := range reqs {
						if err := sameRoute(alt[i], got[i]); err != nil {
							t.Fatalf("trial %d workers=%d request %d: %v", trial, workers, i, err)
						}
					}
				}
				s.Close()
			}
		})
	}
}

// sameRoute compares two routes structurally.
func sameRoute(got, want *core.Route) error {
	if got == nil || want == nil {
		return fmt.Errorf("nil route (got %v, want %v)", got, want)
	}
	if got.Outcome != want.Outcome || got.Condition != want.Condition ||
		got.Hamming != want.Hamming || !reflect.DeepEqual(got.Path, want.Path) {
		return fmt.Errorf("batch %v/%v %v != sequential %v/%v %v",
			got.Outcome, got.Condition, got.Path, want.Outcome, want.Condition, want.Path)
	}
	if (got.Err == nil) != (want.Err == nil) {
		return fmt.Errorf("error mismatch: %v vs %v", got.Err, want.Err)
	}
	return nil
}

// TestRouteAllCoversTopology checks the fan-out: every destination gets
// an answer, the source slot stays nil, and answers match singles.
func TestRouteAllCoversTopology(t *testing.T) {
	for _, tp := range []topo.Topology{topo.MustCube(5), topo.MustMixed(2, 3, 3)} {
		set := faults.NewSet(tp)
		if err := faults.InjectUniform(set, stats.NewRNG(5), 3); err != nil {
			t.Fatal(err)
		}
		s, err := New(set, Options{Workers: 4})
		if err != nil {
			t.Fatal(err)
		}
		src := topo.NodeID(0)
		if s.Current().Assignment().Faults().NodeFaulty(src) {
			src = 1
		}
		sn := s.Current()
		all := s.RouteAll(src)
		if len(all) != tp.Nodes() {
			t.Fatalf("RouteAll returned %d slots, want %d", len(all), tp.Nodes())
		}
		for a := 0; a < tp.Nodes(); a++ {
			if topo.NodeID(a) == src {
				if all[a] != nil {
					t.Fatal("source slot not nil")
				}
				continue
			}
			if all[a] == nil {
				t.Fatalf("destination %d missing from fan-out", a)
			}
			if err := sameRoute(all[a], sn.Route(src, topo.NodeID(a))); err != nil {
				t.Fatalf("dest %d: %v", a, err)
			}
		}
		s.Close()
	}
}
