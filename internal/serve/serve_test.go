package serve

import (
	"errors"
	"reflect"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/core"
	"repro/internal/faults"
	"repro/internal/obs"
	"repro/internal/stats"
	"repro/internal/topo"
)

func newService(t *testing.T, tp topo.Topology, opts Options, failed ...topo.NodeID) *Service {
	t.Helper()
	set := faults.NewSet(tp)
	if err := set.FailNodes(failed...); err != nil {
		t.Fatal(err)
	}
	s, err := New(set, opts)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(s.Close)
	return s
}

// TestServeMatchesFacadePath pins the serving engine to the sequential
// router: same faults, same source/dest, same outcome and path.
func TestServeMatchesFacadePath(t *testing.T) {
	tp := topo.MustCube(4)
	failed := []topo.NodeID{3, 5, 12}
	s := newService(t, tp, Options{}, failed...)

	set := faults.NewSet(tp)
	if err := set.FailNodes(failed...); err != nil {
		t.Fatal(err)
	}
	rt := core.NewRouter(core.Compute(set, core.Options{}), nil)
	for src := 0; src < tp.Nodes(); src++ {
		for dst := 0; dst < tp.Nodes(); dst++ {
			want := rt.Unicast(topo.NodeID(src), topo.NodeID(dst))
			got := s.Route(topo.NodeID(src), topo.NodeID(dst))
			if got.Outcome != want.Outcome || got.Condition != want.Condition ||
				!reflect.DeepEqual(got.Path, want.Path) {
				t.Fatalf("route %d->%d: serve %v/%v %v, sequential %v/%v %v",
					src, dst, got.Outcome, got.Condition, got.Path,
					want.Outcome, want.Condition, want.Path)
			}
		}
	}
}

// TestServeApplyPublishes checks the write path end to end: an applied
// event bumps the published generation and the snapshot reflects it.
func TestServeApplyPublishes(t *testing.T) {
	tp := topo.MustCube(4)
	s := newService(t, tp, Options{})
	gen0 := s.Generation()

	if err := s.FailNode(6); err != nil {
		t.Fatal(err)
	}
	s.Flush()
	if s.Generation() <= gen0 {
		t.Fatalf("generation did not advance: %d -> %d", gen0, s.Generation())
	}
	sn := s.Current()
	if !sn.Assignment().Faults().NodeFaulty(6) {
		t.Fatal("published snapshot does not record the fault")
	}
	if sn.Level(6) != 0 {
		t.Fatalf("faulty node level = %d, want 0", sn.Level(6))
	}
	if err := sn.Assignment().Verify(); err != nil {
		t.Fatalf("published snapshot is not a fixpoint: %v", err)
	}

	// Recovery flows the same way.
	if err := s.RecoverNode(6); err != nil {
		t.Fatal(err)
	}
	s.Flush()
	if sn2 := s.Current(); sn2.Assignment().Faults().NodeFaulty(6) {
		t.Fatal("recovery was not published")
	}
	// The old snapshot is immutable: it still shows the fault.
	if !sn.Assignment().Faults().NodeFaulty(6) {
		t.Fatal("old snapshot mutated after recovery")
	}
}

// TestServeSnapshotPinning checks that a held snapshot keeps answering
// from its generation while the service moves on.
func TestServeSnapshotPinning(t *testing.T) {
	tp := topo.MustCube(4)
	s := newService(t, tp, Options{})
	sn := s.Current()
	want := sn.Route(0, 15)

	if err := s.FailNode(1); err != nil {
		t.Fatal(err)
	}
	if err := s.FailNode(2); err != nil {
		t.Fatal(err)
	}
	s.Flush()

	got := sn.Route(0, 15)
	if got.Outcome != want.Outcome || !reflect.DeepEqual(got.Path, want.Path) {
		t.Fatal("pinned snapshot changed its answer after a swap")
	}
	if s.Generation() == sn.Generation() {
		t.Fatal("service generation should have moved past the pinned snapshot")
	}
}

// TestServeBackpressure checks the bounded-queue contract: TryApply
// refuses with ErrBacklog when the queue is full, and Apply blocks but
// eventually lands once the applier drains.
func TestServeBackpressure(t *testing.T) {
	tp := topo.MustCube(6)
	s := newService(t, tp, Options{QueueDepth: 1})

	// Saturate: the applier takes messages off the queue quickly, so
	// drive until a refusal is observed or the attempt budget is spent.
	refused := false
	for i := 0; i < 10000 && !refused; i++ {
		ev := faults.ChurnEvent{Kind: faults.DeltaFailNode, A: topo.NodeID(i % 32)}
		rv := faults.ChurnEvent{Kind: faults.DeltaRecoverNode, A: topo.NodeID(i % 32)}
		if err := s.TryApply(ev); errors.Is(err, ErrBacklog) {
			refused = true
		} else if err != nil {
			t.Fatal(err)
		}
		if err := s.TryApply(rv); errors.Is(err, ErrBacklog) {
			refused = true
		} else if err != nil {
			t.Fatal(err)
		}
	}
	if !refused {
		t.Skip("queue never filled on this machine; backpressure path not exercised")
	}
	// Blocking Apply still lands.
	if err := s.Apply(faults.ChurnEvent{Kind: faults.DeltaFailNode, A: 33}); err != nil {
		t.Fatal(err)
	}
	s.Flush()
	if !s.Current().Assignment().Faults().NodeFaulty(33) {
		t.Fatal("blocking Apply lost its event under backpressure")
	}
}

// TestServeValidate checks that impossible events are refused at the
// door rather than poisoning the applier.
func TestServeValidate(t *testing.T) {
	tp := topo.MustCube(3)
	s := newService(t, tp, Options{})
	if err := s.FailNode(200); err == nil {
		t.Fatal("out-of-range node accepted")
	}
	if err := s.FailLink(0, 3); err == nil {
		t.Fatal("non-adjacent link accepted")
	}
	if err := s.Apply(faults.ChurnEvent{Kind: 99, A: 0}); err == nil {
		t.Fatal("unknown event kind accepted")
	}
	if err := s.Apply(); err != nil {
		t.Fatalf("empty apply should be a no-op, got %v", err)
	}
}

// TestServeClosed checks the shutdown contract.
func TestServeClosed(t *testing.T) {
	tp := topo.MustCube(3)
	set := faults.NewSet(tp)
	s, err := New(set, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if err := s.FailNode(1); err != nil {
		t.Fatal(err)
	}
	s.Close()
	s.Close() // idempotent
	if err := s.FailNode(2); !errors.Is(err, ErrClosed) {
		t.Fatalf("Apply after Close: %v, want ErrClosed", err)
	}
	if err := s.TryApply(faults.ChurnEvent{Kind: faults.DeltaFailNode, A: 2}); !errors.Is(err, ErrClosed) {
		t.Fatalf("TryApply after Close: %v, want ErrClosed", err)
	}
	// The pre-Close event was drained; readers still serve.
	if !s.Current().Assignment().Faults().NodeFaulty(1) {
		t.Fatal("event accepted before Close was dropped")
	}
	s.Flush() // must not hang on a closed service
	if _, err := New(set, Options{Compute: core.Options{MaxRounds: 1}}); err == nil {
		t.Fatal("truncated-convergence options accepted")
	}
	if _, err := New(nil, Options{}); err == nil {
		t.Fatal("nil set accepted")
	}
}

// TestServeMetrics checks the obs wiring: routes, swaps, generation
// gauge, queue metrics.
func TestServeMetrics(t *testing.T) {
	tp := topo.MustCube(4)
	reg := obs.NewRegistry()
	set := faults.NewSet(tp)
	s, err := New(set, Options{Registry: reg})
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()

	s.Route(0, 7)
	s.BatchUnicast([]Request{{0, 5}, {1, 6}})
	s.RouteAll(2)
	if err := s.FailNode(3); err != nil {
		t.Fatal(err)
	}
	s.Flush()

	snap := reg.Snapshot()
	checks := map[string]int64{
		obs.MetricServeRoutesTotal:  1,
		obs.MetricServeBatchesTotal: 1,
		obs.MetricServeBatchItems:   2,
		obs.MetricServeFanoutsTotal: 1,
		obs.MetricServeFanoutItems:  15,
		obs.MetricServeSwapsTotal:   1,
		obs.MetricServeApplyTotal:   1,
		obs.MetricServeRepairsTotal: 1,
		obs.MetricUnicastsTotal:     1 + 2 + 15, // snapshot router observer
	}
	for name, want := range checks {
		if got := snap.Counters[name]; got != want {
			t.Errorf("%s = %d, want %d", name, got, want)
		}
	}
	if got := snap.Gauges[obs.MetricServeSnapshotGen]; got != int64(s.Generation()) {
		t.Errorf("generation gauge = %d, want %d", got, s.Generation())
	}
	if snap.Histograms[obs.MetricServeSwapMicros].Count != 1 {
		t.Errorf("swap histogram count = %d, want 1", snap.Histograms[obs.MetricServeSwapMicros].Count)
	}
}

// TestServeChurn is the race/torn-snapshot proof for the snapshot-swap
// design (and the reader-vs-faults.RecoverNode fix): 16 reader
// goroutines hammer Route/BatchUnicast while the writer replays a
// recover-heavy churn schedule through the apply queue. Under -race
// this fails if any reader ever touches mutable fault state (the
// pre-Detach design raced exactly here, in faults.Set reads vs
// RecoverNode's composite mutation). The readers also assert the
// generation canary (never torn) and route-level invariants on every
// answer, and the test ends with a differential check against a cold
// recomputation of the final fault state.
func TestServeChurn(t *testing.T) {
	tp := topo.MustCube(6)
	set := faults.NewSet(tp)
	s, err := New(set, Options{QueueDepth: 8})
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()

	// Recover-heavy schedule: low fault cap forces constant
	// fail/recover alternation, including link faults (RecoverNode then
	// also journals link recoveries — the composite mutation).
	events := faults.ChurnSchedule(tp, 11, 300, faults.ChurnOptions{
		Links:         true,
		MaxNodeFaults: 4,
	})

	const readers = 16
	var stop atomic.Bool
	var routed atomic.Int64
	errs := make(chan error, readers)
	var wg sync.WaitGroup
	for w := 0; w < readers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			rng := stats.NewRNG(uint64(w)*977 + 13)
			for !stop.Load() {
				sn := s.Current()
				if !sn.Consistent() {
					errs <- errors.New("torn generation observed")
					return
				}
				src := topo.NodeID(rng.Intn(tp.Nodes()))
				dst := topo.NodeID(rng.Intn(tp.Nodes()))
				var got []*core.Route
				if w%2 == 0 {
					got = []*core.Route{sn.Route(src, dst)}
				} else {
					got = sn.BatchUnicast([]Request{{src, dst}, {dst, src}}, 2)
				}
				for _, r := range got {
					if err := checkRouteInvariants(sn, r); err != nil {
						errs <- err
						return
					}
				}
				routed.Add(int64(len(got)))
			}
		}(w)
	}

	for _, ev := range events {
		if err := s.Apply(ev); err != nil {
			t.Fatal(err)
		}
	}
	s.Flush()
	// The flat-core applier can drain the whole schedule before the
	// reader goroutines first run on a loaded machine; wait for at least
	// one route so the progress assertion checks readers, not scheduling.
	for i := 0; routed.Load() == 0 && i < 5000; i++ {
		time.Sleep(time.Millisecond)
	}
	stop.Store(true)
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Fatal(err)
	}
	if routed.Load() == 0 {
		t.Fatal("readers made no progress under churn")
	}

	// Differential close: the final published snapshot must be
	// bit-identical to a cold recomputation of the same schedule.
	oracle := faults.NewSet(tp)
	for _, ev := range events {
		if err := oracle.Apply(ev); err != nil {
			t.Fatal(err)
		}
	}
	cold := core.Compute(oracle, core.Options{})
	final := s.Current().Assignment()
	if !reflect.DeepEqual(final.Levels(), cold.Levels()) {
		t.Fatal("final snapshot levels differ from cold recomputation")
	}
	if err := final.Verify(); err != nil {
		t.Fatalf("final snapshot does not verify: %v", err)
	}
	if s.Generation() != oracle.Generation() {
		t.Fatalf("final generation %d != oracle generation %d", s.Generation(), oracle.Generation())
	}
}

// checkRouteInvariants validates one answer against the snapshot that
// produced it: outcome/path-length agreement, hop adjacency, and no
// path through a node or link the snapshot considers faulty.
func checkRouteInvariants(sn *Snapshot, r *core.Route) error {
	set := sn.Assignment().Faults()
	t := sn.Assignment().Topology()
	switch r.Outcome {
	case core.Optimal:
		if r.Path.Len() != r.Hamming {
			return errors.New("optimal route with non-Hamming length")
		}
	case core.Suboptimal:
		if r.Path.Len() != r.Hamming+2 {
			return errors.New("suboptimal route without H+2 length")
		}
	case core.Failure:
		if len(r.Path) > 1 {
			return errors.New("failed route with a path")
		}
		return nil
	}
	for i := 1; i < len(r.Path); i++ {
		a, b := r.Path[i-1], r.Path[i]
		if !t.Adjacent(a, b) {
			return errors.New("route hop between non-adjacent nodes")
		}
		if set.LinkFaulty(a, b) {
			return errors.New("route crossed a faulty link")
		}
		if i < len(r.Path)-1 && set.NodeFaulty(b) {
			return errors.New("route through a faulty intermediate node")
		}
	}
	return nil
}
