package serve

import (
	"context"
	"errors"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/obs"
	"repro/internal/topo"
)

// TestServeDeadline: a context that is already done (or expires
// mid-request) must surface its own error promptly, on every
// context-aware reader, without touching the routing core.
func TestServeDeadline(t *testing.T) {
	s := newService(t, topo.MustCube(5), Options{})
	ctx, cancel := context.WithCancel(context.Background())
	cancel()

	if _, err := s.RouteCtx(ctx, 0, 31); !errors.Is(err, context.Canceled) {
		t.Fatalf("RouteCtx on canceled ctx: %v, want context.Canceled", err)
	}
	if _, err := s.BatchUnicastCtx(ctx, []Request{{0, 31}}); !errors.Is(err, context.Canceled) {
		t.Fatalf("BatchUnicastCtx on canceled ctx: %v, want context.Canceled", err)
	}
	if _, err := s.RouteAllCtx(ctx, 0); !errors.Is(err, context.Canceled) {
		t.Fatalf("RouteAllCtx on canceled ctx: %v, want context.Canceled", err)
	}

	dctx, dcancel := context.WithDeadline(context.Background(), time.Now().Add(-time.Second))
	defer dcancel()
	start := time.Now()
	if _, err := s.RouteCtx(dctx, 0, 31); !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("RouteCtx past deadline: %v, want context.DeadlineExceeded", err)
	}
	if elapsed := time.Since(start); elapsed > time.Second {
		t.Fatalf("deadline-exceeded request took %v, want prompt return", elapsed)
	}

	// A live context routes normally and the answer matches the
	// context-free path.
	got, err := s.RouteCtx(context.Background(), 0, 31)
	if err != nil {
		t.Fatal(err)
	}
	want := s.Route(0, 31)
	if len(got.Path) != len(want.Path) || got.Outcome != want.Outcome {
		t.Fatalf("ctx route %v/%d path, context-free %v/%d path", got.Outcome, len(got.Path), want.Outcome, len(want.Path))
	}
}

// TestServeBatchCancellation: canceling mid-batch returns the context
// error instead of a truncated result set.
func TestServeBatchCancellation(t *testing.T) {
	s := newService(t, topo.MustCube(8), Options{Workers: 2})
	reqs := make([]Request, 4096)
	for i := range reqs {
		reqs[i] = Request{Src: topo.NodeID(i % 256), Dst: topo.NodeID((i * 7) % 256)}
	}
	ctx, cancel := context.WithCancel(context.Background())
	var wg sync.WaitGroup
	wg.Add(1)
	var batchErr error
	go func() {
		defer wg.Done()
		_, batchErr = s.BatchUnicastCtx(ctx, reqs)
	}()
	cancel()
	wg.Wait()
	if batchErr != nil && !errors.Is(batchErr, context.Canceled) {
		t.Fatalf("mid-batch cancel: %v, want nil (finished first) or context.Canceled", batchErr)
	}
}

// TestServeOverload: with a tiny token bucket the context-aware
// readers shed with ErrOverload — a signal distinct from both the
// writer-side ErrBacklog and the drain-time ErrDraining — while the
// context-free readers keep answering.
func TestServeOverload(t *testing.T) {
	reg := obs.NewRegistry()
	s := newService(t, topo.MustCube(5), Options{Rate: 1, Burst: 2, Registry: reg})
	ctx := context.Background()

	// Drain the burst; the bucket refills at 1 token/s so the loop
	// cannot win tokens back fast enough to pass spuriously.
	shed := false
	for i := 0; i < 50; i++ {
		if _, err := s.RouteCtx(ctx, 0, 31); err != nil {
			if !errors.Is(err, ErrOverload) {
				t.Fatalf("shed error: %v, want ErrOverload", err)
			}
			if errors.Is(err, ErrBacklog) || errors.Is(err, ErrDraining) {
				t.Fatalf("ErrOverload must be distinct from ErrBacklog/ErrDraining")
			}
			shed = true
			break
		}
	}
	if !shed {
		t.Fatal("burst of 2 admitted 50 requests; admission control is not engaged")
	}
	// A batch bigger than the burst can never be admitted.
	if _, err := s.BatchUnicastCtx(ctx, make([]Request, 100)); !errors.Is(err, ErrOverload) {
		t.Fatalf("oversized batch: %v, want ErrOverload", err)
	}
	// Context-free readers are never shed.
	if s.Route(0, 31) == nil {
		t.Fatal("context-free Route was affected by admission control")
	}
	if reg.Counter(obs.MetricServeOverloadTotal).Value() == 0 {
		t.Fatal("serve_overload_total not incremented")
	}
}

// TestTokenBucketRefill pins the bucket arithmetic: capacity bounds a
// burst, time earns tokens back, rate <= 0 disables.
func TestTokenBucketRefill(t *testing.T) {
	b := newTokenBucket(1000, 10) // 1ms per token, depth 10
	admitted := 0
	for i := 0; i < 100; i++ {
		if b.take(1) {
			admitted++
		}
	}
	if admitted < 10 || admitted > 20 {
		t.Fatalf("burst-10 bucket admitted %d of 100 instant requests", admitted)
	}
	time.Sleep(30 * time.Millisecond)
	if !b.take(1) {
		t.Fatal("bucket did not refill after sleeping")
	}
	if !b.take(5) {
		t.Fatal("multi-token take refused despite refill")
	}
	var unlimited *tokenBucket
	if !unlimited.take(1 << 20) {
		t.Fatal("nil bucket must admit everything")
	}
	if newTokenBucket(0, 5) != nil || newTokenBucket(-1, 5) != nil {
		t.Fatal("rate <= 0 must disable the bucket")
	}
}

// TestServeDrainOrdering is the drain-ordering guarantee under -race:
// every request accepted before Shutdown completes against a
// consistent snapshot (Consistent() holds on the snapshot it was
// served from), requests after the drain begins get ErrDraining, and
// churn accepted before Shutdown is published before the applier
// stops.
func TestServeDrainOrdering(t *testing.T) {
	s := newService(t, topo.MustCube(6), Options{})
	ctx := context.Background()

	const readers = 8
	var accepted, drainRefused atomic.Int64
	var wg sync.WaitGroup
	stop := make(chan struct{})
	for r := 0; r < readers; r++ {
		wg.Add(1)
		go func(seed int) {
			defer wg.Done()
			for i := 0; ; i++ {
				select {
				case <-stop:
					return
				default:
				}
				src := topo.NodeID((seed*31 + i) % 64)
				dst := topo.NodeID((seed*17 + i*5) % 64)
				// Pin the snapshot the request will be served from and
				// assert its consistency after the route completes — a
				// torn publication or a post-drain mutation would trip
				// this under the race detector.
				sn := s.Current()
				rt, err := s.RouteCtx(ctx, src, dst)
				if err != nil {
					if !errors.Is(err, ErrDraining) {
						t.Errorf("reader error: %v, want ErrDraining only", err)
					}
					drainRefused.Add(1)
					return
				}
				if rt == nil {
					t.Error("accepted request returned nil route")
					return
				}
				if !sn.Consistent() {
					t.Error("request served against an inconsistent snapshot")
					return
				}
				accepted.Add(1)
			}
		}(r)
	}

	// Churn accepted before the drain must reach the final snapshot.
	if err := s.FailNode(13); err != nil {
		t.Fatal(err)
	}
	time.Sleep(5 * time.Millisecond) // let the readers overlap the churn
	if err := s.Shutdown(ctx); err != nil {
		t.Fatalf("Shutdown: %v", err)
	}
	close(stop)
	wg.Wait()

	if got := s.Inflight(); got != 0 {
		t.Fatalf("inflight after Shutdown = %d, want 0", got)
	}
	if accepted.Load() == 0 {
		t.Fatal("no requests were accepted before the drain")
	}
	final := s.Current()
	if !final.Consistent() {
		t.Fatal("final snapshot is not consistent")
	}
	if !final.Assignment().Faults().NodeFaulty(13) {
		t.Fatal("churn accepted before Shutdown missing from the final snapshot")
	}
	// After Shutdown: ctx readers refuse, context-free readers serve.
	if _, err := s.RouteCtx(ctx, 0, 63); !errors.Is(err, ErrDraining) {
		t.Fatalf("RouteCtx after Shutdown: %v, want ErrDraining", err)
	}
	if r := s.Route(0, 63); r == nil {
		t.Fatal("context-free Route stopped serving after Shutdown")
	}
	// Shutdown is idempotent.
	if err := s.Shutdown(ctx); err != nil {
		t.Fatalf("second Shutdown: %v", err)
	}
}

// TestServeShutdownTimeout: a drain that cannot finish before its
// context expires hard-closes and reports the context error.
func TestServeShutdownTimeout(t *testing.T) {
	s := newService(t, topo.MustCube(4), Options{})
	// Hold one in-flight request open by hand (white-box: acquire is
	// what RouteCtx does first).
	if err := s.acquire(); err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithTimeout(context.Background(), 20*time.Millisecond)
	defer cancel()
	if err := s.Shutdown(ctx); !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("Shutdown with stuck in-flight request: %v, want DeadlineExceeded", err)
	}
	// The straggler retires; the service is fully closed.
	s.release()
	if err := s.FailNode(1); !errors.Is(err, ErrClosed) {
		t.Fatalf("mutator after timed-out Shutdown: %v, want ErrClosed", err)
	}
}

// TestServeDrainMetrics: the drain flips serve_draining and the
// in-flight gauge returns to zero.
func TestServeDrainMetrics(t *testing.T) {
	reg := obs.NewRegistry()
	s := newService(t, topo.MustCube(4), Options{Registry: reg})
	if _, err := s.RouteCtx(context.Background(), 0, 15); err != nil {
		t.Fatal(err)
	}
	if err := s.Shutdown(context.Background()); err != nil {
		t.Fatal(err)
	}
	if v := reg.Gauge(obs.MetricServeDraining).Value(); v != 1 {
		t.Fatalf("serve_draining = %d, want 1", v)
	}
	if v := reg.Gauge(obs.MetricServeInflight).Value(); v != 0 {
		t.Fatalf("serve_inflight = %d, want 0", v)
	}
	if reg.Histogram(obs.MetricLatencyRoute).Snapshot().Count == 0 {
		t.Fatal("latency_route_us recorded nothing")
	}
}
