package serve

import (
	"context"
	"fmt"
	"testing"

	"repro/internal/core"
	"repro/internal/faults"
	"repro/internal/obs"
	"repro/internal/topo"
)

// Theorem-4 exhaustive suite: a disconnected faulty cube has an empty
// safe set, and the serving path must surface cross-partition requests
// as route failures carrying the "unreachable" flight error class —
// not as transport anomalies. These tests enumerate every correlated
// shape that disconnects Q4 and Q5: all dimension-wide link cuts and
// all (victim, subdim) subcube isolations.

// assertUnreachable routes src->dst on a service over set and asserts
// the admission-refused outcome plus the unreachable flight class.
func assertUnreachable(t *testing.T, set *faults.Set, src, dst topo.NodeID) {
	t.Helper()
	fl := obs.NewFlightRecorder(obs.FlightOptions{Records: 64})
	s, err := New(set, Options{Flight: fl})
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	r, err := s.RouteCtx(context.Background(), src, dst)
	if err != nil {
		t.Fatalf("RouteCtx(%d, %d): %v", src, dst, err)
	}
	if r.Outcome != core.Failure {
		t.Fatalf("route %d->%d across the partition: outcome %v, want Failure", src, dst, r.Outcome)
	}
	recs := fl.Records(0)
	if len(recs) == 0 {
		t.Fatal("no flight record for the refused route")
	}
	rec := recs[len(recs)-1]
	if rec.Err != obs.ErrClassUnreachable {
		t.Fatalf("flight record error class = %q, want %q",
			rec.Err.String(), obs.ErrClassUnreachable.String())
	}
	if rec.Outcome != obs.OutcomeFailure {
		t.Fatalf("flight record outcome = %v, want failure", rec.Outcome)
	}
}

// TestTheorem4DimCutUnreachable cuts every dimension of Q4 and Q5 in
// turn: with all 2^(n-1) links of dimension d faulty the cube separates
// into two (n-1)-subcubes, every node is in N2 with public level 0
// (Section 4.1), the safe set is empty, and a route across the cut is
// refused as unreachable while a route inside one half still delivers.
func TestTheorem4DimCutUnreachable(t *testing.T) {
	for _, n := range []int{4, 5} {
		c := topo.MustCube(n)
		for d := 0; d < n; d++ {
			t.Run(fmt.Sprintf("Q%d/dim%d", n, d), func(t *testing.T) {
				set := faults.NewSet(c)
				for _, l := range faults.DimensionLinks(c, d) {
					if err := set.FailLink(l.A, l.B); err != nil {
						t.Fatal(err)
					}
				}
				if faults.Connected(set) {
					t.Fatal("cube still connected with a full dimension cut")
				}
				as := core.Compute(set, core.Options{})
				if safe := as.SafeSet(); len(safe) != 0 {
					t.Fatalf("safe set %v not empty under a full dimension cut (Theorem 4)", safe)
				}
				for a := 0; a < c.Nodes(); a++ {
					if lvl := as.Level(topo.NodeID(a)); lvl != 0 {
						t.Fatalf("node %d has public level %d, want 0 (all nodes are N2)", a, lvl)
					}
				}
				// Across the cut: refused as unreachable.
				assertUnreachable(t, set, 0, topo.NodeID(1)<<uint(d))
				// Inside one half the cut is irrelevant: a healthy
				// neighbor across a different dimension still delivers.
				other := (d + 1) % n
				fl := obs.NewFlightRecorder(obs.FlightOptions{Records: 16})
				s, err := New(set, Options{Flight: fl})
				if err != nil {
					t.Fatal(err)
				}
				defer s.Close()
				r, err := s.RouteCtx(context.Background(), 0, topo.NodeID(1)<<uint(other))
				if err != nil {
					t.Fatal(err)
				}
				if r.Outcome == core.Failure {
					t.Fatalf("same-half neighbor route refused under a dim-%d cut", d)
				}
			})
		}
	}
}

// TestTheorem4SubcubeIsolationUnreachable isolates every subcube of
// every dimension 0..n-2 around every victim of Q4 and Q5 by failing
// the subcube's full node boundary (faults.InjectIsolatingSubcube): the
// healthy interior is disconnected from the healthy exterior, the safe
// set is empty, and an interior->exterior route is refused as
// unreachable.
func TestTheorem4SubcubeIsolationUnreachable(t *testing.T) {
	for _, n := range []int{4, 5} {
		c := topo.MustCube(n)
		for victim := 0; victim < c.Nodes(); victim++ {
			for subdim := 0; subdim <= n-2; subdim++ {
				t.Run(fmt.Sprintf("Q%d/victim%d/sub%d", n, victim, subdim), func(t *testing.T) {
					set := faults.NewSet(c)
					if err := faults.InjectIsolatingSubcube(set, topo.NodeID(victim), subdim); err != nil {
						t.Fatal(err)
					}
					if faults.Connected(set) {
						t.Fatal("healthy nodes still connected with the boundary down")
					}
					as := core.Compute(set, core.Options{})
					if safe := as.SafeSet(); len(safe) != 0 {
						t.Fatalf("safe set %v not empty in a disconnected cube (Theorem 4)", safe)
					}
					// Any healthy node outside the interior subcube and
					// its boundary serves as the exterior endpoint. The
					// interior matches the victim on dims subdim..n-1.
					var fixed topo.NodeID
					for d := subdim; d < n; d++ {
						fixed |= 1 << uint(d)
					}
					exterior := topo.NodeID(0)
					found := false
					for a := 0; a < c.Nodes(); a++ {
						id := topo.NodeID(a)
						if set.NodeFaulty(id) || id&fixed == topo.NodeID(victim)&fixed {
							continue
						}
						exterior, found = id, true
						break
					}
					if !found {
						t.Fatal("no healthy exterior node; isolation geometry wrong")
					}
					assertUnreachable(t, set, topo.NodeID(victim), exterior)
				})
			}
		}
	}
}
