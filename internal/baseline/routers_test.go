package baseline

import (
	"testing"

	"repro/internal/core"
	"repro/internal/faults"
	"repro/internal/stats"
	"repro/internal/topo"
)

func checkWalk(t *testing.T, c *topo.Cube, set *faults.Set, s, d topo.NodeID, res Result, name string) {
	t.Helper()
	if !res.Delivered {
		return
	}
	if !res.Path.Valid(c) {
		t.Fatalf("%s: invalid walk", name)
	}
	if res.Path[0] != s || res.Path[len(res.Path)-1] != d {
		t.Fatalf("%s: endpoints wrong", name)
	}
	for i := 1; i < len(res.Path); i++ {
		if set.LinkFaulty(res.Path[i-1], res.Path[i]) {
			t.Fatalf("%s: walk crosses faulty link", name)
		}
	}
	for _, a := range res.Path {
		if a != d && set.NodeFaulty(a) {
			t.Fatalf("%s: walk crosses faulty node %s", name, c.Format(a))
		}
	}
}

func TestOracleShortestPaths(t *testing.T) {
	rng := stats.NewRNG(606)
	c := topo.MustCube(6)
	for trial := 0; trial < 25; trial++ {
		set := faults.NewSet(c)
		faults.InjectUniform(set, rng, rng.Intn(15))
		oracle := NewOracleRouter(set)
		for pair := 0; pair < 30; pair++ {
			s := topo.NodeID(rng.Intn(c.Nodes()))
			d := topo.NodeID(rng.Intn(c.Nodes()))
			if set.NodeFaulty(s) || set.NodeFaulty(d) {
				continue
			}
			res := oracle.Route(s, d)
			dist := faults.Distances(set, s)
			if dist[d] < 0 {
				if res.Delivered {
					t.Fatalf("oracle delivered across a partition")
				}
				continue
			}
			if !res.Delivered {
				t.Fatalf("oracle failed on connected pair")
			}
			if res.Hops != dist[d] {
				t.Fatalf("oracle path length %d, BFS distance %d", res.Hops, dist[d])
			}
			checkWalk(t, c, set, s, d, res, "oracle")
			if !res.Path.Simple() {
				t.Fatal("oracle path must be simple")
			}
		}
	}
}

func TestOracleRejectsFaultyEndpoints(t *testing.T) {
	c := topo.MustCube(4)
	set := faults.NewSet(c)
	set.FailNode(3)
	oracle := NewOracleRouter(set)
	if res := oracle.Route(3, 0); res.Admitted || res.Delivered {
		t.Error("faulty source should not be admitted")
	}
	if res := oracle.Route(0, 3); res.Admitted || res.Delivered {
		t.Error("faulty destination should not be admitted")
	}
}

func TestDFSAlwaysDeliversWhenConnected(t *testing.T) {
	// Chen–Shin DFS is complete: it delivers iff source and destination
	// are in the same component.
	rng := stats.NewRNG(717)
	c := topo.MustCube(6)
	for trial := 0; trial < 25; trial++ {
		set := faults.NewSet(c)
		faults.InjectUniform(set, rng, 5+rng.Intn(25))
		dfs := NewDFSRouter(set)
		for pair := 0; pair < 25; pair++ {
			s := topo.NodeID(rng.Intn(c.Nodes()))
			d := topo.NodeID(rng.Intn(c.Nodes()))
			if set.NodeFaulty(s) || set.NodeFaulty(d) {
				continue
			}
			res := dfs.Route(s, d)
			connected := faults.SameComponent(set, s, d)
			if res.Delivered != connected {
				t.Fatalf("trial %d: DFS delivered=%v, connected=%v (%s -> %s, faults %s)",
					trial, res.Delivered, connected, c.Format(s), c.Format(d), set)
			}
			checkWalk(t, c, set, s, d, res, "dfs")
			if res.Delivered && res.Hops < topo.Hamming(s, d) {
				t.Fatalf("DFS beat the Hamming bound: %d < %d", res.Hops, topo.Hamming(s, d))
			}
		}
	}
}

func TestDFSSelfAndFaultFree(t *testing.T) {
	c := topo.MustCube(5)
	set := faults.NewSet(c)
	dfs := NewDFSRouter(set)
	res := dfs.Route(7, 7)
	if !res.Delivered || res.Hops != 0 {
		t.Error("self route should deliver in 0 hops")
	}
	// Fault-free: DFS follows preferred dims first, so it is optimal.
	res = dfs.Route(0, 21)
	if !res.Delivered || res.Hops != topo.Hamming(0, 21) {
		t.Errorf("fault-free DFS hops = %d, want %d", res.Hops, topo.Hamming(0, 21))
	}
	if set2 := func() *faults.Set { s2 := faults.NewSet(c); s2.FailNode(0); return s2 }(); true {
		if res := NewDFSRouter(set2).Route(0, 1); res.Admitted {
			t.Error("faulty source must not be admitted")
		}
	}
}

func TestDFSBacktrackCountsTraffic(t *testing.T) {
	// Force a dead-end: source's preferred side is walled off so DFS
	// must backtrack, making Hops exceed Path-to-destination length.
	c := topo.MustCube(4)
	set := faults.NewSet(c)
	// s=0000, d=0011. Wall: 0001 healthy but its onward nodes faulty.
	set.FailNodes(c.MustParseAll("0011")...)
	// d faulty is rejected; instead build dead-end toward 1111:
	set = faults.NewSet(c)
	// Route 0000 -> 0011: fail 0111,1011 so the DFS that wanders into
	// 0001 -> 0101... keep it simple: verify Hops >= Path.Len()-ish
	set.FailNodes(c.MustParseAll("0010", "0101", "1001")...)
	dfs := NewDFSRouter(set)
	res := dfs.Route(c.MustParse("0000"), c.MustParse("0011"))
	if !res.Delivered {
		t.Fatal("should deliver")
	}
	if res.Hops != res.Path.Len() {
		t.Errorf("Hops %d != walk length %d", res.Hops, res.Path.Len())
	}
}

func TestSidetrackRouting(t *testing.T) {
	rng := stats.NewRNG(818)
	c := topo.MustCube(6)
	delivered, attempts := 0, 0
	for trial := 0; trial < 30; trial++ {
		set := faults.NewSet(c)
		faults.InjectUniform(set, rng, rng.Intn(6))
		st := NewSidetrackRouter(set, rng.Split(uint64(trial)))
		for pair := 0; pair < 20; pair++ {
			s := topo.NodeID(rng.Intn(c.Nodes()))
			d := topo.NodeID(rng.Intn(c.Nodes()))
			if set.NodeFaulty(s) || set.NodeFaulty(d) {
				continue
			}
			attempts++
			res := st.Route(s, d)
			if res.Delivered {
				delivered++
				checkWalk(t, c, set, s, d, res, "sidetrack")
			}
		}
	}
	if attempts == 0 {
		t.Fatal("no attempts")
	}
	if float64(delivered)/float64(attempts) < 0.9 {
		t.Errorf("sidetrack delivery rate %d/%d too low under light faults", delivered, attempts)
	}
}

func TestSidetrackTTLBounds(t *testing.T) {
	c := topo.MustCube(5)
	set := faults.NewSet(c)
	rng := stats.NewRNG(1)
	st := NewSidetrackRouter(set, rng)
	st.TTL = 3
	res := st.Route(0, 31) // H = 5 > TTL = 3: cannot deliver
	if res.Delivered {
		t.Error("TTL-bound route should fail")
	}
	if res.Hops > 3 {
		t.Errorf("walked %d hops past TTL", res.Hops)
	}
	// Stranded case: all neighbors faulty.
	set2 := faults.NewSet(c)
	faults.InjectIsolating(set2, 0)
	st2 := NewSidetrackRouter(set2, rng)
	res2 := st2.Route(0, 31)
	if res2.Delivered || res2.Hops != 0 {
		t.Error("stranded source should not move")
	}
}

func TestLeeHayesRouterFaultFree(t *testing.T) {
	c := topo.MustCube(5)
	set := faults.NewSet(c)
	lh := NewLeeHayesRouter(set)
	res := lh.Route(0, 19)
	if !res.Admitted || !res.Delivered {
		t.Fatal("fault-free LH route should deliver")
	}
	if res.Hops != topo.Hamming(0, 19) {
		t.Errorf("fault-free LH hops = %d, want H", res.Hops)
	}
}

func TestLeeHayesRouterBoundsAndAdmission(t *testing.T) {
	rng := stats.NewRNG(929)
	c := topo.MustCube(7)
	for trial := 0; trial < 20; trial++ {
		set := faults.NewSet(c)
		faults.InjectUniform(set, rng, rng.Intn(7))
		lh := NewLeeHayesRouter(set)
		for pair := 0; pair < 20; pair++ {
			s := topo.NodeID(rng.Intn(c.Nodes()))
			d := topo.NodeID(rng.Intn(c.Nodes()))
			if set.NodeFaulty(s) || set.NodeFaulty(d) {
				continue
			}
			res := lh.Route(s, d)
			if res.Delivered && res.Hops > topo.Hamming(s, d)+2 {
				t.Fatalf("LH delivered in %d hops > H+2 = %d",
					res.Hops, topo.Hamming(s, d)+2)
			}
			checkWalk(t, c, set, s, d, res, "lee-hayes")
		}
	}
}

func TestChiuWuRouterBounds(t *testing.T) {
	rng := stats.NewRNG(939)
	c := topo.MustCube(7)
	for trial := 0; trial < 20; trial++ {
		set := faults.NewSet(c)
		faults.InjectUniform(set, rng, rng.Intn(10))
		cw := NewChiuWuRouter(set)
		for pair := 0; pair < 20; pair++ {
			s := topo.NodeID(rng.Intn(c.Nodes()))
			d := topo.NodeID(rng.Intn(c.Nodes()))
			if set.NodeFaulty(s) || set.NodeFaulty(d) {
				continue
			}
			res := cw.Route(s, d)
			if res.Delivered && res.Hops > topo.Hamming(s, d)+4 {
				t.Fatalf("Chiu-Wu delivered in %d hops > H+4", res.Hops)
			}
			checkWalk(t, c, set, s, d, res, "chiu-wu")
		}
	}
}

func TestSafeNodeRoutersInapplicableWhenDisconnected(t *testing.T) {
	// The paper's Theorem 4 consequence: the LH and Chiu–Wu unicasting
	// algorithms cannot even be admitted anywhere in a disconnected
	// cube, while the safety-level router still routes within the
	// surviving component.
	c := topo.MustCube(4)
	set := faults.NewSet(c)
	set.FailNodes(c.MustParseAll("0110", "1010", "1100", "1111")...) // Fig. 3
	lh := NewLeeHayesRouter(set)
	cw := NewChiuWuRouter(set)
	for s := 0; s < c.Nodes(); s++ {
		if set.NodeFaulty(topo.NodeID(s)) {
			continue
		}
		for d := 0; d < c.Nodes(); d++ {
			if s == d || set.NodeFaulty(topo.NodeID(d)) {
				continue
			}
			if res := lh.Route(topo.NodeID(s), topo.NodeID(d)); res.Admitted {
				t.Fatalf("LH admitted %s -> %s in a disconnected cube",
					c.Format(topo.NodeID(s)), c.Format(topo.NodeID(d)))
			}
			if res := cw.Route(topo.NodeID(s), topo.NodeID(d)); res.Admitted {
				t.Fatalf("Chiu-Wu admitted %s -> %s in a disconnected cube",
					c.Format(topo.NodeID(s)), c.Format(topo.NodeID(d)))
			}
		}
	}
	// Safety-level routing still works inside the big component.
	as := core.Compute(set, core.Options{})
	rt := core.NewRouter(as, nil)
	r := rt.Unicast(c.MustParse("0101"), c.MustParse("0000"))
	if r.Outcome != core.Optimal {
		t.Errorf("safety-level routing should still be optimal in-component: %v", r.Outcome)
	}
}

func TestRouterNames(t *testing.T) {
	c := topo.MustCube(3)
	set := faults.NewSet(c)
	rng := stats.NewRNG(1)
	names := map[string]bool{}
	for _, rt := range []Router{
		NewLeeHayesRouter(set), NewChiuWuRouter(set),
		NewDFSRouter(set), NewSidetrackRouter(set, rng), NewOracleRouter(set),
	} {
		if rt.Name() == "" || names[rt.Name()] {
			t.Errorf("router name %q empty or duplicated", rt.Name())
		}
		names[rt.Name()] = true
	}
}

func TestResultStretch(t *testing.T) {
	res := Result{Delivered: true, Hops: 5}
	if got := res.Stretch(0, 3); got != 3 { // H(0,3) = 2
		t.Errorf("Stretch = %d, want 3", got)
	}
}

func TestMapsExposed(t *testing.T) {
	c := topo.MustCube(4)
	set := faults.NewSet(c)
	set.FailNode(0)
	if NewLeeHayesRouter(set).Map() == nil || NewChiuWuRouter(set).Map() == nil {
		t.Error("Map() should be non-nil")
	}
}
