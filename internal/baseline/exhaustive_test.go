package baseline

import (
	"testing"

	"repro/internal/faults"
	"repro/internal/stats"
	"repro/internal/topo"
)

// forEachQ4FaultSet enumerates every fault set of exactly k nodes in Q4.
func forEachQ4FaultSet(t *testing.T, k int, fn func(*faults.Set)) {
	t.Helper()
	c := topo.MustCube(4)
	nodes := c.Nodes()
	idx := make([]int, k)
	for i := range idx {
		idx[i] = i
	}
	for {
		s := faults.NewSet(c)
		for _, v := range idx {
			if err := s.FailNode(topo.NodeID(v)); err != nil {
				t.Fatal(err)
			}
		}
		fn(s)
		i := k - 1
		for i >= 0 && idx[i] == nodes-k+i {
			i--
		}
		if i < 0 {
			return
		}
		idx[i]++
		for j := i + 1; j < k; j++ {
			idx[j] = idx[j-1] + 1
		}
	}
}

func TestExhaustiveBaselineContractsQ4(t *testing.T) {
	// Every baseline router, every fault set of size <= 3 in Q4, every
	// pair: delivered walks are valid, never cross faults or dead
	// links, and honor each scheme's own length bound.
	c := topo.MustCube(4)
	for k := 0; k <= 3; k++ {
		forEachQ4FaultSet(t, k, func(s *faults.Set) {
			routers := []Router{
				NewLeeHayesRouter(s),
				NewChiuWuRouter(s),
				NewDFSRouter(s),
				NewFreeDimRouter(s),
				NewOracleRouter(s),
			}
			for src := 0; src < c.Nodes(); src++ {
				sid := topo.NodeID(src)
				if s.NodeFaulty(sid) {
					continue
				}
				for dst := 0; dst < c.Nodes(); dst++ {
					did := topo.NodeID(dst)
					if s.NodeFaulty(did) {
						continue
					}
					h := topo.Hamming(sid, did)
					for _, rt := range routers {
						res := rt.Route(sid, did)
						if !res.Delivered {
							continue
						}
						if !res.Path.Valid(c) {
							t.Fatalf("%s: invalid walk (faults %s)", rt.Name(), s)
						}
						if res.Path[0] != sid || res.Path[len(res.Path)-1] != did {
							t.Fatalf("%s: endpoints wrong", rt.Name())
						}
						for _, a := range res.Path {
							if a != did && s.NodeFaulty(a) {
								t.Fatalf("%s: walk crosses fault (faults %s)", rt.Name(), s)
							}
						}
						switch rt.Name() {
						case "lee-hayes":
							if res.Hops > h+2 {
								t.Fatalf("lee-hayes %d hops > H+2 (faults %s)", res.Hops, s)
							}
						case "chiu-wu":
							if res.Hops > h+4 {
								t.Fatalf("chiu-wu %d hops > H+4 (faults %s)", res.Hops, s)
							}
						case "bfs-oracle":
							dist := faults.Distances(s, sid)
							if res.Hops != dist[did] {
								t.Fatalf("oracle %d hops != BFS %d", res.Hops, dist[did])
							}
						case "free-dimensions":
							// Progressive: exactly H hops when delivered.
							if res.Hops != h {
								t.Fatalf("free-dim %d hops != H %d (faults %s)", res.Hops, h, s)
							}
						}
					}
				}
			}
		})
	}
}

func TestFreeDimensionsComputation(t *testing.T) {
	c := topo.MustCube(4)
	// No faults: every dimension free.
	rt := NewFreeDimRouter(faults.NewSet(c))
	if got := rt.FreeDimensions(); len(got) != 4 {
		t.Errorf("fault-free free dims = %v", got)
	}
	// Faults 0000 and 0001 are adjacent along dimension 0: dim 0 is not
	// free, the rest are (no other faulty pair).
	s := faults.NewSet(c)
	s.FailNodes(0, 1)
	rt2 := NewFreeDimRouter(s)
	free := rt2.FreeDimensions()
	if len(free) != 3 || free[0] != 1 {
		t.Errorf("free dims = %v, want [1 2 3]", free)
	}
	// A faulty link along dimension 2 disqualifies it.
	s3 := faults.NewSet(c)
	s3.FailLink(c.MustParse("0000"), c.MustParse("0100"))
	rt3 := NewFreeDimRouter(s3)
	for _, d := range rt3.FreeDimensions() {
		if d == 2 {
			t.Error("dimension with faulty link should not be free")
		}
	}
}

func TestFreeDimRouterBehavior(t *testing.T) {
	c := topo.MustCube(5)
	rng := stats.NewRNG(5151)
	delivered, attempts := 0, 0
	for trial := 0; trial < 40; trial++ {
		s := faults.NewSet(c)
		faults.InjectUniform(s, rng, rng.Intn(4))
		rt := NewFreeDimRouter(s)
		for pair := 0; pair < 20; pair++ {
			src := topo.NodeID(rng.Intn(c.Nodes()))
			dst := topo.NodeID(rng.Intn(c.Nodes()))
			if s.NodeFaulty(src) || s.NodeFaulty(dst) {
				continue
			}
			attempts++
			if res := rt.Route(src, dst); res.Delivered {
				delivered++
				if res.Hops != topo.Hamming(src, dst) {
					t.Fatal("progressive router must be optimal when it delivers")
				}
			}
		}
	}
	if attempts == 0 || float64(delivered)/float64(attempts) < 0.85 {
		t.Errorf("free-dim delivery %d/%d too low under light faults", delivered, attempts)
	}
	// Faulty endpoints rejected.
	s := faults.NewSet(c)
	s.FailNode(0)
	rt := NewFreeDimRouter(s)
	if res := rt.Route(0, 1); res.Admitted {
		t.Error("faulty source should not be admitted")
	}
}
