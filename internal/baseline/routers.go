package baseline

import (
	"repro/internal/faults"
	"repro/internal/stats"
	"repro/internal/topo"
)

// Result is the outcome of one baseline routing attempt, in a shape
// comparable with the safety-level router's Route.
type Result struct {
	Delivered bool
	// Admitted is false when the scheme's own applicability test
	// rejected the unicast at the source (e.g. no safe node in the
	// neighborhood). A non-admitted unicast moves no message.
	Admitted bool
	// Path is the walk the message traveled, including any backtracking
	// (so it may repeat nodes for the DFS router).
	Path topo.Path
	// Hops is the total number of link traversals, counting backtrack
	// moves; this is the "traffic" measure. For progressive routers it
	// equals Path.Len().
	Hops int
}

// Stretch returns Hops minus the Hamming distance — the detour overhead.
func (r Result) Stretch(s, d topo.NodeID) int {
	return r.Hops - topo.Hamming(s, d)
}

// Router is the common interface of all unicast schemes compared in the
// experiments.
type Router interface {
	// Name identifies the scheme in tables.
	Name() string
	// Route attempts a unicast from s to d.
	Route(s, d topo.NodeID) Result
}

// ---------------------------------------------------------------------
// Lee–Hayes unicasting (ref [7]).
//
// The original scheme routes on the binary safe/unsafe status: a message
// is admitted when the source is safe or has a safe neighbor, and is
// forwarded preferring safe preferred neighbors, detouring via a safe
// spare neighbor when every preferred neighbor is unusable. It delivers
// within H+2 hops whenever the cube is not fully unsafe. In a
// disconnected cube the safe set is empty (Theorem 4) and the scheme is
// not applicable.
// ---------------------------------------------------------------------

// LeeHayesRouter routes messages using the Lee–Hayes safe-node map.
type LeeHayesRouter struct {
	set *faults.Set
	m   *SafeMap
}

// NewLeeHayesRouter builds the router, computing the safe-node map.
func NewLeeHayesRouter(set *faults.Set) *LeeHayesRouter {
	return &LeeHayesRouter{set: set, m: LeeHayes(set)}
}

// Map exposes the underlying safe-node map.
func (rt *LeeHayesRouter) Map() *SafeMap { return rt.m }

// Name implements Router.
func (rt *LeeHayesRouter) Name() string { return "lee-hayes" }

// Route implements Router.
func (rt *LeeHayesRouter) Route(s, d topo.NodeID) Result {
	return safeNodeRoute(rt.set, rt.m, s, d, 2)
}

// ---------------------------------------------------------------------
// Chiu–Wu unicasting (ref [4]) on the Wu–Fernandez safe-node set.
//
// Chiu and Wu extend the safe-node approach to the enhanced (larger)
// Wu–Fernandez set and prove delivery within H+4 whenever the cube is
// not fully unsafe. The routing skeleton is the same greedy-with-detour
// scheme, with a larger detour allowance.
// ---------------------------------------------------------------------

// ChiuWuRouter routes messages using the Wu–Fernandez safe-node map.
type ChiuWuRouter struct {
	set *faults.Set
	m   *SafeMap
}

// NewChiuWuRouter builds the router, computing the safe-node map.
func NewChiuWuRouter(set *faults.Set) *ChiuWuRouter {
	return &ChiuWuRouter{set: set, m: WuFernandez(set)}
}

// Map exposes the underlying safe-node map.
func (rt *ChiuWuRouter) Map() *SafeMap { return rt.m }

// Name implements Router.
func (rt *ChiuWuRouter) Name() string { return "chiu-wu" }

// Route implements Router.
func (rt *ChiuWuRouter) Route(s, d topo.NodeID) Result {
	return safeNodeRoute(rt.set, rt.m, s, d, 4)
}

// safeNodeRoute is the shared greedy-with-detour forwarding engine for
// binary safe-node schemes. detourBudget bounds the extra hops beyond the
// Hamming distance (2 for Lee–Hayes, 4 for Chiu–Wu).
func safeNodeRoute(set *faults.Set, m *SafeMap, s, d topo.NodeID, detourBudget int) Result {
	c := set.Cube()
	if set.NodeFaulty(s) {
		return Result{}
	}
	// Admission: the source or one of its nonfaulty neighbors is safe.
	admitted := m.Safe(s)
	for i := 0; i < c.Dim() && !admitted; i++ {
		if m.Safe(c.Neighbor(s, i)) {
			admitted = true
		}
	}
	if !admitted {
		return Result{}
	}
	res := Result{Admitted: true, Path: topo.Path{s}}
	cur := s
	budget := detourBudget
	maxHops := topo.Hamming(s, d) + detourBudget
	for hops := 0; hops <= maxHops; hops++ {
		if cur == d {
			res.Delivered = true
			res.Hops = res.Path.Len()
			return res
		}
		nav := topo.Nav(cur, d)
		next, ok := pickSafeNodeHop(set, m, cur, d, nav, &budget)
		if !ok {
			res.Hops = res.Path.Len()
			return res
		}
		res.Path = append(res.Path, next)
		cur = next
	}
	res.Hops = res.Path.Len()
	return res
}

// pickSafeNodeHop chooses the next hop: a safe preferred neighbor if one
// exists, else a usable (nonfaulty) preferred neighbor, else — spending
// detour budget — a safe spare neighbor, else any usable spare neighbor.
// The final hop to the destination is always taken if the link works.
func pickSafeNodeHop(set *faults.Set, m *SafeMap, cur, d topo.NodeID, nav topo.NavVector, budget *int) (topo.NodeID, bool) {
	c := set.Cube()
	if nav.Count() == 1 {
		// Final delivery, even to an unsafe destination.
		for i := 0; i < c.Dim(); i++ {
			if nav.Bit(i) {
				b := c.Neighbor(cur, i)
				if !set.LinkFaulty(cur, b) && !set.NodeFaulty(b) {
					return b, true
				}
				break
			}
		}
	} else {
		// Safe preferred neighbor first.
		for i := 0; i < c.Dim(); i++ {
			if nav.Bit(i) {
				b := c.Neighbor(cur, i)
				if m.Safe(b) && !set.LinkFaulty(cur, b) {
					return b, true
				}
			}
		}
		// Any usable preferred neighbor.
		for i := 0; i < c.Dim(); i++ {
			if nav.Bit(i) {
				b := c.Neighbor(cur, i)
				if !set.NodeFaulty(b) && !set.LinkFaulty(cur, b) {
					return b, true
				}
			}
		}
	}
	// Detour via a safe spare neighbor.
	if *budget >= 2 {
		for i := 0; i < c.Dim(); i++ {
			if !nav.Bit(i) {
				b := c.Neighbor(cur, i)
				if m.Safe(b) && !set.LinkFaulty(cur, b) {
					*budget -= 2
					return b, true
				}
			}
		}
		// Any usable spare neighbor as a last resort.
		for i := 0; i < c.Dim(); i++ {
			if !nav.Bit(i) {
				b := c.Neighbor(cur, i)
				if !set.NodeFaulty(b) && !set.LinkFaulty(cur, b) {
					*budget -= 2
					return b, true
				}
			}
		}
	}
	return 0, false
}

// ---------------------------------------------------------------------
// Chen–Shin depth-first routing (ref [3]).
// ---------------------------------------------------------------------

// DFSRouter implements depth-first-search routing with backtracking: the
// message carries the history of visited nodes; at each node untried
// preferred dimensions are explored first, then spare dimensions, and the
// message backtracks when every forward link is blocked. It delivers
// whenever source and destination are connected, at the cost of
// potentially long, history-carrying paths — exactly the trade-off the
// paper's introduction describes.
type DFSRouter struct {
	set *faults.Set
}

// NewDFSRouter builds the router.
func NewDFSRouter(set *faults.Set) *DFSRouter { return &DFSRouter{set: set} }

// Name implements Router.
func (rt *DFSRouter) Name() string { return "chen-shin-dfs" }

// Route implements Router.
func (rt *DFSRouter) Route(s, d topo.NodeID) Result {
	set := rt.set
	if set.NodeFaulty(s) {
		return Result{}
	}
	res := Result{Admitted: true, Path: topo.Path{s}}
	if s == d {
		res.Delivered = true
		return res
	}
	visited := make(map[topo.NodeID]bool, 64)
	visited[s] = true
	// stack holds the current DFS chain (the would-be final path).
	stack := []topo.NodeID{s}
	for len(stack) > 0 {
		cur := stack[len(stack)-1]
		next, ok := rt.bestUntried(cur, d, visited)
		if !ok {
			// Backtrack: pop and physically move back one hop.
			stack = stack[:len(stack)-1]
			if len(stack) > 0 {
				res.Hops++
				res.Path = append(res.Path, stack[len(stack)-1])
			}
			continue
		}
		visited[next] = true
		stack = append(stack, next)
		res.Hops++
		res.Path = append(res.Path, next)
		if next == d {
			res.Delivered = true
			return res
		}
	}
	return res
}

// bestUntried returns the most promising unvisited usable neighbor:
// preferred dimensions (lowest first), then spare dimensions. The final
// hop to d is allowed even if d is faulty only when d is nonfaulty —
// DFS as defined in ref [3] routes between nonfaulty nodes.
func (rt *DFSRouter) bestUntried(cur, d topo.NodeID, visited map[topo.NodeID]bool) (topo.NodeID, bool) {
	c := rt.set.Cube()
	nav := topo.Nav(cur, d)
	for pass := 0; pass < 2; pass++ {
		for i := 0; i < c.Dim(); i++ {
			preferred := nav.Bit(i)
			if (pass == 0) != preferred {
				continue
			}
			b := c.Neighbor(cur, i)
			if visited[b] || rt.set.NodeFaulty(b) || rt.set.LinkFaulty(cur, b) {
				continue
			}
			return b, true
		}
	}
	return 0, false
}

// ---------------------------------------------------------------------
// Gordon–Stout sidetracking (ref [5]).
// ---------------------------------------------------------------------

// SidetrackRouter implements the randomized sidetracking heuristic: move
// to a random usable preferred neighbor when one exists; otherwise
// sidetrack to a random usable spare neighbor. There is no history and
// no backtracking, so the walk can wander; a TTL bounds it.
type SidetrackRouter struct {
	set *faults.Set
	rng *stats.RNG
	// TTL is the maximum hops before the message is dropped. Zero means
	// the default 4*n + 8.
	TTL int
}

// NewSidetrackRouter builds the router with the given RNG (required —
// the scheme is randomized).
func NewSidetrackRouter(set *faults.Set, rng *stats.RNG) *SidetrackRouter {
	return &SidetrackRouter{set: set, rng: rng}
}

// Name implements Router.
func (rt *SidetrackRouter) Name() string { return "gordon-stout-sidetrack" }

// Route implements Router.
func (rt *SidetrackRouter) Route(s, d topo.NodeID) Result {
	set, c := rt.set, rt.set.Cube()
	if set.NodeFaulty(s) {
		return Result{}
	}
	ttl := rt.TTL
	if ttl == 0 {
		ttl = 4*c.Dim() + 8
	}
	res := Result{Admitted: true, Path: topo.Path{s}}
	cur := s
	var cand []topo.NodeID
	for hop := 0; hop < ttl; hop++ {
		if cur == d {
			res.Delivered = true
			return res
		}
		nav := topo.Nav(cur, d)
		cand = cand[:0]
		for i := 0; i < c.Dim(); i++ {
			if nav.Bit(i) {
				b := c.Neighbor(cur, i)
				if !set.NodeFaulty(b) && !set.LinkFaulty(cur, b) {
					cand = append(cand, b)
				}
			}
		}
		if len(cand) == 0 {
			// Sidetrack: random fault-free spare neighbor.
			for i := 0; i < c.Dim(); i++ {
				if !nav.Bit(i) {
					b := c.Neighbor(cur, i)
					if !set.NodeFaulty(b) && !set.LinkFaulty(cur, b) {
						cand = append(cand, b)
					}
				}
			}
		}
		if len(cand) == 0 {
			return res // stranded
		}
		cur = cand[rt.rng.Intn(len(cand))]
		res.Hops++
		res.Path = append(res.Path, cur)
	}
	if cur == d {
		res.Delivered = true
	}
	return res
}

// ---------------------------------------------------------------------
// Exact BFS oracle.
// ---------------------------------------------------------------------

// OracleRouter returns true shortest paths over the surviving subgraph.
// It is global-information-based and serves as the ground-truth
// comparator (what an omniscient router could do).
type OracleRouter struct {
	set *faults.Set
}

// NewOracleRouter builds the oracle.
func NewOracleRouter(set *faults.Set) *OracleRouter { return &OracleRouter{set: set} }

// Name implements Router.
func (rt *OracleRouter) Name() string { return "bfs-oracle" }

// Route implements Router.
func (rt *OracleRouter) Route(s, d topo.NodeID) Result {
	set, c := rt.set, rt.set.Cube()
	if set.NodeFaulty(s) || set.NodeFaulty(d) {
		return Result{}
	}
	// BFS from d back to s so the parent chain reads forward.
	dist := make([]int, c.Nodes())
	for i := range dist {
		dist[i] = -1
	}
	dist[d] = 0
	queue := []topo.NodeID{d}
	for len(queue) > 0 {
		a := queue[0]
		queue = queue[1:]
		for i := 0; i < c.Dim(); i++ {
			b := c.Neighbor(a, i)
			if dist[b] >= 0 || set.NodeFaulty(b) || set.LinkFaulty(a, b) {
				continue
			}
			dist[b] = dist[a] + 1
			queue = append(queue, b)
		}
	}
	if dist[s] < 0 {
		return Result{Admitted: true} // disconnected: not deliverable
	}
	res := Result{Admitted: true, Delivered: true, Path: topo.Path{s}}
	cur := s
	for cur != d {
		for i := 0; i < c.Dim(); i++ {
			b := c.Neighbor(cur, i)
			if dist[b] == dist[cur]-1 && !set.NodeFaulty(b) && !set.LinkFaulty(cur, b) {
				cur = b
				break
			}
		}
		res.Path = append(res.Path, cur)
		res.Hops++
	}
	return res
}
