package baseline

import (
	"repro/internal/faults"
	"repro/internal/topo"
)

// Free-dimensions routing (ref [8]: Raghavendra, Yang and Tien, "Free
// Dimensions — An Effective Approach to Achieving Fault Tolerance in
// Hypercubes"). A dimension is free when no two faulty nodes are
// adjacent along it; crossing a free dimension can change the faulty
// neighborhood only mildly, so the scheme crosses blocked (non-free)
// dimensions early while alternatives remain and saves free dimensions
// for last. Raghavendra et al. prove strong guarantees for f <= n/2
// faults; as with the other prior-work routers, this implementation is
// a faithful-in-spirit reconstruction whose behavior is measured, not
// claimed (DESIGN.md section 2).
type FreeDimRouter struct {
	set  *faults.Set
	free []bool
}

// NewFreeDimRouter builds the router, computing the free-dimension set.
func NewFreeDimRouter(set *faults.Set) *FreeDimRouter {
	c := set.Cube()
	rt := &FreeDimRouter{set: set, free: make([]bool, c.Dim())}
	for i := 0; i < c.Dim(); i++ {
		rt.free[i] = true
		for _, f := range set.FaultyNodes() {
			if set.NodeFaulty(c.Neighbor(f, i)) {
				rt.free[i] = false
				break
			}
		}
		if rt.free[i] {
			// A faulty link along i also disqualifies it.
			for _, l := range set.FaultyLinks() {
				if l.Dimension() == i {
					rt.free[i] = false
					break
				}
			}
		}
	}
	return rt
}

// FreeDimensions returns the free dimensions in ascending order.
func (rt *FreeDimRouter) FreeDimensions() []int {
	var out []int
	for i, f := range rt.free {
		if f {
			out = append(out, i)
		}
	}
	return out
}

// Name implements Router.
func (rt *FreeDimRouter) Name() string { return "free-dimensions" }

// Route implements Router: greedy progressive routing that prefers
// usable non-free preferred dimensions first and saves free preferred
// dimensions for the tail of the route; it never detours (progressive,
// like ref [2]'s simplification), so it fails where every preferred
// neighbor is blocked.
func (rt *FreeDimRouter) Route(s, d topo.NodeID) Result {
	set, c := rt.set, rt.set.Cube()
	if set.NodeFaulty(s) || set.NodeFaulty(d) {
		return Result{}
	}
	res := Result{Admitted: true, Path: topo.Path{s}}
	cur := s
	for cur != d {
		nav := topo.Nav(cur, d)
		next := topo.NodeID(0)
		found := false
		// Pass 0: usable non-free preferred dimensions.
		// Pass 1: usable free preferred dimensions.
		for pass := 0; pass < 2 && !found; pass++ {
			for i := 0; i < c.Dim(); i++ {
				if !nav.Bit(i) || rt.free[i] != (pass == 1) {
					continue
				}
				b := c.Neighbor(cur, i)
				if set.LinkFaulty(cur, b) {
					continue
				}
				if set.NodeFaulty(b) && b != d {
					continue
				}
				next = b
				found = true
				break
			}
		}
		if !found {
			res.Hops = res.Path.Len()
			return res
		}
		cur = next
		res.Path = append(res.Path, cur)
		res.Hops++
	}
	res.Delivered = true
	return res
}
