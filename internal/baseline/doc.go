// Package baseline implements the prior-work schemes the paper compares
// safety levels against: the Lee–Hayes safe-node definition (Definition 2,
// ref [7]), the Wu–Fernandez definition (Definition 3, ref [10]), routing
// built on each, Chen–Shin depth-first fault-tolerant routing (ref [3]),
// the Gordon–Stout sidetracking heuristic (ref [5]), and an exact BFS
// oracle used as ground truth.
//
// Key invariant: none of these implementations borrow from
// internal/core — each baseline derives its own node classification and
// routing decisions from the fault set alone, so the comparison tables
// (paper Section 5, EXPERIMENTS.md E5/E10) measure genuinely different
// algorithms rather than reskinned safety levels.
package baseline
