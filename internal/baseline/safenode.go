package baseline

import (
	"repro/internal/faults"
	"repro/internal/topo"
)

// SafeMap records the binary safe/unsafe status of every node under one
// of the safe-node definitions, plus the number of synchronous rounds the
// status-exchange fixpoint needed. Both definitions start from
// "all nonfaulty nodes are safe" and monotonically mark nodes unsafe, so
// the greatest fixpoint is unique.
type SafeMap struct {
	cube   *topo.Cube
	safe   []bool
	faulty []bool
	rounds int
}

// Cube returns the topology the map is defined over.
func (m *SafeMap) Cube() *topo.Cube { return m.cube }

// Safe reports whether node a is safe. Faulty nodes are never safe.
func (m *SafeMap) Safe(a topo.NodeID) bool { return m.safe[a] }

// Rounds returns the number of synchronous status-exchange rounds until
// the fixpoint stabilized. The paper: both definitions need O(n^2)
// rounds in the worst case, versus n-1 for safety levels.
func (m *SafeMap) Rounds() int { return m.rounds }

// SafeSet returns the safe nodes in ascending order.
func (m *SafeMap) SafeSet() []topo.NodeID {
	var out []topo.NodeID
	for a, s := range m.safe {
		if s {
			out = append(out, topo.NodeID(a))
		}
	}
	return out
}

// SafeCount returns the number of safe nodes.
func (m *SafeMap) SafeCount() int {
	n := 0
	for _, s := range m.safe {
		if s {
			n++
		}
	}
	return n
}

// unsafeRule decides whether a nonfaulty node with the given neighbor
// statistics must be marked unsafe.
type unsafeRule func(faultyNeighbors, unsafeOrFaultyNeighbors int) bool

// LeeHayes computes the safe-node map of Definition 2 (ref [7]): a
// nonfaulty node is unsafe iff it has at least two unsafe or faulty
// neighbors.
func LeeHayes(set *faults.Set) *SafeMap {
	return fixpoint(set, func(_, uf int) bool { return uf >= 2 })
}

// WuFernandez computes the safe-node map of Definition 3 (ref [10]): a
// nonfaulty node is unsafe iff it has two faulty neighbors, or at least
// three unsafe-or-faulty neighbors.
func WuFernandez(set *faults.Set) *SafeMap {
	return fixpoint(set, func(f, uf int) bool { return f >= 2 || uf >= 3 })
}

// fixpoint iterates the unsafe-marking rule synchronously until stable.
// Link faults are incorporated the same way Section 4.1 treats them for
// safety levels: a node with an adjacent faulty link counts as faulty to
// everyone else (neither original definition models link faults, so this
// is the natural conservative embedding).
func fixpoint(set *faults.Set, rule unsafeRule) *SafeMap {
	c := set.Cube()
	nodes := c.Nodes()
	m := &SafeMap{
		cube:   c,
		safe:   make([]bool, nodes),
		faulty: make([]bool, nodes),
	}
	for a := 0; a < nodes; a++ {
		id := topo.NodeID(a)
		m.faulty[a] = set.NodeFaulty(id) || len(set.AdjacentFaultyLinks(id)) > 0
		m.safe[a] = !m.faulty[a]
	}
	next := make([]bool, nodes)
	for {
		changed := false
		for a := 0; a < nodes; a++ {
			id := topo.NodeID(a)
			if m.faulty[a] {
				next[a] = false
				continue
			}
			f, uf := 0, 0
			for i := 0; i < c.Dim(); i++ {
				b := c.Neighbor(id, i)
				if m.faulty[b] {
					f++
					uf++
				} else if !m.safe[b] {
					uf++
				}
			}
			stillSafe := m.safe[a] && !rule(f, uf)
			next[a] = stillSafe
			if stillSafe != m.safe[a] {
				changed = true
			}
		}
		if !changed {
			break
		}
		copy(m.safe, next)
		m.rounds++
	}
	return m
}

// Contains reports whether every safe node of m is also safe in other.
// The paper's inclusion chain: LeeHayes ⊆ WuFernandez ⊆ {S(a) = n}.
func (m *SafeMap) ContainedIn(other *SafeMap) bool {
	for a, s := range m.safe {
		if s && !other.safe[a] {
			return false
		}
	}
	return true
}
