package baseline

import (
	"testing"

	"repro/internal/core"
	"repro/internal/faults"
	"repro/internal/stats"
	"repro/internal/topo"
)

// section23 builds the Section 2.3 comparison cube: Q4 with faults
// 0000, 0110, 1111.
func section23(t testing.TB) (*topo.Cube, *faults.Set) {
	t.Helper()
	c := topo.MustCube(4)
	s := faults.NewSet(c)
	if err := s.FailNodes(c.MustParseAll("0000", "0110", "1111")...); err != nil {
		t.Fatal(err)
	}
	return c, s
}

func nodeSet(c *topo.Cube, addrs ...string) map[topo.NodeID]bool {
	m := make(map[topo.NodeID]bool, len(addrs))
	for _, a := range addrs {
		m[c.MustParse(a)] = true
	}
	return m
}

func sameSet(t *testing.T, c *topo.Cube, got []topo.NodeID, want map[topo.NodeID]bool, label string) {
	t.Helper()
	if len(got) != len(want) {
		gotStr := make([]string, len(got))
		for i, a := range got {
			gotStr[i] = c.Format(a)
		}
		t.Errorf("%s: got %d nodes %v, want %d", label, len(got), gotStr, len(want))
		return
	}
	for _, a := range got {
		if !want[a] {
			t.Errorf("%s: unexpected safe node %s", label, c.Format(a))
		}
	}
}

// TestSection23SafeSets reproduces the paper's three-way comparison on
// the exact example cube (Q4, faults {0000, 0110, 1111}):
//
//	safety-level safe set = {0001, 0011, 0101, 1000, 1001, 1010, 1011, 1100, 1101}
//	Lee–Hayes safe set    = empty
//
// The paper additionally lists the Wu–Fernandez set as the same nine
// nodes "with the absence of node 1100". That listed set is internally
// inconsistent with the paper's own Definition 3: at the fixpoint, nodes
// 1100, 0011, 0101 and 1010 all have identical neighborhood profiles
// (zero faulty and exactly two unsafe neighbors — 0010/0100/0111/1110
// are the only unsafe nodes, each adjacent to two faults), so no local
// rule over (faulty, unsafe-or-faulty) counts can exclude 1100 while
// keeping the other three. The literal Definition 3 fixpoint keeps all
// nine; we assert that, and EXPERIMENTS.md records the discrepancy.
func TestSection23SafeSets(t *testing.T) {
	c, s := section23(t)

	nine := nodeSet(c,
		"0001", "0011", "0101", "1000", "1001", "1010", "1011", "1100", "1101")

	as := core.Compute(s, core.Options{})
	sameSet(t, c, as.SafeSet(), nine, "safety-level safe set")

	wf := WuFernandez(s)
	sameSet(t, c, wf.SafeSet(), nine, "Wu-Fernandez safe set (literal Definition 3)")

	lh := LeeHayes(s)
	if n := lh.SafeCount(); n != 0 {
		t.Errorf("Lee-Hayes safe set should be empty, got %d nodes", n)
	}
}

// TestSection23ProfileSymmetry pins the argument above: the four nodes
// the paper's WF listing treats asymmetrically have identical
// (faulty, unsafe) neighbor profiles under the Definition 3 fixpoint.
func TestSection23ProfileSymmetry(t *testing.T) {
	c, s := section23(t)
	wf := WuFernandez(s)
	for _, addr := range []string{"1100", "0011", "0101", "1010"} {
		a := c.MustParse(addr)
		f, u := 0, 0
		for i := 0; i < c.Dim(); i++ {
			b := c.Neighbor(a, i)
			if s.NodeFaulty(b) {
				f++
			} else if !wf.Safe(b) {
				u++
			}
		}
		if f != 0 || u != 2 {
			t.Errorf("node %s profile (faulty=%d, unsafe=%d), want (0, 2)", addr, f, u)
		}
	}
}

func TestInclusionChainOnRandomCubes(t *testing.T) {
	// For every fault distribution: LeeHayes ⊆ WuFernandez ⊆ {S(a)=n}.
	rng := stats.NewRNG(161)
	for n := 3; n <= 8; n++ {
		c := topo.MustCube(n)
		for trial := 0; trial < 30; trial++ {
			s := faults.NewSet(c)
			faults.InjectUniform(s, rng, rng.Intn(c.Nodes()/3))
			lh := LeeHayes(s)
			wf := WuFernandez(s)
			if !lh.ContainedIn(wf) {
				t.Fatalf("n=%d trial %d: LH not within WF (faults %s)", n, trial, s)
			}
			as := core.Compute(s, core.Options{})
			for _, a := range wf.SafeSet() {
				if as.Level(a) != n {
					t.Fatalf("n=%d trial %d: WF-safe node %s has level %d (faults %s)",
						n, trial, c.Format(a), as.Level(a), s)
				}
			}
		}
	}
}

func TestTheorem4DisconnectedSafeSetsEmpty(t *testing.T) {
	// Theorem 4: in any disconnected hypercube the Wu–Fernandez (and
	// hence Lee–Hayes) safe set is empty.
	rng := stats.NewRNG(3434)
	for n := 3; n <= 7; n++ {
		c := topo.MustCube(n)
		for trial := 0; trial < 30; trial++ {
			s := faults.NewSet(c)
			// Isolate a random victim, optionally with extra faults.
			faults.InjectIsolating(s, topo.NodeID(rng.Intn(c.Nodes())))
			faults.InjectUniform(s, rng, rng.Intn(3))
			if faults.Connected(s) {
				continue // extra faults may have killed the island
			}
			if wf := WuFernandez(s); wf.SafeCount() != 0 {
				t.Fatalf("n=%d trial %d: disconnected cube has %d WF-safe nodes (faults %s)",
					n, trial, wf.SafeCount(), s)
			}
			if lh := LeeHayes(s); lh.SafeCount() != 0 {
				t.Fatalf("n=%d trial %d: disconnected cube has %d LH-safe nodes (faults %s)",
					n, trial, lh.SafeCount(), s)
			}
		}
	}
}

func TestTheorem4SubcubePartition(t *testing.T) {
	// Multi-node partitions too.
	c := topo.MustCube(6)
	s := faults.NewSet(c)
	if err := faults.InjectIsolatingSubcube(s, 0, 2); err != nil {
		t.Fatal(err)
	}
	if faults.Connected(s) {
		t.Fatal("scenario should be disconnected")
	}
	if wf := WuFernandez(s); wf.SafeCount() != 0 {
		t.Errorf("WF safe count = %d, want 0", wf.SafeCount())
	}
	if lh := LeeHayes(s); lh.SafeCount() != 0 {
		t.Errorf("LH safe count = %d, want 0", lh.SafeCount())
	}
}

func TestFaultFreeAllSafeBothDefinitions(t *testing.T) {
	c := topo.MustCube(5)
	s := faults.NewSet(c)
	lh, wf := LeeHayes(s), WuFernandez(s)
	if lh.SafeCount() != c.Nodes() || wf.SafeCount() != c.Nodes() {
		t.Error("fault-free cube: every node should be safe")
	}
	if lh.Rounds() != 0 || wf.Rounds() != 0 {
		t.Error("fault-free fixpoints should take 0 rounds")
	}
}

func TestSafeMapBasics(t *testing.T) {
	c, s := section23(t)
	wf := WuFernandez(s)
	if wf.Cube() != c {
		t.Error("Cube() identity")
	}
	if wf.Safe(c.MustParse("0000")) {
		t.Error("faulty node must not be safe")
	}
	if !wf.Safe(c.MustParse("1001")) {
		t.Error("1001 should be WF-safe")
	}
	if wf.SafeCount() != len(wf.SafeSet()) {
		t.Error("SafeCount and SafeSet disagree")
	}
}

func TestLeeHayesSingleFault(t *testing.T) {
	// One fault in Q4: its neighbors have exactly one faulty neighbor,
	// so everyone nonfaulty stays safe under both definitions.
	c := topo.MustCube(4)
	s := faults.NewSet(c)
	s.FailNode(c.MustParse("0101"))
	if lh := LeeHayes(s); lh.SafeCount() != 15 {
		t.Errorf("LH safe count = %d, want 15", lh.SafeCount())
	}
	if wf := WuFernandez(s); wf.SafeCount() != 15 {
		t.Errorf("WF safe count = %d, want 15", wf.SafeCount())
	}
}

func TestLinkFaultEmbedding(t *testing.T) {
	// A node with an adjacent faulty link counts as faulty to others
	// and is itself never safe.
	c := topo.MustCube(4)
	s := faults.NewSet(c)
	s.FailLink(c.MustParse("0000"), c.MustParse("0001"))
	wf := WuFernandez(s)
	if wf.Safe(c.MustParse("0000")) || wf.Safe(c.MustParse("0001")) {
		t.Error("N2 nodes must be unsafe under the embedding")
	}
}

func TestRoundsBoundedSanity(t *testing.T) {
	// The fixpoint must terminate well within O(n^2) rounds and the
	// round count must be 0 only if nothing changed.
	rng := stats.NewRNG(515)
	c := topo.MustCube(7)
	for trial := 0; trial < 20; trial++ {
		s := faults.NewSet(c)
		faults.InjectUniform(s, rng, 10+rng.Intn(20))
		lh := LeeHayes(s)
		if lh.Rounds() > c.Dim()*c.Dim() {
			t.Errorf("LH rounds = %d exceeds n^2", lh.Rounds())
		}
		wf := WuFernandez(s)
		if wf.Rounds() > c.Dim()*c.Dim() {
			t.Errorf("WF rounds = %d exceeds n^2", wf.Rounds())
		}
		// WF marks fewer nodes unsafe, so its unsafe wave is never
		// longer... not a theorem, but WF ⊇ LH safe sets must hold.
		if !lh.ContainedIn(wf) {
			t.Error("inclusion violated")
		}
	}
}

func TestLeeHayesCanExceedSafetyLevelRounds(t *testing.T) {
	// The paper's headline comparison: safety levels stabilize in at
	// most n-1 rounds while the binary definitions can take longer.
	// Build the classic chain scenario: faults marching along a path
	// make the unsafe wave propagate one node per round. Verify at
	// least one instance where LH needs more rounds than GS.
	rng := stats.NewRNG(8899)
	c := topo.MustCube(7)
	found := false
	for trial := 0; trial < 200 && !found; trial++ {
		s := faults.NewSet(c)
		faults.InjectClustered(s, rng, 12, 4)
		faults.InjectUniform(s, rng, 8)
		lh := LeeHayes(s)
		as := core.Compute(s, core.Options{})
		if lh.Rounds() > as.Rounds() {
			found = true
		}
	}
	if !found {
		t.Error("expected at least one instance where Lee-Hayes needs more rounds than GS")
	}
}
