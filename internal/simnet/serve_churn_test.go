package simnet

import (
	"testing"

	"repro/internal/faults"
	"repro/internal/serve"
	"repro/internal/topo"
)

// TestServeChurnSimnetParity replays one churn schedule through both
// execution substrates — the distributed message-passing engine (GS
// exchange after every event) and the serving engine (incremental
// repair + atomic snapshot swap after every event) — and checks that
// the published snapshots agree with the distributed agreement at
// every step. This ties the serving layer's snapshots to the paper's
// protocol itself, not just to the sequential oracle: both substrates
// must land on the unique fixpoint of Definition 1 for each fault set
// of the schedule.
func TestServeChurnSimnetParity(t *testing.T) {
	shapes := []struct {
		name string
		tp   topo.Topology
	}{
		{"cube/q4", topo.MustCube(4)},
		{"mixed/2x3x2", topo.MustMixed(2, 3, 2)},
	}
	for si, tc := range shapes {
		tc := tc
		t.Run(tc.name, func(t *testing.T) {
			tp := tc.tp
			events := faults.ChurnSchedule(tp, uint64(61+si), 25, faults.ChurnOptions{Links: true})

			// Distributed side: RunChurn records the engine's agreed
			// levels after each event's GS exchange.
			e := New(faults.NewSet(tp))
			defer e.Close()
			rep, err := e.RunChurn(events, ChurnRunOptions{})
			if err != nil {
				t.Fatal(err)
			}

			// Serving side: same schedule, one event per Apply+Flush so
			// every step's snapshot is observable.
			svc, err := serve.New(faults.NewSet(tp), serve.Options{})
			if err != nil {
				t.Fatal(err)
			}
			defer svc.Close()

			for i, step := range rep.Steps {
				if err := svc.Apply(step.Event); err != nil {
					t.Fatalf("step %d serve apply %v: %v", i, step.Event, err)
				}
				svc.Flush()
				sn := svc.Current()
				if !sn.Consistent() {
					t.Fatalf("step %d: torn snapshot publication", i)
				}
				as := sn.Assignment()
				for a := 0; a < tp.Nodes(); a++ {
					id := topo.NodeID(a)
					wantPub, wantOwn := as.Level(id), as.OwnLevel(id)
					if as.Faults().NodeFaulty(id) {
						// Dead engine goroutines report level 0.
						wantPub, wantOwn = 0, 0
					}
					if step.Levels[a] != wantPub || step.OwnLevels[a] != wantOwn {
						t.Fatalf("step %d (%v) node %s: engine %d/%d, snapshot %d/%d",
							i, step.Event, tp.Format(id),
							step.Levels[a], step.OwnLevels[a], wantPub, wantOwn)
					}
				}
				// Generations advance monotonically, at least one per
				// event (composite mutations like RecoverNode may burn
				// several).
				if sn.Generation() < uint64(i+1) {
					t.Fatalf("step %d: snapshot generation %d did not advance", i, sn.Generation())
				}
			}
		})
	}
}
