package simnet

import (
	"runtime"
	"testing"
	"time"

	"repro/internal/core"
	"repro/internal/faults"
	"repro/internal/stats"
	"repro/internal/topo"
)

func fig1Set(t testing.TB) *faults.Set {
	t.Helper()
	c := topo.MustCube(4)
	s := faults.NewSet(c)
	if err := s.FailNodes(c.MustParseAll("0011", "0100", "0110", "1001")...); err != nil {
		t.Fatal(err)
	}
	return s
}

func TestDistributedGSMatchesSequential(t *testing.T) {
	rng := stats.NewRNG(7531)
	for n := 2; n <= 7; n++ {
		c := topo.MustCube(n)
		for trial := 0; trial < 10; trial++ {
			s := faults.NewSet(c)
			faults.InjectUniform(s, rng, rng.Intn(c.Nodes()/2))
			want := core.Compute(s, core.Options{})

			e := New(s)
			e.RunGS(0)
			got := e.Levels()
			for a := 0; a < c.Nodes(); a++ {
				if got[a] != want.Level(topo.NodeID(a)) {
					t.Fatalf("n=%d trial %d: distributed S(%s) = %d, sequential %d (faults %s)",
						n, trial, c.Format(topo.NodeID(a)), got[a], want.Level(topo.NodeID(a)), s)
				}
			}
			if e.StableRound() != want.Rounds() {
				t.Errorf("n=%d trial %d: distributed stable round %d, sequential %d",
					n, trial, e.StableRound(), want.Rounds())
			}
			e.Close()
		}
	}
}

func TestDistributedGSFig1(t *testing.T) {
	s := fig1Set(t)
	c := s.Cube()
	e := New(s)
	defer e.Close()
	e.RunGS(0)
	lv := e.Levels()
	want := map[string]int{
		"0000": 2, "0001": 1, "0010": 1, "0101": 2,
		"0111": 1, "1000": 4, "1011": 1, "1110": 4,
	}
	for addr, w := range want {
		if got := lv[c.MustParse(addr)]; got != w {
			t.Errorf("S(%s) = %d, want %d", addr, got, w)
		}
	}
}

func TestGSMessageCount(t *testing.T) {
	// In a node-fault-only cube, synchronous GS over D rounds sends
	// exactly D messages per directed live link (both endpoints
	// nonfaulty).
	s := fig1Set(t)
	c := s.Cube()
	e := New(s)
	defer e.Close()
	e.RunGS(0)
	liveDirected := 0
	for a := 0; a < c.Nodes(); a++ {
		if s.NodeFaulty(topo.NodeID(a)) {
			continue
		}
		for i := 0; i < c.Dim(); i++ {
			if !s.NodeFaulty(c.Neighbor(topo.NodeID(a), i)) {
				liveDirected++
			}
		}
	}
	want := liveDirected * (c.Dim() - 1)
	if got := e.MessagesSent(); got != want {
		t.Errorf("GS messages = %d, want %d (= %d directed links x %d rounds)",
			got, want, liveDirected, c.Dim()-1)
	}
}

func TestDistributedUnicastMatchesCoreRouter(t *testing.T) {
	// The distributed hop-by-hop execution must produce the same
	// outcome, path and length as the sequential router for every pair.
	rng := stats.NewRNG(8642)
	for trial := 0; trial < 12; trial++ {
		c := topo.MustCube(5)
		s := faults.NewSet(c)
		faults.InjectUniform(s, rng, rng.Intn(8))
		as := core.Compute(s, core.Options{})
		rt := core.NewRouter(as, nil)
		e := New(s)
		e.RunGS(0)
		for src := 0; src < c.Nodes(); src++ {
			for dst := 0; dst < c.Nodes(); dst += 3 {
				sid, did := topo.NodeID(src), topo.NodeID(dst)
				if s.NodeFaulty(sid) || s.NodeFaulty(did) {
					continue
				}
				want := rt.Unicast(sid, did)
				got := e.Unicast(sid, did)
				if got.Outcome != want.Outcome {
					t.Fatalf("trial %d %s->%s: distributed %v, sequential %v (faults %s)",
						trial, c.Format(sid), c.Format(did), got.Outcome, want.Outcome, s)
				}
				if want.Outcome == core.Failure {
					continue
				}
				if got.Hops != want.Len() {
					t.Fatalf("trial %d %s->%s: distributed %d hops, sequential %d",
						trial, c.Format(sid), c.Format(did), got.Hops, want.Len())
				}
				for i := range want.Path {
					if got.Path[i] != want.Path[i] {
						t.Fatalf("trial %d %s->%s: path diverges at %d: %s vs %s",
							trial, c.Format(sid), c.Format(did), i,
							got.Path.FormatWith(c), want.Path.FormatWith(c))
					}
				}
			}
		}
		e.Close()
	}
}

func TestDistributedUnicastPaperExample(t *testing.T) {
	s := fig1Set(t)
	c := s.Cube()
	e := New(s)
	defer e.Close()
	e.RunGS(0)
	res := e.Unicast(c.MustParse("1110"), c.MustParse("0001"))
	if res.Outcome != core.Optimal {
		t.Fatalf("outcome = %v", res.Outcome)
	}
	if got := res.Path.FormatWith(c); got != "1110 -> 1111 -> 1101 -> 0101 -> 0001" {
		t.Errorf("path = %s", got)
	}
	if res.Hops != 4 {
		t.Errorf("hops = %d", res.Hops)
	}
}

func TestDistributedUnicastFailureDetectedAtSource(t *testing.T) {
	// Fig. 3 disconnected cube: unicast toward the island fails with no
	// message movement beyond the source.
	c := topo.MustCube(4)
	s := faults.NewSet(c)
	s.FailNodes(c.MustParseAll("0110", "1010", "1100", "1111")...)
	e := New(s)
	defer e.Close()
	e.RunGS(0)
	before := e.MessagesSent()
	res := e.Unicast(c.MustParse("0111"), c.MustParse("1110"))
	if res.Outcome != core.Failure {
		t.Fatalf("outcome = %v, want failure", res.Outcome)
	}
	if after := e.MessagesSent(); after != before {
		t.Errorf("failed unicast still sent %d messages", after-before)
	}
}

func TestUnicastRejectsBadEndpoints(t *testing.T) {
	s := fig1Set(t)
	c := s.Cube()
	e := New(s)
	defer e.Close()
	e.RunGS(0)
	if res := e.Unicast(c.MustParse("0011"), 0); res.Outcome != core.Failure || res.Err == nil {
		t.Error("faulty source must be rejected")
	}
	if res := e.Unicast(0, c.MustParse("0011")); res.Outcome != core.Failure || res.Err == nil {
		t.Error("faulty destination must be rejected")
	}
	if res := e.Unicast(99, 0); res.Outcome != core.Failure || res.Err == nil {
		t.Error("out-of-cube endpoint must be rejected")
	}
}

func TestUnicastToSelfDistributed(t *testing.T) {
	s := fig1Set(t)
	e := New(s)
	defer e.Close()
	e.RunGS(0)
	res := e.Unicast(0, 0)
	if res.Outcome != core.Optimal || res.Hops != 0 {
		t.Errorf("self unicast: %v hops %d", res.Outcome, res.Hops)
	}
}

func TestKillNodeAndRecompute(t *testing.T) {
	// State-change-driven update (Section 2.2): after a node dies, a
	// fresh GS phase recomputes levels; they must equal the sequential
	// fixpoint of the enlarged fault set.
	c := topo.MustCube(5)
	s := faults.NewSet(c)
	rng := stats.NewRNG(111)
	faults.InjectUniform(s, rng, 3)
	e := New(s)
	defer e.Close()
	e.RunGS(0)

	var victim topo.NodeID
	for {
		victim = topo.NodeID(rng.Intn(c.Nodes()))
		if !s.NodeFaulty(victim) {
			break
		}
	}
	if err := e.KillNode(victim); err != nil {
		t.Fatal(err)
	}
	if err := e.KillNode(victim); err == nil {
		t.Error("killing a dead node should error")
	}
	e.RunGS(0)

	want := core.Compute(s, core.Options{})
	got := e.Levels()
	for a := 0; a < c.Nodes(); a++ {
		if got[a] != want.Level(topo.NodeID(a)) {
			t.Fatalf("after kill: S(%s) = %d, want %d",
				c.Format(topo.NodeID(a)), got[a], want.Level(topo.NodeID(a)))
		}
	}
}

func TestDistributedEGSWithLinkFaults(t *testing.T) {
	// Fig. 4 scenario on the distributed engine.
	c := topo.MustCube(4)
	s := faults.NewSet(c)
	if err := s.FailNodes(c.MustParseAll("0000", "0100", "1100", "1110")...); err != nil {
		t.Fatal(err)
	}
	if err := s.FailLink(c.MustParse("1000"), c.MustParse("1001")); err != nil {
		t.Fatal(err)
	}
	e := New(s)
	defer e.Close()
	e.RunGS(0)

	want := core.Compute(s, core.Options{})
	pub, own := e.Levels(), e.OwnLevels()
	for a := 0; a < c.Nodes(); a++ {
		id := topo.NodeID(a)
		if pub[a] != want.Level(id) {
			t.Errorf("public S(%s) = %d, want %d", c.Format(id), pub[a], want.Level(id))
		}
		if own[a] != want.OwnLevel(id) {
			t.Errorf("own S(%s) = %d, want %d", c.Format(id), own[a], want.OwnLevel(id))
		}
	}
	// And the Fig. 4 suboptimal route, distributed.
	res := e.Unicast(c.MustParse("1101"), c.MustParse("1000"))
	if res.Outcome != core.Suboptimal {
		t.Fatalf("outcome = %v, want suboptimal", res.Outcome)
	}
	if got := res.Path.FormatWith(c); got != "1101 -> 1111 -> 1011 -> 1010 -> 1000" {
		t.Errorf("path = %s", got)
	}
}

func TestNoGoroutineLeaks(t *testing.T) {
	before := runtime.NumGoroutine()
	for i := 0; i < 5; i++ {
		s := fig1Set(t)
		e := New(s)
		e.RunGS(0)
		e.Unicast(0, 7)
		e.Close()
		e.Close() // double close is a no-op
	}
	// Allow the runtime a moment to retire exited goroutines.
	deadline := time.Now().Add(2 * time.Second)
	for time.Now().Before(deadline) {
		if runtime.NumGoroutine() <= before+2 {
			return
		}
		time.Sleep(10 * time.Millisecond)
	}
	t.Errorf("goroutines before %d, after %d", before, runtime.NumGoroutine())
}

func TestRepeatedGSPhasesAreIdempotent(t *testing.T) {
	// The periodic update strategy re-runs GS on an unchanged fault
	// set; levels must not drift.
	s := fig1Set(t)
	e := New(s)
	defer e.Close()
	e.RunGS(0)
	first := e.Levels()
	e.RunGS(0)
	second := e.Levels()
	for a := range first {
		if first[a] != second[a] {
			t.Fatalf("levels drifted at node %d: %d -> %d", a, first[a], second[a])
		}
	}
}

func TestTruncatedDistributedGS(t *testing.T) {
	// Running fewer rounds than needed leaves over-optimistic levels,
	// mirroring the sequential MaxRounds option.
	s := fig1Set(t)
	c := s.Cube()
	e := New(s)
	defer e.Close()
	e.RunGS(1)
	lv := e.Levels()
	full := core.Compute(s, core.Options{})
	for a := 0; a < c.Nodes(); a++ {
		if lv[a] < full.Level(topo.NodeID(a)) {
			t.Errorf("truncated level below fixpoint at %s", c.Format(topo.NodeID(a)))
		}
	}
	// Node 0101 needs 2 rounds (it is 2-safe via 1-safe neighbors).
	if lv[c.MustParse("0101")] == full.Level(c.MustParse("0101")) {
		t.Error("expected 0101 to still be over-optimistic after 1 round")
	}
}
