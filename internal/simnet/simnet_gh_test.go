package simnet

import (
	"testing"

	"repro/internal/core"
	"repro/internal/faults"
	"repro/internal/topo"
)

// ghSet builds a fault set over GH(2x3x2) — the paper's Fig. 5 shape —
// with the given faulty addresses.
func ghSet(t *testing.T, faulty ...string) (*topo.Mixed, *faults.Set) {
	t.Helper()
	m := topo.MustMixed(2, 3, 2)
	s := faults.NewSet(m)
	for _, a := range faulty {
		if err := s.FailNode(m.MustParse(a)); err != nil {
			t.Fatal(err)
		}
	}
	return m, s
}

// TestGHDistributedGS runs the message-passing GS phase on a generalized
// hypercube and checks the levels against the sequential Definition 4
// fixpoint — the same equivalence the binary engine tests establish.
func TestGHDistributedGS(t *testing.T) {
	m, s := ghSet(t, "011", "100", "111", "121")
	e := New(s)
	defer e.Close()
	e.RunGS(0)

	want := core.Compute(s, core.Options{})
	for a, got := range e.Levels() {
		id := topo.NodeID(a)
		if s.NodeFaulty(id) {
			continue
		}
		if got != want.Level(id) {
			t.Errorf("level(%s) = %d, want %d", m.Format(id), got, want.Level(id))
		}
	}
	if e.StableRound() > m.Dim()-1 {
		t.Errorf("stabilized at round %d, beyond the n-1 bound", e.StableRound())
	}
}

// TestGHDistributedGSAsync checks the asynchronous protocol reaches the
// same fixpoint on a generalized hypercube, including EGS behavior
// around a faulty link.
func TestGHDistributedGSAsync(t *testing.T) {
	m, s := ghSet(t, "011", "121")
	if err := s.FailLink(m.MustParse("000"), m.MustParse("010")); err != nil {
		t.Fatal(err)
	}
	e := New(s)
	defer e.Close()
	e.RunGSAsync()

	want := core.Compute(s, core.Options{})
	for a, got := range e.Levels() {
		id := topo.NodeID(a)
		if s.NodeFaulty(id) {
			continue
		}
		if got != want.Level(id) {
			t.Errorf("public level(%s) = %d, want %d", m.Format(id), got, want.Level(id))
		}
	}
	for a, got := range e.OwnLevels() {
		id := topo.NodeID(a)
		if s.NodeFaulty(id) {
			continue
		}
		if got != want.OwnLevel(id) {
			t.Errorf("own level(%s) = %d, want %d", m.Format(id), got, want.OwnLevel(id))
		}
	}
}

// TestGHDistributedUnicast routes through the live GH node goroutines
// and cross-checks the outcome class against the sequential router.
func TestGHDistributedUnicast(t *testing.T) {
	m, s := ghSet(t, "011", "100", "111", "121")
	e := New(s)
	defer e.Close()
	e.RunGS(0)

	src, dst := m.MustParse("010"), m.MustParse("101")
	res := e.Unicast(src, dst)
	if res.Err != nil {
		t.Fatal(res.Err)
	}
	if res.Outcome != core.Optimal || res.Hops != m.Distance(src, dst) {
		t.Fatalf("distributed route = %v/%d hops, want optimal/%d",
			res.Outcome, res.Hops, m.Distance(src, dst))
	}
	if !res.Path.Valid(m) {
		t.Fatalf("invalid path %v", res.Path)
	}
	for _, a := range res.Path {
		if s.NodeFaulty(a) {
			t.Fatalf("path crosses faulty node %s", m.Format(a))
		}
	}
}

// TestGHDistributedBatchAndBroadcast exercises the concurrent batch
// router and the spanning-tree broadcast on a generalized hypercube:
// every healthy pair resolves, and the broadcast wave reaches every
// healthy node exactly once with nodes-1 messages.
func TestGHDistributedBatchAndBroadcast(t *testing.T) {
	m, s := ghSet(t, "011")
	e := New(s)
	defer e.Close()
	e.RunGS(0)

	var pairs []Pair
	src := m.MustParse("000")
	for a := 0; a < m.Nodes(); a++ {
		id := topo.NodeID(a)
		if id != src && !s.NodeFaulty(id) {
			pairs = append(pairs, Pair{Src: src, Dst: id})
		}
	}
	if len(pairs) > e.MaxBatch() {
		t.Fatalf("batch %d exceeds MaxBatch %d", len(pairs), e.MaxBatch())
	}
	stats, err := e.UnicastBatch(pairs)
	if err != nil {
		t.Fatal(err)
	}
	if stats.Delivered != len(pairs) {
		t.Fatalf("delivered %d of %d", stats.Delivered, len(pairs))
	}

	run, err := e.Broadcast(src)
	if err != nil {
		t.Fatal(err)
	}
	healthy := m.Nodes() - s.NodeFaults()
	if len(run.Depth) != healthy {
		t.Fatalf("broadcast reached %d of %d healthy nodes", len(run.Depth), healthy)
	}
	if run.Messages != healthy-1 {
		t.Errorf("broadcast used %d messages, want %d (one per delivery)", run.Messages, healthy-1)
	}
	if run.Depth[src] != 0 {
		t.Errorf("source depth = %d", run.Depth[src])
	}
}
