package simnet

import (
	"testing"

	"repro/internal/broadcast"
	"repro/internal/core"
	"repro/internal/faults"
	"repro/internal/stats"
	"repro/internal/topo"
)

func TestDistributedBroadcastMatchesSequential(t *testing.T) {
	// The goroutine execution must reproduce the sequential tree
	// exactly: same deliveries, same depths, same message count.
	rng := stats.NewRNG(24817)
	for trial := 0; trial < 15; trial++ {
		c := topo.MustCube(6)
		s := faults.NewSet(c)
		faults.InjectUniform(s, rng, rng.Intn(10))
		as := core.Compute(s, core.Options{})

		var src topo.NodeID
		for {
			src = topo.NodeID(rng.Intn(c.Nodes()))
			if !s.NodeFaulty(src) {
				break
			}
		}
		want := broadcast.New(as, false).Broadcast(src)

		e := New(s)
		e.RunGS(0)
		got, err := e.Broadcast(src)
		if err != nil {
			t.Fatal(err)
		}
		if len(got.Depth) != len(want.Depth) {
			t.Fatalf("trial %d: distributed covered %d, sequential %d (faults %s, src %s)",
				trial, len(got.Depth), len(want.Depth), s, c.Format(src))
		}
		for a, d := range want.Depth {
			if got.Depth[a] != d {
				t.Fatalf("trial %d: depth of %s = %d, sequential %d",
					trial, c.Format(a), got.Depth[a], d)
			}
		}
		if got.Messages != want.Messages {
			t.Fatalf("trial %d: %d messages, sequential %d", trial, got.Messages, want.Messages)
		}
		if got.Rounds != want.Rounds {
			t.Fatalf("trial %d: depth %d, sequential %d", trial, got.Rounds, want.Rounds)
		}
		e.Close()
	}
}

func TestDistributedBroadcastFaultFree(t *testing.T) {
	c := topo.MustCube(5)
	s := faults.NewSet(c)
	e := New(s)
	defer e.Close()
	e.RunGS(0)
	run, err := e.Broadcast(0)
	if err != nil {
		t.Fatal(err)
	}
	if len(run.Depth) != c.Nodes() {
		t.Errorf("covered %d of %d", len(run.Depth), c.Nodes())
	}
	if run.Messages != c.Nodes()-1 {
		t.Errorf("messages = %d, want %d", run.Messages, c.Nodes()-1)
	}
	if run.Rounds != c.Dim() {
		t.Errorf("depth = %d, want %d", run.Rounds, c.Dim())
	}
}

func TestDistributedBroadcastRejectsBadSource(t *testing.T) {
	s := fig1Set(t)
	c := s.Cube()
	e := New(s)
	defer e.Close()
	e.RunGS(0)
	if _, err := e.Broadcast(c.MustParse("0011")); err == nil {
		t.Error("faulty source should error")
	}
	if _, err := e.Broadcast(999); err == nil {
		t.Error("out-of-cube source should error")
	}
}

func TestDistributedBroadcastRepeatable(t *testing.T) {
	// Consecutive broadcasts (same engine) must be identical and not
	// interfere with later unicasts.
	s := fig1Set(t)
	c := s.Cube()
	e := New(s)
	defer e.Close()
	e.RunGS(0)
	r1, err := e.Broadcast(c.MustParse("1110"))
	if err != nil {
		t.Fatal(err)
	}
	r2, err := e.Broadcast(c.MustParse("1110"))
	if err != nil {
		t.Fatal(err)
	}
	if len(r1.Depth) != len(r2.Depth) || r1.Messages != r2.Messages {
		t.Error("repeat broadcast diverged")
	}
	res := e.Unicast(c.MustParse("1110"), c.MustParse("0001"))
	if res.Outcome != core.Optimal {
		t.Errorf("unicast after broadcast: %v", res.Outcome)
	}
}
