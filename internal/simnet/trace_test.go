package simnet

import (
	"testing"

	"repro/internal/core"
)

// TestUnicastTraceIDs verifies the engine stamps every injected unicast
// with a distinct trace ID and carries it through forwarding to the
// reported result — single unicasts and batch entries share one
// monotonic sequence, so a result can always be tied back to its
// injection order.
func TestUnicastTraceIDs(t *testing.T) {
	s := fig1Set(t)
	c := s.Cube()
	e := New(s)
	defer e.Close()
	e.RunGS(0)

	r1 := e.Unicast(c.MustParse("0000"), c.MustParse("1111"))
	r2 := e.Unicast(c.MustParse("0000"), c.MustParse("0101"))
	if r1.TraceID == 0 || r2.TraceID == 0 {
		t.Fatalf("trace IDs = %d, %d; want nonzero", r1.TraceID, r2.TraceID)
	}
	if r2.TraceID <= r1.TraceID {
		t.Fatalf("trace IDs not monotonic: %d then %d", r1.TraceID, r2.TraceID)
	}

	pairs := []Pair{
		{Src: c.MustParse("0000"), Dst: c.MustParse("1111")},
		{Src: c.MustParse("0101"), Dst: c.MustParse("1010")},
		{Src: c.MustParse("1000"), Dst: c.MustParse("0111")},
	}
	stats, err := e.UnicastBatch(pairs)
	if err != nil {
		t.Fatal(err)
	}
	seen := map[uint64]bool{r1.TraceID: true, r2.TraceID: true}
	for i, br := range stats.Results {
		if br.Outcome == core.Failure && br.TraceID == 0 {
			// Requests refused at injection (faulty endpoint) are never
			// stamped; none of the pairs above qualify.
			t.Fatalf("batch entry %d refused unexpectedly: %v", i, br.Err)
		}
		if br.TraceID <= r2.TraceID {
			t.Errorf("batch entry %d: trace ID %d not after the singles (%d)", i, br.TraceID, r2.TraceID)
		}
		if seen[br.TraceID] {
			t.Errorf("batch entry %d: duplicate trace ID %d", i, br.TraceID)
		}
		seen[br.TraceID] = true
	}
}

// TestUnicastTraceIDFaultyEndpoint pins the refusal path: a request
// that never enters the network carries no trace ID.
func TestUnicastTraceIDFaultyEndpoint(t *testing.T) {
	s := fig1Set(t)
	c := s.Cube()
	e := New(s)
	defer e.Close()
	e.RunGS(0)

	r := e.Unicast(c.MustParse("0011"), c.MustParse("0000")) // 0011 is faulty
	if r.Outcome != core.Failure {
		t.Fatalf("faulty source delivered: %+v", r)
	}
	if r.TraceID != 0 {
		t.Errorf("refused request stamped with trace ID %d", r.TraceID)
	}
}
